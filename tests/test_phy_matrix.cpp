// CMatrix (complex linear algebra) and N-stream zero-forcing tests.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/matrix.hpp"
#include "phy/mimo.hpp"
#include "util/rng.hpp"

namespace pab::phy {
namespace {

CMatrix random_matrix(std::size_t n, Rng& rng) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m.at(i, j) = {rng.gaussian(), rng.gaussian()};
  return m;
}

TEST(CMatrix, IdentityProperties) {
  const auto id = CMatrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_EQ(id.at(i, j), (i == j ? cplx(1.0, 0.0) : cplx{}));
  EXPECT_NEAR(id.condition_number(), 1.0, 1e-6);
}

TEST(CMatrix, MultiplyAgainstHandComputed) {
  CMatrix a(2, 2), b(2, 2);
  a.at(0, 0) = {1, 0}; a.at(0, 1) = {2, 0};
  a.at(1, 0) = {3, 0}; a.at(1, 1) = {4, 0};
  b.at(0, 0) = {0, 1}; b.at(0, 1) = {1, 0};
  b.at(1, 0) = {1, 0}; b.at(1, 1) = {0, -1};
  const auto c = a * b;
  EXPECT_EQ(c.at(0, 0), cplx(2, 1));
  EXPECT_EQ(c.at(0, 1), cplx(1, -2));
  EXPECT_EQ(c.at(1, 0), cplx(4, 3));
  EXPECT_EQ(c.at(1, 1), cplx(3, -4));
}

TEST(CMatrix, SolveRecoversKnownVector) {
  Rng rng(1);
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    const CMatrix a = random_matrix(n, rng);
    std::vector<cplx> x_true(n);
    for (auto& v : x_true) v = {rng.gaussian(), rng.gaussian()};
    const auto b = a * x_true;
    const auto x = a.solve(b);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9) << "n=" << n;
  }
}

TEST(CMatrix, InverseTimesSelfIsIdentity) {
  Rng rng(2);
  const CMatrix a = random_matrix(4, rng);
  const auto prod = a * a.inverse();
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(std::abs(prod.at(i, j) - (i == j ? cplx(1, 0) : cplx{})), 0.0,
                  1e-9);
}

TEST(CMatrix, SingularMatrixThrows) {
  CMatrix a(2, 2);
  a.at(0, 0) = {1, 0}; a.at(0, 1) = {2, 0};
  a.at(1, 0) = {2, 0}; a.at(1, 1) = {4, 0};  // rank 1
  EXPECT_THROW((void)a.solve({cplx(1, 0), cplx(1, 0)}), std::invalid_argument);
}

TEST(CMatrix, PivotingHandlesZeroDiagonal) {
  CMatrix a(2, 2);
  a.at(0, 0) = {0, 0}; a.at(0, 1) = {1, 0};
  a.at(1, 0) = {1, 0}; a.at(1, 1) = {0, 0};
  const auto x = a.solve({cplx(3, 0), cplx(7, 0)});
  EXPECT_NEAR(std::abs(x[0] - cplx(7, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - cplx(3, 0)), 0.0, 1e-12);
}

TEST(CMatrix, ConditionNumberOfScaledIdentity) {
  CMatrix a = CMatrix::identity(3);
  a.at(2, 2) = {0.01, 0.0};  // singular values 1, 1, 0.01
  EXPECT_NEAR(a.condition_number(), 100.0, 1.0);
}

TEST(CMatrix, ConjugateTranspose) {
  CMatrix a(2, 3);
  a.at(0, 2) = {1, 2};
  const auto ah = a.conjugate_transpose();
  EXPECT_EQ(ah.rows(), 3u);
  EXPECT_EQ(ah.cols(), 2u);
  EXPECT_EQ(ah.at(2, 0), cplx(1, -2));
}

TEST(ZeroForceN, SeparatesThreeStreams) {
  Rng rng(3);
  const std::size_t n = 3, len = 500;
  const CMatrix h = random_matrix(n, rng);
  std::vector<std::vector<double>> x(n, std::vector<double>(len));
  std::vector<std::vector<cplx>> y(n, std::vector<cplx>(len));
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t j = 0; j < n; ++j)
      x[j][t] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      cplx acc{};
      for (std::size_t j = 0; j < n; ++j) acc += h.at(i, j) * x[j][t];
      y[i][t] = acc;
    }
  }
  const auto out = zero_force_n(y, h);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t t = 0; t < len; ++t)
      EXPECT_NEAR(out[j][t].real(), x[j][t], 1e-9);
}

TEST(ZeroForceN, RejectsShapeMismatch) {
  const CMatrix h = CMatrix::identity(2);
  std::vector<std::vector<cplx>> y(3, std::vector<cplx>(10));
  EXPECT_THROW((void)zero_force_n(y, h), std::invalid_argument);
}

TEST(ZeroForceN, MatchesMat2cOnTwoStreams) {
  // The generic path must agree with the specialized 2x2 decoder.
  Rng rng(4);
  Mat2c h2{{1.0, 0.2}, {0.3, -0.1}, {-0.2, 0.5}, {0.8, 0.0}};
  CMatrix h(2, 2);
  h.at(0, 0) = h2.h11; h.at(0, 1) = h2.h12;
  h.at(1, 0) = h2.h21; h.at(1, 1) = h2.h22;
  std::vector<cplx> y1(100), y2(100);
  for (std::size_t t = 0; t < 100; ++t) {
    y1[t] = {rng.gaussian(), rng.gaussian()};
    y2[t] = {rng.gaussian(), rng.gaussian()};
  }
  const auto a = zero_force(y1, y2, h2);
  const auto b = zero_force_n({y1, y2}, h);
  for (std::size_t t = 0; t < 100; ++t) {
    EXPECT_NEAR(std::abs(a.x1[t] - b[0][t]), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(a.x2[t] - b[1][t]), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace pab::phy
