// Figure 8: SNR vs backscatter bitrate.
//
// Paper: with the node within a meter of projector and hydrophone, SNR falls
// as the bitrate rises (power spread over more bandwidth) and collapses above
// 3 kbps because the recto-piezo's efficiency drops away from resonance.
// Three trials per bitrate, mean +/- standard deviation.
#include "bench_util.hpp"
#include "core/link.hpp"
#include "core/projector.hpp"
#include "phy/metrics.hpp"
#include "sim/batch.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

namespace {

using namespace pab;

const double kBitrates[] = {100,  200,  400,  600,  800,
                            1000, 2000, 2800, 3000, 5000};

core::Placement close_placement() {
  // "within a meter of both the projector and the hydrophone" (6.1b).
  core::Placement pl;
  pl.projector = {1.2, 1.5, 0.65};
  pl.hydrophone = {1.8, 1.5, 0.65};
  pl.node = {1.5, 2.1, 0.65};
  return pl;
}

void print_series() {
  bench::print_header("Figure 8", "SNR vs backscatter bitrate (3 trials each)");
  const sim::BatchRunner pool;

  bench::print_row({"rate [bps]", "SNR [dB]", "stddev", "decoded"});
  double snr_1k = 0.0, snr_5k = 0.0;
  for (double rate : kBitrates) {
    sim::Scenario sc = sim::Scenario::pool_a()
                           .with_seed(100 + static_cast<std::uint64_t>(rate))
                           .with_placement(close_placement());
    // Facility ambient (pumps, building vibration): the tank links in the
    // paper are noise-limited, which is what bends this curve.
    sc.medium.noise.psd_db_re_upa = 82.0;
    sc.waveform.bitrate = rate;
    sc.waveform.payload_bits = 96;
    const sim::Session session(sc);
    const auto trials = pool.run<sim::TrialKind::kUplink>(session, 3);
    std::vector<double> snrs;
    int decoded = 0;
    for (const auto& t : trials) {
      if (t.ok()) {
        snrs.push_back(t.value().demod.snr_db);
        if (t.value().ber < 0.01) ++decoded;
      } else {
        snrs.push_back(-10.0);  // undetectable: below the decoder floor
      }
    }
    const double m = mean(snrs);
    const double sd = snrs.size() > 1 ? stddev(snrs) : 0.0;
    if (rate == 1000) snr_1k = m;
    if (rate == 5000) snr_5k = m;
    bench::print_row({bench::fmt(rate, 0), bench::fmt(m, 1), bench::fmt(sd, 1),
                      bench::fmt(decoded, 0) + "/3"});
  }
  std::printf("\nSNR declines with bitrate; drop from 1 kbps to 5 kbps: %.1f dB\n",
              snr_1k - snr_5k);
  std::printf("Paper shape: monotone decline, sharp drop above 3 kbps as the\n"
              "recto-piezo loses efficiency away from resonance.\n");
}

void bm_uplink_run(benchmark::State& state) {
  core::SimConfig sc = sim::Scenario::pool_a().medium;
  core::LinkSimulator sim(sc, close_placement());
  const auto proj = core::Projector(piezo::make_projector_transducer(), 50.0);
  const auto fe = circuit::make_recto_piezo(15000.0);
  Rng rng(1);
  const auto bits = rng.bits(96);
  core::UplinkRunConfig cfg;
  for (auto _ : state) {
    auto out = sim.run_uplink(proj, fe, bits, cfg);
    benchmark::DoNotOptimize(out.hydrophone_v.samples.data());
  }
}
BENCHMARK(bm_uplink_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "fig8_snr_bitrate";
  spec.description = "SNR vs backscatter bitrate";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "fig8_snr_bitrate";
  sweep.kind = pab::sim::TrialKind::kUplink;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 12;
  sweep.axes.push_back({"waveform.bitrate", {250.0, 500.0, 1000.0, 2000.0, 5000.0}});
  spec.campaign = std::move(sweep);
  spec.required_counters = {"sim.session.trials", "sim.batch.trials"};
  return pab::bench::run_bench_main(argc, argv, spec);
}
