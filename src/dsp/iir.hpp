// Butterworth IIR filters as cascaded biquad sections.
//
// The paper's receiver "employs a Butterworth filter on each of the receive
// channels to isolate the signal of interest and reduce interference from
// concurrent transmissions" (section 5.1b).  We implement analog Butterworth
// prototypes mapped through the bilinear transform with frequency prewarping.
#pragma once

#include <array>
#include <complex>
#include <span>
#include <vector>

namespace pab::dsp {

// One second-order section, direct form II transposed.
struct Biquad {
  // Normalized so a0 == 1.
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<Biquad> sections)
      : sections_(std::move(sections)), state_(sections_.size()) {}

  // Process one sample, maintaining state across calls (streaming).
  [[nodiscard]] double process(double x);
  [[nodiscard]] std::complex<double> process(std::complex<double> x);

  // Filter a whole buffer from zero initial state.
  [[nodiscard]] std::vector<double> filter(std::span<const double> x) const;
  [[nodiscard]] std::vector<std::complex<double>> filter(
      std::span<const std::complex<double>> x) const;

  // Into-output kernels from zero initial state; y.size() must equal
  // x.size() and `y` may alias `x` (in-place filtering).  Filter state lives
  // on the stack for the designer-produced section counts (<= 24), so these
  // perform no heap allocation.  The vector-returning overloads above are
  // thin wrappers, bit-identical by construction.
  void filter_into(std::span<const double> x, std::span<double> y) const;
  void filter_into(std::span<const std::complex<double>> x,
                   std::span<std::complex<double>> y) const;

  void reset();

  [[nodiscard]] const std::vector<Biquad>& sections() const { return sections_; }

  // Complex frequency response at `freq_hz` for signals sampled at `fs`.
  [[nodiscard]] std::complex<double> response(double freq_hz, double fs) const;

  // True if all poles lie strictly inside the unit circle.
  [[nodiscard]] bool is_stable() const;

 private:
  struct State {
    double s1r = 0.0, s2r = 0.0;  // real channel
    double s1i = 0.0, s2i = 0.0;  // imaginary channel
  };
  std::vector<Biquad> sections_;
  std::vector<State> state_;
};

// Designers.  `order` is the analog prototype order (1..12 supported).
[[nodiscard]] BiquadCascade butterworth_lowpass(int order, double cutoff_hz, double fs);
[[nodiscard]] BiquadCascade butterworth_highpass(int order, double cutoff_hz, double fs);
// Band-pass of total order 2*`order` between [low_hz, high_hz].
[[nodiscard]] BiquadCascade butterworth_bandpass(int order, double low_hz,
                                                 double high_hz, double fs);

}  // namespace pab::dsp
