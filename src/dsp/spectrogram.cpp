#include "dsp/spectrogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pab::dsp {

Spectrogram compute_spectrogram(const Signal& signal,
                                const SpectrogramConfig& config) {
  require(signal.sample_rate > 0.0, "spectrogram: sample rate unset");
  require(config.fft_size >= 8, "spectrogram: fft size too small");
  require((config.fft_size & (config.fft_size - 1)) == 0,
          "spectrogram: fft size must be a power of two");
  require(config.hop >= 1, "spectrogram: hop must be >= 1");

  const auto window = make_window(config.window, config.fft_size);
  const std::size_t half = config.fft_size / 2 + 1;

  Spectrogram out;
  out.frequency_hz.resize(half);
  const double df = signal.sample_rate / static_cast<double>(config.fft_size);
  for (std::size_t b = 0; b < half; ++b)
    out.frequency_hz[b] = df * static_cast<double>(b);

  if (signal.size() < config.fft_size) return out;
  const std::size_t n_frames = (signal.size() - config.fft_size) / config.hop + 1;
  out.magnitude.reserve(n_frames);
  out.time_s.reserve(n_frames);

  std::vector<cplx> frame(config.fft_size);
  const double scale = 2.0 / static_cast<double>(config.fft_size);
  for (std::size_t f = 0; f < n_frames; ++f) {
    const std::size_t start = f * config.hop;
    for (std::size_t i = 0; i < config.fft_size; ++i)
      frame[i] = cplx(signal.samples[start + i] * window[i], 0.0);
    fft_inplace(frame);
    std::vector<double> mags(half);
    for (std::size_t b = 0; b < half; ++b) mags[b] = std::abs(frame[b]) * scale;
    out.magnitude.push_back(std::move(mags));
    out.time_s.push_back(
        (static_cast<double>(start) + static_cast<double>(config.fft_size) / 2.0) /
        signal.sample_rate);
  }
  return out;
}

std::vector<double> dominant_frequency_track(const Spectrogram& spec) {
  std::vector<double> track;
  track.reserve(spec.frames());
  for (const auto& frame : spec.magnitude) {
    const auto it = std::max_element(frame.begin(), frame.end());
    track.push_back(
        spec.frequency_hz[static_cast<std::size_t>(it - frame.begin())]);
  }
  return track;
}

std::vector<double> band_power_track(const Spectrogram& spec, double low_hz,
                                     double high_hz) {
  require(high_hz > low_hz, "band_power_track: invalid band");
  std::vector<double> track;
  track.reserve(spec.frames());
  for (const auto& frame : spec.magnitude) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t b = 0; b < frame.size(); ++b) {
      if (spec.frequency_hz[b] < low_hz || spec.frequency_hz[b] > high_hz) continue;
      acc += frame[b] * frame[b];
      ++n;
    }
    track.push_back(n > 0 ? acc / static_cast<double>(n) : 0.0);
  }
  return track;
}

}  // namespace pab::dsp
