file(REMOVE_RECURSE
  "CMakeFiles/test_component_sweeps.dir/test_component_sweeps.cpp.o"
  "CMakeFiles/test_component_sweeps.dir/test_component_sweeps.cpp.o.d"
  "test_component_sweeps"
  "test_component_sweeps.pdb"
  "test_component_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_component_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
