// Communication metrology: BER, SNR and SINR estimation.
//
// SNR follows the paper's method (section 6.1a): "We computed the signal
// power as the squared channel estimate, and computed the noise power as the
// squared difference between the received signal and the transmitted signal
// multiplied by the channel estimate."
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "util/bitops.hpp"

namespace pab::phy {

// Fraction of differing bits.  Sizes must match.
[[nodiscard]] double bit_error_rate(std::span<const std::uint8_t> sent,
                                    std::span<const std::uint8_t> received);

// SNR [dB] from received soft chip samples `rx` and the known/decoded chip
// sequence `ref` (+/-1): channel h = <rx, ref>/<ref, ref>; noise = rx - h*ref.
[[nodiscard]] double estimate_snr_db(std::span<const double> rx,
                                     std::span<const double> ref);

// Complex variant used after down-conversion.
[[nodiscard]] double estimate_snr_db(std::span<const std::complex<double>> rx,
                                     std::span<const double> ref);

// SINR [dB] of stream `rx` against reference sequence `ref` (+/-1):
// the reference-aligned component is signal, everything else (noise plus
// interference from a colliding transmission) is impairment.  This is the
// quantity Fig. 10 reports before and after MIMO projection.
[[nodiscard]] double measure_sinr_db(std::span<const std::complex<double>> rx,
                                     std::span<const double> ref);

}  // namespace pab::phy
