// Timeline-driven node lifecycle: cold-start, duty cycle, brownout/recover.
//
// A battery-free node's availability is an *energy* trajectory: it boots when
// the supercapacitor crosses the power-up threshold, draws its idle load
// while listening, and browns out mid-round if harvesting dips (paper
// section 4.2) -- then rejoins the inventory once recharged.  NodeLifecycle
// expresses that trajectory as self-rescheduling tick events on the shared
// sim::Timeline: each tick integrates the harvester over the elapsed
// interval at the *event's* timestamp (so the harvest power can be sampled
// from a time-varying channel), books the joules into the node's timestamped
// EnergyLedger, mirrors them into the timeline event log ("energy.harvested",
// "energy.idle"), and logs "node.power_up" / "node.brownout" markers (value =
// node id) on state transitions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "energy/harvester.hpp"

namespace pab::sim {
class Timeline;
}  // namespace pab::sim

namespace pab::node {

struct LifecycleConfig {
  double tick_s = 0.01;        // harvest integration step
  double idle_load_w = 124e-6; // MCU idle draw once powered (paper 6.4)
  double v_ceiling = 5.0;      // rectifier open-circuit voltage
  // Harvested DC power [W] as a function of simulated time.  Sampled at each
  // tick's fire time, which is how channel fading / node motion perturbs the
  // energy trajectory mid-round.
  std::function<double(double t)> harvest_power_w;
};

class NodeLifecycle {
 public:
  NodeLifecycle(std::uint8_t id, energy::Harvester harvester,
                LifecycleConfig config);

  // Schedule this lifecycle's tick events on `timeline` from now() until
  // `until_s` (absolute).  The lifecycle object must outlive the timeline
  // run.  May only be attached once.
  void attach(sim::Timeline& timeline, double until_s);

  [[nodiscard]] std::uint8_t id() const { return id_; }
  [[nodiscard]] bool powered() const { return harvester_.powered_up(); }
  [[nodiscard]] double capacitor_voltage() const {
    return harvester_.capacitor_voltage();
  }
  [[nodiscard]] const energy::Harvester& harvester() const {
    return harvester_;
  }
  [[nodiscard]] std::size_t power_ups() const { return power_ups_; }
  [[nodiscard]] std::size_t brown_outs() const { return brown_outs_; }

 private:
  void tick(sim::Timeline& timeline);

  std::uint8_t id_;
  energy::Harvester harvester_;
  LifecycleConfig config_;
  double until_s_ = 0.0;
  bool attached_ = false;
  std::size_t power_ups_ = 0;
  std::size_t brown_outs_ = 0;
};

}  // namespace pab::node
