// Observability layer tests: registry find-or-create semantics, concurrent
// mutation (run under -DPAB_SANITIZE=thread in CI), histogram bucket edges,
// JSON/text export, and the Session/TapCache wiring that makes cache hit
// rates visible without perturbing determinism.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/batch.hpp"

namespace pab::obs {
namespace {

TEST(MetricRegistry, FindOrCreateReturnsStableInstruments) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g = reg.gauge("x.level");
  g.set(2.5);
  EXPECT_EQ(&g, &reg.gauge("x.level"));
  EXPECT_DOUBLE_EQ(reg.gauge("x.level").value(), 2.5);

  const double bounds[] = {1.0, 2.0};
  Histogram& h = reg.histogram("x.lat", bounds);
  EXPECT_EQ(&h, &reg.histogram("x.lat"));  // bounds fixed by first call
  EXPECT_EQ(h.bounds().size(), 2u);
}

TEST(MetricRegistry, CounterGaugeAccumulate) {
  MetricRegistry reg;
  Counter& c = reg.counter("n");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge& g = reg.gauge("v");
  g.add(0.25);
  g.add(0.50);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketEdgesAreUpperInclusive) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram h{std::span<const double>(bounds)};
  h.observe(0.5);    // <= 1        -> bucket 0
  h.observe(1.0);    // == edge     -> bucket 0 (upper-inclusive)
  h.observe(1.0001); // just above  -> bucket 1
  h.observe(10.0);   // == edge     -> bucket 1
  h.observe(100.0);  // == last edge-> bucket 2
  h.observe(1e6);    // above all   -> overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 1e6, 1e-9);
}

TEST(Histogram, RejectsUnsortedOrDuplicateBounds) {
  const double unsorted[] = {2.0, 1.0};
  const double dupes[] = {1.0, 1.0};
  EXPECT_THROW((Histogram{std::span<const double>(unsorted)}),
               std::invalid_argument);
  EXPECT_THROW((Histogram{std::span<const double>(dupes)}),
               std::invalid_argument);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  const double bounds[] = {1.0, 2.0, 4.0};
  Histogram h{std::span<const double>(bounds)};
  // 100 observations uniformly in (1, 2]: all land in bucket 1.
  for (int i = 1; i <= 100; ++i) h.observe(1.0 + i / 100.0);
  EXPECT_NEAR(h.quantile(0.5), 1.5, 0.02);
  EXPECT_NEAR(h.quantile(1.0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(Histogram{std::span<const double>(bounds)}.quantile(0.5), 0.0);
}

TEST(MetricRegistry, ConcurrentIncrementsLoseNothing) {
  // Hammer one counter, one gauge, and one histogram from 8 threads; every
  // mutation must land.  CI runs this under TSan (-DPAB_SANITIZE=thread).
  MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      // Resolve through the registry inside the thread: the find-or-create
      // path itself must be thread-safe, not just the instruments.
      Counter& c = reg.counter("conc.count");
      Gauge& g = reg.gauge("conc.sum");
      Histogram& h = reg.histogram("conc.lat");
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        g.add(1.0);
        h.observe(1e-5);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(reg.counter("conc.count").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(reg.gauge("conc.sum").value(), 1.0 * kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("conc.lat").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricRegistry, JsonExportRoundTripsValues) {
  MetricRegistry reg;
  reg.counter("a.count").add(42);
  reg.gauge("a.ratio").set(0.1);  // not exactly representable: needs %.17g
  const double bounds[] = {1.0, 2.0};
  Histogram& h = reg.histogram("a.lat", bounds);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"a.count\": 42"), std::string::npos) << json;
  // 0.1 printed with enough digits to round-trip the exact double.
  EXPECT_NE(json.find("\"a.ratio\": 0.1000000000000000"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\": 1, \"count\": 1}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\": 2, \"count\": 1}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"overflow\": 1"), std::string::npos) << json;

  // Exports of an empty registry are valid JSON skeletons, not garbage.
  const std::string empty = MetricRegistry().to_json();
  EXPECT_NE(empty.find("\"counters\": {}"), std::string::npos) << empty;
}

TEST(MetricRegistry, TextExportListsEveryInstrument) {
  MetricRegistry reg;
  reg.counter("t.count").add(7);
  reg.gauge("t.level").set(1.5);
  reg.histogram("t.lat").observe(0.1);
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("t.count"), std::string::npos);
  EXPECT_NE(text.find("t.level"), std::string::npos);
  EXPECT_NE(text.find("t.lat"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(MetricRegistry, ResetZeroesButKeepsRegistrations) {
  MetricRegistry reg;
  Counter& c = reg.counter("r.count");
  Histogram& h = reg.histogram("r.lat");
  c.add(5);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);     // cached pointers stay valid...
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&c, &reg.counter("r.count"));  // ...and still registered.
}

// ---- Session wiring ---------------------------------------------------------

// The counters must agree with the TapCache's own evaluation accounting (the
// tap-evaluation-count regression in test_sim_batch.cpp): 10 trials over one
// geometry/carrier -> 3 misses (3 paths), everything else hits.
TEST(SessionMetrics, TapCacheHitMissCountersMatchCacheAccounting) {
  MetricRegistry reg;
  const sim::Session session(sim::Scenario::pool_a().with_seed(1), &reg);
  const auto trials =
      sim::BatchRunner(4, &reg).run<sim::TrialKind::kUplink>(session, 10);
  for (const auto& t : trials) ASSERT_TRUE(t.ok());

  const auto& cache = *session.tap_cache();
  const std::uint64_t hits = reg.counter("channel.tapcache.hits").value();
  const std::uint64_t misses = reg.counter("channel.tapcache.misses").value();
  EXPECT_EQ(misses, cache.evaluations());
  EXPECT_EQ(hits + misses, cache.lookups());
  EXPECT_EQ(misses, 3u);
  EXPECT_GE(hits, 27u);

  // Modulation cache: one evaluation (miss), the other 9 trials hit.
  EXPECT_EQ(reg.counter("sim.session.modulation_cache_misses").value(), 1u);
  EXPECT_EQ(reg.counter("sim.session.modulation_cache_hits").value(), 9u);

  // Per-trial instrumentation covered every trial.
  EXPECT_EQ(reg.counter("sim.session.trials").value(), 10u);
  EXPECT_EQ(reg.histogram("sim.session.trial_seconds").count(), 10u);
  EXPECT_EQ(reg.counter("sim.batch.trials").value(), 10u);

  // The decode chain's stage timers saw every trial too.
  EXPECT_EQ(reg.histogram("phy.demod.correlate_seconds").count(), 10u);
  EXPECT_EQ(reg.histogram("core.link.decode_seconds").count(), 10u);
}

// Instrumentation must not perturb the RNG substreams: trials through a
// metered session are bit-identical to the same scenario at any thread count
// (the broader determinism matrix lives in test_sim_batch.cpp).
TEST(SessionMetrics, MetricsDoNotPerturbTrialResults) {
  MetricRegistry reg_a, reg_b;
  const sim::Session a(sim::Scenario::pool_a().with_seed(5), &reg_a);
  const sim::Session b(sim::Scenario::pool_a().with_seed(5), &reg_b);
  const auto ta = sim::BatchRunner(1, &reg_a).run<sim::TrialKind::kUplink>(a, 6);
  const auto tb = sim::BatchRunner(4, &reg_b).run<sim::TrialKind::kUplink>(b, 6);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    ASSERT_TRUE(ta[i].ok());
    ASSERT_TRUE(tb[i].ok());
    EXPECT_EQ(ta[i].value().sent, tb[i].value().sent) << i;
    EXPECT_EQ(ta[i].value().ber, tb[i].value().ber) << i;
  }
}

// Worker accounting: every executed trial is attributed to exactly one
// worker, and the per-worker counts sum to the batch total.
TEST(BatchMetrics, PerWorkerTrialCountsSumToTotal) {
  MetricRegistry reg;
  const sim::BatchRunner pool(4, &reg);
  (void)pool.map(64, [](std::size_t i) { return i; });
  std::uint64_t per_worker = 0;
  for (unsigned t = 0; t < pool.threads(); ++t)
    per_worker +=
        reg.counter("sim.batch.worker." + std::to_string(t) + ".trials").value();
  EXPECT_EQ(per_worker, 64u);
  EXPECT_EQ(reg.counter("sim.batch.trials").value(), 64u);
  EXPECT_EQ(reg.histogram("sim.batch.dispatch_seconds").count(), 1u);
}

}  // namespace
}  // namespace pab::obs
