// Sensing substrate tests: ADC, I2C bus, MS5837, pH probe.
#include <gtest/gtest.h>

#include <memory>

#include "sense/adc.hpp"
#include "sense/environment.hpp"
#include "sense/i2c.hpp"
#include "sense/ms5837.hpp"
#include "sense/ph.hpp"
#include "util/rng.hpp"

namespace pab::sense {
namespace {

TEST(Adc, CodeVoltageRoundTrip) {
  Adc adc(AdcParams{10, 1.8, 0.0});  // noiseless
  pab::Rng rng(1);
  for (double v : {0.0, 0.45, 0.9, 1.35, 1.79}) {
    const auto code = adc.sample(v, rng);
    EXPECT_NEAR(adc.to_volts(code), v, 1.8 / 1024.0);
  }
}

TEST(Adc, ClipsAtRails) {
  Adc adc(AdcParams{10, 1.8, 0.0});
  pab::Rng rng(2);
  EXPECT_EQ(adc.sample(-0.5, rng), 0);
  EXPECT_EQ(adc.sample(2.5, rng), adc.max_code());
}

TEST(Adc, NoiseIsBounded) {
  Adc adc;  // default 0.5 LSB noise
  pab::Rng rng(3);
  double sum = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) sum += adc.to_volts(adc.sample(0.9, rng));
  EXPECT_NEAR(sum / n, 0.9, 0.002);
}

TEST(I2c, NackOnMissingDevice) {
  I2cBus bus;
  const std::uint8_t cmd = 0x00;
  EXPECT_EQ(bus.write(0x76, std::span(&cmd, 1)), pab::ErrorCode::kBusError);
  EXPECT_FALSE(bus.read(0x76, 1).ok());
}

TEST(I2c, AttachedDeviceResponds) {
  Environment env;
  I2cBus bus;
  bus.attach(kMs5837Address,
             std::make_shared<Ms5837Device>(&env, 0.5, pab::Rng(4)));
  EXPECT_TRUE(bus.has_device(kMs5837Address));
  const std::uint8_t cmd = kMs5837CmdPromBase;
  EXPECT_EQ(bus.write(kMs5837Address, std::span(&cmd, 1)), pab::ErrorCode::kOk);
  auto data = bus.read(kMs5837Address, 2);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().size(), 2u);
}

TEST(Ms5837, CompensationMatchesEnvironment) {
  // Device generates raw counts from the environment; driver compensation
  // must recover the ground truth (paper 6.5: "correct readings of room
  // temperature and atmospheric pressure (around 1 bar)").
  Environment env;
  env.temperature_c = 22.5;
  env.pressure_mbar = 1013.25;
  I2cBus bus;
  bus.attach(kMs5837Address,
             std::make_shared<Ms5837Device>(&env, 0.0, pab::Rng(5)));
  Ms5837Driver driver(&bus);
  auto reading = driver.measure();
  ASSERT_TRUE(reading.ok()) << reading.error().message();
  EXPECT_NEAR(reading.value().temperature_c, 22.5, 0.1);
  EXPECT_NEAR(reading.value().pressure_mbar, 1013.25, 2.0);
}

TEST(Ms5837, DepthAddsHydrostaticPressure) {
  Environment env;
  I2cBus bus;
  bus.attach(kMs5837Address,
             std::make_shared<Ms5837Device>(&env, 10.0, pab::Rng(6)));
  Ms5837Driver driver(&bus);
  auto reading = driver.measure();
  ASSERT_TRUE(reading.ok());
  // ~+980 mbar at 10 m.
  EXPECT_NEAR(reading.value().pressure_mbar, 1013.25 + 980.6, 5.0);
}

TEST(Ms5837, ColdWaterReading) {
  Environment env;
  env.temperature_c = 4.0;
  I2cBus bus;
  bus.attach(kMs5837Address,
             std::make_shared<Ms5837Device>(&env, 0.0, pab::Rng(7)));
  Ms5837Driver driver(&bus);
  auto reading = driver.measure();
  ASSERT_TRUE(reading.ok());
  EXPECT_NEAR(reading.value().temperature_c, 4.0, 0.1);
}

TEST(Ms5837, CompensateKnownVector) {
  // Hand-check the first-order math on the typical PROM constants: raw
  // counts generated for 20.00 C / 1013.2 mbar must invert exactly.
  Environment env;
  env.temperature_c = 20.0;
  env.pressure_mbar = 1013.2;
  I2cBus bus;
  auto dev = std::make_shared<Ms5837Device>(&env, 0.0, pab::Rng(8));
  bus.attach(kMs5837Address, dev);
  Ms5837Driver driver(&bus);
  auto r = driver.measure();
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().temperature_c, 20.0, 0.1);
  EXPECT_NEAR(r.value().pressure_mbar, 1013.2, 2.0);
}

TEST(PhProbe, NernstVoltageAtPh7IsZero) {
  Environment env;
  env.ph = 7.0;
  PhProbeParams params;
  params.noise_v = 0.0;
  PhProbe probe(&env, params);
  pab::Rng rng(9);
  EXPECT_NEAR(probe.electrode_voltage(rng), 0.0, 1e-9);
}

TEST(PhProbe, AcidIsPositive) {
  // Negative slope: pH < 7 gives positive electrode voltage.
  Environment env;
  env.ph = 4.0;
  PhProbeParams params;
  params.noise_v = 0.0;
  PhProbe probe(&env, params);
  pab::Rng rng(10);
  EXPECT_GT(probe.electrode_voltage(rng), 0.1);
}

TEST(PhProbe, AdcRoundTripRecoversPh) {
  // Full chain: electrode -> AFE -> ADC -> MCU conversion (paper 6.5:
  // "We verified that the MCU computes the correct pH (of 7)").
  Environment env;
  env.ph = 7.0;
  env.temperature_c = 25.0;
  PhProbe probe(&env);
  Adc adc;
  pab::Rng rng(11);
  double sum = 0.0;
  const int n = 32;
  for (int i = 0; i < n; ++i) {
    const auto code = adc.sample(probe.afe_output(rng), rng);
    sum += probe.ph_from_adc(code, adc, 25.0);
  }
  EXPECT_NEAR(sum / n, 7.0, 0.05);
}

TEST(PhProbe, RoundTripAcrossRange) {
  Adc adc;
  pab::Rng rng(12);
  for (double truth : {5.0, 6.0, 7.0, 8.0, 9.0}) {
    Environment env;
    env.ph = truth;
    env.temperature_c = 25.0;
    PhProbe probe(&env);
    double sum = 0.0;
    for (int i = 0; i < 16; ++i)
      sum += probe.ph_from_adc(adc.sample(probe.afe_output(rng), rng), adc, 25.0);
    EXPECT_NEAR(sum / 16, truth, 0.1) << "pH " << truth;
  }
}

TEST(Environment, DepthPressure) {
  Environment env;
  EXPECT_NEAR(env.pressure_at_depth_mbar(0.0), 1013.25, 1e-9);
  EXPECT_NEAR(env.pressure_at_depth_mbar(1.0) - env.pressure_at_depth_mbar(0.0),
              98.06, 1e-9);
}

}  // namespace
}  // namespace pab::sense
