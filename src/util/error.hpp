// Lightweight status/expected types used at public API boundaries.
//
// The simulator prefers returning errors over throwing in hot paths (decoders
// run millions of times in Monte-Carlo benches).  `Expected<T>` is a minimal
// value-or-error carrier; exceptional conditions that indicate programmer
// error (precondition violations) still throw std::invalid_argument.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace pab {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kDecodeFailure,     // packet could not be recovered (noise, collision)
  kCrcMismatch,       // packet framed but failed checksum
  kNoPreamble,        // no packet detected in the capture
  kInsufficientPower, // node never reached the power-up threshold
  kTimeout,
  kNotPoweredUp,
  kBusError,
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid argument";
    case ErrorCode::kDecodeFailure: return "decode failure";
    case ErrorCode::kCrcMismatch: return "crc mismatch";
    case ErrorCode::kNoPreamble: return "no preamble detected";
    case ErrorCode::kInsufficientPower: return "insufficient harvested power";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kNotPoweredUp: return "node not powered up";
    case ErrorCode::kBusError: return "peripheral bus error";
  }
  return "unknown";
}

struct Error {
  ErrorCode code = ErrorCode::kOk;
  std::string detail;

  [[nodiscard]] std::string message() const {
    std::string m = to_string(code);
    if (!detail.empty()) m += ": " + detail;
    return m;
  }
};

template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Expected(ErrorCode code, std::string detail = {})
      : error_(Error{code, std::move(detail)}) {}

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::runtime_error("Expected::value on error: " + error_.message());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::runtime_error("Expected::value on error: " + error_.message());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::runtime_error("Expected::value on error: " + error_.message());
    return std::move(*value_);
  }

  [[nodiscard]] const T& value_or(const T& fallback) const& {
    return ok() ? *value_ : fallback;
  }

  [[nodiscard]] const Error& error() const {
    static const Error kNone{};
    return ok() ? kNone : error_;
  }

  [[nodiscard]] ErrorCode code() const {
    return ok() ? ErrorCode::kOk : error_.code;
  }

 private:
  std::optional<T> value_;
  Error error_;
};

// Throws std::invalid_argument when `condition` is false.  Used to validate
// public-API preconditions.
inline void require(bool condition, const char* what) {
  if (!condition) throw std::invalid_argument(what);
}

}  // namespace pab
