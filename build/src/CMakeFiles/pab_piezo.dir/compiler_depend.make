# Empty compiler generated dependencies file for pab_piezo.
# This may be replaced when dependencies are built.
