# Empty compiler generated dependencies file for test_mac.
# This may be replaced when dependencies are built.
