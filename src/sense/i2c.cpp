#include "sense/i2c.hpp"

namespace pab::sense {

void I2cBus::attach(std::uint8_t address, std::shared_ptr<I2cDevice> device) {
  pab::require(device != nullptr, "I2cBus: null device");
  devices_[address] = std::move(device);
}

pab::ErrorCode I2cBus::write(std::uint8_t address,
                             std::span<const std::uint8_t> data) {
  auto it = devices_.find(address);
  if (it == devices_.end()) return pab::ErrorCode::kBusError;
  it->second->write(data);
  return pab::ErrorCode::kOk;
}

pab::Expected<std::vector<std::uint8_t>> I2cBus::read(std::uint8_t address,
                                                      std::size_t n) {
  auto it = devices_.find(address);
  if (it == devices_.end())
    return pab::Error{pab::ErrorCode::kBusError, "no device at address"};
  return it->second->read(n);
}

}  // namespace pab::sense
