file(REMOVE_RECURSE
  "CMakeFiles/pabctl.dir/pabctl.cpp.o"
  "CMakeFiles/pabctl.dir/pabctl.cpp.o.d"
  "pabctl"
  "pabctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pabctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
