# Empty compiler generated dependencies file for pab_energy.
# This may be replaced when dependencies are built.
