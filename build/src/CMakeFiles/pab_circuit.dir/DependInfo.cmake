
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/impedance.cpp" "src/CMakeFiles/pab_circuit.dir/circuit/impedance.cpp.o" "gcc" "src/CMakeFiles/pab_circuit.dir/circuit/impedance.cpp.o.d"
  "/root/repo/src/circuit/matching.cpp" "src/CMakeFiles/pab_circuit.dir/circuit/matching.cpp.o" "gcc" "src/CMakeFiles/pab_circuit.dir/circuit/matching.cpp.o.d"
  "/root/repo/src/circuit/rectifier.cpp" "src/CMakeFiles/pab_circuit.dir/circuit/rectifier.cpp.o" "gcc" "src/CMakeFiles/pab_circuit.dir/circuit/rectifier.cpp.o.d"
  "/root/repo/src/circuit/rectopiezo.cpp" "src/CMakeFiles/pab_circuit.dir/circuit/rectopiezo.cpp.o" "gcc" "src/CMakeFiles/pab_circuit.dir/circuit/rectopiezo.cpp.o.d"
  "/root/repo/src/circuit/storage.cpp" "src/CMakeFiles/pab_circuit.dir/circuit/storage.cpp.o" "gcc" "src/CMakeFiles/pab_circuit.dir/circuit/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_piezo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
