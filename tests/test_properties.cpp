// Property-based (parameterized) tests: invariants swept over wide parameter
// ranges with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "circuit/matching.hpp"
#include "circuit/rectopiezo.hpp"
#include "dsp/iir.hpp"
#include "phy/crc.hpp"
#include "phy/fm0.hpp"
#include "phy/packet.hpp"
#include "phy/pwm.hpp"
#include "piezo/transducer.hpp"
#include "util/rng.hpp"

namespace pab {
namespace {

// --- FM0 round-trip across sizes and seeds ----------------------------------

class Fm0RoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Fm0RoundTrip, EncodeDecodeIdentity) {
  const auto [n_bits, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto bits = rng.bits(static_cast<std::size_t>(n_bits));
  const auto chips = phy::fm0_encode(bits);
  ASSERT_EQ(chips.size(), bits.size() * 2);
  EXPECT_EQ(phy::fm0_decode_hard(chips), bits);
  std::vector<double> soft(chips.begin(), chips.end());
  EXPECT_EQ(phy::fm0_decode_ml(soft), bits);
}

TEST_P(Fm0RoundTrip, ChipsAreAlwaysValid) {
  const auto [n_bits, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 1000);
  const auto chips = phy::fm0_encode(rng.bits(static_cast<std::size_t>(n_bits)));
  for (auto c : chips) EXPECT_TRUE(c == 1 || c == -1);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Fm0RoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 7, 32, 129, 512),
                       ::testing::Values(1, 2, 3)));

// --- PWM round-trip across unit durations -----------------------------------

class PwmRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(PwmRoundTrip, EncodeDecodeIdentity) {
  const double unit_s = GetParam();
  Rng rng(99);
  phy::PwmParams p{unit_s};
  const auto bits = rng.bits(24);
  const auto wave = phy::pwm_encode(bits, p, 96000.0);
  EXPECT_EQ(phy::pwm_decode(wave, p, 96000.0), bits);
}

INSTANTIATE_TEST_SUITE_P(Units, PwmRoundTrip,
                         ::testing::Values(0.5e-3, 1e-3, 2e-3, 5e-3, 10e-3));

// --- CRC detects burst errors -------------------------------------------------

class CrcBurst : public ::testing::TestWithParam<int> {};

TEST_P(CrcBurst, DetectsBurstsUpTo16Bits) {
  const int burst_len = GetParam();
  Rng rng(7);
  const auto bits = rng.bits(128);
  const auto crc = phy::crc16_bits(bits);
  for (std::size_t pos = 0; pos + burst_len <= bits.size(); pos += 13) {
    auto corrupted = bits;
    for (int i = 0; i < burst_len; ++i) corrupted[pos + i] ^= 1;
    EXPECT_NE(phy::crc16_bits(corrupted), crc)
        << "undetected burst of " << burst_len << " at " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Bursts, CrcBurst, ::testing::Values(1, 2, 3, 8, 16));

// --- Packet round-trip across payload sizes -----------------------------------

class PacketRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PacketRoundTrip, UplinkIdentity) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(5 + GetParam());
  phy::UplinkPacket p;
  p.node_id = static_cast<std::uint8_t>(GetParam());
  p.payload = rng.bytes(n);
  const auto back = phy::UplinkPacket::from_bits(p.to_bits());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, p.payload);
  EXPECT_EQ(back->node_id, p.node_id);
}

INSTANTIATE_TEST_SUITE_P(Payloads, PacketRoundTrip,
                         ::testing::Values(0, 1, 2, 4, 16, 64, 255));

// --- Butterworth stability and -3 dB point across orders and cutoffs ----------

class ButterworthSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ButterworthSweep, StableWithCorrectCutoff) {
  const auto [order, cutoff] = GetParam();
  const double fs = 96000.0;
  const auto lp = dsp::butterworth_lowpass(order, cutoff, fs);
  EXPECT_TRUE(lp.is_stable());
  EXPECT_NEAR(std::abs(lp.response(cutoff, fs)), std::sqrt(0.5), 0.03);
  EXPECT_NEAR(std::abs(lp.response(cutoff / 20.0, fs)), 1.0, 0.02);
  const auto hp = dsp::butterworth_highpass(order, cutoff, fs);
  EXPECT_TRUE(hp.is_stable());
  EXPECT_NEAR(std::abs(hp.response(cutoff, fs)), std::sqrt(0.5), 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, ButterworthSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 12),
                       ::testing::Values(500.0, 2000.0, 8000.0, 20000.0)));

// --- Matching network optimality across frequencies and loads ------------------

class MatchingSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MatchingSweep, ConjugateMatchIsOptimal) {
  const auto [f_match, r_load] = GetParam();
  const auto xdcr = piezo::make_node_transducer();
  const auto zs = xdcr.thevenin_impedance(f_match);
  const auto net = circuit::MatchingNetwork::design(zs, r_load, f_match);
  const double at_design =
      net.power_transfer(f_match, zs, circuit::cplx(r_load, 0.0));
  EXPECT_NEAR(at_design, 1.0, 1e-6);
  // Transfer at the design point beats neighbors (local optimality).
  for (double off : {-2000.0, -1000.0, 1000.0, 2000.0}) {
    const auto zs_off = xdcr.thevenin_impedance(f_match + off);
    EXPECT_GE(at_design + 1e-9,
              net.power_transfer(f_match + off, zs_off,
                                 circuit::cplx(r_load, 0.0)))
        << "off=" << off;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Frequencies, MatchingSweep,
    ::testing::Combine(::testing::Values(13000.0, 15000.0, 16500.0, 18000.0),
                       ::testing::Values(1000.0, 20000.0, 100000.0)));

// --- Reflection coefficient bounds across the recto-piezo band -----------------

class GammaBounds : public ::testing::TestWithParam<double> {};

TEST_P(GammaBounds, ReflectionInUnitDisk) {
  const double f_match = GetParam();
  const auto rp = circuit::make_recto_piezo(f_match);
  for (double f = 10000.0; f <= 22000.0; f += 250.0) {
    const double g_abs = std::abs(rp.gamma_absorptive(f));
    const double g_ref = std::abs(rp.gamma_reflective(f));
    EXPECT_LE(g_abs, 1.0 + 1e-9) << f;
    EXPECT_NEAR(g_ref, 1.0, 1e-9) << f;  // short always reflects fully
    EXPECT_GE(rp.harvested_dc_power(f, 50.0), 0.0) << f;
  }
}

INSTANTIATE_TEST_SUITE_P(MatchPoints, GammaBounds,
                         ::testing::Values(14000.0, 15000.0, 16000.0, 17000.0,
                                           18000.0));

// --- FM0 ML decoding degrades monotonically with noise -------------------------

TEST(Fm0NoiseProperty, BerIncreasesWithNoise) {
  Rng rng(31);
  double prev_ber = -1.0;
  for (double sigma : {0.3, 0.8, 1.4}) {
    std::size_t errors = 0, total = 0;
    for (int trial = 0; trial < 30; ++trial) {
      const auto bits = rng.bits(200);
      const auto chips = phy::fm0_encode(bits);
      std::vector<double> soft(chips.size());
      for (std::size_t i = 0; i < soft.size(); ++i)
        soft[i] = chips[i] + rng.gaussian(0.0, sigma);
      errors += hamming_distance(bits, phy::fm0_decode_ml(soft));
      total += bits.size();
    }
    const double ber = static_cast<double>(errors) / static_cast<double>(total);
    EXPECT_GT(ber, prev_ber) << "sigma=" << sigma;
    prev_ber = ber;
  }
}

}  // namespace
}  // namespace pab
