#include "phy/fm0.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>
#include <vector>

#include "dsp/simd.hpp"
#include "util/error.hpp"

namespace pab::phy {

void fm0_encode_into(std::span<const std::uint8_t> bits,
                     std::int8_t initial_level, std::span<std::int8_t> out) {
  require(initial_level == 1 || initial_level == -1, "fm0_encode: level must be +/-1");
  require(out.size() == bits.size() * 2, "fm0_encode_into: output size mismatch");
  std::int8_t level = initial_level;
  std::size_t j = 0;
  for (std::uint8_t bit : bits) {
    level = static_cast<std::int8_t>(-level);  // boundary inversion
    out[j++] = level;
    if ((bit & 1u) == 0) level = static_cast<std::int8_t>(-level);  // data-0 mid inversion
    out[j++] = level;
  }
}

Chips fm0_encode(std::span<const std::uint8_t> bits, std::int8_t initial_level) {
  Chips chips(bits.size() * 2);
  fm0_encode_into(bits, initial_level, chips);
  return chips;
}

Bits fm0_decode_hard(std::span<const std::int8_t> chips, std::int8_t initial_level) {
  require(chips.size() % 2 == 0, "fm0_decode_hard: odd chip count");
  (void)initial_level;  // hard decisions don't need the entry level
  Bits bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2)
    bits.push_back(chips[i] == chips[i + 1] ? 1 : 0);
  return bits;
}

namespace {

// back[t][state] = (previous state, decoded bit); a plain aggregate so the
// arena's trivially-copyable requirement holds (std::pair is not trivial).
struct BackPtr {
  std::int8_t prev;
  std::uint8_t bit;
};
using BackEntry = std::array<BackPtr, 2>;

// The two-state Viterbi shared by the vector wrapper and the arena-backed
// into-kernel; `back` is caller-provided scratch of soft.size()/2 entries.
void decode_ml_core(std::span<const double> soft, std::int8_t initial_level,
                    std::span<BackEntry> back, std::span<std::uint8_t> out) {
  const std::size_t n_bits = soft.size() / 2;
  if (n_bits == 0) return;

  // Viterbi over the line level at the *end* of each bit: state 0 -> -1,
  // state 1 -> +1.  Branch from prev level L: first chip is -L; bit 1 keeps
  // the level (end = -L), bit 0 inverts again (end = L).
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::array<double, 2> metric{kNegInf, kNegInf};
  metric[initial_level > 0 ? 1 : 0] = 0.0;

  for (std::size_t t = 0; t < n_bits; ++t) {
    const double x0 = soft[2 * t];
    const double x1 = soft[2 * t + 1];
    std::array<double, 2> next{kNegInf, kNegInf};
    for (int prev = 0; prev < 2; ++prev) {
      if (metric[prev] == kNegInf) continue;
      const double level_prev = prev == 1 ? 1.0 : -1.0;
      const double c0 = -level_prev;
      // bit = 1: chips (c0, c0), end level = c0.
      {
        const double m = metric[prev] + c0 * x0 + c0 * x1;
        const int end = c0 > 0 ? 1 : 0;
        if (m > next[end]) {
          next[end] = m;
          back[t][end] = {static_cast<std::int8_t>(prev), 1};
        }
      }
      // bit = 0: chips (c0, -c0), end level = -c0.
      {
        const double m = metric[prev] + c0 * x0 - c0 * x1;
        const int end = -c0 > 0 ? 1 : 0;
        if (m > next[end]) {
          next[end] = m;
          back[t][end] = {static_cast<std::int8_t>(prev), 0};
        }
      }
    }
    metric = next;
  }

  // Traceback from the better ending state.
  int state = metric[1] >= metric[0] ? 1 : 0;
  for (std::size_t t = n_bits; t-- > 0;) {
    out[t] = back[t][static_cast<std::size_t>(state)].bit;
    state = back[t][static_cast<std::size_t>(state)].prev;
  }
}

// Vector-dispatch variant: with the per-bit chip sums s[t] = x0+x1 and
// differences d[t] = x0-x1 precomputed (dsp::simd::chip_sum_diff), the four
// branch metrics per step collapse to metric[prev] +/- s or +/- d, and the
// add-compare-select keeps the reference tie-breaking order (prev 0 before
// prev 1, bit 1 before bit 0, strict improvement).  Tolerance path: c0*(x0+x1)
// rounds differently from c0*x0 + c0*x1.
void decode_ml_core_sumdiff(std::span<const double> s, std::span<const double> d,
                            std::int8_t initial_level, std::span<BackEntry> back,
                            std::span<std::uint8_t> out) {
  const std::size_t n_bits = out.size();
  if (n_bits == 0) return;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::array<double, 2> metric{kNegInf, kNegInf};
  metric[initial_level > 0 ? 1 : 0] = 0.0;
  for (std::size_t t = 0; t < n_bits; ++t) {
    // End state 1: (prev 0, bit 1) then (prev 1, bit 0).
    const double m1a = metric[0] + s[t];
    const double m1b = metric[1] - d[t];
    // End state 0: (prev 0, bit 0) then (prev 1, bit 1).
    const double m0a = metric[0] + d[t];
    const double m0b = metric[1] - s[t];
    if (m1a >= m1b) {
      metric[1] = m1a;
      back[t][1] = {0, 1};
    } else {
      metric[1] = m1b;
      back[t][1] = {1, 0};
    }
    if (m0a >= m0b) {
      metric[0] = m0a;
      back[t][0] = {0, 0};
    } else {
      metric[0] = m0b;
      back[t][0] = {1, 1};
    }
  }
  int state = metric[1] >= metric[0] ? 1 : 0;
  for (std::size_t t = n_bits; t-- > 0;) {
    out[t] = back[t][static_cast<std::size_t>(state)].bit;
    state = back[t][static_cast<std::size_t>(state)].prev;
  }
}

}  // namespace

void fm0_decode_ml_into(std::span<const double> soft, std::int8_t initial_level,
                        std::span<std::uint8_t> out, dsp::Arena& scratch) {
  require(soft.size() % 2 == 0, "fm0_decode_ml: odd chip count");
  require(initial_level == 1 || initial_level == -1, "fm0_decode_ml: level must be +/-1");
  require(out.size() == soft.size() / 2, "fm0_decode_ml_into: output size mismatch");
  const auto frame = scratch.frame();
  const auto back = scratch.alloc<BackEntry>(out.size());
  if (dsp::simd::enabled() && !out.empty()) {
    const auto sum = scratch.alloc<double>(out.size());
    const auto diff = scratch.alloc<double>(out.size());
    dsp::simd::chip_sum_diff(soft, sum, diff);
    decode_ml_core_sumdiff(sum, diff, initial_level, back, out);
    return;
  }
  decode_ml_core(soft, initial_level, back, out);
}

Bits fm0_decode_ml(std::span<const double> soft, std::int8_t initial_level) {
  require(soft.size() % 2 == 0, "fm0_decode_ml: odd chip count");
  require(initial_level == 1 || initial_level == -1, "fm0_decode_ml: level must be +/-1");
  const std::size_t n_bits = soft.size() / 2;
  if (n_bits == 0) return {};
  std::vector<BackEntry> back(n_bits);
  Bits bits(n_bits);
  if (dsp::simd::enabled()) {
    std::vector<double> sum(n_bits);
    std::vector<double> diff(n_bits);
    dsp::simd::chip_sum_diff(soft, sum, diff);
    decode_ml_core_sumdiff(sum, diff, initial_level, back, bits);
    return bits;
  }
  decode_ml_core(soft, initial_level, back, bits);
  return bits;
}

}  // namespace pab::phy
