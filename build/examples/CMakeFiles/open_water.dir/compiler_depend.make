# Empty compiler generated dependencies file for open_water.
# This may be replaced when dependencies are built.
