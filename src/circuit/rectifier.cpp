#include "circuit/rectifier.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pab::circuit {

Rectifier::Rectifier(RectifierParams p) : params_(p) {
  require(p.stages >= 1, "Rectifier: need at least one stage");
  require(p.diode_drop_v >= 0.0, "Rectifier: negative diode drop");
  require(p.input_resistance > 0.0, "Rectifier: input resistance must be positive");
}

double Rectifier::open_circuit_dc(double v_in) const {
  require(v_in >= 0.0, "Rectifier: negative input amplitude");
  return std::max(0.0, 2.0 * static_cast<double>(params_.stages) *
                           (v_in - params_.diode_drop_v));
}

double Rectifier::efficiency(double v_in) const {
  if (v_in <= params_.diode_drop_v) return 0.0;
  const double r = (v_in - params_.diode_drop_v) / v_in;
  return std::clamp(r * r, 0.0, 1.0);
}

double Rectifier::dc_power(double p_in, double v_in) const {
  require(p_in >= 0.0, "Rectifier: negative input power");
  return p_in * efficiency(v_in);
}

}  // namespace pab::circuit
