// Open-water deployment study (paper section 8: rivers, lakes, oceans).
//
// Moves PAB out of the test tank: free-field spreading, Wenz ambient noise
// as a function of sea state, power-up and uplink budgets vs range, the
// Doppler a drifting node imposes, and the fading a heaving surface adds to
// a shallow link.
#include <cstdio>

#include "channel/noise.hpp"
#include "channel/timevarying.hpp"
#include "channel/water.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/projector.hpp"
#include "energy/mcu.hpp"
#include "util/units.hpp"

int main() {
  using namespace pab;
  constexpr double kCarrier = 15000.0;
  constexpr double kBitrate = 1000.0;

  std::printf("PAB in open water\n=================\n\n");

  // Sea-state dependent noise at the operating band.
  std::printf("ambient noise at 15 kHz (Wenz):\n");
  std::printf("  calm (2 m/s wind):   %.1f dB re uPa^2/Hz\n",
              channel::wenz_noise_psd_db(kCarrier, 0.3, 2.0));
  std::printf("  moderate (8 m/s):    %.1f dB re uPa^2/Hz\n",
              channel::wenz_noise_psd_db(kCarrier, 0.5, 8.0));
  std::printf("  storm (18 m/s):      %.1f dB re uPa^2/Hz\n\n",
              channel::wenz_noise_psd_db(kCarrier, 0.7, 18.0));

  // Link budgets vs range, free field.
  const core::Projector projector(piezo::make_projector_transducer(), 350.0);
  const auto node = circuit::make_recto_piezo(15000.0);
  const energy::McuPowerModel mcu;
  const double p1m = projector.pressure_at_1m(kCarrier);
  const channel::NoiseModel noise = channel::sea_noise(kCarrier, 0.5, 8.0);
  const double noise_rms = noise.rms_pressure_pa(2.0 * kBitrate);

  std::printf("projector at 350 V: %.0f Pa @ 1 m (SL %.1f dB re uPa)\n\n", p1m,
              projector.drive_voltage() > 0
                  ? spl_db_re_upa(p1m / std::numbers::sqrt2)
                  : 0.0);
  std::printf("range [m]  incident [Pa]  harvest [uW]  power-up  uplink SNR [dB]\n");
  double max_powerup = 0.0, max_uplink = 0.0;
  for (double d = 1.0; d <= 256.0; d *= 2.0) {
    const double g = channel::path_amplitude_gain(d, kCarrier);
    const double incident = p1m * g;
    const double harvest = node.harvested_dc_power(kCarrier, incident);
    const bool up = harvest >= mcu.idle_power_w() &&
                    node.rectified_open_voltage(kCarrier, incident) >= 2.5;
    const double mod_at_rx = incident * node.modulation_depth(kCarrier) * g;
    const double snr = db_from_amplitude_ratio(
        (mod_at_rx / std::numbers::sqrt2) / noise_rms);
    if (up) max_powerup = d;
    if (snr >= 2.0) max_uplink = d;
    std::printf("%8.0f   %11.2f   %10.2f   %-8s  %8.1f\n", d, incident,
                harvest * 1e6, up ? "yes" : "no", snr);
  }
  std::printf("\npower-up range: ~%.0f m; uplink-limited range: ~%.0f m\n",
              max_powerup, max_uplink);
  std::printf("(the energy budget, not the uplink SNR, gates battery-free\n"
              " operation -- the paper's motivation for battery-assisted\n"
              " hybrids in deep water)\n\n");

  // Mobility: a node drifting with a current.
  channel::MovingPathConfig drift;
  drift.source = {0, 0, 0};
  drift.rx_start = {50.0, 0, 0};
  drift.rx_velocity = {-0.5, 0, 0};
  std::printf("a 0.5 m/s drift imposes %.1f Hz of Doppler at 15 kHz\n",
              channel::doppler_shift_hz(drift, kCarrier));

  // Waves on a shallow link.
  channel::WavySurfaceConfig waves;
  waves.source = {0, 0, 2.0};
  waves.receiver = {30.0, 0, 2.0};
  waves.surface_z = 5.0;
  waves.wave_amplitude = 0.25;
  std::printf("0.25 m swell on a 30 m shallow link: %.1f dB fade depth\n",
              channel::fade_depth_db(waves, kCarrier));
  std::printf("-> interleaving/retransmission headroom the MAC must budget.\n");
  return 0;
}
