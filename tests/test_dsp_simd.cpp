// Equality contract of the dsp::simd dispatch layer and the overlap-save FFT
// convolution (DESIGN.md §12): under forced scalar dispatch every kernel is
// bit-identical to the reference loop it replaced; under a vector ISA or the
// FFT path results agree within 1e-9 relative.  The suite runs unchanged (and
// collapses to all-exact) when PAB_SIMD=off forces scalar at startup.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "channel/propagation.hpp"
#include "dsp/arena.hpp"
#include "dsp/fftconv.hpp"
#include "dsp/fir.hpp"
#include "dsp/mixer.hpp"
#include "dsp/simd.hpp"
#include "phy/fm0.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pab::dsp {
namespace {

using simd::DispatchGuard;
using simd::Isa;

// The vector ISA the host auto-detected at startup (kScalar under
// PAB_SIMD=off or on hosts without AVX2/NEON -- the tolerance cases then
// compare scalar against scalar, which is fine).
Isa host_isa() {
  static const Isa isa = simd::active();
  return isa;
}

std::vector<double> random_vec(Rng& rng, std::size_t n, double scale = 1.0) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.gaussian(0.0, scale);
  return v;
}

std::vector<cplx> random_cvec(Rng& rng, std::size_t n) {
  std::vector<cplx> v(n);
  for (auto& x : v) x = {rng.gaussian(), rng.gaussian()};
  return v;
}

void expect_close(double want, double got, double ref_scale,
                  const char* what, std::size_t i = 0) {
  const double tol = 1e-9 * std::max(ref_scale, 1.0);
  EXPECT_NEAR(want, got, tol) << what << " sample " << i;
}

double max_abs(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

// ---- scalar table == reference loops, bit for bit ---------------------------

TEST(SimdDispatch, ScalarTableMatchesReferenceLoopsExactly) {
  Rng rng(1);
  const auto a = random_vec(rng, 257);
  const auto b = random_vec(rng, 257);
  const auto cx = random_cvec(rng, 191);
  const auto ct = random_cvec(rng, 191);

  const DispatchGuard guard(Isa::kScalar, false);

  double want_sum = 0.0;
  for (double v : a) want_sum += v;
  EXPECT_EQ(want_sum, simd::sum(a));

  double want_dot = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) want_dot += a[i] * b[i];
  EXPECT_EQ(want_dot, simd::dot(a, b));

  cplx want_dc{};
  for (std::size_t i = 0; i < cx.size(); ++i)
    want_dc += cx[i] * std::conj(ct[i]);
  EXPECT_EQ(want_dc, simd::dot_conj(cx, ct));

  const double mean = want_sum / static_cast<double>(a.size());
  double want_cov = 0.0, want_var = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xc = a[i] - mean;
    want_cov += xc * b[i];
    want_var += xc * xc;
  }
  const auto [cov, var] = simd::centered_cov_var(a, b, mean);
  EXPECT_EQ(want_cov, cov);
  EXPECT_EQ(want_var, var);

  auto want_axpy = b;
  for (std::size_t i = 0; i < a.size(); ++i) want_axpy[i] += 0.37 * a[i];
  auto got_axpy = b;
  simd::axpy(0.37, a, got_axpy);
  EXPECT_EQ(want_axpy, got_axpy);

  std::vector<double> want_mag(cx.size()), got_mag(cx.size());
  for (std::size_t i = 0; i < cx.size(); ++i) want_mag[i] = std::abs(cx[i]);
  simd::magnitude(cx, got_mag);
  EXPECT_EQ(want_mag, got_mag);

  const double w = kTwoPi * 18500.0 / 96000.0;
  std::vector<cplx> want_down(a.size()), got_down(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ph = w * static_cast<double>(i);
    want_down[i] = 2.0 * a[i] * cplx(std::cos(ph), -std::sin(ph));
  }
  simd::mix_down(a, w, got_down);
  EXPECT_EQ(want_down, got_down);

  std::vector<double> want_up(cx.size()), got_up(cx.size());
  for (std::size_t i = 0; i < cx.size(); ++i) {
    const double ph = w * static_cast<double>(i);
    want_up[i] = cx[i].real() * std::cos(ph) - cx[i].imag() * std::sin(ph);
  }
  simd::mix_up(cx, w, got_up);
  EXPECT_EQ(want_up, got_up);

  std::vector<double> want_tone(300), got_tone(300);
  for (std::size_t i = 0; i < want_tone.size(); ++i)
    want_tone[i] = 0.8 * std::sin(w * static_cast<double>(i) + 0.3);
  simd::tone(w, 0.8, 0.3, got_tone);
  EXPECT_EQ(want_tone, got_tone);

  const auto soft = random_vec(rng, 2 * 77);
  std::vector<double> ws(77), wd(77), gs(77), gd(77);
  for (std::size_t t = 0; t < 77; ++t) {
    ws[t] = soft[2 * t] + soft[2 * t + 1];
    wd[t] = soft[2 * t] - soft[2 * t + 1];
  }
  simd::chip_sum_diff(soft, gs, gd);
  EXPECT_EQ(ws, gs);
  EXPECT_EQ(wd, gd);
}

// ---- vector tables within 1e-9 relative of scalar ---------------------------

TEST(SimdDispatch, VectorKernelsMatchScalarWithinTolerance) {
  Rng rng(2);
  // Odd sizes exercise the vector tails.
  const auto a = random_vec(rng, 1001);
  const auto b = random_vec(rng, 1001);
  const auto cx = random_cvec(rng, 773);
  const auto ct = random_cvec(rng, 773);
  const double w = kTwoPi * 18500.0 / 96000.0;

  double s_sum, s_dot;
  cplx s_dc;
  simd::CovVar s_cv{};
  std::vector<double> s_axpy, s_mag(cx.size()), s_up(cx.size()), s_tone(900);
  std::vector<cplx> s_caxpy, s_down(a.size()), s_cmul(cx.size());
  {
    const DispatchGuard guard(Isa::kScalar, false);
    s_sum = simd::sum(a);
    s_dot = simd::dot(a, b);
    s_dc = simd::dot_conj(cx, ct);
    s_cv = simd::centered_cov_var(a, b, s_sum / 1001.0);
    s_axpy = b;
    simd::axpy(0.37, a, s_axpy);
    s_caxpy = ct;
    simd::axpy(cplx(0.3, -0.4), cx, s_caxpy);
    simd::magnitude(cx, s_mag);
    simd::cmul(cx, ct, s_cmul);
    simd::mix_down(a, w, s_down);
    simd::mix_up(cx, w, s_up);
    simd::tone(w, 0.8, 0.3, s_tone);
  }

  const DispatchGuard guard(host_isa(), true);
  expect_close(s_sum, simd::sum(a), max_abs(a) * 1001, "sum");
  expect_close(s_dot, simd::dot(a, b), std::abs(s_dot) + 1001, "dot");
  const cplx v_dc = simd::dot_conj(cx, ct);
  expect_close(s_dc.real(), v_dc.real(), std::abs(s_dc) + 773, "dot_conj.re");
  expect_close(s_dc.imag(), v_dc.imag(), std::abs(s_dc) + 773, "dot_conj.im");
  const auto v_cv = simd::centered_cov_var(a, b, s_sum / 1001.0);
  expect_close(s_cv.cov, v_cv.cov, std::abs(s_cv.cov) + 1001, "cov");
  expect_close(s_cv.var, v_cv.var, s_cv.var, "var");

  auto v_axpy = b;
  simd::axpy(0.37, a, v_axpy);
  for (std::size_t i = 0; i < v_axpy.size(); ++i)
    expect_close(s_axpy[i], v_axpy[i], std::abs(s_axpy[i]), "axpy", i);
  auto v_caxpy = ct;
  simd::axpy(cplx(0.3, -0.4), cx, v_caxpy);
  for (std::size_t i = 0; i < v_caxpy.size(); ++i) {
    expect_close(s_caxpy[i].real(), v_caxpy[i].real(), 10.0, "caxpy.re", i);
    expect_close(s_caxpy[i].imag(), v_caxpy[i].imag(), 10.0, "caxpy.im", i);
  }

  std::vector<double> v_mag(cx.size());
  simd::magnitude(cx, v_mag);
  for (std::size_t i = 0; i < v_mag.size(); ++i)
    expect_close(s_mag[i], v_mag[i], s_mag[i], "magnitude", i);

  std::vector<cplx> v_cmul(cx.size());
  simd::cmul(cx, ct, v_cmul);
  for (std::size_t i = 0; i < v_cmul.size(); ++i) {
    expect_close(s_cmul[i].real(), v_cmul[i].real(), 10.0, "cmul.re", i);
    expect_close(s_cmul[i].imag(), v_cmul[i].imag(), 10.0, "cmul.im", i);
  }

  std::vector<cplx> v_down(a.size());
  simd::mix_down(a, w, v_down);
  for (std::size_t i = 0; i < v_down.size(); ++i) {
    expect_close(s_down[i].real(), v_down[i].real(), 10.0, "mix_down.re", i);
    expect_close(s_down[i].imag(), v_down[i].imag(), 10.0, "mix_down.im", i);
  }
  std::vector<double> v_up(cx.size());
  simd::mix_up(cx, w, v_up);
  for (std::size_t i = 0; i < v_up.size(); ++i)
    expect_close(s_up[i], v_up[i], 10.0, "mix_up", i);
  std::vector<double> v_tone(900);
  simd::tone(w, 0.8, 0.3, v_tone);
  for (std::size_t i = 0; i < v_tone.size(); ++i)
    expect_close(s_tone[i], v_tone[i], 1.0, "tone", i);
}

TEST(SimdDispatch, GuardRestoresPreviousState) {
  const Isa before = simd::active();
  const bool conv_before = simd::fftconv_enabled();
  {
    const DispatchGuard guard(Isa::kScalar, false);
    EXPECT_EQ(simd::active(), Isa::kScalar);
    EXPECT_FALSE(simd::enabled());
    EXPECT_FALSE(simd::fftconv_enabled());
  }
  EXPECT_EQ(simd::active(), before);
  EXPECT_EQ(simd::fftconv_enabled(), conv_before);
}

// ---- FM0 ML decoder: vector branch agrees with the reference Viterbi --------

TEST(SimdDispatch, Fm0MlDecodeAgreesAcrossDispatch) {
  Rng rng(3);
  for (const double sigma : {0.2, 0.6, 1.2}) {
    const auto bits = rng.bits(600);
    const auto chips = phy::fm0_encode(bits);
    std::vector<double> soft(chips.size());
    for (std::size_t i = 0; i < soft.size(); ++i)
      soft[i] = chips[i] + rng.gaussian(0.0, sigma);
    Bits scalar_bits, vector_bits;
    {
      const DispatchGuard guard(Isa::kScalar, false);
      scalar_bits = phy::fm0_decode_ml(soft);
    }
    {
      const DispatchGuard guard(host_isa(), true);
      vector_bits = phy::fm0_decode_ml(soft);
    }
    EXPECT_EQ(scalar_bits, vector_bits) << "sigma " << sigma;
  }
}

// ---- overlap-save FFT convolution -------------------------------------------

TEST(FftConv, FullConvolutionMatchesNaiveWithinTolerance) {
  Rng rng(4);
  const auto h = random_vec(rng, 37);
  const auto x = random_vec(rng, 700);
  std::vector<double> naive(x.size() + h.size() - 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t k = 0; k < h.size(); ++k) naive[i + k] += x[i] * h[k];

  std::vector<double> got(naive.size());
  fftconv_full(h, x, got);
  const double scale = max_abs(naive);
  for (std::size_t i = 0; i < naive.size(); ++i)
    expect_close(naive[i], got[i], scale, "fftconv_full", i);

  // Complex pair through the same path.
  const auto ch = random_cvec(rng, 21);
  const auto cx = random_cvec(rng, 500);
  std::vector<cplx> cnaive(cx.size() + ch.size() - 1, cplx{});
  for (std::size_t i = 0; i < cx.size(); ++i)
    for (std::size_t k = 0; k < ch.size(); ++k) cnaive[i + k] += cx[i] * ch[k];
  std::vector<cplx> cgot(cnaive.size());
  fftconv_full(ch, cx, cgot);
  for (std::size_t i = 0; i < cnaive.size(); ++i) {
    expect_close(cnaive[i].real(), cgot[i].real(), 40.0, "cfull.re", i);
    expect_close(cnaive[i].imag(), cgot[i].imag(), 40.0, "cfull.im", i);
  }
}

TEST(FftConv, SameAlignedFirMatchesDirectPath) {
  Rng rng(5);
  // Kernel long enough to clear the crossover, signal >= 2x kernel.
  const auto h = random_vec(rng, 129, 0.2);
  const auto x = random_vec(rng, 2000);
  std::vector<double> direct(x.size());
  {
    const DispatchGuard guard(Isa::kScalar, false);
    fir_filter_into(h, x, direct);
  }
  std::vector<double> fft_path(x.size());
  fftconv_fir(h, x, fft_path);
  const double scale = max_abs(direct);
  for (std::size_t i = 0; i < x.size(); ++i)
    expect_close(direct[i], fft_path[i], scale, "fftconv_fir", i);

  // The public dispatcher takes the same FFT path for long kernels; it must
  // agree with the scalar-forced direct loop too.
  std::vector<double> dispatched(x.size());
  {
    const DispatchGuard guard(host_isa(), true);
    fir_filter_into(h, x, dispatched);
  }
  for (std::size_t i = 0; i < x.size(); ++i)
    expect_close(direct[i], dispatched[i], scale, "dispatched fir", i);
}

TEST(FftConv, PlanCacheReusesPlansAcrossCalls) {
  Rng rng(6);
  const auto h = random_vec(rng, 64);
  const auto x = random_vec(rng, 600);
  std::vector<double> y(x.size() + h.size() - 1);
  fftconv_full(h, x, y);
  const std::size_t planned = fftconv_plan_cache_size();
  EXPECT_GE(planned, 1u);
  fftconv_full(h, x, y);  // same sizes -> no new plan
  EXPECT_EQ(fftconv_plan_cache_size(), planned);
}

// ---- channel tap convolution through the FFT path ---------------------------

TEST(FftConv, ApplyTapsFftPathMatchesDirectAccumulation) {
  Rng rng(7);
  const double fs = 96000.0;
  std::vector<channel::PathTap> taps;
  for (int k = 0; k < 12; ++k) {
    channel::PathTap t;
    t.delay_s = (1.0 + 0.37 * k) * 1e-3;  // fractional sample delays
    t.gain = 0.8 / (1.0 + k);
    taps.push_back(t);
  }
  const auto x = random_vec(rng, 4000);
  const std::size_t out_len = channel::apply_taps_length(x.size(), fs, taps);

  std::vector<double> direct(out_len);
  {
    const DispatchGuard guard(Isa::kScalar, false);
    channel::apply_taps_into(x, fs, taps, direct);
  }
  std::vector<double> fft_path(out_len);
  {
    const DispatchGuard guard(host_isa(), true);
    Arena arena;
    channel::apply_taps_into(x, fs, taps, fft_path, arena);
  }
  const double scale = max_abs(direct);
  for (std::size_t i = 0; i < out_len; ++i)
    expect_close(direct[i], fft_path[i], scale, "apply_taps", i);

  // Baseband variant with carrier phase rotations.
  const auto cx = random_cvec(rng, 4000);
  const std::size_t cout_len = channel::apply_taps_length(cx.size(), fs, taps);
  std::vector<cplx> cdirect(cout_len), cfft(cout_len);
  {
    const DispatchGuard guard(Isa::kScalar, false);
    channel::apply_taps_baseband_into(cx, fs, 18500.0, taps, cdirect);
  }
  {
    const DispatchGuard guard(host_isa(), true);
    Arena arena;
    channel::apply_taps_baseband_into(cx, fs, 18500.0, taps, cfft, arena);
  }
  for (std::size_t i = 0; i < cout_len; ++i) {
    expect_close(cdirect[i].real(), cfft[i].real(), 10.0, "taps_bb.re", i);
    expect_close(cdirect[i].imag(), cfft[i].imag(), 10.0, "taps_bb.im", i);
  }
}

// ---- fir_filter group-delay and aliasing contracts (satellite) --------------

TEST(FirFilter, GroupDelayAlignsImpulseAtEdgesAndMiddle) {
  const auto h = design_lowpass_fir(4000.0, 96000.0, 31);
  constexpr std::size_t kN = 256;
  for (const std::size_t pos : {std::size_t{0}, kN / 2, kN - 1}) {
    std::vector<double> x(kN, 0.0);
    x[pos] = 1.0;
    const auto y = fir_filter(h, x);
    ASSERT_EQ(y.size(), x.size());
    const std::size_t peak = static_cast<std::size_t>(
        std::distance(y.begin(), std::max_element(y.begin(), y.end())));
    EXPECT_EQ(peak, pos) << "impulse at " << pos
                         << " should round-trip to the same index";
  }
}

TEST(FirFilter, GroupDelayPropertyHoldsOnEveryDispatchPath) {
  // Long kernel so the FFT path engages; the alignment contract must be
  // dispatch-invariant.
  const auto h = design_lowpass_fir(4000.0, 96000.0, 129);
  constexpr std::size_t kN = 1024;
  for (const bool vector_path : {false, true}) {
    const DispatchGuard guard(vector_path ? host_isa() : Isa::kScalar,
                              vector_path);
    for (const std::size_t pos : {std::size_t{0}, kN / 2, kN - 1}) {
      std::vector<double> x(kN, 0.0);
      x[pos] = 1.0;
      const auto y = fir_filter(h, x);
      const std::size_t peak = static_cast<std::size_t>(
          std::distance(y.begin(), std::max_element(y.begin(), y.end())));
      EXPECT_EQ(peak, pos) << "impulse at " << pos << ", vector_path "
                           << vector_path;
    }
  }
}

TEST(FirFilter, RejectsAliasedOutput) {
  const auto h = design_lowpass_fir(4000.0, 96000.0, 15);
  std::vector<double> buf(100, 1.0);
  const std::span<double> s(buf);
  // In-place filtering corrupts later windows; the kernel must refuse.
  EXPECT_THROW(fir_filter_into(h, std::span<const double>(s), s),
               std::invalid_argument);
  // Partial overlap is just as invalid.
  EXPECT_THROW(
      fir_filter_into(h, std::span<const double>(s.data(), 50),
                      s.subspan(10, 50)),
      std::invalid_argument);
  // Disjoint halves are fine.
  std::vector<double> io(200, 1.0);
  const std::span<double> whole(io);
  EXPECT_NO_THROW(fir_filter_into(h, std::span<const double>(whole.data(), 100),
                                  whole.subspan(100)));
}

}  // namespace
}  // namespace pab::dsp
