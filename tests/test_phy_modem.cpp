// Modem, metrics, CFO, and MIMO collision decoding tests.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/mixer.hpp"
#include "phy/cfo.hpp"
#include "phy/fm0.hpp"
#include "phy/metrics.hpp"
#include "phy/mimo.hpp"
#include "phy/modem.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pab::phy {
namespace {

// Build a clean synthetic envelope carrying preamble+bits at the given rates.
std::vector<double> synth_envelope(const Bits& data, double bitrate, double fs,
                                   double mid, double amp, std::size_t lead,
                                   pab::Rng* rng = nullptr, double noise = 0.0) {
  Bits full(uplink_preamble_bits());
  full.insert(full.end(), data.begin(), data.end());
  const auto sw = backscatter_waveform(full, bitrate, fs);
  std::vector<double> env(lead, mid - amp);
  for (auto s : sw)
    env.push_back(s == SwitchState::kReflective ? mid + amp : mid - amp);
  env.insert(env.end(), lead, mid - amp);
  if (rng != nullptr)
    for (auto& v : env) v += rng->gaussian(0.0, noise);
  return env;
}

TEST(Modem, SwitchWaveformLengthAndLevels) {
  const Bits bits = {1, 0, 1};
  const auto sw = backscatter_waveform(bits, 1000.0, 96000.0);
  EXPECT_EQ(sw.size(), static_cast<std::size_t>(6 * 48));  // 6 chips * 48 samp
  // First chip of first bit is reflective (boundary flip from -1).
  EXPECT_EQ(sw.front(), SwitchState::kReflective);
}

TEST(Modem, CleanEnvelopeDecodes) {
  pab::Rng rng(1);
  const auto bits = rng.bits(64);
  const auto env = synth_envelope(bits, 1000.0, 96000.0, 1.0, 0.05, 500);
  BackscatterDemodulator demod(DemodConfig{});
  const auto r = demod.demodulate_envelope(env, 96000.0, bits.size());
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_EQ(r.value().bits, bits);
  EXPECT_NEAR(r.value().channel_amp, 0.05, 0.005);
  EXPECT_GT(r.value().preamble_corr, 0.95);
}

TEST(Modem, InvertedEnvelopeDecodes) {
  // Anti-phase backscatter flips the levels; the demodulator must cope.
  pab::Rng rng(2);
  const auto bits = rng.bits(64);
  auto env = synth_envelope(bits, 1000.0, 96000.0, 1.0, -0.05, 500);
  BackscatterDemodulator demod(DemodConfig{});
  const auto r = demod.demodulate_envelope(env, 96000.0, bits.size());
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_EQ(r.value().bits, bits);
}

TEST(Modem, NoisyEnvelopeLowBer) {
  pab::Rng rng(3);
  const auto bits = rng.bits(256);
  const auto env =
      synth_envelope(bits, 1000.0, 96000.0, 1.0, 0.05, 300, &rng, 0.05);
  BackscatterDemodulator demod(DemodConfig{});
  const auto r = demod.demodulate_envelope(env, 96000.0, bits.size());
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_LT(bit_error_rate(bits, r.value().bits), 0.02);
}

TEST(Modem, NoPacketReturnsNoPreamble) {
  pab::Rng rng(4);
  std::vector<double> env(20000, 1.0);
  for (auto& v : env) v += rng.gaussian(0.0, 0.001);
  BackscatterDemodulator demod(DemodConfig{});
  const auto r = demod.demodulate_envelope(env, 96000.0, 32);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), pab::ErrorCode::kNoPreamble);
}

TEST(Modem, FractionalSamplesPerChip) {
  // 2.8 kbps at 96 kHz -> 17.14 samples/chip; must still decode.
  pab::Rng rng(5);
  const auto bits = rng.bits(96);
  const auto env = synth_envelope(bits, 2800.0, 96000.0, 1.0, 0.05, 400);
  DemodConfig cfg;
  cfg.bitrate = 2800.0;
  BackscatterDemodulator demod(cfg);
  const auto r = demod.demodulate_envelope(env, 96000.0, bits.size());
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_EQ(r.value().bits, bits);
}

TEST(Modem, SnrEstimateTracksNoise) {
  pab::Rng rng(6);
  const auto bits = rng.bits(128);
  const auto quiet =
      synth_envelope(bits, 1000.0, 96000.0, 1.0, 0.05, 300, &rng, 0.005);
  const auto loud =
      synth_envelope(bits, 1000.0, 96000.0, 1.0, 0.05, 300, &rng, 0.05);
  BackscatterDemodulator demod(DemodConfig{});
  const auto rq = demod.demodulate_envelope(quiet, 96000.0, bits.size());
  const auto rl = demod.demodulate_envelope(loud, 96000.0, bits.size());
  ASSERT_TRUE(rq.ok() && rl.ok());
  EXPECT_GT(rq.value().snr_db, rl.value().snr_db + 10.0);
}

TEST(LinkQuality, FromErrorRatioIsConsistentTrio) {
  const auto q = link_quality_from_error_ratio(0.01, 2000.0);
  EXPECT_NEAR(q.mer_db, 20.0, 1e-12);
  EXPECT_NEAR(q.evm_rms, 0.1, 1e-12);
  EXPECT_NEAR(q.cn0_dbhz, 20.0 + 10.0 * std::log10(2000.0), 1e-12);
  // Error-free decode: EVM 0, MER pinned at the clamp.
  const auto clean = link_quality_from_error_ratio(0.0, 2000.0);
  EXPECT_EQ(clean.evm_rms, 0.0);
  EXPECT_EQ(clean.mer_db, kMerClampDb);
  // Error dominating signal clamps at the other end.
  const auto swamped = link_quality_from_error_ratio(1e12, 2000.0);
  EXPECT_EQ(swamped.mer_db, -kMerClampDb);
  EXPECT_TRUE(std::isfinite(swamped.evm_rms));
}

TEST(LinkQuality, FromSnrMatchesErrorRatioInverse) {
  // The model-level constructor and the waveform-level one agree: an SNR of
  // x dB is the error ratio 10^(-x/10).
  for (const double snr : {-10.0, 0.0, 12.5, 40.0}) {
    const auto a = link_quality_from_snr(snr, 1000.0);
    const auto b =
        link_quality_from_error_ratio(std::pow(10.0, -snr / 10.0), 1000.0);
    EXPECT_NEAR(a.mer_db, b.mer_db, 1e-9) << snr;
    EXPECT_NEAR(a.evm_rms, b.evm_rms, 1e-9) << snr;
    EXPECT_NEAR(a.cn0_dbhz, b.cn0_dbhz, 1e-9) << snr;
  }
  // Out-of-clamp SNRs pin MER exactly like the packet estimator does.
  EXPECT_EQ(link_quality_from_snr(80.0, 1000.0).mer_db, kMerClampDb);
  EXPECT_EQ(link_quality_from_snr(-80.0, 1000.0).mer_db, -kMerClampDb);
}

TEST(LinkQuality, DemodulatorPublishesQualityAlongsideSnr) {
  pab::Rng rng(9);
  const auto bits = rng.bits(96);
  const auto quiet =
      synth_envelope(bits, 1000.0, 96000.0, 1.0, 0.05, 300, &rng, 0.005);
  const auto loud =
      synth_envelope(bits, 1000.0, 96000.0, 1.0, 0.05, 300, &rng, 0.05);
  BackscatterDemodulator demod(DemodConfig{});
  const auto rq = demod.demodulate_envelope(quiet, 96000.0, bits.size());
  const auto rl = demod.demodulate_envelope(loud, 96000.0, bits.size());
  ASSERT_TRUE(rq.ok() && rl.ok());
  // FM0's MER and the paper's SNR estimator are the same quantity.
  EXPECT_NEAR(rq.value().quality.mer_db, rq.value().snr_db, 1e-9);
  EXPECT_NEAR(rl.value().quality.mer_db, rl.value().snr_db, 1e-9);
  // The trio tracks the channel the same way SNR does.
  EXPECT_GT(rq.value().quality.mer_db, rl.value().quality.mer_db);
  EXPECT_LT(rq.value().quality.evm_rms, rl.value().quality.evm_rms);
  EXPECT_GT(rq.value().quality.cn0_dbhz, rq.value().quality.mer_db);
}

TEST(Metrics, BitErrorRate) {
  const Bits a = {1, 0, 1, 0};
  const Bits b = {1, 1, 1, 0};
  EXPECT_NEAR(bit_error_rate(a, b), 0.25, 1e-12);
}

TEST(Metrics, SnrEstimatorCalibrated) {
  // Known SNR by construction: rx = h*ref + noise.
  pab::Rng rng(7);
  const double h = 0.8;
  const double snr_db = 12.0;
  const double noise_sd = h / std::sqrt(pab::power_ratio_from_db(snr_db));
  std::vector<double> ref(20000), rx(20000);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    rx[i] = h * ref[i] + rng.gaussian(0.0, noise_sd);
  }
  EXPECT_NEAR(estimate_snr_db(rx, ref), snr_db, 0.3);
}

TEST(Metrics, ComplexSnrMatchesReal) {
  pab::Rng rng(8);
  std::vector<double> ref(5000);
  std::vector<std::complex<double>> rx(5000);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    rx[i] = std::complex<double>(0.5 * ref[i] + rng.gaussian(0.0, 0.1),
                                 rng.gaussian(0.0, 0.1));
  }
  const double snr = estimate_snr_db(rx, ref);
  EXPECT_GT(snr, 5.0);
  EXPECT_LT(snr, 20.0);
}

TEST(Cfo, EstimateAndCorrect) {
  const double fs = 12000.0;
  const double cfo = 3.7;  // Hz
  std::vector<std::complex<double>> x(6000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ph = pab::kTwoPi * cfo * static_cast<double>(i) / fs;
    x[i] = std::polar(1.0, ph);
  }
  const double est = estimate_cfo_hz(x, fs);
  EXPECT_NEAR(est, cfo, 0.01);
  const auto y = correct_cfo(x, est, fs);
  // After correction the phase is ~constant.
  EXPECT_NEAR(std::arg(y.back() * std::conj(y.front())), 0.0, 0.01);
}

TEST(Cfo, RobustToAmplitudeModulation) {
  pab::Rng rng(9);
  const double fs = 12000.0;
  const double cfo = -2.2;
  std::vector<std::complex<double>> x(6000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double am = 1.0 + 0.3 * ((i / 50) % 2 ? 1.0 : -1.0);
    const double ph = pab::kTwoPi * cfo * static_cast<double>(i) / fs;
    x[i] = am * std::polar(1.0, ph);
  }
  EXPECT_NEAR(estimate_cfo_hz(x, fs), cfo, 0.05);
}

TEST(Mimo, InverseIsExact) {
  Mat2c h{{1.0, 0.2}, {0.3, -0.1}, {-0.2, 0.5}, {0.8, 0.0}};
  const Mat2c inv = h.inverse();
  // H * H^-1 = I.
  const cplx i11 = h.h11 * inv.h11 + h.h12 * inv.h21;
  const cplx i12 = h.h11 * inv.h12 + h.h12 * inv.h22;
  EXPECT_NEAR(std::abs(i11 - cplx(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(i12), 0.0, 1e-12);
}

TEST(Mimo, ConditionNumberIdentityIsOne) {
  Mat2c h{{1.0, 0.0}, {}, {}, {1.0, 0.0}};
  EXPECT_NEAR(h.condition_number(), 1.0, 1e-9);
}

TEST(Mimo, ConditionNumberDegenerateIsHuge) {
  Mat2c h{{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}};
  EXPECT_GT(h.condition_number(), 1e12);
}

TEST(Mimo, ChannelEstimateRecoversGain) {
  pab::Rng rng(10);
  const cplx h_true(0.4, -0.7);
  std::vector<double> x(4000);
  std::vector<cplx> y(4000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    y[i] = h_true * x[i] + cplx(rng.gaussian(0.0, 0.05), rng.gaussian(0.0, 0.05));
  }
  const cplx h_est = estimate_channel_gain(y, x);
  EXPECT_NEAR(std::abs(h_est - h_true), 0.0, 0.01);
}

TEST(Mimo, ZeroForcingSeparatesStreams) {
  // Synthetic 2x2 collision: ZF recovers both streams exactly (no noise).
  pab::Rng rng(11);
  Mat2c h{{1.0, 0.1}, {0.4, -0.3}, {0.2, 0.6}, {0.9, -0.2}};
  std::vector<double> x1(1000), x2(1000);
  std::vector<cplx> y1(1000), y2(1000);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    x1[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    x2[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    y1[i] = h.h11 * x1[i] + h.h12 * x2[i];
    y2[i] = h.h21 * x1[i] + h.h22 * x2[i];
  }
  const auto out = zero_force(y1, y2, h);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(out.x1[i].real(), x1[i], 1e-9);
    EXPECT_NEAR(out.x2[i].real(), x2[i], 1e-9);
  }
}

TEST(Mimo, ZfImprovesSinrUnderInterference) {
  // The Fig. 10 mechanism in miniature: heavy cross-channel interference
  // before projection, clean after.
  pab::Rng rng(12);
  Mat2c h{{1.0, 0.0}, {0.8, 0.2}, {0.7, -0.1}, {1.0, 0.0}};
  const std::size_t n = 20000;
  std::vector<double> x1(n), x2(n);
  std::vector<cplx> y1(n), y2(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    x2[i] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    const cplx noise1(rng.gaussian(0.0, 0.05), rng.gaussian(0.0, 0.05));
    const cplx noise2(rng.gaussian(0.0, 0.05), rng.gaussian(0.0, 0.05));
    y1[i] = h.h11 * x1[i] + h.h12 * x2[i] + noise1;
    y2[i] = h.h21 * x1[i] + h.h22 * x2[i] + noise2;
  }
  const double before = measure_sinr_db(y1, x1);
  const auto out = zero_force(y1, y2, h);
  const double after = measure_sinr_db(out.x1, x1);
  EXPECT_GT(after, before + 6.0);
}

}  // namespace
}  // namespace pab::phy
