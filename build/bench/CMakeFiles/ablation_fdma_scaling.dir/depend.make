# Empty dependencies file for ablation_fdma_scaling.
# This may be replaced when dependencies are built.
