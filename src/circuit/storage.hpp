// Energy storage and regulation: supercapacitor + LDO.
//
// The rectified DC charge is stored in a 1000 uF supercapacitor feeding an
// LP5900 LDO whose 1.8 V output drives the MCU (paper section 4.2.1).  The
// node powers up once the capacitor reaches 2.5 V (Fig. 3) and browns out
// below the LDO dropout.
#pragma once

namespace pab::circuit {

class Supercapacitor {
 public:
  explicit Supercapacitor(double capacitance_f = 1000e-6, double initial_v = 0.0);

  // Advance by `dt` seconds with `p_in` watts charging and `p_out` watts
  // drawn.  The capacitor cannot charge above `v_ceiling` (the rectifier's
  // open-circuit DC) and cannot discharge below zero.
  void step(double dt, double p_in, double p_out, double v_ceiling);

  [[nodiscard]] double voltage() const { return voltage_; }
  [[nodiscard]] double stored_energy_j() const;
  [[nodiscard]] double capacitance() const { return capacitance_; }

  void set_voltage(double v);

 private:
  double capacitance_;
  double voltage_;
};

struct LdoParams {
  double output_v = 1.8;        // regulated output (LP5900-1.8)
  double dropout_v = 0.3;       // needs Vin >= output + dropout to regulate
  double quiescent_a = 25e-6;   // ground-pin current while regulating
};

class Ldo {
 public:
  explicit Ldo(LdoParams p = {});

  // True when the input voltage is high enough to regulate.
  [[nodiscard]] bool in_regulation(double v_in) const;

  // Power drawn from the input rail to supply `i_load` amps at the output
  // (linear regulator: input current = load current + quiescent).
  [[nodiscard]] double input_power(double v_in, double i_load) const;

  [[nodiscard]] const LdoParams& params() const { return params_; }

 private:
  LdoParams params_;
};

}  // namespace pab::circuit
