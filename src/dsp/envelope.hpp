// Envelope detection.
//
// The PAB node's downlink receiver is a passive envelope detector feeding a
// Schmitt trigger (paper section 4.2.1); the software models the same chain:
// rectification followed by low-pass smoothing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/arena.hpp"
#include "dsp/signal.hpp"

namespace pab::dsp {

// Full-wave rectifier + single-pole RC low-pass with time constant `tau_s`.
// This mirrors the diode/capacitor detector on the node's front end.
[[nodiscard]] std::vector<double> envelope_rc(std::span<const double> x,
                                              double sample_rate, double tau_s);

// Envelope via complex magnitude after quadrature down-conversion: the
// hydrophone-side (software) detector used when the carrier is known.
[[nodiscard]] std::vector<double> envelope_coherent(const Signal& x, double carrier_hz,
                                                    double lowpass_hz, int order = 5);

// Two-level slicer with hysteresis, modeling a Schmitt trigger.  Returns a
// 0/1 level per sample.  Thresholds are fractions of the max envelope value
// (e.g. 0.55 high / 0.45 low).
[[nodiscard]] std::vector<std::uint8_t> schmitt_slice(std::span<const double> envelope,
                                                      double high_fraction = 0.55,
                                                      double low_fraction = 0.45);

// ---- into-output kernels (allocation-free; wrapped by the above) ----

// out.size() must equal x.size(); `out` may alias `x`.
void envelope_rc_into(std::span<const double> x, double sample_rate,
                      double tau_s, std::span<double> out);

// Arena variant of envelope_coherent; the returned span lives in `arena`
// until the enclosing frame ends.
[[nodiscard]] std::span<double> envelope_coherent(std::span<const double> x,
                                                  double sample_rate,
                                                  double carrier_hz,
                                                  double lowpass_hz, int order,
                                                  Arena& arena);

// out.size() must equal envelope.size(); `out` must not alias `envelope`.
void schmitt_slice_into(std::span<const double> envelope, double high_fraction,
                        double low_fraction, std::span<std::uint8_t> out);

}  // namespace pab::dsp
