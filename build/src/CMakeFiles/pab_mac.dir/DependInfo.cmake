
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/fdma.cpp" "src/CMakeFiles/pab_mac.dir/mac/fdma.cpp.o" "gcc" "src/CMakeFiles/pab_mac.dir/mac/fdma.cpp.o.d"
  "/root/repo/src/mac/inventory.cpp" "src/CMakeFiles/pab_mac.dir/mac/inventory.cpp.o" "gcc" "src/CMakeFiles/pab_mac.dir/mac/inventory.cpp.o.d"
  "/root/repo/src/mac/protocol.cpp" "src/CMakeFiles/pab_mac.dir/mac/protocol.cpp.o" "gcc" "src/CMakeFiles/pab_mac.dir/mac/protocol.cpp.o.d"
  "/root/repo/src/mac/rate_control.cpp" "src/CMakeFiles/pab_mac.dir/mac/rate_control.cpp.o" "gcc" "src/CMakeFiles/pab_mac.dir/mac/rate_control.cpp.o.d"
  "/root/repo/src/mac/scheduler.cpp" "src/CMakeFiles/pab_mac.dir/mac/scheduler.cpp.o" "gcc" "src/CMakeFiles/pab_mac.dir/mac/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_piezo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_sense.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
