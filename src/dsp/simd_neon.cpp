// NEON (aarch64) kernel table.  Advanced SIMD is baseline on aarch64, so no
// runtime feature probe or target attribute is needed -- the table is simply
// compiled in (and selected by default) on arm64 builds.  Reductions use
// explicit two-vector accumulators via vfmaq_f64 / vaddvq_f64; the
// oscillators and element-wise kernels reuse the generic block
// implementations from simd_kernels.hpp, which the compiler auto-vectorizes
// for NEON.  Tolerance-bounded (<= 1e-9 relative) against the scalar table,
// exactly like the AVX2 path.
#include "dsp/simd_kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace pab::dsp::simd {
namespace {

double neon_sum(const double* x, std::size_t n) {
  float64x2_t a0 = vdupq_n_f64(0.0), a1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 = vaddq_f64(a0, vld1q_f64(x + i));
    a1 = vaddq_f64(a1, vld1q_f64(x + i + 2));
  }
  double s = vaddvq_f64(vaddq_f64(a0, a1));
  for (; i < n; ++i) s += x[i];
  return s;
}

double neon_dot(const double* a, const double* b, std::size_t n) {
  float64x2_t a0 = vdupq_n_f64(0.0), a1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 = vfmaq_f64(a0, vld1q_f64(a + i), vld1q_f64(b + i));
    a1 = vfmaq_f64(a1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
  }
  double s = vaddvq_f64(vaddq_f64(a0, a1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

cplx neon_dot_conj(const cplx* x, const cplx* t, std::size_t n) {
  return detail::dot_conj2(x, t, n);
}

CovVarRaw neon_cov_var(const double* x, const double* t, std::size_t n,
                       double x_mean) {
  const float64x2_t mean = vdupq_n_f64(x_mean);
  float64x2_t cov = vdupq_n_f64(0.0), var = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t xc = vsubq_f64(vld1q_f64(x + i), mean);
    cov = vfmaq_f64(cov, xc, vld1q_f64(t + i));
    var = vfmaq_f64(var, xc, xc);
  }
  double c = vaddvq_f64(cov), v = vaddvq_f64(var);
  for (; i < n; ++i) {
    const double xc = x[i] - x_mean;
    c += xc * t[i];
    v += xc * xc;
  }
  return {c, v};
}

void neon_axpy_d(double g, const double* x, double* y, std::size_t n) {
  const float64x2_t gv = vdupq_n_f64(g);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i, vfmaq_f64(vld1q_f64(y + i), gv, vld1q_f64(x + i)));
  for (; i < n; ++i) y[i] += g * x[i];
}

void neon_axpy_c(cplx g, const cplx* x, cplx* y, std::size_t n) {
  detail::axpy_c(g, x, y, n);
}

void neon_magnitude(const cplx* x, double* out, std::size_t n) {
  detail::magnitude_sqrt(x, out, n);
}

void neon_cmul(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  detail::cmul_ew(a, b, out, n);
}

void neon_mix_down(const double* x, double w, cplx* out, std::size_t n) {
  detail::osc_mix_down(x, w, out, n);
}

void neon_mix_up(const cplx* x, double w, double* out, std::size_t n) {
  detail::osc_mix_up(x, w, out, n);
}

void neon_tone(double w, double amplitude, double phase, double* out,
               std::size_t n) {
  detail::osc_tone(w, amplitude, phase, out, n);
}

void neon_chip_sum_diff(const double* soft, double* sum, double* diff,
                        std::size_t n) {
  detail::chip_sum_diff_ew(soft, sum, diff, n);
}

constexpr KernelTable kNeonTable = {
    neon_sum,      neon_dot,    neon_dot_conj,  neon_cov_var,
    neon_axpy_d,   neon_axpy_c, neon_magnitude, neon_cmul,
    neon_mix_down, neon_mix_up, neon_tone,      neon_chip_sum_diff,
};

}  // namespace

const KernelTable* neon_kernels() { return &kNeonTable; }

}  // namespace pab::dsp::simd

#else  // not aarch64

namespace pab::dsp::simd {
const KernelTable* neon_kernels() { return nullptr; }
}  // namespace pab::dsp::simd

#endif
