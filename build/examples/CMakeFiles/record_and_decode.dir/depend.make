# Empty dependencies file for record_and_decode.
# This may be replaced when dependencies are built.
