# Empty compiler generated dependencies file for app_sensing.
# This may be replaced when dependencies are built.
