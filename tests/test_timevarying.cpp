// Time-varying channel tests: mobility Doppler and surface-wave fading.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/timevarying.hpp"
#include "channel/water.hpp"
#include "phy/cfo.hpp"
#include "util/units.hpp"

namespace pab::channel {
namespace {

dsp::BasebandSignal cw_envelope(double amp, double duration, double fs,
                                double carrier) {
  dsp::BasebandSignal s;
  s.sample_rate = fs;
  s.carrier_hz = carrier;
  s.samples.assign(static_cast<std::size_t>(duration * fs), dsp::cplx(amp, 0.0));
  return s;
}

TEST(Mobility, DopplerShiftFormula) {
  MovingPathConfig cfg;
  cfg.source = {0, 0, 0};
  cfg.rx_start = {10.0, 0, 0};
  cfg.rx_velocity = {-1.0, 0, 0};  // closing at 1 m/s
  const double c = sound_speed_mackenzie(cfg.water);
  EXPECT_NEAR(doppler_shift_hz(cfg, 15000.0), 15000.0 / c, 1e-6);
  // Receding flips the sign.
  cfg.rx_velocity = {2.0, 0, 0};
  EXPECT_NEAR(doppler_shift_hz(cfg, 15000.0), -2.0 * 15000.0 / c, 1e-6);
  // Transverse motion: no radial Doppler.
  cfg.rx_velocity = {0, 3.0, 0};
  EXPECT_NEAR(doppler_shift_hz(cfg, 15000.0), 0.0, 1e-9);
}

TEST(Mobility, WaveformDopplerMatchesFormula) {
  // Propagate a CW through a moving path and measure the baseband rotation
  // rate with the receiver's CFO estimator.
  MovingPathConfig cfg;
  cfg.source = {0, 0, 0};
  cfg.rx_start = {20.0, 0, 0};
  cfg.rx_velocity = {-2.0, 0, 0};  // closing at 2 m/s (a slow swimmer)
  const double fs = 48000.0;
  const auto tx = cw_envelope(1.0, 0.5, fs, 15000.0);
  const auto rx = propagate_moving(tx, cfg);
  // Skip the leading flight time, then estimate rotation.
  const std::size_t skip = static_cast<std::size_t>(0.05 * fs);
  const std::vector<dsp::cplx> seg(rx.samples.begin() + skip,
                                   rx.samples.end() - skip);
  const double measured = phy::estimate_cfo_hz(seg, fs);
  const double expected = doppler_shift_hz(cfg, 15000.0);
  EXPECT_NEAR(measured, expected, std::abs(expected) * 0.05 + 0.05);
}

TEST(Mobility, AmplitudeFollowsRange) {
  MovingPathConfig cfg;
  cfg.source = {0, 0, 0};
  cfg.rx_start = {5.0, 0, 0};
  cfg.rx_velocity = {5.0, 0, 0};  // receding fast
  const double fs = 48000.0;
  const auto tx = cw_envelope(1.0, 1.0, fs, 15000.0);
  const auto rx = propagate_moving(tx, cfg);
  const double early = std::abs(rx.samples[static_cast<std::size_t>(0.1 * fs)]);
  const double late = std::abs(rx.samples[static_cast<std::size_t>(0.9 * fs)]);
  EXPECT_GT(early, late);
  // 1/r: at t=0.1 the range is ~5.5 m, at t=0.9 ~9.5 m.
  EXPECT_NEAR(early / late, 9.5 / 5.5, 0.15);
}

TEST(Mobility, StationaryMatchesFreeField) {
  MovingPathConfig cfg;
  cfg.source = {0, 0, 0};
  cfg.rx_start = {3.0, 0, 0};
  cfg.rx_velocity = {0, 0, 0};
  const double fs = 48000.0;
  const auto tx = cw_envelope(1.0, 0.2, fs, 15000.0);
  const auto rx = propagate_moving(tx, cfg);
  const double steady = std::abs(rx.samples[rx.size() / 2]);
  EXPECT_NEAR(steady, path_amplitude_gain(3.0, 15000.0), 1e-3);
}

TEST(WavySurface, FlatSurfaceIsStaticTwoRay) {
  WavySurfaceConfig cfg;
  cfg.source = {0, 0, 0.5};
  cfg.receiver = {4.0, 0, 0.5};
  cfg.surface_z = 1.0;
  cfg.wave_amplitude = 0.0;  // flat: classic Lloyd's mirror, static
  const double fs = 48000.0;
  const auto tx = cw_envelope(1.0, 0.3, fs, 15000.0);
  const auto rx = propagate_wavy(tx, cfg);
  const double a = std::abs(rx.samples[rx.size() / 3]);
  const double b = std::abs(rx.samples[2 * rx.size() / 3]);
  EXPECT_NEAR(a, b, 1e-6);
}

TEST(WavySurface, WavesModulateTheEnvelope) {
  WavySurfaceConfig cfg;
  cfg.source = {0, 0, 0.5};
  cfg.receiver = {4.0, 0, 0.5};
  cfg.surface_z = 1.0;
  cfg.wave_amplitude = 0.05;
  cfg.wave_freq_hz = 2.0;
  const double fs = 48000.0;
  const auto tx = cw_envelope(1.0, 1.0, fs, 15000.0);
  const auto rx = propagate_wavy(tx, cfg);
  // Envelope varies over a wave period once the flight transient passed.
  double lo = 1e300, hi = 0.0;
  for (std::size_t i = rx.size() / 2; i < rx.size(); ++i) {
    const double v = std::abs(rx.samples[i]);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi / lo, 1.05);  // visible fading
}

TEST(WavySurface, FadeDepthGrowsWithWaveAmplitude) {
  WavySurfaceConfig small;
  small.source = {0, 0, 0.5};
  small.receiver = {4.0, 0, 0.5};
  small.surface_z = 1.0;
  small.wave_amplitude = 0.01;
  WavySurfaceConfig big = small;
  big.wave_amplitude = 0.10;
  EXPECT_GT(fade_depth_db(big, 15000.0), fade_depth_db(small, 15000.0));
}

// Regression: sample_at used to reject any position with i + 1 >= size, so
// the whole interval [size-1, size) -- where x[size-1] is perfectly valid --
// read as silence, truncating the tail of every delayed path.  The last
// sample must be readable exactly, and the final fractional interval must
// decay linearly into the implicit zero-padding instead of cutting to zero.
// --- event-timestamp accessors (sim::Timeline samples the channel at event
// --- times rather than per baseband sample) ---------------------------------

TEST(EventSampling, PositionFollowsTrajectory) {
  MovingPathConfig cfg;
  cfg.source = {0.0, 0.0, 0.0};
  cfg.rx_start = {2.0, 1.0, -0.5};
  cfg.rx_velocity = {0.5, -0.25, 0.1};
  const Vec3 p0 = moving_position_at(cfg, 0.0);
  EXPECT_DOUBLE_EQ(p0.x, 2.0);
  EXPECT_DOUBLE_EQ(p0.y, 1.0);
  EXPECT_DOUBLE_EQ(p0.z, -0.5);
  const Vec3 p4 = moving_position_at(cfg, 4.0);
  EXPECT_DOUBLE_EQ(p4.x, 2.0 + 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(p4.y, 1.0 - 0.25 * 4.0);
  EXPECT_DOUBLE_EQ(p4.z, -0.5 + 0.1 * 4.0);
}

TEST(EventSampling, DopplerAtZeroMatchesLegacyAccessor) {
  MovingPathConfig cfg;
  cfg.rx_start = {3.0, 0.0, 0.0};
  cfg.rx_velocity = {-0.4, 0.2, 0.0};
  EXPECT_EQ(doppler_shift_at(cfg, 18500.0, 0.0),
            doppler_shift_hz(cfg, 18500.0));
  // A receding node's shift decays in magnitude as geometry opens up; a
  // closing one flips sign once it passes the source.
  cfg.rx_velocity = {0.4, 0.0, 0.0};  // receding along the boresight
  EXPECT_LT(doppler_shift_at(cfg, 18500.0, 0.0), 0.0);
  EXPECT_NEAR(doppler_shift_at(cfg, 18500.0, 0.0),
              doppler_shift_at(cfg, 18500.0, 10.0), 1e-9);
}

TEST(EventSampling, PathGainFallsAsNodeRecedes) {
  MovingPathConfig cfg;
  cfg.rx_start = {1.0, 0.0, 0.0};
  cfg.rx_velocity = {0.5, 0.0, 0.0};
  const double g0 = moving_path_gain_at(cfg, 18500.0, 0.0);
  const double g1 = moving_path_gain_at(cfg, 18500.0, 2.0);
  const double g2 = moving_path_gain_at(cfg, 18500.0, 6.0);
  EXPECT_GT(g0, g1);
  EXPECT_GT(g1, g2);
  EXPECT_GT(g2, 0.0);
  // Spreading dominates at these ranges: gain roughly halves with distance.
  EXPECT_NEAR(g0 / g1, 2.0, 0.1);
}

TEST(EventSampling, WavyGainOscillatesAtTheWavePeriod) {
  WavySurfaceConfig cfg;
  cfg.source = {0.0, 0.0, 0.0};
  cfg.receiver = {4.0, 0.0, 0.0};
  cfg.surface_z = 0.6;
  cfg.wave_amplitude = 0.08;
  cfg.wave_freq_hz = 0.5;
  const double period = 1.0 / cfg.wave_freq_hz;
  const double g0 = wavy_gain_at(cfg, 18500.0, 0.0);
  EXPECT_GT(g0, 0.0);
  // Periodic in the wave period, and actually moving within it.
  EXPECT_NEAR(wavy_gain_at(cfg, 18500.0, period), g0, 1e-9);
  double min_g = g0;
  double max_g = g0;
  for (int i = 1; i < 50; ++i) {
    const double g = wavy_gain_at(cfg, 18500.0, period * i / 50.0);
    min_g = std::min(min_g, g);
    max_g = std::max(max_g, g);
  }
  EXPECT_GT(max_g, min_g * 1.05);
  // The instantaneous values stay inside the fade envelope fade_depth_db
  // sweeps (same geometry, same coherent sum).
  EXPECT_GT(fade_depth_db(cfg, 18500.0),
            20.0 * std::log10(max_g / min_g) - 1e-6);
}

TEST(SampleAt, LastSampleIsNotTruncated) {
  const std::vector<dsp::cplx> x = {{1.0, 0.0}, {2.0, 0.0}, {4.0, -1.0}};
  // Integer positions read back exactly -- including the final one.
  EXPECT_EQ(sample_at(x, 0.0), x[0]);
  EXPECT_EQ(sample_at(x, 1.0), x[1]);
  EXPECT_EQ(sample_at(x, 2.0), x[2]);  // failed (returned 0) pre-fix
  // The final interval interpolates toward zero-padding.
  const auto tail = sample_at(x, 2.25);
  EXPECT_NEAR(tail.real(), 0.75 * 4.0, 1e-12);
  EXPECT_NEAR(tail.imag(), 0.75 * -1.0, 1e-12);
  // Outside the record stays zero.
  EXPECT_EQ(sample_at(x, -0.5), dsp::cplx{});
  EXPECT_EQ(sample_at(x, 3.0), dsp::cplx{});
  EXPECT_EQ(sample_at(x, 3.5), dsp::cplx{});
}

TEST(SampleAt, SingleSampleRecordIsReadable) {
  // The degenerate one-sample record: every in-range read used to return
  // zero because i + 1 >= size held for the only valid index.
  const std::vector<dsp::cplx> x = {{3.0, 0.5}};
  EXPECT_EQ(sample_at(x, 0.0), x[0]);
  const auto mid = sample_at(x, 0.5);
  EXPECT_NEAR(mid.real(), 1.5, 1e-12);
  EXPECT_NEAR(mid.imag(), 0.25, 1e-12);
}

TEST(WavySurface, EndpointAboveSurfaceThrows) {
  WavySurfaceConfig cfg;
  cfg.source = {0, 0, 1.5};  // above the 1.0 m surface
  cfg.receiver = {4.0, 0, 0.5};
  const auto tx = cw_envelope(1.0, 0.01, 48000.0, 15000.0);
  EXPECT_THROW((void)propagate_wavy(tx, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace pab::channel
