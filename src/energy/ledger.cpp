#include "energy/ledger.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pab::energy {

// total_consumed() spells the consumption categories out; these asserts make
// an enum reorder or extension a compile error instead of a silently skewed
// energy-per-bit figure.
static_assert(static_cast<std::size_t>(Category::kHarvested) == 0,
              "EnergyLedger: kHarvested must stay the first category");

namespace {
constexpr std::array kConsumptionCategories = {
    Category::kIdle, Category::kDecode, Category::kBackscatter,
    Category::kSensing, Category::kLeakage};
static_assert(kConsumptionCategories.size() + 1 ==
                  static_cast<std::size_t>(Category::kCount),
              "EnergyLedger: a Category was added or removed -- update "
              "kConsumptionCategories so total_consumed() stays exhaustive");
}  // namespace

void EnergyLedger::add(Category c, double joules) {
  require(c != Category::kCount, "EnergyLedger: invalid category");
  require(joules >= 0.0, "EnergyLedger: negative energy");
  joules_[static_cast<std::size_t>(c)] += joules;
}

void EnergyLedger::add(double t, Category c, double joules) {
  require(t >= last_t_, "EnergyLedger: timestamps must not go backwards");
  last_t_ = t;
  add(c, joules);
  if (record_entries_) entries_.push_back(LedgerEntry{t, c, joules});
}

double EnergyLedger::total_between(Category c, double t0, double t1) const {
  require(c != Category::kCount, "EnergyLedger: invalid category");
  require(t0 <= t1, "EnergyLedger: inverted interval");
  double sum = 0.0;
  for (const LedgerEntry& e : entries_)
    if (e.category == c && e.t >= t0 && e.t < t1) sum += e.joules;
  return sum;
}

double EnergyLedger::total(Category c) const {
  require(c != Category::kCount, "EnergyLedger: invalid category");
  return joules_[static_cast<std::size_t>(c)];
}

double EnergyLedger::total_consumed() const {
  double sum = 0.0;
  for (const Category c : kConsumptionCategories) sum += total(c);
  return sum;
}

void EnergyLedger::export_to(obs::MetricRegistry& registry,
                             std::string_view prefix) const {
  const std::string base = std::string(prefix) + ".";
  for (std::size_t i = 0; i < joules_.size(); ++i) {
    const auto c = static_cast<Category>(i);
    registry.gauge(base + std::string(to_string(c)) + "_joules").set(total(c));
  }
  registry.gauge(base + "total_consumed_joules").set(total_consumed());
}

double EnergyLedger::average_power_w(Category c, double elapsed_s) const {
  // No elapsed time means no power reading: return 0.0 rather than dividing
  // by zero (the old `require` made every caller guard the zero-length
  // interval themselves, and unguarded division would hand benches ±inf/NaN).
  if (elapsed_s <= 0.0) return 0.0;
  return total(c) / elapsed_s;
}

void EnergyLedger::reset() {
  joules_.fill(0.0);
  entries_.clear();
  last_t_ = 0.0;
}

}  // namespace pab::energy
