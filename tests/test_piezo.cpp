// BVD equivalent circuit and transducer model tests.
#include <gtest/gtest.h>

#include <cmath>

#include "piezo/bvd.hpp"
#include "piezo/transducer.hpp"
#include "util/units.hpp"

namespace pab::piezo {
namespace {

TEST(Bvd, SynthesisRoundTrip) {
  const BvdParams p = synthesize_bvd(15000.0, 6.0, 8e-9, 0.3, 0.7);
  EXPECT_NEAR(p.series_resonance_hz(), 15000.0, 0.01);
  EXPECT_NEAR(p.quality_factor(), 6.0, 1e-9);
  EXPECT_NEAR(p.coupling_keff(), 0.3, 1e-12);
  EXPECT_NEAR(p.r_rad / p.rm, 0.7, 1e-12);
}

TEST(Bvd, ParallelResonanceAboveSeries) {
  const BvdParams p = synthesize_bvd(15000.0, 6.0, 8e-9, 0.3, 0.7);
  EXPECT_GT(p.parallel_resonance_hz(), p.series_resonance_hz());
  // fp = fs * sqrt(1 + Cm/C0).
  EXPECT_NEAR(p.parallel_resonance_hz(),
              15000.0 * std::sqrt(1.0 + p.cm / p.c0), 0.1);
}

TEST(Bvd, MotionalImpedanceMinimalAtResonance) {
  const BvdParams p = synthesize_bvd(15000.0, 6.0, 8e-9, 0.3, 0.7);
  const double at_res = std::abs(p.motional_impedance(15000.0));
  EXPECT_NEAR(at_res, p.rm, p.rm * 1e-6);
  EXPECT_GT(std::abs(p.motional_impedance(13000.0)), at_res);
  EXPECT_GT(std::abs(p.motional_impedance(17000.0)), at_res);
}

TEST(Bvd, BandwidthMatchesQ) {
  const BvdParams p = synthesize_bvd(15000.0, 6.0, 8e-9, 0.3, 0.7);
  EXPECT_NEAR(p.bandwidth_hz(), 2500.0, 1.0);
}

TEST(Bvd, ImpedanceIsCapacitiveFarBelowResonance) {
  const BvdParams p = synthesize_bvd(15000.0, 6.0, 8e-9, 0.3, 0.7);
  const cplx z = p.impedance(1000.0);
  EXPECT_LT(z.imag(), 0.0);  // dominated by C0
}

TEST(Bvd, WaterLoadingLowersResonanceAndQ) {
  const BvdParams air = synthesize_bvd(17000.0, 20.0, 8e-9, 0.3, 0.3);
  const BvdParams wet = water_load(air, 0.3, 1000.0);
  EXPECT_LT(wet.series_resonance_hz(), air.series_resonance_hz());
  EXPECT_LT(wet.quality_factor(), air.quality_factor());
  EXPECT_GT(wet.r_rad, air.r_rad);
}

TEST(Bvd, InvalidSynthesisThrows) {
  EXPECT_THROW((void)synthesize_bvd(-1.0, 6.0, 8e-9, 0.3, 0.7),
               std::invalid_argument);
  EXPECT_THROW((void)synthesize_bvd(15000.0, 6.0, 8e-9, 1.5, 0.7),
               std::invalid_argument);
  EXPECT_THROW((void)synthesize_bvd(15000.0, 6.0, 8e-9, 0.3, 0.0),
               std::invalid_argument);
}

TEST(Transducer, TvrPeaksAtResonance) {
  const Transducer t = make_node_transducer(15000.0);
  const double tvr_res = t.tvr_db(15000.0);
  EXPECT_GT(tvr_res, t.tvr_db(12000.0));
  EXPECT_GT(tvr_res, t.tvr_db(18000.0));
}

TEST(Transducer, RadiatedPowerScalesWithVoltageSquared) {
  const Transducer t = make_projector_transducer();
  const double p1 = t.radiated_power_w(10.0, 15000.0);
  const double p2 = t.radiated_power_w(20.0, 15000.0);
  EXPECT_NEAR(p2 / p1, 4.0, 1e-9);
}

TEST(Transducer, SourceLevelFollowsPower) {
  const Transducer t = make_projector_transducer();
  // +20 dB drive (10x voltage) -> +20 dB source level.
  const double sl1 = t.source_level_db(10.0, 15000.0);
  const double sl2 = t.source_level_db(100.0, 15000.0);
  EXPECT_NEAR(sl2 - sl1, 20.0, 1e-9);
}

TEST(Transducer, SourceLevelSaneAbsolute) {
  // A cylinder at ~1 W acoustic should sit near 170.8 dB re uPa @ 1m.
  const Transducer t = make_projector_transducer();
  // Find drive for ~1 W at resonance.
  const double p1 = t.radiated_power_w(1.0, 15500.0);
  const double v = std::sqrt(1.0 / p1);
  EXPECT_NEAR(t.source_level_db(v, 15500.0), 170.8, 0.1);
}

TEST(Transducer, ReceiveShapedByMechanicalResonance) {
  const Transducer t = make_node_transducer(16500.0);
  EXPECT_NEAR(t.mechanical_response(16500.0), 1.0, 1e-9);
  EXPECT_LT(t.mechanical_response(12000.0), 0.5);
  EXPECT_GT(t.thevenin_voltage(100.0, 16500.0), t.thevenin_voltage(100.0, 12000.0));
}

TEST(Transducer, TheveninVoltageLinearInPressure) {
  const Transducer t = make_node_transducer();
  EXPECT_NEAR(t.thevenin_voltage(200.0, 15000.0),
              2.0 * t.thevenin_voltage(100.0, 15000.0), 1e-9);
}

TEST(Transducer, OcvSensitivityPlausible) {
  // Piezoelectric cylinders of this size: roughly -190 +/- 15 dB re 1V/uPa
  // near resonance.
  const Transducer t = make_node_transducer();
  const double s = t.ocv_sensitivity_db(16500.0);
  EXPECT_GT(s, -210.0);
  EXPECT_LT(s, -170.0);
}

TEST(Transducer, ReciprocityPowerBalance) {
  // The maximum extractable electrical power equals eta * captured acoustic
  // power at resonance (construction invariant of the receive gain).
  const Transducer t = make_node_transducer(15000.0);
  const double p_pa = 100.0;
  const double f = 15000.0;
  const double v_m = t.in_branch_voltage(p_pa, f);
  const double p_max = v_m * v_m / (8.0 * t.bvd().rm);
  const double rho_c = 1.48e6;
  const double intensity = p_pa * p_pa / (2.0 * rho_c);
  const double eta = t.bvd().r_rad / t.bvd().rm;
  EXPECT_NEAR(p_max, eta * intensity * t.aperture_area(), p_max * 1e-9);
}

TEST(Hydrophone, SensitivityConversion) {
  Hydrophone h;  // -180 dB re 1V/uPa
  EXPECT_NEAR(h.volts_per_pascal(), 1e-3, 1e-9);
}

}  // namespace
}  // namespace pab::piezo
