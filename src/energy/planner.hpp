// Energy-aware duty-cycle planning.
//
// A battery-free node can only spend what it harvests.  Given the harvest
// power at a deployment point and the energy cost of one query/response
// transaction, the planner answers the operational questions a deployment
// tool needs: is continuous operation sustainable, what is the maximum
// sustainable polling rate, and how long must the node recharge between
// transactions otherwise.
#pragma once

#include <cstddef>

#include "energy/mcu.hpp"
#include "util/error.hpp"

namespace pab::energy {

struct TransactionCost {
  std::size_t downlink_bits = 41;   // query frame
  double downlink_unit_s = 5e-3;    // PWM unit
  std::size_t uplink_bits = 76;     // response packet on air
  double uplink_bitrate = 1000.0;
  double sensing_energy_j = 50e-6;  // peripheral sampling
};

class EnergyPlanner {
 public:
  explicit EnergyPlanner(McuPowerModel mcu = McuPowerModel{});

  // Energy one full transaction costs the node [J].
  [[nodiscard]] double transaction_energy_j(const TransactionCost& cost) const;

  // True if `harvest_w` covers idle draw plus transactions at `rate_hz`.
  [[nodiscard]] bool sustainable(double harvest_w, const TransactionCost& cost,
                                 double rate_hz) const;

  // Maximum sustainable transaction rate [Hz]; 0 when even idling drains the
  // node (it then operates duty-cycled from cold starts).
  [[nodiscard]] double max_transaction_rate_hz(double harvest_w,
                                               const TransactionCost& cost) const;

  // Recharge time between transactions when operating below the idle
  // break-even: how long the capacitor must charge (from `harvest_w`, no
  // load) to bank one transaction's energy.  kInsufficientPower when the
  // node harvests nothing (it can never bank the energy); the success value
  // is always finite and positive.
  [[nodiscard]] pab::Expected<double> recharge_time_s(
      double harvest_w, const TransactionCost& cost) const;

  [[nodiscard]] const McuPowerModel& mcu() const { return mcu_; }

 private:
  McuPowerModel mcu_;
};

}  // namespace pab::energy
