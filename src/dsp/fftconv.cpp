#include "dsp/fftconv.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "dsp/fft.hpp"
#include "dsp/simd.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::dsp {
namespace {

using cplx = std::complex<double>;

// ---- plan cache -------------------------------------------------------------
// A Plan is immutable after construction: bit-reversal permutation plus exact
// twiddles exp(-2*pi*i*k/n) (computed per index, not by the accumulated
// `w *= wlen` recurrence of dsp::fft_inplace, so long transforms keep full
// twiddle precision).  Cached per power-of-two size; the mutex guards only
// the lookup, use is lock-free.

struct Plan {
  explicit Plan(std::size_t size) : n(size), rev(size, 0), tw(size / 2) {
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      rev[i] = j;
    }
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double a = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
      tw[k] = cplx(std::cos(a), std::sin(a));
    }
  }

  void transform(cplx* data, bool inverse) const {
    for (std::size_t i = 1; i < n; ++i)
      if (i < rev[i]) std::swap(data[i], data[rev[i]]);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t stride = n / len;
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t k = 0; k < len / 2; ++k) {
          const cplx w = inverse ? std::conj(tw[k * stride]) : tw[k * stride];
          const cplx u = data[i + k];
          const cplx v = data[i + k + len / 2] * w;
          data[i + k] = u + v;
          data[i + k + len / 2] = u - v;
        }
      }
    }
    if (inverse) {
      const double inv_n = 1.0 / static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) data[i] *= inv_n;
    }
  }

  std::size_t n;
  std::vector<std::size_t> rev;
  std::vector<cplx> tw;
};

std::mutex& plan_mutex() {
  static std::mutex mu;
  return mu;
}

// Leaked on purpose: kernels may run during static destruction of test
// fixtures and the cache must outlive every caller.
std::map<std::size_t, std::unique_ptr<Plan>>& plan_cache() {
  static auto* cache = new std::map<std::size_t, std::unique_ptr<Plan>>();
  return *cache;
}

const Plan& plan_for(std::size_t n) {
  const std::lock_guard<std::mutex> lock(plan_mutex());
  auto& p = plan_cache()[n];
  if (p == nullptr) p = std::make_unique<Plan>(n);
  return *p;
}

// Scratch source: the caller's arena (trial path: the phy::Workspace arena)
// or a thread-local fallback that grows once and is reused forever after.
Arena& scratch_arena(Arena* a) {
  if (a != nullptr) return *a;
  thread_local Arena tls;
  return tls;
}

obs::Counter& hits_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter("dsp.fftconv.hits");
  return c;
}

// Overlap-save block size: ~4x the kernel amortizes the (nh-1)-sample block
// overlap, floored at 256; never larger than one transform covering the
// whole output.
std::size_t choose_block(std::size_t nh, std::size_t nfull) {
  const std::size_t blocked = next_pow2(std::max<std::size_t>(4 * nh, 256));
  return std::min(blocked, next_pow2(nfull));
}

// Full linear convolution of complex sequences via overlap-save: for each
// output chunk [pos, pos+S) the transform input is x[pos-(nh-1) .. pos+S)
// (zero-padded outside x), and the last S samples of the circular product
// are exactly the linear convolution there.
void conv_complex(std::span<const cplx> h, std::span<const cplx> x,
                  std::span<cplx> y, Arena& arena) {
  require(!h.empty(), "fftconv: empty kernel");
  const std::size_t nh = h.size();
  const std::size_t nfull = x.size() + nh - 1;
  require(y.size() == nfull, "fftconv: output size mismatch");
  if (x.empty()) {
    std::fill(y.begin(), y.end(), cplx{});
    return;
  }
  const std::size_t B = choose_block(nh, nfull);
  const std::size_t S = B - nh + 1;
  const Plan& plan = plan_for(B);
  const auto frame = arena.frame();

  auto hspec = arena.alloc_zero<cplx>(B);
  std::copy(h.begin(), h.end(), hspec.begin());
  plan.transform(hspec.data(), /*inverse=*/false);

  auto buf = arena.alloc<cplx>(B);
  const auto nx = static_cast<std::ptrdiff_t>(x.size());
  for (std::size_t pos = 0; pos < nfull; pos += S) {
    const auto start =
        static_cast<std::ptrdiff_t>(pos) - static_cast<std::ptrdiff_t>(nh - 1);
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(start, 0);
    const std::ptrdiff_t hi =
        std::min(start + static_cast<std::ptrdiff_t>(B), nx);
    std::fill(buf.begin(), buf.end(), cplx{});
    if (hi > lo)
      std::copy(x.begin() + lo, x.begin() + hi, buf.begin() + (lo - start));
    plan.transform(buf.data(), /*inverse=*/false);
    simd::cmul(buf, hspec, buf);
    plan.transform(buf.data(), /*inverse=*/true);
    const std::size_t m = std::min(S, nfull - pos);
    std::copy(buf.begin() + static_cast<std::ptrdiff_t>(nh - 1),
              buf.begin() + static_cast<std::ptrdiff_t>(nh - 1 + m),
              y.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  hits_counter().add();
}

}  // namespace

std::size_t fftconv_fir_crossover() { return 64; }

bool fftconv_use_for_taps(std::size_t ntaps, std::size_t n,
                          std::size_t dense_len) {
  if (!simd::fftconv_enabled()) return false;
  if (ntaps < 8 || n < 512 || dense_len < 16) return false;
  const std::size_t nfull = n + dense_len - 1;
  const std::size_t B = choose_block(dense_len, nfull);
  const double S = static_cast<double>(B - dense_len + 1);
  const double nblocks = std::ceil(static_cast<double>(nfull) / S);
  const double log2b = std::log2(static_cast<double>(B));
  // ~5*B*log2(B) flops per complex transform; two transforms plus the
  // pointwise product per block, one H transform, the dense-h build.
  const double fft_cost = (2.0 * nblocks + 1.0) * 5.0 *
                              static_cast<double>(B) * log2b +
                          nblocks * 6.0 * static_cast<double>(B) +
                          static_cast<double>(dense_len);
  // Complex tap accumulation: ~8 flops per sample per tap.
  const double direct_cost =
      8.0 * static_cast<double>(ntaps) * static_cast<double>(n);
  return fft_cost < direct_cost;
}

void fftconv_full(std::span<const cplx> h, std::span<const cplx> x,
                  std::span<cplx> y, Arena* scratch) {
  conv_complex(h, x, y, scratch_arena(scratch));
}

void fftconv_full(std::span<const double> h, std::span<const double> x,
                  std::span<double> y, Arena* scratch) {
  require(!h.empty(), "fftconv: empty kernel");
  require(y.size() == x.size() + h.size() - 1, "fftconv: output size mismatch");
  Arena& arena = scratch_arena(scratch);
  const auto frame = arena.frame();
  auto hc = arena.alloc<cplx>(h.size());
  auto xc = arena.alloc<cplx>(x.size());
  auto yc = arena.alloc<cplx>(y.size());
  for (std::size_t i = 0; i < h.size(); ++i) hc[i] = cplx(h[i], 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = cplx(x[i], 0.0);
  conv_complex(hc, xc, yc, arena);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = yc[i].real();
}

void fftconv_fir(std::span<const double> h, std::span<const double> x,
                 std::span<double> y, Arena* scratch) {
  require(!h.empty(), "fir_filter: empty kernel");
  require(y.size() == x.size(), "fir_filter_into: output size mismatch");
  if (x.empty()) return;
  Arena& arena = scratch_arena(scratch);
  const auto frame = arena.frame();
  auto hc = arena.alloc<cplx>(h.size());
  auto xc = arena.alloc<cplx>(x.size());
  auto full = arena.alloc<cplx>(x.size() + h.size() - 1);
  for (std::size_t i = 0; i < h.size(); ++i) hc[i] = cplx(h[i], 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = cplx(x[i], 0.0);
  conv_complex(hc, xc, full, arena);
  const std::size_t delay = (h.size() - 1) / 2;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = full[i + delay].real();
}

void fftconv_fir(std::span<const double> h, std::span<const cplx> x,
                 std::span<cplx> y, Arena* scratch) {
  require(!h.empty(), "fir_filter: empty kernel");
  require(y.size() == x.size(), "fir_filter_into: output size mismatch");
  if (x.empty()) return;
  Arena& arena = scratch_arena(scratch);
  const auto frame = arena.frame();
  auto hc = arena.alloc<cplx>(h.size());
  auto full = arena.alloc<cplx>(x.size() + h.size() - 1);
  for (std::size_t i = 0; i < h.size(); ++i) hc[i] = cplx(h[i], 0.0);
  conv_complex(hc, x, full, arena);
  const std::size_t delay = (h.size() - 1) / 2;
  std::copy(full.begin() + static_cast<std::ptrdiff_t>(delay),
            full.begin() + static_cast<std::ptrdiff_t>(delay + y.size()),
            y.begin());
}

std::size_t fftconv_plan_cache_size() {
  const std::lock_guard<std::mutex> lock(plan_mutex());
  return plan_cache().size();
}

}  // namespace pab::dsp
