// run_shard: the one way a shard of campaign work ever executes.
//
// Both executors -- the in-process BatchExecutor and the pab_worker side of
// the multi-process ProcessExecutor -- funnel through this function, so the
// bit-identity guarantee between them is structural rather than asserted:
// the same (spec, shard, threads) triple builds the same Session over a
// fresh isolated MetricRegistry, runs the same trial indices through the
// same unified run_trial path, and snapshots the same metrics delta.
#pragma once

#include "campaign/record.hpp"
#include "campaign/spec.hpp"
#include "campaign/wire.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pab::campaign {

// Everything one finished shard yields: its rows (in trial order) and the
// isolated registry's snapshot (a per-shard metrics delta, exact to merge).
struct ShardOutput {
  std::uint64_t shard = 0;
  RecordBatch records;
  obs::MetricsSnapshot metrics;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static pab::Expected<ShardOutput> deserialize(ByteReader& r);
};

// Execute trials [shard.begin, shard.end) of the shard's operating point.
// `threads` is the BatchRunner width inside the shard; campaigns default to
// 1 so per-worker dispatch counters are identical across executors.
[[nodiscard]] pab::Expected<ShardOutput> run_shard(const CampaignSpec& spec,
                                                   const Shard& shard,
                                                   unsigned threads);

}  // namespace pab::campaign
