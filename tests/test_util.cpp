// Unit tests for pab::util: units/dB math, bit operations, statistics, RNG,
// and the Expected error type.
#include <gtest/gtest.h>

#include "util/bitops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace pab {
namespace {

TEST(Units, DbPowerRoundTrip) {
  for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 60.0}) {
    EXPECT_NEAR(db_from_power_ratio(power_ratio_from_db(db)), db, 1e-12);
  }
}

TEST(Units, DbAmplitudeRoundTrip) {
  for (double db : {-20.0, 0.0, 6.0, 40.0}) {
    EXPECT_NEAR(db_from_amplitude_ratio(amplitude_ratio_from_db(db)), db, 1e-12);
  }
}

TEST(Units, AmplitudeVsPowerConsistency) {
  // 20 dB amplitude ratio (10x) equals 20 dB power ratio (100x).
  EXPECT_NEAR(db_from_amplitude_ratio(10.0), db_from_power_ratio(100.0), 1e-12);
}

TEST(Units, SplReference) {
  // 1 uPa RMS is 0 dB re 1 uPa by definition.
  EXPECT_NEAR(spl_db_re_upa(1e-6), 0.0, 1e-12);
  // 1 Pa RMS is 120 dB re 1 uPa.
  EXPECT_NEAR(spl_db_re_upa(1.0), 120.0, 1e-9);
  EXPECT_NEAR(pressure_pa_from_spl(120.0), 1.0, 1e-9);
}

TEST(Units, Wavelength15kHz) {
  // ~10 cm at 15 kHz in water.
  EXPECT_NEAR(wavelength(15000.0), 0.0987, 0.0005);
}

TEST(Bitops, BytesBitsRoundTrip) {
  const Bytes bytes = {0xA5, 0x00, 0xFF, 0x3C};
  const Bits bits = bits_from_bytes(bytes);
  ASSERT_EQ(bits.size(), 32u);
  EXPECT_EQ(bytes_from_bits(bits), bytes);
}

TEST(Bitops, MsbFirstOrder) {
  const Bits bits = bits_from_bytes(std::vector<std::uint8_t>{0x80});
  EXPECT_EQ(bits[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
}

TEST(Bitops, AppendAndReadUint) {
  Bits bits;
  append_uint(bits, 0x1A5, 9);
  EXPECT_EQ(bits.size(), 9u);
  EXPECT_EQ(read_uint(bits, 0, 9), 0x1A5u);
}

TEST(Bitops, ReadUintOutOfRangeThrows) {
  Bits bits(8, 0);
  EXPECT_THROW((void)read_uint(bits, 4, 8), std::invalid_argument);
}

TEST(Bitops, HammingDistance) {
  const Bits a = {1, 0, 1, 1};
  const Bits b = {1, 1, 1, 0};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  EXPECT_THROW((void)hamming_distance(a, Bits{1}), std::invalid_argument);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(mean(xs), 3.0, 1e-12);
  EXPECT_NEAR(variance(xs), 2.5, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, Rms) {
  const std::vector<double> xs = {3.0, -4.0};
  EXPECT_NEAR(rms(xs), std::sqrt(12.5), 1e-12);
}

TEST(Stats, Median) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_NEAR(median(odd), 3.0, 1e-12);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_NEAR(median(even), 2.5, 1e-12);
}

TEST(Stats, EmptyInputsThrow) {
  EXPECT_THROW((void)mean({}), std::invalid_argument);
  EXPECT_THROW((void)rms({}), std::invalid_argument);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  const auto xs = rng.awgn(200000, 2.0);
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 2.0, 0.02);
}

TEST(Rng, BitsAreBalanced) {
  Rng rng(11);
  const auto bits = rng.bits(100000);
  std::size_t ones = 0;
  for (auto b : bits) ones += b;
  EXPECT_NEAR(static_cast<double>(ones) / 100000.0, 0.5, 0.01);
}

TEST(Rng, ForkIndependence) {
  Rng a(1);
  Rng child = a.fork();
  // Child stream differs from the parent continuation.
  EXPECT_NE(child.uniform(), a.uniform());
}

TEST(Expected, ValueAndError) {
  Expected<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.code(), ErrorCode::kOk);

  Expected<int> err(ErrorCode::kDecodeFailure, "why");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kDecodeFailure);
  EXPECT_EQ(err.value_or(-1), -1);
  EXPECT_THROW((void)err.value(), std::runtime_error);
  EXPECT_NE(err.error().message().find("why"), std::string::npos);
}

TEST(Expected, ErrorCodeStrings) {
  EXPECT_STREQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_STREQ(to_string(ErrorCode::kCrcMismatch), "crc mismatch");
}

TEST(Require, Throws) {
  EXPECT_THROW(require(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(require(true, "fine"));
}

}  // namespace
}  // namespace pab
