# Empty dependencies file for ablation_battery_assist.
# This may be replaced when dependencies are built.
