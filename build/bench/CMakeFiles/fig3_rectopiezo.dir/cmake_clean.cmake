file(REMOVE_RECURSE
  "CMakeFiles/fig3_rectopiezo.dir/fig3_rectopiezo.cpp.o"
  "CMakeFiles/fig3_rectopiezo.dir/fig3_rectopiezo.cpp.o.d"
  "fig3_rectopiezo"
  "fig3_rectopiezo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rectopiezo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
