// Shared waveform parameter structs consumed by sim::Scenario.
//
// These collapse the duplicated per-run config structs that used to live on
// each simulator (core::UplinkRunConfig / core::NetworkRunConfig): a single
// `Waveform` describes a one-node backscatter uplink and a single `FdmaPlan`
// describes a concurrent multi-node frame.  The legacy names remain as
// aliases in core/ so existing callers keep compiling.
//
// This header is deliberately near-dependency-free so the lower core/ layer
// can alias these types without linking against the sim module; the one
// include is the tiny phy/scheme_id.hpp enum header (core already depends on
// phy).
#pragma once

#include <cstddef>
#include <vector>

#include "phy/scheme_id.hpp"

namespace pab::sim {

// Single-link backscatter uplink parameters (the former core::UplinkRunConfig).
struct Waveform {
  double carrier_hz = 15000.0;
  double bitrate = 1000.0;
  double node_start_s = 0.05;  // node begins backscattering at this link time
  double tail_s = 0.02;        // extra CW after the packet
  // Payload size drawn per Monte-Carlo trial by sim::Session (ignored by the
  // legacy call paths, which pass explicit bit vectors).
  std::size_t payload_bits = 64;
  // Uplink modulation scheme (phy::Scheme seam).  kFm0 -- the paper's line
  // code -- keeps every preset and campaign fingerprint bit-identical to the
  // pre-seam behaviour.
  phy::SchemeId scheme = phy::SchemeId::kFm0;
};

// FDMA channel plan for concurrent multi-node frames (the former
// core::NetworkRunConfig).  One carrier per node.
struct FdmaPlan {
  std::vector<double> carriers_hz;  // one per node (the FDMA plan)
  double bitrate = 250.0;
  std::size_t training_bits = 24;
  std::size_t payload_bits = 96;
};

}  // namespace pab::sim
