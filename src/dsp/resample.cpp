#include "dsp/resample.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pab::dsp {
namespace {

template <typename T>
std::vector<T> decimate_impl(std::span<const T> x, std::size_t factor) {
  require(factor >= 1, "decimate: factor must be >= 1");
  std::vector<T> out;
  out.reserve(x.size() / factor + 1);
  for (std::size_t i = 0; i < x.size(); i += factor) out.push_back(x[i]);
  return out;
}

}  // namespace

std::vector<double> decimate(std::span<const double> x, std::size_t factor) {
  return decimate_impl<double>(x, factor);
}

std::vector<cplx> decimate(std::span<const cplx> x, std::size_t factor) {
  return decimate_impl<cplx>(x, factor);
}

std::vector<double> fractional_delay(std::span<const double> x, double delay_samples) {
  require(delay_samples >= 0.0, "fractional_delay: negative delay");
  const auto int_delay = static_cast<std::size_t>(std::floor(delay_samples));
  const double frac = delay_samples - static_cast<double>(int_delay);
  std::vector<double> out(x.size() + int_delay + (frac > 0.0 ? 1 : 0), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i + int_delay] += x[i] * (1.0 - frac);
    if (frac > 0.0) out[i + int_delay + 1] += x[i] * frac;
  }
  return out;
}

namespace {

template <typename T, typename G>
void add_delayed_scaled_impl(std::vector<T>& acc, std::span<const T> y,
                             double delay_samples, G gain) {
  require(delay_samples >= 0.0, "add_delayed_scaled: negative delay");
  const auto int_delay = static_cast<std::size_t>(std::floor(delay_samples));
  const double frac = delay_samples - static_cast<double>(int_delay);
  const std::size_t needed = y.size() + int_delay + 1;
  if (acc.size() < needed) acc.resize(needed, T{});
  for (std::size_t i = 0; i < y.size(); ++i) {
    acc[i + int_delay] += gain * y[i] * (1.0 - frac);
    acc[i + int_delay + 1] += gain * y[i] * frac;
  }
}

}  // namespace

void add_delayed_scaled(std::vector<double>& acc, std::span<const double> y,
                        double delay_samples, double gain) {
  add_delayed_scaled_impl(acc, y, delay_samples, gain);
}

void add_delayed_scaled(std::vector<cplx>& acc, std::span<const cplx> y,
                        double delay_samples, cplx gain) {
  add_delayed_scaled_impl(acc, y, delay_samples, gain);
}

}  // namespace pab::dsp
