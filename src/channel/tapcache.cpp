#include "channel/tapcache.hpp"

#include <bit>
#include <mutex>

namespace pab::channel {

namespace {

std::uint64_t to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// splitmix64 finalizer: cheap, well-mixed combiner for the key hash.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::size_t TapCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t b : k.bits) h = mix(h ^ b) + 0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(h);
}

TapCache::TapCache(Tank tank, int max_image_order, bool use_image_method,
                   obs::MetricRegistry* metrics)
    : tank_(tank),
      max_image_order_(max_image_order),
      use_image_method_(use_image_method) {
  if (metrics != nullptr) {
    hits_ = &metrics->counter("channel.tapcache.hits");
    misses_ = &metrics->counter("channel.tapcache.misses");
  }
}

std::shared_ptr<const TapCache::Taps> TapCache::taps(const Vec3& a, const Vec3& b,
                                                     double freq_hz) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const Key key{{to_bits(a.x), to_bits(a.y), to_bits(a.z), to_bits(b.x),
                 to_bits(b.y), to_bits(b.z), to_bits(freq_hz)}};
  {
    std::shared_lock lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (hits_ != nullptr) hits_->add();
      return it->second;
    }
  }
  if (misses_ != nullptr) misses_->add();
  // Compute outside the lock; a concurrent duplicate computation is benign
  // (both produce identical taps, the first insert wins).
  auto computed = std::make_shared<const Taps>(
      use_image_method_
          ? image_method_taps(tank_, a, b, max_image_order_, freq_hz)
          : free_field_tap(a, b, freq_hz, tank_.water));
  std::unique_lock lock(mutex_);
  const auto [it, inserted] = cache_.emplace(key, std::move(computed));
  if (inserted) evaluations_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

}  // namespace pab::channel
