# Empty dependencies file for ablation_detection.
# This may be replaced when dependencies are built.
