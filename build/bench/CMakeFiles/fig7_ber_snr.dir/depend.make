# Empty dependencies file for fig7_ber_snr.
# This may be replaced when dependencies are built.
