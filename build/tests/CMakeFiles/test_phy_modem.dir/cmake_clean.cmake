file(REMOVE_RECURSE
  "CMakeFiles/test_phy_modem.dir/test_phy_modem.cpp.o"
  "CMakeFiles/test_phy_modem.dir/test_phy_modem.cpp.o.d"
  "test_phy_modem"
  "test_phy_modem.pdb"
  "test_phy_modem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_modem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
