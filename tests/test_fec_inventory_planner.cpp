// Tests for the protocol extensions: Hamming FEC + interleaving, slotted
// inventory, and the energy planner.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "energy/planner.hpp"
#include "mac/inventory.hpp"
#include "phy/fec.hpp"
#include "util/rng.hpp"

namespace pab {
namespace {

// --- Hamming(7,4) --------------------------------------------------------------

TEST(Hamming, EncodeDecodeIdentity) {
  Rng rng(1);
  const auto data = rng.bits(128);
  const auto coded = phy::hamming74_encode(data);
  EXPECT_EQ(coded.size(), 128u / 4u * 7u);
  EXPECT_EQ(phy::hamming74_decode(coded), data);
}

TEST(Hamming, CorrectsAnySingleErrorPerCodeword) {
  Rng rng(2);
  const auto data = rng.bits(64);
  const auto coded = phy::hamming74_encode(data);
  for (std::size_t i = 0; i < coded.size(); ++i) {
    auto corrupted = coded;
    corrupted[i] ^= 1;
    EXPECT_EQ(phy::hamming74_decode(corrupted), data) << "flip at " << i;
  }
}

TEST(Hamming, TwoErrorsInOneCodewordMayFail) {
  // Hamming(7,4) has distance 3: double errors are miscorrected.  Document
  // the boundary rather than pretend otherwise.
  const Bits data = {1, 0, 1, 1};
  auto coded = phy::hamming74_encode(data);
  coded[0] ^= 1;
  coded[1] ^= 1;
  EXPECT_NE(phy::hamming74_decode(coded), data);
}

TEST(Hamming, NonMultipleLengthsThrow) {
  EXPECT_THROW((void)phy::hamming74_encode(Bits{1, 0, 1}), std::invalid_argument);
  EXPECT_THROW((void)phy::hamming74_decode(Bits(8, 0)), std::invalid_argument);
}

// --- Interleaver ---------------------------------------------------------------

TEST(Interleaver, RoundTripAllSizes) {
  Rng rng(3);
  for (std::size_t n : {1u, 7u, 13u, 49u, 100u}) {
    for (std::size_t rows : {1u, 2u, 7u, 11u}) {
      const auto bits = rng.bits(n);
      const auto inter = phy::interleave(bits, rows);
      ASSERT_EQ(inter.size(), n);
      EXPECT_EQ(phy::deinterleave(inter, rows), bits)
          << "n=" << n << " rows=" << rows;
    }
  }
}

TEST(Interleaver, SpreadsBursts) {
  // A burst of `rows` consecutive errors after interleaving lands in
  // distinct rows (hence distinct codewords) after de-interleaving.
  const std::size_t rows = 7, n = 70;
  Bits zeros(n, 0);
  auto inter = phy::interleave(zeros, rows);
  for (std::size_t i = 20; i < 20 + rows; ++i) inter[i] ^= 1;  // channel burst
  const auto de = phy::deinterleave(inter, rows);
  // Error positions in the de-interleaved stream:
  std::set<std::size_t> rows_hit;
  for (std::size_t i = 0; i < n; ++i)
    if (de[i]) rows_hit.insert(i / (n / rows));
  EXPECT_GE(rows_hit.size(), rows - 1);  // burst spread across ~all rows
}

TEST(Fec, PipelineRoundTrip) {
  Rng rng(4);
  const auto data = rng.bits(50);  // non-multiple of 4: exercises padding
  const auto coded = phy::fec_protect(data);
  EXPECT_EQ(coded.size(), phy::fec_coded_size(50));
  EXPECT_EQ(phy::fec_recover(coded, 50), data);
}

TEST(Fec, SurvivesErrorBurst) {
  // A 7-bit channel burst (one deep fade) is fully corrected thanks to the
  // interleaver: each affected codeword sees at most one error.
  Rng rng(5);
  const auto data = rng.bits(120);
  auto coded = phy::fec_protect(data);
  const std::size_t start = coded.size() / 3;
  for (std::size_t i = start; i < start + 7; ++i) coded[i] ^= 1;
  EXPECT_EQ(phy::fec_recover(coded, 120), data);
}

TEST(Fec, UncodedFailsWhereFecSurvives) {
  Rng rng(6);
  const auto data = rng.bits(120);
  // Uncoded: the same 7-bit burst destroys 7 payload bits.
  auto raw = data;
  for (std::size_t i = 40; i < 47; ++i) raw[i] ^= 1;
  EXPECT_EQ(hamming_distance(data, raw), 7u);
  // Coded: zero residual errors (previous test), at 7/4 overhead.
  EXPECT_NEAR(static_cast<double>(phy::fec_coded_size(120)) / 120.0, 1.75, 1e-9);
}

// --- Inventory -------------------------------------------------------------------

TEST(Inventory, IdentifiesWholePopulation) {
  std::vector<std::uint8_t> population;
  for (std::uint8_t id = 1; id <= 20; ++id) population.push_back(id);
  mac::InventoryStats stats;
  const auto found = mac::run_inventory(population, {}, &stats);
  ASSERT_EQ(found.size(), population.size());
  std::set<std::uint8_t> unique(found.begin(), found.end());
  EXPECT_EQ(unique.size(), population.size());
  EXPECT_GT(stats.frames, 0u);
  EXPECT_EQ(stats.singletons, population.size());
}

TEST(Inventory, SingleNodeIsFast) {
  const std::vector<std::uint8_t> population = {7};
  mac::InventoryStats stats;
  const auto found = mac::run_inventory(population, {}, &stats);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 7);
  EXPECT_LE(stats.frames, 2u);
}

TEST(Inventory, EmptyPopulation) {
  mac::InventoryStats stats;
  const auto found = mac::run_inventory({}, {}, &stats);
  EXPECT_TRUE(found.empty());
  EXPECT_EQ(stats.frames, 0u);
}

TEST(Inventory, SlotHashIsDeterministicAndSpread) {
  // Same inputs -> same slot; different nonces decorrelate the choice.
  EXPECT_EQ(mac::inventory_slot(5, 100, 16), mac::inventory_slot(5, 100, 16));
  std::set<std::size_t> seen;
  for (std::uint64_t nonce = 0; nonce < 64; ++nonce)
    seen.insert(mac::inventory_slot(5, nonce, 16));
  EXPECT_GE(seen.size(), 12u);  // uses most of the 16 slots across frames
}

// The O(n) swap-and-compact pass that removes identified ids from the
// pending list must be observationally identical to the old O(n^2)
// erase(find(...)) loop: slot choice hashes (id, nonce) and never looks at
// list order, so only the identified sequence and the stats matter.  This
// reference reimplements the old removal verbatim and compares end to end.
std::vector<std::uint8_t> run_inventory_reference(
    std::span<const std::uint8_t> population, const mac::InventoryConfig& config,
    mac::InventoryStats* stats) {
  std::vector<std::uint8_t> pending(population.begin(), population.end());
  std::vector<std::uint8_t> identified;
  mac::InventoryStats local;
  int q = config.initial_q;
  std::uint64_t nonce = config.seed;
  for (int frame = 0; frame < config.max_frames && !pending.empty(); ++frame) {
    ++local.frames;
    ++nonce;
    const std::size_t slot_count = std::size_t{1} << q;
    local.slots += slot_count;
    std::map<std::size_t, std::vector<std::uint8_t>> slots;
    for (std::uint8_t id : pending)
      slots[mac::inventory_slot(id, nonce, slot_count)].push_back(id);
    std::size_t frame_singletons = 0, frame_collisions = 0;
    for (const auto& [slot, ids] : slots) {
      if (ids.size() == 1) {
        ++frame_singletons;
        identified.push_back(ids.front());
        pending.erase(std::find(pending.begin(), pending.end(), ids.front()));
      } else {
        ++frame_collisions;
      }
    }
    local.singletons += frame_singletons;
    local.collisions += frame_collisions;
    local.empties += slot_count - frame_singletons - frame_collisions;
    q = mac::adapt_q(q, frame_collisions, slot_count - frame_singletons - frame_collisions,
                     frame_singletons, config.min_q, config.max_q);
  }
  if (stats != nullptr) *stats = local;
  return identified;
}

TEST(Inventory, CompactionMatchesEraseReference) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    for (const std::size_t n : {1u, 5u, 23u, 60u, 120u}) {
      std::vector<std::uint8_t> population;
      for (std::size_t id = 1; id <= n; ++id)
        population.push_back(static_cast<std::uint8_t>(id));
      mac::InventoryConfig cfg;
      cfg.seed = seed;
      mac::InventoryStats got_stats, ref_stats;
      const auto got = mac::run_inventory(population, cfg, &got_stats);
      const auto ref = run_inventory_reference(population, cfg, &ref_stats);
      EXPECT_EQ(got, ref) << "seed=" << seed << " n=" << n;
      EXPECT_EQ(got_stats.frames, ref_stats.frames);
      EXPECT_EQ(got_stats.slots, ref_stats.slots);
      EXPECT_EQ(got_stats.singletons, ref_stats.singletons);
      EXPECT_EQ(got_stats.collisions, ref_stats.collisions);
      EXPECT_EQ(got_stats.empties, ref_stats.empties);
    }
  }
}

TEST(Inventory, QAdaptationDirections) {
  EXPECT_EQ(mac::adapt_q(3, /*collisions=*/10, /*empties=*/1, /*singles=*/2, 0, 8), 4);
  EXPECT_EQ(mac::adapt_q(3, 1, 10, 2, 0, 8), 2);
  EXPECT_EQ(mac::adapt_q(3, 2, 2, 3, 0, 8), 3);
  EXPECT_EQ(mac::adapt_q(8, 100, 0, 0, 0, 8), 8);  // clamped
  EXPECT_EQ(mac::adapt_q(0, 0, 100, 0, 0, 8), 0);
}

TEST(Inventory, AdaptiveBeatsTinyFixedFrames) {
  // 60 nodes against q=2 frames with no adaptation would thrash; the
  // adaptive reader converges within the frame budget.
  std::vector<std::uint8_t> population;
  for (std::uint8_t id = 1; id <= 60; ++id) population.push_back(id);
  mac::InventoryConfig cfg;
  cfg.initial_q = 2;
  mac::InventoryStats stats;
  const auto found = mac::run_inventory(population, cfg, &stats);
  EXPECT_EQ(found.size(), 60u);
  EXPECT_GT(stats.slot_efficiency(), 0.15);  // theoretical ALOHA max ~0.37
}

// --- Energy planner ---------------------------------------------------------------

TEST(Planner, TransactionEnergyBreakdown) {
  energy::EnergyPlanner planner;
  energy::TransactionCost cost;
  const double e = planner.transaction_energy_j(cost);
  // Decode (41 bits at PWM pace) + backscatter (76 bits at 1 kbps) + sensing.
  EXPECT_GT(e, 50e-6);
  EXPECT_LT(e, 1e-3);
}

TEST(Planner, SustainabilityThreshold) {
  energy::EnergyPlanner planner;
  energy::TransactionCost cost;
  const double rate = 1.0;  // one transaction per second
  const double demand = planner.mcu().idle_power_w() +
                        rate * planner.transaction_energy_j(cost);
  EXPECT_TRUE(planner.sustainable(demand * 1.01, cost, rate));
  EXPECT_FALSE(planner.sustainable(demand * 0.99, cost, rate));
}

TEST(Planner, MaxRateConsistent) {
  energy::EnergyPlanner planner;
  energy::TransactionCost cost;
  const double harvest = 400e-6;  // a node a few meters out
  const double max_rate = planner.max_transaction_rate_hz(harvest, cost);
  EXPECT_GT(max_rate, 0.0);
  EXPECT_TRUE(planner.sustainable(harvest, cost, max_rate * 0.99));
  EXPECT_FALSE(planner.sustainable(harvest, cost, max_rate * 1.01));
}

TEST(Planner, BelowIdleMeansZeroRate) {
  energy::EnergyPlanner planner;
  EXPECT_EQ(planner.max_transaction_rate_hz(50e-6, energy::TransactionCost{}),
            0.0);
  const auto recharge = planner.recharge_time_s(50e-6, energy::TransactionCost{});
  ASSERT_TRUE(recharge.ok());
  EXPECT_GT(recharge.value(), 0.0);
  EXPECT_EQ(planner.recharge_time_s(0.0, energy::TransactionCost{}).code(),
            pab::ErrorCode::kInsufficientPower);
}

}  // namespace
}  // namespace pab
