// N-node concurrent backscatter network simulation.
//
// Generalizes the paper's 2-node concurrent demonstration (section 6.3) to N
// recto-piezos on an FDMA channel plan, with NxN channel estimation from
// staggered training and zero-forcing separation -- exploring the scaling
// question the paper raises in section 8 ("the gain from FDMA scales as the
// number of nodes with different resonance frequencies increases", limited by
// transducer bandwidth).
#pragma once

#include <memory>
#include <vector>

#include "channel/tapcache.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/projector.hpp"
#include "core/setup.hpp"
#include "phy/matrix.hpp"
#include "sim/waveform.hpp"
#include "util/rng.hpp"

namespace pab::core {

// The frame parameters are shared with the sim layer; the old name forwards
// to sim::FdmaPlan (same fields, same defaults).
using NetworkRunConfig = sim::FdmaPlan;

struct NetworkRunResult {
  std::vector<double> sinr_before_db;  // per node, own-carrier readout
  std::vector<double> sinr_after_db;   // per node, after NxN zero-forcing
  std::vector<double> ber_after;       // per node
  double condition_number = 0.0;
  phy::CMatrix channel;
  // Aggregate goodput proxy: payload bits of nodes decoded below 1% BER over
  // the frame airtime.
  double aggregate_goodput_bps = 0.0;
};

class MultiNodeSimulator {
 public:
  MultiNodeSimulator(SimConfig config, channel::Vec3 projector,
                     channel::Vec3 hydrophone,
                     std::vector<channel::Vec3> node_positions);
  // Share an external tap cache (one per sim::Session).
  MultiNodeSimulator(SimConfig config, channel::Vec3 projector,
                     channel::Vec3 hydrophone,
                     std::vector<channel::Vec3> node_positions,
                     std::shared_ptr<channel::TapCache> tap_cache);

  // `front_ends` must match the node count; carriers come from `cfg`.  All
  // randomness (training chips, payloads, noise) is drawn from the explicit
  // `rng`, making the run a pure function of (scenario, rng state) -- the
  // property sim::BatchRunner's determinism guarantee rests on.  The rng-less
  // overload draws from the simulator's own stream.
  [[nodiscard]] NetworkRunResult run(const Projector& projector,
                                     const std::vector<circuit::RectoPiezo>& front_ends,
                                     const NetworkRunConfig& cfg,
                                     pab::Rng& rng) const;
  [[nodiscard]] NetworkRunResult run(const Projector& projector,
                                     const std::vector<circuit::RectoPiezo>& front_ends,
                                     const NetworkRunConfig& cfg);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::shared_ptr<channel::TapCache>& tap_cache() const {
    return tap_cache_;
  }

 private:
  SimConfig config_;
  channel::Vec3 projector_pos_;
  channel::Vec3 hydrophone_pos_;
  std::vector<channel::Vec3> nodes_;
  pab::Rng rng_;
  std::shared_ptr<channel::TapCache> tap_cache_;
};

}  // namespace pab::core
