
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/cdma.cpp" "src/CMakeFiles/pab_phy.dir/phy/cdma.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/cdma.cpp.o.d"
  "/root/repo/src/phy/cfo.cpp" "src/CMakeFiles/pab_phy.dir/phy/cfo.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/cfo.cpp.o.d"
  "/root/repo/src/phy/crc.cpp" "src/CMakeFiles/pab_phy.dir/phy/crc.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/crc.cpp.o.d"
  "/root/repo/src/phy/equalizer.cpp" "src/CMakeFiles/pab_phy.dir/phy/equalizer.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/equalizer.cpp.o.d"
  "/root/repo/src/phy/fec.cpp" "src/CMakeFiles/pab_phy.dir/phy/fec.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/fec.cpp.o.d"
  "/root/repo/src/phy/fm0.cpp" "src/CMakeFiles/pab_phy.dir/phy/fm0.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/fm0.cpp.o.d"
  "/root/repo/src/phy/matrix.cpp" "src/CMakeFiles/pab_phy.dir/phy/matrix.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/matrix.cpp.o.d"
  "/root/repo/src/phy/metrics.cpp" "src/CMakeFiles/pab_phy.dir/phy/metrics.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/metrics.cpp.o.d"
  "/root/repo/src/phy/mimo.cpp" "src/CMakeFiles/pab_phy.dir/phy/mimo.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/mimo.cpp.o.d"
  "/root/repo/src/phy/modem.cpp" "src/CMakeFiles/pab_phy.dir/phy/modem.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/modem.cpp.o.d"
  "/root/repo/src/phy/packet.cpp" "src/CMakeFiles/pab_phy.dir/phy/packet.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/packet.cpp.o.d"
  "/root/repo/src/phy/pwm.cpp" "src/CMakeFiles/pab_phy.dir/phy/pwm.cpp.o" "gcc" "src/CMakeFiles/pab_phy.dir/phy/pwm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
