// Reader-side network controller.
//
// The projector acts as an RFID-style reader (paper section 3.3.2).  This
// class is the full reader implementation over the waveform simulator: it
// deploys battery-free nodes in the tank, charges them from the downlink
// carrier, discovers them by ping scan, executes CRC-checked query/response
// transactions with retransmission, and adapts each node's bitrate with the
// kSetBitrate command as channel conditions change.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/link.hpp"
#include "core/projector.hpp"
#include "mac/protocol.hpp"
#include "mac/rate_control.hpp"
#include "mac/scheduler.hpp"
#include "node/node.hpp"

namespace pab::core {

struct DeployedNode {
  std::unique_ptr<node::PabNode> node;
  channel::Vec3 position;
  mac::RateController rate;
  std::size_t transactions = 0;
  std::size_t failures = 0;
};

class ReaderController {
 public:
  ReaderController(SimConfig config, Placement base, Projector projector,
                   double carrier_hz = 15000.0);

  // Place a battery-free node in the tank.  Returns its address.
  std::uint8_t deploy_node(node::NodeConfig node_config,
                           const sense::Environment* environment,
                           channel::Vec3 position);

  // Transmit CW and let every deployed node harvest for up to `timeout_s`
  // (simulated time).  Returns how many nodes reached power-up.
  std::size_t power_up_all(double timeout_s);

  // Ping scan over [1, max_address]: which addresses answer?
  [[nodiscard]] std::vector<std::uint8_t> discover(std::uint8_t max_address);

  // One full waveform-level transaction with retries; feeds the node's rate
  // controller and pushes a kSetBitrate command when it moves.
  [[nodiscard]] pab::Expected<mac::SensorReading> read(
      std::uint8_t address, phy::Command command);

  // Send an argumented configuration command (kSetBitrate, kSetResonance,
  // kSetRobustMode, ...) and wait for the node's acknowledgement.
  [[nodiscard]] pab::Expected<mac::SensorReading> configure(
      std::uint8_t address, phy::Command command, std::uint8_t argument);

  [[nodiscard]] mac::TransactionStats stats() const {
    return scheduler_.stats();
  }
  [[nodiscard]] const std::map<std::uint8_t, DeployedNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] double node_bitrate(std::uint8_t address) const;
  [[nodiscard]] bool node_powered(std::uint8_t address) const;

 private:
  // One raw downlink->uplink exchange against a specific node.
  [[nodiscard]] pab::Expected<phy::UplinkPacket> transact_once(
      DeployedNode& entry, const phy::DownlinkQuery& query, double* snr_out);

  // Push a rate change to the node (best effort).
  void apply_rate_change(DeployedNode& entry, std::uint8_t address);

  SimConfig config_;
  Placement base_;
  Projector projector_;
  double carrier_hz_;
  std::map<std::uint8_t, DeployedNode> nodes_;
  mac::PollScheduler scheduler_;
  std::uint64_t seed_counter_ = 0;
};

}  // namespace pab::core
