// Campaign wire format: canonical byte encoding and length-prefixed frames.
//
// Everything the campaign engine persists or ships between processes --
// record batches, metric snapshots, shard descriptors, checkpoint shard
// files -- goes through one canonical little-endian encoding, so "the same
// results" is testable as byte equality: a merged multi-process campaign and
// a single-process run serialize to identical bytes.
//
// Frames (the pab_serve <-> pab_worker pipe protocol) are
//   u32 length (type byte + payload) | u8 MsgType | payload bytes
// with blocking full-read/full-write semantics: each side writes whole
// frames, so a reader that has seen the length prefix can read to the end of
// the frame without re-entering its event loop.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pab::campaign {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v);  // IEEE-754 bit pattern, little-endian
  // Length-prefixed string (u32 length + bytes).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s);
  }
  void raw(std::string_view s) { buf_.append(s.data(), s.size()); }

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Reader over a complete in-memory payload.  Truncation (a malformed or
// short payload) throws std::runtime_error; protocol handlers catch it at
// the frame boundary and surface a pab::Error.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// Metric snapshot codec: the per-shard deltas shipped in kShardDone frames
// and embedded in checkpoint shard files.
void write_metrics(ByteWriter& w, const obs::MetricsSnapshot& m);
[[nodiscard]] obs::MetricsSnapshot read_metrics(ByteReader& r);

// ---- Frames -----------------------------------------------------------------

enum class MsgType : std::uint8_t {
  kSpec = 1,      // serve -> worker: campaign spec + worker thread count
  kRunShard = 2,  // serve -> worker: one shard assignment
  kRecords = 3,   // worker -> serve: a chunk of a shard's record batch
  kShardDone = 4, // worker -> serve: shard finished; metrics delta attached
  kShutdown = 5,  // serve -> worker: drain and exit
  kError = 6,     // worker -> serve: fatal failure (message payload)
};

struct Frame {
  MsgType type{};
  std::string payload;
};

// Blocking full write of one frame.  Fails (kBusError) when the peer is gone
// (EPIPE/EBADF) -- callers treat that as a dead worker, not a crash.
[[nodiscard]] pab::Expected<bool> write_frame(int fd, MsgType type,
                                              std::string_view payload);

// Blocking read of one whole frame.  A clean EOF at a frame boundary returns
// kBusError with detail "eof" (the worker's shutdown signal when the serve
// side closes the pipe); EOF mid-frame reports a truncated stream.
[[nodiscard]] pab::Expected<Frame> read_frame(int fd);

}  // namespace pab::campaign
