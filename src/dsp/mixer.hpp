// Carrier generation, mixing, and down-conversion.
#pragma once

#include <span>
#include <vector>

#include "dsp/arena.hpp"
#include "dsp/signal.hpp"

namespace pab::dsp {

// Real sine carrier: amplitude * sin(2*pi*f*t + phase).
[[nodiscard]] Signal make_tone(double freq_hz, double amplitude, double duration_s,
                               double sample_rate, double phase = 0.0);

// Quadrature down-conversion: y[n] = x[n] * exp(-j*2*pi*fc*n/fs).  The result
// must be low-pass filtered (and optionally decimated) by the caller to remove
// the 2*fc image.
[[nodiscard]] BasebandSignal downconvert(const Signal& x, double carrier_hz);

// Full receiver front-end step: down-convert, Butterworth low-pass at
// `lowpass_hz` (order `order`), and decimate by `decim`.
[[nodiscard]] BasebandSignal downconvert_filtered(const Signal& x, double carrier_hz,
                                                  double lowpass_hz, int order = 5,
                                                  std::size_t decim = 1);

// Upconvert a complex baseband signal back to a real passband signal.
[[nodiscard]] Signal upconvert(const BasebandSignal& x, double carrier_hz);

// ---- into-output kernels (allocation-free; the overloads above wrap them
// or compute the same arithmetic in the same order) ----

// Samples of a tone of `duration_s`: floor(duration_s * fs).
[[nodiscard]] std::size_t tone_length(double duration_s, double sample_rate);

// out[i] = amplitude * sin(2*pi*f*i/fs + phase); the tone length is out.size().
void make_tone_into(double freq_hz, double amplitude, double sample_rate,
                    double phase, std::span<double> out);

// out[i] = 2 * x[i] * exp(-j*2*pi*fc*i/fs); out.size() must equal x.size().
void downconvert_into(std::span<const double> x, double sample_rate,
                      double carrier_hz, std::span<cplx> out);

// Arena variant of downconvert_filtered: down-convert, low-pass, and
// decimate entirely in arena scratch.  Returns a view into the arena valid
// until the enclosing frame ends.
[[nodiscard]] CplxView downconvert_filtered(std::span<const double> x,
                                            double sample_rate, double carrier_hz,
                                            double lowpass_hz, int order,
                                            std::size_t decim, Arena& arena);

// As above with a caller-owned low-pass cascade (build it once with
// butterworth_lowpass and reuse it; designing a filter allocates).
class BiquadCascade;
[[nodiscard]] CplxView downconvert_filtered(std::span<const double> x,
                                            double sample_rate, double carrier_hz,
                                            const BiquadCascade& lowpass,
                                            std::size_t decim, Arena& arena);

// out[i] = Re(x[i]) cos(w i) - Im(x[i]) sin(w i); out.size() == x.size().
void upconvert_into(std::span<const cplx> x, double sample_rate,
                    double carrier_hz, std::span<double> out);

}  // namespace pab::dsp
