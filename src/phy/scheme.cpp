#include "phy/scheme.hpp"

#include <algorithm>

#include "phy/packet.hpp"

namespace pab::phy {

const SchemeDescriptor& scheme_descriptor(SchemeId id) {
  // FSK factors follow the tone plan in phy/fsk.hpp: FSK2 tops out at the
  // 3R tone (toggle rate 6R, occupied band ~2*(3R + R)); FSK4 at symbol rate
  // R/2 tops out at 2.5R (toggle rate 5R, band ~2*(2.5R + R/2)).
  static const SchemeDescriptor kTable[kSchemeCount] = {
      {SchemeId::kFm0, "fm0", /*bits_per_symbol=*/1, /*chips_per_bit=*/2.0,
       /*decode_floor_db=*/2.0, /*bandwidth_factor=*/2.0,
       /*switch_rate_factor=*/2.0},
      {SchemeId::kFsk2, "fsk2", /*bits_per_symbol=*/1, /*chips_per_bit=*/6.0,
       /*decode_floor_db=*/5.0, /*bandwidth_factor=*/8.0,
       /*switch_rate_factor=*/6.0},
      {SchemeId::kFsk4, "fsk4", /*bits_per_symbol=*/2, /*chips_per_bit=*/5.0,
       /*decode_floor_db=*/7.0, /*bandwidth_factor=*/6.0,
       /*switch_rate_factor=*/5.0},
  };
  const auto i = static_cast<std::size_t>(id);
  require(i < kSchemeCount, "scheme_descriptor: unknown scheme");
  return kTable[i];
}

std::size_t scheme_waveform_length(SchemeId scheme, std::size_t n_data_bits,
                                   double bitrate, double sample_rate) {
  switch (scheme) {
    case SchemeId::kFm0:
      return backscatter_waveform_length(
          uplink_preamble_bits().size() + n_data_bits, bitrate, sample_rate);
    case SchemeId::kFsk2:
    case SchemeId::kFsk4:
      return fsk_waveform_length(FskParams::from(scheme, bitrate, sample_rate),
                                 n_data_bits);
  }
  require(false, "scheme_waveform_length: unknown scheme");
  return 0;
}

void scheme_waveform_into(SchemeId scheme,
                          std::span<const std::uint8_t> data_bits,
                          double bitrate, double sample_rate,
                          std::span<SwitchState> out, dsp::Arena& scratch) {
  switch (scheme) {
    case SchemeId::kFm0: {
      // Verbatim legacy path: FM0-encode the concatenated preamble+data
      // stream in one call so chip boundaries land on exactly the same
      // fractional sample positions as before the seam.
      const auto frame = scratch.frame();
      const pab::Bits& preamble = uplink_preamble_bits();
      auto full_bits =
          scratch.alloc<std::uint8_t>(preamble.size() + data_bits.size());
      std::copy(preamble.begin(), preamble.end(), full_bits.begin());
      std::copy(data_bits.begin(), data_bits.end(),
                full_bits.begin() +
                    static_cast<std::ptrdiff_t>(preamble.size()));
      backscatter_waveform_into(full_bits, bitrate, sample_rate,
                                /*initial_level=*/-1, out, scratch);
      return;
    }
    case SchemeId::kFsk2:
    case SchemeId::kFsk4:
      fsk_waveform_into(FskParams::from(scheme, bitrate, sample_rate),
                        data_bits, out, scratch);
      return;
  }
  require(false, "scheme_waveform_into: unknown scheme");
}

SchemeDemodulator::SchemeDemodulator(SchemeConfig config) : config_(config) {
  switch (config_.scheme) {
    case SchemeId::kFm0:
      fm0_.emplace(config_.demod);
      return;
    case SchemeId::kFsk2:
      fsk_.emplace(config_.demod, /*bits_per_symbol=*/1);
      return;
    case SchemeId::kFsk4:
      fsk_.emplace(config_.demod, /*bits_per_symbol=*/2);
      return;
  }
  require(false, "SchemeDemodulator: unknown scheme");
}

Expected<bool> SchemeDemodulator::demodulate_into(
    std::span<const double> passband, double sample_rate, std::size_t n_bits,
    dsp::Arena& scratch, DemodResult& out) const {
  if (fm0_.has_value())
    return fm0_->demodulate_into(passband, sample_rate, n_bits, scratch, out);
  return fsk_->demodulate_into(passband, sample_rate, n_bits, scratch, out);
}

Expected<bool> SchemeDemodulator::demodulate_envelope_into(
    std::span<const double> envelope, double envelope_rate, std::size_t n_bits,
    dsp::Arena& scratch, DemodResult& out) const {
  if (fm0_.has_value())
    return fm0_->demodulate_envelope_into(envelope, envelope_rate, n_bits,
                                          scratch, out);
  return fsk_->demodulate_envelope_into(envelope, envelope_rate, n_bits,
                                        scratch, out);
}

}  // namespace pab::phy
