file(REMOVE_RECURSE
  "libpab_phy.a"
)
