# Empty compiler generated dependencies file for node_discovery.
# This may be replaced when dependencies are built.
