// Session: the executable counterpart of a Scenario.
//
// A Session instantiates the scenario's hardware once (projector, recto-piezo
// front ends, link/network simulators) and owns the memoized caches that make
// Monte-Carlo aggregation cheap:
//   * image-method tap sets, keyed by (endpoint, endpoint, carrier) in a
//     shared channel::TapCache, and
//   * recto-piezo modulation responses (the BVD + matching-network walk),
//     keyed by (front end, carrier, bitrate).
// Both caches are thread-safe: one Session serves trials to every worker of a
// sim::BatchRunner concurrently.  Each trial draws all of its randomness from
// a per-trial RNG substream split off `scenario().medium.seed`, so per-trial
// results are bit-identical at any thread count.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <tuple>
#include <variant>
#include <vector>

#include "core/link.hpp"
#include "core/network.hpp"
#include "mac/inventory.hpp"
#include "mac/scheduler.hpp"
#include "obs/metrics.hpp"
#include "phy/workspace.hpp"
#include "sim/scenario.hpp"
#include "sim/timeline.hpp"
#include "sim/trial.hpp"
#include "util/error.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"

namespace pab::sim {

// Deterministic substream derivation: seed for trial `stream` of a run seeded
// with `base_seed` (the std::seed_seq generate algorithm, stable across
// platforms and thread schedules; implemented without seed_seq's heap
// allocation and verified bit-equal against it in the test suite).
[[nodiscard]] std::uint64_t substream_seed(std::uint64_t base_seed,
                                           std::uint64_t stream);

// ---- Per-kind trial results -------------------------------------------------
// One single-link uplink trial: draw `waveform.payload_bits` random bits,
// simulate the backscatter uplink, decode with the standard receiver.
struct UplinkTrial {
  pab::Bits sent;
  phy::DemodResult demod;
  double ber = 0.0;
  double incident_pressure_pa = 0.0;
  double modulation_pressure_pa = 0.0;
};

// One discrete-event network round (see TimelineRoundConfig in sim/trial.hpp).
struct TimelineRunResult {
  std::vector<std::uint8_t> identified;  // inventory discovery order
  mac::InventoryStats inventory;
  mac::TransactionStats poll;
  double simulated_s = 0.0;
  std::size_t events_processed = 0;
  double harvested_j = 0.0;
  double consumed_j = 0.0;
  std::size_t power_ups = 0;
  std::size_t brown_outs = 0;
  std::vector<TimelineEvent> event_log;  // full audit log of the round
};

// One deployment-scale field round (see FieldRoundConfig in sim/trial.hpp):
// the culled pairwise link budget of the whole NodeField plus one zoned
// inventory with FDMA channel reuse.
struct FieldRunResult {
  std::size_t population = 0;
  // Link-budget census.
  double cull_radius_m = 0.0;      // gain-floor crossing distance
  std::uint64_t total_pairs = 0;   // n * (n-1) / 2
  std::uint64_t kept_pairs = 0;    // pairs within the cull radius
  std::uint64_t culled_pairs = 0;
  double mean_pair_gain = 0.0;     // mean coherent gain over kept pairs
  double mean_reader_gain = 0.0;   // mean coherent projector->node gain
  // Tap-cache economics of this trial (per-trial cache, so the sharing the
  // quantized keys buy is directly visible).
  std::uint64_t tap_evaluations = 0;
  std::uint64_t tap_lookups = 0;
  // Zoned MAC round.
  std::size_t zones = 0;
  std::size_t zone_colors = 0;
  std::size_t zone_rounds = 0;
  std::size_t channels = 0;        // distinct FDMA carriers in the zone plan
  std::vector<std::uint32_t> identified;  // global indices, discovery order
  mac::InventoryStats inventory;
  // Cross-zone interference ledger (zero when the model is off): singleton
  // replies demoted to CRC failures by the SINR test, and the mean SINR (dB)
  // over every evaluated singleton slot.
  std::uint64_t interference_corrupted_slots = 0;
  double mean_slot_sinr_db = 0.0;
  // Model-level link quality implied by the mean slot SINR in the scheme's
  // occupied bandwidth (phy::link_quality_from_snr); zeros when the
  // interference model is off (no SINR ledger to derive from).
  phy::LinkQuality slot_quality;
  double simulated_s = 0.0;
  double node_hours = 0.0;  // population * simulated_s / 3600
  std::size_t events_processed = 0;
  std::vector<TimelineEvent> event_log;  // master timeline audit log
};

// Compile-time kind -> result mapping of the unified run API.
template <TrialKind K>
struct TrialTraits;
template <>
struct TrialTraits<TrialKind::kUplink> {
  using Result = UplinkTrial;
};
template <>
struct TrialTraits<TrialKind::kNetwork> {
  using Result = core::NetworkRunResult;
};
template <>
struct TrialTraits<TrialKind::kTimeline> {
  using Result = TimelineRunResult;
};
template <>
struct TrialTraits<TrialKind::kField> {
  using Result = FieldRunResult;
};

// Runtime-kind result: what Session::run_trial(TrialKind, ...) returns.  The
// alternative index equals the TrialKind value.
using TrialResult = std::variant<UplinkTrial, core::NetworkRunResult,
                                 TimelineRunResult, FieldRunResult>;

class Session {
 public:
  // Instrumentation (cache hit/miss counters, per-trial decode latency
  // histograms -- `sim.session.*`, `channel.tapcache.*`, `phy.demod.*`)
  // lands in `metrics`: the process-global registry by default (so bench
  // sidecars see every session), or an explicit registry for isolated
  // accounting in tests.  The registry must outlive the session.  All
  // instruments are relaxed atomics and never touch a trial's RNG substream,
  // so per-trial results stay bit-identical with metrics enabled.
  explicit Session(Scenario scenario,
                   obs::MetricRegistry* metrics = &obs::MetricRegistry::global());

  [[nodiscard]] obs::MetricRegistry& metrics() const { return *metrics_; }

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }
  [[nodiscard]] const core::Projector& projector() const { return projector_; }
  [[nodiscard]] const circuit::RectoPiezo& front_end(std::size_t j = 0) const {
    return front_ends_.at(j);
  }
  [[nodiscard]] std::size_t node_count() const { return scenario_.node_count(); }
  [[nodiscard]] const std::shared_ptr<channel::TapCache>& tap_cache() const {
    return tap_cache_;
  }
  [[nodiscard]] const core::LinkSimulator& link() const { return link_; }

  // Memoized recto-piezo modulation response of node `j` at (carrier,
  // bitrate).  The first call per key walks the circuit model; later calls
  // (and concurrent callers) are served from the cache.
  [[nodiscard]] const core::ModulationStates& modulation(std::size_t j,
                                                         double carrier_hz,
                                                         double bitrate) const;
  // How many responses were actually evaluated (regression observability).
  [[nodiscard]] std::uint64_t modulation_evaluations() const {
    return modulation_evaluations_.load(std::memory_order_relaxed);
  }

  // RNG substream for one trial (all of the trial's randomness).
  [[nodiscard]] pab::Rng trial_rng(std::uint64_t trial) const {
    return pab::Rng(substream_seed(scenario_.medium.seed, trial));
  }

  // ---- Monte-Carlo trials ---------------------------------------------------
  // The three trial kinds (see sim/trial.hpp); the old nested names remain
  // as aliases so existing `Session::UplinkTrial` spellings keep compiling.
  using UplinkTrial = sim::UplinkTrial;
  using TimelineRoundConfig = sim::TimelineRoundConfig;
  using TimelineRunResult = sim::TimelineRunResult;

  // Unified entry point, compile-time kind: one trial of kind K with a typed
  // result.  kUplink draws `waveform.payload_bits` random bits, simulates the
  // backscatter uplink, and decodes with the standard receiver (decode
  // failures surface as the demodulator's error through Expected).  kNetwork
  // runs one concurrent multi-node frame per the scenario's FDMA plan
  // (requires as many front ends and carriers as nodes).  kTimeline runs one
  // full discrete-event round: per-node lifecycles (cold-start, duty cycle,
  // brownout/recover) tick on a trial-local Timeline while the timed
  // inventory and then a poll round run through the same event queue, so a
  // node that browns out mid-inventory misses its slot and rejoins after
  // recharge.  Every kind draws all randomness from trial_rng(trial):
  // results are bit-identical at any BatchRunner thread count.
  template <TrialKind K>
  [[nodiscard]] pab::Expected<typename TrialTraits<K>::Result> run_trial(
      std::uint64_t trial, const TrialOptions& opts = {}) const {
    if constexpr (K == TrialKind::kUplink) {
      (void)opts;
      return uplink_trial(trial);
    } else if constexpr (K == TrialKind::kNetwork) {
      (void)opts;
      return network_trial(trial);
    } else if constexpr (K == TrialKind::kTimeline) {
      return timeline_trial(trial, opts.timeline);
    } else {
      return field_trial(trial, opts.field);
    }
  }

  // Unified entry point, runtime kind: the form the campaign engine and the
  // worker protocol use, where the kind arrives over the wire.  The variant
  // alternative index equals the kind value.
  [[nodiscard]] pab::Expected<TrialResult> run_trial(
      TrialKind kind, std::uint64_t trial, const TrialOptions& opts = {}) const;

  // Zero-allocation uplink variant: trial scratch (workspace arena + waveform
  // buffers) is leased from an internal pool keyed by nothing -- one context
  // per concurrently in-flight trial, reused across trials.  `out` fields
  // resize in place, so a caller that reuses one UplinkTrial per worker sees
  // no heap allocation after the first few trials.  Bit-identical to
  // run_trial<kUplink>, which wraps this.
  [[nodiscard]] pab::Expected<bool> run_into(std::uint64_t trial,
                                             UplinkTrial& out) const;

 private:
  // Per-kind implementations behind the run_trial dispatch.
  [[nodiscard]] pab::Expected<UplinkTrial> uplink_trial(
      std::uint64_t trial) const;
  [[nodiscard]] pab::Expected<core::NetworkRunResult> network_trial(
      std::uint64_t trial) const;
  [[nodiscard]] pab::Expected<TimelineRunResult> timeline_trial(
      std::uint64_t trial, const TimelineRoundConfig& config) const;
  [[nodiscard]] pab::Expected<FieldRunResult> field_trial(
      std::uint64_t trial, const FieldRoundConfig& config) const;

  Scenario scenario_;
  obs::MetricRegistry* metrics_;
  std::shared_ptr<channel::TapCache> tap_cache_;
  core::Projector projector_;
  std::vector<circuit::RectoPiezo> front_ends_;
  core::LinkSimulator link_;
  std::optional<core::MultiNodeSimulator> network_;  // built when placements allow

  using ModKey = std::tuple<std::size_t, double, double>;
  mutable std::shared_mutex modulation_mutex_;
  mutable std::map<ModKey, core::ModulationStates> modulation_cache_;
  mutable std::atomic<std::uint64_t> modulation_evaluations_{0};

  // Per-trial scratch: a workspace (arena + cached demodulator) plus the
  // synthesis/decode result buffers.  Pooled like the tap cache -- one
  // context per concurrently in-flight trial, leased per run_into call and
  // returned warm, so steady-state trials allocate nothing.
  struct TrialContext {
    phy::Workspace workspace;
    core::LinkSimulator::DecodedRun decoded;
  };
  mutable util::Pool<TrialContext> trial_contexts_;

  // Instruments resolved once at construction (registry-lifetime pointers).
  obs::Counter* n_trials_ = nullptr;
  obs::Counter* n_decode_failures_ = nullptr;
  obs::Counter* n_mod_hits_ = nullptr;
  obs::Counter* n_mod_misses_ = nullptr;
  obs::Histogram* t_trial_ = nullptr;
  // Arena footprint of the most recent trial's workspace (bytes / blocks):
  // how much scratch one trial needs and whether it ever re-grew.
  obs::Gauge* g_arena_capacity_ = nullptr;
  obs::Gauge* g_arena_high_water_ = nullptr;
  obs::Gauge* g_arena_blocks_ = nullptr;
};

}  // namespace pab::sim
