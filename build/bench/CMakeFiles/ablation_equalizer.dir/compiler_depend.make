# Empty compiler generated dependencies file for ablation_equalizer.
# This may be replaced when dependencies are built.
