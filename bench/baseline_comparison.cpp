// Section 2 / 3.2 claim: backscatter vs. conventional active acoustic
// transmission.
//
// Paper: generating an acoustic carrier costs orders of magnitude more energy
// than backscatter ("even low-power acoustic transmitters typically require
// few hundred Watts"; battery-less harvest-then-beacon systems achieve only
// few-to-tens of bps, while PAB "boosts the network throughput by two to
// three orders of magnitude").
//
// Baseline model: a harvest-then-beacon node (e.g. the paper's refs [24,40])
// charges its capacitor from the same acoustic field, then spends the stored
// energy generating its own carrier through the same transducer at a source
// level sufficient to reach the hydrophone.
#include "bench_util.hpp"
#include "circuit/rectopiezo.hpp"
#include "energy/harvester.hpp"
#include "energy/mcu.hpp"
#include "piezo/transducer.hpp"
#include "util/units.hpp"

namespace {

using namespace pab;

constexpr double kCarrier = 15000.0;
constexpr double kBitrate = 1000.0;     // PAB link rate
constexpr double kIncidentPa = 400.0;   // field at the node (a few m range)

void print_series() {
  bench::print_header("Baseline",
                      "Backscatter vs harvest-then-beacon active transmission");

  const energy::McuPowerModel mcu;
  const auto fe = circuit::make_recto_piezo(15000.0);
  const auto xdcr = piezo::make_node_transducer(15000.0);

  // --- PAB backscatter ---------------------------------------------------
  const double pab_power = mcu.backscatter_power_w(kBitrate);
  const double pab_energy_per_bit = pab_power / kBitrate;

  // --- Active baseline -----------------------------------------------------
  // To be received a few meters away with margin comparable to the
  // backscatter link, the beacon drives its transducer to a ~160 dB source
  // level (a modest 0.1 W acoustic).  Electrical drive power includes the
  // transducer's electroacoustic efficiency.
  const double target_acoustic_w = 0.1;
  const double eta_ea = xdcr.bvd().r_rad / xdcr.bvd().rm;
  const double tx_electrical_w = target_acoustic_w / eta_ea;
  // Plus amplifier/driver overhead (class-D efficiency ~80%).
  const double active_power = tx_electrical_w / 0.8;
  const double active_energy_per_bit = active_power / kBitrate;

  // Harvest-then-beacon duty cycle: the node can only transmit the fraction
  // of time its harvest covers the transmit burn.
  const double harvest_w = fe.harvested_dc_power(kCarrier, kIncidentPa);
  const double duty = std::min(1.0, harvest_w / active_power);
  const double active_avg_throughput = duty * kBitrate;

  bench::print_row({"metric", "backscatter", "active-tx", "ratio"});
  bench::print_row({"tx power [W]", bench::fmt_sci(pab_power),
                    bench::fmt_sci(active_power),
                    bench::fmt(active_power / pab_power, 0) + "x"});
  bench::print_row({"energy/bit [J]", bench::fmt_sci(pab_energy_per_bit),
                    bench::fmt_sci(active_energy_per_bit),
                    bench::fmt(active_energy_per_bit / pab_energy_per_bit, 0) + "x"});
  bench::print_row({"throughput [bps]", bench::fmt(kBitrate, 0),
                    bench::fmt(active_avg_throughput, 1),
                    bench::fmt(kBitrate / std::max(active_avg_throughput, 1e-9), 0) + "x"});

  std::printf("\nharvested power at the node: %.1f uW; active transmit burn: "
              "%.2f W\n  -> duty cycle %.2e, average throughput %.2f bps\n",
              harvest_w * 1e6, active_power, duty, active_avg_throughput);
  std::printf("Paper shape: backscatter is 2-3 orders of magnitude cheaper per\n"
              "bit; harvest-then-beacon systems sustain only few-to-tens of bps\n"
              "while PAB sustains kbps.\n");

  const double orders =
      std::log10(active_energy_per_bit / pab_energy_per_bit);
  std::printf("Measured energy-per-bit gap: %.1f orders of magnitude\n", orders);
}

void bm_harvest_power(benchmark::State& state) {
  const auto fe = circuit::make_recto_piezo(15000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fe.harvested_dc_power(kCarrier, kIncidentPa));
  }
}
BENCHMARK(bm_harvest_power);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "baseline_comparison";
  spec.description = "Backscatter vs harvest-then-beacon active transmission";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "baseline_comparison";
  sweep.kind = pab::sim::TrialKind::kUplink;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 12;
  sweep.axes.push_back({"waveform.bitrate", {500.0, 1000.0, 2000.0}});
  spec.campaign = std::move(sweep);
  return pab::bench::run_bench_main(argc, argv, spec);
}
