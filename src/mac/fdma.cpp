#include "mac/fdma.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pab::mac {

ChannelPlan plan_channels(std::size_t n_nodes, const ChannelPlanConfig& config) {
  require(n_nodes >= 1, "plan_channels: need at least one node");
  require(config.band_high_hz > config.band_low_hz, "plan_channels: empty band");
  require(config.min_spacing_hz > 0.0, "plan_channels: spacing must be positive");

  const double band = config.band_high_hz - config.band_low_hz;
  const auto max_channels =
      static_cast<std::size_t>(std::floor(band / config.min_spacing_hz)) + 1;
  // Over-subscription is a structured result, not an error: plan as many
  // distinct channels as the band holds and report the reuse factor the
  // caller needs to cover the surplus (zoned spatial reuse or sequential
  // rounds).  Within capacity the historical one-carrier-per-node plan is
  // reproduced exactly.
  const std::size_t distinct = std::min(n_nodes, max_channels);

  ChannelPlan plan;
  plan.requested = n_nodes;
  plan.reuse_factor = (n_nodes + distinct - 1) / distinct;
  if (distinct == 1) {
    plan.carriers_hz.push_back(0.5 * (config.band_low_hz + config.band_high_hz));
    return plan;
  }
  // Spread across the band edge-to-edge.
  const double step = band / static_cast<double>(distinct - 1);
  for (std::size_t i = 0; i < distinct; ++i)
    plan.carriers_hz.push_back(config.band_low_hz + step * static_cast<double>(i));
  return plan;
}

double rejection_db(const RejectionMask& mask, double tx_hz, double rx_hz) {
  require(mask.passband_hz >= 0.0, "rejection_db: negative passband");
  require(mask.slope_db_per_khz >= 0.0, "rejection_db: negative slope");
  require(mask.floor_db >= 0.0, "rejection_db: negative floor");
  const double delta = std::abs(tx_hz - rx_hz);
  if (delta <= mask.passband_hz) return 0.0;
  const double skirt =
      mask.slope_db_per_khz * (delta - mask.passband_hz) / 1000.0;
  return std::min(skirt, mask.floor_db);
}

double rejection_power_factor(const RejectionMask& mask, double tx_hz,
                              double rx_hz) {
  return std::pow(10.0, -0.1 * rejection_db(mask, tx_hz, rx_hz));
}

std::vector<std::vector<double>> crosstalk_matrix(const ChannelPlan& plan,
                                                  double mechanical_resonance_hz) {
  const std::size_t n = plan.channels();
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  std::vector<circuit::RectoPiezo> nodes;
  nodes.reserve(n);
  for (double f : plan.carriers_hz)
    nodes.push_back(circuit::make_recto_piezo(f, mechanical_resonance_hz));

  for (std::size_t j = 0; j < n; ++j) {
    const double on_channel = nodes[j].modulation_depth(plan.carriers_hz[j]);
    for (std::size_t i = 0; i < n; ++i) {
      const double depth = nodes[j].modulation_depth(plan.carriers_hz[i]);
      m[i][j] = on_channel > 0.0 ? depth / on_channel : 0.0;
    }
  }
  return m;
}

double fdma_throughput_bps(std::size_t n, double per_link_bps) {
  require(per_link_bps >= 0.0, "fdma_throughput: negative rate");
  return static_cast<double>(n) * per_link_bps;
}

double tdma_throughput_bps(std::size_t n, double per_link_bps) {
  require(n >= 1, "tdma_throughput: need at least one node");
  return per_link_bps;  // one node transmits at a time; aggregate = link rate
}

}  // namespace pab::mac
