#include "dsp/resample.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/simd.hpp"
#include "util/error.hpp"

namespace pab::dsp {

std::size_t decimated_length(std::size_t n, std::size_t factor) {
  require(factor >= 1, "decimate: factor must be >= 1");
  return (n + factor - 1) / factor;
}

namespace {

template <typename T>
void decimate_into_impl(std::span<const T> x, std::size_t factor,
                        std::span<T> out) {
  require(out.size() == decimated_length(x.size(), factor),
          "decimate_into: output size mismatch");
  std::size_t j = 0;
  for (std::size_t i = 0; i < x.size(); i += factor) out[j++] = x[i];
}

template <typename T>
std::vector<T> decimate_impl(std::span<const T> x, std::size_t factor) {
  std::vector<T> out(decimated_length(x.size(), factor));
  decimate_into_impl<T>(x, factor, out);
  return out;
}

}  // namespace

std::vector<double> decimate(std::span<const double> x, std::size_t factor) {
  return decimate_impl<double>(x, factor);
}

std::vector<cplx> decimate(std::span<const cplx> x, std::size_t factor) {
  return decimate_impl<cplx>(x, factor);
}

void decimate_into(std::span<const double> x, std::size_t factor,
                   std::span<double> out) {
  decimate_into_impl<double>(x, factor, out);
}

void decimate_into(std::span<const cplx> x, std::size_t factor,
                   std::span<cplx> out) {
  decimate_into_impl<cplx>(x, factor, out);
}

std::size_t delayed_length(std::size_t n, double delay_samples) {
  require(delay_samples >= 0.0, "fractional_delay: negative delay");
  const auto int_delay = static_cast<std::size_t>(std::floor(delay_samples));
  const double frac = delay_samples - static_cast<double>(int_delay);
  return n + int_delay + (frac > 0.0 ? 1 : 0);
}

void fractional_delay_into(std::span<const double> x, double delay_samples,
                           std::span<double> out) {
  require(out.size() == delayed_length(x.size(), delay_samples),
          "fractional_delay_into: output size mismatch");
  const auto int_delay = static_cast<std::size_t>(std::floor(delay_samples));
  const double frac = delay_samples - static_cast<double>(int_delay);
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i + int_delay] += x[i] * (1.0 - frac);
    if (frac > 0.0) out[i + int_delay + 1] += x[i] * frac;
  }
}

std::vector<double> fractional_delay(std::span<const double> x, double delay_samples) {
  std::vector<double> out(delayed_length(x.size(), delay_samples));
  fractional_delay_into(x, delay_samples, out);
  return out;
}

namespace {

template <typename T, typename G>
void add_delayed_scaled_into_impl(std::span<T> acc, std::span<const T> y,
                                  double delay_samples, G gain) {
  require(delay_samples >= 0.0, "add_delayed_scaled: negative delay");
  const auto int_delay = static_cast<std::size_t>(std::floor(delay_samples));
  const double frac = delay_samples - static_cast<double>(int_delay);
  require(acc.size() >= y.size() + int_delay + 1,
          "add_delayed_scaled_into: accumulator too small");
  if (simd::enabled()) {
    // Vector path: the two fractional-interpolation halves become a pair of
    // dispatched axpys with pre-multiplied gains.  Tolerance path (the gain
    // pre-multiply and separated passes round differently from the
    // interleaved reference below).
    const G g0 = gain * (1.0 - frac);
    simd::axpy(g0, y, acc.subspan(int_delay));
    if (frac > 0.0) {
      const G g1 = gain * frac;
      simd::axpy(g1, y, acc.subspan(int_delay + 1));
    }
    return;
  }
  for (std::size_t i = 0; i < y.size(); ++i) {
    acc[i + int_delay] += gain * y[i] * (1.0 - frac);
    acc[i + int_delay + 1] += gain * y[i] * frac;
  }
}

template <typename T, typename G>
void add_delayed_scaled_impl(std::vector<T>& acc, std::span<const T> y,
                             double delay_samples, G gain) {
  require(delay_samples >= 0.0, "add_delayed_scaled: negative delay");
  const auto int_delay = static_cast<std::size_t>(std::floor(delay_samples));
  const std::size_t needed = y.size() + int_delay + 1;
  if (acc.size() < needed) acc.resize(needed, T{});
  add_delayed_scaled_into_impl<T, G>(acc, y, delay_samples, gain);
}

}  // namespace

void add_delayed_scaled(std::vector<double>& acc, std::span<const double> y,
                        double delay_samples, double gain) {
  add_delayed_scaled_impl(acc, y, delay_samples, gain);
}

void add_delayed_scaled(std::vector<cplx>& acc, std::span<const cplx> y,
                        double delay_samples, cplx gain) {
  add_delayed_scaled_impl(acc, y, delay_samples, gain);
}

void add_delayed_scaled_into(std::span<double> acc, std::span<const double> y,
                             double delay_samples, double gain) {
  add_delayed_scaled_into_impl(acc, y, delay_samples, gain);
}

void add_delayed_scaled_into(std::span<cplx> acc, std::span<const cplx> y,
                             double delay_samples, cplx gain) {
  add_delayed_scaled_into_impl(acc, y, delay_samples, gain);
}

}  // namespace pab::dsp
