#include "campaign/batch_executor.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "campaign/manifest.hpp"

namespace pab::campaign {

pab::Expected<CampaignResult> BatchExecutor::run(const CampaignSpec& spec,
                                                 const RunOptions& options) {
  auto valid = spec.validate();
  if (!valid.ok()) return valid.error();
  const std::vector<Shard> shards = spec.compile(options.shard_size);

  std::optional<CheckpointStore> store;
  if (!options.checkpoint_dir.empty()) {
    store.emplace(options.checkpoint_dir);
    auto opened =
        store->open(spec.fingerprint(), shards.size(), options.resume);
    if (!opened.ok()) return opened.error();
  }

  std::vector<ShardOutput> outputs;
  outputs.reserve(shards.size());
  std::uint64_t executed = 0;
  for (const Shard& shard : shards) {
    if (store.has_value() && store->is_done(shard.index)) {
      auto loaded = store->load(shard.index);
      if (!loaded.ok()) return loaded.error();
      outputs.push_back(std::move(loaded).value());
      continue;
    }
    if (options.max_shards != 0 && executed >= options.max_shards)
      return pab::Error{pab::ErrorCode::kTimeout,
                        "campaign interrupted after max_shards shards "
                        "(progress checkpointed; re-run with resume)"};
    auto output = run_shard(spec, shard, options.worker_threads);
    if (!output.ok()) return output.error();
    ++executed;
    if (store.has_value()) {
      auto stored = store->store(output.value());
      if (!stored.ok()) return stored.error();
    }
    outputs.push_back(std::move(output).value());
  }
  return assemble_result(spec, std::move(outputs));
}

}  // namespace pab::campaign
