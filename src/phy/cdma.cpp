#include "phy/cdma.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pab::phy {

std::vector<std::int8_t> walsh_code(std::size_t length, std::size_t index) {
  require(length >= 1 && (length & (length - 1)) == 0,
          "walsh_code: length must be a power of two");
  require(index < length, "walsh_code: index out of range");
  std::vector<std::int8_t> code(length);
  for (std::size_t n = 0; n < length; ++n) {
    // Hadamard entry = (-1)^{popcount(n & index)}.
    const int bits = __builtin_popcountll(n & index);
    code[n] = (bits % 2 == 0) ? 1 : -1;
  }
  return code;
}

std::vector<std::int8_t> cdma_spread(std::span<const std::int8_t> data_chips,
                                     std::span<const std::int8_t> code) {
  require(!code.empty(), "cdma_spread: empty code");
  std::vector<std::int8_t> out;
  out.reserve(data_chips.size() * code.size());
  for (std::int8_t d : data_chips)
    for (std::int8_t c : code)
      out.push_back(static_cast<std::int8_t>(d * c));
  return out;
}

std::vector<double> cdma_despread(std::span<const double> rx,
                                  std::span<const std::int8_t> code) {
  require(!code.empty(), "cdma_despread: empty code");
  const std::size_t periods = rx.size() / code.size();
  std::vector<double> out(periods, 0.0);
  for (std::size_t p = 0; p < periods; ++p) {
    double acc = 0.0;
    for (std::size_t i = 0; i < code.size(); ++i)
      acc += rx[p * code.size() + i] * static_cast<double>(code[i]);
    out[p] = acc / static_cast<double>(code.size());
  }
  return out;
}

double occupied_bandwidth_hz(double symbol_rate) {
  require(symbol_rate > 0.0, "occupied_bandwidth: rate must be positive");
  return 2.0 * symbol_rate;
}

double code_cross_correlation(std::span<const std::int8_t> a,
                              std::span<const std::int8_t> b,
                              std::size_t offset) {
  require(a.size() == b.size() && !a.empty(),
          "code_cross_correlation: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) *
           static_cast<double>(b[(i + offset) % b.size()]);
  return std::abs(acc) / static_cast<double>(a.size());
}

}  // namespace pab::phy
