// Packet framing for the RFID-style PAB protocol.
//
// "The projector is similar to an RFID reader and transmits a query on the
// downlink which contains a preamble, destination address, and payload.
// Similarly, the uplink backscatter packet consists of a preamble, a header,
// and a payload" (paper section 3.3.2), with a CRC for retransmission
// requests (section 5.1b).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "phy/crc.hpp"
#include "util/bitops.hpp"
#include "util/error.hpp"

namespace pab::phy {

// --- Downlink ---------------------------------------------------------------

// Commands a projector can issue (paper section 5.1a: "setting backscatter
// link frequency, switching its resonance mode, or requesting certain sensed
// data like pH, temperature, or pressure").
enum class Command : std::uint8_t {
  kPing = 0x01,           // respond with node id
  kReadPh = 0x02,         // sample the pH sensor
  kReadTemperature = 0x03,
  kReadPressure = 0x04,
  kSetBitrate = 0x05,     // payload: clock-divider index
  kSetResonance = 0x06,   // payload: recto-piezo bank index
  kReadAdc = 0x07,        // raw ADC sample of the analog peripheral
  kSetRobustMode = 0x08,  // payload: 1 = Hamming(7,4)+interleaver uplink
};

inline constexpr std::uint8_t kBroadcastAddress = 0xFF;

// The paper's downlink query uses a 9-bit preamble (section 5.1a).
inline constexpr std::uint16_t kDownlinkPreamble = 0b101100111;  // 9 bits
inline constexpr int kDownlinkPreambleBits = 9;

struct DownlinkQuery {
  std::uint8_t address = kBroadcastAddress;
  Command command = Command::kPing;
  std::uint8_t argument = 0;

  [[nodiscard]] Bits to_bits() const;
  [[nodiscard]] static std::optional<DownlinkQuery> from_bits(const Bits& bits);
};

// --- Uplink -----------------------------------------------------------------

// Uplink preamble: a 12-bit pattern with good aperiodic autocorrelation for
// packet detection and channel estimation at the hydrophone.
inline const Bits& uplink_preamble_bits();

struct UplinkPacket {
  std::uint8_t node_id = 0;
  Bytes payload;  // up to 255 bytes

  // Header = node id (8b) + payload length (8b); CRC-16 covers header+payload.
  [[nodiscard]] Bits to_bits(bool include_preamble = true) const;
  [[nodiscard]] static std::optional<UplinkPacket> from_bits(const Bits& bits,
                                                             bool has_preamble = true);

  // Total bit count on air for a payload of `payload_len` bytes.
  [[nodiscard]] static std::size_t bits_on_air(std::size_t payload_len,
                                               bool include_preamble = true);
};

inline const Bits& uplink_preamble_bits() {
  static const Bits kPreamble = {1, 0, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0};
  return kPreamble;
}

}  // namespace pab::phy
