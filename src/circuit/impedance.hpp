// Complex impedance algebra and the backscatter reflection coefficient.
#pragma once

#include <complex>

namespace pab::circuit {

using cplx = std::complex<double>;

[[nodiscard]] cplx parallel(cplx a, cplx b);

// Impedance of an inductor / capacitor at `freq_hz`.
[[nodiscard]] cplx inductor_z(double henry, double freq_hz);
[[nodiscard]] cplx capacitor_z(double farad, double freq_hz);

// Power-wave reflection coefficient (paper Eq. 2, Kurokawa 1965):
//   Gamma = (Z_L - Z_s^*) / (Z_L + Z_s)
// |Gamma|^2 is the fraction of incident power reflected; Gamma = 0 at the
// conjugate match (full absorption), |Gamma| = 1 for a short/open (full
// reflection).
[[nodiscard]] cplx reflection_coefficient(cplx z_load, cplx z_source);

// |Gamma|^2, clamped to [0, 1] against rounding.
[[nodiscard]] double reflected_power_fraction(cplx z_load, cplx z_source);

}  // namespace pab::circuit
