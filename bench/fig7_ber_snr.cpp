// Figure 7: BER vs SNR curve of the backscatter link.
//
// Paper: BER decreases with SNR; the decoder needs a minimum SNR around 2 dB
// (typical for biphase modulation like FM0) and BER drops to 1e-5 above
// ~11 dB (floored at 1e-5 by the packet sizes used).
//
// Monte-Carlo at chip level: FM0-encode random payloads, add calibrated AWGN
// to the soft chips, ML-decode, count errors.
#include "bench_util.hpp"
#include "phy/fm0.hpp"
#include "phy/metrics.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace pab;

constexpr std::size_t kBitsPerTrial = 1000;
constexpr double kBerFloor = 1e-5;  // paper: packets always < 1e5 bits

double measure_ber(double snr_db, std::size_t min_errors, Rng& rng) {
  // Chip-level SNR: chip amplitude 1, noise sigma from SNR.
  const double sigma = 1.0 / std::sqrt(power_ratio_from_db(snr_db));
  std::size_t errors = 0, total = 0;
  const std::size_t max_bits = 2u << 20;  // cap the work per point
  while (errors < min_errors && total < max_bits) {
    const auto bits = rng.bits(kBitsPerTrial);
    const auto chips = phy::fm0_encode(bits);
    std::vector<double> soft(chips.size());
    for (std::size_t i = 0; i < soft.size(); ++i)
      soft[i] = chips[i] + rng.gaussian(0.0, sigma);
    errors += hamming_distance(bits, phy::fm0_decode_ml(soft));
    total += bits.size();
  }
  const double ber = static_cast<double>(errors) / static_cast<double>(total);
  return std::max(ber, kBerFloor);
}

void print_series() {
  bench::print_header("Figure 7", "BER-SNR curve (FM0 ML decoding)");
  Rng rng(77);
  bench::print_row({"SNR [dB]", "BER"});
  double snr_at_decode_floor = -1.0, snr_at_1e5 = -1.0;
  for (double snr = 0.0; snr <= 18.0 + 0.1; snr += 1.0) {
    const double ber = measure_ber(snr, /*min_errors=*/100, rng);
    bench::print_row({bench::fmt(snr, 1), bench::fmt_sci(ber)});
    if (snr_at_decode_floor < 0.0 && ber < 0.1) snr_at_decode_floor = snr;
    if (snr_at_1e5 < 0.0 && ber <= kBerFloor) snr_at_1e5 = snr;
  }
  std::printf("\nDecodable (BER < 10%%) from ~%.0f dB  (paper: ~2 dB)\n",
              snr_at_decode_floor);
  std::printf("BER reaches the 1e-5 floor at ~%.0f dB (paper: ~11 dB)\n",
              snr_at_1e5);
}

void bm_fm0_ml_decode(benchmark::State& state) {
  Rng rng(7);
  const auto bits = rng.bits(1000);
  const auto chips = phy::fm0_encode(bits);
  std::vector<double> soft(chips.size());
  for (std::size_t i = 0; i < soft.size(); ++i)
    soft[i] = chips[i] + rng.gaussian(0.0, 0.5);
  for (auto _ : state) {
    auto decoded = phy::fm0_decode_ml(soft);
    benchmark::DoNotOptimize(decoded.data());
  }
}
BENCHMARK(bm_fm0_ml_decode)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return pab::bench::run_bench_main(argc, argv, print_series);
}
