#include "channel/propagation.hpp"

#include <cmath>

#include "dsp/resample.hpp"
#include "util/units.hpp"
#include "util/error.hpp"

namespace pab::channel {

dsp::Signal apply_taps(const dsp::Signal& x, const std::vector<PathTap>& taps) {
  require(x.sample_rate > 0.0, "apply_taps: sample rate unset");
  dsp::Signal y;
  y.sample_rate = x.sample_rate;
  for (const PathTap& t : taps) {
    dsp::add_delayed_scaled(y.samples, x.samples, t.delay_s * x.sample_rate, t.gain);
  }
  return y;
}

dsp::BasebandSignal apply_taps_baseband(const dsp::BasebandSignal& x,
                                        const std::vector<PathTap>& taps) {
  require(x.sample_rate > 0.0, "apply_taps_baseband: sample rate unset");
  dsp::BasebandSignal y;
  y.sample_rate = x.sample_rate;
  y.carrier_hz = x.carrier_hz;
  for (const PathTap& t : taps) {
    const double phase = -pab::kTwoPi * x.carrier_hz * t.delay_s;
    const dsp::cplx gain = t.gain * dsp::cplx(std::cos(phase), std::sin(phase));
    dsp::add_delayed_scaled(y.samples, std::span<const dsp::cplx>(x.samples),
                            t.delay_s * x.sample_rate, gain);
  }
  return y;
}

Propagator::Propagator(const Tank& tank, const Vec3& src, const Vec3& rx,
                       double freq_hz, int max_order, bool use_image_method) {
  taps_ = use_image_method
              ? image_method_taps(tank, src, rx, max_order, freq_hz)
              : free_field_tap(src, rx, freq_hz, tank.water);
}

}  // namespace pab::channel
