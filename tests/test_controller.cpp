// ReaderController integration tests: deployment, power-up, discovery,
// adaptive transactions.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "sim/scenario.hpp"

namespace pab::core {
namespace {

struct Rig {
  sense::Environment env;
  SimConfig config = sim::Scenario::pool_a().medium;
  Placement base;
  Rig() {
    env.ph = 7.5;
    env.temperature_c = 19.0;
    env.pressure_mbar = 1013.25;
  }
  [[nodiscard]] ReaderController make_reader(double drive_v = 300.0) const {
    return ReaderController(
        config, base, Projector(piezo::make_projector_transducer(), drive_v));
  }
};

TEST(Controller, DeployPowerUpDiscover) {
  Rig rig;
  auto reader = rig.make_reader();
  node::NodeConfig n1;
  n1.id = 1;
  node::NodeConfig n2;
  n2.id = 2;
  reader.deploy_node(n1, &rig.env, {1.4, 2.0, 0.65});
  reader.deploy_node(n2, &rig.env, {1.8, 2.3, 0.65});

  EXPECT_EQ(reader.power_up_all(120.0), 2u);
  EXPECT_TRUE(reader.node_powered(1));
  EXPECT_TRUE(reader.node_powered(2));

  const auto found = reader.discover(5);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0], 1);
  EXPECT_EQ(found[1], 2);
}

TEST(Controller, ReadSensorsEndToEnd) {
  Rig rig;
  auto reader = rig.make_reader();
  node::NodeConfig cfg;
  cfg.id = 3;
  cfg.node_depth_m = 0.0;
  reader.deploy_node(cfg, &rig.env, {1.5, 2.1, 0.65});
  ASSERT_EQ(reader.power_up_all(120.0), 1u);

  const auto ph = reader.read(3, phy::Command::kReadPh);
  ASSERT_TRUE(ph.ok()) << ph.error().message();
  EXPECT_NEAR(ph.value().value, 7.5, 0.15);

  const auto temp = reader.read(3, phy::Command::kReadTemperature);
  ASSERT_TRUE(temp.ok());
  EXPECT_NEAR(temp.value().value, 19.0, 0.2);

  const auto pressure = reader.read(3, phy::Command::kReadPressure);
  ASSERT_TRUE(pressure.ok());
  EXPECT_NEAR(pressure.value().value, 1013.25, 3.0);

  EXPECT_GE(reader.stats().successes, 3u);
}

TEST(Controller, UnknownAddressFails) {
  Rig rig;
  auto reader = rig.make_reader();
  const auto r = reader.read(9, phy::Command::kPing);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), pab::ErrorCode::kInvalidArgument);
}

TEST(Controller, UnpoweredNodeDoesNotAnswer) {
  Rig rig;
  auto reader = rig.make_reader();
  node::NodeConfig cfg;
  cfg.id = 4;
  reader.deploy_node(cfg, &rig.env, {1.5, 2.1, 0.65});
  // No power_up_all: the node never charged.
  EXPECT_FALSE(reader.node_powered(4));
  const auto r = reader.read(4, phy::Command::kPing);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(reader.discover(5).empty());
}

TEST(Controller, DuplicateAddressThrows) {
  Rig rig;
  auto reader = rig.make_reader();
  node::NodeConfig cfg;
  cfg.id = 1;
  reader.deploy_node(cfg, &rig.env, {1.4, 2.0, 0.65});
  EXPECT_THROW(reader.deploy_node(cfg, &rig.env, {1.8, 2.3, 0.65}),
               std::invalid_argument);
}

TEST(Controller, RobustModeTransactionsKeepWorking) {
  Rig rig;
  auto reader = rig.make_reader();
  node::NodeConfig cfg;
  cfg.id = 6;
  cfg.node_depth_m = 0.0;
  reader.deploy_node(cfg, &rig.env, {1.5, 2.1, 0.65});
  ASSERT_EQ(reader.power_up_all(120.0), 1u);

  // Switch the node to robust mode over the air.
  const auto ack = reader.configure(6, phy::Command::kSetRobustMode, 1);
  ASSERT_TRUE(ack.ok()) << ack.error().message();
  EXPECT_EQ(ack.value().value, 1.0);
  ASSERT_TRUE(reader.nodes().at(6).node->robust_uplink());

  // Transactions continue to decode through the FEC-protected uplink.
  const auto ph = reader.read(6, phy::Command::kReadPh);
  ASSERT_TRUE(ph.ok()) << ph.error().message();
  EXPECT_NEAR(ph.value().value, 7.5, 0.15);
  const auto temp = reader.read(6, phy::Command::kReadTemperature);
  ASSERT_TRUE(temp.ok());
  EXPECT_NEAR(temp.value().value, 19.0, 0.2);
}

TEST(Controller, RateAdaptationClimbsOnCleanLink) {
  Rig rig;
  auto reader = rig.make_reader();
  node::NodeConfig cfg;
  cfg.id = 5;
  cfg.active_bitrate = 0;  // start at 100 bps
  reader.deploy_node(cfg, &rig.env, {1.5, 2.1, 0.65});
  ASSERT_EQ(reader.power_up_all(120.0), 1u);

  const double initial = reader.node_bitrate(5);
  for (int i = 0; i < 12; ++i) (void)reader.read(5, phy::Command::kPing);
  // Clean short link: the controller should have pushed at least one upshift
  // down to the node via kSetBitrate.
  EXPECT_GT(reader.node_bitrate(5), initial);
}

}  // namespace
}  // namespace pab::core
