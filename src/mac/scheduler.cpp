#include "mac/scheduler.hpp"

namespace pab::mac {

PollScheduler::PollScheduler(SchedulerConfig config, obs::MetricRegistry* metrics)
    : config_(config) {
  require(config.max_retries >= 0, "PollScheduler: negative retries");
  require(config.downlink_time_s >= 0.0 && config.turnaround_s >= 0.0,
          "PollScheduler: negative timing");
  if (metrics == nullptr) {
    own_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics = own_metrics_.get();
  }
  n_attempts_ = &metrics->counter("mac.poll.attempts");
  n_successes_ = &metrics->counter("mac.poll.successes");
  n_crc_failures_ = &metrics->counter("mac.poll.crc_failures");
  n_no_response_ = &metrics->counter("mac.poll.no_response");
  n_retries_ = &metrics->counter("mac.poll.retries");
  payload_bits_delivered_ = &metrics->gauge("mac.poll.payload_bits_delivered");
  elapsed_s_ = &metrics->gauge("mac.poll.elapsed_s");
}

TransactionStats PollScheduler::stats() const {
  TransactionStats s;
  s.attempts = n_attempts_->value();
  s.successes = n_successes_->value();
  s.crc_failures = n_crc_failures_->value();
  s.no_response = n_no_response_->value();
  s.retries = n_retries_->value();
  s.payload_bits_delivered = payload_bits_delivered_->value();
  s.elapsed_s = elapsed_s_->value();
  return s;
}

void PollScheduler::reset_stats() {
  n_attempts_->reset();
  n_successes_->reset();
  n_crc_failures_->reset();
  n_no_response_->reset();
  n_retries_->reset();
  payload_bits_delivered_->reset();
  elapsed_s_->reset();
}

pab::Expected<phy::UplinkPacket> PollScheduler::transact(
    const phy::DownlinkQuery& query, const TransactFn& link,
    std::size_t uplink_bits, double uplink_bitrate) {
  require(uplink_bitrate > 0.0, "transact: bitrate must be positive");
  const double uplink_time =
      static_cast<double>(uplink_bits) / uplink_bitrate;

  pab::Error last{pab::ErrorCode::kTimeout, "no attempts"};
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    n_attempts_->add();
    if (attempt > 0) n_retries_->add();
    elapsed_s_->add(config_.downlink_time_s + config_.turnaround_s);

    auto result = link(query);
    // Uplink airtime is only spent when the node actually answered: a decoded
    // packet or a reply that reached the receiver but failed the CRC.  A
    // no-response attempt (no preamble, timeout) occupies the channel for the
    // query and turnaround alone -- charging the response slot too would
    // understate effective throughput on lossy links.
    const bool replied =
        result.ok() || result.error().code == pab::ErrorCode::kCrcMismatch;
    if (replied) elapsed_s_->add(uplink_time);
    if (result.ok()) {
      n_successes_->add();
      payload_bits_delivered_->add(
          static_cast<double>(result.value().payload.size()) * 8.0);
      return result;
    }
    last = result.error();
    if (last.code == pab::ErrorCode::kCrcMismatch) n_crc_failures_->add();
    else n_no_response_->add();
  }
  return last;
}

void PollScheduler::poll_round(std::span<const phy::DownlinkQuery> queries,
                               const TransactFn& link, std::size_t uplink_bits,
                               double uplink_bitrate) {
  for (const auto& q : queries)
    (void)transact(q, link, uplink_bits, uplink_bitrate);
}

}  // namespace pab::mac
