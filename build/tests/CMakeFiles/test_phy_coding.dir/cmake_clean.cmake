file(REMOVE_RECURSE
  "CMakeFiles/test_phy_coding.dir/test_phy_coding.cpp.o"
  "CMakeFiles/test_phy_coding.dir/test_phy_coding.cpp.o.d"
  "test_phy_coding"
  "test_phy_coding.pdb"
  "test_phy_coding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
