// Acoustic channel tests: water properties, image-method multipath, noise.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/noise.hpp"
#include "channel/propagation.hpp"
#include "channel/tank.hpp"
#include "channel/water.hpp"
#include "dsp/mixer.hpp"
#include "util/units.hpp"

namespace pab::channel {
namespace {

TEST(Water, SoundSpeedFreshWater20C) {
  WaterProperties w;  // 20 C, S=0, 1 m
  const double c = sound_speed_mackenzie(w);
  EXPECT_GT(c, 1430.0);
  EXPECT_LT(c, 1500.0);
}

TEST(Water, SoundSpeedIncreasesWithTemperature) {
  WaterProperties cold{10.0, 0.0, 1.0, 998.0};
  WaterProperties warm{25.0, 0.0, 1.0, 998.0};
  EXPECT_GT(sound_speed_mackenzie(warm), sound_speed_mackenzie(cold));
}

TEST(Water, SeawaterFasterThanFresh) {
  WaterProperties fresh{15.0, 0.0, 5.0, 998.0};
  WaterProperties sea{15.0, 35.0, 5.0, 1025.0};
  EXPECT_GT(sound_speed_mackenzie(sea), sound_speed_mackenzie(fresh));
}

TEST(Water, ThorpAbsorptionIncreasesWithFrequency) {
  EXPECT_LT(thorp_absorption_db_per_km(1000.0), thorp_absorption_db_per_km(15000.0));
  EXPECT_LT(thorp_absorption_db_per_km(15000.0), thorp_absorption_db_per_km(50000.0));
  // ~ couple of dB/km at 15 kHz (paper's operating band).
  const double a15 = thorp_absorption_db_per_km(15000.0);
  EXPECT_GT(a15, 1.0);
  EXPECT_LT(a15, 5.0);
}

TEST(Water, TransmissionLossSphericalSpreading) {
  // Doubling distance adds ~6 dB of spreading loss (absorption negligible
  // at tank scales).
  const double tl1 = transmission_loss_db(2.0, 15000.0);
  const double tl2 = transmission_loss_db(4.0, 15000.0);
  EXPECT_NEAR(tl2 - tl1, 6.02, 0.05);
}

TEST(Water, PathGainMatchesLoss) {
  const double g = path_amplitude_gain(5.0, 15000.0);
  EXPECT_NEAR(db_from_amplitude_ratio(g), -transmission_loss_db(5.0, 15000.0), 1e-9);
}

TEST(Tank, PoolDimensionsMatchPaper) {
  const Tank a = make_pool_a();
  EXPECT_NEAR(a.size.x, 3.0, 1e-12);
  EXPECT_NEAR(a.size.y, 4.0, 1e-12);
  EXPECT_NEAR(a.size.z, 1.3, 1e-12);
  const Tank b = make_pool_b();
  EXPECT_NEAR(b.size.x, 1.2, 1e-12);
  EXPECT_NEAR(b.size.y, 10.0, 1e-12);
  EXPECT_NEAR(b.size.z, 1.0, 1e-12);
}

TEST(Tank, DirectTapDelayAndGain) {
  const Tank tank = make_pool_a();
  const Vec3 src{1.0, 1.0, 0.65};
  const Vec3 rx{2.0, 1.0, 0.65};
  const auto taps = image_method_taps(tank, src, rx, 0, 15000.0);
  ASSERT_EQ(taps.size(), 1u);  // order 0 = direct only
  const double c = sound_speed_mackenzie(tank.water);
  EXPECT_NEAR(taps[0].delay_s, 1.0 / c, 1e-9);
  EXPECT_NEAR(taps[0].gain, path_amplitude_gain(1.0, 15000.0), 1e-9);
}

TEST(Tank, FirstTapIsDirectPath) {
  const Tank tank = make_pool_a();
  const Vec3 src{0.5, 0.5, 0.65};
  const Vec3 rx{2.5, 3.5, 0.65};
  const auto taps = image_method_taps(tank, src, rx, 2, 15000.0);
  ASSERT_GT(taps.size(), 1u);
  EXPECT_EQ(taps.front().order, 0);
  for (std::size_t i = 1; i < taps.size(); ++i)
    EXPECT_GE(taps[i].delay_s, taps.front().delay_s);
}

TEST(Tank, TapCountGrowsWithOrder) {
  const Tank tank = make_pool_a();
  const Vec3 src{1.0, 1.0, 0.5};
  const Vec3 rx{2.0, 2.0, 0.5};
  const auto t0 = image_method_taps(tank, src, rx, 0, 15000.0);
  const auto t1 = image_method_taps(tank, src, rx, 1, 15000.0);
  const auto t2 = image_method_taps(tank, src, rx, 2, 15000.0);
  EXPECT_EQ(t0.size(), 1u);
  EXPECT_EQ(t1.size(), 7u);   // direct + 6 first-order walls
  EXPECT_GT(t2.size(), t1.size());
}

TEST(Tank, SurfaceReflectionInverts) {
  // A single surface bounce must carry the negative pressure-release
  // coefficient.
  Tank tank = make_pool_a();
  tank.wall_reflection = 0.0;   // kill wall echoes
  tank.bottom_reflection = 0.0;
  const Vec3 src{1.5, 2.0, 1.0};
  const Vec3 rx{1.6, 2.0, 1.0};
  const auto taps = image_method_taps(tank, src, rx, 1, 15000.0);
  // Direct + surface image survive (zero-gain taps still enumerate, so look
  // for the negative one).
  bool found_negative = false;
  for (const auto& t : taps)
    if (t.gain < -1e-12) found_negative = true;
  EXPECT_TRUE(found_negative);
}

TEST(Tank, EndpointsOutsideTankThrow) {
  const Tank tank = make_pool_a();
  EXPECT_THROW((void)image_method_taps(tank, {-1.0, 0.0, 0.0}, {1.0, 1.0, 0.5},
                                       1, 15000.0),
               std::invalid_argument);
}

TEST(Tank, CoherentGainPhasorSum) {
  // Two taps a half-wavelength apart in delay cancel.
  std::vector<PathTap> taps = {{0.0, 1.0, 0}, {1.0 / (2.0 * 15000.0), 1.0, 1}};
  EXPECT_NEAR(coherent_gain(taps, 15000.0), 0.0, 1e-9);
  // In phase: doubles.
  taps[1].delay_s = 1.0 / 15000.0;
  EXPECT_NEAR(coherent_gain(taps, 15000.0), 2.0, 1e-9);
}

TEST(Tank, FreeFieldTap) {
  WaterProperties w;
  const auto taps = free_field_tap({0, 0, 0}, {3.0, 4.0, 0.0}, 15000.0, w);
  ASSERT_EQ(taps.size(), 1u);
  EXPECT_NEAR(taps[0].gain, path_amplitude_gain(5.0, 15000.0), 1e-9);
}

TEST(Noise, BandwidthScaling) {
  NoiseModel n{45.0};
  // 10x bandwidth -> +10 dB -> sqrt(10) in RMS.
  EXPECT_NEAR(n.rms_pressure_pa(10000.0) / n.rms_pressure_pa(1000.0),
              std::sqrt(10.0), 1e-9);
}

TEST(Noise, GeneratedPowerMatchesModel) {
  NoiseModel n{60.0};
  pab::Rng rng(1);
  const auto samples = n.generate(100000, 96000.0, rng);
  const double measured = std::sqrt(
      dsp::signal_power(std::span<const double>(samples)));
  EXPECT_NEAR(measured / n.sample_stddev_pa(96000.0), 1.0, 0.02);
}

TEST(Noise, WenzDecreasesInBand) {
  // In the 1-100 kHz region ambient noise falls with frequency.
  EXPECT_GT(wenz_noise_psd_db(1000.0), wenz_noise_psd_db(15000.0));
  EXPECT_GT(wenz_noise_psd_db(15000.0), wenz_noise_psd_db(80000.0));
}

TEST(Noise, WindRaisesNoise) {
  EXPECT_GT(wenz_noise_psd_db(15000.0, 0.5, 15.0),
            wenz_noise_psd_db(15000.0, 0.5, 1.0));
}

TEST(Propagation, ApplyTapsDelaysAndScales) {
  dsp::Signal x;
  x.sample_rate = 1000.0;
  x.samples = {1.0, 0.0, 0.0};
  const std::vector<PathTap> taps = {{0.002, 0.5, 0}};  // 2 samples, gain 0.5
  const auto y = apply_taps(x, taps);
  ASSERT_GE(y.size(), 3u);
  EXPECT_NEAR(y.samples[2], 0.5, 1e-12);
}

TEST(Propagation, BasebandCarrierPhase) {
  dsp::BasebandSignal x;
  x.sample_rate = 96000.0;
  x.carrier_hz = 15000.0;
  x.samples.assign(10, dsp::cplx(1.0, 0.0));
  // Delay of one full carrier period: phase rotation = -2pi (identity).
  const std::vector<PathTap> taps = {{1.0 / 15000.0, 1.0, 0}};
  const auto y = apply_taps_baseband(x, taps);
  const std::size_t delay_n = static_cast<std::size_t>(96000.0 / 15000.0);
  EXPECT_NEAR(y.samples[delay_n + 1].real(), 1.0, 0.1);
  EXPECT_NEAR(std::arg(y.samples[delay_n + 1]), 0.0, 0.05);
}

TEST(Propagation, PropagatorCachesTaps) {
  const Tank tank = make_pool_a();
  Propagator p(tank, {0.5, 0.5, 0.5}, {2.0, 2.0, 0.5}, 15000.0, 1);
  EXPECT_EQ(p.taps().size(), 7u);
  EXPECT_GT(p.gain_at(15000.0), 0.0);
  EXPECT_GT(p.direct_delay_s(), 0.0);
}

TEST(Propagation, PoolBCorridorBeatsPoolAAtRange) {
  // The paper observes longer power-up range in the elongated Pool B because
  // the corridor focuses energy (section 6.2).  At a few meters the coherent
  // gain in B should generally exceed A's free-spreading trend.
  const Tank a = make_pool_a();
  const Tank b = make_pool_b();
  const double f = 15000.0;
  double sum_a = 0.0, sum_b = 0.0;
  int n = 0;
  for (double d = 2.0; d <= 3.5; d += 0.5) {
    const auto ta = image_method_taps(a, {1.5, 0.3, 0.65}, {1.5, 0.3 + d, 0.65}, 2, f);
    const auto tb = image_method_taps(b, {0.6, 0.3, 0.5}, {0.6, 0.3 + d, 0.5}, 2, f);
    sum_a += coherent_gain(ta, f);
    sum_b += coherent_gain(tb, f);
    ++n;
  }
  EXPECT_GT(sum_b / n, sum_a / n);
}

}  // namespace
}  // namespace pab::channel
