#include "circuit/rectopiezo.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::circuit {

RectoPiezo::RectoPiezo(piezo::Transducer transducer, RectoPiezoConfig config)
    : transducer_(std::move(transducer)),
      config_(config),
      network_(MatchingNetwork::design(
          transducer_.thevenin_impedance(config.match_frequency_hz),
          config.rectifier.input_resistance, config.match_frequency_hz)),
      rectifier_(config.rectifier) {
  require(config.match_frequency_hz > 0.0, "RectoPiezo: match frequency must be positive");
  require(config.scatter_efficiency > 0.0 && config.scatter_efficiency <= 1.0,
          "RectoPiezo: scatter efficiency must be in (0,1]");
}

double RectoPiezo::delivered_power_w(double freq_hz, double p_pa) const {
  const cplx zs = transducer_.thevenin_impedance(freq_hz);
  const double v_th = transducer_.thevenin_voltage(p_pa, freq_hz);
  const double p_avail = v_th * v_th / (8.0 * zs.real());
  return p_avail * network_.power_transfer(
                       freq_hz, zs, cplx(config_.rectifier.input_resistance, 0.0));
}

double RectoPiezo::rectifier_input_voltage(double freq_hz, double p_pa) const {
  const cplx zs = transducer_.thevenin_impedance(freq_hz);
  const double v_th = transducer_.thevenin_voltage(p_pa, freq_hz);
  return network_.load_voltage(freq_hz, v_th, zs,
                               cplx(config_.rectifier.input_resistance, 0.0));
}

double RectoPiezo::rectified_open_voltage(double freq_hz, double p_pa) const {
  return rectifier_.open_circuit_dc(rectifier_input_voltage(freq_hz, p_pa));
}

double RectoPiezo::harvested_dc_power(double freq_hz, double p_pa) const {
  const double v_in = rectifier_input_voltage(freq_hz, p_pa);
  return rectifier_.dc_power(delivered_power_w(freq_hz, p_pa), v_in);
}

cplx RectoPiezo::gamma_reflective(double freq_hz) const {
  // Switch closed: the piezo terminals are shorted, Z_L = 0 (paper
  // section 3.2): Gamma = -Zs*/Zs, magnitude 1.
  return reflection_coefficient(cplx(0.0, 0.0),
                                transducer_.thevenin_impedance(freq_hz));
}

cplx RectoPiezo::gamma_absorptive(double freq_hz) const {
  const cplx z_in = network_.input_impedance(
      freq_hz, cplx(config_.rectifier.input_resistance, 0.0));
  return reflection_coefficient(z_in, transducer_.thevenin_impedance(freq_hz));
}

double RectoPiezo::reradiation_gain(double freq_hz, cplx gamma) const {
  const double capture = std::sqrt(transducer_.aperture_area() / (4.0 * kPi));
  return capture * std::sqrt(config_.scatter_efficiency) *
         transducer_.mechanical_response(freq_hz) * std::abs(gamma);
}

double RectoPiezo::modulation_depth(double freq_hz) const {
  const cplx dg = gamma_reflective(freq_hz) - gamma_absorptive(freq_hz);
  const double capture = std::sqrt(transducer_.aperture_area() / (4.0 * kPi));
  const double assist = amplitude_ratio_from_db(config_.assist_gain_db);
  return 0.5 * assist * capture * std::sqrt(config_.scatter_efficiency) *
         transducer_.mechanical_response(freq_hz) * std::abs(dg);
}

cplx RectoPiezo::scatter_gain(double freq_hz, bool reflective) const {
  // Resonant scatterer: the re-radiated field rolls off with the mechanical
  // resonance curve in addition to the circuit-level reflection coefficient.
  // A battery-assisted reflection amplifier multiplies the re-radiated
  // amplitude by sqrt(G).
  const cplx gamma =
      reflective ? gamma_reflective(freq_hz) : gamma_absorptive(freq_hz);
  const double capture = std::sqrt(transducer_.aperture_area() / (4.0 * kPi));
  const double assist = amplitude_ratio_from_db(config_.assist_gain_db);
  return assist * capture * std::sqrt(config_.scatter_efficiency) *
         transducer_.mechanical_response(freq_hz) * gamma;
}

double RectoPiezo::assist_power_w(double p_pa) const {
  if (config_.assist_gain_db <= 0.0) return 0.0;
  require(p_pa >= 0.0, "assist_power: negative pressure");
  constexpr double kRhoC = 1.48e6;
  constexpr double kAmplifierBiasW = 0.5e-3;
  const double g = power_ratio_from_db(config_.assist_gain_db);
  const double captured =
      p_pa * p_pa / (2.0 * kRhoC) * transducer_.aperture_area();
  return kAmplifierBiasW + (g - 1.0) * captured;
}

double RectoPiezo::bandwidth_efficiency(double carrier_hz, double bitrate) const {
  require(bitrate > 0.0, "bandwidth_efficiency: bitrate must be positive");
  const double d0 = modulation_depth(carrier_hz);
  if (d0 <= 0.0) return 1.0;
  // Sample the normalized modulation depth across the FM0 main lobe
  // (roughly +/- the chip rate = 2x bitrate), weighted toward the carrier
  // where most of the energy sits.
  const double b = bitrate;
  const double offsets[] = {0.0, 0.5 * b, -0.5 * b, b, -b, 2.0 * b, -2.0 * b};
  const double weights[] = {4.0, 2.0, 2.0, 1.5, 1.5, 0.5, 0.5};
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < std::size(offsets); ++i) {
    const double f = carrier_hz + offsets[i];
    if (f <= 0.0) continue;
    num += weights[i] * std::min(1.0, modulation_depth(f) / d0);
    den += weights[i];
  }
  return den > 0.0 ? num / den : 1.0;
}

RectoPiezo make_recto_piezo(double f_match_hz, double f_mech_hz) {
  RectoPiezoConfig cfg;
  cfg.match_frequency_hz = f_match_hz;
  return RectoPiezo(piezo::make_node_transducer(f_mech_hz), cfg);
}

}  // namespace pab::circuit
