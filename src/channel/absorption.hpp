// Francois-Garrison seawater absorption.
//
// Thorp's formula (water.hpp) is a fixed-condition fit.  The Francois &
// Garrison (1982) model resolves the three physical mechanisms -- boric acid
// relaxation (pH-dependent!), magnesium sulfate relaxation, and pure-water
// viscosity -- as functions of temperature, salinity, depth, and acidity.
// Fitting here: the very quantity PAB nodes measure (pH) feeds back into how
// far their own signals travel.
#pragma once

namespace pab::channel {

struct SeawaterConditions {
  double temperature_c = 10.0;
  double salinity_ppt = 35.0;
  double depth_m = 10.0;
  double ph = 8.0;
};

// Total absorption [dB/km] at `freq_hz` under `cond`.
[[nodiscard]] double francois_garrison_db_per_km(double freq_hz,
                                                 const SeawaterConditions& cond);

// Individual mechanism contributions [dB/km] (useful for analysis/tests).
struct AbsorptionBreakdown {
  double boric_acid = 0.0;
  double magnesium_sulfate = 0.0;
  double pure_water = 0.0;

  [[nodiscard]] double total() const {
    return boric_acid + magnesium_sulfate + pure_water;
  }
};

[[nodiscard]] AbsorptionBreakdown francois_garrison_breakdown(
    double freq_hz, const SeawaterConditions& cond);

}  // namespace pab::channel
