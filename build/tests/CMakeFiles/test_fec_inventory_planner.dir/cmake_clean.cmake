file(REMOVE_RECURSE
  "CMakeFiles/test_fec_inventory_planner.dir/test_fec_inventory_planner.cpp.o"
  "CMakeFiles/test_fec_inventory_planner.dir/test_fec_inventory_planner.cpp.o.d"
  "test_fec_inventory_planner"
  "test_fec_inventory_planner.pdb"
  "test_fec_inventory_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fec_inventory_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
