// Ocean-condition monitoring: a projector polls a battery-free PAB sensor
// node for acidity, temperature, and pressure over repeated rounds -- the
// long-term climate-observation application the paper motivates.
//
// Exercises the full stack: cold-start energy harvesting, PWM downlink
// queries, on-node sensing (pH probe via ADC, MS5837 via I2C), FM0
// backscatter uplink, software receiver, CRC-checked transport, retransmission
// via the MAC scheduler, and the node's energy ledger.
#include <cstdio>

#include "core/link.hpp"
#include "mac/protocol.hpp"
#include "mac/scheduler.hpp"
#include "node/node.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace pab;

  // A slowly changing ocean environment.
  sense::Environment env;
  env.ph = 8.05;            // ocean surface water
  env.temperature_c = 16.0;
  env.pressure_mbar = 1013.25;

  core::SimConfig config = sim::Scenario::pool_a().medium;
  core::LinkSimulator sim(config, core::Placement{});
  const core::Projector projector(piezo::make_projector_transducer(), 300.0);

  node::NodeConfig ncfg;
  ncfg.id = 3;
  ncfg.node_depth_m = 0.65;
  node::PabNode node(ncfg, &env);

  std::printf("Ocean monitoring with a battery-free PAB node\n");
  std::printf("=============================================\n");

  // Cold start: harvest from the downlink carrier until powered.
  double t = 0.0;
  while (!node.powered_up() && t < 120.0) {
    node.harvest_step(0.01, 15000.0, sim.incident_pressure(projector, 15000.0),
                      node::NodeState::kColdStart);
    t += 0.01;
  }
  std::printf("cold start: %.1f s to reach %.2f V (threshold 2.5 V)\n\n", t,
              node.capacitor_voltage());
  if (!node.powered_up()) {
    std::printf("node failed to power up -- projector too weak or too far\n");
    return 1;
  }

  // One waveform-level transaction, used by the scheduler as its link.
  const auto link = [&](const phy::DownlinkQuery& query)
      -> Expected<phy::UplinkPacket> {
    const auto sliced = sim.downlink_sliced_envelope(
        projector, query, node.config().downlink_pwm, 15000.0);
    const auto received = node.receive_downlink(sliced, config.sample_rate);
    if (!received) return Error{ErrorCode::kTimeout, "query not decoded"};
    const auto response = node.process_query(*received);
    if (!response) return Error{ErrorCode::kTimeout, "node did not respond"};
    core::UplinkRunConfig ucfg;
    ucfg.bitrate = node.bitrate();
    const auto out = sim.run_and_decode(projector, node.front_end(),
                                        response->to_bits(false), ucfg);
    if (!out.ok()) return out.error();
    const auto packet = phy::UplinkPacket::from_bits(out.value().demod.bits, false);
    if (!packet) return Error{ErrorCode::kCrcMismatch, "uplink CRC failed"};
    return *packet;
  };

  mac::PollScheduler scheduler;
  const phy::DownlinkQuery queries[] = {
      mac::make_read_ph(ncfg.id),
      mac::make_read_temperature(ncfg.id),
      mac::make_read_pressure(ncfg.id),
  };

  std::printf("round  pH      temp [C]  pressure [mbar]\n");
  for (int round = 1; round <= 5; ++round) {
    double values[3] = {0, 0, 0};
    for (int q = 0; q < 3; ++q) {
      const std::size_t bits = phy::UplinkPacket::bits_on_air(
          mac::response_payload_size(queries[q].command));
      const auto result =
          scheduler.transact(queries[q], link, bits, node.bitrate());
      if (result.ok()) {
        const auto reading = mac::parse_response(queries[q], result.value());
        if (reading) values[q] = reading->value;
      }
    }
    std::printf("%4d   %.2f    %.2f     %.1f\n", round, values[0], values[1],
                values[2]);
    // The ocean drifts slightly between rounds.
    env.temperature_c += 0.05;
    env.ph -= 0.01;
  }

  const auto& stats = scheduler.stats();
  std::printf("\nMAC statistics: %zu queries, %zu delivered (%.0f%%), "
              "%zu retries, goodput %.1f bps\n",
              stats.attempts, stats.successes, 100.0 * stats.success_rate(),
              stats.retries, stats.goodput_bps());

  const auto& ledger = node.ledger();
  std::printf("\nNode energy ledger:\n");
  std::printf("  harvested    %8.3f mJ\n", ledger.harvested() * 1e3);
  std::printf("  decode       %8.3f mJ\n",
              ledger.total(energy::Category::kDecode) * 1e3);
  std::printf("  sensing      %8.3f mJ\n",
              ledger.total(energy::Category::kSensing) * 1e3);
  std::printf("  backscatter  %8.3f mJ\n",
              ledger.total(energy::Category::kBackscatter) * 1e3);
  std::printf("  -> everything powered by harvested acoustic energy\n");
  return 0;
}
