// Deployment scale: node-field trials from the 10-node tank regime up to
// 2000-node open-water populations.
//
// The sweep holds areal density constant (FieldSpec::area_per_node_m2), so
// per-node quantities -- neighbour degree, kept-pair count per node, zone
// occupancy -- stay flat while the region grows with the population.  Two
// execution paths run on identical fields:
//
//   culled  gain-floor spatial culling (channel::cull_pairs) plus the
//           quantized TapCache, the production path;
//   brute   every O(n^2) pair with exact tap keys, the reference path.
//
// Both paths run the same zoned inventory with the same cull radius, so the
// MAC outcome (identified set, rounds, simulated time) is bit-identical and
// the wall-clock ratio isolates the channel-census cost.  The sidecar
// publishes sim.field.node_hours_per_sec (culled throughput at the largest
// population), sim.field.node_hours_per_sec_brute, their ratio
// sim.field.speedup_vs_brute, and sim.field.arena.high_water_delta_bytes
// (max - min of the session arena high-water mark across the sweep; the
// field path keeps per-trial scratch density-bound, so this must stay 0).
// A final interference-on pass at the largest population publishes
// sim.field.mean_slot_sinr_db and sim.field.interference_corrupted_slots,
// the cross-zone SINR corruption gauges.
//
// PAB_DEPLOY_MAX_POP caps the sweep (CI smoke runs at 200); the brute-force
// reference is skipped above kBruteCap nodes to keep the sweep bounded.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "channel/spatial.hpp"
#include "obs/metrics.hpp"
#include "sim/field.hpp"
#include "sim/scenario.hpp"
#include "sim/session.hpp"

namespace {

using namespace pab;

constexpr std::uint64_t kPopulations[] = {10, 50, 200, 1000, 2000};
constexpr std::uint64_t kBruteCap = 1000;

std::uint64_t max_population() {
  if (const char* env = std::getenv("PAB_DEPLOY_MAX_POP")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return kPopulations[std::size(kPopulations) - 1];
}

sim::FieldSpec field_spec(std::uint64_t population) {
  sim::FieldSpec spec;
  spec.layout = sim::FieldLayout::kRandom;
  spec.population = population;
  spec.seed = 21;
  return spec;
}

struct TimedRun {
  sim::FieldRunResult result;
  double wall_s = 0.0;
  double arena_high_water = 0.0;
};

pab::Expected<TimedRun> timed_field_trial(const sim::Session& session,
                                          bool brute_force,
                                          bool interference = false) {
  sim::TrialOptions opts;
  opts.field.brute_force = brute_force;
  opts.field.interference = interference;
  opts.field.keep_log = false;
  const auto t0 = std::chrono::steady_clock::now();
  auto run = session.run_trial<sim::TrialKind::kField>(/*trial=*/0, opts);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!run.ok()) return run.error();
  TimedRun timed;
  timed.result = std::move(run).value();
  timed.wall_s = wall_s;
  timed.arena_high_water = obs::MetricRegistry::global()
                               .gauge("sim.session.arena.high_water_bytes")
                               .value();
  return timed;
}

double node_hours_per_sec(const TimedRun& r) {
  return r.wall_s > 0.0 ? r.result.node_hours / r.wall_s : 0.0;
}

void print_series() {
  bench::print_header("Deployment scale",
                      "node-field census + zoned inventory, 10 -> 2000 nodes");

  const std::uint64_t cap = max_population();
  bench::print_row({"nodes", "radius_m", "kept", "culled", "tap_eval",
                    "tap_lkup", "zones", "rounds", "found", "nodeh/s",
                    "brute nodeh/s", "arena_hw"});

  auto& registry = obs::MetricRegistry::global();
  double last_culled_rate = 0.0;
  double arena_min = 0.0, arena_max = 0.0;
  bool arena_seen = false;
  double speedup_at = 0.0;  // largest population with both paths run
  double speedup = 0.0;
  std::uint64_t last_population = 0;

  for (const std::uint64_t population : kPopulations) {
    if (population > cap) break;
    last_population = population;
    const sim::Scenario scenario =
        sim::Scenario::open_water(field_spec(population)).with_seed(400 + population);
    const sim::Session session(scenario);

    const auto culled = timed_field_trial(session, /*brute_force=*/false);
    if (!culled.ok()) {
      std::printf("population %llu failed: %s\n",
                  static_cast<unsigned long long>(population),
                  culled.error().message().c_str());
      continue;
    }
    const TimedRun& c = culled.value();
    last_culled_rate = node_hours_per_sec(c);
    if (!arena_seen || c.arena_high_water < arena_min)
      arena_min = c.arena_high_water;
    if (!arena_seen || c.arena_high_water > arena_max)
      arena_max = c.arena_high_water;
    arena_seen = true;

    std::string brute_cell = "-";
    if (population <= kBruteCap) {
      const auto brute = timed_field_trial(session, /*brute_force=*/true);
      if (brute.ok()) {
        const double brute_rate = node_hours_per_sec(brute.value());
        brute_cell = bench::fmt(brute_rate, 1);
        if (brute_rate > 0.0) {
          speedup = last_culled_rate / brute_rate;
          speedup_at = static_cast<double>(population);
          registry.gauge("sim.field.node_hours_per_sec_brute").set(brute_rate);
        }
      }
    }

    bench::print_row(
        {bench::fmt(static_cast<double>(population), 0),
         bench::fmt(c.result.cull_radius_m, 1),
         bench::fmt(static_cast<double>(c.result.kept_pairs), 0),
         bench::fmt(static_cast<double>(c.result.culled_pairs), 0),
         bench::fmt(static_cast<double>(c.result.tap_evaluations), 0),
         bench::fmt(static_cast<double>(c.result.tap_lookups), 0),
         bench::fmt(static_cast<double>(c.result.zones), 0),
         bench::fmt(static_cast<double>(c.result.zone_rounds), 0),
         bench::fmt(static_cast<double>(c.result.identified.size()), 0),
         bench::fmt(last_culled_rate, 1), brute_cell,
         bench::fmt(c.arena_high_water, 0)});
  }

  registry.gauge("sim.field.node_hours_per_sec").set(last_culled_rate);
  registry.gauge("sim.field.speedup_vs_brute").set(speedup);
  registry.gauge("sim.field.speedup_population").set(speedup_at);
  registry.gauge("sim.field.arena.high_water_delta_bytes")
      .set(arena_seen ? arena_max - arena_min : 0.0);

  // Cross-zone interference pass at the largest population run above: same
  // field, SINR model on (culled path), so the sidecar carries the corruption
  // gauges alongside the throughput numbers.
  if (last_population > 0) {
    const sim::Scenario scenario =
        sim::Scenario::open_water(field_spec(last_population))
            .with_seed(400 + last_population);
    const sim::Session session(scenario);
    const auto run =
        timed_field_trial(session, /*brute_force=*/false, /*interference=*/true);
    if (run.ok()) {
      const TimedRun& r = run.value();
      registry.gauge("sim.field.mean_slot_sinr_db")
          .set(r.result.mean_slot_sinr_db);
      registry.gauge("sim.field.interference_corrupted_slots")
          .set(static_cast<double>(r.result.interference_corrupted_slots));
      std::printf("\ninterference at %llu nodes: %llu corrupted slots, "
                  "mean slot SINR %.2f dB, %llu/%llu identified\n",
                  static_cast<unsigned long long>(last_population),
                  static_cast<unsigned long long>(
                      r.result.interference_corrupted_slots),
                  r.result.mean_slot_sinr_db,
                  static_cast<unsigned long long>(r.result.identified.size()),
                  static_cast<unsigned long long>(last_population));
    } else {
      std::printf("\ninterference pass failed: %s\n",
                  run.error().message().c_str());
    }
  }

  std::printf("\nculled vs brute-force speedup: %.1fx at %.0f nodes "
              "(node-hours simulated per wall-second)\n",
              speedup, speedup_at);
  std::printf("arena high-water delta across populations: %.0f bytes "
              "(flat scratch: per-trial memory is density-bound)\n",
              arena_seen ? arena_max - arena_min : 0.0);
  std::printf("Paper shape: deployment cost grows with kept pairs (constant\n"
              "density => linear in population), not with O(n^2) geometry.\n");
}

void bm_cull_pairs_1000(benchmark::State& state) {
  const sim::NodeField field = sim::NodeField::generate(field_spec(1000));
  const double radius = 50.0;
  const channel::SpatialIndex index(field.positions(),
                                    /*cell_m=*/radius);
  for (auto _ : state) {
    channel::CullStats stats;
    auto pairs = channel::cull_pairs(index, radius, &stats);
    benchmark::DoNotOptimize(&pairs);
  }
}
BENCHMARK(bm_cull_pairs_1000)->Unit(benchmark::kMillisecond);

void bm_field_trial_200(benchmark::State& state) {
  const sim::Scenario scenario = sim::Scenario::open_water(field_spec(200));
  const sim::Session session(scenario);
  sim::TrialOptions opts;
  opts.field.keep_log = false;
  for (auto _ : state) {
    auto r = session.run_trial<sim::TrialKind::kField>(/*trial=*/0, opts);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(bm_field_trial_200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "deployment_scale";
  spec.description =
      "node-field census + zoned inventory, 10 -> 2000 nodes";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "deployment_scale";
  sweep.kind = pab::sim::TrialKind::kField;
  sweep.preset = "open_water_random";
  sweep.trials_per_point = 4;
  sweep.base_seed = 21;
  sweep.axes.push_back({"field.population", {50.0, 200.0}});
  sweep.field["zone_extent_m"] = 80.0;
  spec.campaign = std::move(sweep);
  spec.required_counters = {"channel.spatial.culled_pairs",
                            "channel.spatial.kept_pairs",
                            "channel.tapcache.hits",
                            "sim.session.field.trials"};
  return pab::bench::run_bench_main(argc, argv, spec);
}
