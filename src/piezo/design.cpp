#include "piezo/design.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::piezo {
namespace {

// Effective circumferential sound speed of the ceramic, calibrated so the
// paper's Steminc cylinder (mean radius 25.25 mm) resonates at 17 kHz in air.
constexpr double kCeramicSoundSpeed = 2697.0;  // [m/s]
constexpr double kCeramicDensity = 7600.0;     // PZT-4-class [kg/m^3]
constexpr double kWaterDensityLocal = 998.0;
// Relative permittivity for the static capacitance estimate.
constexpr double kEpsilonR = 700.0;
constexpr double kEpsilon0 = 8.854e-12;
// Radiation-mass coefficient, calibrated so the 17 kHz in-air design lands
// at ~16.5 kHz water-loaded (the operating point used throughout).
constexpr double kMassLoadingCoeff = 0.0935;

}  // namespace

double CylinderGeometry::lateral_area_m2() const {
  return 2.0 * kPi * mean_radius_m * length_m;
}

double CylinderGeometry::volume_m3() const {
  return lateral_area_m2() * wall_thickness_m;
}

double in_air_resonance_hz(const CylinderGeometry& geometry) {
  pab::require(geometry.mean_radius_m > 0.0, "in_air_resonance: bad radius");
  // Breathing mode of a thin ring: one circumferential wavelength around the
  // midline, f = c / (2 pi a).
  return kCeramicSoundSpeed / (kTwoPi * geometry.mean_radius_m);
}

CylinderGeometry design_cylinder_for(double f_air_hz) {
  pab::require(f_air_hz > 0.0, "design_cylinder_for: bad frequency");
  CylinderGeometry g;
  g.mean_radius_m = kCeramicSoundSpeed / (kTwoPi * f_air_hz);
  // Hold the paper's proportions: length/radius = 1.6, wall/radius = 0.2.
  g.length_m = 1.6 * g.mean_radius_m;
  g.wall_thickness_m = 0.2 * g.mean_radius_m;
  return g;
}

WaterLoadedDesign water_loaded_design(const CylinderGeometry& geometry) {
  const double f_air = in_air_resonance_hz(geometry);
  // Radiation mass scales with water displaced around the shell relative to
  // the ceramic's own mass per unit area.
  const double mass_loading = kMassLoadingCoeff *
                              (kWaterDensityLocal * geometry.mean_radius_m) /
                              (kCeramicDensity * geometry.wall_thickness_m);
  WaterLoadedDesign d;
  d.resonance_hz = f_air / std::sqrt(1.0 + mass_loading);
  // Radiation-dominated loaded Q for an air-backed shell of these
  // proportions; approximately geometry-independent at fixed aspect ratio.
  d.loaded_q = 3.5;
  // Static capacitance of the radially-poled wall.
  const double c0 = kEpsilonR * kEpsilon0 * geometry.lateral_area_m2() /
                    geometry.wall_thickness_m;
  d.bvd = synthesize_bvd(d.resonance_hz, d.loaded_q, c0, /*keff=*/0.30,
                         /*eta_ea=*/0.70);
  return d;
}

Transducer make_transducer_from_geometry(const CylinderGeometry& geometry) {
  const WaterLoadedDesign d = water_loaded_design(geometry);
  return Transducer(d.bvd, geometry.lateral_area_m2(), 1.48e6,
                    "designed-cylinder");
}

}  // namespace pab::piezo
