file(REMOVE_RECURSE
  "CMakeFiles/app_sensing.dir/app_sensing.cpp.o"
  "CMakeFiles/app_sensing.dir/app_sensing.cpp.o.d"
  "app_sensing"
  "app_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
