file(REMOVE_RECURSE
  "libpab_channel.a"
)
