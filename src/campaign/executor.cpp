#include "campaign/executor.hpp"

#include <algorithm>
#include <cstdio>

#include "util/stats.hpp"

namespace pab::campaign {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string CampaignResult::records_bytes() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(points.size()));
  for (const auto& batch : points) batch.serialize(w);
  return w.bytes();
}

std::string CampaignResult::summary_json() const {
  std::string out = "{\n";
  out += "  \"campaign\": \"" + spec.name + "\",\n";
  out += "  \"fingerprint\": " + std::to_string(fingerprint) + ",\n";
  out += std::string("  \"kind\": \"") + sim::to_string(spec.kind) + "\",\n";
  out += "  \"points\": [";
  const auto names = RecordBatch::column_names(spec.kind);
  for (std::size_t p = 0; p < points.size(); ++p) {
    const RecordBatch& batch = points[p];
    out += p == 0 ? "\n" : ",\n";
    out += "    {\"point\": " + std::to_string(p) + ", \"params\": {";
    const std::vector<double> values = spec.point_values(p);
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      if (a > 0) out += ", ";
      out += "\"" + spec.axes[a].param + "\": " + fmt_double(values[a]);
    }
    std::size_t n_ok = 0;
    for (const std::uint8_t o : batch.ok()) n_ok += o;
    out += "}, \"trials\": " + std::to_string(batch.rows());
    out += ", \"ok\": " + std::to_string(n_ok);
    out += ", \"errors\": " + std::to_string(batch.rows() - n_ok);
    out += ", \"means\": {";
    for (std::size_t c = 0; c < names.size(); ++c) {
      pab::NeumaierSum sum;
      for (std::size_t i = 0; i < batch.rows(); ++i)
        if (batch.ok()[i] != 0) sum.add(batch.column(c)[i]);
      const double mean =
          n_ok > 0 ? sum.value() / static_cast<double>(n_ok) : 0.0;
      if (c > 0) out += ", ";
      out += "\"" + std::string(names[c]) + "\": " + fmt_double(mean);
    }
    out += "}}";
  }
  out += points.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

pab::Expected<CampaignResult> assemble_result(const CampaignSpec& spec,
                                              std::vector<ShardOutput> shards) {
  std::sort(shards.begin(), shards.end(),
            [](const ShardOutput& a, const ShardOutput& b) {
              return a.shard < b.shard;
            });
  CampaignResult result;
  result.spec = spec;
  result.fingerprint = spec.fingerprint();
  result.points.assign(spec.point_count(), RecordBatch(spec.kind));

  // Shard index k covers trials [k_begin, k_end) of one point, and compile()
  // numbers shards in (point, begin) order -- so appending batches in shard
  // order reconstructs every point's rows in trial order.
  std::uint64_t expected = 0;
  std::uint64_t rows_per_point_seen = 0;
  std::uint64_t point_cursor = 0;
  for (const ShardOutput& shard : shards) {
    if (shard.shard != expected)
      return pab::Error{pab::ErrorCode::kInvalidArgument,
                        "assemble_result: missing shard " +
                            std::to_string(expected)};
    ++expected;
    if (shard.records.kind() != spec.kind)
      return pab::Error{pab::ErrorCode::kInvalidArgument,
                        "assemble_result: shard kind mismatch"};
    if (rows_per_point_seen == spec.trials_per_point) {
      rows_per_point_seen = 0;
      ++point_cursor;
    }
    if (point_cursor >= result.points.size())
      return pab::Error{pab::ErrorCode::kInvalidArgument,
                        "assemble_result: more rows than the spec declares"};
    result.points[point_cursor].append_batch(shard.records);
    rows_per_point_seen += shard.records.rows();
    if (rows_per_point_seen > spec.trials_per_point)
      return pab::Error{pab::ErrorCode::kInvalidArgument,
                        "assemble_result: shard rows overflow their point"};
    result.metrics.merge_from(shard.metrics);
  }
  if (point_cursor + 1 != result.points.size() ||
      rows_per_point_seen != spec.trials_per_point)
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "assemble_result: incomplete campaign (shards missing)"};
  return result;
}

}  // namespace pab::campaign
