// CampaignSpec: the serializable description of one Monte-Carlo campaign.
//
// A campaign is a sweep -- the cartesian product of named parameter axes
// applied to a named Scenario preset -- times a trial count per operating
// point, under one base seed.  The spec deliberately references presets and
// parameters *by name* rather than embedding a Scenario value, so it can
// travel: over the worker pipe protocol, into a checkpoint manifest, onto a
// CLI flag.  Determinism is structural: every point's scenario carries
// `base_seed` (common random numbers across the sweep, the variance-reduction
// setup the figure benches already rely on) unless a "seed" axis overrides
// it, and trial t of a point always draws from the same RNG substream no
// matter which shard, worker, process, or resume pass executes it.
//
// compile() turns the spec into the campaign work queue: per-point trial
// ranges ("shards") that executors may run in any order and later fold back
// in shard-index order for bit-identical results.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scenario.hpp"
#include "sim/trial.hpp"
#include "util/error.hpp"

namespace pab::campaign {

// One sweep dimension: `param` names a scalar applied per point (see
// apply_param for the registry of recognized names).
struct SweepAxis {
  std::string param;
  std::vector<double> values;
};

// One unit of campaign work: trials [begin, end) of operating point `point`.
// `index` is the shard's position in the canonical fold order.
struct Shard {
  std::uint64_t index = 0;
  std::uint64_t point = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

// Set one named scalar on a scenario (the axis parameter registry):
//   seed, waveform.{carrier_hz,bitrate,payload_bits,node_start_s,tail_s},
//   projector.{drive_v,ideal,ideal_pressure_pa}, noise.psd_db_re_upa,
//   medium.{sample_rate,receiver_clock_offset_ppm}, placement.node.{x,y,z},
//   fdma.{bitrate,training_bits,payload_bits}.
// Returns false for an unknown name.
[[nodiscard]] bool apply_param(sim::Scenario& s, std::string_view name,
                               double value);

// Set one named scalar on a timeline round config (the `timeline` override
// registry): tick_s, idle_load_w, v_ceiling, capacitance_f, base_harvest_w,
// harvest_jitter, max_drift_mps, horizon_s, decode_prob, crc_prob,
// uplink_bits, uplink_bitrate, keep_log.  Returns false for an unknown name.
[[nodiscard]] bool apply_timeline_param(sim::TimelineRoundConfig& c,
                                        std::string_view name, double value);

// Set one named scalar on a field round config (the `field` override
// registry): gain_floor, quant_cell_m, brute_force, zone_extent_m,
// frame_announce_s, slot_s, keep_log.  Returns false for an unknown name.
[[nodiscard]] bool apply_field_round_param(sim::FieldRoundConfig& c,
                                           std::string_view name, double value);

struct CampaignSpec {
  std::string name = "campaign";
  std::string preset = "pool_a";  // Scenario preset (see scenario_for_point)
  sim::TrialKind kind = sim::TrialKind::kUplink;
  std::uint64_t trials_per_point = 100;
  std::uint64_t base_seed = 42;
  std::vector<SweepAxis> axes;  // empty = a single operating point
  // Timeline knob overrides (kTimeline campaigns); key order is canonical.
  std::map<std::string, double> timeline;
  // Field knob overrides (kField campaigns); key order is canonical.  Old
  // specs never contain `field` lines, so their serialized form (and
  // fingerprint) is unchanged by this map existing.
  std::map<std::string, double> field;

  // Number of operating points: the product of axis sizes (1 when no axes).
  [[nodiscard]] std::uint64_t point_count() const;
  // Mixed-radix decomposition of a point index; the LAST axis varies fastest.
  [[nodiscard]] std::vector<double> point_values(std::uint64_t point) const;

  // Instantiate the scenario of one operating point: preset, then base_seed,
  // then each axis value in axis order.  Unknown presets/params error.
  [[nodiscard]] pab::Expected<sim::Scenario> scenario_for_point(
      std::uint64_t point) const;

  // The per-trial options shared by every point.  Campaign timeline trials
  // default to keep_log = false (event logs do not fit a columnar record);
  // a `timeline keep_log 1` override re-enables them for in-process runs.
  [[nodiscard]] pab::Expected<sim::TrialOptions> trial_options() const;

  // Full validation without running anything (presets, params, counts).
  [[nodiscard]] pab::Expected<bool> validate() const;

  // The work queue: every point split into <= shard_size trial ranges, in
  // (point, begin) order.  shard_size == 0 means one shard per point.
  [[nodiscard]] std::vector<Shard> compile(std::uint64_t shard_size) const;

  // Canonical text form; parse() inverts it.  Doubles round-trip exactly
  // (%.17g), so serialize-parse-serialize is a fixed point and fingerprint()
  // -- FNV-1a over the serialized text -- identifies the campaign across
  // processes and resume passes.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static pab::Expected<CampaignSpec> parse(std::string_view text);
  [[nodiscard]] std::uint64_t fingerprint() const;
};

}  // namespace pab::campaign
