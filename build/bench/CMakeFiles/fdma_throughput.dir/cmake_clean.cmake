file(REMOVE_RECURSE
  "CMakeFiles/fdma_throughput.dir/fdma_throughput.cpp.o"
  "CMakeFiles/fdma_throughput.dir/fdma_throughput.cpp.o.d"
  "fdma_throughput"
  "fdma_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdma_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
