// Goertzel single-bin DFT: cheap per-tone energy probe used by carrier
// detection when a full FFT is unnecessary.
#pragma once

#include <complex>
#include <span>

namespace pab::dsp {

// Complex DFT coefficient of `x` at `freq_hz` (not normalized).
[[nodiscard]] std::complex<double> goertzel(std::span<const double> x,
                                            double freq_hz, double sample_rate);

// Amplitude of the tone at `freq_hz` (2|X|/N, so a unit sine reads ~1).
[[nodiscard]] double tone_amplitude(std::span<const double> x, double freq_hz,
                                    double sample_rate);

// Batch probe: out[i] = tone_amplitude(x, freqs[i], fs).  The Goertzel
// recurrence is already allocation-free; this is the span-style entry point
// for multi-carrier scans (FDMA carrier sense).
void tone_amplitudes_into(std::span<const double> x,
                          std::span<const double> freqs_hz, double sample_rate,
                          std::span<double> out);

}  // namespace pab::dsp
