// The unified trial taxonomy of the Monte-Carlo engine.
//
// Every experiment the engine can repeat is one of four trial kinds:
//   * kUplink   -- one single-link waveform-level backscatter uplink,
//   * kNetwork  -- one concurrent multi-node FDMA frame,
//   * kTimeline -- one discrete-event network round (cold-start, inventory,
//                  poll) on a trial-local sim::Timeline,
//   * kField    -- one deployment-scale field round: spatially culled link
//                  budget over the whole NodeField plus a zoned inventory
//                  with FDMA channel reuse, on a trial-local sim::Timeline.
// `Session::run_trial` and `BatchRunner::run` dispatch on TrialKind, either
// at compile time (template parameter, typed result) or at run time (enum
// value, std::variant result -- the form the campaign engine and the worker
// protocol use, where the kind arrives over the wire).  This header replaces
// the old three-method sprawl (`run`/`run_network`/`run_timeline` on Session,
// `run_uplink`/`run_network`/`run_timeline` on BatchRunner); the old names
// remain as deprecated shims for one release.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "mac/inventory.hpp"
#include "mac/scheduler.hpp"

namespace pab::sim {

enum class TrialKind : std::uint8_t {
  kUplink = 0,
  kNetwork = 1,
  kTimeline = 2,
  kField = 3,
};

[[nodiscard]] constexpr const char* to_string(TrialKind kind) {
  switch (kind) {
    case TrialKind::kUplink: return "uplink";
    case TrialKind::kNetwork: return "network";
    case TrialKind::kTimeline: return "timeline";
    case TrialKind::kField: return "field";
  }
  return "unknown";
}

// Parse the names printed by to_string (CLI flags, campaign specs).
[[nodiscard]] constexpr std::optional<TrialKind> trial_kind_from(
    std::string_view name) {
  if (name == "uplink") return TrialKind::kUplink;
  if (name == "network") return TrialKind::kNetwork;
  if (name == "timeline") return TrialKind::kTimeline;
  if (name == "field") return TrialKind::kField;
  return std::nullopt;
}

// Protocol- and energy-level knobs for timeline trials.  The defaults
// describe a small battery-free deployment: nodes cold-start from an empty
// supercapacitor under ~mW harvest, get discovered by the timed slotted
// ALOHA inventory once powered, then answer a poll round.  Link outcomes at
// this level are protocol abstractions (per-reply decode/CRC probabilities)
// rather than full waveform simulations -- kUplink/kNetwork remain the
// sample-level paths.  (Formerly Session::TimelineRoundConfig, which is now
// an alias of this type.)
struct TimelineRoundConfig {
  mac::InventoryConfig inventory{};
  mac::TimedInventoryOptions slots{};  // `available` is filled in per run
  mac::SchedulerConfig scheduler{};
  // Node energy trajectory.
  double tick_s = 0.02;         // lifecycle harvest integration step
  double idle_load_w = 124e-6;  // paper 6.4 idle draw
  double v_ceiling = 5.0;
  double capacitance_f = 200e-6;
  double base_harvest_w = 1.5e-3;  // nominal harvested DC power per node
  double harvest_jitter = 0.3;     // per-node uniform +-fraction of nominal
  // Per-node random drift speed bound [m/s]: node motion modulates harvest
  // power through the time-varying path gain, sampled at tick timestamps.
  double max_drift_mps = 0.25;
  double horizon_s = 60.0;  // lifecycle ticking horizon
  // Protocol-level uplink model for the poll phase.
  double decode_prob = 0.85;  // P(decoded | node powered)
  double crc_prob = 0.10;     // P(reply arrives but fails CRC | powered)
  std::size_t uplink_bits = 76;
  double uplink_bitrate = 1000.0;
  bool keep_log = true;  // retain the event log in the result
};

// Knobs for deployment-scale field trials.  The trial computes the culled
// pairwise link budget of the whole NodeField (spatial index + gain floor +
// quantized shared tap cache) and then runs one zoned inventory round with
// FDMA channel reuse; `brute_force` switches to the reference O(n^2) path
// (every pair, exact per-pair tap keys) that the deployment_scale bench
// compares against.
struct FieldRoundConfig {
  // Cull node-node links whose one-way amplitude gain falls below this floor.
  // The floor models *interference* coupling, not a communication budget: a
  // backscatter reflection is the one-way gain squared times a small scatter
  // coefficient, so a pair below -34 dB one-way (~50 m at 15 kHz) sits below
  // the reader's noise floor and cannot perturb another zone's inventory.
  double gain_floor = 0.02;
  double quant_cell_m = 0.5;     // tap-cache geometry quantization (0 = exact)
  bool brute_force = false;      // reference path: no culling, no sharing
  double zone_extent_m = 100.0;  // horizontal zone size for the zoned MAC
  double frame_announce_s = 0.05;  // zoned inventory timing
  double slot_s = 0.02;
  bool keep_log = true;  // retain the master event log in the result
  // Cross-zone interference (off by default: concurrently inventoried zones
  // are then treated as perfectly silent to each other, bit-identical to the
  // historical schedule).  When on, each slot's SINR is the singleton's
  // reader-path power over the noise floor plus every concurrent other-zone
  // transmitter's reader-path power through the FDMA rejection mask; a
  // singleton below the capture threshold is a CRC failure (counted as a
  // collision plus an interference_corrupted_slots tally).
  bool interference = false;
  // Reader-referred noise power in amplitude^2 units (the reader-path
  // amplitudes are products of two one-way coherent gains, so open-water
  // singleton powers sit around 1e-8..1e-4; the default keeps an isolated
  // zone comfortably above threshold while letting co-channel aggregates
  // matter).
  double noise_power = 1e-12;
  double capture_threshold_db = 6.0;   // singleton decodes iff SINR >= this
  double rejection_passband_hz = 1000.0;   // FDMA receive-filter mask
  double rejection_slope_db_per_khz = 30.0;
  double rejection_floor_db = 40.0;
};

// Per-run options of the unified entry points.  Only the kinds that need
// configuration have a member; kUplink and kNetwork read everything from the
// Scenario.
struct TrialOptions {
  TimelineRoundConfig timeline{};
  FieldRoundConfig field{};
};

}  // namespace pab::sim
