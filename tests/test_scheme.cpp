// Golden regressions for the phy::Scheme seam.
//
// The seam's contract has two halves, both pinned here:
//   1. kFm0 through the seam is BIT-IDENTICAL to the legacy FM0 path --
//      same switch stream as backscatter_waveform over [preamble + data],
//      same DemodResult (exact doubles, not approximately equal) as a
//      BackscatterDemodulator on the same capture, and bit-identical
//      Session trials at any thread count across a fig7-style SNR sweep.
//      This is what lets new schemes land without drifting fig7/fig8.
//   2. The FSK schemes actually work: clean synthetic envelopes and the full
//      waterfilled link both round-trip, and every decode publishes a
//      consistent LinkQuality trio.
#include <gtest/gtest.h>

#include <cmath>

#include "core/link.hpp"
#include "phy/metrics.hpp"
#include "phy/scheme.hpp"
#include "sim/batch.hpp"

namespace pab {
namespace {

core::Projector standard_projector(double drive_v = 50.0) {
  return core::Projector(piezo::make_projector_transducer(), drive_v);
}

// --- scheme identity / descriptor table --------------------------------------

TEST(SchemeId, NamesRoundTrip) {
  for (const auto id : {phy::SchemeId::kFm0, phy::SchemeId::kFsk2,
                        phy::SchemeId::kFsk4}) {
    const auto back = phy::scheme_from(phy::to_string(id));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(phy::scheme_from("qam64").has_value());
  EXPECT_FALSE(phy::scheme_from("").has_value());
}

TEST(SchemeDescriptor, TableIsConsistent) {
  for (std::size_t i = 0; i < phy::kSchemeCount; ++i) {
    const auto id = static_cast<phy::SchemeId>(i);
    const auto& d = phy::scheme_descriptor(id);
    EXPECT_EQ(d.id, id);
    EXPECT_EQ(d.name, phy::to_string(id));
    EXPECT_GE(d.bits_per_symbol, 1);
    EXPECT_GT(d.chips_per_bit, 0.0);
    EXPECT_GT(d.bandwidth_factor, 0.0);
    EXPECT_GT(d.switch_rate_factor, 0.0);
    EXPECT_GT(d.occupied_bandwidth_hz(1000.0), 0.0);
  }
  // The cache-key invariant everything rests on: FM0's effective bitrate is
  // the identity, so default-scheme modulation cache keys are unchanged.
  const auto& fm0 = phy::scheme_descriptor(phy::SchemeId::kFm0);
  for (const double r : {250.0, 1000.0, 2800.0, 5000.0})
    EXPECT_EQ(fm0.effective_bitrate(r), r);
  // Denser schemes pay a higher decode floor (the ladder's ordering premise).
  EXPECT_LT(fm0.decode_floor_db,
            phy::scheme_descriptor(phy::SchemeId::kFsk2).decode_floor_db);
  EXPECT_LT(phy::scheme_descriptor(phy::SchemeId::kFsk2).decode_floor_db,
            phy::scheme_descriptor(phy::SchemeId::kFsk4).decode_floor_db);
}

// --- golden: FM0 through the seam == legacy FM0 ------------------------------

TEST(SchemeSeamGolden, Fm0WaveformMatchesLegacyExactly) {
  Rng rng(41);
  for (const double bitrate : {250.0, 1000.0, 2800.0, 5000.0}) {
    const double fs = 96000.0;
    const auto bits = rng.bits(64);

    Bits full(phy::uplink_preamble_bits());
    full.insert(full.end(), bits.begin(), bits.end());
    const auto legacy = phy::backscatter_waveform(full, bitrate, fs);

    dsp::Arena arena;
    std::vector<phy::SwitchState> seam(
        phy::scheme_waveform_length(phy::SchemeId::kFm0, bits.size(), bitrate, fs));
    phy::scheme_waveform_into(phy::SchemeId::kFm0, bits, bitrate, fs, seam,
                              arena);

    ASSERT_EQ(seam.size(), legacy.size()) << "bitrate " << bitrate;
    for (std::size_t i = 0; i < seam.size(); ++i)
      ASSERT_EQ(seam[i], legacy[i]) << "bitrate " << bitrate << " sample " << i;
  }
}

// Exact field-wise DemodResult comparison (no operator== on purpose: a new
// field must show up here and be pinned).
void expect_identical(const phy::DemodResult& got, const phy::DemodResult& want) {
  EXPECT_EQ(got.bits, want.bits);
  EXPECT_EQ(got.start_sample, want.start_sample);
  EXPECT_EQ(got.channel_amp, want.channel_amp);
  EXPECT_EQ(got.mid_level, want.mid_level);
  EXPECT_EQ(got.snr_db, want.snr_db);
  EXPECT_EQ(got.preamble_corr, want.preamble_corr);
  EXPECT_EQ(got.quality.evm_rms, want.quality.evm_rms);
  EXPECT_EQ(got.quality.mer_db, want.quality.mer_db);
  EXPECT_EQ(got.quality.cn0_dbhz, want.quality.cn0_dbhz);
}

TEST(SchemeSeamGolden, Fm0DemodulatorMatchesLegacyExactly) {
  core::LinkSimulator sim(sim::Scenario::pool_a().medium, core::Placement{});
  const auto proj = standard_projector();
  const auto fe = circuit::make_recto_piezo(15000.0);
  Rng rng(43);
  const auto bits = rng.bits(64);
  core::UplinkRunConfig cfg;  // default scheme = kFm0

  const auto states =
      core::modulation_states(fe, cfg.carrier_hz, cfg.bitrate);  // legacy key
  Rng noise_a(7);
  const auto run = sim.run_uplink(proj, states, bits, cfg, noise_a);

  phy::DemodConfig dc;
  dc.carrier_hz = cfg.carrier_hz;
  dc.bitrate = cfg.bitrate;
  dc.sample_rate = sim.config().sample_rate;
  const phy::BackscatterDemodulator legacy(dc);
  const auto want = legacy.demodulate(run.hydrophone_v, bits.size());
  ASSERT_TRUE(want.ok()) << want.error().message();

  const phy::SchemeDemodulator seam(
      phy::SchemeConfig{phy::SchemeId::kFm0, dc});
  dsp::Arena arena;
  phy::DemodResult got;
  const auto ok = seam.demodulate_into(run.hydrophone_v.samples,
                                       run.hydrophone_v.sample_rate,
                                       bits.size(), arena, got);
  ASSERT_TRUE(ok.ok()) << ok.error().message();
  expect_identical(got, want.value());

  // And the full seam pipeline (run_and_decode with the same noise stream)
  // reproduces the same capture and decode end to end.
  Rng noise_b(7);
  const auto rd = sim.run_and_decode(proj, states, bits, cfg, noise_b);
  ASSERT_TRUE(rd.ok()) << rd.error().message();
  ASSERT_EQ(rd.value().run.hydrophone_v.samples, run.hydrophone_v.samples);
  expect_identical(rd.value().demod, want.value());
}

TEST(SchemeSeamGolden, Fm0SnrSweepBitIdenticalAcrossThreadCounts) {
  // fig7-style sweep: quiet, moderate, and loud ambient noise.  Per-trial
  // results must be exact-double identical at 1, 2, and 8 threads at every
  // operating point, with the default (seam-routed) FM0 scheme.
  for (const double psd : {55.0, 70.0, 82.0}) {
    sim::Scenario scenario = sim::Scenario::pool_a().with_seed(131);
    scenario.medium.noise.psd_db_re_upa = psd;
    scenario.waveform.payload_bits = 32;
    const sim::Session session(scenario);
    constexpr std::size_t kTrials = 6;
    const auto serial =
        sim::BatchRunner(1).run<sim::TrialKind::kUplink>(session, kTrials);
    ASSERT_EQ(serial.size(), kTrials);
    for (const unsigned threads : {2u, 8u}) {
      const auto parallel =
          sim::BatchRunner(threads).run<sim::TrialKind::kUplink>(session,
                                                                 kTrials);
      for (std::size_t i = 0; i < kTrials; ++i) {
        ASSERT_EQ(serial[i].ok(), parallel[i].ok())
            << "psd " << psd << " trial " << i;
        if (!serial[i].ok()) continue;
        EXPECT_EQ(serial[i].value().sent, parallel[i].value().sent);
        EXPECT_EQ(serial[i].value().ber, parallel[i].value().ber);
        expect_identical(parallel[i].value().demod, serial[i].value().demod);
      }
    }
  }
}

// --- FSK schemes -------------------------------------------------------------

TEST(FskScheme, CleanEnvelopeRoundTrip) {
  Rng rng(59);
  for (const int bps : {1, 2}) {
    phy::FskParams params;
    params.bitrate = 1000.0;
    params.sample_rate = 96000.0;
    params.bits_per_symbol = bps;
    const auto bits = rng.bits(64);

    dsp::Arena arena;
    std::vector<phy::SwitchState> sw(
        phy::fsk_waveform_length(params, bits.size()));
    phy::fsk_waveform_into(params, bits, sw, arena);

    const double mid = 1.2;
    const double amp = 0.08;
    std::vector<double> env(300, mid - amp);
    for (const auto s : sw)
      env.push_back(s == phy::SwitchState::kReflective ? mid + amp : mid - amp);
    env.insert(env.end(), 300, mid - amp);

    phy::DemodConfig dc;
    dc.bitrate = params.bitrate;
    dc.sample_rate = params.sample_rate;
    const phy::FskDemodulator demod(dc, bps);
    phy::DemodResult out;
    const auto ok = demod.demodulate_envelope_into(env, params.sample_rate,
                                                   bits.size(), arena, out);
    ASSERT_TRUE(ok.ok()) << "bps " << bps << ": " << ok.error().message();
    EXPECT_EQ(out.bits, bits) << "bps " << bps;
    // A clean capture decodes with strong, mutually consistent soft metrics.
    EXPECT_GT(out.snr_db, 10.0);
    EXPECT_GT(out.quality.mer_db, 10.0);
    EXPECT_LT(out.quality.evm_rms, 0.3);
    EXPECT_NEAR(out.quality.cn0_dbhz,
                out.quality.mer_db + 10.0 * std::log10(params.symbol_rate()),
                1e-9);
  }
}

TEST(FskScheme, NoisyEnvelopeStillDecodesAndMetricsDegrade) {
  Rng rng(61);
  phy::FskParams params;
  params.bits_per_symbol = 1;
  const auto bits = rng.bits(48);

  dsp::Arena arena;
  std::vector<phy::SwitchState> sw(
      phy::fsk_waveform_length(params, bits.size()));
  phy::fsk_waveform_into(params, bits, sw, arena);

  const double mid = 1.0, amp = 0.08;
  const auto synth = [&](double noise_sd) {
    std::vector<double> env(200, mid - amp);
    for (const auto s : sw)
      env.push_back(s == phy::SwitchState::kReflective ? mid + amp : mid - amp);
    env.insert(env.end(), 200, mid - amp);
    if (noise_sd > 0.0)
      for (auto& v : env) v += rng.gaussian(0.0, noise_sd);
    return env;
  };

  phy::DemodConfig dc;
  dc.bitrate = params.bitrate;
  dc.sample_rate = params.sample_rate;
  const phy::FskDemodulator demod(dc, 1);
  phy::DemodResult clean, noisy;
  ASSERT_TRUE(demod.demodulate_envelope_into(synth(0.0), params.sample_rate,
                                             bits.size(), arena, clean)
                  .ok());
  ASSERT_TRUE(demod.demodulate_envelope_into(synth(0.2 * amp),
                                             params.sample_rate, bits.size(),
                                             arena, noisy)
                  .ok());
  EXPECT_EQ(clean.bits, bits);
  EXPECT_EQ(noisy.bits, bits);
  EXPECT_GT(clean.quality.mer_db, noisy.quality.mer_db);
  EXPECT_LT(clean.quality.evm_rms, noisy.quality.evm_rms);
}

TEST(FskScheme, EndToEndLinkDecodes) {
  // The full waterfilled chain -- projector CW, recto-piezo switching, image
  // method multipath, hydrophone noise, passband receiver -- for both FSK
  // ladder rungs.
  for (const auto scheme : {phy::SchemeId::kFsk2, phy::SchemeId::kFsk4}) {
    core::LinkSimulator sim(sim::Scenario::pool_a().medium, core::Placement{});
    const auto proj = standard_projector();
    const auto fe = circuit::make_recto_piezo(15000.0);
    Rng rng(67);
    const auto bits = rng.bits(64);
    core::UplinkRunConfig cfg;
    cfg.scheme = scheme;
    const auto out = sim.run_and_decode(proj, fe, bits, cfg);
    ASSERT_TRUE(out.ok()) << phy::to_string(scheme) << ": "
                          << out.error().message();
    EXPECT_EQ(phy::bit_error_rate(bits, out.value().demod.bits), 0.0)
        << phy::to_string(scheme);
    EXPECT_GT(out.value().demod.quality.mer_db, 3.0);
    EXPECT_GT(out.value().demod.quality.cn0_dbhz,
              out.value().demod.quality.mer_db);
  }
}

TEST(FskScheme, SessionTrialsBitIdenticalAcrossThreadCounts) {
  sim::Scenario scenario = sim::Scenario::pool_a().with_seed(173);
  scenario.waveform.scheme = phy::SchemeId::kFsk2;
  scenario.waveform.payload_bits = 32;
  const sim::Session session(scenario);
  constexpr std::size_t kTrials = 6;
  const auto serial =
      sim::BatchRunner(1).run<sim::TrialKind::kUplink>(session, kTrials);
  std::size_t decoded = 0;
  for (const auto& r : serial) decoded += r.ok() ? 1 : 0;
  EXPECT_GT(decoded, 0u);  // the sweep must actually exercise the scheme
  for (const unsigned threads : {2u, 8u}) {
    const auto parallel =
        sim::BatchRunner(threads).run<sim::TrialKind::kUplink>(session, kTrials);
    for (std::size_t i = 0; i < kTrials; ++i) {
      ASSERT_EQ(serial[i].ok(), parallel[i].ok()) << i;
      if (!serial[i].ok()) continue;
      EXPECT_EQ(serial[i].value().sent, parallel[i].value().sent);
      expect_identical(parallel[i].value().demod, serial[i].value().demod);
    }
  }
}

TEST(SchemeSeam, WorkspaceCachesDemodulatorPerOperatingPoint) {
  phy::Workspace ws;
  phy::SchemeConfig a;
  a.scheme = phy::SchemeId::kFm0;
  const auto* first = &ws.scheme_demodulator(a);
  EXPECT_EQ(first, &ws.scheme_demodulator(a));  // same point -> cached
  phy::SchemeConfig b = a;
  b.scheme = phy::SchemeId::kFsk2;
  const auto* second = &ws.scheme_demodulator(b);
  EXPECT_EQ(second->config().scheme, phy::SchemeId::kFsk2);
  // Back to the first point rebuilds (single-slot cache, like demodulator()).
  EXPECT_EQ(ws.scheme_demodulator(a).config().scheme, phy::SchemeId::kFm0);
}

}  // namespace
}  // namespace pab
