// Quickstart: the smallest end-to-end PAB link.
//
// Builds a water tank, a projector, a battery-free backscatter node front end,
// transmits one uplink packet by backscatter, and decodes it at the
// hydrophone.  Run:  ./quickstart
#include <cstdio>

#include "core/link.hpp"
#include "core/projector.hpp"
#include "phy/metrics.hpp"

int main() {
  using namespace pab;

  // 1. Environment: the paper's Pool A (3 x 4 m, 1.3 m deep) with default
  //    instrument placement, 96 kHz hydrophone capture.
  core::SimConfig config = core::pool_a_config();
  core::Placement placement;
  core::LinkSimulator sim(config, placement);

  // 2. Projector: the fabricated cylinder transducer driven at 50 V.
  const core::Projector projector(piezo::make_projector_transducer(), 50.0);

  // 3. Node front end: a recto-piezo electrically matched at 15 kHz.
  const circuit::RectoPiezo node = circuit::make_recto_piezo(15000.0);

  // 4. Payload: one uplink packet with 4 bytes of sensor data.
  phy::UplinkPacket packet;
  packet.node_id = 1;
  packet.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const Bits bits = packet.to_bits(/*include_preamble=*/false);

  // 5. Simulate the backscatter uplink at 1 kbps and decode.
  core::UplinkRunConfig link;
  link.carrier_hz = 15000.0;
  link.bitrate = 1000.0;
  const auto out = sim.run_and_decode(projector, node, bits, link);

  std::printf("PAB quickstart\n--------------\n");
  std::printf("incident pressure at node: %6.1f Pa\n",
              out.run.incident_pressure_pa);
  std::printf("carrier at hydrophone:     %6.1f Pa\n",
              out.run.direct_pressure_pa);
  std::printf("backscatter modulation:    %6.3f Pa\n",
              out.run.modulation_pressure_pa);

  if (!out.demod.ok()) {
    std::printf("decode failed: %s\n", out.demod.error().message().c_str());
    return 1;
  }
  const auto& demod = out.demod.value();
  std::printf("preamble correlation:      %6.2f\n", demod.preamble_corr);
  std::printf("estimated SNR:             %6.1f dB\n", demod.snr_db);
  std::printf("bit errors:                %6.0f\n",
              phy::bit_error_rate(bits, demod.bits) *
                  static_cast<double>(bits.size()));

  const auto decoded = phy::UplinkPacket::from_bits(demod.bits, false);
  if (!decoded) {
    std::printf("CRC check failed\n");
    return 1;
  }
  std::printf("decoded node %u payload:   ", decoded->node_id);
  for (auto b : decoded->payload) std::printf("%02X ", b);
  std::printf("\nCRC ok - packet delivered battery-free.\n");
  return 0;
}
