#include "phy/matrix.hpp"

#include <cmath>

namespace pab::phy {

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

CMatrix CMatrix::operator*(const CMatrix& rhs) const {
  require(cols_ == rhs.rows_, "CMatrix: dimension mismatch in multiply");
  CMatrix out(rows_, rhs.cols_);
  for (std::size_t c = 0; c < rhs.cols_; ++c) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx r = rhs.at(k, c);
      if (r == cplx{}) continue;
      for (std::size_t i = 0; i < rows_; ++i) out.at(i, c) += at(i, k) * r;
    }
  }
  return out;
}

std::vector<CMatrix::cplx> CMatrix::operator*(const std::vector<cplx>& v) const {
  require(v.size() == cols_, "CMatrix: vector dimension mismatch");
  std::vector<cplx> out(rows_);
  for (std::size_t k = 0; k < cols_; ++k)
    for (std::size_t i = 0; i < rows_; ++i) out[i] += at(i, k) * v[k];
  return out;
}

CMatrix CMatrix::conjugate_transpose() const {
  CMatrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.at(j, i) = std::conj(at(i, j));
  return out;
}

CMatrix::Lu CMatrix::factorize() const {
  require(rows_ == cols_, "CMatrix: LU needs a square matrix");
  Lu f{*this, {}, false};
  const std::size_t n = rows_;
  f.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) f.perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(f.lu.at(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = std::abs(f.lu.at(i, k));
      if (m > best) { best = m; pivot = i; }
    }
    if (best < 1e-300) { f.singular = true; return f; }
    if (pivot != k) {
      std::swap(f.perm[k], f.perm[pivot]);
      for (std::size_t c = 0; c < n; ++c)
        std::swap(f.lu.at(k, c), f.lu.at(pivot, c));
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const cplx factor = f.lu.at(i, k) / f.lu.at(k, k);
      f.lu.at(i, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c)
        f.lu.at(i, c) -= factor * f.lu.at(k, c);
    }
  }
  return f;
}

std::vector<CMatrix::cplx> CMatrix::solve(std::vector<cplx> b) const {
  require(b.size() == rows_, "CMatrix::solve: rhs dimension mismatch");
  const Lu f = factorize();
  require(!f.singular, "CMatrix::solve: singular matrix");
  const std::size_t n = rows_;
  // Apply permutation.
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[f.perm[i]];
  // Forward substitution (unit lower).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < i; ++k) x[i] -= f.lu.at(i, k) * x[k];
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t k = i + 1; k < n; ++k) x[i] -= f.lu.at(i, k) * x[k];
    x[i] /= f.lu.at(i, i);
  }
  return x;
}

CMatrix CMatrix::inverse() const {
  require(rows_ == cols_, "CMatrix::inverse: square only");
  const std::size_t n = rows_;
  CMatrix out(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<cplx> e(n);
    e[c] = 1.0;
    const auto col = solve(std::move(e));
    for (std::size_t r = 0; r < n; ++r) out.at(r, c) = col[r];
  }
  return out;
}

double CMatrix::norm() const {
  double s = 0.0;
  for (const cplx& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

double CMatrix::condition_number(int iterations) const {
  require(rows_ == cols_ && rows_ > 0, "condition_number: square only");
  const std::size_t n = rows_;
  const CMatrix ah = conjugate_transpose();

  // Largest singular value: power iteration on A^H A.
  std::vector<cplx> v(n, cplx(1.0, 0.0));
  double sigma_max = 0.0;
  for (int it = 0; it < iterations; ++it) {
    auto w = ah * (*this * v);
    double norm_w = 0.0;
    for (const auto& x : w) norm_w += std::norm(x);
    norm_w = std::sqrt(norm_w);
    if (norm_w < 1e-300) return 1e30;
    for (auto& x : w) x /= norm_w;
    sigma_max = std::sqrt(norm_w);
    v = std::move(w);
  }

  // Smallest singular value: inverse power iteration, solving (A^H A) w = v
  // via two triangular solves per step would need an LU of A^H A; reuse
  // solve() on A and A^H instead: (A^H A)^-1 v = A^-1 (A^-H v).
  const Lu f = factorize();
  if (f.singular) return 1e30;
  std::vector<cplx> u(n, cplx(1.0, 0.0));
  double sigma_min = 0.0;
  const CMatrix aht = ah;  // A^H
  for (int it = 0; it < iterations; ++it) {
    auto w = aht.solve(u);
    w = solve(std::move(w));
    double norm_w = 0.0;
    for (const auto& x : w) norm_w += std::norm(x);
    norm_w = std::sqrt(norm_w);
    if (norm_w < 1e-300) return 1e30;
    for (auto& x : w) x /= norm_w;
    sigma_min = 1.0 / std::sqrt(norm_w);
    u = std::move(w);
  }
  if (sigma_min <= 0.0) return 1e30;
  return sigma_max / sigma_min;
}

std::vector<std::vector<std::complex<double>>> zero_force_n(
    const std::vector<std::vector<std::complex<double>>>& y, const CMatrix& h) {
  require(!y.empty(), "zero_force_n: no streams");
  require(h.rows() == y.size() && h.cols() == y.size(),
          "zero_force_n: channel matrix shape mismatch");
  const std::size_t n = y.size();
  std::size_t len = y[0].size();
  for (const auto& s : y)
    require(s.size() == len, "zero_force_n: stream length mismatch");

  const CMatrix inv = h.inverse();
  std::vector<std::vector<std::complex<double>>> x(
      n, std::vector<std::complex<double>>(len));
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      std::complex<double> acc{};
      for (std::size_t j = 0; j < n; ++j) acc += inv.at(i, j) * y[j][t];
      x[i][t] = acc;
    }
  }
  return x;
}

}  // namespace pab::phy
