// Cylinder geometry -> transducer parameter synthesis.
//
// The paper chooses a 2.5 cm radius x 4 cm ceramic cylinder resonating (in
// air) at 17 kHz, noting that "the dimensions of the resonator are inversely
// proportional to its frequency" (section 4.1).  This module closes that
// design loop: given a cylinder geometry (or a target frequency), produce the
// water-loaded BVD parameters the rest of the stack consumes.
#pragma once

#include "piezo/bvd.hpp"
#include "piezo/transducer.hpp"

namespace pab::piezo {

struct CylinderGeometry {
  double mean_radius_m = 0.025;   // to the wall midline
  double length_m = 0.04;
  double wall_thickness_m = 0.005;

  [[nodiscard]] double lateral_area_m2() const;
  [[nodiscard]] double volume_m3() const;  // ceramic material volume
};

// In-air radial ("breathing") resonance of a thin-walled piezoceramic
// cylinder: f = c_ceramic / (2 pi a), with the ceramic sound speed of
// PZT-4-class material.  The paper's 2.5 cm cylinder lands at ~17 kHz.
[[nodiscard]] double in_air_resonance_hz(const CylinderGeometry& geometry);

// Geometry for a desired in-air resonance, holding the paper's aspect ratio
// (length/radius = 1.6) and relative wall thickness.
[[nodiscard]] CylinderGeometry design_cylinder_for(double f_air_hz);

// Water loading pulls the resonance down by the radiation-mass factor and
// sets the loaded Q; this converts an in-air design point into the in-water
// operating point (the paper's 17 kHz -> ~15-16.5 kHz shift).
struct WaterLoadedDesign {
  double resonance_hz = 0.0;
  double loaded_q = 0.0;
  BvdParams bvd;
};

[[nodiscard]] WaterLoadedDesign water_loaded_design(const CylinderGeometry& geometry);

// Full transducer from geometry (air-backed, end-capped construction).
[[nodiscard]] Transducer make_transducer_from_geometry(const CylinderGeometry& geometry);

}  // namespace pab::piezo
