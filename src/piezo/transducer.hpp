// Electroacoustic transducer model built on the BVD equivalent circuit.
//
// Transmit: a drive voltage V at the terminals pushes motional current
// I_m = V / Z_m through the motional branch; the radiated acoustic power is
// P_ac = 1/2 |I_m|^2 R_rad (R_rad is the radiation part of Rm).  Source level
// then follows SL = 170.8 + 10 log10(P_ac) dB re 1 uPa @ 1 m for an
// omnidirectional radiator (the paper's cylinders are omnidirectional in the
// horizontal plane).
//
// Receive: an incident pressure p appears as a voltage source
// V_m = p * G_rx inside the motional branch; the Thevenin equivalent at the
// electrical terminals is V_th = V_m * Z_C0 / (Z_m + Z_C0) with source
// impedance Z_s equal to the transducer's electrical impedance.  G_rx is
// chosen so the maximum electrical power extractable at resonance equals the
// electroacoustic efficiency times the acoustic power captured by the
// transducer's effective aperture -- keeping transmit and receive physically
// consistent (reciprocity).
#pragma once

#include <string>

#include "piezo/bvd.hpp"

namespace pab::piezo {

class Transducer {
 public:
  Transducer(BvdParams bvd, double aperture_area_m2, double rho_c,
             std::string name);

  // --- Electrical ---------------------------------------------------------
  [[nodiscard]] cplx impedance(double freq_hz) const { return bvd_.impedance(freq_hz); }
  [[nodiscard]] const BvdParams& bvd() const { return bvd_; }
  [[nodiscard]] double resonance_hz() const { return bvd_.series_resonance_hz(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double aperture_area() const { return aperture_area_m2_; }

  // --- Transmit -----------------------------------------------------------
  // Radiated acoustic power [W] for a sinusoidal drive of amplitude
  // `v_amplitude` [V] at `freq_hz`.
  [[nodiscard]] double radiated_power_w(double v_amplitude, double freq_hz) const;
  // Source level [dB re 1 uPa @ 1 m].
  [[nodiscard]] double source_level_db(double v_amplitude, double freq_hz) const;
  // Pressure amplitude [Pa] at the 1 m reference distance.
  [[nodiscard]] double pressure_amplitude_at_1m(double v_amplitude, double freq_hz) const;
  // Transmit voltage response [dB re uPa/V @ 1 m] (the TVR curve).
  [[nodiscard]] double tvr_db(double freq_hz) const;

  // --- Receive ------------------------------------------------------------
  // Mechanical band-pass shaping of the electromechanical conversion:
  // Rm / |Z_m(f)|, equal to 1 at series resonance (a Lorentzian in power).
  // This is the "geometric resonance acts as a bandpass filter" of the
  // paper's footnote 5.
  [[nodiscard]] double mechanical_response(double freq_hz) const;
  // In-branch source voltage amplitude [V] for incident pressure amplitude
  // `p_amplitude` [Pa] at `freq_hz` (includes the mechanical shaping).
  [[nodiscard]] double in_branch_voltage(double p_amplitude, double freq_hz) const;
  // Thevenin open-circuit voltage amplitude at the terminals.
  [[nodiscard]] double thevenin_voltage(double p_amplitude, double freq_hz) const;
  // Thevenin source impedance (equals electrical impedance).
  [[nodiscard]] cplx thevenin_impedance(double freq_hz) const { return impedance(freq_hz); }
  // Open-circuit receive sensitivity [dB re 1V/uPa] (the OCV curve).
  [[nodiscard]] double ocv_sensitivity_db(double freq_hz) const;

 private:
  BvdParams bvd_;
  double aperture_area_m2_;
  double rho_c_;   // characteristic impedance of the medium [Pa s/m]
  double g_rx_;    // receive conversion gain [V/Pa], in-branch
  std::string name_;
};

// --- Factories matching the paper's hardware --------------------------------

// The paper's ceramic cylinder (Steminc SMC5447T40111): radius 2.5 cm, length
// 4 cm, in-air resonance 17 kHz.  Water loading (added radiation mass) brings
// the mechanical resonance down to ~16.5 kHz with a loaded Q around 3.5;
// the *electrical* (recto-piezo) resonance inside this band is then set by
// the matching network.
[[nodiscard]] Transducer make_node_transducer(double f_res_hz = 16500.0);

// Projector: same fabricated cylinder used as a transmitter (section 5.1a).
[[nodiscard]] Transducer make_projector_transducer();

// Hydrophone: broadband receiver modeled on the Aquarian H2a (-180 dB re
// 1V/uPa, flat).  Returns sensitivity in V/Pa for direct use.
struct Hydrophone {
  double sensitivity_db_re_v_per_upa = -180.0;
  [[nodiscard]] double volts_per_pascal() const;
};

}  // namespace pab::piezo
