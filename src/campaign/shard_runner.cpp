#include "campaign/shard_runner.hpp"

#include <utility>

#include "sim/batch.hpp"
#include "sim/session.hpp"

namespace pab::campaign {

void ShardOutput::serialize(ByteWriter& w) const {
  w.u64(shard);
  records.serialize(w);
  write_metrics(w, metrics);
}

pab::Expected<ShardOutput> ShardOutput::deserialize(ByteReader& r) {
  ShardOutput out;
  out.shard = r.u64();
  auto records = RecordBatch::deserialize(r);
  if (!records.ok()) return records.error();
  out.records = std::move(records).value();
  out.metrics = read_metrics(r);
  return out;
}

pab::Expected<ShardOutput> run_shard(const CampaignSpec& spec,
                                     const Shard& shard, unsigned threads) {
  if (shard.begin > shard.end || shard.end > spec.trials_per_point ||
      shard.point >= spec.point_count())
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "run_shard: shard out of campaign bounds"};
  auto scenario = spec.scenario_for_point(shard.point);
  if (!scenario.ok()) return scenario.error();
  auto opts = spec.trial_options();
  if (!opts.ok()) return opts.error();

  // A fresh registry per shard makes the snapshot a pure per-shard delta:
  // session/cache/dispatch counters start at zero no matter which process or
  // resume pass runs the shard, so folds in shard order reproduce the
  // single-process totals exactly.
  obs::MetricRegistry registry;
  const sim::Session session(std::move(scenario).value(), &registry);
  const sim::BatchRunner runner(threads == 0 ? 1 : threads, &registry);

  ShardOutput out;
  out.shard = shard.index;
  out.records = RecordBatch(spec.kind);
  const std::uint64_t n = shard.end - shard.begin;
  const auto results =
      runner.map(n, [&](std::size_t i) {
        return session.run_trial(spec.kind, shard.begin + i, opts.value());
      });
  for (std::uint64_t i = 0; i < n; ++i)
    out.records.append(shard.begin + i, results[i]);
  out.metrics = registry.snapshot();
  return out;
}

}  // namespace pab::campaign
