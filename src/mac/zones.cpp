#include "mac/zones.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/timeline.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace pab::mac {

namespace {

// splitmix64 finalizer: derives an independent per-zone inventory seed from
// the base seed and the zone id (never from execution order).
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// SINR values are clamped to this band (dB) so a zero-interference or
// zero-amplitude slot still contributes a finite value to the mean.
constexpr double kSinrCapDb = 300.0;

// One reply window announced for the current round: zone z's slot k occupies
// [start, end] on the master clock and `ids` would transmit in it (zone-local
// ids fixed at the frame announcement; availability is re-sampled when the
// window is read).  Windows own their id list: the announcing zone reuses its
// frame scratch while other zones may still read the window.
struct SlotWindow {
  double start = 0.0;
  double end = 0.0;
  std::uint32_t zone = 0;
  double carrier_hz = 0.0;
  const std::vector<std::uint32_t>* members = nullptr;  // local id -> global
  std::vector<std::uint8_t> ids;
};

// Per-slot SINR verdict, decided at the slot's fire time (when every window
// overlapping it is guaranteed registered -- any overlapping frame was
// announced strictly before the slot ends).
enum class SlotVerdict : std::uint8_t { kNotEvaluated, kClean, kCorrupted };

// Per-zone inventory state machine.  `t_local` mirrors, operation for
// operation, the clock of the old per-zone sub-timeline: frame announcements
// add frame_announce_s, frame ends land on frame_start + slots * slot_s, and
// every event is scheduled on the master timeline at round_start + t_local --
// so availability predicates observe bit-identical absolute timestamps and
// the interference-off schedule reproduces the isolated-zone results exactly.
struct ZoneRun {
  std::uint32_t zone_id = 0;
  const std::vector<std::uint32_t>* members = nullptr;
  double carrier_hz = 0.0;
  InventoryConfig config;  // seed already mixed per zone
  std::vector<std::uint8_t> pending;
  std::vector<std::uint8_t> identified;
  InventoryStats stats;
  int q = 0;
  std::uint64_t nonce = 0;
  int frames_run = 0;
  double t_local = 0.0;
  std::vector<std::vector<std::uint8_t>> by_slot;  // frame scratch
  std::vector<std::vector<std::uint8_t>> replies;
  std::vector<SlotVerdict> verdict;
  bool done = false;
};

// Shared state of one concurrent round.
struct RoundState {
  double round_start = 0.0;
  std::vector<ZoneRun>* zones = nullptr;  // active zones, ascending zone id
  std::vector<SlotWindow> windows;
  std::size_t active = 0;
  const ZonedInventoryOptions* options = nullptr;
  // Completion-order busy accumulator shared across rounds: the same
  // compensated algorithm, fed in the same order, as the timeline's
  // "mac.zone.inventory.busy_s" label sum -- so the result's busy_s is
  // reconstructible bit-exactly from the event log.
  pab::NeumaierSum* busy = nullptr;
  // Interference ledger accumulated in slot fire order (deterministic:
  // master-queue (time, seq) order).
  std::size_t corrupted = 0;
  std::size_t evaluated = 0;
  double sinr_db_sum = 0.0;
};

bool node_available(const ZonedInventoryOptions& options, std::uint32_t node,
                    double t) {
  return !options.available || options.available(node, t);
}

// Aggregate interference power leaking into zone z's receive filter during
// [slot_start, slot_end]: every other zone's window overlapping it
// contributes its available transmitters' squared reader-path amplitudes
// through the rejection mask.  Availability of an interferer is sampled at
// the overlap start -- already in the past when the listening slot fires.
double interference_power(const RoundState& rs, const ZoneRun& z,
                          double slot_start, double slot_end) {
  const ZoneInterferenceModel& model = rs.options->interference;
  double power = 0.0;
  for (const SlotWindow& w : rs.windows) {
    if (w.zone == z.zone_id) continue;
    if (!(w.start < slot_end && w.end > slot_start)) continue;
    const double reject =
        rejection_power_factor(model.mask, w.carrier_hz, z.carrier_hz);
    if (reject <= 0.0) continue;
    const double sample_t = std::max(slot_start, w.start);
    for (const std::uint8_t id : w.ids) {
      const std::uint32_t node = (*w.members)[id - 1];
      if (!node_available(*rs.options, node, sample_t)) continue;
      const double amp = model.node_amplitude[node];
      power += amp * amp * reject;
    }
  }
  return power;
}

// SINR (dB, clamped to +-kSinrCapDb) of a singleton reply from global node
// `node` in zone z's slot [slot_start, slot_end].
double slot_sinr_db(const RoundState& rs, const ZoneRun& z, std::uint32_t node,
                    double slot_start, double slot_end) {
  const ZoneInterferenceModel& model = rs.options->interference;
  const double amp = model.node_amplitude[node];
  const double signal = amp * amp;
  const double denom =
      model.noise_power + interference_power(rs, z, slot_start, slot_end);
  if (denom <= 0.0) return signal > 0.0 ? kSinrCapDb : -kSinrCapDb;
  if (signal <= 0.0) return -kSinrCapDb;
  return std::clamp(10.0 * std::log10(signal / denom), -kSinrCapDb, kSinrCapDb);
}

void schedule_frame(ZoneRun& z, RoundState& rs, sim::Timeline& tl);

// Frame-end bookkeeping: outcomes, q adaptation, compaction, and either the
// next frame announcement or zone completion.  Runs inside the final slot
// event of the frame, whose fire time is exactly the frame end.
void finish_frame(ZoneRun& z, RoundState& rs, sim::Timeline& tl) {
  const std::size_t slot_count = z.replies.size();
  std::size_t frame_singletons = 0, frame_collisions = 0;
  std::array<bool, 256> won{};  // ids identified this frame
  for (std::size_t k = 0; k < slot_count; ++k) {
    if (z.replies[k].size() == 1) {
      if (z.verdict[k] == SlotVerdict::kCorrupted) {
        // The reply was drowned by concurrent zones: the reader sees a CRC
        // failure, indistinguishable from a collision, and retries the node
        // in a later frame.
        ++frame_collisions;
      } else {
        ++frame_singletons;
        z.identified.push_back(z.replies[k].front());
        won[z.replies[k].front()] = true;
      }
    } else if (z.replies[k].size() > 1) {
      ++frame_collisions;
    }
  }
  for (std::size_t i = 0; i < z.pending.size();) {
    if (won[z.pending[i]]) {
      z.pending[i] = z.pending.back();
      z.pending.pop_back();
    } else {
      ++i;
    }
  }
  const std::size_t frame_empties =
      slot_count - frame_singletons - frame_collisions;
  z.stats.singletons += frame_singletons;
  z.stats.collisions += frame_collisions;
  z.stats.empties += frame_empties;

  z.q = adapt_q(z.q, frame_collisions, frame_empties, frame_singletons,
                z.config.min_q, z.config.max_q);

  if (z.pending.empty() || z.frames_run >= z.config.max_frames) {
    z.done = true;
    tl.charge("mac.zone.inventory.busy_s", z.t_local);
    rs.busy->add(z.t_local);
    --rs.active;
    return;
  }
  schedule_frame(z, rs, tl);
}

// One reply slot fires at its end time: collect the zone's own replies
// (availability sampled at the fire time, the interference-off semantics),
// evaluate the SINR verdict for singleton replies, and on the frame's last
// slot run the frame-end bookkeeping.
void fire_slot(ZoneRun& z, RoundState& rs, sim::Timeline& tl, std::size_t k,
               double slot_start_abs, double frame_end_local) {
  for (const std::uint8_t id : z.by_slot[k]) {
    if (node_available(*rs.options, (*z.members)[id - 1], tl.now()))
      z.replies[k].push_back(id);
  }
  const ZoneInterferenceModel& model = rs.options->interference;
  if (model.enabled && z.replies[k].size() == 1) {
    const std::uint32_t node = (*z.members)[z.replies[k].front() - 1];
    const double db = slot_sinr_db(rs, z, node, slot_start_abs, tl.now());
    ++rs.evaluated;
    rs.sinr_db_sum += db;
    if (db >= model.capture_threshold_db) {
      z.verdict[k] = SlotVerdict::kClean;
    } else {
      z.verdict[k] = SlotVerdict::kCorrupted;
      ++rs.corrupted;
    }
  }
  if (k + 1 == z.by_slot.size()) {
    z.t_local = frame_end_local;
    finish_frame(z, rs, tl);
  }
}

// Announce the zone's next frame: the announcement occupies
// [t_local, t_local + frame_announce_s] and the event fires at its end,
// where slot assignment is fixed (the node PRNG is seeded by the query
// nonce), reply windows are registered for the round, and the slot events
// are scheduled.
void schedule_frame(ZoneRun& z, RoundState& rs, sim::Timeline& tl) {
  const ZonedInventoryOptions& options = *rs.options;
  const double announce_end_local = z.t_local + options.frame_announce_s;
  tl.schedule_at(
      rs.round_start + announce_end_local, "mac.zone.frame",
      [&z, &rs, announce_end_local](sim::Timeline& timeline) {
        const ZonedInventoryOptions& opts = *rs.options;
        z.t_local = announce_end_local;
        ++z.stats.frames;
        ++z.frames_run;
        ++z.nonce;
        const std::size_t slot_count = std::size_t{1} << z.q;
        z.stats.slots += slot_count;
        const double frame_start = z.t_local;

        z.by_slot.assign(slot_count, {});
        z.replies.assign(slot_count, {});
        z.verdict.assign(slot_count, SlotVerdict::kNotEvaluated);
        for (const std::uint8_t id : z.pending)
          z.by_slot[inventory_slot(id, z.nonce, slot_count)].push_back(id);

        if (opts.interference.enabled) {
          // Drop windows no future slot can overlap: every slot still to
          // fire ends at or after now(), so its window starts at or after
          // now() - slot_s.
          const double dead_before = timeline.now() - opts.slot_s;
          std::erase_if(rs.windows, [dead_before](const SlotWindow& w) {
            return w.end <= dead_before;
          });
          for (std::size_t k = 0; k < slot_count; ++k) {
            if (z.by_slot[k].empty()) continue;
            SlotWindow w;
            w.start = rs.round_start +
                      (frame_start + static_cast<double>(k) * opts.slot_s);
            w.end = rs.round_start +
                    (frame_start + static_cast<double>(k + 1) * opts.slot_s);
            w.zone = z.zone_id;
            w.carrier_hz = z.carrier_hz;
            w.members = z.members;
            w.ids = z.by_slot[k];
            rs.windows.push_back(std::move(w));
          }
        }

        const double frame_end_local =
            frame_start + static_cast<double>(slot_count) * opts.slot_s;
        for (std::size_t k = 0; k < slot_count; ++k) {
          const double start_local =
              frame_start + static_cast<double>(k) * opts.slot_s;
          const double end_local =
              frame_start + static_cast<double>(k + 1) * opts.slot_s;
          const double start_abs = rs.round_start + start_local;
          timeline.schedule_at(
              rs.round_start + end_local, "mac.zone.slot",
              [&z, &rs, k, start_abs, frame_end_local](sim::Timeline& t) {
                fire_slot(z, rs, t, k, start_abs, frame_end_local);
              },
              opts.slot_s);
        }
      },
      options.frame_announce_s);
}

}  // namespace

ZoneSchedule plan_zones(const ZoneLayout& layout,
                        const ChannelPlanConfig& config) {
  const std::size_t n = layout.members.size();
  require(layout.adjacency.size() == n,
          "plan_zones: adjacency/members size mismatch");

  ZoneSchedule out;
  out.zones.resize(n);

  // Greedy coloring, zone-id order, lowest free color: deterministic and at
  // most max_degree + 1 colors.
  std::size_t colors = 0;
  std::vector<bool> in_use;
  for (std::size_t z = 0; z < n; ++z) {
    in_use.assign(colors + 1, false);
    for (const std::uint32_t a : layout.adjacency[z]) {
      require(a < n, "plan_zones: adjacency references unknown zone");
      require(a != z, "plan_zones: self-loop in zone adjacency");
      if (a < z) {
        const std::uint32_t c = out.zones[a].color;
        if (c < in_use.size()) in_use[c] = true;
      }
    }
    std::uint32_t color = 0;
    while (color < in_use.size() && in_use[color]) ++color;
    out.zones[z].color = color;
    colors = std::max(colors, static_cast<std::size_t>(color) + 1);
  }
  out.colors = colors;

  // One channel-plan "slot" per color: the over-subscription result maps
  // color -> (carrier, sequential round) when colors exceed the band.
  out.plan = plan_channels(std::max<std::size_t>(colors, 1), config);
  const std::size_t channels = out.plan.channels();
  for (std::size_t z = 0; z < n; ++z) {
    ZoneAssignment& a = out.zones[z];
    a.carrier_hz = out.plan.carrier_for(a.color);
    a.round = static_cast<std::uint32_t>(a.color / channels);
  }
  out.rounds = n == 0 ? 0 : (colors + channels - 1) / channels;
  return out;
}

ZonedInventoryResult run_zoned_inventory(const ZoneLayout& layout,
                                         const ZoneSchedule& schedule,
                                         const InventoryConfig& config,
                                         sim::Timeline& timeline,
                                         const ZonedInventoryOptions& options) {
  const std::size_t n = layout.members.size();
  require(schedule.zones.size() == n, "run_zoned_inventory: schedule mismatch");
  require(options.frame_announce_s >= 0.0 && options.slot_s >= 0.0,
          "run_zoned_inventory: negative timing");
  if (options.interference.enabled) {
    for (const auto& members : layout.members)
      for (const std::uint32_t g : members)
        require(g < options.interference.node_amplitude.size(),
                "run_zoned_inventory: interference amplitudes must cover "
                "every member node");
  }

  ZonedInventoryResult out;
  out.zones = n;
  out.rounds = schedule.rounds;
  pab::NeumaierSum busy;

  for (std::size_t round = 0; round < schedule.rounds; ++round) {
    RoundState rs;
    rs.round_start = timeline.now();
    rs.options = &options;
    rs.busy = &busy;

    std::vector<ZoneRun> runs;
    for (std::size_t z = 0; z < n; ++z) {
      if (schedule.zones[z].round != round) continue;
      const std::vector<std::uint32_t>& members = layout.members[z];
      if (members.empty()) continue;
      require(members.size() <= 200,
              "run_zoned_inventory: a zone holds more than 200 nodes (shrink "
              "the zone extent)");
      ZoneRun run;
      run.zone_id = static_cast<std::uint32_t>(z);
      run.members = &members;
      run.carrier_hz = schedule.zones[z].carrier_hz;
      run.config = config;
      // Zone-local uint8 ids 1..members.size() map back to global indices:
      // the hierarchical addressing that lifts the flat protocol's limit.
      run.config.seed = mix(config.seed ^ mix(static_cast<std::uint64_t>(z)));
      require(run.config.min_q >= 0 && run.config.min_q <= run.config.max_q,
              "run_zoned_inventory: invalid q bounds");
      require(run.config.initial_q >= run.config.min_q &&
                  run.config.initial_q <= run.config.max_q,
              "run_zoned_inventory: initial q out of bounds");
      run.q = run.config.initial_q;
      run.nonce = run.config.seed;
      run.pending.resize(members.size());
      for (std::size_t k = 0; k < members.size(); ++k)
        run.pending[k] = static_cast<std::uint8_t>(k + 1);
      runs.push_back(std::move(run));
    }
    rs.zones = &runs;

    // `runs` is stable from here on: callbacks hold references into it.
    for (ZoneRun& z : runs) {
      if (z.config.max_frames <= 0) {
        z.done = true;
        timeline.charge("mac.zone.inventory.busy_s", 0.0);
        busy.add(0.0);
        continue;
      }
      ++rs.active;
      schedule_frame(z, rs, timeline);
    }

    // Drive the round: every frame announcement and reply slot fires at its
    // own absolute timestamp, interleaved with any external events already
    // on the queue (lifecycle ticks).  The clock lands on the round wall --
    // the last slot of the slowest zone -- when the final zone completes.
    while (rs.active > 0) {
      const bool fired = timeline.step();
      require(fired, "run_zoned_inventory: queue drained with zones active");
    }

    double round_wall = 0.0;
    for (const ZoneRun& z : runs) {
      for (const std::uint8_t id : z.identified)
        out.identified.push_back((*z.members)[id - 1]);
      out.inventory.frames += z.stats.frames;
      out.inventory.slots += z.stats.slots;
      out.inventory.singletons += z.stats.singletons;
      out.inventory.collisions += z.stats.collisions;
      out.inventory.empties += z.stats.empties;
      round_wall = std::max(round_wall, z.t_local);
    }
    out.corrupted_slots += rs.corrupted;
    out.sinr_evaluated_slots += rs.evaluated;
    out.mean_slot_sinr_db += rs.sinr_db_sum;  // normalized below

    // The round's wall time: one entry per round whose value is the maximum
    // concurrent zone duration, distinct from the per-zone busy_s charges
    // (their *sum*) -- the split that keeps label totals honest.
    timeline.charge("mac.zone.round", round_wall);
    out.simulated_s += round_wall;
  }

  out.busy_s = busy.value();
  out.mean_slot_sinr_db =
      out.sinr_evaluated_slots > 0
          ? out.mean_slot_sinr_db / static_cast<double>(out.sinr_evaluated_slots)
          : 0.0;
  return out;
}

}  // namespace pab::mac
