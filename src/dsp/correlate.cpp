#include "dsp/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/simd.hpp"
#include "util/error.hpp"

namespace pab::dsp {

std::size_t correlation_length(std::size_t nx, std::size_t nt) {
  if (nt == 0 || nx < nt) return 0;
  return nx - nt + 1;
}

void cross_correlate_into(std::span<const std::complex<double>> x,
                          std::span<const std::complex<double>> t,
                          std::span<std::complex<double>> out) {
  require(out.size() == correlation_length(x.size(), t.size()),
          "cross_correlate_into: output size mismatch");
  // Sliding conjugate dot product through the dispatch layer: the scalar
  // table is the original accumulation loop verbatim.
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = simd::dot_conj(x.subspan(k, t.size()), t);
}

void cross_correlate_into(std::span<const double> x, std::span<const double> t,
                          std::span<double> out) {
  require(out.size() == correlation_length(x.size(), t.size()),
          "cross_correlate_into: output size mismatch");
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = simd::dot(x.subspan(k, t.size()), t);
}

std::vector<std::complex<double>> cross_correlate(
    std::span<const std::complex<double>> x,
    std::span<const std::complex<double>> t) {
  if (t.empty() || x.size() < t.size()) return {};
  std::vector<std::complex<double>> out(x.size() - t.size() + 1);
  cross_correlate_into(x, t, out);
  return out;
}

std::vector<double> cross_correlate(std::span<const double> x,
                                    std::span<const double> t) {
  if (t.empty() || x.size() < t.size()) return {};
  std::vector<double> out(x.size() - t.size() + 1);
  cross_correlate_into(x, t, out);
  return out;
}

void normalized_correlation_into(std::span<const std::complex<double>> x,
                                 std::span<const std::complex<double>> t,
                                 std::span<double> out) {
  require(out.size() == correlation_length(x.size(), t.size()),
          "normalized_correlation_into: output size mismatch");
  double t_energy = 0.0;
  for (const auto& v : t) t_energy += std::norm(v);
  const double t_norm = std::sqrt(t_energy);
  if (t_norm == 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }

  // Running window energy of x.
  double win_energy = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) win_energy += std::norm(x[i]);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const std::complex<double> acc = simd::dot_conj(x.subspan(k, t.size()), t);
    const double denom = std::sqrt(std::max(win_energy, 1e-300)) * t_norm;
    out[k] = std::abs(acc) / denom;
    if (k + t.size() < x.size())
      win_energy += std::norm(x[k + t.size()]) - std::norm(x[k]);
  }
}

std::vector<double> normalized_correlation(std::span<const std::complex<double>> x,
                                           std::span<const std::complex<double>> t) {
  if (t.empty() || x.size() < t.size()) return {};
  std::vector<double> out(x.size() - t.size() + 1);
  normalized_correlation_into(x, t, out);
  return out;
}

void pearson_correlation_into(std::span<const double> x,
                              std::span<const double> t, std::span<double> out) {
  require(t.size() >= 2, "pearson_correlation_into: template too short");
  require(out.size() == correlation_length(x.size(), t.size()),
          "pearson_correlation_into: output size mismatch");
  const auto n = static_cast<double>(t.size());

  double t_sum = 0.0, t_sq = 0.0;
  for (double v : t) { t_sum += v; t_sq += v * v; }
  const double t_var = t_sq - t_sum * t_sum / n;
  if (t_var <= 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }

  for (std::size_t k = 0; k < out.size(); ++k) {
    // Window statistics computed fresh per window, centered on the window
    // mean: cancellation-safe for small modulations on a large pedestal and
    // free of running-sum drift.  With x centered, sum(xc) = 0, so the
    // template's mean term drops out of the covariance.  Both passes run
    // through dsp::simd (scalar dispatch reproduces the original loops
    // bit-for-bit); this is the decode chain's hottest kernel.
    const auto window = x.subspan(k, t.size());
    const double x_mean = simd::sum(window) / n;
    const auto [cov, x_var] = simd::centered_cov_var(window, t, x_mean);
    out[k] = x_var > 1e-300 ? cov / std::sqrt(x_var * t_var) : 0.0;
  }
}

std::vector<double> pearson_correlation(std::span<const double> x,
                                        std::span<const double> t) {
  if (t.size() < 2 || x.size() < t.size()) return {};
  std::vector<double> out(x.size() - t.size() + 1);
  pearson_correlation_into(x, t, out);
  return out;
}

std::size_t argmax(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return static_cast<std::size_t>(
      std::distance(xs.begin(), std::max_element(xs.begin(), xs.end())));
}

}  // namespace pab::dsp
