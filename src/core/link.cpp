#include "core/link.hpp"

#include <cmath>

#include "dsp/envelope.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::core {

ModulationStates modulation_states(const circuit::RectoPiezo& front_end,
                                   double carrier_hz, double bitrate) {
  // Complex scatter gain per state.  The differential component is derated by
  // the recto-piezo's bandwidth efficiency at this bitrate (sidebands beyond
  // the electrical resonance modulate weakly).
  const dsp::cplx g_r0 = front_end.scatter_gain(carrier_hz, /*reflective=*/true);
  const dsp::cplx g_a0 = front_end.scatter_gain(carrier_hz, /*reflective=*/false);
  const double eta_bw = front_end.bandwidth_efficiency(carrier_hz, bitrate);
  const dsp::cplx g_mid = 0.5 * (g_r0 + g_a0);
  const dsp::cplx g_half = 0.5 * (g_r0 - g_a0) * eta_bw;
  return ModulationStates{g_mid + g_half, g_mid - g_half};
}

LinkSimulator::LinkSimulator(SimConfig config, Placement placement)
    : LinkSimulator(config, placement,
                    std::make_shared<channel::TapCache>(
                        config.tank, config.max_image_order,
                        config.use_image_method)) {}

LinkSimulator::LinkSimulator(SimConfig config, Placement placement,
                             std::shared_ptr<channel::TapCache> tap_cache)
    : config_(config),
      placement_(placement),
      rng_(config.seed),
      tap_cache_(std::move(tap_cache)) {
  require(config_.sample_rate > 0.0, "LinkSimulator: sample rate must be positive");
  require(tap_cache_ != nullptr, "LinkSimulator: tap cache must not be null");
}

void LinkSimulator::set_metrics(obs::MetricRegistry* metrics) {
  metrics_ = metrics;
  t_uplink_run_ = metrics != nullptr
                      ? &metrics->histogram("core.link.uplink_run_seconds")
                      : nullptr;
  t_decode_ = metrics != nullptr
                  ? &metrics->histogram("core.link.decode_seconds")
                  : nullptr;
}

const std::vector<channel::PathTap>& LinkSimulator::taps(const channel::Vec3& a,
                                                         const channel::Vec3& b,
                                                         double freq_hz) const {
  // The cache owns the tap vectors for its whole lifetime, so handing out a
  // reference is safe while this simulator (which shares ownership) exists.
  return *tap_cache_->taps(a, b, freq_hz);
}

double LinkSimulator::incident_pressure(const Projector& projector,
                                        double freq_hz) const {
  const auto& t = taps(placement_.projector, placement_.node, freq_hz);
  return projector.pressure_at_1m(freq_hz) * channel::coherent_gain(t, freq_hz);
}

UplinkRunResult LinkSimulator::run_uplink(const Projector& projector,
                                          const ModulationStates& states,
                                          std::span<const std::uint8_t> data_bits,
                                          const UplinkRunConfig& cfg,
                                          pab::Rng& rng) const {
  const double fs = config_.sample_rate;
  const double f = cfg.carrier_hz;

  // Full on-air bit stream: uplink preamble + data.
  pab::Bits full_bits(phy::uplink_preamble_bits());
  full_bits.insert(full_bits.end(), data_bits.begin(), data_bits.end());
  const auto sw = phy::backscatter_waveform(full_bits, cfg.bitrate, fs);

  const double packet_s = static_cast<double>(sw.size()) / fs;
  const double total_s = cfg.node_start_s + packet_s + cfg.tail_s;

  // Projector CW envelope (amplitude = pressure at 1 m).
  const dsp::BasebandSignal tx = projector.cw_envelope(f, total_s, fs);

  // Propagate to the node and the hydrophone (memoized tap sets).
  const auto& taps_pn = taps(placement_.projector, placement_.node, f);
  const auto& taps_ph = taps(placement_.projector, placement_.hydrophone, f);
  const auto& taps_nh = taps(placement_.node, placement_.hydrophone, f);

  const dsp::BasebandSignal at_node = channel::apply_taps_baseband(tx, taps_pn);
  const dsp::BasebandSignal direct = channel::apply_taps_baseband(tx, taps_ph);

  const dsp::cplx g_refl = states.g_reflective;
  const dsp::cplx g_abs = states.g_absorptive;

  const auto start_i = static_cast<std::size_t>(cfg.node_start_s * fs);
  dsp::BasebandSignal scattered;
  scattered.sample_rate = fs;
  scattered.carrier_hz = f;
  scattered.samples.resize(at_node.size(), dsp::cplx{});
  for (std::size_t i = 0; i < at_node.size(); ++i) {
    dsp::cplx g = g_abs;  // idle switch open = absorptive/matched state
    if (i >= start_i && i - start_i < sw.size() &&
        sw[i - start_i] == phy::SwitchState::kReflective) {
      g = g_refl;
    }
    scattered.samples[i] = at_node.samples[i] * g;
  }
  const dsp::BasebandSignal backscatter =
      channel::apply_taps_baseband(scattered, taps_nh);

  // Hydrophone: passband voltage with ambient noise.
  const std::size_t n = std::max(direct.size(), backscatter.size());
  UplinkRunResult result;
  result.hydrophone_v.sample_rate = fs;
  result.hydrophone_v.samples.resize(n);
  const double sens = config_.hydrophone.volts_per_pascal();
  const double noise_sd = config_.noise.sample_stddev_pa(fs);
  // Recording-clock offset (paper footnote 12): in the recorder's time base
  // the carrier appears shifted by f * ppm * 1e-6.  For the short captures
  // here the accompanying timing drift (microseconds) is negligible against
  // chip durations, so the offset is applied as a pure carrier shift.
  const double skew = 1.0 + config_.receiver_clock_offset_ppm * 1e-6;
  const double w = kTwoPi * f * skew / fs;
  for (std::size_t i = 0; i < n; ++i) {
    dsp::cplx env{};
    if (i < direct.size()) env += direct.samples[i];
    if (i < backscatter.size()) env += backscatter.samples[i];
    const double ph = w * static_cast<double>(i);
    const double pressure =
        env.real() * std::cos(ph) - env.imag() * std::sin(ph) +
        rng.gaussian(0.0, noise_sd);
    result.hydrophone_v.samples[i] = sens * pressure;
  }

  result.sent_bits.assign(data_bits.begin(), data_bits.end());
  result.incident_pressure_pa =
      projector.pressure_at_1m(f) * channel::coherent_gain(taps_pn, f);
  result.direct_pressure_pa =
      projector.pressure_at_1m(f) * channel::coherent_gain(taps_ph, f);
  result.modulation_pressure_pa = result.incident_pressure_pa *
                                  std::abs(g_refl - g_abs) *
                                  channel::coherent_gain(taps_nh, f);
  return result;
}

UplinkRunResult LinkSimulator::run_uplink(const Projector& projector,
                                          const circuit::RectoPiezo& front_end,
                                          std::span<const std::uint8_t> data_bits,
                                          const UplinkRunConfig& cfg) {
  return run_uplink(projector, modulation_states(front_end, cfg.carrier_hz, cfg.bitrate),
                    data_bits, cfg, rng_);
}

pab::Expected<LinkSimulator::DecodedRun> LinkSimulator::run_and_decode(
    const Projector& projector, const ModulationStates& states,
    std::span<const std::uint8_t> data_bits, const UplinkRunConfig& cfg,
    pab::Rng& rng) const {
  DecodedRun out;
  {
    const obs::ScopedTimer timer(t_uplink_run_);
    out.run = run_uplink(projector, states, data_bits, cfg, rng);
  }
  phy::DemodConfig dc;
  dc.carrier_hz = cfg.carrier_hz;
  dc.bitrate = cfg.bitrate;
  dc.sample_rate = config_.sample_rate;
  dc.metrics = metrics_;
  const obs::ScopedTimer timer(t_decode_);
  const phy::BackscatterDemodulator demod(dc);
  auto demodulated = demod.demodulate(out.run.hydrophone_v, data_bits.size());
  if (!demodulated.ok()) return demodulated.error();
  out.demod = std::move(demodulated).value();
  return out;
}

pab::Expected<LinkSimulator::DecodedRun> LinkSimulator::run_and_decode(
    const Projector& projector, const circuit::RectoPiezo& front_end,
    std::span<const std::uint8_t> data_bits, const UplinkRunConfig& cfg) {
  return run_and_decode(projector,
                        modulation_states(front_end, cfg.carrier_hz, cfg.bitrate),
                        data_bits, cfg, rng_);
}

std::vector<std::uint8_t> LinkSimulator::downlink_sliced_envelope(
    const Projector& projector, const phy::DownlinkQuery& query,
    const phy::PwmParams& pwm, double freq_hz) const {
  const double fs = config_.sample_rate;
  const dsp::BasebandSignal tx =
      projector.query_envelope(query, pwm, freq_hz, fs, /*post_cw_s=*/0.0);
  const auto& taps_pn = taps(placement_.projector, placement_.node, freq_hz);
  const dsp::BasebandSignal at_node = channel::apply_taps_baseband(tx, taps_pn);

  // The node's detector: rectified envelope of the piezo voltage through an
  // RC, then the Schmitt trigger.  Envelope magnitude is proportional to the
  // incident pressure; the RC shapes the edges.
  std::vector<double> mag(at_node.size());
  for (std::size_t i = 0; i < at_node.size(); ++i)
    mag[i] = std::abs(at_node.samples[i]);
  const auto env = dsp::envelope_rc(mag, fs, /*tau_s=*/0.25e-3);
  return dsp::schmitt_slice(env);
}

}  // namespace pab::core
