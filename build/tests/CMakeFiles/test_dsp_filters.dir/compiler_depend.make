# Empty compiler generated dependencies file for test_dsp_filters.
# This may be replaced when dependencies are built.
