#include "phy/mimo.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pab::phy {

Mat2c Mat2c::inverse() const {
  const cplx d = det();
  require(std::abs(d) > 1e-30, "Mat2c: singular channel matrix");
  return Mat2c{h22 / d, -h12 / d, -h21 / d, h11 / d};
}

double Mat2c::condition_number() const {
  // Singular values of a 2x2: from eigenvalues of H^H H.
  const double a = std::norm(h11) + std::norm(h21);
  const double b = std::norm(h12) + std::norm(h22);
  const cplx c = std::conj(h11) * h12 + std::conj(h21) * h22;
  const double tr = a + b;
  const double disc = std::sqrt(std::max(0.0, (a - b) * (a - b) + 4.0 * std::norm(c)));
  const double s1 = std::sqrt(std::max(0.0, (tr + disc) / 2.0));
  const double s2 = std::sqrt(std::max(0.0, (tr - disc) / 2.0));
  if (s2 <= 0.0) return 1e30;
  return s1 / s2;
}

cplx estimate_channel_gain(std::span<const cplx> y, std::span<const double> x) {
  require(y.size() == x.size() && !y.empty(), "estimate_channel_gain: size mismatch");
  cplx num{};
  double den = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    num += y[i] * x[i];
    den += x[i] * x[i];
  }
  require(den > 0.0, "estimate_channel_gain: zero-energy reference");
  return num / den;
}

ZfOutput zero_force(std::span<const cplx> y1, std::span<const cplx> y2,
                    const Mat2c& h) {
  require(y1.size() == y2.size(), "zero_force: stream length mismatch");
  const Mat2c inv = h.inverse();
  ZfOutput out;
  out.x1.resize(y1.size());
  out.x2.resize(y1.size());
  for (std::size_t i = 0; i < y1.size(); ++i) {
    out.x1[i] = inv.h11 * y1[i] + inv.h12 * y2[i];
    out.x2[i] = inv.h21 * y1[i] + inv.h22 * y2[i];
  }
  return out;
}

}  // namespace pab::phy
