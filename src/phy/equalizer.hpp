// Chip-spaced linear MMSE equalizer for reverberant backscatter channels.
//
// Enclosed tanks smear chips across their neighbors (multipath delay spread
// of several milliseconds); at higher bitrates this inter-chip interference
// caps the SNR even when the noise floor is low.  A short FIR equalizer
// trained on the known preamble/training chips (least squares = MMSE at the
// training SNR) restores the chip sequence before FM0 decoding -- a receiver
// upgrade the paper's MATLAB decoder could adopt unchanged.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace pab::phy {

struct EqualizerConfig {
  int pre_taps = 2;   // anti-causal taps (future chips)
  int post_taps = 4;  // causal taps (past chips)
  double ridge = 1e-3;  // diagonal loading relative to the input power
};

class LinearEqualizer {
 public:
  explicit LinearEqualizer(EqualizerConfig config = {});

  // Fit taps from received training chips `rx` and the known +/-1 sequence
  // `ref` (same length), minimizing ||W rx - ref||^2 with ridge loading.
  void train(std::span<const std::complex<double>> rx,
             std::span<const double> ref);

  // Apply the trained taps to a chip stream.
  [[nodiscard]] std::vector<std::complex<double>> apply(
      std::span<const std::complex<double>> rx) const;

  // Into-output variant: out.size() must equal rx.size(); `out` must not
  // alias `rx` (the FIR reads neighbours after the write).  The vector
  // overload wraps this.
  void apply_into(std::span<const std::complex<double>> rx,
                  std::span<std::complex<double>> out) const;

  [[nodiscard]] bool trained() const { return !taps_.empty(); }
  [[nodiscard]] const std::vector<std::complex<double>>& taps() const {
    return taps_;
  }
  [[nodiscard]] int tap_count() const {
    return config_.pre_taps + config_.post_taps + 1;
  }

 private:
  EqualizerConfig config_;
  std::vector<std::complex<double>> taps_;  // index 0 = most anti-causal
};

}  // namespace pab::phy
