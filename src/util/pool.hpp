// Generic object pool: a mutex-guarded free list with RAII leases.
//
// Workers lease an object for the duration of one unit of work; on release it
// returns to the free list with its internal state (grown buffers, cached
// members) intact, so steady-state leases perform no heap allocation.  Used
// by sim::Session to keep one phy::Workspace per in-flight trial.
#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace pab::util {

template <typename T>
class Pool {
 public:
  // RAII lease: returns the object to the pool on destruction.
  class Lease {
   public:
    Lease(Pool* pool, std::unique_ptr<T> obj)
        : pool_(pool), obj_(std::move(obj)) {}
    ~Lease() {
      if (pool_ != nullptr && obj_ != nullptr) pool_->release(std::move(obj_));
    }
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          obj_(std::move(other.obj_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] T& operator*() const { return *obj_; }
    [[nodiscard]] T* operator->() const { return obj_.get(); }

   private:
    Pool* pool_;
    std::unique_ptr<T> obj_;
  };

  // Lease a pooled object, constructing a fresh one (with `args`) only when
  // the free list is empty.
  template <typename... Args>
  [[nodiscard]] Lease lease(Args&&... args) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<T> obj = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(obj));
      }
    }
    return Lease(this, std::make_unique<T>(std::forward<Args>(args)...));
  }

  // Objects currently on the free list (for tests / introspection).
  [[nodiscard]] std::size_t idle_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  void release(std::unique_ptr<T> obj) {
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(obj));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_;
};

}  // namespace pab::util
