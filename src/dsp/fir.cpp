#include "dsp/fir.hpp"

#include <cmath>
#include <complex>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::dsp {
namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

}  // namespace

std::vector<double> design_lowpass_fir(double cutoff_hz, double sample_rate,
                                       std::size_t taps, WindowType window) {
  require(sample_rate > 0.0, "design_lowpass_fir: sample rate must be positive");
  require(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
          "design_lowpass_fir: cutoff must be in (0, fs/2)");
  if (taps % 2 == 0) ++taps;
  const double fc = cutoff_hz / sample_rate;  // normalized (cycles/sample)
  const auto w = make_window(window, taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;

  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = 2.0 * fc * sinc(2.0 * fc * t) * w[i];
    sum += h[i];
  }
  // Normalize to unity DC gain.
  for (auto& v : h) v /= sum;
  return h;
}

std::vector<double> design_bandpass_fir(double low_hz, double high_hz,
                                        double sample_rate, std::size_t taps,
                                        WindowType window) {
  require(low_hz > 0.0 && high_hz > low_hz && high_hz < sample_rate / 2.0,
          "design_bandpass_fir: invalid band");
  if (taps % 2 == 0) ++taps;
  const double f1 = low_hz / sample_rate;
  const double f2 = high_hz / sample_rate;
  const auto w = make_window(window, taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;

  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = (2.0 * f2 * sinc(2.0 * f2 * t) - 2.0 * f1 * sinc(2.0 * f1 * t)) * w[i];
  }
  // Normalize to unity gain at band center.
  const double f0 = kPi * (f1 + f2);  // radian center frequency * 1 sample
  std::complex<double> g{};
  for (std::size_t i = 0; i < taps; ++i)
    g += h[i] * std::exp(std::complex<double>(0.0, -f0 * static_cast<double>(i)));
  const double mag = std::abs(g);
  if (mag > 1e-12)
    for (auto& v : h) v /= mag;
  return h;
}

namespace {

template <typename T>
void fir_apply_into(std::span<const double> h, std::span<const T> x,
                    std::span<T> y) {
  require(!h.empty(), "fir_filter: empty kernel");
  require(y.size() == x.size(), "fir_filter_into: output size mismatch");
  const std::size_t delay = (h.size() - 1) / 2;
  for (std::size_t i = 0; i < x.size(); ++i) {
    T acc{};
    // y[i] = sum_k h[k] * x[i + delay - k]
    for (std::size_t k = 0; k < h.size(); ++k) {
      const std::ptrdiff_t idx =
          static_cast<std::ptrdiff_t>(i) + static_cast<std::ptrdiff_t>(delay) -
          static_cast<std::ptrdiff_t>(k);
      if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(x.size()))
        acc += h[k] * x[static_cast<std::size_t>(idx)];
    }
    y[i] = acc;
  }
}

template <typename T>
std::vector<T> fir_apply(std::span<const double> h, std::span<const T> x) {
  std::vector<T> y(x.size(), T{});
  fir_apply_into<T>(h, x, y);
  return y;
}

}  // namespace

std::vector<double> fir_filter(std::span<const double> h, std::span<const double> x) {
  return fir_apply<double>(h, x);
}

std::vector<std::complex<double>> fir_filter(std::span<const double> h,
                                             std::span<const std::complex<double>> x) {
  return fir_apply<std::complex<double>>(h, x);
}

void fir_filter_into(std::span<const double> h, std::span<const double> x,
                     std::span<double> y) {
  fir_apply_into<double>(h, x, y);
}

void fir_filter_into(std::span<const double> h,
                     std::span<const std::complex<double>> x,
                     std::span<std::complex<double>> y) {
  fir_apply_into<std::complex<double>>(h, x, y);
}

}  // namespace pab::dsp
