file(REMOVE_RECURSE
  "CMakeFiles/node_discovery.dir/node_discovery.cpp.o"
  "CMakeFiles/node_discovery.dir/node_discovery.cpp.o.d"
  "node_discovery"
  "node_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
