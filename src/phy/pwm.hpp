// PWM line coding for the downlink (projector -> node).
//
// PAB "adopts the Pulse Width Modulation (PWM) scheme on the downlink since
// it can be decoded using simple envelope detection, thus minimizing power
// consumption during backscatter and since it provides ample opportunities
// for energy harvesting" (section 3.2).  As in the implementation, "the '1'
// bit is twice as long as the '0' bit" (section 5.1a).
//
// Symbol structure (carrier ON = high, OFF = low):
//   '0':  high for 1 unit, low for 1 unit
//   '1':  high for 2 units, low for 1 unit
// The node's MCU measures the interval between carrier-onset edges to
// classify bits (the paper's MCU times edge interrupts, section 4.2.2; we
// time the onset edge because echo build-up in a reverberant tank can
// partially cancel the carrier mid-symbol while the off->on onset stays
// sharp).  A leading sync symbol arms the timer and a trailing delimiter
// terminates the last symbol.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitops.hpp"

namespace pab::phy {

struct PwmParams {
  double unit_s = 5e-3;  // one PWM time unit [s]

  [[nodiscard]] double symbol_duration(std::uint8_t bit) const {
    return (bit ? 3.0 : 2.0) * unit_s;
  }
  // Seconds between consecutive onset edges for a '0' / '1' symbol.
  [[nodiscard]] double edge_interval(std::uint8_t bit) const {
    return symbol_duration(bit);
  }
};

// On/off keying envelope (one entry per sample, 1 = carrier on).
[[nodiscard]] std::vector<std::uint8_t> pwm_encode(std::span<const std::uint8_t> bits,
                                                   const PwmParams& params,
                                                   double sample_rate);

// Decode a sliced 0/1 envelope into bits via onset-edge interval timing,
// mirroring the MCU's timer-interrupt decoder.  Intervals within
// +/- `tolerance` (fractional) of the nominal '0'/'1' interval are accepted;
// others are dropped.
[[nodiscard]] Bits pwm_decode(std::span<const std::uint8_t> sliced,
                              const PwmParams& params, double sample_rate,
                              double tolerance = 0.25);

}  // namespace pab::phy
