file(REMOVE_RECURSE
  "CMakeFiles/pab_channel.dir/channel/absorption.cpp.o"
  "CMakeFiles/pab_channel.dir/channel/absorption.cpp.o.d"
  "CMakeFiles/pab_channel.dir/channel/noise.cpp.o"
  "CMakeFiles/pab_channel.dir/channel/noise.cpp.o.d"
  "CMakeFiles/pab_channel.dir/channel/propagation.cpp.o"
  "CMakeFiles/pab_channel.dir/channel/propagation.cpp.o.d"
  "CMakeFiles/pab_channel.dir/channel/tank.cpp.o"
  "CMakeFiles/pab_channel.dir/channel/tank.cpp.o.d"
  "CMakeFiles/pab_channel.dir/channel/timevarying.cpp.o"
  "CMakeFiles/pab_channel.dir/channel/timevarying.cpp.o.d"
  "CMakeFiles/pab_channel.dir/channel/water.cpp.o"
  "CMakeFiles/pab_channel.dir/channel/water.cpp.o.d"
  "libpab_channel.a"
  "libpab_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pab_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
