// Deployment-planning survey: where in a tank (or reef enclosure) can a
// battery-free node power up, and how long does cold start take?
//
// Sweeps node positions along both pools, computing incident pressure via the
// image-method channel, harvested DC power through the recto-piezo chain, and
// the time to charge the supercapacitor to the 2.5 V power-up threshold.
#include <cstdio>

#include "channel/tank.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/projector.hpp"
#include "energy/harvester.hpp"
#include "energy/mcu.hpp"

int main() {
  using namespace pab;

  constexpr double kCarrier = 15000.0;
  const core::Projector projector(piezo::make_projector_transducer(), 200.0);
  const auto node = circuit::make_recto_piezo(15000.0);
  const energy::McuPowerModel mcu;
  const double idle_w = mcu.idle_power_w();
  const double p1m = projector.pressure_at_1m(kCarrier);

  std::printf("PAB deployment survey (projector at 200 V, 15 kHz)\n");
  std::printf("==================================================\n");
  std::printf("source pressure at 1 m: %.0f Pa\n", p1m);
  std::printf("node idle draw: %.0f uW; power-up threshold 2.5 V\n", idle_w * 1e6);

  struct PoolScan {
    const char* name;
    channel::Tank tank;
    channel::Vec3 projector_pos;
    channel::Vec3 direction;
    double max_d;
  };
  const PoolScan scans[] = {
      {"Pool A (3x4 m)", channel::make_pool_a(), {0.2, 0.2, 0.65},
       {0.555, 0.74, 0.0}, 4.6},
      {"Pool B (1.2x10 m corridor)", channel::make_pool_b(), {0.6, 0.2, 0.5},
       {0.0, 1.0, 0.0}, 9.6},
  };

  for (const PoolScan& scan : scans) {
    std::printf("\n%s\n", scan.name);
    std::printf("dist [m]  incident [Pa]  harvest [uW]  Vrect [V]  cold start [s]\n");
    for (double d = 0.5; d <= scan.max_d; d += 0.5) {
      const channel::Vec3 rx{scan.projector_pos.x + scan.direction.x * d,
                             scan.projector_pos.y + scan.direction.y * d,
                             scan.projector_pos.z};
      if (!scan.tank.contains(rx)) break;
      const auto taps = channel::image_method_taps(scan.tank, scan.projector_pos,
                                                   rx, 2, kCarrier);
      const double p = p1m * channel::coherent_gain(taps, kCarrier);
      const double harvest = node.harvested_dc_power(kCarrier, p);
      const double vrect = node.rectified_open_voltage(kCarrier, p);
      const double t_up =
          energy::Harvester::time_to_power_up(harvest, vrect);
      const bool sustained = harvest >= idle_w && vrect >= 2.5;
      if (t_up > 0.0 && sustained) {
        std::printf("%7.1f   %11.1f   %10.1f   %8.2f   %10.1f\n", d, p,
                    harvest * 1e6, vrect, t_up);
      } else {
        std::printf("%7.1f   %11.1f   %10.1f   %8.2f   %10s\n", d, p,
                    harvest * 1e6, vrect, "no power-up");
      }
    }
  }

  std::printf("\nNodes beyond the power-up frontier need a stronger projector\n");
  std::printf("drive, a closer placement, or (future work) battery-assisted\n");
  std::printf("backscatter as discussed in the paper's section 8.\n");
  return 0;
}
