// Figure 10: SINR of concurrent backscatter transmissions before and after
// MIMO projection, across 8 node placements.
//
// Paper: before projection the SINR is low (< 3 dB -- backscatter is
// frequency-agnostic, so the two streams collide on both carriers); after
// zero-forcing projection it exceeds 3 dB at every location, with
// location-dependent values.
#include "bench_util.hpp"
#include "core/collision.hpp"
#include "util/stats.hpp"

namespace {

using namespace pab;

struct Location {
  channel::Vec3 node1, node2;
};

const Location kLocations[] = {
    {{1.0, 2.0, 0.65}, {2.0, 2.0, 0.65}},
    {{1.1, 1.8, 0.65}, {1.9, 2.3, 0.65}},
    {{0.9, 2.2, 0.55}, {2.1, 1.8, 0.75}},
    {{1.2, 2.4, 0.65}, {1.8, 1.7, 0.65}},
    {{1.0, 1.6, 0.70}, {2.0, 2.4, 0.60}},
    {{0.8, 2.0, 0.65}, {2.2, 2.1, 0.65}},
    {{1.3, 2.2, 0.60}, {1.7, 1.9, 0.70}},
    {{1.1, 2.5, 0.65}, {2.1, 2.5, 0.65}},
};

void print_series() {
  bench::print_header(
      "Figure 10", "SINR before/after MIMO projection, 8 locations, 2 nodes");
  const auto proj = core::Projector::ideal(300.0);
  const auto n1 = circuit::make_recto_piezo(15000.0);
  const auto n2 = circuit::make_recto_piezo(18000.0);

  bench::print_row({"location", "before1", "before2", "after1", "after2",
                    "cond(H)", "BER1", "BER2"});
  std::vector<double> gains;
  int after_above_3 = 0, total_streams = 0;
  int loc_idx = 0;
  for (const Location& loc : kLocations) {
    ++loc_idx;
    core::SimConfig sc = core::pool_a_config();
    sc.seed = 1000 + static_cast<std::uint64_t>(loc_idx);
    core::Placement pl;
    pl.projector = {1.5, 1.5, 0.65};
    pl.hydrophone = {1.5, 2.5, 0.65};
    pl.node = loc.node1;
    core::CollisionSimulator sim(sc, pl, loc.node2);
    const auto r = sim.run(proj, n1, n2, core::CollisionRunConfig{});
    for (int s = 0; s < 2; ++s) {
      gains.push_back(r.sinr_after_db[s] - r.sinr_before_db[s]);
      ++total_streams;
      if (r.sinr_after_db[s] > 3.0) ++after_above_3;
    }
    bench::print_row({bench::fmt(loc_idx, 0),
                      bench::fmt(r.sinr_before_db[0], 1),
                      bench::fmt(r.sinr_before_db[1], 1),
                      bench::fmt(r.sinr_after_db[0], 1),
                      bench::fmt(r.sinr_after_db[1], 1),
                      bench::fmt(r.condition_number, 1),
                      bench::fmt(r.ber_after[0], 3),
                      bench::fmt(r.ber_after[1], 3)});
  }
  std::printf("\nmean SINR gain from projection: %.1f dB\n", mean(gains));
  std::printf("streams above 3 dB after projection: %d / %d\n", after_above_3,
              total_streams);
  std::printf("Paper shape: before < 3 dB (collisions), after > 3 dB at all\n"
              "locations; location-dependent values.\n");
}

void bm_collision_run(benchmark::State& state) {
  core::SimConfig sc = core::pool_a_config();
  core::Placement pl;
  pl.projector = {1.5, 1.5, 0.65};
  pl.hydrophone = {1.5, 2.5, 0.65};
  pl.node = {1.0, 2.0, 0.65};
  core::CollisionSimulator sim(sc, pl, {2.0, 2.0, 0.65});
  const auto proj = core::Projector::ideal(300.0);
  const auto n1 = circuit::make_recto_piezo(15000.0);
  const auto n2 = circuit::make_recto_piezo(18000.0);
  for (auto _ : state) {
    auto r = sim.run(proj, n1, n2, core::CollisionRunConfig{});
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(bm_collision_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return pab::bench::run_bench_main(argc, argv, print_series);
}
