// Code-division multiple access baseline.
//
// Paper footnote 4: "CDMA requires the same overall bandwidth as standard
// FDMA since it uses a spreading code at a higher rate than the transmitted
// signals, thus requiring a larger frequency (as it is a spread spectrum
// technology)."  This module implements the baseline so the claim can be
// measured: Walsh-Hadamard spreading over a single carrier, correlation
// despreading, and the resulting rate/bandwidth/near-far numbers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitops.hpp"

namespace pab::phy {

// Walsh-Hadamard code of `length` (power of two), row `index`.
// Rows are mutually orthogonal over one code period.
[[nodiscard]] std::vector<std::int8_t> walsh_code(std::size_t length,
                                                  std::size_t index);

// Spread data chips (+/-1) by a code: output rate = input rate * code length.
[[nodiscard]] std::vector<std::int8_t> cdma_spread(
    std::span<const std::int8_t> data_chips, std::span<const std::int8_t> code);

// Correlate a received soft stream against a code: one soft data chip per
// code period.
[[nodiscard]] std::vector<double> cdma_despread(std::span<const double> rx,
                                                std::span<const std::int8_t> code);

// Occupied (null-to-null main lobe) bandwidth of a binary-modulated
// backscatter stream at `symbol_rate` symbols/s: ~2x the switching rate.
[[nodiscard]] double occupied_bandwidth_hz(double symbol_rate);

// Cross-correlation magnitude between two codes with a relative chip offset
// (codes are only orthogonal at zero offset -- the synchronization burden of
// backscatter CDMA).
[[nodiscard]] double code_cross_correlation(std::span<const std::int8_t> a,
                                            std::span<const std::int8_t> b,
                                            std::size_t offset);

// ---- into-output kernels (allocation-free; wrapped by the above) ----

// out.size() must equal `length` (power of two).
void walsh_code_into(std::size_t index, std::span<std::int8_t> out);

// out.size() must equal data_chips.size() * code.size().
void cdma_spread_into(std::span<const std::int8_t> data_chips,
                      std::span<const std::int8_t> code,
                      std::span<std::int8_t> out);

// out.size() must equal rx.size() / code.size() (whole periods only).
void cdma_despread_into(std::span<const double> rx,
                        std::span<const std::int8_t> code,
                        std::span<double> out);

}  // namespace pab::phy
