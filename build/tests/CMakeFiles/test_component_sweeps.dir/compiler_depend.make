# Empty compiler generated dependencies file for test_component_sweeps.
# This may be replaced when dependencies are built.
