#include "sense/ms5837.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pab::sense {
namespace {

// Typical calibration constants for an MS5837-30BA (datasheet example values).
constexpr std::array<std::uint16_t, 8> kTypicalProm = {
    0x0000, 34982, 36352, 20328, 22354, 26646, 26146, 0x0000};

std::vector<std::uint8_t> pack_u16(std::uint16_t v) {
  return {static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v & 0xFF)};
}

std::vector<std::uint8_t> pack_u24(std::uint32_t v) {
  return {static_cast<std::uint8_t>((v >> 16) & 0xFF),
          static_cast<std::uint8_t>((v >> 8) & 0xFF),
          static_cast<std::uint8_t>(v & 0xFF)};
}

}  // namespace

Ms5837Device::Ms5837Device(const Environment* env, double depth_m, pab::Rng rng)
    : env_(env), depth_m_(depth_m), rng_(rng), prom_(kTypicalProm) {
  pab::require(env != nullptr, "Ms5837Device: null environment");
}

std::uint32_t Ms5837Device::raw_d2() const {
  // Invert the compensation: D2 = C5*2^8 + (TEMP - 2000) * 2^23 / C6,
  // TEMP in centi-degC.
  const double temp_centi = env_->temperature_c * 100.0;
  const double d2 = static_cast<double>(prom_[5]) * 256.0 +
                    (temp_centi - 2000.0) * 8388608.0 / static_cast<double>(prom_[6]);
  return static_cast<std::uint32_t>(std::llround(d2));
}

std::uint32_t Ms5837Device::raw_d1() const {
  const double d2 = static_cast<double>(raw_d2());
  const double dt = d2 - static_cast<double>(prom_[5]) * 256.0;
  const double off = static_cast<double>(prom_[2]) * 65536.0 +
                     static_cast<double>(prom_[4]) * dt / 128.0;
  const double sens = static_cast<double>(prom_[1]) * 32768.0 +
                      static_cast<double>(prom_[3]) * dt / 256.0;
  // P (0.1 mbar) = (D1 * SENS / 2^21 - OFF) / 2^13  =>  invert for D1.
  const double p_01mbar = env_->pressure_at_depth_mbar(depth_m_) * 10.0;
  const double d1 = (p_01mbar * 8192.0 + off) * 2097152.0 / sens;
  return static_cast<std::uint32_t>(std::llround(d1));
}

void Ms5837Device::write(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  last_command_ = data[0];
  if (last_command_ == kMs5837CmdConvertD1) {
    adc_result_ = raw_d1() + static_cast<std::uint32_t>(rng_.uniform_int(-3, 3));
  } else if (last_command_ == kMs5837CmdConvertD2) {
    adc_result_ = raw_d2() + static_cast<std::uint32_t>(rng_.uniform_int(-3, 3));
  } else if (last_command_ == kMs5837CmdReset) {
    adc_result_ = 0;
  }
}

std::vector<std::uint8_t> Ms5837Device::read(std::size_t n) {
  if (last_command_ >= kMs5837CmdPromBase &&
      last_command_ < kMs5837CmdPromBase + 16 && n >= 2) {
    const std::size_t idx = (last_command_ - kMs5837CmdPromBase) / 2;
    return pack_u16(prom_[idx]);
  }
  if (last_command_ == kMs5837CmdAdcRead && n >= 3) return pack_u24(adc_result_);
  return std::vector<std::uint8_t>(n, 0);
}

Ms5837Driver::Ms5837Driver(I2cBus* bus) : bus_(bus) {
  pab::require(bus != nullptr, "Ms5837Driver: null bus");
}

pab::Expected<Ms5837Reading> Ms5837Driver::measure() {
  using pab::ErrorCode;
  if (!prom_loaded_) {
    for (std::size_t i = 0; i < prom_.size(); ++i) {
      const std::uint8_t cmd = static_cast<std::uint8_t>(kMs5837CmdPromBase + 2 * i);
      if (bus_->write(kMs5837Address, std::span(&cmd, 1)) != ErrorCode::kOk)
        return pab::Error{ErrorCode::kBusError, "PROM read NACK"};
      auto word = bus_->read(kMs5837Address, 2);
      if (!word.ok()) return word.error();
      prom_[i] = static_cast<std::uint16_t>((word.value()[0] << 8) | word.value()[1]);
    }
    prom_loaded_ = true;
  }

  auto convert = [&](std::uint8_t cmd) -> pab::Expected<std::uint32_t> {
    if (bus_->write(kMs5837Address, std::span(&cmd, 1)) != ErrorCode::kOk)
      return pab::Error{ErrorCode::kBusError, "convert NACK"};
    const std::uint8_t rd = kMs5837CmdAdcRead;
    if (bus_->write(kMs5837Address, std::span(&rd, 1)) != ErrorCode::kOk)
      return pab::Error{ErrorCode::kBusError, "adc-read NACK"};
    auto raw = bus_->read(kMs5837Address, 3);
    if (!raw.ok()) return raw.error();
    return static_cast<std::uint32_t>((raw.value()[0] << 16) |
                                      (raw.value()[1] << 8) | raw.value()[2]);
  };

  auto d1 = convert(kMs5837CmdConvertD1);
  if (!d1.ok()) return d1.error();
  auto d2 = convert(kMs5837CmdConvertD2);
  if (!d2.ok()) return d2.error();
  return compensate(d1.value(), d2.value(), prom_);
}

Ms5837Reading Ms5837Driver::compensate(std::uint32_t d1, std::uint32_t d2,
                                       const std::array<std::uint16_t, 8>& prom) {
  // First-order algorithm from the MS5837-30BA datasheet (integer domain).
  const std::int64_t dt =
      static_cast<std::int64_t>(d2) - (static_cast<std::int64_t>(prom[5]) << 8);
  const std::int64_t temp =
      2000 + (dt * static_cast<std::int64_t>(prom[6]) >> 23);
  const std::int64_t off = (static_cast<std::int64_t>(prom[2]) << 16) +
                           ((static_cast<std::int64_t>(prom[4]) * dt) >> 7);
  const std::int64_t sens = (static_cast<std::int64_t>(prom[1]) << 15) +
                            ((static_cast<std::int64_t>(prom[3]) * dt) >> 8);
  const std::int64_t p =
      (((static_cast<std::int64_t>(d1) * sens) >> 21) - off) >> 13;

  Ms5837Reading r;
  r.temperature_c = static_cast<double>(temp) / 100.0;
  r.pressure_mbar = static_cast<double>(p) / 10.0;
  return r;
}

}  // namespace pab::sense
