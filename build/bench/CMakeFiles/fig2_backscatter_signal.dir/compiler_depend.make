# Empty compiler generated dependencies file for fig2_backscatter_signal.
# This may be replaced when dependencies are built.
