// Hierarchical (zoned) inventory scheduling for deployment-scale fields.
//
// A single framed-slotted-ALOHA inventory cannot address 1000+ nodes: node
// ids are uint8 on the wire and every extra node stretches the shared frame.
// The deployment answer is hierarchy -- partition the field into spatial
// zones small enough for the flat protocol, then let *non-interfering* zones
// run concurrently on distinct FDMA carriers (spatial channel reuse), with
// interfering zones serialized into sequential rounds.
//
// Layering: mac sits below channel, so zones arrive as plain data (node
// memberships by global index plus a zone-interference adjacency) computed
// upstream by the sim layer from channel::SpatialIndex.  Everything here is a
// pure function of that data: greedy coloring in zone-id order, carriers from
// mac::plan_channels (whose over-subscription result maps color -> (carrier,
// round)), and the timed inventory of mac/inventory.hpp per zone.
//
// Timeline contract: zones scheduled in the same round are concurrent -- each
// runs on its own zone-local sub-timeline -- and the master timeline elapses
// one "mac.zone.round" of the *maximum* concurrent zone duration per round
// (the honest wall: the reader round ends when its slowest zone does).  Each
// zone also posts a "mac.zone.inventory" charge carrying its own duration.
// Everything is deterministic: zone order, per-zone seeds, and the master
// log are pure functions of the inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mac/fdma.hpp"
#include "mac/inventory.hpp"

namespace pab::sim {
class Timeline;
}  // namespace pab::sim

namespace pab::mac {

// Plain-data zone partition handed down from the sim layer.  `members[z]`
// holds ascending global node indices; `adjacency[z]` the zones whose
// concurrent operation would interfere with z (symmetric, no self-loops).
struct ZoneLayout {
  std::vector<std::vector<std::uint32_t>> members;
  std::vector<std::vector<std::uint32_t>> adjacency;
};

struct ZoneAssignment {
  std::uint32_t color = 0;   // interfering zones always differ
  double carrier_hz = 0.0;   // plan.carrier_for(color)
  std::uint32_t round = 0;   // color / plan.channels(): sequential reuse round
};

struct ZoneSchedule {
  ChannelPlan plan;  // distinct carriers + over-subscription bookkeeping
  std::vector<ZoneAssignment> zones;
  std::size_t colors = 0;
  std::size_t rounds = 0;  // sequential rounds (1 unless colors > channels)
};

// Greedy interference coloring in zone-id order (deterministic: lowest free
// color), then color -> (carrier, round) through the over-subscribed channel
// plan: colors beyond the distinct channel count wrap onto the same carriers
// in later rounds.
[[nodiscard]] ZoneSchedule plan_zones(const ZoneLayout& layout,
                                      const ChannelPlanConfig& config = {});

struct ZonedInventoryOptions {
  double frame_announce_s = 0.05;  // per-frame announcement airtime
  double slot_s = 0.02;            // one reply slot
  // Availability by *global* node index at master-timeline time; null means
  // always available.
  std::function<bool(std::uint32_t node, double t)> available;
};

struct ZonedInventoryResult {
  // Global node indices in discovery order: rounds ascending, zones by id
  // within a round, per-zone discovery order within a zone.
  std::vector<std::uint32_t> identified;
  InventoryStats inventory;  // summed over every zone
  std::size_t zones = 0;
  std::size_t rounds = 0;
  double simulated_s = 0.0;  // sum of per-round maxima (the master elapse)
};

// Runs the zoned inventory on `timeline`.  Zone-local node ids are uint8
// (1..members), so every zone must hold at most 200 members -- the zoning
// itself is what lifts the flat protocol's uint8 limit to arbitrary
// populations.  Per-zone randomness derives from config.seed and the zone id,
// never from zone execution order.
[[nodiscard]] ZonedInventoryResult run_zoned_inventory(
    const ZoneLayout& layout, const ZoneSchedule& schedule,
    const InventoryConfig& config, sim::Timeline& timeline,
    const ZonedInventoryOptions& options = {});

}  // namespace pab::mac
