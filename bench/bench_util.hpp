// Shared helpers for the figure-regeneration benches.
//
// Each bench binary prints the series of one of the paper's evaluation
// figures, runs google-benchmark timings of the hot kernels involved, and
// writes a metrics JSON sidecar (`<bench>.metrics.json`, next to wherever the
// bench was run) holding every instrument the run touched in the process-wide
// obs::MetricRegistry -- cache hit rates, per-stage decode timings, worker
// balance.  The sidecar is the profiling baseline later perf work reports
// against.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace pab::bench {

inline void print_header(const char* figure, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", figure, description);
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-14s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_sci(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

// `<basename of argv0>.metrics.json` in the working directory.
inline std::string metrics_sidecar_path(const char* argv0) {
  std::string_view name = argv0 != nullptr ? argv0 : "bench";
  if (const auto slash = name.rfind('/'); slash != std::string_view::npos)
    name.remove_prefix(slash + 1);
  return std::string(name) + ".metrics.json";
}

// Dump `registry` as the bench's metrics sidecar; returns the path ("" on
// I/O failure).  run_bench_main calls this with the global registry -- call
// it directly only for an isolated registry.
inline std::string write_metrics_sidecar(
    const char* argv0,
    const obs::MetricRegistry& registry = obs::MetricRegistry::global()) {
  const std::string path = metrics_sidecar_path(argv0);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  const std::string json = registry.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return path;
}

// Print the figure series via `print_series`, run registered google-benchmark
// timings, then emit the metrics sidecar from the global registry.
inline int run_bench_main(int argc, char** argv, void (*print_series)()) {
  print_series();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const std::string sidecar = write_metrics_sidecar(argc > 0 ? argv[0] : nullptr);
  if (!sidecar.empty())
    std::printf("\nmetrics sidecar: %s\n", sidecar.c_str());
  return 0;
}

}  // namespace pab::bench
