# Empty compiler generated dependencies file for test_piezo.
# This may be replaced when dependencies are built.
