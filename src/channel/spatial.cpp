#include "channel/spatial.hpp"

#include <algorithm>
#include <cmath>

#include "channel/water.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace pab::channel {

namespace {

std::int64_t cell_coord(double v, double cell_m) {
  return static_cast<std::int64_t>(std::floor(v / cell_m));
}

}  // namespace

SpatialIndex::SpatialIndex(std::span<const Vec3> points, double cell_m)
    : points_(points.begin(), points.end()), cell_m_(cell_m) {
  require(cell_m > 0.0, "SpatialIndex: cell size must be positive");
  for (std::size_t i = 0; i < points_.size(); ++i)
    cells_[cell_of(i)].push_back(static_cast<std::uint32_t>(i));
}

std::array<std::int64_t, 3> SpatialIndex::cell_of(std::size_t i) const {
  const Vec3& p = points_.at(i);
  return {cell_coord(p.x, cell_m_), cell_coord(p.y, cell_m_),
          cell_coord(p.z, cell_m_)};
}

void SpatialIndex::neighbors_within(std::size_t i, double radius,
                                    std::vector<std::uint32_t>& out) const {
  out.clear();
  if (radius < 0.0) return;
  const Vec3& p = points_.at(i);
  const auto [cx, cy, cz] = cell_of(i);
  const std::int64_t reach =
      static_cast<std::int64_t>(std::ceil(radius / cell_m_));
  for (std::int64_t dx = -reach; dx <= reach; ++dx) {
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
      for (std::int64_t dz = -reach; dz <= reach; ++dz) {
        const auto it = cells_.find(CellKey{cx + dx, cy + dy, cz + dz});
        if (it == cells_.end()) continue;
        for (const std::uint32_t j : it->second) {
          if (j == i) continue;
          if (distance(p, points_[j]) <= radius) out.push_back(j);
        }
      }
    }
  }
  // Cells were visited in grid order, not index order.
  std::sort(out.begin(), out.end());
}

double cull_radius_m(double gain_floor, double freq_hz, double max_radius_m) {
  require(gain_floor > 0.0, "cull_radius_m: gain floor must be positive");
  require(max_radius_m > 0.0, "cull_radius_m: max radius must be positive");
  if (path_amplitude_gain(max_radius_m, freq_hz) >= gain_floor)
    return max_radius_m;
  // path_amplitude_gain is monotone decreasing in distance, so bisect for
  // the crossing and keep the upper bracket (never cull a link at the floor).
  double lo = 1.0e-3, hi = max_radius_m;
  if (path_amplitude_gain(lo, freq_hz) < gain_floor) return lo;
  for (int iter = 0; iter < 200 && (hi - lo) > 1.0e-6; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (path_amplitude_gain(mid, freq_hz) >= gain_floor)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> cull_pairs(
    const SpatialIndex& index, double radius, CullStats* stats) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> kept;
  std::vector<std::uint32_t> scratch;
  const std::size_t n = index.size();
  for (std::size_t i = 0; i < n; ++i) {
    index.neighbors_within(i, radius, scratch);
    for (const std::uint32_t j : scratch)
      if (j > i) kept.emplace_back(static_cast<std::uint32_t>(i), j);
  }
  if (stats != nullptr) {
    stats->total_pairs = static_cast<std::uint64_t>(n) * (n - (n > 0 ? 1 : 0)) / 2;
    stats->kept_pairs = kept.size();
    stats->culled_pairs = stats->total_pairs - stats->kept_pairs;
  }
  return kept;
}

double aggregate_power_gain(std::span<const Vec3> points,
                            std::span<const std::uint32_t> indices,
                            const Vec3& rx, double freq_hz) {
  NeumaierSum sum;
  for (const std::uint32_t i : indices) {
    require(i < points.size(), "aggregate_power_gain: index out of range");
    const double d = std::max(distance(points[i], rx), 1e-6);
    const double g = path_amplitude_gain(d, freq_hz);
    sum.add(g * g);
  }
  return sum.value();
}

}  // namespace pab::channel
