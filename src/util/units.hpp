// Strong unit helpers and physical constants used across the PAB stack.
//
// The library passes plain `double` in SI units at module boundaries; these
// helpers make conversions explicit and self-documenting instead of scattering
// magic factors through the code.
#pragma once

#include <cmath>
#include <numbers>

namespace pab {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Reference sound pressure for underwater acoustics (1 micropascal).
inline constexpr double kRefPressurePa = 1e-6;

// Nominal density of fresh water at ~20 C [kg/m^3].
inline constexpr double kWaterDensity = 998.0;

// Nominal sound speed in fresh water at ~20 C [m/s]; precise values come from
// pab::channel::sound_speed_mackenzie.
inline constexpr double kNominalSoundSpeed = 1481.0;

// --- Decibel helpers ------------------------------------------------------

// Power ratio -> dB.  `ratio` must be > 0.
[[nodiscard]] inline double db_from_power_ratio(double ratio) {
  return 10.0 * std::log10(ratio);
}

// Amplitude ratio -> dB.
[[nodiscard]] inline double db_from_amplitude_ratio(double ratio) {
  return 20.0 * std::log10(ratio);
}

[[nodiscard]] inline double power_ratio_from_db(double db) {
  return std::pow(10.0, db / 10.0);
}

[[nodiscard]] inline double amplitude_ratio_from_db(double db) {
  return std::pow(10.0, db / 20.0);
}

// Sound pressure level re 1 uPa of an RMS pressure in pascal.
[[nodiscard]] inline double spl_db_re_upa(double pressure_rms_pa) {
  return db_from_amplitude_ratio(pressure_rms_pa / kRefPressurePa);
}

[[nodiscard]] inline double pressure_pa_from_spl(double spl_db) {
  return kRefPressurePa * amplitude_ratio_from_db(spl_db);
}

// --- Frequency / time conversions ----------------------------------------

[[nodiscard]] inline constexpr double khz(double v) { return v * 1e3; }
[[nodiscard]] inline constexpr double mhz(double v) { return v * 1e6; }
[[nodiscard]] inline constexpr double ms(double v) { return v * 1e-3; }
[[nodiscard]] inline constexpr double us(double v) { return v * 1e-6; }
[[nodiscard]] inline constexpr double milli(double v) { return v * 1e-3; }
[[nodiscard]] inline constexpr double micro(double v) { return v * 1e-6; }
[[nodiscard]] inline constexpr double nano(double v) { return v * 1e-9; }
[[nodiscard]] inline constexpr double pico(double v) { return v * 1e-12; }

// Wavelength of an acoustic signal.
[[nodiscard]] inline double wavelength(double frequency_hz,
                                       double sound_speed = kNominalSoundSpeed) {
  return sound_speed / frequency_hz;
}

}  // namespace pab
