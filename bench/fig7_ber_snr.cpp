// Figure 7: BER vs SNR curve of the backscatter link.
//
// Paper: BER decreases with SNR; the decoder needs a minimum SNR around 2 dB
// (typical for biphase modulation like FM0) and BER drops to 1e-5 above
// ~11 dB (floored at 1e-5 by the packet sizes used).
//
// Monte-Carlo at chip level: FM0-encode random payloads, add calibrated AWGN
// to the soft chips, ML-decode, count errors.  Trials fan out over a
// sim::BatchRunner; trial i of each SNR point draws from RNG substream i, so
// the curve is bit-identical at any thread count (verified below).
#include <chrono>

#include "bench_util.hpp"
#include "obs/alloccount.hpp"
#include "phy/fm0.hpp"
#include "phy/metrics.hpp"
#include "sim/batch.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace pab;

constexpr std::size_t kBitsPerTrial = 1000;
constexpr std::size_t kTrialsPerPoint = 512;  // 512 kbit per SNR point
constexpr double kBerFloor = 1e-5;  // paper: packets always < 1e5 bits
constexpr std::uint64_t kBaseSeed = 77;

// Bit errors of one chip-level trial at the given noise sigma.
std::size_t trial_errors(double sigma, Rng& rng) {
  const auto bits = rng.bits(kBitsPerTrial);
  const auto chips = phy::fm0_encode(bits);
  std::vector<double> soft(chips.size());
  for (std::size_t i = 0; i < soft.size(); ++i)
    soft[i] = chips[i] + rng.gaussian(0.0, sigma);
  return hamming_distance(bits, phy::fm0_decode_ml(soft));
}

// Total bit errors at one SNR point, fanned over the pool.  Point `point`
// seeds its trials from base seed kBaseSeed + point, so every (point, trial)
// pair maps to one fixed RNG substream regardless of scheduling.
std::size_t measure_errors(double snr_db, std::size_t point,
                           const sim::BatchRunner& pool) {
  const double sigma = 1.0 / std::sqrt(power_ratio_from_db(snr_db));
  const auto errors = pool.map_seeded(
      kTrialsPerPoint, kBaseSeed + point,
      [&](std::size_t, Rng& rng) { return trial_errors(sigma, rng); });
  std::size_t total = 0;
  for (std::size_t e : errors) total += e;
  return total;
}

std::vector<double> snr_grid() {
  std::vector<double> grid;
  for (double snr = 0.0; snr <= 18.0 + 0.1; snr += 1.0) grid.push_back(snr);
  return grid;
}

// The whole sweep at a given thread count; returns total errors per point.
std::vector<std::size_t> sweep(const sim::BatchRunner& pool) {
  const auto grid = snr_grid();
  std::vector<std::size_t> errors;
  errors.reserve(grid.size());
  for (std::size_t p = 0; p < grid.size(); ++p)
    errors.push_back(measure_errors(grid[p], p, pool));
  return errors;
}

void print_series() {
  bench::print_header("Figure 7", "BER-SNR curve (FM0 ML decoding)");
  constexpr double kBitsPerPoint =
      static_cast<double>(kBitsPerTrial * kTrialsPerPoint);

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto serial = sweep(sim::BatchRunner(1));
  const auto t1 = clock::now();
  const auto parallel = sweep(sim::BatchRunner(8));
  const auto t2 = clock::now();

  const auto grid = snr_grid();
  bench::print_row({"SNR [dB]", "BER"});
  double snr_at_decode_floor = -1.0, snr_at_1e5 = -1.0;
  for (std::size_t p = 0; p < grid.size(); ++p) {
    const double ber = std::max(
        static_cast<double>(serial[p]) / kBitsPerPoint, kBerFloor);
    bench::print_row({bench::fmt(grid[p], 1), bench::fmt_sci(ber)});
    if (snr_at_decode_floor < 0.0 && ber < 0.1) snr_at_decode_floor = grid[p];
    if (snr_at_1e5 < 0.0 && ber <= kBerFloor) snr_at_1e5 = grid[p];
  }
  std::printf("\nDecodable (BER < 10%%) from ~%.0f dB  (paper: ~2 dB)\n",
              snr_at_decode_floor);
  std::printf("BER reaches the 1e-5 floor at ~%.0f dB (paper: ~11 dB)\n",
              snr_at_1e5);

  const double serial_s = std::chrono::duration<double>(t1 - t0).count();
  const double parallel_s = std::chrono::duration<double>(t2 - t1).count();
  std::printf("\nBatchRunner: serial %.2f s, 8 threads %.2f s (%.2fx, %u cores)\n",
              serial_s, parallel_s, serial_s / std::max(parallel_s, 1e-9),
              std::thread::hardware_concurrency());
  std::printf("per-point error counts bit-identical across thread counts: %s\n",
              serial == parallel ? "yes" : "NO -- DETERMINISM BROKEN");

  // Waveform-level cross-check: a short full-pipeline run (projector ->
  // tank multipath -> recto-piezo backscatter -> hydrophone -> receiver
  // chain) in Pool A.  Besides validating that the end-to-end link decodes
  // where the chip-level curve says it should, this populates the metrics
  // sidecar with the TapCache hit rate and the per-stage decode timings
  // (phy.demod.*) of the real receiver.
  const sim::Session session(sim::Scenario::pool_a().with_seed(kBaseSeed));
  constexpr std::size_t kWaveformTrials = 16;
  const auto trials =
      sim::BatchRunner(4).run<sim::TrialKind::kUplink>(session, kWaveformTrials);
  std::size_t decoded = 0;
  double ber_sum = 0.0, snr_sum = 0.0;
  for (const auto& t : trials) {
    if (!t.ok()) continue;
    ++decoded;
    ber_sum += t.value().ber;
    snr_sum += t.value().demod.snr_db;
  }
  const auto& taps = *session.tap_cache();
  std::printf("\nWaveform-level (Pool A, %zu trials): %zu/%zu decoded, "
              "mean BER %.2e at %.1f dB chip SNR\n",
              kWaveformTrials, decoded, kWaveformTrials,
              decoded > 0 ? ber_sum / static_cast<double>(decoded) : 1.0,
              decoded > 0 ? snr_sum / static_cast<double>(decoded) : 0.0);
  std::printf("TapCache: %llu lookups, %llu evaluations (hit rate %.1f %%)\n",
              static_cast<unsigned long long>(taps.lookups()),
              static_cast<unsigned long long>(taps.evaluations()),
              100.0 * (1.0 - static_cast<double>(taps.evaluations()) /
                                 static_cast<double>(taps.lookups())));

  // Zero-allocation signal path, before vs after: the same waveform-level
  // trials through the per-trial-allocation API (run_trial, fresh UplinkTrial
  // and workspace buffers every call) and through the pooled-workspace API
  // (run_into(), reused UplinkTrial).  Identical results by construction --
  // this measures only the allocation cost.  This bench links the counting
  // allocator (pab::alloccount), so it can also report allocations/trial.
  constexpr std::size_t kThroughputTrials = 24;
  const auto t3 = clock::now();
  const obs::AllocScope alloc_before;
  for (std::size_t i = 0; i < kThroughputTrials; ++i)
    (void)session.run_trial<sim::TrialKind::kUplink>(i);
  const std::uint64_t allocs_before = alloc_before.allocations();
  const auto t4 = clock::now();
  sim::Session::UplinkTrial reused;
  (void)session.run_into(0, reused);  // warm the pooled workspace + buffers
  const auto t5 = clock::now();
  const obs::AllocScope alloc_after;
  for (std::size_t i = 0; i < kThroughputTrials; ++i)
    (void)session.run_into(i, reused);
  const std::uint64_t allocs_after = alloc_after.allocations();
  const auto t6 = clock::now();

  const double before_s = std::chrono::duration<double>(t4 - t3).count();
  const double after_s = std::chrono::duration<double>(t6 - t5).count();
  const double tps_before = static_cast<double>(kThroughputTrials) /
                            std::max(before_s, 1e-9);
  const double tps_after = static_cast<double>(kThroughputTrials) /
                           std::max(after_s, 1e-9);
  std::printf("\nZero-allocation path: %.1f trials/s allocating (%.1f allocs/"
              "trial) -> %.1f trials/s pooled (%.1f allocs/trial), %.2fx\n",
              tps_before,
              static_cast<double>(allocs_before) / kThroughputTrials,
              tps_after,
              static_cast<double>(allocs_after) / kThroughputTrials,
              tps_after / std::max(tps_before, 1e-9));

  auto& reg = obs::MetricRegistry::global();
  // Headline throughput of the steady-state trial path (pooled workspace),
  // asserted by CI alongside the dsp.simd.* / dsp.fftconv.* dispatch keys.
  reg.gauge("bench.fig7.trials_per_sec").set(tps_after);
  reg.gauge("bench.fig7.trials_per_sec_before").set(tps_before);
  reg.gauge("bench.fig7.trials_per_sec_after").set(tps_after);
  reg.gauge("bench.fig7.speedup").set(tps_after / std::max(tps_before, 1e-9));
  reg.gauge("bench.fig7.allocs_per_trial_before")
      .set(static_cast<double>(allocs_before) / kThroughputTrials);
  reg.gauge("bench.fig7.allocs_per_trial_after")
      .set(static_cast<double>(allocs_after) / kThroughputTrials);
}

void bm_fm0_ml_decode(benchmark::State& state) {
  Rng rng(7);
  const auto bits = rng.bits(1000);
  const auto chips = phy::fm0_encode(bits);
  std::vector<double> soft(chips.size());
  for (std::size_t i = 0; i < soft.size(); ++i)
    soft[i] = chips[i] + rng.gaussian(0.0, 0.5);
  for (auto _ : state) {
    auto decoded = phy::fm0_decode_ml(soft);
    benchmark::DoNotOptimize(decoded.data());
  }
}
BENCHMARK(bm_fm0_ml_decode)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "fig7_ber_snr";
  spec.description = "BER-SNR curve (FM0 ML decoding)";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "fig7_ber_snr";
  sweep.kind = pab::sim::TrialKind::kUplink;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 64;
  sweep.base_seed = 77;
  sweep.axes.push_back({"noise.psd_db_re_upa", {35.0, 45.0, 55.0, 65.0}});
  spec.campaign = std::move(sweep);
  spec.required_counters = {"sim.session.trials", "sim.batch.trials", "phy.demod.attempts"};
  return pab::bench::run_bench_main(argc, argv, spec);
}
