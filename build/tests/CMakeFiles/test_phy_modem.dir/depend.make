# Empty dependencies file for test_phy_modem.
# This may be replaced when dependencies are built.
