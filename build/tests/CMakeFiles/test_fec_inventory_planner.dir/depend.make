# Empty dependencies file for test_fec_inventory_planner.
# This may be replaced when dependencies are built.
