// Thread-safe memoization of image-method tap sets.
//
// Image-method enumeration is the single hottest per-trial cost of the
// waveform simulators, yet for a fixed scenario only a handful of
// (endpoint, endpoint, carrier) combinations ever occur.  A TapCache computes
// each combination once and hands out shared immutable tap sets; concurrent
// Monte-Carlo trials (sim::BatchRunner) share one cache per session.
//
// Keys compare the exact double bit patterns of the endpoints and frequency:
// two lookups hit the same entry iff they describe bit-identical geometry,
// which is what deterministic replay requires.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "channel/tank.hpp"
#include "obs/metrics.hpp"

namespace pab::channel {

class TapCache {
 public:
  using Taps = std::vector<PathTap>;

  // The tank, reflection order, and propagation mode are fixed per cache
  // (they come from the scenario); only geometry and carrier vary per lookup.
  // With a registry the cache reports `channel.tapcache.{hits,misses}`
  // counters (one relaxed atomic increment per lookup -- hot-path safe).
  TapCache(Tank tank, int max_image_order, bool use_image_method,
           obs::MetricRegistry* metrics = nullptr);

  // Memoized taps for the (a -> b, freq_hz) path.  The returned pointer stays
  // valid for the cache's lifetime and is safe to read from any thread.
  [[nodiscard]] std::shared_ptr<const Taps> taps(const Vec3& a, const Vec3& b,
                                                 double freq_hz) const;

  // Observability for regression tests: how many tap sets were actually
  // computed vs how many lookups were served.
  [[nodiscard]] std::uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Tank& tank() const { return tank_; }
  [[nodiscard]] int max_image_order() const { return max_image_order_; }
  [[nodiscard]] bool use_image_method() const { return use_image_method_; }

 private:
  struct Key {
    std::uint64_t bits[7];  // a.xyz, b.xyz, freq as raw IEEE-754 patterns
    bool operator==(const Key& o) const {
      for (int i = 0; i < 7; ++i)
        if (bits[i] != o.bits[i]) return false;
      return true;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  Tank tank_;
  int max_image_order_;
  bool use_image_method_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;

  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<Key, std::shared_ptr<const Taps>, KeyHash> cache_;
  mutable std::atomic<std::uint64_t> evaluations_{0};
  mutable std::atomic<std::uint64_t> lookups_{0};
};

}  // namespace pab::channel
