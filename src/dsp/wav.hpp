// Minimal RIFF/WAVE I/O for hydrophone captures.
//
// The paper records the hydrophone through a PC sound card with Audacity and
// decodes offline in MATLAB (section 5.1b).  These helpers let simulated (or
// real) captures round-trip through standard mono WAV files so the same
// offline workflow works here: dump a capture, reload it, decode it.
#pragma once

#include <string>

#include "dsp/signal.hpp"
#include "util/error.hpp"

namespace pab::dsp {

// Write a mono 16-bit PCM WAV.  Samples are scaled by `full_scale` (values at
// +/-full_scale map to +/-32767) and clipped beyond it.
[[nodiscard]] pab::ErrorCode write_wav(const std::string& path, const Signal& signal,
                                       double full_scale = 1.0);

// Read a mono (or first-channel of a multichannel) 16-bit PCM WAV back into
// a Signal, scaled so +/-32767 maps to +/-full_scale.
[[nodiscard]] pab::Expected<Signal> read_wav(const std::string& path,
                                             double full_scale = 1.0);

}  // namespace pab::dsp
