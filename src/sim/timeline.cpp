#include "sim/timeline.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace pab::sim {

void Timeline::record(double t, std::uint64_t seq, std::string_view label,
                      double value, TimelineEventKind kind) {
  if (logging_)
    log_.push_back(TimelineEvent{t, seq, std::string(label), value, kind});
  auto it = sums_.find(label);
  if (it == sums_.end())
    it = sums_.emplace(std::string(label), NeumaierSum{}).first;
  it->second.add(value);
  ++processed_;
}

std::uint64_t Timeline::schedule_at(double t, std::string_view label,
                                    TimelineCallback fn, double value) {
  require(t >= now_, "Timeline: cannot schedule in the past");
  const std::uint64_t id = next_seq_++;
  queue_.emplace(std::pair{t, id}, Scheduled{std::string(label), value,
                                             std::move(fn)});
  id_time_.emplace(id, t);
  return id;
}

std::uint64_t Timeline::schedule_in(double dt, std::string_view label,
                                    TimelineCallback fn, double value) {
  require(dt >= 0.0, "Timeline: negative delay");
  return schedule_at(now_ + dt, label, std::move(fn), value);
}

bool Timeline::cancel(std::uint64_t id) {
  const auto it = id_time_.find(id);
  if (it == id_time_.end()) return false;
  queue_.erase({it->second, id});
  id_time_.erase(it);
  return true;
}

void Timeline::charge(std::string_view label, double value) {
  record(now_, next_seq_++, label, value, TimelineEventKind::kCharge);
}

void Timeline::elapse(double dt, std::string_view label) {
  require(dt >= 0.0, "Timeline: negative elapse");
  // Fire everything due inside the interval first: elapse must not jump the
  // clock past scheduled work, or those events would run late and the log
  // would go non-monotonic.
  run_until(now_ + dt);
  record(now_, next_seq_++, label, dt, TimelineEventKind::kElapse);
}

bool Timeline::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  const auto [t, seq] = it->first;
  // t >= now_ is structural: schedule_at rejects past times and the map pops
  // in time order.
  now_ = t;
  Scheduled ev = std::move(it->second);
  queue_.erase(it);
  id_time_.erase(seq);
  // Log before running the callback so a callback that schedules or charges
  // follow-ups appends strictly after its own entry.
  record(t, seq, ev.label, ev.value, TimelineEventKind::kScheduled);
  if (ev.fn) ev.fn(*this);
  return true;
}

void Timeline::run_until(double t) {
  require(t >= now_, "Timeline: run_until into the past");
  while (!queue_.empty() && queue_.begin()->first.first <= t) step();
  now_ = t;
}

void Timeline::run() {
  while (step()) {
  }
}

double Timeline::charged(std::string_view label) const {
  const auto it = sums_.find(label);
  return it == sums_.end() ? 0.0 : it->second.value();
}

double Timeline::charged_prefix(std::string_view prefix) const {
  NeumaierSum sum;
  for (auto it = sums_.lower_bound(prefix); it != sums_.end(); ++it) {
    const std::string_view label = it->first;
    if (label.substr(0, prefix.size()) != prefix) break;
    sum.add(it->second.value());
  }
  return sum.value();
}

void Timeline::export_to(obs::MetricRegistry& registry,
                         std::string_view prefix) const {
  const std::string base = std::string(prefix) + ".";
  registry.gauge(base + "events_processed")
      .set(static_cast<double>(processed_));
  registry.gauge(base + "simulated_s").set(now_);
  registry.gauge(base + "pending").set(static_cast<double>(queue_.size()));
}

}  // namespace pab::sim
