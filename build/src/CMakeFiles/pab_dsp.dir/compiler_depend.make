# Empty compiler generated dependencies file for pab_dsp.
# This may be replaced when dependencies are built.
