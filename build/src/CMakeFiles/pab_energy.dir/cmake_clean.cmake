file(REMOVE_RECURSE
  "CMakeFiles/pab_energy.dir/energy/harvester.cpp.o"
  "CMakeFiles/pab_energy.dir/energy/harvester.cpp.o.d"
  "CMakeFiles/pab_energy.dir/energy/ledger.cpp.o"
  "CMakeFiles/pab_energy.dir/energy/ledger.cpp.o.d"
  "CMakeFiles/pab_energy.dir/energy/mcu.cpp.o"
  "CMakeFiles/pab_energy.dir/energy/mcu.cpp.o.d"
  "CMakeFiles/pab_energy.dir/energy/planner.cpp.o"
  "CMakeFiles/pab_energy.dir/energy/planner.cpp.o.d"
  "libpab_energy.a"
  "libpab_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pab_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
