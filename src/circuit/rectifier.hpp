// Multi-stage rectifier (voltage multiplier) model.
//
// The node "employs a multi-stage rectifier in order to passively amplify the
// voltage to the level that is needed for activating the digital components"
// (paper section 4.2.1).  We model an N-stage Dickson/Villard multiplier with
// Schottky diodes: each stage contributes up to 2(V_pk - V_d) of DC, and the
// conversion efficiency collapses as the input amplitude approaches the diode
// drop -- which is what shapes the power-up frontier in Figs. 3 and 9.
#pragma once

namespace pab::circuit {

struct RectifierParams {
  int stages = 3;              // multiplier stages
  double diode_drop_v = 0.25;  // Schottky forward drop [V]
  // Equivalent fundamental-frequency input resistance [ohm].  Multi-stage
  // multipliers at microwatt power levels present ~100 kohm; together with
  // the piezo source impedance this sets the loaded Q (selectivity) of the
  // recto-piezo's electrical resonance.
  double input_resistance = 100000.0;
};

class Rectifier {
 public:
  explicit Rectifier(RectifierParams p = {});

  // Unloaded (open-circuit) DC output for a sinusoidal input of amplitude
  // `v_in` [V]: max(0, 2 N (v_in - v_d)).
  [[nodiscard]] double open_circuit_dc(double v_in) const;

  // AC->DC conversion efficiency for input amplitude `v_in`, in [0, 1):
  // eta = ((v_in - v_d)/v_in)^2 clamped at 0.  Captures the small-signal
  // dead zone below the diode drop.
  [[nodiscard]] double efficiency(double v_in) const;

  // DC power delivered to the storage element for `p_in` watts of RF/acoustic
  // electrical power arriving at input amplitude `v_in`.
  [[nodiscard]] double dc_power(double p_in, double v_in) const;

  // Minimum input amplitude that produces any DC output.
  [[nodiscard]] double turn_on_voltage() const { return params_.diode_drop_v; }

  [[nodiscard]] const RectifierParams& params() const { return params_; }

 private:
  RectifierParams params_;
};

}  // namespace pab::circuit
