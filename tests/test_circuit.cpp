// Analog front-end tests: impedance algebra, matching, rectifier, storage,
// and the recto-piezo composite.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/impedance.hpp"
#include "circuit/matching.hpp"
#include "circuit/rectifier.hpp"
#include "circuit/rectopiezo.hpp"
#include "circuit/storage.hpp"
#include "piezo/transducer.hpp"

namespace pab::circuit {
namespace {

TEST(Impedance, ParallelOfEqualHalves) {
  const cplx z = parallel(cplx(100.0, 0.0), cplx(100.0, 0.0));
  EXPECT_NEAR(z.real(), 50.0, 1e-12);
}

TEST(Impedance, ElementValues) {
  // 1 mH at 15.915 kHz -> ~100 ohm inductive.
  const cplx zl = inductor_z(1e-3, 15915.5);
  EXPECT_NEAR(zl.imag(), 100.0, 0.01);
  const cplx zc = capacitor_z(100e-9, 15915.5);
  EXPECT_NEAR(zc.imag(), -100.0, 0.01);
}

TEST(Impedance, ReflectionShortIsFull) {
  // Paper Eq. 2: short circuit reflects everything.
  const cplx zs(500.0, -300.0);
  EXPECT_NEAR(reflected_power_fraction(cplx(0.0, 0.0), zs), 1.0, 1e-12);
}

TEST(Impedance, ReflectionConjugateMatchIsZero) {
  const cplx zs(500.0, -300.0);
  EXPECT_NEAR(reflected_power_fraction(std::conj(zs), zs), 0.0, 1e-12);
}

TEST(Impedance, ReflectionBounded) {
  const cplx zs(200.0, 100.0);
  for (double r : {1.0, 10.0, 100.0, 1e4}) {
    for (double x : {-1e4, -100.0, 0.0, 100.0, 1e4}) {
      const double g = reflected_power_fraction(cplx(r, x), zs);
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, 1.0);
    }
  }
}

TEST(Matching, AchievesConjugateMatchAtDesignFrequency) {
  const cplx zs(240.0, -1070.0);  // typical node piezo at 15 kHz
  for (double rl : {100.0, 1000.0, 100000.0}) {
    const auto net = MatchingNetwork::design(zs, rl, 15000.0);
    const cplx zin = net.input_impedance(15000.0, cplx(rl, 0.0));
    EXPECT_NEAR(zin.real(), zs.real(), std::abs(zs) * 1e-6) << "RL=" << rl;
    EXPECT_NEAR(zin.imag(), -zs.imag(), std::abs(zs) * 1e-6) << "RL=" << rl;
  }
}

TEST(Matching, FullPowerTransferAtDesign) {
  const cplx zs(240.0, -1070.0);
  const auto net = MatchingNetwork::design(zs, 1e5, 15000.0);
  EXPECT_NEAR(net.power_transfer(15000.0, zs, cplx(1e5, 0.0)), 1.0, 1e-9);
}

TEST(Matching, TransferDegradesOffDesign) {
  const cplx zs(240.0, -1070.0);
  const auto net = MatchingNetwork::design(zs, 1e5, 15000.0);
  EXPECT_LT(net.power_transfer(18000.0, zs, cplx(1e5, 0.0)), 0.5);
}

TEST(Matching, LoadVoltageFromPower) {
  const cplx zs(100.0, 0.0);
  const auto net = MatchingNetwork::design(zs, 400.0, 10000.0);
  const double v_th = 2.0;
  // Full transfer: P = v_th^2/(8*100) = 5 mW; V_L = sqrt(2*P*400) = 2 V.
  EXPECT_NEAR(net.load_voltage(10000.0, v_th, zs, cplx(400.0, 0.0)), 2.0, 1e-6);
}

TEST(Matching, NonePassesThrough) {
  const auto net = MatchingNetwork::none();
  const cplx zl(123.0, -45.0);
  EXPECT_EQ(net.input_impedance(15000.0, zl), zl);
}

TEST(Matching, ElementRealization) {
  const auto ind = element_for_reactance(100.0, 15915.5);
  EXPECT_EQ(ind.kind, Reactance::Kind::kInductor);
  EXPECT_NEAR(ind.series_z(15915.5).imag(), 100.0, 1e-6);
  const auto cap = element_for_reactance(-100.0, 15915.5);
  EXPECT_EQ(cap.kind, Reactance::Kind::kCapacitor);
  EXPECT_NEAR(cap.series_z(15915.5).imag(), -100.0, 1e-6);
}

TEST(Rectifier, OpenCircuitDc) {
  Rectifier r(RectifierParams{3, 0.25, 1e5});
  EXPECT_NEAR(r.open_circuit_dc(1.0), 2.0 * 3.0 * 0.75, 1e-12);
  EXPECT_EQ(r.open_circuit_dc(0.2), 0.0);  // below diode drop
}

TEST(Rectifier, EfficiencyDeadZoneAndAsymptote) {
  Rectifier r(RectifierParams{3, 0.25, 1e5});
  EXPECT_EQ(r.efficiency(0.1), 0.0);
  EXPECT_GT(r.efficiency(2.0), r.efficiency(0.5));
  EXPECT_LT(r.efficiency(100.0), 1.0);
  EXPECT_GT(r.efficiency(100.0), 0.99);
}

TEST(Rectifier, MoreStagesMoreVoltage) {
  Rectifier r2(RectifierParams{2, 0.25, 1e5});
  Rectifier r4(RectifierParams{4, 0.25, 1e5});
  EXPECT_GT(r4.open_circuit_dc(1.0), r2.open_circuit_dc(1.0));
}

TEST(Supercap, ChargeDynamics) {
  Supercapacitor cap(1000e-6);
  // 1 mW for 10 s = 10 mJ -> V = sqrt(2E/C) ~ 4.47 V (no ceiling).
  for (int i = 0; i < 1000; ++i) cap.step(0.01, 1e-3, 0.0, 100.0);
  EXPECT_NEAR(cap.voltage(), std::sqrt(2.0 * 0.01 / 1000e-6), 0.01);
}

TEST(Supercap, CeilingStopsCharging) {
  Supercapacitor cap(1000e-6);
  for (int i = 0; i < 2000; ++i) cap.step(0.01, 1e-3, 0.0, 3.0);
  EXPECT_LE(cap.voltage(), 3.0 + 1e-9);
  EXPECT_NEAR(cap.voltage(), 3.0, 0.01);
}

TEST(Supercap, DischargeFloorsAtZero) {
  Supercapacitor cap(1000e-6, 1.0);
  for (int i = 0; i < 100; ++i) cap.step(1.0, 0.0, 1e-3, 5.0);
  EXPECT_GE(cap.voltage(), 0.0);
  EXPECT_NEAR(cap.voltage(), 0.0, 1e-9);
}

TEST(Ldo, RegulationWindow) {
  Ldo ldo;
  EXPECT_FALSE(ldo.in_regulation(1.9));
  EXPECT_TRUE(ldo.in_regulation(2.2));
}

TEST(Ldo, InputPowerIncludesQuiescent) {
  Ldo ldo;
  const double p = ldo.input_power(2.1, 230e-6);
  EXPECT_NEAR(p, 2.1 * (230e-6 + 25e-6), 1e-12);
  EXPECT_EQ(ldo.input_power(1.0, 230e-6), 0.0);  // out of regulation
}

TEST(RectoPiezo, PeakAtMatchFrequency) {
  // The heart of Fig. 3: each recto-piezo peaks at its own match frequency.
  const auto rp15 = make_recto_piezo(15000.0);
  const auto rp18 = make_recto_piezo(18000.0);
  const double p = 60.0;
  EXPECT_GT(rp15.rectified_open_voltage(15000.0, p),
            rp15.rectified_open_voltage(18000.0, p));
  EXPECT_GT(rp18.rectified_open_voltage(18000.0, p),
            rp18.rectified_open_voltage(15000.0, p));
}

TEST(RectoPiezo, ComplementaryResponses) {
  const auto rp15 = make_recto_piezo(15000.0);
  const auto rp18 = make_recto_piezo(18000.0);
  const double p = 60.0;
  // Each device's response at the other's channel is well below its peak.
  EXPECT_LT(rp15.rectified_open_voltage(18000.0, p),
            0.25 * rp15.rectified_open_voltage(15000.0, p));
  EXPECT_LT(rp18.rectified_open_voltage(15000.0, p),
            0.25 * rp18.rectified_open_voltage(18000.0, p));
}

TEST(RectoPiezo, AbsorptiveNullAtMatch) {
  const auto rp = make_recto_piezo(15000.0);
  EXPECT_NEAR(std::abs(rp.gamma_absorptive(15000.0)), 0.0, 1e-6);
  EXPECT_NEAR(std::abs(rp.gamma_reflective(15000.0)), 1.0, 1e-9);
}

TEST(RectoPiezo, ModulationDepthPeaksNearMatch) {
  const auto rp = make_recto_piezo(15000.0);
  const double at_match = rp.modulation_depth(15000.0);
  EXPECT_GT(at_match, rp.modulation_depth(11000.0));
  EXPECT_GT(at_match, rp.modulation_depth(20000.0));
}

TEST(RectoPiezo, HarvestedPowerNonNegativeAndPeaked) {
  const auto rp = make_recto_piezo(15000.0);
  double peak = 0.0, peak_f = 0.0;
  for (double f = 11000.0; f <= 21000.0; f += 100.0) {
    const double p = rp.harvested_dc_power(f, 60.0);
    EXPECT_GE(p, 0.0);
    if (p > peak) { peak = p; peak_f = f; }
  }
  EXPECT_NEAR(peak_f, 15000.0, 600.0);
}

TEST(RectoPiezo, ScatterGainConsistentWithModulationDepth) {
  const auto rp = make_recto_piezo(15000.0);
  const double f = 15500.0;
  const auto dg = rp.scatter_gain(f, true) - rp.scatter_gain(f, false);
  EXPECT_NEAR(0.5 * std::abs(dg), rp.modulation_depth(f), 1e-12);
}

TEST(RectoPiezo, EnergyConservation) {
  // Delivered electrical power can never exceed the acoustic power captured
  // by the aperture.
  const auto rp = make_recto_piezo(15000.0);
  const double p_pa = 100.0;
  const double rho_c = 1.48e6;
  const double captured =
      p_pa * p_pa / (2.0 * rho_c) * rp.transducer().aperture_area();
  for (double f = 12000.0; f <= 20000.0; f += 500.0) {
    EXPECT_LE(rp.delivered_power_w(f, p_pa), captured * (1.0 + 1e-9))
        << "f=" << f;
  }
}

}  // namespace
}  // namespace pab::circuit
