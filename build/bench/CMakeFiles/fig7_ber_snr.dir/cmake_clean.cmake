file(REMOVE_RECURSE
  "CMakeFiles/fig7_ber_snr.dir/fig7_ber_snr.cpp.o"
  "CMakeFiles/fig7_ber_snr.dir/fig7_ber_snr.cpp.o.d"
  "fig7_ber_snr"
  "fig7_ber_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ber_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
