#include "channel/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/resample.hpp"
#include "util/units.hpp"
#include "util/error.hpp"

namespace pab::channel {

dsp::Signal apply_taps(const dsp::Signal& x, const std::vector<PathTap>& taps) {
  require(x.sample_rate > 0.0, "apply_taps: sample rate unset");
  dsp::Signal y;
  y.sample_rate = x.sample_rate;
  for (const PathTap& t : taps) {
    dsp::add_delayed_scaled(y.samples, x.samples, t.delay_s * x.sample_rate, t.gain);
  }
  return y;
}

dsp::BasebandSignal apply_taps_baseband(const dsp::BasebandSignal& x,
                                        const std::vector<PathTap>& taps) {
  require(x.sample_rate > 0.0, "apply_taps_baseband: sample rate unset");
  dsp::BasebandSignal y;
  y.sample_rate = x.sample_rate;
  y.carrier_hz = x.carrier_hz;
  for (const PathTap& t : taps) {
    const double phase = -pab::kTwoPi * x.carrier_hz * t.delay_s;
    const dsp::cplx gain = t.gain * dsp::cplx(std::cos(phase), std::sin(phase));
    dsp::add_delayed_scaled(y.samples, std::span<const dsp::cplx>(x.samples),
                            t.delay_s * x.sample_rate, gain);
  }
  return y;
}

std::size_t apply_taps_length(std::size_t n, double sample_rate,
                              const std::vector<PathTap>& taps) {
  require(sample_rate > 0.0, "apply_taps_length: sample rate unset");
  std::size_t len = 0;
  for (const PathTap& t : taps) {
    const auto int_delay =
        static_cast<std::size_t>(std::floor(t.delay_s * sample_rate));
    len = std::max(len, n + int_delay + 1);
  }
  return len;
}

void apply_taps_into(std::span<const double> x, double sample_rate,
                     const std::vector<PathTap>& taps, std::span<double> y) {
  require(y.size() == apply_taps_length(x.size(), sample_rate, taps),
          "apply_taps_into: output size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (const PathTap& t : taps)
    dsp::add_delayed_scaled_into(y, x, t.delay_s * sample_rate, t.gain);
}

void apply_taps_baseband_into(std::span<const dsp::cplx> x, double sample_rate,
                              double carrier_hz, const std::vector<PathTap>& taps,
                              std::span<dsp::cplx> y) {
  require(y.size() == apply_taps_length(x.size(), sample_rate, taps),
          "apply_taps_baseband_into: output size mismatch");
  std::fill(y.begin(), y.end(), dsp::cplx{});
  for (const PathTap& t : taps) {
    const double phase = -pab::kTwoPi * carrier_hz * t.delay_s;
    const dsp::cplx gain = t.gain * dsp::cplx(std::cos(phase), std::sin(phase));
    dsp::add_delayed_scaled_into(y, x, t.delay_s * sample_rate, gain);
  }
}

dsp::CplxView apply_taps_baseband(dsp::CplxView x,
                                  const std::vector<PathTap>& taps,
                                  dsp::Arena& arena) {
  auto out = arena.alloc<dsp::cplx>(
      apply_taps_length(x.size(), x.sample_rate, taps));
  apply_taps_baseband_into(x.samples, x.sample_rate, x.carrier_hz, taps, out);
  return dsp::CplxView(out, x.sample_rate, x.carrier_hz);
}

Propagator::Propagator(const Tank& tank, const Vec3& src, const Vec3& rx,
                       double freq_hz, int max_order, bool use_image_method) {
  taps_ = use_image_method
              ? image_method_taps(tank, src, rx, max_order, freq_hz)
              : free_field_tap(src, rx, freq_hz, tank.water);
}

}  // namespace pab::channel
