#include "core/network.hpp"

#include <cmath>
#include <utility>

#include "channel/propagation.hpp"
#include "dsp/mixer.hpp"
#include "phy/fm0.hpp"
#include "phy/metrics.hpp"
#include "phy/mimo.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::core {
namespace {

std::vector<double> expand_chips(const phy::Chips& chips, double spc,
                                 std::size_t offset, std::size_t total) {
  std::vector<double> out(total, 0.0);
  for (std::size_t i = offset; i < total; ++i) {
    const auto chip =
        static_cast<std::size_t>(static_cast<double>(i - offset) / spc);
    if (chip >= chips.size()) break;
    out[i] = static_cast<double>(chips[chip]);
  }
  return out;
}

std::vector<dsp::cplx> remove_mean(std::vector<dsp::cplx> x) {
  // By value + in place: callers move the baseband in, avoiding a full copy.
  dsp::cplx mean{};
  for (const auto& v : x) mean += v;
  mean /= static_cast<double>(std::max<std::size_t>(x.size(), 1));
  for (auto& v : x) v -= mean;
  return x;
}

}  // namespace

MultiNodeSimulator::MultiNodeSimulator(SimConfig config, channel::Vec3 projector,
                                       channel::Vec3 hydrophone,
                                       std::vector<channel::Vec3> node_positions)
    : MultiNodeSimulator(config, projector, hydrophone, std::move(node_positions),
                         std::make_shared<channel::TapCache>(
                             config.tank, config.max_image_order,
                             config.use_image_method)) {}

MultiNodeSimulator::MultiNodeSimulator(SimConfig config, channel::Vec3 projector,
                                       channel::Vec3 hydrophone,
                                       std::vector<channel::Vec3> node_positions,
                                       std::shared_ptr<channel::TapCache> tap_cache)
    : config_(config),
      projector_pos_(projector),
      hydrophone_pos_(hydrophone),
      nodes_(std::move(node_positions)),
      rng_(config.seed),
      tap_cache_(std::move(tap_cache)) {
  require(!nodes_.empty(), "MultiNodeSimulator: need at least one node");
  require(tap_cache_ != nullptr, "MultiNodeSimulator: tap cache must not be null");
  for (const auto& p : nodes_)
    require(config_.tank.contains(p), "MultiNodeSimulator: node outside tank");
}

NetworkRunResult MultiNodeSimulator::run(
    const Projector& projector, const std::vector<circuit::RectoPiezo>& front_ends,
    const NetworkRunConfig& cfg) {
  return run(projector, front_ends, cfg, rng_);
}

NetworkRunResult MultiNodeSimulator::run(
    const Projector& projector, const std::vector<circuit::RectoPiezo>& front_ends,
    const NetworkRunConfig& cfg, pab::Rng& rng) const {
  const std::size_t n = nodes_.size();
  require(front_ends.size() == n, "MultiNodeSimulator: front-end count mismatch");
  require(cfg.carriers_hz.size() == n, "MultiNodeSimulator: carrier count mismatch");

  const double fs = config_.sample_rate;
  const double spc = fs / (2.0 * cfg.bitrate);
  require(spc >= 4.0, "MultiNodeSimulator: too few samples per chip");

  const std::size_t tr_chips = 2 * cfg.training_bits;
  const std::size_t pl_chips = 2 * cfg.payload_bits;
  const std::size_t guard_chips = 8;
  const auto chip_samples = [&](std::size_t chips) {
    return static_cast<std::size_t>(std::ceil(static_cast<double>(chips) * spc));
  };

  // Frame: [guard][train_0][guard][train_1]...[guard][payload][guard].
  std::vector<std::size_t> train_start(n);
  std::size_t cursor = chip_samples(guard_chips);
  for (std::size_t j = 0; j < n; ++j) {
    train_start[j] = cursor;
    cursor += chip_samples(tr_chips + guard_chips);
  }
  const std::size_t payload_start = cursor;
  const std::size_t total = payload_start + chip_samples(pl_chips + guard_chips);

  // Sequences.
  const auto random_chips = [&](std::size_t count) {
    phy::Chips c(count);
    for (auto& v : c) v = rng.bernoulli(0.5) ? 1 : -1;
    return c;
  };
  std::vector<phy::Chips> training(n);
  std::vector<pab::Bits> payload_bits(n);
  std::vector<phy::Chips> payload_chips(n);
  std::vector<std::vector<double>> state(n);
  for (std::size_t j = 0; j < n; ++j) {
    training[j] = random_chips(tr_chips);
    payload_bits[j] = rng.bits(cfg.payload_bits);
    payload_chips[j] = phy::fm0_encode(payload_bits[j]);
    const auto tr = expand_chips(training[j], spc, train_start[j], total);
    const auto pl = expand_chips(payload_chips[j], spc, payload_start, total);
    state[j].resize(total);
    for (std::size_t i = 0; i < total; ++i) state[j][i] = tr[i] + pl[i];
  }

  // Waveform synthesis per carrier.
  const double duration = static_cast<double>(total) / fs;
  std::vector<std::vector<dsp::cplx>> y_env(n);
  for (std::size_t ci = 0; ci < n; ++ci) {
    const double f = cfg.carriers_hz[ci];
    const dsp::BasebandSignal tx = projector.cw_envelope(f, duration, fs);
    const auto taps_ph = tap_cache_->taps(projector_pos_, hydrophone_pos_, f);
    dsp::BasebandSignal sum = channel::apply_taps_baseband(tx, *taps_ph);
    for (std::size_t nj = 0; nj < n; ++nj) {
      const auto taps_pn = tap_cache_->taps(projector_pos_, nodes_[nj], f);
      const auto taps_nh = tap_cache_->taps(nodes_[nj], hydrophone_pos_, f);
      const dsp::BasebandSignal at_node = channel::apply_taps_baseband(tx, *taps_pn);
      const dsp::cplx g_r = front_ends[nj].scatter_gain(f, true);
      const dsp::cplx g_a = front_ends[nj].scatter_gain(f, false);
      dsp::BasebandSignal scat;
      scat.sample_rate = fs;
      scat.carrier_hz = f;
      scat.samples.resize(at_node.size());
      for (std::size_t i = 0; i < at_node.size(); ++i) {
        const double s = i < state[nj].size() ? state[nj][i] : 0.0;
        scat.samples[i] = at_node.samples[i] * (s > 0.0 ? g_r : g_a);
      }
      sum.accumulate(channel::apply_taps_baseband(scat, *taps_nh));
    }
    y_env[ci] = std::move(sum.samples);
  }

  // Passband + noise at the hydrophone, then per-carrier down-conversion.
  std::size_t len = 0;
  for (const auto& e : y_env) len = std::max(len, e.size());
  dsp::Signal capture;
  capture.sample_rate = fs;
  capture.samples.resize(len);
  const double sens = config_.hydrophone.volts_per_pascal();
  const double noise_sd = config_.noise.sample_stddev_pa(fs);
  for (std::size_t i = 0; i < len; ++i) {
    double p = rng.gaussian(0.0, noise_sd);
    for (std::size_t ci = 0; ci < n; ++ci) {
      if (i >= y_env[ci].size()) continue;
      const double ph = kTwoPi * cfg.carriers_hz[ci] * static_cast<double>(i) / fs;
      p += y_env[ci][i].real() * std::cos(ph) -
           y_env[ci][i].imag() * std::sin(ph);
    }
    capture.samples[i] = sens * p;
  }

  const double cutoff = 2.5 * cfg.bitrate;
  std::vector<std::vector<dsp::cplx>> y(n);
  for (std::size_t ci = 0; ci < n; ++ci) {
    dsp::BasebandSignal bb = dsp::downconvert_filtered(capture, cfg.carriers_hz[ci],
                                                       cutoff, 5);
    y[ci] = remove_mean(std::move(bb.samples));
  }

  // Per-node alignment: node->hydrophone delay refined by training
  // correlation (absorbs the receive filter's group delay).
  const double c_sound = channel::sound_speed_mackenzie(config_.tank.water);
  const std::size_t tr_len = chip_samples(tr_chips);
  const std::size_t pl_len = chip_samples(pl_chips);
  const auto window = [&](const std::vector<dsp::cplx>& stream, std::size_t start,
                          std::size_t count, std::size_t shift) {
    std::vector<dsp::cplx> out(count, dsp::cplx{});
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t idx = start + shift + i;
      if (idx < stream.size()) out[i] = stream[idx];
    }
    return out;
  };

  std::vector<std::size_t> delay(n);
  std::vector<std::vector<double>> ref_train(n);
  for (std::size_t j = 0; j < n; ++j) {
    ref_train[j] = expand_chips(training[j], spc, 0, tr_len);
    const double d = channel::distance(nodes_[j], hydrophone_pos_);
    const auto base = static_cast<std::size_t>(std::lround(d / c_sound * fs));
    std::size_t best = base;
    double best_m = -1.0;
    for (std::size_t s = base; s <= base + static_cast<std::size_t>(3.0 * spc); ++s) {
      const auto w = window(y[j], train_start[j], tr_len, s);
      dsp::cplx acc{};
      for (std::size_t i = 0; i < tr_len; ++i) acc += w[i] * ref_train[j][i];
      const double m = std::abs(acc);
      if (m > best_m) { best_m = m; best = s; }
    }
    delay[j] = best;
  }

  // NxN channel estimation: h[i][j] from carrier i during node j's training.
  phy::CMatrix h(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      h.at(i, j) = phy::estimate_channel_gain(
          window(y[i], train_start[j], tr_len, delay[j]), ref_train[j]);
    }
  }

  NetworkRunResult result;
  result.channel = h;
  result.condition_number = h.condition_number();
  result.sinr_before_db.resize(n);
  result.sinr_after_db.resize(n);
  result.ber_after.resize(n);

  // Chip integration helper.
  const auto integrate = [&](const std::vector<dsp::cplx>& x) {
    std::vector<dsp::cplx> out(pl_chips, dsp::cplx{});
    for (std::size_t c = 0; c < pl_chips; ++c) {
      const auto lo = static_cast<std::size_t>(std::lround(static_cast<double>(c) * spc));
      const auto hi = static_cast<std::size_t>(std::lround(static_cast<double>(c + 1) * spc));
      dsp::cplx acc{};
      std::size_t cnt = 0;
      for (std::size_t i = lo; i < hi && i < x.size(); ++i) { acc += x[i]; ++cnt; }
      out[c] = cnt ? acc / static_cast<double>(cnt) : dsp::cplx{};
    }
    return out;
  };

  std::size_t decoded_ok = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::vector<double> chip_ref(payload_chips[j].begin(),
                                       payload_chips[j].end());
    // Before: own-carrier readout.
    const auto before =
        integrate(window(y[j], payload_start, pl_len, delay[j]));
    result.sinr_before_db[j] = phy::measure_sinr_db(before, chip_ref);

    // After: ZF with node j's alignment across all carrier streams.
    std::vector<std::vector<dsp::cplx>> aligned(n);
    for (std::size_t i = 0; i < n; ++i)
      aligned[i] = window(y[i], payload_start, pl_len, delay[j]);
    const auto separated = phy::zero_force_n(aligned, h);
    const auto after = integrate(separated[j]);
    result.sinr_after_db[j] = phy::measure_sinr_db(after, chip_ref);

    std::vector<double> soft(after.size());
    for (std::size_t c = 0; c < soft.size(); ++c) soft[c] = after[c].real();
    const auto decoded = phy::fm0_decode_ml(soft);
    result.ber_after[j] = phy::bit_error_rate(payload_bits[j], decoded);
    if (result.ber_after[j] < 0.01) ++decoded_ok;
  }

  const double frame_s = static_cast<double>(total) / fs;
  result.aggregate_goodput_bps =
      static_cast<double>(decoded_ok * cfg.payload_bits) / frame_s;
  return result;
}

}  // namespace pab::core
