// Seeded random-input generators for the cross-layer invariant audit.
//
// Every generator is a pure function of the Rng handed in: the audit driver
// (check/audit.hpp) derives one Rng per (invariant, trial) from a base seed,
// so any reported violation is reproducible from its trial seed alone.  The
// generators deliberately bias toward the regions where accounting bugs hide
// (record tails, CRC-failure runs inside good-SNR streaks, lossy retry
// sequences, q-bound extremes) rather than sampling uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "channel/timevarying.hpp"
#include "dsp/signal.hpp"
#include "energy/ledger.hpp"
#include "energy/planner.hpp"
#include "mac/inventory.hpp"
#include "mac/rate_control.hpp"
#include "mac/scheduler.hpp"
#include "mac/zones.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace pab::check {

// --- channel ----------------------------------------------------------------

// Free-field mobility geometry: metre-scale ranges, swimmer-to-ROV speeds,
// tank-to-brackish water properties.
[[nodiscard]] channel::MovingPathConfig gen_moving_path(Rng& rng);

// Two-path surface geometry with both endpoints strictly below the surface.
[[nodiscard]] channel::WavySurfaceConfig gen_wavy_surface(Rng& rng);

// Complex baseband record: a CW burst with random amplitude and phase (and
// optional additive noise), short enough that trial loops stay cheap.
[[nodiscard]] dsp::BasebandSignal gen_baseband_burst(Rng& rng,
                                                     double sample_rate,
                                                     double carrier_hz);

// --- mac --------------------------------------------------------------------

struct RateObservation {
  double snr_db = 0.0;
  bool crc_ok = true;
};

[[nodiscard]] mac::RateControlConfig gen_rate_config(Rng& rng);

// Clustered observation sequence: runs of high-headroom observations with
// occasional CRC failures sprinkled in (exactly the pattern where streak
// accounting bugs hide), interleaved with deep fades.
[[nodiscard]] std::vector<RateObservation> gen_rate_observations(
    Rng& rng, const mac::RateControlConfig& config, std::size_t n);

// Per-attempt link outcome script for scheduler trials.
enum class LinkOutcome : std::uint8_t { kDecoded, kCrcFailure, kSilent };

[[nodiscard]] std::vector<LinkOutcome> gen_link_script(Rng& rng, std::size_t n);
[[nodiscard]] mac::SchedulerConfig gen_scheduler_config(Rng& rng);

// Unique node ids (random subset of 1..255) and inventory bounds, including
// q-bound extremes and populations larger than the first frame.
[[nodiscard]] std::vector<std::uint8_t> gen_population(Rng& rng);
[[nodiscard]] mac::InventoryConfig gen_inventory_config(Rng& rng);

// Zoned-field scenario for the cross-zone interference invariant: a partition
// of global node indices into a few zones (each small enough for zone-local
// uint8 ids), a sparse random interference adjacency (sparse on purpose:
// few colors means several zones share a carrier concurrently, the
// co-channel case where the SINR ledger has to work hardest), reader-path
// amplitudes per global node spanning several decades, and the SINR model
// knobs.  The pieces are kept separate -- the checker assembles
// ZonedInventoryOptions itself so the amplitude span never dangles.
struct ZonedScenario {
  mac::ZoneLayout layout;
  std::vector<double> amplitude;  // reader-path amplitude per global node
  mac::InventoryConfig inventory;
  double frame_announce_s = 0.05;
  double slot_s = 0.02;
  double noise_power = 1e-9;
  double capture_threshold_db = 6.0;
  mac::RejectionMask mask{};
};
[[nodiscard]] ZonedScenario gen_zoned_scenario(Rng& rng);

// Scheduler config for timeline-mode trials: like gen_scheduler_config but
// also exercises finite per-query timeouts (the reconstruction invariant
// does not model the retry protocol, so the timeout's early exit is fair
// game there).
[[nodiscard]] mac::SchedulerConfig gen_timed_scheduler_config(Rng& rng);

// --- sim::Timeline ----------------------------------------------------------

// One scripted operation against a Timeline (clock-monotonicity trials).
// Scripts are generated valid: schedule times never precede the model clock
// at their execution point, and ties (equal fire times) are produced on
// purpose to exercise the (time, sequence) tie-break.
struct TimelineOp {
  enum class Kind : std::uint8_t {
    kScheduleAt,  // time = absolute fire time
    kElapse,      // time = dt
    kCharge,      // instantaneous at now
    kRunUntil,    // time = absolute target
    kRunAll,      // drain the queue
  };
  Kind kind = Kind::kCharge;
  double time = 0.0;
  std::string label;
  double value = 0.0;
};

[[nodiscard]] std::vector<TimelineOp> gen_timeline_ops(Rng& rng, std::size_t n);

// --- energy -----------------------------------------------------------------

// Random ledger entries: (category, joules >= 0) pairs covering every
// category, magnitudes spanning uJ..J.
[[nodiscard]] std::vector<std::pair<energy::Category, double>>
gen_ledger_entries(Rng& rng, std::size_t n);

[[nodiscard]] energy::TransactionCost gen_transaction_cost(Rng& rng);

// --- sim --------------------------------------------------------------------

// Random perturbation of the pool_a preset: seed, waveform, placement inside
// the tank, and occasionally extra nodes with their own front ends.
[[nodiscard]] sim::Scenario gen_scenario(Rng& rng);

// Random deployment-scale field spec: generated layout (grid / random /
// clusters), tens-of-nodes populations, open-water densities and depths.
[[nodiscard]] sim::FieldSpec gen_field_spec(Rng& rng);

// Random single-link waveform parameters (decode round-trip trials).
[[nodiscard]] sim::Waveform gen_waveform(Rng& rng);

}  // namespace pab::check
