file(REMOVE_RECURSE
  "CMakeFiles/test_core_link.dir/test_core_link.cpp.o"
  "CMakeFiles/test_core_link.dir/test_core_link.cpp.o.d"
  "test_core_link"
  "test_core_link.pdb"
  "test_core_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
