#include "dsp/fir.hpp"

#include <cmath>
#include <complex>
#include <vector>

#include "dsp/fftconv.hpp"
#include "dsp/simd.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::dsp {
namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

}  // namespace

std::vector<double> design_lowpass_fir(double cutoff_hz, double sample_rate,
                                       std::size_t taps, WindowType window) {
  require(sample_rate > 0.0, "design_lowpass_fir: sample rate must be positive");
  require(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
          "design_lowpass_fir: cutoff must be in (0, fs/2)");
  if (taps % 2 == 0) ++taps;
  const double fc = cutoff_hz / sample_rate;  // normalized (cycles/sample)
  const auto w = make_window(window, taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;

  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = 2.0 * fc * sinc(2.0 * fc * t) * w[i];
    sum += h[i];
  }
  // Normalize to unity DC gain.
  for (auto& v : h) v /= sum;
  return h;
}

std::vector<double> design_bandpass_fir(double low_hz, double high_hz,
                                        double sample_rate, std::size_t taps,
                                        WindowType window) {
  require(low_hz > 0.0 && high_hz > low_hz && high_hz < sample_rate / 2.0,
          "design_bandpass_fir: invalid band");
  if (taps % 2 == 0) ++taps;
  const double f1 = low_hz / sample_rate;
  const double f2 = high_hz / sample_rate;
  const auto w = make_window(window, taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;

  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = (2.0 * f2 * sinc(2.0 * f2 * t) - 2.0 * f1 * sinc(2.0 * f1 * t)) * w[i];
  }
  // Normalize to unity gain at band center.
  const double f0 = kPi * (f1 + f2);  // radian center frequency * 1 sample
  std::complex<double> g{};
  for (std::size_t i = 0; i < taps; ++i)
    g += h[i] * std::exp(std::complex<double>(0.0, -f0 * static_cast<double>(i)));
  const double mag = std::abs(g);
  if (mag > 1e-12)
    for (auto& v : h) v /= mag;
  return h;
}

namespace {

template <typename T>
void fir_checks(std::span<const double> h, std::span<const T> x,
                std::span<T> y) {
  require(!h.empty(), "fir_filter: empty kernel");
  require(y.size() == x.size(), "fir_filter_into: output size mismatch");
  // The convolution reads x[i +/- delay] while writing y[i]: any overlap
  // between input and output corrupts later windows.
  const T* xb = x.data();
  const T* yb = y.data();
  require(x.empty() || y.empty() || xb + x.size() <= yb || yb + y.size() <= xb,
          "fir_filter_into: output must not alias input");
}

// One edge sample of the reference convolution (kernel truncated where it
// overhangs the signal).
template <typename T>
T fir_edge_sample(std::span<const double> h, std::span<const T> x,
                  std::size_t i, std::size_t delay) {
  T acc{};
  // y[i] = sum_k h[k] * x[i + delay - k]
  for (std::size_t k = 0; k < h.size(); ++k) {
    const std::ptrdiff_t idx =
        static_cast<std::ptrdiff_t>(i) + static_cast<std::ptrdiff_t>(delay) -
        static_cast<std::ptrdiff_t>(k);
    if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(x.size()))
      acc += h[k] * x[static_cast<std::size_t>(idx)];
  }
  return acc;
}

// The pre-SIMD reference loop, kept verbatim: this is what runs under scalar
// dispatch and what the vector/FFT paths are equality-tested against.
template <typename T>
void fir_apply_reference(std::span<const double> h, std::span<const T> x,
                         std::span<T> y) {
  const std::size_t delay = (h.size() - 1) / 2;
  for (std::size_t i = 0; i < x.size(); ++i)
    y[i] = fir_edge_sample<T>(h, x, i, delay);
}

// Vector path (real signals): interior samples become contiguous dot
// products against the reversed kernel, y[i] = dot(rev_h, x[i+delay-nh+1 ..]);
// the <= nh-1 samples at each edge keep the checked reference loop.
void fir_apply_simd(std::span<const double> h, std::span<const double> x,
                    std::span<double> y) {
  const std::size_t nh = h.size();
  const std::size_t delay = (nh - 1) / 2;
  thread_local std::vector<double> rev;
  rev.assign(h.rbegin(), h.rend());
  const std::size_t lo = nh - 1 > delay ? nh - 1 - delay : 0;
  // First i past the interior: window end i + delay must stay < x.size().
  const std::size_t hi = x.size() > delay ? x.size() - delay : 0;
  std::size_t i = 0;
  for (; i < lo && i < y.size(); ++i) y[i] = fir_edge_sample<double>(h, x, i, delay);
  for (; i < hi; ++i)
    y[i] = simd::dot(rev, x.subspan(i + delay - (nh - 1), nh));
  for (; i < y.size(); ++i) y[i] = fir_edge_sample<double>(h, x, i, delay);
}

// Crossover dispatch shared by both element types: FFT fast convolution for
// long kernels, the interior-dot vector path for real signals under a vector
// ISA, the reference loop otherwise (and always under PAB_SIMD=off).
template <typename T>
void fir_apply_into(std::span<const double> h, std::span<const T> x,
                    std::span<T> y) {
  fir_checks<T>(h, x, y);
  if (simd::fftconv_enabled() && h.size() >= fftconv_fir_crossover() &&
      x.size() >= 2 * h.size()) {
    fftconv_fir(h, x, y);
    return;
  }
  if constexpr (std::is_same_v<T, double>) {
    if (simd::enabled() && h.size() >= 8 && x.size() >= 2 * h.size()) {
      fir_apply_simd(h, x, y);
      return;
    }
  }
  fir_apply_reference<T>(h, x, y);
}

template <typename T>
std::vector<T> fir_apply(std::span<const double> h, std::span<const T> x) {
  std::vector<T> y(x.size(), T{});
  fir_apply_into<T>(h, x, y);
  return y;
}

}  // namespace

std::vector<double> fir_filter(std::span<const double> h, std::span<const double> x) {
  return fir_apply<double>(h, x);
}

std::vector<std::complex<double>> fir_filter(std::span<const double> h,
                                             std::span<const std::complex<double>> x) {
  return fir_apply<std::complex<double>>(h, x);
}

void fir_filter_into(std::span<const double> h, std::span<const double> x,
                     std::span<double> y) {
  fir_apply_into<double>(h, x, y);
}

void fir_filter_into(std::span<const double> h,
                     std::span<const std::complex<double>> x,
                     std::span<std::complex<double>> y) {
  fir_apply_into<std::complex<double>>(h, x, y);
}

}  // namespace pab::dsp
