// Robust-uplink (FEC) protocol mode: node-side switch, waveform sizing, and
// end-to-end decoding through the simulator.
#include <gtest/gtest.h>

#include "core/link.hpp"
#include "mac/protocol.hpp"
#include "node/node.hpp"
#include "phy/fec.hpp"
#include "phy/metrics.hpp"
#include "sim/scenario.hpp"

namespace pab {
namespace {

sense::Environment default_env() { return sense::Environment{}; }

void power_up(node::PabNode& node) {
  for (int i = 0; i < 5000 && !node.powered_up(); ++i)
    node.harvest_step(0.01, node.resonance_hz(), 600.0, node::NodeState::kColdStart);
  ASSERT_TRUE(node.powered_up());
}

TEST(RobustMode, CommandTogglesNodeState) {
  const auto env = default_env();
  node::PabNode node(node::NodeConfig{}, &env);
  power_up(node);
  EXPECT_FALSE(node.robust_uplink());
  const auto on = node.process_query(mac::make_set_robust_mode(node.config().id, true));
  ASSERT_TRUE(on.has_value());
  EXPECT_TRUE(node.robust_uplink());
  const auto off = node.process_query(mac::make_set_robust_mode(node.config().id, false));
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(node.robust_uplink());
}

TEST(RobustMode, WaveformGrowsByCodeRate) {
  const auto env = default_env();
  node::NodeConfig plain_cfg;
  node::NodeConfig robust_cfg;
  robust_cfg.robust_uplink = true;
  node::PabNode plain(plain_cfg, &env);
  node::PabNode robust(robust_cfg, &env);

  phy::UplinkPacket packet;
  packet.node_id = 1;
  packet.payload = {1, 2, 3, 4};
  const auto w_plain = plain.make_uplink_waveform(packet, 96000.0);
  const auto w_robust = robust.make_uplink_waveform(packet, 96000.0);
  // Preamble is uncoded; the body grows by 7/4.
  const double body_bits = static_cast<double>(
      phy::UplinkPacket::bits_on_air(4, /*include_preamble=*/false));
  const double preamble_bits =
      static_cast<double>(phy::uplink_preamble_bits().size());
  const double expected_ratio =
      (preamble_bits + phy::fec_coded_size(static_cast<std::size_t>(body_bits))) /
      (preamble_bits + body_bits);
  EXPECT_NEAR(static_cast<double>(w_robust.size()) /
                  static_cast<double>(w_plain.size()),
              expected_ratio, 0.02);
}

TEST(RobustMode, EndToEndThroughSimulator) {
  core::SimConfig sc = sim::Scenario::pool_a().medium;
  core::LinkSimulator sim(sc, core::Placement{});
  const core::Projector proj(piezo::make_projector_transducer(), 50.0);
  const auto fe = circuit::make_recto_piezo(15000.0);

  phy::UplinkPacket packet;
  packet.node_id = 6;
  packet.payload = {0xCA, 0xFE};
  Bits body = packet.to_bits(false);
  const Bits coded = phy::fec_protect(body);

  const auto run = sim.run_uplink(proj, fe, coded, core::UplinkRunConfig{});
  phy::DemodConfig dc;
  dc.sample_rate = sc.sample_rate;
  const auto decoded = phy::demodulate_packet(run.hydrophone_v, dc,
                                              packet.payload.size(),
                                              /*robust=*/true);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_EQ(decoded.value().payload, packet.payload);
  EXPECT_EQ(decoded.value().node_id, 6);
}

TEST(RobustMode, SurvivesBurstThatBreaksPlainMode) {
  // Flip a burst of demodulated bits: plain CRC fails, robust recovers.
  phy::UplinkPacket packet;
  packet.node_id = 2;
  packet.payload = {0x12, 0x34, 0x56};
  const Bits body = packet.to_bits(false);

  // Plain: burst breaks the CRC.
  Bits corrupted_plain = body;
  for (std::size_t i = 10; i < 15; ++i) corrupted_plain[i] ^= 1;
  EXPECT_FALSE(phy::UplinkPacket::from_bits(corrupted_plain, false).has_value());

  // Robust: the same burst on the coded stream is corrected.
  Bits coded = phy::fec_protect(body);
  for (std::size_t i = 10; i < 15; ++i) coded[i] ^= 1;
  const Bits recovered = phy::fec_recover(coded, body.size());
  const auto packet_back = phy::UplinkPacket::from_bits(recovered, false);
  ASSERT_TRUE(packet_back.has_value());
  EXPECT_EQ(packet_back->payload, packet.payload);
}

TEST(RobustMode, ParseResponseHandlesAck) {
  const auto q = mac::make_set_robust_mode(3, true);
  phy::UplinkPacket ack;
  ack.node_id = 3;
  ack.payload = {1};
  const auto r = mac::parse_response(q, ack);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 1.0);
}

}  // namespace
}  // namespace pab
