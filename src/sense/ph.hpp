// pH probe + signal-conditioning AFE model.
//
// A glass pH electrode produces a Nernstian voltage: ~0 V at pH 7 with a
// slope of -59.16 mV/pH at 25 C.  The LMP91200-style analog front end
// (paper section 5.1c) buffers and level-shifts this into the MCU ADC range.
#pragma once

#include "sense/adc.hpp"
#include "sense/environment.hpp"
#include "util/rng.hpp"

namespace pab::sense {

struct PhProbeParams {
  double slope_v_per_ph_25c = -0.05916;  // Nernst slope at 25 C
  double offset_v = 0.0;                 // electrode offset at pH 7
  double noise_v = 0.5e-3;               // electrode noise RMS
  // AFE: Vout = afe_gain * Velec + afe_bias, centered in the ADC range.
  double afe_gain = 3.0;
  double afe_bias = 0.9;
};

class PhProbe {
 public:
  PhProbe(const Environment* env, PhProbeParams params = {});

  // Electrode voltage (temperature-compensated Nernst slope).
  [[nodiscard]] double electrode_voltage(pab::Rng& rng) const;
  // AFE output presented to the ADC.
  [[nodiscard]] double afe_output(pab::Rng& rng) const;

  // MCU-side conversion from an ADC code back to pH.
  [[nodiscard]] double ph_from_adc(std::uint16_t code, const Adc& adc,
                                   double assumed_temp_c = 25.0) const;

  [[nodiscard]] const PhProbeParams& params() const { return params_; }

 private:
  const Environment* env_;
  PhProbeParams params_;
};

}  // namespace pab::sense
