# Empty compiler generated dependencies file for mobility.
# This may be replaced when dependencies are built.
