// Campaign engine tests: wire codec, spec round-trips, record batches,
// shard-merge associativity, executor byte-identity (in-process vs a
// 3-worker process pool), checkpoint/resume, and manifest validation.
//
// The cross-process tests need the pab_worker binary; the build passes its
// location as PAB_WORKER_BIN when examples are enabled, and the tests skip
// (not fail) without it.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/batch_executor.hpp"
#include "campaign/manifest.hpp"
#include "campaign/process_executor.hpp"
#include "campaign/record.hpp"
#include "campaign/shard_runner.hpp"
#include "campaign/spec.hpp"
#include "campaign/wire.hpp"
#include "obs/metrics.hpp"
#include "sim/session.hpp"

namespace {

using namespace pab;
namespace fs = std::filesystem;

// A cheap two-point uplink campaign (16-bit payloads) used throughout.
campaign::CampaignSpec small_uplink_spec() {
  campaign::CampaignSpec spec;
  spec.name = "test";
  spec.preset = "pool_a";
  spec.kind = sim::TrialKind::kUplink;
  spec.trials_per_point = 5;
  spec.base_seed = 7;
  spec.axes.push_back({"waveform.payload_bits", {16.0}});
  spec.axes.push_back({"noise.psd_db_re_upa", {40.0, 55.0}});
  return spec;
}

campaign::CampaignSpec small_timeline_spec() {
  campaign::CampaignSpec spec;
  spec.name = "test-timeline";
  spec.kind = sim::TrialKind::kTimeline;
  spec.trials_per_point = 4;
  spec.base_seed = 11;
  spec.axes.push_back({"waveform.payload_bits", {32.0, 64.0}});
  spec.timeline["horizon_s"] = 5.0;
  return spec;
}

// A scratch directory that cleans up after itself.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("pab-test-campaign-" + tag + "-" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(CampaignWire, PrimitivesRoundTrip) {
  campaign::ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1234.5678e-12);
  w.f64(-0.0);
  w.str("hello");
  w.str("");

  campaign::ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -1234.5678e-12);
  EXPECT_EQ(r.f64(), 0.0);  // -0.0 compares equal; the bit pattern survives
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(CampaignWire, TruncatedPayloadThrows) {
  campaign::ByteWriter w;
  w.u64(42);
  const std::string bytes = w.bytes().substr(0, 5);
  campaign::ByteReader r(bytes);
  EXPECT_THROW((void)r.u64(), std::runtime_error);
  campaign::ByteReader r2("");
  EXPECT_THROW((void)r2.str(), std::runtime_error);
}

TEST(CampaignWire, MetricsSnapshotRoundTrip) {
  obs::MetricRegistry reg;
  reg.counter("a.count").add(3);
  reg.counter("b.count").add(1);
  reg.gauge("a.gauge").set(2.5);
  reg.histogram("a.hist").observe(0.25);
  reg.histogram("a.hist").observe(4.0);
  const obs::MetricsSnapshot snap = reg.snapshot();

  campaign::ByteWriter w;
  campaign::write_metrics(w, snap);
  campaign::ByteReader r(w.bytes());
  const obs::MetricsSnapshot back = campaign::read_metrics(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  EXPECT_EQ(back.to_json(), snap.to_json());
}

TEST(CampaignSpec, SerializeParseIsFixedPoint) {
  campaign::CampaignSpec spec = small_uplink_spec();
  spec.timeline["horizon_s"] = 12.25;  // exercised even for uplink specs
  const std::string text = spec.serialize();
  auto parsed = campaign::CampaignSpec::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value().serialize(), text);
  EXPECT_EQ(parsed.value().fingerprint(), spec.fingerprint());
  EXPECT_EQ(parsed.value().kind, spec.kind);
  EXPECT_EQ(parsed.value().trials_per_point, spec.trials_per_point);
  ASSERT_EQ(parsed.value().axes.size(), spec.axes.size());
  EXPECT_EQ(parsed.value().axes[1].values, spec.axes[1].values);
}

TEST(CampaignSpec, FingerprintSeparatesSpecs) {
  const campaign::CampaignSpec a = small_uplink_spec();
  campaign::CampaignSpec b = a;
  b.base_seed += 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  campaign::CampaignSpec c = a;
  c.axes[1].values.push_back(60.0);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// Fingerprint stability: the scheme seam added a `waveform.scheme` axis and
// LinkQuality record columns, neither of which may perturb the canonical
// serialization of PRE-EXISTING specs -- a checkpoint store keyed by
// fingerprint must keep resuming campaigns written before the seam.  The
// pinned values are the fingerprints those specs have always had; if this
// test fails, checkpoint compatibility is broken, not the test.
TEST(CampaignSpec, FingerprintsOfExistingSpecsAreUnchangedBySchemeSeam) {
  EXPECT_EQ(small_uplink_spec().fingerprint(), 3320668702618809973ull);
  EXPECT_EQ(small_timeline_spec().fingerprint(), 5464704253007108330ull);
  // A spec that *does* sweep the scheme axis gets a distinct fingerprint.
  campaign::CampaignSpec swept = small_uplink_spec();
  swept.axes.push_back({"waveform.scheme", {0.0, 1.0, 2.0}});
  EXPECT_NE(swept.fingerprint(), small_uplink_spec().fingerprint());
}

TEST(CampaignSpec, SchemeAxisAppliesAndBoundsChecks) {
  sim::Scenario s = sim::Scenario::pool_a();
  EXPECT_TRUE(campaign::apply_param(s, "waveform.scheme", 1.0));
  EXPECT_EQ(s.waveform.scheme, phy::SchemeId::kFsk2);
  EXPECT_TRUE(campaign::apply_param(s, "waveform.scheme", 2.0));
  EXPECT_EQ(s.waveform.scheme, phy::SchemeId::kFsk4);
  EXPECT_TRUE(campaign::apply_param(s, "waveform.scheme", 0.0));
  EXPECT_EQ(s.waveform.scheme, phy::SchemeId::kFm0);
  // Out-of-range ordinals are a spec error, not a silent clamp.
  EXPECT_FALSE(campaign::apply_param(s, "waveform.scheme", 3.0));
  EXPECT_FALSE(campaign::apply_param(s, "waveform.scheme", -1.0));
  EXPECT_EQ(s.waveform.scheme, phy::SchemeId::kFm0);  // unchanged on reject
  // And the axis validates end to end.
  campaign::CampaignSpec spec = small_uplink_spec();
  spec.axes.push_back({"waveform.scheme", {0.0, 1.0}});
  EXPECT_TRUE(spec.validate().ok()) << spec.validate().error().message();
}

TEST(CampaignRecord, UplinkRowsCarryLinkQualityColumns) {
  const auto names = campaign::RecordBatch::column_names(sim::TrialKind::kUplink);
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names[6], "evm_rms");
  EXPECT_EQ(names[7], "mer_db");
  EXPECT_EQ(names[8], "cn0_dbhz");

  campaign::RecordBatch batch(sim::TrialKind::kUplink);
  sim::UplinkTrial trial{};
  trial.demod.quality = {0.1, 20.0, 53.0};
  batch.append(0, sim::TrialResult{std::in_place_index<0>, trial});
  EXPECT_EQ(batch.column(6)[0], 0.1);
  EXPECT_EQ(batch.column(7)[0], 20.0);
  EXPECT_EQ(batch.column(8)[0], 53.0);

  const auto field_names =
      campaign::RecordBatch::column_names(sim::TrialKind::kField);
  ASSERT_EQ(field_names.size(), 21u);
  EXPECT_EQ(field_names[18], "evm_rms");
  EXPECT_EQ(field_names[20], "cn0_dbhz");
}

TEST(CampaignSpec, PointDecompositionLastAxisFastest) {
  campaign::CampaignSpec spec;
  spec.axes.push_back({"waveform.bitrate", {100.0, 200.0}});
  spec.axes.push_back({"noise.psd_db_re_upa", {1.0, 2.0, 3.0}});
  EXPECT_EQ(spec.point_count(), 6u);
  EXPECT_EQ(spec.point_values(0), (std::vector<double>{100.0, 1.0}));
  EXPECT_EQ(spec.point_values(1), (std::vector<double>{100.0, 2.0}));
  EXPECT_EQ(spec.point_values(3), (std::vector<double>{200.0, 1.0}));
  EXPECT_EQ(spec.point_values(5), (std::vector<double>{200.0, 3.0}));
}

TEST(CampaignSpec, CompileShardsCoverEveryTrialOnce) {
  campaign::CampaignSpec spec = small_uplink_spec();
  const auto shards = spec.compile(2);
  // 2 points x 5 trials at shard_size 2 -> ceil(5/2) = 3 shards per point.
  ASSERT_EQ(shards.size(), 6u);
  std::uint64_t expected_index = 0;
  for (const auto& s : shards) EXPECT_EQ(s.index, expected_index++);
  for (std::uint64_t point = 0; point < 2; ++point) {
    std::vector<bool> covered(spec.trials_per_point, false);
    for (const auto& s : shards) {
      if (s.point != point) continue;
      for (std::uint64_t t = s.begin; t < s.end; ++t) {
        ASSERT_LT(t, covered.size());
        EXPECT_FALSE(covered[t]);
        covered[t] = true;
      }
    }
    for (bool c : covered) EXPECT_TRUE(c);
  }
  // shard_size 0: one shard per point, whole trial range.
  const auto whole = spec.compile(0);
  ASSERT_EQ(whole.size(), 2u);
  EXPECT_EQ(whole[0].begin, 0u);
  EXPECT_EQ(whole[0].end, spec.trials_per_point);
}

TEST(CampaignSpec, ValidateRejectsUnknownPresetAndParam) {
  campaign::CampaignSpec spec = small_uplink_spec();
  EXPECT_TRUE(spec.validate().ok());
  campaign::CampaignSpec bad_preset = spec;
  bad_preset.preset = "atlantis";
  EXPECT_FALSE(bad_preset.validate().ok());
  campaign::CampaignSpec bad_param = spec;
  bad_param.axes.push_back({"waveform.no_such_knob", {1.0}});
  EXPECT_FALSE(bad_param.validate().ok());
  campaign::CampaignSpec bad_timeline = spec;
  bad_timeline.timeline["warp_factor"] = 9.0;
  EXPECT_FALSE(bad_timeline.validate().ok());
}

// A cheap two-point deployment-field campaign.
campaign::CampaignSpec small_field_spec() {
  campaign::CampaignSpec spec;
  spec.name = "test-field";
  spec.preset = "open_water_grid";
  spec.kind = sim::TrialKind::kField;
  spec.trials_per_point = 3;
  spec.base_seed = 5;
  spec.axes.push_back({"field.population", {24.0, 48.0}});
  spec.field["zone_extent_m"] = 60.0;
  return spec;
}

TEST(CampaignSpec, FieldDirectiveRoundTripsAndAppliesAxes) {
  const campaign::CampaignSpec spec = small_field_spec();
  ASSERT_TRUE(spec.validate().ok()) << spec.validate().error().message();
  const std::string text = spec.serialize();
  auto parsed = campaign::CampaignSpec::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value().serialize(), text);
  EXPECT_EQ(parsed.value().fingerprint(), spec.fingerprint());
  // field.* axes regenerate the deployment per point.
  auto s0 = spec.scenario_for_point(0);
  auto s1 = spec.scenario_for_point(1);
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s0.value().node_count(), 24u);
  EXPECT_EQ(s1.value().node_count(), 48u);
  // The override map reaches the trial options.
  auto opts = spec.trial_options();
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts.value().field.zone_extent_m, 60.0);
  EXPECT_FALSE(opts.value().field.keep_log);  // campaign default
  // Unknown field knobs and field axes on hand-placed presets are rejected.
  campaign::CampaignSpec bad_knob = spec;
  bad_knob.field["warp_factor"] = 9.0;
  EXPECT_FALSE(bad_knob.validate().ok());
  campaign::CampaignSpec tank = spec;
  tank.preset = "pool_a";
  EXPECT_FALSE(tank.validate().ok());
}

TEST(CampaignExecutor, FieldCampaignRunsShardedAndMergesDeterministically) {
  const campaign::CampaignSpec spec = small_field_spec();
  campaign::BatchExecutor executor;
  campaign::RunOptions options;
  options.worker_threads = 2;
  options.shard_size = 1;
  auto sharded = executor.run(spec, options);
  ASSERT_TRUE(sharded.ok()) << sharded.error().message();
  options.shard_size = 0;  // one shard per point
  auto whole = executor.run(spec, options);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(sharded.value().records_bytes(), whole.value().records_bytes());
  ASSERT_EQ(sharded.value().points.size(), spec.point_count());
  // Every row succeeded and the population column tracks the axis.
  for (std::size_t p = 0; p < sharded.value().points.size(); ++p) {
    const campaign::RecordBatch& records = sharded.value().points[p];
    ASSERT_EQ(records.rows(), spec.trials_per_point);
    for (std::size_t i = 0; i < records.rows(); ++i)
      EXPECT_EQ(records.ok()[i], 1) << "point " << p << " trial " << i;
    EXPECT_EQ(records.column(0)[0], p == 0 ? 24.0 : 48.0);
  }
}

TEST(CampaignRecord, AppendSliceSerializeRoundTrip) {
  campaign::RecordBatch batch(sim::TrialKind::kUplink);
  sim::UplinkTrial trial{};
  trial.ber = 0.125;
  trial.incident_pressure_pa = 3.5;
  batch.append(0, sim::TrialResult{std::in_place_index<0>, trial});
  batch.append(1, pab::Error{pab::ErrorCode::kDecodeFailure, "no preamble"});
  trial.ber = 0.5;
  batch.append(2, sim::TrialResult{std::in_place_index<0>, trial});

  ASSERT_EQ(batch.rows(), 3u);
  EXPECT_EQ(batch.ok()[0], 1);
  EXPECT_EQ(batch.ok()[1], 0);
  EXPECT_EQ(batch.error_code()[1],
            static_cast<std::uint8_t>(pab::ErrorCode::kDecodeFailure));

  // slice + append_batch reassembles the original bytes.
  campaign::RecordBatch head = batch.slice(0, 2);
  const campaign::RecordBatch tail = batch.slice(2, 3);
  head.append_batch(tail);
  EXPECT_EQ(head.bytes(), batch.bytes());

  campaign::ByteWriter w;
  batch.serialize(w);
  campaign::ByteReader r(w.bytes());
  auto back = campaign::RecordBatch::deserialize(r);
  ASSERT_TRUE(back.ok()) << back.error().message();
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.value().bytes(), batch.bytes());
  EXPECT_EQ(back.value().rows(), 3u);
  EXPECT_EQ(back.value().kind(), sim::TrialKind::kUplink);
}

TEST(CampaignRecord, ColumnSchemasPerKind) {
  EXPECT_EQ(campaign::RecordBatch::column_names(sim::TrialKind::kUplink).size(),
            campaign::RecordBatch(sim::TrialKind::kUplink).column_count());
  EXPECT_EQ(
      campaign::RecordBatch::column_names(sim::TrialKind::kNetwork).size(),
      campaign::RecordBatch(sim::TrialKind::kNetwork).column_count());
  EXPECT_EQ(
      campaign::RecordBatch::column_names(sim::TrialKind::kTimeline).size(),
      campaign::RecordBatch(sim::TrialKind::kTimeline).column_count());
  EXPECT_EQ(campaign::RecordBatch::column_names(sim::TrialKind::kField).size(),
            campaign::RecordBatch(sim::TrialKind::kField).column_count());
}

TEST(CampaignRecord, FieldRowsRoundTripThroughTheWire) {
  campaign::RecordBatch batch(sim::TrialKind::kField);
  sim::FieldRunResult field{};
  field.population = 200;
  field.kept_pairs = 1234;
  field.node_hours = 1.5;
  field.identified = {0, 3, 7};
  batch.append(0, sim::TrialResult{std::in_place_index<3>, field});
  ASSERT_EQ(batch.rows(), 1u);
  EXPECT_EQ(batch.column(0)[0], 200.0);
  EXPECT_EQ(batch.column(3)[0], 1234.0);
  EXPECT_EQ(batch.column(13)[0], 3.0);  // identified count
  EXPECT_EQ(batch.column(15)[0], 1.5);
  campaign::ByteWriter w;
  batch.serialize(w);
  campaign::ByteReader r(w.bytes());
  auto back = campaign::RecordBatch::deserialize(r);
  ASSERT_TRUE(back.ok()) << back.error().message();
  EXPECT_EQ(back.value().kind(), sim::TrialKind::kField);
  EXPECT_EQ(back.value().bytes(), batch.bytes());
}

// Merge associativity: any partition of the trial range, executed in any
// order, folds to the same bytes as the unsharded run.
TEST(CampaignMerge, ArbitraryShardBoundariesFoldIdentically) {
  const campaign::CampaignSpec spec = small_timeline_spec();
  campaign::BatchExecutor executor;
  campaign::RunOptions whole;
  whole.shard_size = 0;
  auto reference = executor.run(spec, whole);
  ASSERT_TRUE(reference.ok()) << reference.error().message();

  for (const std::uint64_t shard_size : {1u, 2u, 3u}) {
    const auto shards = spec.compile(shard_size);
    std::vector<campaign::ShardOutput> outputs;
    for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
      auto out = campaign::run_shard(spec, *it, 1);
      ASSERT_TRUE(out.ok()) << out.error().message();
      outputs.push_back(std::move(out).value());
    }
    auto folded = campaign::assemble_result(spec, std::move(outputs));
    ASSERT_TRUE(folded.ok()) << folded.error().message();
    EXPECT_EQ(folded.value().records_bytes(),
              reference.value().records_bytes())
        << "shard_size " << shard_size;
    EXPECT_EQ(folded.value().metrics.counters,
              reference.value().metrics.counters)
        << "shard_size " << shard_size;
  }
}

TEST(CampaignMerge, MissingShardIsAnError) {
  const campaign::CampaignSpec spec = small_timeline_spec();
  const auto shards = spec.compile(2);
  std::vector<campaign::ShardOutput> outputs;
  for (const auto& s : shards) {
    if (s.index == 1) continue;  // drop one shard
    auto out = campaign::run_shard(spec, s, 1);
    ASSERT_TRUE(out.ok());
    outputs.push_back(std::move(out).value());
  }
  auto folded = campaign::assemble_result(spec, std::move(outputs));
  EXPECT_FALSE(folded.ok());
}

TEST(CampaignResume, InterruptedThenResumedMatchesUninterrupted) {
  const campaign::CampaignSpec spec = small_timeline_spec();
  campaign::BatchExecutor executor;

  campaign::RunOptions options;
  options.shard_size = 1;
  auto reference = executor.run(spec, options);
  ASSERT_TRUE(reference.ok()) << reference.error().message();

  const TempDir dir("resume");
  campaign::RunOptions interrupted = options;
  interrupted.checkpoint_dir = dir.path.string();
  interrupted.max_shards = 3;  // 8 shards total: killed mid-campaign
  auto first = executor.run(spec, interrupted);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), pab::ErrorCode::kTimeout);
  EXPECT_TRUE(fs::exists(dir.path / "manifest"));
  EXPECT_TRUE(fs::exists(dir.path / "shard-0.bin"));

  campaign::RunOptions resumed = interrupted;
  resumed.max_shards = 0;
  resumed.resume = true;
  auto second = executor.run(spec, resumed);
  ASSERT_TRUE(second.ok()) << second.error().message();
  EXPECT_EQ(second.value().records_bytes(), reference.value().records_bytes());
  EXPECT_EQ(second.value().metrics.counters,
            reference.value().metrics.counters);
}

TEST(CampaignResume, ManifestRejectsForeignFingerprintAndShardCount) {
  const TempDir dir("manifest");
  campaign::CheckpointStore store(dir.path.string());
  ASSERT_TRUE(store.open(/*fingerprint=*/111, /*shard_count=*/4,
                         /*resume=*/false)
                  .ok());

  campaign::CheckpointStore other(dir.path.string());
  EXPECT_FALSE(other.open(222, 4, /*resume=*/true).ok());  // wrong spec
  EXPECT_FALSE(other.open(111, 5, /*resume=*/true).ok());  // wrong partition
  EXPECT_TRUE(other.open(111, 4, /*resume=*/true).ok());

  // A fresh (non-resume) open clears prior progress.
  campaign::CheckpointStore fresh(dir.path.string());
  ASSERT_TRUE(fresh.open(333, 2, /*resume=*/false).ok());
  campaign::CheckpointStore reread(dir.path.string());
  EXPECT_TRUE(reread.open(333, 2, /*resume=*/true).ok());
  EXPECT_TRUE(reread.done().empty());
}

TEST(CampaignExecutor, RuntimeDispatchMatchesTypedRuns) {
  obs::MetricRegistry reg;
  sim::Scenario scenario = sim::Scenario::pool_a().with_seed(3);
  scenario.waveform.payload_bits = 16;
  const sim::Session session(scenario, &reg);

  auto typed = session.run_trial<sim::TrialKind::kUplink>(2);
  auto dynamic = session.run_trial(sim::TrialKind::kUplink, 2);
  ASSERT_TRUE(typed.ok());
  ASSERT_TRUE(dynamic.ok());
  ASSERT_EQ(dynamic.value().index(), 0u);
  const auto& got = std::get<sim::UplinkTrial>(dynamic.value());
  EXPECT_EQ(got.ber, typed.value().ber);
  EXPECT_EQ(got.demod.snr_db, typed.value().demod.snr_db);
}

#ifdef PAB_WORKER_BIN

TEST(CampaignProcess, ThreeWorkerShardedRunIsByteIdenticalToInProcess) {
  const campaign::CampaignSpec spec = small_uplink_spec();

  campaign::BatchExecutor batch;
  campaign::RunOptions options;
  options.shard_size = 2;
  auto reference = batch.run(spec, options);
  ASSERT_TRUE(reference.ok()) << reference.error().message();

  campaign::ProcessExecutor sharded;
  campaign::RunOptions process_options = options;
  process_options.workers = 3;
  process_options.worker_binary = PAB_WORKER_BIN;
  auto result = sharded.run(spec, process_options);
  ASSERT_TRUE(result.ok()) << result.error().message();

  EXPECT_EQ(result.value().records_bytes(), reference.value().records_bytes());
  EXPECT_EQ(result.value().metrics.counters,
            reference.value().metrics.counters);
  EXPECT_EQ(result.value().summary_json(), reference.value().summary_json());
}

TEST(CampaignProcess, KilledShardedRunResumesToIdenticalBytes) {
  const campaign::CampaignSpec spec = small_timeline_spec();

  campaign::BatchExecutor batch;
  campaign::RunOptions options;
  options.shard_size = 1;
  auto reference = batch.run(spec, options);
  ASSERT_TRUE(reference.ok()) << reference.error().message();

  const TempDir dir("process-resume");
  campaign::ProcessExecutor sharded;
  campaign::RunOptions interrupted = options;
  interrupted.workers = 2;
  interrupted.worker_binary = PAB_WORKER_BIN;
  interrupted.checkpoint_dir = dir.path.string();
  interrupted.max_shards = 2;
  auto first = sharded.run(spec, interrupted);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), pab::ErrorCode::kTimeout);

  campaign::RunOptions resumed = interrupted;
  resumed.max_shards = 0;
  resumed.resume = true;
  resumed.workers = 3;  // resume with a different pool size on purpose
  auto second = sharded.run(spec, resumed);
  ASSERT_TRUE(second.ok()) << second.error().message();
  EXPECT_EQ(second.value().records_bytes(), reference.value().records_bytes());
  EXPECT_EQ(second.value().metrics.counters,
            reference.value().metrics.counters);
}

TEST(CampaignProcess, DeadWorkerBinaryReportsError) {
  const campaign::CampaignSpec spec = small_timeline_spec();
  campaign::ProcessExecutor sharded;
  campaign::RunOptions options;
  options.workers = 2;
  options.worker_binary = "/nonexistent/pab_worker";
  auto result = sharded.run(spec, options);
  EXPECT_FALSE(result.ok());
}

#else

TEST(CampaignProcess, DISABLED_NeedsWorkerBinary) {
  GTEST_SKIP() << "PAB_WORKER_BIN not defined (examples disabled)";
}

#endif  // PAB_WORKER_BIN

}  // namespace
