// MAC layer tests: protocol builders, scheduler retries, FDMA planning.
#include <gtest/gtest.h>

#include <cmath>

#include "mac/fdma.hpp"
#include "mac/protocol.hpp"
#include "mac/rate_control.hpp"
#include "mac/scheduler.hpp"
#include "obs/metrics.hpp"

namespace pab::mac {
namespace {

TEST(Protocol, BuildersSetFields) {
  const auto q = make_read_ph(5);
  EXPECT_EQ(q.address, 5);
  EXPECT_EQ(q.command, phy::Command::kReadPh);
  const auto s = make_set_bitrate(3, 8);
  EXPECT_EQ(s.argument, 8);
}

TEST(Protocol, ParsePhResponse) {
  const auto q = make_read_ph(1);
  phy::UplinkPacket p;
  p.node_id = 1;
  p.payload = node::encode_ph_payload(7.25);
  const auto r = parse_response(q, p);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->value, 7.25, 0.005);
  EXPECT_EQ(r->unit, "pH");
}

TEST(Protocol, ParseRejectsWrongSize) {
  const auto q = make_read_pressure(1);
  phy::UplinkPacket p;
  p.payload = {0x01};  // pressure needs 4 bytes
  EXPECT_FALSE(parse_response(q, p).has_value());
}

TEST(Protocol, ResponseSizes) {
  EXPECT_EQ(response_payload_size(phy::Command::kPing), 1u);
  EXPECT_EQ(response_payload_size(phy::Command::kReadPh), 2u);
  EXPECT_EQ(response_payload_size(phy::Command::kReadPressure), 4u);
}

TEST(Scheduler, SucceedsFirstTry) {
  PollScheduler sched;
  const auto link = [](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    phy::UplinkPacket p;
    p.payload = {1, 2};
    return p;
  };
  const auto r = sched.transact(make_ping(1), link, 60, 1000.0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(sched.stats().attempts, 1u);
  EXPECT_EQ(sched.stats().successes, 1u);
  EXPECT_EQ(sched.stats().retries, 0u);
  EXPECT_NEAR(sched.stats().payload_bits_delivered, 16.0, 1e-9);
}

TEST(Scheduler, RetriesOnCrcFailure) {
  PollScheduler sched(SchedulerConfig{2, 0.2, 0.02});
  int calls = 0;
  const auto link = [&](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    if (++calls < 3) return pab::Error{pab::ErrorCode::kCrcMismatch, "noise"};
    phy::UplinkPacket p;
    p.payload = {9};
    return p;
  };
  const auto r = sched.transact(make_ping(1), link, 60, 1000.0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(sched.stats().attempts, 3u);
  EXPECT_EQ(sched.stats().retries, 2u);
  EXPECT_EQ(sched.stats().crc_failures, 2u);
}

TEST(Scheduler, GivesUpAfterMaxRetries) {
  PollScheduler sched(SchedulerConfig{1, 0.2, 0.02});
  const auto link = [](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    return pab::Error{pab::ErrorCode::kNoPreamble, "dead link"};
  };
  const auto r = sched.transact(make_ping(1), link, 60, 1000.0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(sched.stats().attempts, 2u);  // initial + 1 retry
  EXPECT_EQ(sched.stats().successes, 0u);
}

TEST(Scheduler, AirtimeAccounting) {
  PollScheduler sched(SchedulerConfig{0, 0.2, 0.02});
  const auto link = [](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    phy::UplinkPacket p;
    p.payload = {1};
    return p;
  };
  (void)sched.transact(make_ping(1), link, 100, 1000.0);
  // 0.2 downlink + 0.02 turnaround + 0.1 uplink.
  EXPECT_NEAR(sched.stats().elapsed_s, 0.32, 1e-9);
  EXPECT_GT(sched.stats().goodput_bps(), 0.0);
}

// Regression: a no-response attempt used to charge the full uplink slot too,
// deflating effective-throughput numbers on lossy links.  Only the query and
// turnaround occupy the channel when the node never answers.
TEST(Scheduler, NoResponseChargesNoUplinkAirtime) {
  PollScheduler sched(SchedulerConfig{1, 0.2, 0.02});
  const auto link = [](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    return pab::Error{pab::ErrorCode::kNoPreamble, "dead link"};
  };
  const auto r = sched.transact(make_ping(1), link, 100, 1000.0);
  EXPECT_FALSE(r.ok());
  // 2 attempts x (0.2 downlink + 0.02 turnaround), zero uplink airtime.
  EXPECT_NEAR(sched.stats().elapsed_s, 0.44, 1e-9);
  EXPECT_EQ(sched.stats().no_response, 2u);
}

// A CRC-failed reply did arrive, so its uplink airtime is real and stays
// charged.
TEST(Scheduler, CrcFailedReplyStillChargesUplinkAirtime) {
  PollScheduler sched(SchedulerConfig{0, 0.2, 0.02});
  const auto link = [](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    return pab::Error{pab::ErrorCode::kCrcMismatch, "noise"};
  };
  (void)sched.transact(make_ping(1), link, 100, 1000.0);
  // 0.2 downlink + 0.02 turnaround + 0.1 uplink: the reply was on the air.
  EXPECT_NEAR(sched.stats().elapsed_s, 0.32, 1e-9);
}

// Mixed retry sequence: one silent attempt, then a decoded reply.
TEST(Scheduler, MixedRetrySequenceAirtime) {
  PollScheduler sched(SchedulerConfig{2, 0.2, 0.02});
  int calls = 0;
  const auto link = [&](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    if (++calls == 1) return pab::Error{pab::ErrorCode::kTimeout, "silent"};
    phy::UplinkPacket p;
    p.payload = {7};
    return p;
  };
  const auto r = sched.transact(make_ping(1), link, 100, 1000.0);
  EXPECT_TRUE(r.ok());
  // Attempt 1: 0.22 (no reply).  Attempt 2: 0.22 + 0.1 uplink.
  EXPECT_NEAR(sched.stats().elapsed_s, 0.54, 1e-9);
}

// The scheduler's counters land in an injected registry under mac.poll.*,
// so bench sidecars can fold MAC accounting in.
TEST(Scheduler, CountersVisibleInInjectedRegistry) {
  obs::MetricRegistry reg;
  PollScheduler sched(SchedulerConfig{1, 0.2, 0.02}, &reg);
  int calls = 0;
  const auto link = [&](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    if (++calls == 1) return pab::Error{pab::ErrorCode::kCrcMismatch, "noise"};
    phy::UplinkPacket p;
    p.payload = {1, 2};
    return p;
  };
  const auto r = sched.transact(make_ping(1), link, 60, 1000.0);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(reg.counter("mac.poll.attempts").value(), 2u);
  EXPECT_EQ(reg.counter("mac.poll.retries").value(), 1u);
  EXPECT_EQ(reg.counter("mac.poll.successes").value(), 1u);
  EXPECT_EQ(reg.counter("mac.poll.crc_failures").value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("mac.poll.payload_bits_delivered").value(), 16.0);
  // Snapshot view agrees with the registry.
  EXPECT_EQ(sched.stats().attempts, 2u);
  // reset_stats zeroes the scheduler's instruments in place.
  sched.reset_stats();
  EXPECT_EQ(reg.counter("mac.poll.attempts").value(), 0u);
  EXPECT_EQ(sched.stats().attempts, 0u);
}

TEST(Scheduler, PollRoundHitsAllQueries) {
  PollScheduler sched;
  int calls = 0;
  const auto link = [&](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    ++calls;
    phy::UplinkPacket p;
    p.payload = {0};
    return p;
  };
  const std::vector<phy::DownlinkQuery> queries = {make_ping(1), make_ping(2),
                                                   make_ping(3)};
  sched.poll_round(queries, link, 60, 1000.0);
  EXPECT_EQ(calls, 3);
}

// Regression: with downshift_on_crc_failure disabled, a CRC-failed
// observation with high SNR headroom used to advance the good streak and
// could trigger an upshift -- rewarding undecodable packets.  A failed CRC
// must never count toward an upshift streak.
TEST(RateControl, CrcFailureNeverFeedsUpshiftStreak) {
  RateControlConfig cfg;
  cfg.downshift_on_crc_failure = false;
  cfg.up_streak = 3;
  RateController rc(cfg, /*initial_index=*/2);
  // Plenty of headroom, but every packet fails its CRC.
  const double snr = cfg.decode_floor_db + cfg.up_margin_db + 10.0;
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(rc.observe(snr, /*crc_ok=*/false));
  EXPECT_EQ(rc.rate_index(), 2u);
  EXPECT_EQ(rc.upshifts(), 0u);
}

TEST(RateControl, CrcFailureResetsAnInProgressGoodStreak) {
  RateControlConfig cfg;
  cfg.downshift_on_crc_failure = false;
  cfg.up_streak = 3;
  RateController rc(cfg, 2);
  const double snr = cfg.decode_floor_db + cfg.up_margin_db + 10.0;
  EXPECT_FALSE(rc.observe(snr, true));
  EXPECT_FALSE(rc.observe(snr, true));
  // The failure wipes the streak; the next two good packets are not enough.
  EXPECT_FALSE(rc.observe(snr, false));
  EXPECT_FALSE(rc.observe(snr, true));
  EXPECT_FALSE(rc.observe(snr, true));
  EXPECT_EQ(rc.rate_index(), 2u);
  // The third consecutive good observation finally upshifts.
  EXPECT_TRUE(rc.observe(snr, true));
  EXPECT_EQ(rc.rate_index(), 3u);
  EXPECT_EQ(rc.upshifts(), 1u);
}

TEST(Fdma, TwoChannelPlanMatchesPaper) {
  // The paper's two concurrent recto-piezos sit at 15 and 18 kHz.
  const auto plan = plan_channels(2, ChannelPlanConfig{15000.0, 18000.0, 2500.0});
  ASSERT_EQ(plan.channels(), 2u);
  EXPECT_NEAR(plan.carriers_hz[0], 15000.0, 1e-9);
  EXPECT_NEAR(plan.carriers_hz[1], 18000.0, 1e-9);
}

TEST(Fdma, RejectsOvercrowdedBand) {
  EXPECT_THROW((void)plan_channels(10, ChannelPlanConfig{15000.0, 18000.0, 2500.0}),
               std::invalid_argument);
}

TEST(Fdma, SingleNodeCentered) {
  const auto plan = plan_channels(1, ChannelPlanConfig{14000.0, 18000.0, 2000.0});
  ASSERT_EQ(plan.channels(), 1u);
  EXPECT_NEAR(plan.carriers_hz[0], 16000.0, 1e-9);
}

TEST(Fdma, CrosstalkMatrixDiagonalDominant) {
  const auto plan = plan_channels(2, ChannelPlanConfig{15000.0, 18000.0, 2500.0});
  const auto m = crosstalk_matrix(plan);
  // Diagonal is normalized to 1; off-diagonal nonzero (frequency-agnostic
  // backscatter) but below on-channel.
  EXPECT_NEAR(m[0][0], 1.0, 1e-9);
  EXPECT_NEAR(m[1][1], 1.0, 1e-9);
  EXPECT_GT(m[0][1], 0.0);
  EXPECT_LT(m[0][1], 1.0);
  EXPECT_GT(m[1][0], 0.0);
  EXPECT_LT(m[1][0], 1.0);
}

// Regression: stats().elapsed_s used to be read back from the obs::Gauge,
// i.e. a plain running `double +=`.  Over hundreds of thousands of
// transactions the rounding error accumulates linearly (~1e-6 s after 400k
// adds of these step sizes), which is enough to shift goodput figures in the
// 7th digit.  elapsed_s now comes from a compensated (Neumaier) sum and must
// stay exact to ~1 ulp of the true product; the legacy gauge keeps its
// historical accumulate-in-place behaviour for shared-registry exports.
TEST(Scheduler, ElapsedAirtimeDoesNotDriftOverLongRuns) {
  obs::MetricRegistry reg;
  const SchedulerConfig config{0, 0.1, 0.003};
  PollScheduler sched(config, &reg);
  const auto link = [](const phy::DownlinkQuery&)
      -> pab::Expected<phy::UplinkPacket> {
    phy::UplinkPacket p;
    p.payload = {1};
    return p;
  };
  constexpr std::size_t kTransacts = 400'000;
  // Per-transact airtime: downlink + turnaround + uplink(70b @ 1 kbps).
  const double per = 0.1 + 0.003 + 0.07;
  for (std::size_t i = 0; i < kTransacts; ++i)
    (void)sched.transact(make_ping(1), link, 70, 1000.0);

  const double expected = per * static_cast<double>(kTransacts);
  const double err_stats = std::abs(sched.stats().elapsed_s - expected);
  const double err_gauge =
      std::abs(reg.gauge("mac.poll.elapsed_s").value() - expected);
  // The compensated sum is exact to well under a nanosecond over the whole
  // run; the naive gauge accumulation is allowed to be (and in practice is)
  // orders of magnitude worse.
  EXPECT_LT(err_stats, 1e-9);
  EXPECT_LE(err_stats, err_gauge + 1e-12);
}

TEST(Fdma, ThroughputDoubling) {
  // The headline network claim: 2 concurrent channels double the aggregate.
  EXPECT_NEAR(fdma_throughput_bps(2, 1000.0) / tdma_throughput_bps(2, 1000.0),
              2.0, 1e-9);
}

}  // namespace
}  // namespace pab::mac
