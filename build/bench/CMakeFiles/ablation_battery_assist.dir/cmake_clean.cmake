file(REMOVE_RECURSE
  "CMakeFiles/ablation_battery_assist.dir/ablation_battery_assist.cpp.o"
  "CMakeFiles/ablation_battery_assist.dir/ablation_battery_assist.cpp.o.d"
  "ablation_battery_assist"
  "ablation_battery_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_battery_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
