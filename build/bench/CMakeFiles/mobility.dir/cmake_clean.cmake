file(REMOVE_RECURSE
  "CMakeFiles/mobility.dir/mobility.cpp.o"
  "CMakeFiles/mobility.dir/mobility.cpp.o.d"
  "mobility"
  "mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
