#include "node/node.hpp"

#include <cmath>

#include "phy/fec.hpp"
#include "util/error.hpp"

namespace pab::node {

PabNode::PabNode(NodeConfig config, const sense::Environment* environment,
                 std::uint64_t seed)
    : config_(std::move(config)),
      environment_(environment),
      rng_(seed),
      harvester_(circuit::Supercapacitor(1000e-6)),
      mcu_(),
      adc_(),
      ph_probe_(environment),
      i2c_(),
      ms5837_(&i2c_) {
  require(environment_ != nullptr, "PabNode: null environment");
  require(!config_.resonance_bank.empty(), "PabNode: empty resonance bank");
  require(config_.active_resonance < config_.resonance_bank.size(),
          "PabNode: active resonance out of range");
  require(!config_.bitrate_table.empty(), "PabNode: empty bitrate table");
  require(config_.active_bitrate < config_.bitrate_table.size(),
          "PabNode: active bitrate out of range");
  rebuild_front_end();
  i2c_.attach(sense::kMs5837Address,
              std::make_shared<sense::Ms5837Device>(environment_,
                                                    config_.node_depth_m,
                                                    rng_.fork()));
}

void PabNode::rebuild_front_end() {
  bank_.clear();
  bank_.reserve(config_.resonance_bank.size());
  for (double f : config_.resonance_bank) {
    circuit::RectoPiezoConfig cfg;
    cfg.match_frequency_hz = f;
    cfg.rectifier = config_.rectifier;
    cfg.scatter_efficiency = config_.scatter_efficiency;
    bank_.emplace_back(
        piezo::make_node_transducer(config_.mechanical_resonance_hz), cfg);
  }
}

const circuit::RectoPiezo& PabNode::front_end() const {
  return bank_[config_.active_resonance];
}

void PabNode::harvest_step(double dt, double freq_hz, double p_pa,
                           NodeState state) {
  const circuit::RectoPiezo& fe = front_end();
  const double p_dc = fe.harvested_dc_power(freq_hz, p_pa);
  const double v_ceiling = fe.rectified_open_voltage(freq_hz, p_pa);
  double p_load = 0.0;
  switch (state) {
    case NodeState::kColdStart:
      p_load = 0.0;
      break;
    case NodeState::kIdle:
      p_load = mcu_.idle_power_w();
      break;
    case NodeState::kDecoding:
      p_load = mcu_.state_power_w(energy::McuState::kActive);
      break;
    case NodeState::kBackscattering:
      p_load = mcu_.backscatter_power_w(bitrate());
      break;
  }
  harvester_.step(dt, p_dc, p_load, v_ceiling);
}

std::optional<phy::DownlinkQuery> PabNode::receive_downlink(
    std::span<const std::uint8_t> sliced_envelope, double sample_rate) {
  if (!powered_up()) return std::nullopt;
  const pab::Bits bits =
      phy::pwm_decode(sliced_envelope, config_.downlink_pwm, sample_rate);
  auto query = phy::DownlinkQuery::from_bits(bits);
  if (query) {
    harvester_.ledger().add(
        energy::Category::kDecode,
        mcu_.decode_energy_j(bits.size(), config_.downlink_pwm.unit_s));
  }
  return query;
}

std::optional<phy::UplinkPacket> PabNode::process_query(
    const phy::DownlinkQuery& query) {
  if (!powered_up()) return std::nullopt;
  if (query.address != phy::kBroadcastAddress && query.address != config_.id)
    return std::nullopt;

  phy::UplinkPacket response;
  response.node_id = config_.id;

  switch (query.command) {
    case phy::Command::kPing:
      response.payload = {config_.id};
      break;
    case phy::Command::kReadPh: {
      response.payload = encode_ph_payload(read_ph());
      harvester_.ledger().add(energy::Category::kSensing, 50e-6);
      break;
    }
    case phy::Command::kReadTemperature: {
      auto reading = read_pressure_sensor();
      if (!reading.ok()) return std::nullopt;
      response.payload = encode_temperature_payload(reading.value().temperature_c);
      harvester_.ledger().add(energy::Category::kSensing, 30e-6);
      break;
    }
    case phy::Command::kReadPressure: {
      auto reading = read_pressure_sensor();
      if (!reading.ok()) return std::nullopt;
      response.payload = encode_pressure_payload(reading.value().pressure_mbar);
      harvester_.ledger().add(energy::Category::kSensing, 30e-6);
      break;
    }
    case phy::Command::kSetBitrate: {
      if (query.argument >= config_.bitrate_table.size()) return std::nullopt;
      config_.active_bitrate = query.argument;
      response.payload = {query.argument};
      break;
    }
    case phy::Command::kSetResonance: {
      if (query.argument >= config_.resonance_bank.size()) return std::nullopt;
      config_.active_resonance = query.argument;
      response.payload = {query.argument};
      break;
    }
    case phy::Command::kSetRobustMode: {
      config_.robust_uplink = query.argument != 0;
      response.payload = {query.argument};
      break;
    }
    case phy::Command::kReadAdc: {
      const std::uint16_t code = adc_.sample(ph_probe_.afe_output(rng_), rng_);
      response.payload = {static_cast<std::uint8_t>(code >> 8),
                          static_cast<std::uint8_t>(code & 0xFF)};
      harvester_.ledger().add(energy::Category::kSensing, 10e-6);
      break;
    }
  }

  // Account the backscatter energy for the response.
  const std::size_t n_bits = phy::UplinkPacket::bits_on_air(response.payload.size());
  const double tx_s = static_cast<double>(n_bits) / bitrate();
  harvester_.ledger().add(energy::Category::kBackscatter,
                          mcu_.backscatter_power_w(bitrate()) * tx_s);
  return response;
}

std::vector<phy::SwitchState> PabNode::make_uplink_waveform(
    const phy::UplinkPacket& packet, double sample_rate) const {
  pab::Bits bits(phy::uplink_preamble_bits());
  pab::Bits body = packet.to_bits(/*include_preamble=*/false);
  if (config_.robust_uplink) body = phy::fec_protect(body);
  bits.insert(bits.end(), body.begin(), body.end());
  return phy::backscatter_waveform(bits, bitrate(), sample_rate);
}

pab::Expected<sense::Ms5837Reading> PabNode::read_pressure_sensor() {
  return ms5837_.measure();
}

double PabNode::read_ph() {
  const std::uint16_t code = adc_.sample(ph_probe_.afe_output(rng_), rng_);
  return ph_probe_.ph_from_adc(code, adc_, environment_->temperature_c);
}

// --- Payload encodings -------------------------------------------------------

pab::Bytes encode_ph_payload(double ph) {
  // Fixed point: pH * 100 in a uint16 (0.00 .. 14.00 fits easily).
  const auto v = static_cast<std::uint16_t>(std::lround(ph * 100.0));
  return {static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v & 0xFF)};
}

double decode_ph_payload(const pab::Bytes& payload) {
  require(payload.size() == 2, "decode_ph_payload: bad size");
  return static_cast<double>((payload[0] << 8) | payload[1]) / 100.0;
}

pab::Bytes encode_temperature_payload(double temp_c) {
  // Signed centi-degrees in int16.
  const auto v = static_cast<std::int16_t>(std::lround(temp_c * 100.0));
  const auto u = static_cast<std::uint16_t>(v);
  return {static_cast<std::uint8_t>(u >> 8), static_cast<std::uint8_t>(u & 0xFF)};
}

double decode_temperature_payload(const pab::Bytes& payload) {
  require(payload.size() == 2, "decode_temperature_payload: bad size");
  const auto u = static_cast<std::uint16_t>((payload[0] << 8) | payload[1]);
  return static_cast<double>(static_cast<std::int16_t>(u)) / 100.0;
}

pab::Bytes encode_pressure_payload(double pressure_mbar) {
  // Deci-millibar in uint32 (covers full 30 bar range of the sensor).
  const auto v = static_cast<std::uint32_t>(std::lround(pressure_mbar * 10.0));
  return {static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
}

double decode_pressure_payload(const pab::Bytes& payload) {
  require(payload.size() == 4, "decode_pressure_payload: bad size");
  const std::uint32_t v = (static_cast<std::uint32_t>(payload[0]) << 24) |
                          (static_cast<std::uint32_t>(payload[1]) << 16) |
                          (static_cast<std::uint32_t>(payload[2]) << 8) |
                          static_cast<std::uint32_t>(payload[3]);
  return static_cast<double>(v) / 10.0;
}

}  // namespace pab::node
