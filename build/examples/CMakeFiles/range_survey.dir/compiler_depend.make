# Empty compiler generated dependencies file for range_survey.
# This may be replaced when dependencies are built.
