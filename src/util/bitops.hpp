// Bit-vector helpers shared by the PHY and MAC layers.
//
// Bits travel through the stack as std::vector<uint8_t> with one bit per
// element (value 0 or 1); bytes are packed MSB-first, matching the RFID-style
// framing the paper adopts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace pab {

using Bits = std::vector<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

// Unpack bytes to bits, MSB first.
[[nodiscard]] inline Bits bits_from_bytes(std::span<const std::uint8_t> bytes) {
  Bits out;
  out.reserve(bytes.size() * 8);
  for (std::uint8_t byte : bytes)
    for (int i = 7; i >= 0; --i)
      out.push_back(static_cast<std::uint8_t>((byte >> i) & 1u));
  return out;
}

// Pack bits (MSB first) into bytes.  Bit count must be a multiple of 8.
[[nodiscard]] inline Bytes bytes_from_bits(std::span<const std::uint8_t> bits) {
  require(bits.size() % 8 == 0, "bytes_from_bits: bit count not a multiple of 8");
  Bytes out(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i)
    out[i / 8] = static_cast<std::uint8_t>((out[i / 8] << 1) | (bits[i] & 1u));
  return out;
}

// Append `width` bits of `value`, MSB first.
inline void append_uint(Bits& bits, std::uint32_t value, int width) {
  require(width > 0 && width <= 32, "append_uint: width out of range");
  for (int i = width - 1; i >= 0; --i)
    bits.push_back(static_cast<std::uint8_t>((value >> i) & 1u));
}

// Read `width` bits starting at `pos` as an unsigned value, MSB first.
[[nodiscard]] inline std::uint32_t read_uint(std::span<const std::uint8_t> bits,
                                             std::size_t pos, int width) {
  require(width > 0 && width <= 32, "read_uint: width out of range");
  require(pos + static_cast<std::size_t>(width) <= bits.size(),
          "read_uint: out of range");
  std::uint32_t v = 0;
  for (int i = 0; i < width; ++i) v = (v << 1) | (bits[pos + i] & 1u);
  return v;
}

// Hamming distance between equal-length bit vectors.
[[nodiscard]] inline std::size_t hamming_distance(std::span<const std::uint8_t> a,
                                                  std::span<const std::uint8_t> b) {
  require(a.size() == b.size(), "hamming_distance: size mismatch");
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] ^ b[i]) & 1u;
  return d;
}

}  // namespace pab
