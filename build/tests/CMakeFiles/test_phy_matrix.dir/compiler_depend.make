# Empty compiler generated dependencies file for test_phy_matrix.
# This may be replaced when dependencies are built.
