// Bitrate adaptation for PAB links.
//
// The downlink protocol already carries a kSetBitrate command (paper
// section 5.1a) and the MCU exposes a table of clock-divider rates
// (section 6.1b).  This controller closes the loop: it walks the rate table
// using the receiver's SNR estimates and CRC outcomes, with hysteresis so a
// marginal link does not oscillate -- the standard backscatter reader-side
// rate adaptation the paper leaves to the reader implementation.
//
// Two operating modes share the hysteresis machinery:
//   * Legacy rate-table mode (`ladder` empty): observe(snr_db, crc_ok) walks
//     `rate_table` against the configured decode floor.
//   * Ladder mode (`ladder` non-empty): observe_quality(LinkQuality, crc_ok)
//     walks (scheme, bitrate) rungs using soft post-decode metrics -- MER
//     headroom over the *current rung's scheme* decode floor, with EVM gates
//     -- so the controller reacts before the link degrades to CRC failures
//     (which remain the hard backstop).
#pragma once

#include <cstddef>
#include <vector>

#include "phy/modem.hpp"
#include "phy/scheme_id.hpp"
#include "util/error.hpp"

namespace pab::mac {

// One rung of the modulation ladder: a scheme plus its switch-clock (symbol)
// rate -- the kSetBitrate currency the MCU's clock dividers actually set.
// Delivered data rate is bitrate * bits_per_symbol, and rungs must be ordered
// by strictly increasing delivered rate: index 0 is the most robust.
struct LadderRung {
  phy::SchemeId scheme = phy::SchemeId::kFm0;
  double bitrate = 0.0;  // symbol (switch-clock) rate [Hz]
};

struct RateControlConfig {
  // Legacy mode: FM0 clock-divider bitrates, strictly ascending.
  std::vector<double> rate_table = {100,  200,  400,  600,  800,
                                    1000, 2000, 2800, 3000, 5000};
  // SNR margins [dB] relative to the FM0 decode floor (~2 dB, Fig. 7):
  // upshift when measured SNR clears the floor by `up_margin`, downshift
  // when it falls within `down_margin`.
  double decode_floor_db = 2.0;
  double up_margin_db = 9.0;    // BER ~1e-5 at floor+9 (Fig. 7)
  double down_margin_db = 3.0;
  // Consecutive observations required before moving (hysteresis).
  int up_streak = 3;
  int down_streak = 1;
  // CRC failures force an immediate downshift.
  bool downshift_on_crc_failure = true;
  // Soft-metric ladder (empty = legacy rate_table mode).  In ladder mode the
  // margins above apply to MER headroom over each rung's own scheme decode
  // floor (phy::scheme_descriptor), and EVM gates the walk: an upshift
  // additionally needs evm_rms <= evm_upshift_max, while evm_rms >=
  // evm_backstop counts as a bad observation no matter what MER says (EVM
  // saturates before MER when the error distribution grows heavy tails).
  std::vector<LadderRung> ladder;
  double evm_upshift_max = 0.25;
  double evm_backstop = 0.7;
};

class RateController {
 public:
  explicit RateController(RateControlConfig config = {},
                          std::size_t initial_index = 0);

  // Feed one uplink observation; returns true if the rate changed.  Only an
  // observation with `crc_ok` can extend the upshift streak; a CRC failure
  // resets it (and forces a downshift step when configured to).
  bool observe(double snr_db, bool crc_ok);

  // Ladder-mode observation: soft link-quality metrics from the demodulator
  // plus the CRC outcome.  Same hysteresis/streak rules as observe(); valid
  // only when the config carries a non-empty ladder.
  bool observe_quality(const phy::LinkQuality& quality, bool crc_ok);

  [[nodiscard]] bool ladder_mode() const { return !config_.ladder.empty(); }
  [[nodiscard]] std::size_t rate_index() const { return index_; }
  [[nodiscard]] double rate_bps() const {
    return ladder_mode() ? config_.ladder[index_].bitrate
                         : config_.rate_table[index_];
  }
  // Current rung (ladder mode only).
  [[nodiscard]] const LadderRung& rung() const { return config_.ladder[index_]; }
  [[nodiscard]] phy::SchemeId scheme() const {
    return ladder_mode() ? config_.ladder[index_].scheme : phy::SchemeId::kFm0;
  }
  [[nodiscard]] const RateControlConfig& config() const { return config_; }

  // Statistics for reporting.
  [[nodiscard]] std::size_t upshifts() const { return upshifts_; }
  [[nodiscard]] std::size_t downshifts() const { return downshifts_; }

 private:
  // Shared hysteresis step behind both observation entry points.
  bool step(double headroom_db, bool crc_ok, bool evm_allows_up,
            bool evm_forces_down, std::size_t table_size);

  RateControlConfig config_;
  std::size_t index_;
  int good_streak_ = 0;
  int bad_streak_ = 0;
  std::size_t upshifts_ = 0;
  std::size_t downshifts_ = 0;
};

}  // namespace pab::mac
