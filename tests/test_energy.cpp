// Energy subsystem tests: MCU power model, ledger, harvester dynamics.
#include <gtest/gtest.h>

#include "energy/harvester.hpp"
#include "energy/ledger.hpp"
#include "energy/mcu.hpp"
#include "energy/planner.hpp"
#include "obs/metrics.hpp"

namespace pab::energy {
namespace {

TEST(Mcu, IdlePowerMatchesPaper) {
  // The paper measures 124 uW in idle (section 6.4).
  McuPowerModel mcu;
  EXPECT_NEAR(mcu.idle_power_w(), 124e-6, 2e-6);
}

TEST(Mcu, BackscatterPowerMatchesPaper) {
  // ~500 uW while backscattering, roughly flat across bitrates (Fig. 11).
  McuPowerModel mcu;
  for (double rate : {100.0, 1000.0, 3000.0}) {
    const double p = mcu.backscatter_power_w(rate);
    EXPECT_GT(p, 450e-6) << rate;
    EXPECT_LT(p, 600e-6) << rate;
  }
}

TEST(Mcu, BackscatterPowerRisesSlightlyWithBitrate) {
  McuPowerModel mcu;
  EXPECT_GT(mcu.backscatter_power_w(3000.0), mcu.backscatter_power_w(100.0));
  // But the switching term stays small relative to the MCU core.
  EXPECT_LT(mcu.backscatter_power_w(3000.0) - mcu.backscatter_power_w(100.0),
            50e-6);
}

TEST(Mcu, StateOrdering) {
  McuPowerModel mcu;
  EXPECT_EQ(mcu.state_power_w(McuState::kOff), 0.0);
  EXPECT_LT(mcu.state_power_w(McuState::kLpm3), mcu.state_power_w(McuState::kIdle));
  EXPECT_LT(mcu.state_power_w(McuState::kIdle), mcu.state_power_w(McuState::kActive));
}

TEST(Mcu, DecodeEnergyScalesWithBits) {
  McuPowerModel mcu;
  const double e10 = mcu.decode_energy_j(10, 5e-3);
  const double e20 = mcu.decode_energy_j(20, 5e-3);
  EXPECT_NEAR(e20, 2.0 * e10, 1e-12);
  EXPECT_GT(e10, 0.0);
}

TEST(Ledger, AccumulatesByCategory) {
  EnergyLedger ledger;
  ledger.add(Category::kHarvested, 1e-3);
  ledger.add(Category::kBackscatter, 2e-4);
  ledger.add(Category::kBackscatter, 3e-4);
  EXPECT_NEAR(ledger.total(Category::kBackscatter), 5e-4, 1e-15);
  EXPECT_NEAR(ledger.harvested(), 1e-3, 1e-15);
  EXPECT_NEAR(ledger.total_consumed(), 5e-4, 1e-15);
}

// Regression guard for total_consumed(): it must be the sum of exactly the
// five consumption categories and exclude harvested energy, independent of
// the enum's numeric layout (the implementation now iterates the categories
// by name, with a static_assert pinning the layout).
TEST(Ledger, TotalConsumedCoversEveryConsumptionCategory) {
  EnergyLedger ledger;
  ledger.add(Category::kHarvested, 100.0);  // must never leak into "consumed"
  ledger.add(Category::kIdle, 1.0);
  ledger.add(Category::kDecode, 2.0);
  ledger.add(Category::kBackscatter, 4.0);
  ledger.add(Category::kSensing, 8.0);
  ledger.add(Category::kLeakage, 16.0);
  EXPECT_NEAR(ledger.total_consumed(), 31.0, 1e-12);
  EXPECT_NEAR(ledger.harvested(), 100.0, 1e-12);
}

TEST(Ledger, ExportsGaugesToRegistry) {
  EnergyLedger ledger;
  ledger.add(Category::kHarvested, 2e-3);
  ledger.add(Category::kBackscatter, 5e-4);
  obs::MetricRegistry reg;
  ledger.export_to(reg, "node0.energy");
  EXPECT_DOUBLE_EQ(reg.gauge("node0.energy.harvested_joules").value(), 2e-3);
  EXPECT_DOUBLE_EQ(reg.gauge("node0.energy.backscatter_joules").value(), 5e-4);
  EXPECT_DOUBLE_EQ(reg.gauge("node0.energy.total_consumed_joules").value(),
                   5e-4);
  EXPECT_DOUBLE_EQ(reg.gauge("node0.energy.idle_joules").value(), 0.0);
}

TEST(Ledger, AveragePower) {
  EnergyLedger ledger;
  ledger.add(Category::kIdle, 124e-6 * 10.0);
  EXPECT_NEAR(ledger.average_power_w(Category::kIdle, 10.0), 124e-6, 1e-12);
}

TEST(Ledger, RejectsNegativeEnergy) {
  EnergyLedger ledger;
  EXPECT_THROW(ledger.add(Category::kIdle, -1.0), std::invalid_argument);
}

// Regression: average_power_w(c, 0.0) used to throw (std::invalid_argument
// via require) the first time a caller asked for power before any time had
// elapsed -- e.g. a dashboard polling a node that had not completed its first
// tick.  Zero energy over zero time is a well-defined "no draw yet": 0 W.
TEST(Ledger, AveragePowerZeroElapsedIsZeroNotAnError) {
  EnergyLedger ledger;
  EXPECT_NO_THROW(ledger.average_power_w(Category::kIdle, 0.0));
  EXPECT_EQ(ledger.average_power_w(Category::kIdle, 0.0), 0.0);
  EXPECT_EQ(ledger.average_power_w(Category::kIdle, -1.0), 0.0);
  // Energy booked but zero elapsed still reports 0 W rather than inf.
  ledger.add(Category::kIdle, 1e-3);
  EXPECT_EQ(ledger.average_power_w(Category::kIdle, 0.0), 0.0);
  // And the normal path is unchanged.
  EXPECT_NEAR(ledger.average_power_w(Category::kIdle, 2.0), 5e-4, 1e-15);
}

TEST(Ledger, TimestampedEntriesAndIntervalQueries) {
  EnergyLedger ledger;
  ledger.record_entries(true);
  ledger.add(0.0, Category::kIdle, 1.0);
  ledger.add(1.5, Category::kIdle, 2.0);
  ledger.add(1.5, Category::kHarvested, 8.0);
  ledger.add(3.0, Category::kIdle, 4.0);
  ASSERT_EQ(ledger.entries().size(), 4u);
  // Interval totals are half-open [t0, t1).
  EXPECT_NEAR(ledger.total_between(Category::kIdle, 0.0, 1.5), 1.0, 1e-15);
  EXPECT_NEAR(ledger.total_between(Category::kIdle, 0.0, 3.0), 3.0, 1e-15);
  EXPECT_NEAR(ledger.total_between(Category::kIdle, 0.0, 3.1), 7.0, 1e-15);
  EXPECT_NEAR(ledger.total_between(Category::kHarvested, 1.0, 2.0), 8.0,
              1e-15);
  // Timestamped adds flow into the same running totals as untimed adds.
  EXPECT_NEAR(ledger.total(Category::kIdle), 7.0, 1e-15);
  // Time cannot run backwards.
  EXPECT_THROW(ledger.add(2.0, Category::kIdle, 1.0), std::invalid_argument);
  // Bad interval.
  EXPECT_THROW(ledger.total_between(Category::kIdle, 2.0, 1.0),
               std::invalid_argument);
}

TEST(Harvester, StepAtMatchesStepAndReportsTransitions) {
  Harvester timed{circuit::Supercapacitor(1000e-6)};
  Harvester untimed{circuit::Supercapacitor(1000e-6)};
  timed.ledger().record_entries(true);
  double t = 0.0;
  PowerEvent last = PowerEvent::kNone;
  int power_ups = 0;
  for (int i = 0; i < 500; ++i) {
    const auto step = timed.step_at(t, 0.01, 1e-3, 200e-6, 5.0);
    untimed.step(0.01, 1e-3, 200e-6, 5.0);
    if (step.event == PowerEvent::kPowerUp) {
      ++power_ups;
      last = step.event;
    }
    EXPECT_GE(step.harvested_j, 0.0);
    EXPECT_GE(step.consumed_j, 0.0);
    t += 0.01;
  }
  EXPECT_EQ(power_ups, 1);
  EXPECT_EQ(last, PowerEvent::kPowerUp);
  EXPECT_DOUBLE_EQ(timed.capacitor_voltage(), untimed.capacitor_voltage());
  EXPECT_DOUBLE_EQ(timed.ledger().harvested(), untimed.ledger().harvested());
  EXPECT_DOUBLE_EQ(timed.ledger().total(Category::kIdle),
                   untimed.ledger().total(Category::kIdle));
  // Timestamped entries cover the whole run.
  EXPECT_FALSE(timed.ledger().entries().empty());
  EXPECT_NEAR(timed.ledger().total_between(Category::kHarvested, 0.0, 5.0),
              timed.ledger().harvested(), 1e-15);
}

// recharge_time_s returns Expected<double> (the old -1.0 sentinel was easy
// to feed into downstream arithmetic unnoticed): a node that harvests
// nothing can never bank a transaction, and that is an error, not a number.
TEST(Planner, RechargeTimeIsExpected) {
  EnergyPlanner planner;
  const TransactionCost cost;
  const auto ok = planner.recharge_time_s(100e-6, cost);
  ASSERT_TRUE(ok.ok());
  EXPECT_NEAR(ok.value(), planner.transaction_energy_j(cost) / 100e-6, 1e-12);
  EXPECT_GT(ok.value(), 0.0);
}

TEST(Planner, RechargeTimeErrorsWithoutHarvest) {
  EnergyPlanner planner;
  const TransactionCost cost;
  const auto zero = planner.recharge_time_s(0.0, cost);
  EXPECT_FALSE(zero.ok());
  EXPECT_EQ(zero.code(), pab::ErrorCode::kInsufficientPower);
  const auto negative = planner.recharge_time_s(-1e-6, cost);
  EXPECT_FALSE(negative.ok());
  EXPECT_EQ(negative.code(), pab::ErrorCode::kInsufficientPower);
}

TEST(Harvester, PowersUpAtThreshold) {
  Harvester h{circuit::Supercapacitor(1000e-6)};
  EXPECT_FALSE(h.powered_up());
  // 1 mW charging against a 5 V ceiling: E(2.5V) = 3.125 mJ -> ~3.1 s.
  double t = 0.0;
  while (!h.powered_up() && t < 10.0) {
    h.step(0.01, 1e-3, 0.0, 5.0);
    t += 0.01;
  }
  EXPECT_TRUE(h.powered_up());
  EXPECT_NEAR(t, 3.13, 0.1);
}

TEST(Harvester, NeverPowersUpBelowCeiling) {
  // Rectifier ceiling below 2.5 V: node can never boot (Fig. 3's dashed
  // "minimum voltage to power up" line).
  Harvester h{circuit::Supercapacitor(1000e-6)};
  for (int i = 0; i < 10000; ++i) h.step(0.01, 1e-3, 0.0, 2.0);
  EXPECT_FALSE(h.powered_up());
  EXPECT_LE(h.capacitor_voltage(), 2.0 + 1e-9);
}

TEST(Harvester, BrownOutOnLoad) {
  Harvester h{circuit::Supercapacitor(100e-6)};
  for (int i = 0; i < 1000 && !h.powered_up(); ++i) h.step(0.01, 1e-3, 0.0, 5.0);
  ASSERT_TRUE(h.powered_up());
  // Heavy load with no harvest: drains below brown-out.
  for (int i = 0; i < 2000; ++i) h.step(0.01, 0.0, 5e-3, 5.0);
  EXPECT_FALSE(h.powered_up());
}

TEST(Harvester, LedgerConservation) {
  Harvester h{circuit::Supercapacitor(1000e-6)};
  for (int i = 0; i < 500; ++i) h.step(0.01, 2e-3, 0.0, 5.0);
  // Everything harvested is either consumed or stored (here: stored).
  const double stored = 0.5 * 1000e-6 * h.capacitor_voltage() * h.capacitor_voltage();
  EXPECT_LE(stored, h.ledger().harvested() + 1e-12);
}

TEST(Harvester, TimeToPowerUpFormula) {
  EXPECT_NEAR(Harvester::time_to_power_up(1e-3, 5.0), 3.125, 1e-9);
  EXPECT_LT(Harvester::time_to_power_up(1e-3, 2.0), 0.0);  // unreachable
  EXPECT_LT(Harvester::time_to_power_up(0.0, 5.0), 0.0);
}

}  // namespace
}  // namespace pab::energy
