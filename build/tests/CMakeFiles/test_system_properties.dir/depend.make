# Empty dependencies file for test_system_properties.
# This may be replaced when dependencies are built.
