#include "sim/field.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pab::sim {

namespace {

// Minimum clearance between any generated node and the region boundary [m],
// so generated fields always sit strictly inside the tank that hosts them.
constexpr double kBoundaryMarginM = 1.0;

double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

double FieldSpec::extent_m() const {
  const double population_d = static_cast<double>(population == 0 ? 1 : population);
  const double side = std::sqrt(population_d * area_per_node_m2);
  // Always leave room for the boundary margin on both sides.
  return std::max(side, 4.0 * kBoundaryMarginM);
}

NodeField::NodeField()
    : positions_{channel::Vec3{1.6, 2.2, 0.65}}, front_ends_{FrontEndSpec{}} {}

NodeField NodeField::empty() {
  NodeField f;
  f.clear();
  return f;
}

NodeField NodeField::single(const channel::Vec3& position,
                            const FrontEndSpec& spec) {
  NodeField f = empty();
  f.push_back(position, spec);
  return f;
}

NodeField NodeField::from_nodes(std::vector<channel::Vec3> positions,
                                std::vector<FrontEndSpec> specs) {
  require(positions.size() == specs.size(),
          "NodeField::from_nodes: positions/specs size mismatch");
  NodeField f = empty();
  f.positions_ = std::move(positions);
  f.front_ends_ = std::move(specs);
  return f;
}

NodeField NodeField::generate(const FieldSpec& spec) {
  require(spec.layout != FieldLayout::kExplicit,
          "NodeField::generate: kExplicit fields are hand-placed, not generated");
  require(spec.population > 0, "NodeField::generate: population must be > 0");
  require(spec.area_per_node_m2 > 0.0,
          "NodeField::generate: area_per_node_m2 must be > 0");
  require(spec.depth_m > 2.0 * kBoundaryMarginM,
          "NodeField::generate: depth too shallow for boundary margin");

  const double extent = spec.extent_m();
  const double lo = kBoundaryMarginM;
  const double hi = extent - kBoundaryMarginM;
  const double z_lo = kBoundaryMarginM;
  const double z_hi = spec.depth_m - kBoundaryMarginM;
  const std::size_t n = static_cast<std::size_t>(spec.population);

  NodeField f = empty();
  switch (spec.layout) {
    case FieldLayout::kGrid: {
      // Square lattice: ceil(sqrt(n)) columns, row-major, nodes at mid-depth.
      const std::size_t cols = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(n))));
      const std::size_t rows = (n + cols - 1) / cols;
      const double z = clamp(0.5 * spec.depth_m, z_lo, z_hi);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t r = j / cols;
        const std::size_t c = j % cols;
        // Cell centers of a cols x rows partition of the usable square.
        const double x =
            lo + (hi - lo) * (static_cast<double>(c) + 0.5) / static_cast<double>(cols);
        const double y =
            lo + (hi - lo) * (static_cast<double>(r) + 0.5) / static_cast<double>(rows);
        f.push_back({x, y, z}, spec.front_end);
      }
      break;
    }
    case FieldLayout::kRandom: {
      Rng rng(spec.seed);
      for (std::size_t j = 0; j < n; ++j) {
        const double x = rng.uniform(lo, hi);
        const double y = rng.uniform(lo, hi);
        const double z = rng.uniform(z_lo, z_hi);
        f.push_back({x, y, z}, spec.front_end);
      }
      break;
    }
    case FieldLayout::kClusters: {
      require(spec.clusters > 0, "NodeField::generate: clusters must be > 0");
      Rng rng(spec.seed);
      std::vector<channel::Vec3> centers;
      centers.reserve(static_cast<std::size_t>(spec.clusters));
      for (std::uint64_t c = 0; c < spec.clusters; ++c) {
        centers.push_back({rng.uniform(lo, hi), rng.uniform(lo, hi),
                           rng.uniform(z_lo, z_hi)});
      }
      // Round-robin membership keeps cluster sizes balanced and the draw
      // order independent of cluster count bookkeeping.
      for (std::size_t j = 0; j < n; ++j) {
        const channel::Vec3& c = centers[j % centers.size()];
        const double x = clamp(c.x + rng.gaussian(0.0, spec.cluster_spread_m), lo, hi);
        const double y = clamp(c.y + rng.gaussian(0.0, spec.cluster_spread_m), lo, hi);
        const double z =
            clamp(c.z + rng.gaussian(0.0, 0.25 * spec.cluster_spread_m), z_lo, z_hi);
        f.push_back({x, y, z}, spec.front_end);
      }
      break;
    }
    case FieldLayout::kExplicit:
      break;  // unreachable (require above)
  }
  return f;
}

void NodeField::push_back(const channel::Vec3& position, const FrontEndSpec& spec) {
  positions_.push_back(position);
  front_ends_.push_back(spec);
}

void NodeField::set_position(std::size_t j, const channel::Vec3& position) {
  positions_.at(j) = position;
}

void NodeField::set_front_end(std::size_t j, const FrontEndSpec& spec) {
  front_ends_.at(j) = spec;
}

void NodeField::clear() {
  positions_.clear();
  front_ends_.clear();
}

}  // namespace pab::sim
