// Windowed-sinc FIR filter design and application.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace pab::dsp {

// Linear-phase low-pass FIR via windowed sinc.  `cutoff_hz` is the -6 dB
// point; `taps` should be odd (it is bumped to odd if even).
[[nodiscard]] std::vector<double> design_lowpass_fir(double cutoff_hz,
                                                     double sample_rate,
                                                     std::size_t taps,
                                                     WindowType window = WindowType::kHamming);

// Band-pass FIR between [low_hz, high_hz].
[[nodiscard]] std::vector<double> design_bandpass_fir(double low_hz, double high_hz,
                                                      double sample_rate,
                                                      std::size_t taps,
                                                      WindowType window = WindowType::kHamming);

// Direct-form convolution, "same" alignment compensated for the filter's
// group delay: output[i] corresponds to input[i] for linear-phase `h`.
[[nodiscard]] std::vector<double> fir_filter(std::span<const double> h,
                                             std::span<const double> x);

// Complex-input variant (for baseband processing).
[[nodiscard]] std::vector<std::complex<double>> fir_filter(
    std::span<const double> h, std::span<const std::complex<double>> x);

// Into-output kernels: y.size() must equal x.size(); `y` must not alias `x`
// (the convolution reads neighbours of x[i] after y[i] is written).  The
// vector-returning overloads above are thin wrappers over these, so results
// are bit-identical by construction.
void fir_filter_into(std::span<const double> h, std::span<const double> x,
                     std::span<double> y);
void fir_filter_into(std::span<const double> h,
                     std::span<const std::complex<double>> x,
                     std::span<std::complex<double>> y);

}  // namespace pab::dsp
