// Window functions for FIR design and spectral analysis.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace pab::dsp {

enum class WindowType { kRectangular, kHann, kHamming, kBlackman };

[[nodiscard]] inline std::vector<double> make_window(WindowType type, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n < 2) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;
    switch (type) {
      case WindowType::kRectangular:
        w[i] = 1.0;
        break;
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * x);
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * x);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * x) + 0.08 * std::cos(2.0 * kTwoPi * x);
        break;
    }
  }
  return w;
}

}  // namespace pab::dsp
