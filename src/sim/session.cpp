#include "sim/session.hpp"

#include <mutex>
#include <random>
#include <shared_mutex>

#include "phy/metrics.hpp"

namespace pab::sim {

std::uint64_t substream_seed(std::uint64_t base_seed, std::uint64_t stream) {
  std::seed_seq seq{static_cast<std::uint32_t>(base_seed),
                    static_cast<std::uint32_t>(base_seed >> 32),
                    static_cast<std::uint32_t>(stream),
                    static_cast<std::uint32_t>(stream >> 32)};
  std::uint32_t words[2] = {0, 0};
  seq.generate(words, words + 2);
  return (static_cast<std::uint64_t>(words[1]) << 32) | words[0];
}

Session::Session(Scenario scenario, obs::MetricRegistry* metrics)
    : scenario_(std::move(scenario)),
      metrics_(metrics),
      tap_cache_(std::make_shared<channel::TapCache>(
          scenario_.medium.tank, scenario_.medium.max_image_order,
          scenario_.medium.use_image_method, metrics)),
      projector_(scenario_.make_projector()),
      link_(scenario_.medium, scenario_.placement, tap_cache_) {
  require(metrics_ != nullptr, "Session: metrics registry must not be null");
  link_.set_metrics(metrics_);
  n_trials_ = &metrics_->counter("sim.session.trials");
  n_decode_failures_ = &metrics_->counter("sim.session.decode_failures");
  n_mod_hits_ = &metrics_->counter("sim.session.modulation_cache_hits");
  n_mod_misses_ = &metrics_->counter("sim.session.modulation_cache_misses");
  t_trial_ = &metrics_->histogram("sim.session.trial_seconds");
  front_ends_.reserve(scenario_.front_ends.size());
  for (std::size_t j = 0; j < scenario_.front_ends.size(); ++j)
    front_ends_.push_back(scenario_.make_front_end(j));

  // The network simulator is only constructible when every node position lies
  // inside the tank; otherwise leave it unset and let run_network report it.
  std::vector<channel::Vec3> nodes;
  nodes.reserve(scenario_.node_count());
  bool placeable = true;
  for (std::size_t j = 0; j < scenario_.node_count(); ++j) {
    nodes.push_back(scenario_.node_position(j));
    placeable = placeable && scenario_.medium.tank.contains(nodes.back());
  }
  if (placeable) {
    network_.emplace(scenario_.medium, scenario_.placement.projector,
                     scenario_.placement.hydrophone, std::move(nodes),
                     tap_cache_);
  }
}

const core::ModulationStates& Session::modulation(std::size_t j,
                                                  double carrier_hz,
                                                  double bitrate) const {
  const ModKey key{j, carrier_hz, bitrate};
  {
    std::shared_lock lock(modulation_mutex_);
    const auto it = modulation_cache_.find(key);
    if (it != modulation_cache_.end()) {
      n_mod_hits_->add();
      return it->second;
    }
  }
  n_mod_misses_->add();
  // Evaluate outside the lock (circuit-model walk); losing a concurrent race
  // is benign, both compute identical values and the first insert wins.
  const core::ModulationStates states =
      core::modulation_states(front_ends_.at(j), carrier_hz, bitrate);
  std::unique_lock lock(modulation_mutex_);
  const auto [it, inserted] = modulation_cache_.emplace(key, states);
  if (inserted) modulation_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

pab::Expected<Session::UplinkTrial> Session::run(std::uint64_t trial) const {
  if (front_ends_.empty())
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "scenario has no front ends"};
  const obs::ScopedTimer timer(t_trial_);
  n_trials_->add();
  const Waveform& w = scenario_.waveform;
  pab::Rng rng = trial_rng(trial);
  const pab::Bits bits = rng.bits(w.payload_bits);
  const core::ModulationStates& states = modulation(0, w.carrier_hz, w.bitrate);
  auto decoded = link_.run_and_decode(projector_, states, bits, w, rng);
  if (!decoded.ok()) {
    n_decode_failures_->add();
    return decoded.error();
  }

  UplinkTrial out;
  out.sent = bits;
  out.incident_pressure_pa = decoded.value().run.incident_pressure_pa;
  out.modulation_pressure_pa = decoded.value().run.modulation_pressure_pa;
  out.demod = std::move(decoded.value().demod);
  out.ber = phy::bit_error_rate(bits, out.demod.bits);
  return out;
}

pab::Expected<core::NetworkRunResult> Session::run_network(
    std::uint64_t trial) const {
  if (!network_.has_value())
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "scenario nodes not placeable inside the tank"};
  if (scenario_.fdma.carriers_hz.size() != node_count())
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "fdma plan must name one carrier per node"};
  if (front_ends_.size() != node_count())
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "scenario must specify one front end per node"};
  pab::Rng rng = trial_rng(trial);
  return network_->run(projector_, front_ends_, scenario_.fdma, rng);
}

}  // namespace pab::sim
