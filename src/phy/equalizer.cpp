#include "phy/equalizer.hpp"

#include <cmath>

#include "phy/matrix.hpp"
#include "util/error.hpp"

namespace pab::phy {

LinearEqualizer::LinearEqualizer(EqualizerConfig config) : config_(config) {
  require(config.pre_taps >= 0 && config.post_taps >= 0,
          "LinearEqualizer: negative tap counts");
  require(config.ridge >= 0.0, "LinearEqualizer: negative ridge");
}

void LinearEqualizer::train(std::span<const std::complex<double>> rx,
                            std::span<const double> ref) {
  require(rx.size() == ref.size(), "LinearEqualizer: size mismatch");
  const int n_taps = tap_count();
  require(rx.size() >= static_cast<std::size_t>(4 * n_taps),
          "LinearEqualizer: too little training data");

  // Normal equations: (R + ridge*I) w = p with
  //   R[a][b] = sum_t x[t-a'] conj(x[t-b'])   (a' = a - pre_taps)
  //   p[a]    = sum_t conj(x[t-a']) ref[t]
  const int pre = config_.pre_taps;
  const auto x_at = [&](std::ptrdiff_t idx) -> std::complex<double> {
    if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(rx.size())) return {};
    return rx[static_cast<std::size_t>(idx)];
  };

  CMatrix r(static_cast<std::size_t>(n_taps), static_cast<std::size_t>(n_taps));
  std::vector<std::complex<double>> p(static_cast<std::size_t>(n_taps));
  double input_power = 0.0;
  for (const auto& v : rx) input_power += std::norm(v);
  input_power /= static_cast<double>(rx.size());

  for (int a = 0; a < n_taps; ++a) {
    for (int b = 0; b < n_taps; ++b) {
      std::complex<double> acc{};
      for (std::size_t t = 0; t < rx.size(); ++t) {
        acc += std::conj(x_at(static_cast<std::ptrdiff_t>(t) - (a - pre))) *
               x_at(static_cast<std::ptrdiff_t>(t) - (b - pre));
      }
      r.at(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) = acc;
    }
    std::complex<double> acc{};
    for (std::size_t t = 0; t < rx.size(); ++t)
      acc += std::conj(x_at(static_cast<std::ptrdiff_t>(t) - (a - pre))) * ref[t];
    p[static_cast<std::size_t>(a)] = acc;
  }
  const double load = config_.ridge * input_power * static_cast<double>(rx.size());
  for (int a = 0; a < n_taps; ++a)
    r.at(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) += load;

  taps_ = r.solve(std::move(p));
}

void LinearEqualizer::apply_into(std::span<const std::complex<double>> rx,
                                 std::span<std::complex<double>> out) const {
  require(trained(), "LinearEqualizer: not trained");
  require(out.size() == rx.size(), "LinearEqualizer::apply_into: size mismatch");
  const int pre = config_.pre_taps;
  const int n_taps = tap_count();
  for (std::size_t t = 0; t < rx.size(); ++t) {
    std::complex<double> acc{};
    for (int a = 0; a < n_taps; ++a) {
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(t) - (a - pre);
      if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(rx.size())) continue;
      acc += taps_[static_cast<std::size_t>(a)] * rx[static_cast<std::size_t>(idx)];
    }
    out[t] = acc;
  }
}

std::vector<std::complex<double>> LinearEqualizer::apply(
    std::span<const std::complex<double>> rx) const {
  std::vector<std::complex<double>> out(rx.size());
  apply_into(rx, out);
  return out;
}

}  // namespace pab::phy
