file(REMOVE_RECURSE
  "CMakeFiles/test_spectrogram.dir/test_spectrogram.cpp.o"
  "CMakeFiles/test_spectrogram.dir/test_spectrogram.cpp.o.d"
  "test_spectrogram"
  "test_spectrogram.pdb"
  "test_spectrogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
