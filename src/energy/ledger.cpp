#include "energy/ledger.hpp"

#include "util/error.hpp"

namespace pab::energy {

void EnergyLedger::add(Category c, double joules) {
  require(c != Category::kCount, "EnergyLedger: invalid category");
  require(joules >= 0.0, "EnergyLedger: negative energy");
  joules_[static_cast<std::size_t>(c)] += joules;
}

double EnergyLedger::total(Category c) const {
  require(c != Category::kCount, "EnergyLedger: invalid category");
  return joules_[static_cast<std::size_t>(c)];
}

double EnergyLedger::total_consumed() const {
  double sum = 0.0;
  for (std::size_t i = 1; i < joules_.size(); ++i) sum += joules_[i];
  return sum;
}

double EnergyLedger::average_power_w(Category c, double elapsed_s) const {
  require(elapsed_s > 0.0, "EnergyLedger: elapsed time must be positive");
  return total(c) / elapsed_s;
}

void EnergyLedger::reset() { joules_.fill(0.0); }

}  // namespace pab::energy
