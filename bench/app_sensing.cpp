// Section 6.5: sensing applications (pH, temperature, pressure).
//
// Paper: a PAB node integrated with a pH miniprobe (via ADC + conditioning
// AFE) and an MS5837 pressure/temperature sensor (via I2C) reports correct
// readings -- pH of 7, room temperature, ~1 bar -- embedded in backscatter
// packets.  This bench runs the full query -> sense -> backscatter -> decode
// loop through the waveform simulator and compares against ground truth.
#include "bench_util.hpp"
#include "core/link.hpp"
#include "mac/protocol.hpp"
#include "node/node.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace pab;

struct Result {
  const char* quantity;
  double truth;
  double measured;
  bool crc_ok;
};

Result run_query(core::LinkSimulator& sim, node::PabNode& node,
                 const core::Projector& proj, const phy::DownlinkQuery& query,
                 const char* quantity, double truth) {
  Result r{quantity, truth, 0.0, false};
  const auto sliced = sim.downlink_sliced_envelope(
      proj, query, node.config().downlink_pwm, 15000.0);
  const auto received = node.receive_downlink(sliced, sim.config().sample_rate);
  if (!received) return r;
  const auto response = node.process_query(*received);
  if (!response) return r;
  core::UplinkRunConfig ucfg;
  ucfg.bitrate = node.bitrate();
  const auto out = sim.run_and_decode(proj, node.front_end(),
                                      response->to_bits(false), ucfg);
  if (!out.ok()) return r;
  const auto packet = phy::UplinkPacket::from_bits(out.value().demod.bits, false);
  if (!packet) return r;
  const auto reading = mac::parse_response(query, *packet);
  if (!reading) return r;
  r.measured = reading->value;
  r.crc_ok = true;
  return r;
}

void print_series() {
  bench::print_header("Section 6.5", "Sensing applications: pH, temperature, pressure");

  sense::Environment env;
  env.ph = 7.0;             // paper: "the MCU computes the correct pH (of 7)"
  env.temperature_c = 21.0; // room temperature
  env.pressure_mbar = 1013.25;  // ~1 bar

  core::SimConfig sc = sim::Scenario::pool_a().medium;
  core::LinkSimulator sim(sc, core::Placement{});
  const auto proj = core::Projector(piezo::make_projector_transducer(), 300.0);

  node::NodeConfig ncfg;
  ncfg.node_depth_m = 0.0;
  node::PabNode node(ncfg, &env);
  for (int i = 0; i < 6000 && !node.powered_up(); ++i)
    node.harvest_step(0.01, 15000.0, sim.incident_pressure(proj, 15000.0),
                      node::NodeState::kColdStart);
  std::printf("node powered up: %s (capacitor %.2f V)\n\n",
              node.powered_up() ? "yes" : "NO", node.capacitor_voltage());

  const Result results[] = {
      run_query(sim, node, proj, mac::make_read_ph(node.config().id), "pH", env.ph),
      run_query(sim, node, proj, mac::make_read_temperature(node.config().id),
                "temperature [C]", env.temperature_c),
      run_query(sim, node, proj, mac::make_read_pressure(node.config().id),
                "pressure [mbar]", env.pressure_mbar),
  };

  bench::print_row({"quantity", "truth", "measured", "error", "CRC"});
  for (const Result& r : results) {
    bench::print_row({r.quantity, bench::fmt(r.truth, 2),
                      r.crc_ok ? bench::fmt(r.measured, 2) : "-",
                      r.crc_ok ? bench::fmt(r.measured - r.truth, 3) : "-",
                      r.crc_ok ? "ok" : "FAIL"});
  }

  std::printf("\nEnergy ledger after the three transactions:\n");
  const auto& ledger = node.ledger();
  std::printf("  harvested:   %.3f mJ\n", ledger.harvested() * 1e3);
  std::printf("  decode:      %.3f mJ\n",
              ledger.total(energy::Category::kDecode) * 1e3);
  std::printf("  sensing:     %.3f mJ\n",
              ledger.total(energy::Category::kSensing) * 1e3);
  std::printf("  backscatter: %.3f mJ\n",
              ledger.total(energy::Category::kBackscatter) * 1e3);
}

void bm_sensor_transaction(benchmark::State& state) {
  sense::Environment env;
  node::NodeConfig ncfg;
  ncfg.node_depth_m = 0.0;
  node::PabNode node(ncfg, &env);
  for (int i = 0; i < 5000 && !node.powered_up(); ++i)
    node.harvest_step(0.01, 15000.0, 600.0, node::NodeState::kColdStart);
  const auto query = mac::make_read_pressure(node.config().id);
  for (auto _ : state) {
    auto resp = node.process_query(query);
    benchmark::DoNotOptimize(&resp);
  }
}
BENCHMARK(bm_sensor_transaction)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "app_sensing";
  spec.description = "Sensing applications: pH, temperature, pressure";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "app_sensing";
  sweep.kind = pab::sim::TrialKind::kUplink;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 8;
  sweep.axes.push_back({"waveform.payload_bits", {32.0, 64.0, 128.0}});
  spec.campaign = std::move(sweep);
  return pab::bench::run_bench_main(argc, argv, spec);
}
