#include "dsp/envelope.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/mixer.hpp"
#include "util/error.hpp"

namespace pab::dsp {

std::vector<double> envelope_rc(std::span<const double> x, double sample_rate,
                                double tau_s) {
  require(sample_rate > 0.0, "envelope_rc: sample rate must be positive");
  require(tau_s > 0.0, "envelope_rc: time constant must be positive");
  const double alpha = std::exp(-1.0 / (tau_s * sample_rate));
  std::vector<double> env(x.size());
  double y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double rect = std::abs(x[i]);
    // Diode detector: charge fast on rising input, discharge through RC.
    y = rect > y ? rect : alpha * y + (1.0 - alpha) * rect;
    env[i] = y;
  }
  return env;
}

std::vector<double> envelope_coherent(const Signal& x, double carrier_hz,
                                      double lowpass_hz, int order) {
  const BasebandSignal bb = downconvert_filtered(x, carrier_hz, lowpass_hz, order);
  std::vector<double> env(bb.size());
  for (std::size_t i = 0; i < bb.size(); ++i) env[i] = std::abs(bb.samples[i]);
  return env;
}

std::vector<std::uint8_t> schmitt_slice(std::span<const double> envelope,
                                        double high_fraction, double low_fraction) {
  require(high_fraction > low_fraction, "schmitt_slice: thresholds inverted");
  std::vector<std::uint8_t> out(envelope.size(), 0);
  if (envelope.empty()) return out;
  const double peak = *std::max_element(envelope.begin(), envelope.end());
  if (peak <= 0.0) return out;
  const double hi = high_fraction * peak;
  const double lo = low_fraction * peak;
  std::uint8_t level = 0;
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    if (level == 0 && envelope[i] >= hi) level = 1;
    else if (level == 1 && envelope[i] <= lo) level = 0;
    out[i] = level;
  }
  return out;
}

}  // namespace pab::dsp
