// Cold-start and steady-state harvesting dynamics.
//
// Combines the recto-piezo DC output with the supercapacitor and power-up
// logic: during cold start the pull-down transistor is open so all harvested
// energy charges the capacitor (paper section 4.2.1); once the capacitor
// crosses the power-up threshold (2.5 V, Fig. 3) the MCU boots and begins
// drawing its state-dependent load.
#pragma once

#include <cstdint>

#include "circuit/rectopiezo.hpp"
#include "circuit/storage.hpp"
#include "energy/ledger.hpp"
#include "energy/mcu.hpp"

namespace pab::energy {

struct HarvesterParams {
  double power_up_threshold_v = 2.5;  // capacitor voltage to boot (Fig. 3)
  double brown_out_v = 2.1;           // below this the MCU resets
};

// MCU power-state transition caused by one harvesting step.
enum class PowerEvent : std::uint8_t {
  kNone = 0,
  kPowerUp,   // capacitor crossed the power-up threshold; MCU boots
  kBrownOut,  // capacitor sagged below brown-out; MCU resets
};

// What one timestamped step actually booked, so callers (NodeLifecycle) can
// mirror the exact joules into the Timeline event log without re-deriving
// the loads-only-after-power-up rule.
struct HarvestStep {
  PowerEvent event = PowerEvent::kNone;
  double harvested_j = 0.0;
  double consumed_j = 0.0;  // idle load actually drawn (0 before power-up)
};

class Harvester {
 public:
  Harvester(circuit::Supercapacitor cap, HarvesterParams params = {});

  // Advance by `dt` with `p_harvest` watts of DC input (already through the
  // rectifier), `p_load` watts of digital load, and `v_ceiling` the
  // rectifier's open-circuit voltage at the current incident level.
  void step(double dt, double p_harvest, double p_load, double v_ceiling);

  // Timeline-driven variant: identical dynamics, but the ledger entries are
  // timestamped at `t` (the step covers [t, t+dt)) and the power-state
  // transition plus booked joules are returned so the caller can post the
  // matching timeline events.  `t` must not go backwards across calls (it
  // comes from a Timeline).
  HarvestStep step_at(double t, double dt, double p_harvest, double p_load,
                      double v_ceiling);

  [[nodiscard]] bool powered_up() const { return powered_up_; }
  [[nodiscard]] double capacitor_voltage() const { return cap_.voltage(); }
  [[nodiscard]] const EnergyLedger& ledger() const { return ledger_; }
  EnergyLedger& ledger() { return ledger_; }

  // Time to first power-up for constant harvest conditions; returns a
  // negative value if the node can never reach the threshold (ceiling below
  // threshold or zero harvested power).
  [[nodiscard]] static double time_to_power_up(double p_harvest, double v_ceiling,
                                               double capacitance_f = 1000e-6,
                                               double threshold_v = 2.5);

 private:
  circuit::Supercapacitor cap_;
  HarvesterParams params_;
  EnergyLedger ledger_;
  bool powered_up_ = false;
};

}  // namespace pab::energy
