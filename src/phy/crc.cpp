#include "phy/crc.hpp"

namespace pab::phy {
namespace {

constexpr std::uint16_t kPoly = 0x1021;

std::uint16_t step_bit(std::uint16_t crc, std::uint8_t bit) {
  const bool xor_flag = ((crc >> 15) & 1u) != (bit & 1u);
  crc = static_cast<std::uint16_t>(crc << 1);
  if (xor_flag) crc ^= kPoly;
  return crc;
}

}  // namespace

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> bytes, std::uint16_t init) {
  std::uint16_t crc = init;
  for (std::uint8_t byte : bytes)
    for (int i = 7; i >= 0; --i)
      crc = step_bit(crc, static_cast<std::uint8_t>((byte >> i) & 1u));
  return crc;
}

std::uint16_t crc16_bits(std::span<const std::uint8_t> bits, std::uint16_t init) {
  std::uint16_t crc = init;
  for (std::uint8_t b : bits) crc = step_bit(crc, b);
  return crc;
}

}  // namespace pab::phy
