// Concurrent-transmission (collision) simulation and MIMO decoding -- the
// experiment of paper section 6.3 / Fig. 10.
//
// Two recto-piezos (e.g. 15 and 18 kHz) backscatter simultaneously while the
// projector transmits both carriers.  Because backscatter is
// frequency-agnostic, each node modulates both carriers; the hydrophone
// down-converts at both frequencies, estimates the 2x2 channel from staggered
// training sections, and zero-forces to separate the streams.
#pragma once

#include <array>
#include <memory>

#include "channel/tapcache.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/link.hpp"
#include "core/projector.hpp"
#include "core/setup.hpp"
#include "phy/mimo.hpp"

namespace pab::core {

struct CollisionRunConfig {
  std::array<double, 2> carriers_hz{15000.0, 18000.0};
  double bitrate = 250.0;
  std::size_t training_bits = 24;  // per-node staggered training
  std::size_t payload_bits = 96;   // concurrent payload section
};

struct CollisionRunResult {
  // SINR [dB] of each node's stream before and after zero-forcing.
  std::array<double, 2> sinr_before_db{};
  std::array<double, 2> sinr_after_db{};
  double condition_number = 0.0;   // of the estimated channel matrix
  phy::Mat2c channel;              // estimated H
  // Bit error rates of the concurrent payloads after ZF decoding.
  std::array<double, 2> ber_after{};
};

class CollisionSimulator {
 public:
  // `node_positions` places the two nodes in the tank; the projector and
  // hydrophone come from `placement`.
  CollisionSimulator(SimConfig config, Placement placement,
                     channel::Vec3 second_node_position);

  [[nodiscard]] CollisionRunResult run(const Projector& projector,
                                       const circuit::RectoPiezo& node1,
                                       const circuit::RectoPiezo& node2,
                                       const CollisionRunConfig& cfg);

 private:
  SimConfig config_;
  Placement placement_;
  channel::Vec3 node2_pos_;
  pab::Rng rng_;
  std::shared_ptr<channel::TapCache> tap_cache_;
};

}  // namespace pab::core
