// Hierarchical (zoned) inventory scheduling for deployment-scale fields.
//
// A single framed-slotted-ALOHA inventory cannot address 1000+ nodes: node
// ids are uint8 on the wire and every extra node stretches the shared frame.
// The deployment answer is hierarchy -- partition the field into spatial
// zones small enough for the flat protocol, then let *non-interfering* zones
// run concurrently on distinct FDMA carriers (spatial channel reuse), with
// interfering zones serialized into sequential rounds.
//
// Layering: mac sits below channel, so zones arrive as plain data (node
// memberships by global index plus a zone-interference adjacency) computed
// upstream by the sim layer from channel::SpatialIndex.  Everything here is a
// pure function of that data: greedy coloring in zone-id order, carriers from
// mac::plan_channels (whose over-subscription result maps color -> (carrier,
// round)), and a slot-aligned frame schedule per zone.
//
// Timeline contract: zones scheduled in the same round are concurrent and
// *slot-aligned on the master timeline* -- every frame announcement and reply
// slot is a scheduled master-timeline event at its absolute simulated time,
// so concurrent zones genuinely overlap (and can interfere; see below)
// instead of running on isolated sub-timelines.  Each zone posts one
// "mac.zone.inventory.busy_s" charge carrying its own busy duration when it
// completes; each round posts one "mac.zone.round" entry carrying the round
// wall (the maximum concurrent zone duration -- the honest wall: the reader
// round ends when its slowest zone does).  The master clock advances through
// the scheduled slot events themselves, so busy-time and wall-time are
// separate ledgers that never conflate.  Everything is deterministic: zone
// order, per-zone seeds, and the master log are pure functions of the inputs.
//
// Interference model (optional, off by default): concurrent zones are not
// silent to each other.  While zone z listens to a reply slot, every node of
// another zone z' whose own reply window overlaps it is an interferer: its
// reader-path power (a precomputed per-node amplitude, squared) leaks into
// z's receive filter attenuated by the FDMA RejectionMask between the two
// carriers (0 dB when z and z' share a carrier -- same color, same round).
// A singleton reply decodes only when
//   SINR = a_sig^2 / (noise_power + sum_m a_m^2 * rejection_factor)
// clears the capture threshold; below it the slot is a CRC failure, counted
// as a collision (slot conservation holds) plus a corrupted-slot tally.
// Interferer availability is sampled at the overlap start (already in the
// past when the listening slot fires -- causal); the receiving zone's own
// repliers stay sampled at the slot end, exactly the interference-off
// semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mac/fdma.hpp"
#include "mac/inventory.hpp"

namespace pab::sim {
class Timeline;
}  // namespace pab::sim

namespace pab::mac {

// Plain-data zone partition handed down from the sim layer.  `members[z]`
// holds ascending global node indices; `adjacency[z]` the zones whose
// concurrent operation would interfere with z (symmetric, no self-loops).
struct ZoneLayout {
  std::vector<std::vector<std::uint32_t>> members;
  std::vector<std::vector<std::uint32_t>> adjacency;
};

struct ZoneAssignment {
  std::uint32_t color = 0;   // interfering zones always differ
  double carrier_hz = 0.0;   // plan.carrier_for(color)
  std::uint32_t round = 0;   // color / plan.channels(): sequential reuse round
};

struct ZoneSchedule {
  ChannelPlan plan;  // distinct carriers + over-subscription bookkeeping
  std::vector<ZoneAssignment> zones;
  std::size_t colors = 0;
  std::size_t rounds = 0;  // sequential rounds (1 unless colors > channels)
};

// Greedy interference coloring in zone-id order (deterministic: lowest free
// color), then color -> (carrier, round) through the over-subscribed channel
// plan: colors beyond the distinct channel count wrap onto the same carriers
// in later rounds.
[[nodiscard]] ZoneSchedule plan_zones(const ZoneLayout& layout,
                                      const ChannelPlanConfig& config = {});

// Cross-zone interference model, injected as plain data (mac never sees
// positions): the sim layer precomputes each node's reader-path amplitude
// (projector -> node gain times node -> hydrophone gain at the node's zone
// carrier) and mac sums squared amplitudes through the rejection mask.
struct ZoneInterferenceModel {
  bool enabled = false;  // off: bit-identical to the silent-zone schedule
  // Reader-referred noise power in the SINR denominator (amplitude^2 units,
  // the same units as node_amplitude squared).
  double noise_power = 0.0;
  // A singleton decodes iff its slot SINR (dB) reaches this threshold -- the
  // capture effect; below it the reply is a CRC failure.
  double capture_threshold_db = 6.0;
  RejectionMask mask{};  // adjacent-carrier leakage between zone carriers
  // Per *global* node index: reader-path backscatter amplitude.  Must cover
  // every member index when enabled.
  std::span<const double> node_amplitude{};
};

struct ZonedInventoryOptions {
  double frame_announce_s = 0.05;  // per-frame announcement airtime
  double slot_s = 0.02;            // one reply slot
  // Availability by *global* node index at master-timeline time; null means
  // always available.  With interference enabled the predicate must answer
  // for recent past times too (interferers are sampled at overlap starts).
  std::function<bool(std::uint32_t node, double t)> available;
  ZoneInterferenceModel interference{};
};

struct ZonedInventoryResult {
  // Global node indices in discovery order: rounds ascending, zones by id
  // within a round, per-zone discovery order within a zone.
  std::vector<std::uint32_t> identified;
  InventoryStats inventory;  // summed over every zone
  std::size_t zones = 0;
  std::size_t rounds = 0;
  double simulated_s = 0.0;  // sum of per-round maxima (the master wall)
  double busy_s = 0.0;       // sum of per-zone busy durations (>= any round)
  // Interference ledger: singleton replies demoted to CRC failures by the
  // SINR test (each is also counted in inventory.collisions, so slot
  // conservation singletons + collisions + empties == slots still holds).
  std::size_t corrupted_slots = 0;
  // Slots where a SINR was evaluated (exactly the clean + corrupted
  // singleton-reply slots) and the mean SINR over them, dB (0 when none).
  std::size_t sinr_evaluated_slots = 0;
  double mean_slot_sinr_db = 0.0;
};

// Runs the zoned inventory on `timeline`.  Zone-local node ids are uint8
// (1..members), so every zone must hold at most 200 members -- the zoning
// itself is what lifts the flat protocol's uint8 limit to arbitrary
// populations.  Per-zone randomness derives from config.seed and the zone id,
// never from zone execution order.  External events already queued on the
// timeline (lifecycle ticks, pollers) interleave with the zone slots at their
// own absolute timestamps.
[[nodiscard]] ZonedInventoryResult run_zoned_inventory(
    const ZoneLayout& layout, const ZoneSchedule& schedule,
    const InventoryConfig& config, sim::Timeline& timeline,
    const ZonedInventoryOptions& options = {});

}  // namespace pab::mac
