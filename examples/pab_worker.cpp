// pab_worker: one campaign worker process.
//
// Speaks the length-prefixed frame protocol on stdin/stdout -- spawned by
// pab_serve (or any campaign::ProcessExecutor embedding), never run by hand.
// All logic lives in campaign::worker_main so tests can drive a worker over
// plain pipes.
#include "campaign/protocol.hpp"

int main() { return pab::campaign::worker_main(0, 1); }
