#include "core/collision.hpp"

#include <cmath>
#include <utility>

#include "dsp/mixer.hpp"
#include "phy/fm0.hpp"
#include "phy/metrics.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::core {
namespace {

// Expand a chip sequence (+/-1) to per-sample values, starting at sample
// `offset`, `spc` samples per chip; samples outside the burst are 0 (idle).
std::vector<double> expand_chips(const phy::Chips& chips, double spc,
                                 std::size_t offset, std::size_t total) {
  std::vector<double> out(total, 0.0);
  for (std::size_t i = offset; i < total; ++i) {
    const auto chip = static_cast<std::size_t>(
        static_cast<double>(i - offset) / spc);
    if (chip >= chips.size()) break;
    out[i] = static_cast<double>(chips[chip]);
  }
  return out;
}

// Remove the mean of a complex stream (the un-modulated carrier offset).
std::vector<dsp::cplx> remove_mean(std::vector<dsp::cplx> x) {
  // By value + in place: callers move the baseband in, avoiding a full copy.
  dsp::cplx mean{};
  for (const auto& v : x) mean += v;
  mean /= static_cast<double>(std::max<std::size_t>(x.size(), 1));
  for (auto& v : x) v -= mean;
  return x;
}

}  // namespace

CollisionSimulator::CollisionSimulator(SimConfig config, Placement placement,
                                       channel::Vec3 second_node_position)
    : config_(config),
      placement_(placement),
      node2_pos_(second_node_position),
      rng_(config.seed),
      tap_cache_(std::make_shared<channel::TapCache>(
          config.tank, config.max_image_order, config.use_image_method)) {
  require(config_.tank.contains(second_node_position),
          "CollisionSimulator: node 2 outside tank");
}

CollisionRunResult CollisionSimulator::run(const Projector& projector,
                                           const circuit::RectoPiezo& node1,
                                           const circuit::RectoPiezo& node2,
                                           const CollisionRunConfig& cfg) {
  const double fs = config_.sample_rate;
  const double spc = fs / (2.0 * cfg.bitrate);
  require(spc >= 4.0, "CollisionSimulator: too few samples per chip");

  // --- Frame layout (chip-aligned sections with guard gaps) -----------------
  const std::size_t tr_chips = 2 * cfg.training_bits;
  const std::size_t pl_chips = 2 * cfg.payload_bits;
  const std::size_t guard_chips = 8;
  const auto chip_samples = [&](std::size_t chips) {
    return static_cast<std::size_t>(std::ceil(static_cast<double>(chips) * spc));
  };
  const std::size_t lead = chip_samples(guard_chips);
  const std::size_t w1 = lead;                                     // node1 training
  const std::size_t w2 = w1 + chip_samples(tr_chips + guard_chips);  // node2 training
  const std::size_t w3 = w2 + chip_samples(tr_chips + guard_chips);  // payload
  const std::size_t total = w3 + chip_samples(pl_chips + guard_chips);

  // --- Per-node sequences ----------------------------------------------------
  const auto random_chips = [&](std::size_t n) {
    phy::Chips c(n);
    for (auto& v : c) v = rng_.bernoulli(0.5) ? 1 : -1;
    return c;
  };
  const phy::Chips train1 = random_chips(tr_chips);
  const phy::Chips train2 = random_chips(tr_chips);
  const pab::Bits bits1 = rng_.bits(cfg.payload_bits);
  const pab::Bits bits2 = rng_.bits(cfg.payload_bits);
  const phy::Chips pay1 = phy::fm0_encode(bits1);
  const phy::Chips pay2 = phy::fm0_encode(bits2);

  // Per-sample state (+1 reflective / -1 absorptive / 0 idle=absorptive).
  std::vector<double> state1(total, 0.0), state2(total, 0.0);
  {
    const auto t1 = expand_chips(train1, spc, w1, total);
    const auto p1 = expand_chips(pay1, spc, w3, total);
    const auto t2 = expand_chips(train2, spc, w2, total);
    const auto p2 = expand_chips(pay2, spc, w3, total);
    for (std::size_t i = 0; i < total; ++i) {
      state1[i] = t1[i] + p1[i];
      state2[i] = t2[i] + p2[i];
    }
  }

  // --- Waveform synthesis per carrier ----------------------------------------
  const double duration = static_cast<double>(total) / fs;
  const std::array<const circuit::RectoPiezo*, 2> nodes{&node1, &node2};
  const std::array<channel::Vec3, 2> node_pos{placement_.node, node2_pos_};

  dsp::Signal capture;
  capture.sample_rate = fs;
  std::vector<std::vector<dsp::cplx>> y_env(2);  // per-carrier envelope at hydrophone

  for (std::size_t ci = 0; ci < 2; ++ci) {
    const double f = cfg.carriers_hz[ci];
    const dsp::BasebandSignal tx = projector.cw_envelope(f, duration, fs);
    const auto taps_ph =
        tap_cache_->taps(placement_.projector, placement_.hydrophone, f);
    dsp::BasebandSignal sum = channel::apply_taps_baseband(tx, *taps_ph);

    for (std::size_t nj = 0; nj < 2; ++nj) {
      const auto taps_pn = tap_cache_->taps(placement_.projector, node_pos[nj], f);
      const auto taps_nh = tap_cache_->taps(node_pos[nj], placement_.hydrophone, f);
      const dsp::BasebandSignal at_node = channel::apply_taps_baseband(tx, *taps_pn);
      const dsp::cplx g_r = nodes[nj]->scatter_gain(f, true);
      const dsp::cplx g_a = nodes[nj]->scatter_gain(f, false);
      const auto& st = nj == 0 ? state1 : state2;
      dsp::BasebandSignal scat;
      scat.sample_rate = fs;
      scat.carrier_hz = f;
      scat.samples.resize(at_node.size());
      for (std::size_t i = 0; i < at_node.size(); ++i) {
        const double s = i < st.size() ? st[i] : 0.0;
        scat.samples[i] = at_node.samples[i] * (s > 0.0 ? g_r : g_a);
      }
      sum.accumulate(channel::apply_taps_baseband(scat, *taps_nh));
    }
    y_env[ci] = std::move(sum.samples);
  }

  // Passband reconstruction + noise.
  std::size_t n = 0;
  for (const auto& e : y_env) n = std::max(n, e.size());
  capture.samples.resize(n);
  const double sens = config_.hydrophone.volts_per_pascal();
  const double noise_sd = config_.noise.sample_stddev_pa(fs);
  for (std::size_t i = 0; i < n; ++i) {
    double p = rng_.gaussian(0.0, noise_sd);
    for (std::size_t ci = 0; ci < 2; ++ci) {
      if (i >= y_env[ci].size()) continue;
      const double ph = kTwoPi * cfg.carriers_hz[ci] * static_cast<double>(i) / fs;
      p += y_env[ci][i].real() * std::cos(ph) - y_env[ci][i].imag() * std::sin(ph);
    }
    capture.samples[i] = sens * p;
  }

  // --- Receiver ---------------------------------------------------------------
  const double cutoff = 2.5 * cfg.bitrate;
  std::array<std::vector<dsp::cplx>, 2> y;
  for (std::size_t ci = 0; ci < 2; ++ci) {
    dsp::BasebandSignal bb =
        dsp::downconvert_filtered(capture, cfg.carriers_hz[ci], cutoff, 5);
    y[ci] = remove_mean(std::move(bb.samples));
  }

  // Alignment: the node modulates on its local clock, so the state pattern
  // reaches the hydrophone delayed by the node->hydrophone leg only (plus
  // the receive filter's group delay, found by the refinement search below).
  const double c_sound = channel::sound_speed_mackenzie(config_.tank.water);
  std::array<std::size_t, 2> delay{};
  for (std::size_t nj = 0; nj < 2; ++nj) {
    const double d = channel::distance(node_pos[nj], placement_.hydrophone);
    delay[nj] = static_cast<std::size_t>(std::lround(d / c_sound * fs));
  }

  const auto window = [&](const std::vector<dsp::cplx>& stream, std::size_t start,
                          std::size_t len, std::size_t shift) {
    std::vector<dsp::cplx> out(len, dsp::cplx{});
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t idx = start + shift + i;
      if (idx < stream.size()) out[i] = stream[idx];
    }
    return out;
  };

  const std::size_t tr_len = chip_samples(tr_chips);
  const std::size_t pl_len = chip_samples(pl_chips);
  const auto ref_train1 = expand_chips(train1, spc, 0, tr_len);
  const auto ref_train2 = expand_chips(train2, spc, 0, tr_len);
  const auto ref_pay1 = expand_chips(pay1, spc, 0, pl_len);
  const auto ref_pay2 = expand_chips(pay2, spc, 0, pl_len);

  // Refine each node's alignment around the geometric delay: the receive
  // low-pass adds group delay the geometry does not know about.  Search a
  // few chips of extra shift for the strongest training correlation.
  const auto refine = [&](const std::vector<dsp::cplx>& stream, std::size_t wstart,
                          const std::vector<double>& ref, std::size_t base) {
    std::size_t best = base;
    double best_m = -1.0;
    const auto span_max = base + static_cast<std::size_t>(3.0 * spc);
    for (std::size_t s = base; s <= span_max; ++s) {
      const auto w = window(stream, wstart, ref.size(), s);
      dsp::cplx acc{};
      for (std::size_t i = 0; i < ref.size(); ++i) acc += w[i] * ref[i];
      const double m = std::abs(acc);
      if (m > best_m) { best_m = m; best = s; }
    }
    return best;
  };
  delay[0] = refine(y[0], w1, ref_train1, delay[0]);
  delay[1] = refine(y[1], w2, ref_train2, delay[1]);

  // Channel estimation from the staggered training sections.
  phy::Mat2c h;
  h.h11 = phy::estimate_channel_gain(window(y[0], w1, tr_len, delay[0]), ref_train1);
  h.h21 = phy::estimate_channel_gain(window(y[1], w1, tr_len, delay[0]), ref_train1);
  h.h12 = phy::estimate_channel_gain(window(y[0], w2, tr_len, delay[1]), ref_train2);
  h.h22 = phy::estimate_channel_gain(window(y[1], w2, tr_len, delay[1]), ref_train2);

  CollisionRunResult result;
  result.channel = h;
  result.condition_number = h.condition_number();

  // Chip-matched filtering: integrate each stream over chip periods before
  // measuring SINR or decoding, as the paper's offline receiver does.  The
  // per-chip references are the raw chip sequences.
  const auto integrate = [&](const std::vector<dsp::cplx>& x) {
    std::vector<dsp::cplx> out(pl_chips, dsp::cplx{});
    for (std::size_t c = 0; c < pl_chips; ++c) {
      const auto lo = static_cast<std::size_t>(
          std::lround(static_cast<double>(c) * spc));
      const auto hi = static_cast<std::size_t>(
          std::lround(static_cast<double>(c + 1) * spc));
      dsp::cplx acc{};
      std::size_t cnt = 0;
      for (std::size_t i = lo; i < hi && i < x.size(); ++i) { acc += x[i]; ++cnt; }
      out[c] = cnt ? acc / static_cast<double>(cnt) : dsp::cplx{};
    }
    return out;
  };
  const std::vector<double> chip_ref1(pay1.begin(), pay1.end());
  const std::vector<double> chip_ref2(pay2.begin(), pay2.end());

  // SINR before projection: each node read off "its" carrier directly.
  const auto y1_chips = integrate(window(y[0], w3, pl_len, delay[0]));
  const auto y2_chips = integrate(window(y[1], w3, pl_len, delay[1]));
  result.sinr_before_db[0] = phy::measure_sinr_db(y1_chips, chip_ref1);
  result.sinr_before_db[1] = phy::measure_sinr_db(y2_chips, chip_ref2);

  // Zero-forcing on the payload section (each node's own alignment for its
  // output stream), then chip integration.
  const auto zf0 = phy::zero_force(window(y[0], w3, pl_len, delay[0]),
                                   window(y[1], w3, pl_len, delay[0]), h);
  const auto zf1 = phy::zero_force(window(y[0], w3, pl_len, delay[1]),
                                   window(y[1], w3, pl_len, delay[1]), h);
  const auto x1_chips = integrate(zf0.x1);
  const auto x2_chips = integrate(zf1.x2);
  result.sinr_after_db[0] = phy::measure_sinr_db(x1_chips, chip_ref1);
  result.sinr_after_db[1] = phy::measure_sinr_db(x2_chips, chip_ref2);

  // Decode the concurrent payloads from the ZF chip streams.
  const auto decode_ber = [&](const std::vector<dsp::cplx>& chips,
                              const pab::Bits& truth) {
    std::vector<double> soft(chips.size());
    for (std::size_t i = 0; i < chips.size(); ++i) soft[i] = chips[i].real();
    const pab::Bits decoded = phy::fm0_decode_ml(soft);
    return phy::bit_error_rate(truth, decoded);
  };
  result.ber_after[0] = decode_ber(x1_chips, bits1);
  result.ber_after[1] = decode_ber(x2_chips, bits2);
  return result;
}

}  // namespace pab::core
