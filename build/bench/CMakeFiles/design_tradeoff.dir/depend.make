# Empty dependencies file for design_tradeoff.
# This may be replaced when dependencies are built.
