# Empty compiler generated dependencies file for ablation_transducer.
# This may be replaced when dependencies are built.
