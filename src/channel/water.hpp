// Physical properties of the water medium.
//
// Sound speed follows Mackenzie (1981); absorption follows Thorp's formula.
// Both are the standard engineering models for underwater acoustics in the
// 10-20 kHz band the paper operates in.
#pragma once

namespace pab::channel {

struct WaterProperties {
  double temperature_c = 20.0;  // [Celsius]
  double salinity_ppt = 0.0;    // [parts per thousand]; 0 for tank fresh water
  double depth_m = 1.0;         // nominal depth of the link [m]
  double density = 998.0;       // [kg/m^3]
};

// Mackenzie (1981) nine-term sound speed equation [m/s].
// Valid for T in [-2, 30] C, S in [25, 40] ppt, depth to 8000 m; degrades
// gracefully for fresh water (S=0) where it stays within ~0.3% of measured
// values at tank depths.
[[nodiscard]] double sound_speed_mackenzie(const WaterProperties& w);

// Thorp absorption coefficient [dB/km] at `freq_hz` (power attenuation).
[[nodiscard]] double thorp_absorption_db_per_km(double freq_hz);

// One-way transmission loss [dB] over `distance_m` with spherical spreading
// plus Thorp absorption: TL = 20 log10(d) + alpha * d / 1000.
[[nodiscard]] double transmission_loss_db(double distance_m, double freq_hz);

// Linear amplitude gain over a path of `distance_m` (relative to the 1 m
// reference where source level is defined).
[[nodiscard]] double path_amplitude_gain(double distance_m, double freq_hz);

// Characteristic acoustic impedance rho*c [Pa s/m].
[[nodiscard]] double acoustic_impedance(const WaterProperties& w);

}  // namespace pab::channel
