// Ablation: reader-side rate adaptation over the Fig. 8 SNR profile.
//
// The node exposes a kSetBitrate command (section 5.1a) and its usable rate
// depends on SNR (Figs. 7/8).  A fixed rate either wastes headroom (too
// slow) or fails outright (too fast) as conditions change; the controller
// walks the clock-divider table to track the channel.  This bench replays a
// link whose SNR degrades and recovers (e.g. a drifting node) and compares
// goodput for fixed rates vs the adaptive controller.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "mac/rate_control.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace pab;

// Fig. 8-shaped link model: SNR at 100 bps given by the episode profile,
// falling ~3 dB per rate-table step; packets fail when SNR < 3 dB (Fig. 7).
double snr_at(double snr_100bps, std::size_t rate_index) {
  return snr_100bps - 3.0 * static_cast<double>(rate_index);
}

// SNR profile over 200 polls: good -> degraded (node drifted away) -> good.
double profile(int poll) {
  if (poll < 70) return 26.0;
  if (poll < 130) return 14.0;
  return 26.0;
}

struct Outcome {
  double delivered_bits = 0.0;
  double airtime_s = 0.0;
  [[nodiscard]] double goodput() const {
    return airtime_s > 0.0 ? delivered_bits / airtime_s : 0.0;
  }
};

Outcome run_fixed(std::size_t rate_index, Rng& rng) {
  const mac::RateControlConfig cfg;
  Outcome o;
  for (int poll = 0; poll < 200; ++poll) {
    const double rate = cfg.rate_table[rate_index];
    const double snr = snr_at(profile(poll), rate_index) + rng.gaussian(0.0, 1.0);
    const double payload = 96.0;
    o.airtime_s += 0.2 + payload / rate;  // downlink + uplink
    if (snr >= 3.0) o.delivered_bits += payload;
  }
  return o;
}

Outcome run_adaptive(Rng& rng, std::size_t* final_index) {
  mac::RateController rc;
  Outcome o;
  for (int poll = 0; poll < 200; ++poll) {
    const double rate = rc.rate_bps();
    const double snr =
        snr_at(profile(poll), rc.rate_index()) + rng.gaussian(0.0, 1.0);
    const bool ok = snr >= 3.0;
    const double payload = 96.0;
    o.airtime_s += 0.2 + payload / rate;
    if (ok) o.delivered_bits += payload;
    (void)rc.observe(snr, ok);
  }
  if (final_index) *final_index = rc.rate_index();
  return o;
}

void print_series() {
  bench::print_header("Ablation: rate adaptation",
                      "Goodput over a degrade-and-recover episode (200 polls)");
  Rng rng(7);
  const mac::RateControlConfig cfg;

  bench::print_row({"policy", "delivered [b]", "airtime [s]", "goodput [bps]"});
  double best_fixed = 0.0;
  for (std::size_t idx : {0ul, 3ul, 5ul, 7ul, 9ul}) {
    const auto o = run_fixed(idx, rng);
    best_fixed = std::max(best_fixed, o.goodput());
    bench::print_row({"fixed " + bench::fmt(cfg.rate_table[idx], 0) + " bps",
                      bench::fmt(o.delivered_bits, 0), bench::fmt(o.airtime_s, 1),
                      bench::fmt(o.goodput(), 1)});
  }
  std::size_t final_index = 0;
  const auto adaptive = run_adaptive(rng, &final_index);
  bench::print_row({"adaptive", bench::fmt(adaptive.delivered_bits, 0),
                    bench::fmt(adaptive.airtime_s, 1),
                    bench::fmt(adaptive.goodput(), 1)});

  std::printf("\nadaptive vs best fixed: %.2fx (and no outage during the\n"
              "degraded phase, unlike the fast fixed rates)\n",
              adaptive.goodput() / std::max(best_fixed, 1e-9));
  std::printf("final adapted rate: %.0f bps\n", cfg.rate_table[final_index]);
}

void bm_controller(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    mac::RateController rc;
    for (int i = 0; i < 200; ++i)
      (void)rc.observe(20.0 + rng.gaussian(0.0, 3.0), true);
    benchmark::DoNotOptimize(rc.rate_index());
  }
}
BENCHMARK(bm_controller)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "ablation_rate_adaptation";
  spec.description = "Goodput over a degrade-and-recover episode";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "ablation_rate_adaptation";
  sweep.kind = pab::sim::TrialKind::kUplink;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 12;
  sweep.axes.push_back({"waveform.bitrate", {250.0, 1000.0, 4000.0}});
  spec.campaign = std::move(sweep);
  return pab::bench::run_bench_main(argc, argv, spec);
}
