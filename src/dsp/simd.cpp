#include "dsp/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "dsp/fftconv.hpp"
#include "dsp/simd_kernels.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pab::dsp::simd {
namespace {

// ---- scalar reference table -------------------------------------------------
// These loops are the pre-vectorization kernels verbatim (same expressions,
// same evaluation order): under scalar dispatch every caller that routed its
// inner loop through dsp::simd computes bit-identical results to the code it
// replaced.  Do not "clean up" the arithmetic here -- the PAB_SIMD=off
// bit-identity contract depends on it.

double scalar_sum(const double* x, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

double scalar_dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

cplx scalar_dot_conj(const cplx* x, const cplx* t, std::size_t n) {
  cplx acc{};
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * std::conj(t[i]);
  return acc;
}

CovVarRaw scalar_cov_var(const double* x, const double* t, std::size_t n,
                         double x_mean) {
  double cov = 0.0, x_var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xc = x[i] - x_mean;
    cov += xc * t[i];
    x_var += xc * xc;
  }
  return {cov, x_var};
}

void scalar_axpy_d(double g, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += g * x[i];
}

void scalar_axpy_c(cplx g, const cplx* x, cplx* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += g * x[i];
}

void scalar_magnitude(const cplx* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::abs(x[i]);
}

void scalar_cmul(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void scalar_mix_down(const double* x, double w, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = w * static_cast<double>(i);
    out[i] = 2.0 * x[i] * cplx(std::cos(ph), -std::sin(ph));
  }
}

void scalar_mix_up(const cplx* x, double w, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = w * static_cast<double>(i);
    out[i] = x[i].real() * std::cos(ph) - x[i].imag() * std::sin(ph);
  }
}

void scalar_tone(double w, double amplitude, double phase, double* out,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = amplitude * std::sin(w * static_cast<double>(i) + phase);
}

void scalar_chip_sum_diff(const double* soft, double* sum, double* diff,
                          std::size_t n) {
  for (std::size_t t = 0; t < n; ++t) {
    sum[t] = soft[2 * t] + soft[2 * t + 1];
    diff[t] = soft[2 * t] - soft[2 * t + 1];
  }
}

constexpr KernelTable kScalarTable = {
    scalar_sum,     scalar_dot,     scalar_dot_conj, scalar_cov_var,
    scalar_axpy_d,  scalar_axpy_c,  scalar_magnitude, scalar_cmul,
    scalar_mix_down, scalar_mix_up, scalar_tone,     scalar_chip_sum_diff,
};

// ---- dispatch ---------------------------------------------------------------

const KernelTable* table_for(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return avx2_kernels();
    case Isa::kNeon:
      return neon_kernels();
    case Isa::kScalar:
      break;
  }
  return &kScalarTable;
}

Isa detect_isa() {
  if (avx2_kernels() != nullptr) return Isa::kAvx2;
  if (neon_kernels() != nullptr) return Isa::kNeon;
  return Isa::kScalar;
}

struct Dispatch {
  std::atomic<const KernelTable*> table{&kScalarTable};
  std::atomic<int> isa{static_cast<int>(Isa::kScalar)};
  std::atomic<bool> fftconv{true};

  Dispatch() {
    Isa chosen = detect_isa();
    bool conv = true;
    if (const char* env = std::getenv("PAB_SIMD"); env != nullptr) {
      const std::string_view v(env);
      if (v == "off" || v == "0" || v == "scalar" || v == "false") {
        chosen = Isa::kScalar;
        conv = false;  // FFT conv is tolerance-equal, not bit-equal: off too
      } else if (v == "avx2") {
        chosen = avx2_kernels() != nullptr ? Isa::kAvx2 : Isa::kScalar;
      } else if (v == "neon") {
        chosen = neon_kernels() != nullptr ? Isa::kNeon : Isa::kScalar;
      }
      // "on" / "1" / "auto" / anything else: keep auto-detection.
    }
    set(chosen);
    fftconv.store(conv, std::memory_order_relaxed);
    publish();
  }

  void set(Isa i) {
    table.store(table_for(i), std::memory_order_relaxed);
    isa.store(static_cast<int>(i), std::memory_order_relaxed);
  }

  // Register the dispatch metrics so every bench sidecar carries them even
  // when a run never crosses into the FFT path.
  void publish() const {
    auto& reg = obs::MetricRegistry::global();
    reg.gauge("dsp.simd.dispatch")
        .set(static_cast<double>(isa.load(std::memory_order_relaxed)));
    reg.gauge("dsp.fftconv.crossover_len")
        .set(static_cast<double>(fftconv_fir_crossover()));
    (void)reg.counter("dsp.fftconv.hits");
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

Isa active() {
  return static_cast<Isa>(dispatch().isa.load(std::memory_order_relaxed));
}

bool enabled() { return active() != Isa::kScalar; }

bool fftconv_enabled() {
  return dispatch().fftconv.load(std::memory_order_relaxed);
}

Isa force_isa(Isa isa) {
  Dispatch& d = dispatch();
  const Isa prev = static_cast<Isa>(d.isa.load(std::memory_order_relaxed));
  if (table_for(isa) == &kScalarTable) isa = Isa::kScalar;  // host lacks it
  d.set(isa);
  d.publish();
  return prev;
}

bool force_fftconv(bool on) {
  Dispatch& d = dispatch();
  const bool prev = d.fftconv.load(std::memory_order_relaxed);
  d.fftconv.store(on, std::memory_order_relaxed);
  return prev;
}

// ---- public wrappers --------------------------------------------------------

namespace {
const KernelTable& kernels() {
  return *dispatch().table.load(std::memory_order_relaxed);
}
}  // namespace

double sum(std::span<const double> x) {
  return kernels().sum(x.data(), x.size());
}

double dot(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "simd::dot: size mismatch");
  return kernels().dot(a.data(), b.data(), a.size());
}

cplx dot_conj(std::span<const cplx> x, std::span<const cplx> t) {
  require(x.size() == t.size(), "simd::dot_conj: size mismatch");
  return kernels().dot_conj(x.data(), t.data(), x.size());
}

CovVar centered_cov_var(std::span<const double> x, std::span<const double> t,
                        double x_mean) {
  require(x.size() == t.size(), "simd::centered_cov_var: size mismatch");
  const CovVarRaw r =
      kernels().centered_cov_var(x.data(), t.data(), x.size(), x_mean);
  return {r.cov, r.var};
}

void axpy(double g, std::span<const double> x, std::span<double> y) {
  require(y.size() >= x.size(), "simd::axpy: output too small");
  kernels().axpy_d(g, x.data(), y.data(), x.size());
}

void axpy(cplx g, std::span<const cplx> x, std::span<cplx> y) {
  require(y.size() >= x.size(), "simd::axpy: output too small");
  kernels().axpy_c(g, x.data(), y.data(), x.size());
}

void magnitude(std::span<const cplx> x, std::span<double> out) {
  require(out.size() == x.size(), "simd::magnitude: size mismatch");
  kernels().magnitude(x.data(), out.data(), x.size());
}

void cmul(std::span<const cplx> a, std::span<const cplx> b,
          std::span<cplx> out) {
  require(a.size() == b.size() && out.size() == a.size(),
          "simd::cmul: size mismatch");
  kernels().cmul(a.data(), b.data(), out.data(), a.size());
}

void mix_down(std::span<const double> x, double w, std::span<cplx> out) {
  require(out.size() == x.size(), "simd::mix_down: size mismatch");
  kernels().mix_down(x.data(), w, out.data(), x.size());
}

void mix_up(std::span<const cplx> x, double w, std::span<double> out) {
  require(out.size() == x.size(), "simd::mix_up: size mismatch");
  kernels().mix_up(x.data(), w, out.data(), x.size());
}

void tone(double w, double amplitude, double phase, std::span<double> out) {
  kernels().tone(w, amplitude, phase, out.data(), out.size());
}

void chip_sum_diff(std::span<const double> soft, std::span<double> sum,
                   std::span<double> diff) {
  require(sum.size() == diff.size() && soft.size() == 2 * sum.size(),
          "simd::chip_sum_diff: size mismatch");
  kernels().chip_sum_diff(soft.data(), sum.data(), diff.data(), sum.size());
}

}  // namespace pab::dsp::simd
