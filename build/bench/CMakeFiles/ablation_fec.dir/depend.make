# Empty dependencies file for ablation_fec.
# This may be replaced when dependencies are built.
