#include "circuit/storage.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pab::circuit {

Supercapacitor::Supercapacitor(double capacitance_f, double initial_v)
    : capacitance_(capacitance_f), voltage_(initial_v) {
  require(capacitance_f > 0.0, "Supercapacitor: capacitance must be positive");
  require(initial_v >= 0.0, "Supercapacitor: negative initial voltage");
}

void Supercapacitor::step(double dt, double p_in, double p_out, double v_ceiling) {
  require(dt >= 0.0, "Supercapacitor: negative dt");
  require(p_in >= 0.0 && p_out >= 0.0, "Supercapacitor: negative power");
  // Energy bookkeeping: E = 1/2 C V^2.  Charging is cut off at the rectifier
  // ceiling; discharge floors at zero.
  double energy = 0.5 * capacitance_ * voltage_ * voltage_;
  double net = p_in;
  if (voltage_ >= v_ceiling) net = 0.0;  // rectifier can no longer push charge
  energy += (net - p_out) * dt;
  energy = std::max(energy, 0.0);
  voltage_ = std::sqrt(2.0 * energy / capacitance_);
  if (net > 0.0) voltage_ = std::min(voltage_, std::max(v_ceiling, 0.0));
}

double Supercapacitor::stored_energy_j() const {
  return 0.5 * capacitance_ * voltage_ * voltage_;
}

void Supercapacitor::set_voltage(double v) {
  require(v >= 0.0, "Supercapacitor: negative voltage");
  voltage_ = v;
}

Ldo::Ldo(LdoParams p) : params_(p) {
  require(p.output_v > 0.0, "Ldo: output voltage must be positive");
  require(p.dropout_v >= 0.0, "Ldo: negative dropout");
  require(p.quiescent_a >= 0.0, "Ldo: negative quiescent current");
}

bool Ldo::in_regulation(double v_in) const {
  return v_in >= params_.output_v + params_.dropout_v;
}

double Ldo::input_power(double v_in, double i_load) const {
  require(i_load >= 0.0, "Ldo: negative load current");
  if (!in_regulation(v_in)) return 0.0;
  return v_in * (i_load + params_.quiescent_a);
}

}  // namespace pab::circuit
