#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "util/error.hpp"

namespace pab::obs {

namespace {

// Shortest representation that round-trips an IEEE-754 double.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

template <typename Map, typename Make>
auto& find_or_create(std::shared_mutex& mutex, Map& map, std::string_view name,
                     Make&& make) {
  {
    std::shared_lock lock(mutex);
    const auto it = map.find(name);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) it = map.emplace(std::string(name), make()).first;
  return *it->second;
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t c = buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      if (i == bounds.size()) return lo;  // overflow bucket: no upper edge
      const double hi = bounds[i];
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += c;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void HistogramSnapshot::merge_from(const HistogramSnapshot& other) {
  if (count == 0 && buckets.empty()) {
    *this = other;
    return;
  }
  require(bounds == other.bounds,
          "HistogramSnapshot::merge_from: bucket bounds differ");
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) {
    const auto it = histograms.find(name);
    if (it == histograms.end())
      histograms.emplace(name, h);
    else
      it->second.merge_from(h);
  }
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : fallback;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + fmt_double(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": {\n";
    out += "      \"count\": " + std::to_string(h.count) + ",\n";
    out += "      \"sum\": " + fmt_double(h.sum) + ",\n";
    out += "      \"mean\": " + fmt_double(h.mean()) + ",\n";
    out += "      \"p50\": " + fmt_double(h.quantile(0.50)) + ",\n";
    out += "      \"p95\": " + fmt_double(h.quantile(0.95)) + ",\n";
    out += "      \"p99\": " + fmt_double(h.quantile(0.99)) + ",\n";
    out += "      \"buckets\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": " + fmt_double(h.bounds[i]) +
             ", \"count\": " + std::to_string(h.buckets[i]) + "}";
    }
    out += "],\n";
    out += "      \"overflow\": " + std::to_string(h.buckets[h.bounds.size()]) +
           "\n    }";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[upper_bounds.size() + 1]()) {
  require(std::is_sorted(bounds_.begin(), bounds_.end()),
          "Histogram: bucket bounds must be sorted");
  require(std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
          "Histogram: bucket bounds must be distinct");
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= target) {
      // Interpolate within [lo, hi) of the winning bucket; the overflow
      // bucket has no upper edge, report its lower edge.
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      if (i == bounds_.size()) return lo;
      const double hi = bounds_[i];
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += c;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) out.buckets[i] = bucket_count(i);
  out.count = count();
  out.sum = sum();
  return out;
}

void Histogram::merge_from(const HistogramSnapshot& other) {
  require(bounds_ == other.bounds,
          "Histogram::merge_from: bucket bounds differ");
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
  count_.fetch_add(other.count, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + other.sum,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::span<const double> Histogram::default_time_buckets() {
  static const std::vector<double> kBuckets = {
      1e-6,   2.5e-6, 5e-6,   1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3,
      2.5e-3, 5e-3,   1e-2,   2.5e-2, 5e-2, 0.1,  0.25, 0.5,    1.0,  2.5,
      5.0,    10.0};
  return kBuckets;
}

Counter& MetricRegistry::counter(std::string_view name) {
  return find_or_create(mutex_, counters_, name,
                        [] { return std::make_unique<Counter>(); });
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  return find_or_create(mutex_, gauges_, name,
                        [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::span<const double> bounds) {
  return find_or_create(mutex_, histograms_, name, [&] {
    return std::make_unique<Histogram>(bounds);
  });
}

void MetricRegistry::reset() {
  std::unique_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::shared_lock lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) out.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_)
    out.histograms.emplace(name, h->snapshot());
  return out;
}

void MetricRegistry::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counter(name).add(v);
  for (const auto& [name, v] : other.gauges) gauge(name).set(v);
  for (const auto& [name, h] : other.histograms)
    histogram(name, h.bounds).merge_from(h);
}

std::string MetricRegistry::to_json() const { return snapshot().to_json(); }

std::string MetricRegistry::to_text() const {
  std::shared_lock lock(mutex_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter %-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge   %-44s %.6g\n", name.c_str(),
                  g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "hist    %-44s count=%llu mean=%.3g p50=%.3g p95=%.3g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->mean(), h->quantile(0.50), h->quantile(0.95));
    out += buf;
  }
  return out;
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

}  // namespace pab::obs
