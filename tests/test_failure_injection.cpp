// Failure injection: the stack must degrade gracefully, not crash or accept
// corrupt data, under brownout, corruption, collisions, clock skew, deep
// fades, and misconfiguration.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/link.hpp"
#include "core/projector.hpp"
#include "mac/protocol.hpp"
#include "mac/scheduler.hpp"
#include "node/node.hpp"
#include "phy/metrics.hpp"
#include "sim/scenario.hpp"

namespace pab {
namespace {

using core::LinkSimulator;
using core::Placement;
using core::Projector;
using core::SimConfig;
using core::UplinkRunConfig;

Projector strong_projector() {
  return Projector(piezo::make_projector_transducer(), 300.0);
}

TEST(FailureInjection, BrownoutSilencesNodeUntilRecharge) {
  sense::Environment env;
  node::PabNode node(node::NodeConfig{}, &env);
  // Charge up.
  for (int i = 0; i < 5000 && !node.powered_up(); ++i)
    node.harvest_step(0.01, 15000.0, 600.0, node::NodeState::kColdStart);
  ASSERT_TRUE(node.powered_up());

  // Projector goes silent while the node keeps backscattering: the 1000 uF
  // capacitor drains below brown-out.
  for (int i = 0; i < 4000 && node.powered_up(); ++i)
    node.harvest_step(0.01, 15000.0, 0.0, node::NodeState::kBackscattering);
  EXPECT_FALSE(node.powered_up());
  EXPECT_FALSE(node.process_query(phy::DownlinkQuery{}).has_value());

  // Carrier returns: the node recovers without intervention.
  for (int i = 0; i < 5000 && !node.powered_up(); ++i)
    node.harvest_step(0.01, 15000.0, 600.0, node::NodeState::kColdStart);
  EXPECT_TRUE(node.powered_up());
  phy::DownlinkQuery ping;
  ping.address = node.config().id;
  EXPECT_TRUE(node.process_query(ping).has_value());
}

TEST(FailureInjection, CorruptedDownlinkIsRejectedNotMisread) {
  sense::Environment env;
  node::PabNode node(node::NodeConfig{}, &env);
  for (int i = 0; i < 5000 && !node.powered_up(); ++i)
    node.harvest_step(0.01, 15000.0, 600.0, node::NodeState::kColdStart);
  ASSERT_TRUE(node.powered_up());

  phy::DownlinkQuery q;
  q.address = node.config().id;
  q.command = phy::Command::kReadPh;
  const double fs = 96000.0;
  auto wave = phy::pwm_encode(q.to_bits(), node.config().downlink_pwm, fs);
  // Chop a hole in the middle of the frame (projector dropout).
  const std::size_t hole_start = wave.size() / 3;
  const std::size_t hole_len = wave.size() / 6;
  std::fill(wave.begin() + static_cast<std::ptrdiff_t>(hole_start),
            wave.begin() + static_cast<std::ptrdiff_t>(hole_start + hole_len),
            std::uint8_t{0});
  const auto decoded = node.receive_downlink(wave, fs);
  // Either nothing decodes, or the checksum rejected a mangled frame; a
  // *wrong but accepted* command would be the failure.
  if (decoded.has_value()) {
    EXPECT_EQ(decoded->command, phy::Command::kReadPh);
    EXPECT_EQ(decoded->address, node.config().id);
  }
}

TEST(FailureInjection, PureNoiseRarelyTriggersPreambleDetector) {
  Rng rng(41);
  phy::BackscatterDemodulator demod{phy::DemodConfig{}};
  int false_alarms = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> env(30000);
    for (auto& v : env) v = 1.0 + rng.gaussian(0.0, 0.05);
    const auto r = demod.demodulate_envelope(env, 96000.0, 32);
    if (r.ok()) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 2) << "detector fires on noise too often";
}

TEST(FailureInjection, SchedulerRecoversFromNoiseBursts) {
  // A link that fails (CRC) on every other attempt: the scheduler's
  // retransmission brings overall delivery to 100%.
  mac::PollScheduler sched(mac::SchedulerConfig{2, 0.2, 0.02});
  int call = 0;
  const auto flaky = [&](const phy::DownlinkQuery&)
      -> Expected<phy::UplinkPacket> {
    if (++call % 2 == 1) return Error{ErrorCode::kCrcMismatch, "burst"};
    phy::UplinkPacket p;
    p.payload = {1};
    return p;
  };
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    if (sched.transact(mac::make_ping(1), flaky, 52, 1000.0).ok()) ++delivered;
  }
  EXPECT_EQ(delivered, 10);
  EXPECT_GE(sched.stats().retries, 5u);
}

TEST(FailureInjection, SameChannelCollisionCorruptsWithoutZf) {
  // Two nodes violating the FDMA plan (same 15 kHz channel, simultaneous):
  // the plain single-link receiver cannot decode reliably -- the failure mode
  // that motivates recto-piezo FDMA + collision decoding.
  SimConfig sc = sim::Scenario::pool_a().medium;
  Placement pl;
  LinkSimulator sim(sc, pl);
  const auto proj = strong_projector();
  const auto fe = circuit::make_recto_piezo(15000.0);
  Rng rng(17);
  const auto bits1 = rng.bits(64);
  const auto bits2 = rng.bits(64);

  UplinkRunConfig cfg;
  auto run1 = sim.run_uplink(proj, fe, bits1, cfg);
  // Second node at comparable link strength, same channel, same time.
  Placement pl2 = pl;
  pl2.node = {0.9, 2.6, 0.65};
  SimConfig sc2 = sc;
  sc2.seed = 77;
  LinkSimulator sim2(sc2, pl2);
  const auto run2 = sim2.run_uplink(proj, fe, bits2, cfg);
  run1.hydrophone_v.accumulate(run2.hydrophone_v);

  phy::DemodConfig dc;
  dc.sample_rate = sc.sample_rate;
  const phy::BackscatterDemodulator demod(dc);
  const auto r = demod.demodulate(run1.hydrophone_v, bits1.size());
  if (r.ok()) {
    const double ber1 = phy::bit_error_rate(bits1, r.value().bits);
    const double ber2 = phy::bit_error_rate(bits2, r.value().bits);
    // Capture effect: at best one stream survives; the other is starved.
    // (With MIMO+FDMA both decode -- see the collision tests.)
    EXPECT_GT(std::max(ber1, ber2), 0.1)
        << "both colliding streams decoded from one capture?";
  }
}

TEST(FailureInjection, ClockSkewToleratedByEnvelopeReceiver) {
  // +/-100 ppm sound-card skew (footnote 12's CFO source) must not break the
  // envelope-based decoder.
  for (double ppm : {-100.0, 100.0}) {
    SimConfig sc = sim::Scenario::pool_a().medium;
    sc.receiver_clock_offset_ppm = ppm;
    LinkSimulator sim(sc, Placement{});
    const auto proj = Projector(piezo::make_projector_transducer(), 50.0);
    const auto fe = circuit::make_recto_piezo(15000.0);
    Rng rng(23);
    const auto bits = rng.bits(64);
    const auto out = sim.run_and_decode(proj, fe, bits, UplinkRunConfig{});
    ASSERT_TRUE(out.ok()) << "ppm=" << ppm;
    EXPECT_EQ(phy::bit_error_rate(bits, out.value().demod.bits), 0.0)
        << "ppm=" << ppm;
  }
}

TEST(FailureInjection, WrongBitrateAssumptionFailsCleanly) {
  SimConfig sc = sim::Scenario::pool_a().medium;
  LinkSimulator sim(sc, Placement{});
  const auto proj = Projector(piezo::make_projector_transducer(), 50.0);
  const auto fe = circuit::make_recto_piezo(15000.0);
  Rng rng(29);
  const auto bits = rng.bits(64);
  UplinkRunConfig cfg;
  cfg.bitrate = 1000.0;
  const auto run = sim.run_uplink(proj, fe, bits, cfg);

  phy::DemodConfig dc;
  dc.sample_rate = sc.sample_rate;
  dc.bitrate = 2800.0;  // reader misconfigured
  const phy::BackscatterDemodulator demod(dc);
  const auto r = demod.demodulate(run.hydrophone_v, bits.size());
  if (r.ok()) {
    EXPECT_GT(phy::bit_error_rate(bits, r.value().bits), 0.1);
  }
}

TEST(FailureInjection, TruncatedCaptureReportsNoPreamble) {
  SimConfig sc = sim::Scenario::pool_a().medium;
  LinkSimulator sim(sc, Placement{});
  const auto proj = Projector(piezo::make_projector_transducer(), 50.0);
  const auto fe = circuit::make_recto_piezo(15000.0);
  Rng rng(31);
  const auto bits = rng.bits(64);
  auto run = sim.run_uplink(proj, fe, bits, UplinkRunConfig{});
  run.hydrophone_v.samples.resize(run.hydrophone_v.size() / 10);

  phy::DemodConfig dc;
  dc.sample_rate = sc.sample_rate;
  const phy::BackscatterDemodulator demod(dc);
  const auto r = demod.demodulate(run.hydrophone_v, bits.size());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNoPreamble);
}

TEST(FailureInjection, BadPeripheralCommandLeavesNodeHealthy) {
  sense::Environment env;
  node::PabNode node(node::NodeConfig{}, &env);
  for (int i = 0; i < 5000 && !node.powered_up(); ++i)
    node.harvest_step(0.01, 15000.0, 600.0, node::NodeState::kColdStart);
  ASSERT_TRUE(node.powered_up());

  phy::DownlinkQuery bad;
  bad.command = phy::Command::kSetResonance;
  bad.argument = 200;  // out of range
  EXPECT_FALSE(node.process_query(bad).has_value());

  // The node still answers valid queries afterwards.
  phy::DownlinkQuery ping;
  ping.command = phy::Command::kPing;
  EXPECT_TRUE(node.process_query(ping).has_value());
}

}  // namespace
}  // namespace pab
