// Frequency-domain backscatter (M-FSK) for the uplink.
//
// Instead of FM0's level coding, the node toggles its reflection switch at a
// per-symbol subcarrier rate, so the hydrophone envelope carries a square-wave
// tone whose frequency encodes the symbol (Akhtar et al., "Frequency-based
// Ultrasonic Backscatter Modulation", see PAPERS.md).  The on-air format keeps
// the standard FM0 uplink preamble -- so packet detection and two-level
// channel estimation reuse the proven correlation front end -- and switches to
// tone symbols for the payload:
//
//   [ FM0 preamble chips @ 2*bitrate ][ tone symbols @ symbol_rate ... ]
//
// Tone k sits at (2 + k) * symbol_rate, i.e. an integer 2+k cycles per symbol
// window, so the Goertzel bins are orthogonal over the exact window and
// detection is a per-symbol argmax over the dsp/goertzel bank.  Everything is
// allocation-free in steady state: scratch is carved from the caller's Arena.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "dsp/arena.hpp"
#include "dsp/iir.hpp"
#include "phy/modem.hpp"
#include "phy/scheme_id.hpp"

namespace pab::phy {

// Symbol geometry of an M-FSK operating point.  `bitrate` is the *data* bit
// rate (the ladder's currency); the symbol rate is bitrate / bits_per_symbol.
struct FskParams {
  double bitrate = 1000.0;
  double sample_rate = 96000.0;
  int bits_per_symbol = 1;  // 1 -> FSK2, 2 -> FSK4

  [[nodiscard]] int tone_count() const { return 1 << bits_per_symbol; }
  [[nodiscard]] double symbol_rate() const {
    return bitrate / static_cast<double>(bits_per_symbol);
  }
  // Tone k at (2 + k) * symbol_rate: integer cycles per symbol window.
  [[nodiscard]] double tone_hz(int k) const {
    return (2.0 + static_cast<double>(k)) * symbol_rate();
  }
  [[nodiscard]] double max_tone_hz() const { return tone_hz(tone_count() - 1); }
  [[nodiscard]] std::size_t symbols_for(std::size_t n_bits) const {
    const auto bps = static_cast<std::size_t>(bits_per_symbol);
    return (n_bits + bps - 1) / bps;
  }

  [[nodiscard]] static FskParams from(SchemeId id, double bitrate,
                                      double sample_rate);
};

// On-air sample count for [preamble + n_bits payload] at `params`.
[[nodiscard]] std::size_t fsk_waveform_length(const FskParams& params,
                                              std::size_t n_bits);

// Modulate [standard uplink preamble + data_bits] into per-sample switch
// states.  out.size() must equal fsk_waveform_length(params, data_bits.size());
// scratch holds the preamble chips for the call's duration.  Partial trailing
// symbols are zero-padded (the demodulator truncates to n_bits).
void fsk_waveform_into(const FskParams& params,
                       std::span<const std::uint8_t> data_bits,
                       std::span<SwitchState> out, dsp::Arena& scratch);

// Goertzel-bank demodulator for the format above.  Mirrors
// BackscatterDemodulator's contract (same DemodConfig front end, same
// Expected error codes, same zero-allocation discipline); `config.bitrate`
// is the data bit rate and the low-pass cutoff is widened to pass the top
// tone regardless of `lowpass_factor`.
class FskDemodulator {
 public:
  FskDemodulator(DemodConfig config, int bits_per_symbol);

  [[nodiscard]] Expected<bool> demodulate_into(std::span<const double> passband,
                                               double sample_rate,
                                               std::size_t n_bits,
                                               dsp::Arena& scratch,
                                               DemodResult& out) const;
  [[nodiscard]] Expected<bool> demodulate_envelope_into(
      std::span<const double> envelope, double envelope_rate,
      std::size_t n_bits, dsp::Arena& scratch, DemodResult& out) const;

  [[nodiscard]] const DemodConfig& config() const { return config_; }
  [[nodiscard]] const FskParams& params() const { return params_; }

 private:
  DemodConfig config_;
  FskParams params_;
  Chips preamble_chips_;
  dsp::BiquadCascade lowpass_;
  obs::Counter* n_attempts_ = nullptr;
  obs::Counter* n_ok_ = nullptr;
  obs::Counter* n_no_preamble_ = nullptr;
  obs::Counter* n_decode_failures_ = nullptr;
};

}  // namespace pab::phy
