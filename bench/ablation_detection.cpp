// Ablation: packet-detection operating curve.
//
// The receiver detects packets by windowed Pearson correlation against the
// FM0 preamble (section 5.1b's "standard packet detection").  This bench maps
// the detector's operating points: detection probability vs SNR at the
// default threshold, and the false-alarm/missed-detection trade as the
// threshold moves -- the numbers behind choosing 0.5.
#include <cmath>

#include "bench_util.hpp"
#include "phy/fm0.hpp"
#include "phy/modem.hpp"
#include "sim/batch.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace pab;

constexpr double kFs = 96000.0;
constexpr double kBitrate = 1000.0;

// Synthetic envelope: pedestal + preamble/payload swing + noise.
std::vector<double> make_envelope(bool with_packet, double snr_db, Rng& rng) {
  const double amp = 0.05;
  const double noise = amp / std::sqrt(power_ratio_from_db(snr_db));
  std::vector<double> env(24000, 1.0);
  if (with_packet) {
    Bits full(phy::uplink_preamble_bits());
    const auto payload = rng.bits(64);
    full.insert(full.end(), payload.begin(), payload.end());
    const auto sw = phy::backscatter_waveform(full, kBitrate, kFs);
    const std::size_t start = 4000;
    for (std::size_t i = 0; i < sw.size() && start + i < env.size(); ++i)
      env[start + i] += sw[i] == phy::SwitchState::kReflective ? amp : -amp;
  }
  for (auto& v : env) v += rng.gaussian(0.0, noise);
  return env;
}

// Each trial draws from its own RNG substream of `base_seed` and the batch
// fans them over the pool, so the curve is schedule-independent.
double detection_rate(double threshold, double snr_db, bool with_packet,
                      std::size_t trials, std::uint64_t base_seed,
                      const sim::BatchRunner& batch) {
  phy::DemodConfig cfg;
  cfg.bitrate = kBitrate;
  cfg.detect_threshold = threshold;
  const phy::BackscatterDemodulator demod(cfg);
  const auto hits =
      batch.map_seeded(trials, base_seed, [&](std::size_t, Rng& rng) {
        const auto env = make_envelope(with_packet, snr_db, rng);
        return demod.demodulate_envelope(env, kFs, 64).ok() ? 1 : 0;
      });
  int total = 0;
  for (int h : hits) total += h;
  return static_cast<double>(total) / static_cast<double>(trials);
}

void print_series() {
  bench::print_header("Ablation: packet detection",
                      "Detection probability and false alarms vs threshold");
  const sim::BatchRunner batch;
  std::uint64_t point = 0;

  bench::print_row({"chip SNR [dB]", "P(detect) @0.5"});
  for (double snr : {-6.0, -3.0, 0.0, 3.0, 6.0, 12.0}) {
    bench::print_row(
        {bench::fmt(snr, 0),
         bench::fmt(detection_rate(0.5, snr, true, 30, 5500 + point++, batch),
                    2)});
  }

  std::printf("\n");
  bench::print_row({"threshold", "P(detect) @0dB", "P(false alarm)"});
  for (double th : {0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    bench::print_row(
        {bench::fmt(th, 1),
         bench::fmt(detection_rate(th, 0.0, true, 30, 5500 + point++, batch), 2),
         bench::fmt(detection_rate(th, 0.0, false, 30, 5500 + point++, batch),
                    2)});
  }
  std::printf("\nShape: the default threshold (0.5) detects essentially every\n"
              "packet at the FM0 decode floor (~2 dB chip SNR, Fig. 7) while\n"
              "keeping false alarms on pure noise near zero.\n");
}

void bm_detection(benchmark::State& state) {
  Rng rng(1);
  const auto env = make_envelope(true, 6.0, rng);
  const phy::BackscatterDemodulator demod{phy::DemodConfig{}};
  for (auto _ : state) {
    auto r = demod.demodulate_envelope(env, kFs, 64);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(bm_detection)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "ablation_detection";
  spec.description = "Detection probability and false alarms vs threshold";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "ablation_detection";
  sweep.kind = pab::sim::TrialKind::kUplink;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 12;
  sweep.axes.push_back({"noise.psd_db_re_upa", {40.0, 50.0, 60.0}});
  spec.campaign = std::move(sweep);
  spec.required_counters = {"sim.batch.trials"};
  return pab::bench::run_bench_main(argc, argv, spec);
}
