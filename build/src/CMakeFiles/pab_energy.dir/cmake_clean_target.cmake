file(REMOVE_RECURSE
  "libpab_energy.a"
)
