// Ambient acoustic noise models.
//
// Open-water noise follows a simplified Wenz model (shipping + wind + thermal
// components); enclosed test tanks use a flat spectral level dominated by
// facility noise.  Either way the simulator needs the noise standard
// deviation per passband sample at a given sample rate.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace pab::channel {

struct NoiseModel {
  // Power spectral density level [dB re 1 uPa^2/Hz], flat across the band.
  double psd_db_re_upa = 45.0;

  // RMS pressure [Pa] of noise within `bandwidth_hz`.
  [[nodiscard]] double rms_pressure_pa(double bandwidth_hz) const;

  // Standard deviation of per-sample passband noise when sampling at
  // `sample_rate` (noise band = Nyquist).
  [[nodiscard]] double sample_stddev_pa(double sample_rate) const;

  // Generate `n` samples of white Gaussian passband noise [Pa].
  [[nodiscard]] std::vector<double> generate(std::size_t n, double sample_rate,
                                             pab::Rng& rng) const;
};

// Simplified Wenz ambient noise PSD [dB re uPa^2/Hz] at `freq_hz` for given
// shipping activity (0..1) and wind speed [m/s].  Valid ~100 Hz - 100 kHz.
[[nodiscard]] double wenz_noise_psd_db(double freq_hz, double shipping = 0.5,
                                       double wind_speed_ms = 5.0);

// Noise model matching the paper's quiet indoor tank facility.
[[nodiscard]] NoiseModel tank_noise();

// Open-water noise model at `freq_hz` via the Wenz curves.
[[nodiscard]] NoiseModel sea_noise(double freq_hz, double shipping = 0.5,
                                   double wind_speed_ms = 5.0);

}  // namespace pab::channel
