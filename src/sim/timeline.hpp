// Deterministic discrete-event timeline: the single source of simulated time.
//
// Underwater acoustic MACs are latency-dominated (slow sound propagation is
// why polling/FDMA matter at all), so *when* things happen is the quantity
// the network figures are made of.  Before this class, every layer kept its
// own private time axis: the MAC summed airtime into an obs gauge, the energy
// ledger recorded joules with no timestamps, and the time-varying channel
// advanced on its own `t`.  The Timeline replaces those with one monotonic
// event queue that layers either *charge* (post durations and instantaneous
// events to) or *read* (sample state at `now()`); see DESIGN.md §10 for the
// layering rules.
//
// Determinism contract:
//   - events fire in (time, sequence) order -- ties broken by the order the
//     events were created, never by pointer values or hash order;
//   - nothing in this class reads a wall clock, `Date`-style entropy, or any
//     other ambient nondeterminism; a Timeline driven by the same calls
//     produces the same event log, bit for bit, on any thread of any run;
//   - per-label charge totals accumulate through pab::NeumaierSum, so the
//     reported sums are exact to ~1 ulp regardless of event count.
//
// Build note: this file compiles into its own bottom-layer target
// `pab_timeline` (depending only on pab_util + pab_obs) so that mac/ and
// node/ can link it without creating a cycle with the sim umbrella.  It lives
// in the sim/ directory and namespace because simulated time is a simulation
// concern, not a MAC or energy one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace pab::obs {
class MetricRegistry;
}  // namespace pab::obs

namespace pab::sim {

class Timeline;

// How a log entry came to be processed: popped off the queue (kScheduled),
// posted instantaneously at now() (kCharge), or recorded by an elapse
// (kElapse).  The distinction matters for the tie-break guarantee below.
enum class TimelineEventKind : std::uint8_t { kScheduled, kCharge, kElapse };

// One entry of the audit log: everything that consumed or marked simulated
// time, in the exact order it was processed.  `value` is label-dependent --
// a duration in seconds for airtime charges, joules for energy mirrors, a
// node id or zero for markers.  `seq` is the creation sequence number of the
// event (schedule order).  The queue's tie-break guarantee is that
// *scheduled* events at equal time pop in seq order; a charge posted at the
// current time while a same-time event is still pending is processed (and
// logged) at its call site, so charges interleave with equal-time scheduled
// entries by processing order, not by seq.
struct TimelineEvent {
  double time = 0.0;
  std::uint64_t seq = 0;
  std::string label;
  double value = 0.0;
  TimelineEventKind kind = TimelineEventKind::kCharge;

  friend bool operator==(const TimelineEvent&, const TimelineEvent&) = default;
};

// Callback run when a scheduled event fires.  The Timeline is passed back in
// so callbacks can read now() and schedule follow-up events (self-ticking
// node lifecycles do exactly that).
using TimelineCallback = std::function<void(Timeline&)>;

class Timeline {
 public:
  Timeline() = default;

  // Current simulated time in seconds.  Monotonically non-decreasing.
  [[nodiscard]] double now() const { return now_; }

  // --- posting events -------------------------------------------------------

  // Schedule `fn` to run at absolute time `t` (>= now()).  When the event
  // fires it is logged as (t, seq, label, value) *before* `fn` runs, so a
  // callback that charges further events sees itself already in the log.
  // Returns an id usable with cancel().  `fn` may be null (pure marker).
  std::uint64_t schedule_at(double t, std::string_view label,
                            TimelineCallback fn = nullptr, double value = 0.0);

  // Schedule `dt` seconds from now.
  std::uint64_t schedule_in(double dt, std::string_view label,
                            TimelineCallback fn = nullptr, double value = 0.0);

  // Cancel a pending event; returns false if it already fired or was
  // cancelled.  Cancelled events never appear in the log.
  bool cancel(std::uint64_t id);

  // Log an instantaneous event at now() (a marker or a non-time quantity such
  // as mirrored joules).  Does not advance the clock.
  void charge(std::string_view label, double value);

  // Advance the clock by `dt`, firing every event scheduled inside the
  // interval first, then log (label, dt) at the new now().  This is how a
  // layer charges a duration (downlink airtime, a turnaround gap): the elapse
  // *is* the authoritative record of that time being spent.  Note the due
  // events fire at their own timestamps -- elapse never jumps past pending
  // work, which is what keeps the log monotonic.
  void elapse(double dt, std::string_view label);

  // --- running the queue ----------------------------------------------------

  // Fire the earliest pending event; returns false if the queue is empty.
  bool step();

  // Fire every event scheduled at or before `t`, then set now() = t.
  void run_until(double t);

  // Drain the queue completely; now() ends at the last event's time.
  void run();

  // --- inspection -----------------------------------------------------------

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  // Number of log-worthy events processed (fired + charges + elapses).  Equals
  // log().size() while logging is enabled.
  [[nodiscard]] std::size_t events_processed() const { return processed_; }
  [[nodiscard]] const std::vector<TimelineEvent>& log() const { return log_; }
  // Disable/enable log retention for long runs where only the sums matter.
  // Charge totals and events_processed() keep accumulating either way.
  void set_logging(bool enabled) { logging_ = enabled; }

  // Exact (Neumaier) sum of `value` over all processed events with this
  // label; 0.0 for labels never charged.
  [[nodiscard]] double charged(std::string_view label) const;
  // Exact sum over all labels starting with `prefix` (e.g. "mac." for total
  // MAC airtime).  Summed in lexicographic label order -- deterministic.
  [[nodiscard]] double charged_prefix(std::string_view prefix) const;

  // Publish `<prefix>.events_processed`, `<prefix>.simulated_s`, and
  // `<prefix>.pending` gauges (bench sidecars).
  void export_to(obs::MetricRegistry& registry,
                 std::string_view prefix = "sim.timeline") const;

 private:
  struct Scheduled {
    std::string label;
    double value = 0.0;
    TimelineCallback fn;
  };

  void record(double t, std::uint64_t seq, std::string_view label, double value,
              TimelineEventKind kind);

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  // Pending events keyed by (time, seq): std::map iteration *is* the stable
  // (time, sequence) fire order, with no hash- or pointer-order to leak in.
  std::map<std::pair<double, std::uint64_t>, Scheduled> queue_;
  std::map<std::uint64_t, double> id_time_;  // pending id -> scheduled time
  std::vector<TimelineEvent> log_;
  std::map<std::string, NeumaierSum, std::less<>> sums_;
  std::size_t processed_ = 0;
  bool logging_ = true;
};

}  // namespace pab::sim
