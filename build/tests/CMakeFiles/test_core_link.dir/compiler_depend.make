# Empty compiler generated dependencies file for test_core_link.
# This may be replaced when dependencies are built.
