file(REMOVE_RECURSE
  "CMakeFiles/ablation_rate_adaptation.dir/ablation_rate_adaptation.cpp.o"
  "CMakeFiles/ablation_rate_adaptation.dir/ablation_rate_adaptation.cpp.o.d"
  "ablation_rate_adaptation"
  "ablation_rate_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rate_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
