// The acoustic projector (downlink transmitter).
//
// Models the paper's setup of section 5.1a: an in-house cylinder transducer
// driven by a power amplifier.  Emits complex-envelope waveforms whose
// amplitude is the pressure at the 1 m reference distance [Pa]; propagation
// to any point in the tank is applied by the channel layer.
#pragma once

#include <optional>
#include <span>

#include "dsp/signal.hpp"
#include "phy/packet.hpp"
#include "phy/pwm.hpp"
#include "piezo/transducer.hpp"

namespace pab::core {

class Projector {
 public:
  // Physical projector: pressure follows the transducer's TVR at each
  // frequency for the given drive amplitude [V].
  Projector(piezo::Transducer transducer, double drive_v);

  // Idealized flat source producing `pressure_pa` at 1 m regardless of
  // frequency -- models re-matching the power amplifier to the transducer for
  // each operating frequency, as the paper does per configuration.
  [[nodiscard]] static Projector ideal(double pressure_pa);

  // Pressure amplitude [Pa] at 1 m when transmitting at `freq_hz`.
  [[nodiscard]] double pressure_at_1m(double freq_hz) const;

  [[nodiscard]] double drive_voltage() const { return drive_v_; }
  void set_drive_voltage(double v);

  // Continuous-wave envelope of `duration_s` (constant amplitude), preceded
  // by `lead_silence_s` of zeros.
  [[nodiscard]] dsp::BasebandSignal cw_envelope(double freq_hz, double duration_s,
                                                double sample_rate,
                                                double lead_silence_s = 0.0) const;

  // Samples cw_envelope would produce, and the into-output variant
  // (out.size() must equal cw_envelope_length).
  [[nodiscard]] static std::size_t cw_envelope_length(double duration_s,
                                                      double sample_rate,
                                                      double lead_silence_s = 0.0);
  void cw_envelope_into(double freq_hz, double sample_rate,
                        double lead_silence_s, std::span<dsp::cplx> out) const;

  // PWM on/off-keyed downlink query envelope followed by `post_cw_s` of
  // continuous carrier (the energy/backscatter phase after the query).
  [[nodiscard]] dsp::BasebandSignal query_envelope(const phy::DownlinkQuery& query,
                                                   const phy::PwmParams& pwm,
                                                   double freq_hz, double sample_rate,
                                                   double post_cw_s) const;

 private:
  Projector() = default;

  std::optional<piezo::Transducer> transducer_;
  double drive_v_ = 0.0;
  double flat_pressure_pa_ = -1.0;  // >= 0 selects the ideal flat model
};

}  // namespace pab::core
