# Empty compiler generated dependencies file for marine_tag_fdma.
# This may be replaced when dependencies are built.
