# Empty dependencies file for fig8_snr_bitrate.
# This may be replaced when dependencies are built.
