// MAC scheduling: TDMA polling baseline and FDMA concurrent access.
//
// The projector acts as an RFID-style reader.  In TDMA mode it polls one node
// at a time on a single carrier; in FDMA mode, recto-piezos on different
// channels answer concurrently and the hydrophone separates collisions with
// the MIMO decoder -- "enabling doubling the network throughput" (abstract).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "phy/packet.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace pab::sim {
class Timeline;
}  // namespace pab::sim

namespace pab::mac {

// One reader->node->reader exchange executed by the surrounding simulation.
// Returns the decoded uplink packet or a link-layer error.
using TransactFn =
    std::function<pab::Expected<phy::UplinkPacket>(const phy::DownlinkQuery&)>;

// Snapshot view of a scheduler's transaction accounting.  The counters live
// in an obs::MetricRegistry (`mac.poll.*`); this struct is what stats()
// assembles from them for callers.
struct TransactionStats {
  std::size_t attempts = 0;
  std::size_t successes = 0;
  std::size_t crc_failures = 0;
  std::size_t no_response = 0;
  std::size_t retries = 0;
  double payload_bits_delivered = 0.0;
  double elapsed_s = 0.0;

  [[nodiscard]] double success_rate() const {
    return attempts > 0 ? static_cast<double>(successes) /
                              static_cast<double>(attempts)
                        : 0.0;
  }
  [[nodiscard]] double goodput_bps() const {
    return elapsed_s > 0.0 ? payload_bits_delivered / elapsed_s : 0.0;
  }
};

struct SchedulerConfig {
  int max_retries = 2;          // per query, on CRC failure / no response
  double downlink_time_s = 0.2; // airtime of one query (PWM is slow)
  double turnaround_s = 0.02;   // guard between downlink and uplink
  // Wait before each retry (a real timed event on the Timeline, not just a
  // counter bump).  0 preserves the historical immediate-retry behaviour.
  double retry_backoff_s = 0.0;
  // Give up on a query once its accumulated airtime (downlink + turnaround +
  // uplink + backoff) reaches this budget, even if retries remain.  The
  // default (infinity) preserves the historical retry-until-exhausted
  // behaviour.
  double query_timeout_s = std::numeric_limits<double>::infinity();
};

class PollScheduler {
 public:
  // Transaction accounting goes to `metrics` under `mac.poll.*`.  By default
  // each scheduler owns a private registry (stats() then reports exactly this
  // scheduler's transactions, as the old hand-rolled struct did); pass an
  // external registry to fold the counters into a shared export, e.g. a bench
  // sidecar via obs::MetricRegistry::global().
  //
  // With a `timeline`, every airtime phase is charged as a timed event
  // ("mac.downlink", "mac.turnaround", "mac.uplink", "mac.retry_backoff")
  // plus zero-duration outcome markers ("mac.retry", "mac.no_response",
  // "mac.crc_failure", "mac.payload_bits", "mac.query_timeout"), so the full
  // TransactionStats can be reconstructed from the event log alone -- the
  // `timeline.event_reconstruction` invariant in src/check asserts exactly
  // that.  Without one, the scheduler is its own clock (legacy adapter mode)
  // and accounting is unchanged.
  explicit PollScheduler(SchedulerConfig config = {},
                         obs::MetricRegistry* metrics = nullptr,
                         sim::Timeline* timeline = nullptr);

  void set_timeline(sim::Timeline* timeline) { timeline_ = timeline; }

  // Execute one query with retries; updates stats with airtime accounting.
  // `uplink_bits` and `uplink_bitrate` size the response airtime.  Uplink
  // airtime is charged only for attempts where a reply actually arrived
  // (decoded or CRC-failed); a no-response attempt costs the downlink query
  // and turnaround alone.
  [[nodiscard]] pab::Expected<phy::UplinkPacket> transact(
      const phy::DownlinkQuery& query, const TransactFn& link,
      std::size_t uplink_bits, double uplink_bitrate);

  // Poll each (address, query) pair once, in order.
  void poll_round(std::span<const phy::DownlinkQuery> queries,
                  const TransactFn& link, std::size_t uplink_bits,
                  double uplink_bitrate);

  [[nodiscard]] TransactionStats stats() const;
  void reset_stats();

 private:
  // Charge one airtime phase: elapse it on the timeline (when attached), add
  // it to the drift-free elapsed accumulator, mirror it into the legacy
  // gauge, and count it against the current query's timeout budget.
  void charge_airtime(double dt, std::string_view label, double& spent);

  SchedulerConfig config_;
  std::unique_ptr<obs::MetricRegistry> own_metrics_;  // when none injected
  sim::Timeline* timeline_ = nullptr;
  obs::Counter* n_attempts_;
  obs::Counter* n_successes_;
  obs::Counter* n_crc_failures_;
  obs::Counter* n_no_response_;
  obs::Counter* n_retries_;
  obs::Gauge* payload_bits_delivered_;
  obs::Gauge* elapsed_s_;
  // stats().elapsed_s comes from this compensated sum, not the gauge: a plain
  // double += (what a Gauge does internally) drifts by ~1e-6 s over millions
  // of transactions, which the drift regression in tests/test_mac.cpp pins
  // down.  The gauge keeps its historical accumulate-in-place semantics for
  // shared-registry exports.
  NeumaierSum elapsed_exact_;
};

}  // namespace pab::mac
