// Scenario: the immutable description of one simulated experiment.
//
// A Scenario bundles everything that used to be plumbed separately through
// core::SimConfig / core::Placement / per-run config structs: the tank and
// medium, instrument placement, the projector, the node field (every node's
// position and front end, see sim/field.hpp), and the waveform / FDMA-frame
// parameters.  It is a plain value -- copy it, tweak a field, and you have a
// new experiment; hand it to a sim::Session and it is treated as frozen for
// the session's lifetime.  All Monte-Carlo randomness derives from
// `medium.seed` via per-trial substreams (sim/batch.hpp), so a Scenario value
// pins an experiment bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/tank.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/projector.hpp"
#include "core/setup.hpp"
#include "sim/field.hpp"
#include "sim/waveform.hpp"

namespace pab::sim {

// The acoustic source: either the paper's physical cylinder transducer at a
// drive voltage, or an idealized flat source (re-matched per frequency).
struct ProjectorSpec {
  double drive_v = 50.0;          // physical model: amplifier drive [V]
  bool ideal = false;             // true: flat `ideal_pressure_pa` source
  double ideal_pressure_pa = 300.0;
};

// The reader's own instruments (the battery-powered side of the link).
// Node positions live in the NodeField, never here.
struct ReaderPlacement {
  channel::Vec3 projector{0.5, 0.8, 0.65};
  channel::Vec3 hydrophone{0.8, 1.6, 0.65};
};

struct Scenario {
  // Medium, sampling, noise, and the base RNG seed (the legacy SimConfig
  // block, embedded whole so the core shims interoperate losslessly).
  core::SimConfig medium{};
  // Projector / hydrophone positions.
  ReaderPlacement reader{};
  // Every node: position j and front end j as one indexed collection (the
  // unified accessor that replaces the old placement.node / extra_nodes /
  // parallel front_ends split).  Defaults to the paper's single tank node.
  NodeField field{};
  // Provenance when `field` was generated (kExplicit for hand-placed fields);
  // campaign `field.*` params edit this spec and regenerate.
  FieldSpec field_spec{};

  ProjectorSpec projector{};

  Waveform waveform{};  // single-link uplink trials (Session::run)
  FdmaPlan fdma{};      // concurrent frames (Session::run_network)

  // ---- Named presets (replace the pool_a_config()-style free functions) ----
  [[nodiscard]] static Scenario pool_a();         // 3 x 4 m tank, section 5.1
  [[nodiscard]] static Scenario pool_b();         // 1.2 x 10 m corridor
  [[nodiscard]] static Scenario swimming_pool();  // 10 x 25 m indoor pool
  // The paper's two-node concurrent setup (section 6.3 / Fig. 10): 15 and
  // 18 kHz recto-piezos in Pool A with the ideal projector.
  [[nodiscard]] static Scenario pool_a_concurrent();
  // Deployment-scale open water: a free-field region sized by the spec's
  // population at constant density, reader moored at the region center,
  // nodes laid out by the spec's generator.  The image method is disabled
  // (no walls); this is the geometry the deployment_scale bench sweeps.
  [[nodiscard]] static Scenario open_water(const FieldSpec& spec);

  // ---- Derived accessors ----------------------------------------------------
  [[nodiscard]] std::size_t node_count() const { return field.size(); }
  [[nodiscard]] NodeView node(std::size_t j) const { return field.at(j); }
  [[nodiscard]] const channel::Vec3& node_position(std::size_t j) const {
    return field.position(j);
  }
  // The legacy 3-point placement view (projector / hydrophone / node 0) that
  // the core-layer simulators consume.  Requires a non-empty field.
  [[nodiscard]] core::Placement placement() const {
    return core::Placement{reader.projector, reader.hydrophone, field.position(0)};
  }

  // ---- Fluent copies for sweep construction ---------------------------------
  [[nodiscard]] Scenario with_seed(std::uint64_t seed) const;
  [[nodiscard]] Scenario with_waveform(const Waveform& w) const;
  // Sets the reader instruments and node 0 from the legacy 3-point view.
  [[nodiscard]] Scenario with_placement(const core::Placement& p) const;
  [[nodiscard]] Scenario with_node(const channel::Vec3& node) const;
  // Regenerates geometry from `spec`: tank extent, reader mooring, and the
  // node field (same transform open_water() applies, reusable in sweeps).
  [[nodiscard]] Scenario with_field(const FieldSpec& spec) const;

  // In-place form of with_field, for callers mutating an existing scenario
  // (campaign param application).
  void apply_field(const FieldSpec& spec);

  // Instantiate hardware from the specs.
  [[nodiscard]] core::Projector make_projector() const;
  [[nodiscard]] circuit::RectoPiezo make_front_end(std::size_t j) const;
};

}  // namespace pab::sim
