// Figure 11: Node power consumption vs backscatter bitrate.
//
// Paper: 124 uW in idle (ready to receive/decode a downlink signal) rising to
// ~500 uW while backscattering, roughly flat across 100 bps - 3 kbps, within
// 7% of the component datasheets.
#include <chrono>

#include "bench_util.hpp"
#include "energy/harvester.hpp"
#include "energy/ledger.hpp"
#include "energy/mcu.hpp"
#include "node/lifecycle.hpp"
#include "sim/timeline.hpp"

namespace {

using namespace pab;

void print_series() {
  bench::print_header("Figure 11", "Power consumption vs backscatter bitrate");
  const energy::McuPowerModel mcu;

  bench::print_row({"mode", "power [uW]"});
  bench::print_row({"idle", bench::fmt(mcu.idle_power_w() * 1e6, 1)});
  for (double rate : {100.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0}) {
    bench::print_row({bench::fmt(rate, 0) + " bps",
                      bench::fmt(mcu.backscatter_power_w(rate) * 1e6, 1)});
  }

  // Cross-check against datasheet numbers, as the paper does (section 6.4).
  const auto& p = mcu.params();
  const double datasheet_active =
      p.supply_v * (p.active_current_a + p.ldo_quiescent_a);
  const double measured = mcu.backscatter_power_w(1000.0);
  std::printf("\nidle:          %.0f uW (paper: 124 uW)\n",
              mcu.idle_power_w() * 1e6);
  std::printf("backscatter:   %.0f-%.0f uW (paper: ~500 uW)\n",
              mcu.backscatter_power_w(100.0) * 1e6,
              mcu.backscatter_power_w(3000.0) * 1e6);
  std::printf("vs datasheet:  %.1f %% above MCU+LDO active draw "
              "(paper: within 7%%)\n",
              100.0 * (measured - datasheet_active) / datasheet_active);
  std::printf("Energy per backscattered bit at 1 kbps: %.0f nJ\n",
              mcu.backscatter_power_w(1000.0) / 1000.0 * 1e9);

  // Energy accounting for one representative duty cycle (1 s idle listening,
  // a 1000-bit backscatter frame at 1 kbps), published to the metrics
  // sidecar through the ledger's category gauges.
  energy::EnergyLedger ledger;
  ledger.add(energy::Category::kIdle, mcu.idle_power_w() * 1.0);
  ledger.add(energy::Category::kBackscatter,
             mcu.backscatter_power_w(1000.0) * 1.0);
  ledger.export_to(obs::MetricRegistry::global());
  std::printf("Duty-cycle ledger: %.0f uJ consumed (%.0f uJ idle, %.0f uJ "
              "backscatter)\n",
              ledger.total_consumed() * 1e6,
              ledger.total(energy::Category::kIdle) * 1e6,
              ledger.total(energy::Category::kBackscatter) * 1e6);

  // The same idle draw as an event-driven trajectory: a node cold-starting
  // under 1 mW harvest on a sim::Timeline, ticking its harvester at event
  // timestamps.  Average idle power over the powered interval must land on
  // the figure's 124 uW row; the timeline gauges go into this bench's
  // sidecar (sim.timeline.*), with the wall-time event rate alongside.
  sim::Timeline tl;
  node::LifecycleConfig lc;
  lc.tick_s = 0.01;
  lc.idle_load_w = mcu.idle_power_w();
  lc.harvest_power_w = [](double) { return 1e-3; };
  node::NodeLifecycle cold_start(
      1, energy::Harvester{circuit::Supercapacitor(1000e-6)}, lc);
  cold_start.attach(tl, 10.0);
  const auto t0 = std::chrono::steady_clock::now();
  tl.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  auto& global = obs::MetricRegistry::global();
  tl.export_to(global, "sim.timeline");
  global.gauge("sim.timeline.events_per_sec")
      .set(wall_s > 0.0
               ? static_cast<double>(tl.events_processed()) / wall_s
               : 0.0);
  const auto& node_ledger = cold_start.harvester().ledger();
  const double powered_s =
      10.0 - energy::Harvester::time_to_power_up(1e-3, 5.0);
  std::printf("Timeline cold start: power-up after %.2f s, then %.1f uW "
              "average idle draw over %zu events\n",
              energy::Harvester::time_to_power_up(1e-3, 5.0),
              node_ledger.total(energy::Category::kIdle) / powered_s * 1e6,
              tl.events_processed());
}

void bm_power_model(benchmark::State& state) {
  const energy::McuPowerModel mcu;
  for (auto _ : state) {
    double acc = 0.0;
    for (double r = 100.0; r <= 3000.0; r += 10.0)
      acc += mcu.backscatter_power_w(r);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_power_model);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "fig11_power";
  spec.description = "Power consumption vs backscatter bitrate";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "fig11_power";
  sweep.kind = pab::sim::TrialKind::kTimeline;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 8;
  sweep.timeline["horizon_s"] = 20.0;
  spec.campaign = std::move(sweep);
  return pab::bench::run_bench_main(argc, argv, spec);
}
