// Energy accounting across a node's lifetime.
//
// Tracks harvested and consumed energy by category so experiments can report
// energy-per-bit and verify conservation (consumed + stored <= harvested).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace pab::obs {
class MetricRegistry;
}  // namespace pab::obs

namespace pab::energy {

enum class Category : std::size_t {
  kHarvested = 0,
  kIdle,
  kDecode,
  kBackscatter,
  kSensing,
  kLeakage,
  kCount,
};

[[nodiscard]] constexpr std::string_view to_string(Category c) {
  switch (c) {
    case Category::kHarvested: return "harvested";
    case Category::kIdle: return "idle";
    case Category::kDecode: return "decode";
    case Category::kBackscatter: return "backscatter";
    case Category::kSensing: return "sensing";
    case Category::kLeakage: return "leakage";
    case Category::kCount: break;
  }
  return "?";
}

class EnergyLedger {
 public:
  void add(Category c, double joules);

  [[nodiscard]] double total(Category c) const;
  // Sum of all consumption categories (everything except kHarvested).
  [[nodiscard]] double total_consumed() const;
  [[nodiscard]] double harvested() const { return total(Category::kHarvested); }

  // Average power of a category over `elapsed_s`.
  [[nodiscard]] double average_power_w(Category c, double elapsed_s) const;

  // Publish the ledger as gauges `<prefix>.<category>_joules` plus
  // `<prefix>.total_consumed_joules` (bench sidecars, energy-per-bit
  // reporting).
  void export_to(obs::MetricRegistry& registry,
                 std::string_view prefix = "energy") const;

  void reset();

 private:
  std::array<double, static_cast<std::size_t>(Category::kCount)> joules_{};
};

}  // namespace pab::energy
