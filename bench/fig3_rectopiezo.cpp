// Figure 3: Recto-piezo rectified voltage vs. downlink frequency.
//
// Paper: two recto-piezos, one electrically matched at 15 kHz and one at
// 18 kHz; rectified voltage peaks (~4 V) at each device's match frequency,
// drops below the 2.5 V power-up threshold outside a ~1.5-3 kHz band, and the
// two responses are complementary.
#include "bench_util.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/projector.hpp"

namespace {

using namespace pab;

// Equalized downlink drive: the paper re-matches the power amplifier to the
// projector for each operating frequency, so the incident level at the node
// is roughly constant across the sweep.
constexpr double kIncidentPa = 65.0;
constexpr double kPowerUpV = 2.5;

void print_series() {
  bench::print_header("Figure 3",
                      "Rectified voltage vs frequency for two recto-piezos");
  const auto rp15 = circuit::make_recto_piezo(15000.0);
  const auto rp18 = circuit::make_recto_piezo(18000.0);

  bench::print_row({"f [kHz]", "V(15k) [V]", "V(18k) [V]", ">=2.5V"});
  double peak15 = 0.0, peak15_f = 0.0, peak18 = 0.0, peak18_f = 0.0;
  double band15_lo = 0.0, band15_hi = 0.0, band18_lo = 0.0, band18_hi = 0.0;
  for (double f = 11000.0; f <= 21000.0 + 1.0; f += 250.0) {
    const double v15 = rp15.rectified_open_voltage(f, kIncidentPa);
    const double v18 = rp18.rectified_open_voltage(f, kIncidentPa);
    if (v15 > peak15) { peak15 = v15; peak15_f = f; }
    if (v18 > peak18) { peak18 = v18; peak18_f = f; }
    if (v15 >= kPowerUpV) {
      if (band15_lo == 0.0) band15_lo = f;
      band15_hi = f;
    }
    if (v18 >= kPowerUpV) {
      if (band18_lo == 0.0) band18_lo = f;
      band18_hi = f;
    }
    std::string marks;
    if (v15 >= kPowerUpV) marks += "15k ";
    if (v18 >= kPowerUpV) marks += "18k";
    bench::print_row({bench::fmt(f / 1000.0, 2), bench::fmt(v15),
                      bench::fmt(v18), marks.empty() ? "-" : marks});
  }

  std::printf("\n15 kHz recto-piezo: peak %.2f V at %.2f kHz; power-up band "
              "%.2f-%.2f kHz (%.2f kHz wide)\n",
              peak15, peak15_f / 1000.0, band15_lo / 1000.0, band15_hi / 1000.0,
              (band15_hi - band15_lo) / 1000.0);
  std::printf("18 kHz recto-piezo: peak %.2f V at %.2f kHz; power-up band "
              "%.2f-%.2f kHz (%.2f kHz wide)\n",
              peak18, peak18_f / 1000.0, band18_lo / 1000.0, band18_hi / 1000.0,
              (band18_hi - band18_lo) / 1000.0);
  std::printf("Paper shape: ~4 V peaks at 15/18 kHz, usable bandwidths of\n"
              "1.5-3 kHz, complementary responses enabling FDMA.\n");
}

void bm_rectified_voltage_sweep(benchmark::State& state) {
  const auto rp = circuit::make_recto_piezo(15000.0);
  for (auto _ : state) {
    double acc = 0.0;
    for (double f = 11000.0; f <= 21000.0; f += 100.0)
      acc += rp.rectified_open_voltage(f, kIncidentPa);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_rectified_voltage_sweep)->Unit(benchmark::kMicrosecond);

void bm_matching_network_design(benchmark::State& state) {
  const auto xdcr = piezo::make_node_transducer();
  for (auto _ : state) {
    auto net = circuit::MatchingNetwork::design(
        xdcr.thevenin_impedance(15000.0), 100000.0, 15000.0);
    benchmark::DoNotOptimize(&net);
  }
}
BENCHMARK(bm_matching_network_design);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "fig3_rectopiezo";
  spec.description = "Rectified voltage vs frequency for two recto-piezos";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "fig3_rectopiezo";
  sweep.kind = pab::sim::TrialKind::kUplink;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 8;
  sweep.axes.push_back({"waveform.carrier_hz", {12500.0, 15000.0, 17500.0}});
  spec.campaign = std::move(sweep);
  return pab::bench::run_bench_main(argc, argv, spec);
}
