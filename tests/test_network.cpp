// Multi-node (N > 2) concurrent network simulation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/network.hpp"
#include "sim/scenario.hpp"
#include "util/units.hpp"

namespace pab::core {
namespace {

struct Rig {
  SimConfig config = sim::Scenario::pool_a().medium;
  channel::Vec3 projector{1.5, 1.2, 0.65};
  channel::Vec3 hydrophone{1.5, 2.8, 0.65};
};

std::vector<channel::Vec3> ring_positions(std::size_t n) {
  std::vector<channel::Vec3> pos;
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = kTwoPi * static_cast<double>(j) / static_cast<double>(n);
    pos.push_back({1.5 + 0.6 * std::cos(ang), 2.0 + 0.6 * std::sin(ang), 0.65});
  }
  return pos;
}

NetworkRunConfig plan_for(std::size_t n) {
  NetworkRunConfig cfg;
  if (n == 1) {
    cfg.carriers_hz = {16500.0};
    return cfg;
  }
  for (std::size_t j = 0; j < n; ++j)
    cfg.carriers_hz.push_back(14500.0 + 4000.0 * static_cast<double>(j) /
                                            static_cast<double>(n - 1));
  return cfg;
}

std::vector<circuit::RectoPiezo> front_ends_for(const NetworkRunConfig& cfg) {
  std::vector<circuit::RectoPiezo> fes;
  for (double f : cfg.carriers_hz) fes.push_back(circuit::make_recto_piezo(f));
  return fes;
}

TEST(MultiNode, TwoNodesDecodeAndImprove) {
  Rig s;
  const auto cfg = plan_for(2);
  MultiNodeSimulator sim(s.config, s.projector, s.hydrophone, ring_positions(2));
  const auto r = sim.run(Projector::ideal(300.0), front_ends_for(cfg), cfg);
  ASSERT_EQ(r.ber_after.size(), 2u);
  // Both decodable after ZF.
  EXPECT_LT(r.ber_after[0], 0.05);
  EXPECT_LT(r.ber_after[1], 0.05);
  EXPECT_GT(r.aggregate_goodput_bps, 0.0);
  EXPECT_LT(r.condition_number, 100.0);
}

TEST(MultiNode, ThreeNodesAggregateBeatsTwo) {
  // The section-8 scaling claim: a third channel adds aggregate throughput
  // while conditioning stays workable.  Averaged over seeds: individual
  // placements can drop one marginal link.
  Rig s;
  const auto cfg2 = plan_for(2);
  const auto cfg3 = plan_for(3);
  double sum2 = 0.0, sum3 = 0.0;
  for (std::uint64_t seed : {501u, 502u, 503u}) {
    SimConfig sc = s.config;
    sc.seed = seed;
    MultiNodeSimulator sim2(sc, s.projector, s.hydrophone, ring_positions(2));
    MultiNodeSimulator sim3(sc, s.projector, s.hydrophone, ring_positions(3));
    sum2 += sim2.run(Projector::ideal(300.0), front_ends_for(cfg2), cfg2)
                .aggregate_goodput_bps;
    sum3 += sim3.run(Projector::ideal(300.0), front_ends_for(cfg3), cfg3)
                .aggregate_goodput_bps;
  }
  EXPECT_GT(sum3, sum2);
}

TEST(MultiNode, ConditioningDegradesWhenChannelsCrowd) {
  // Packing more channels into the same mechanical band worsens the channel
  // matrix conditioning -- the bandwidth limit of section 8.
  Rig s;
  const auto cfg2 = plan_for(2);
  const auto cfg5 = plan_for(5);
  MultiNodeSimulator sim2(s.config, s.projector, s.hydrophone, ring_positions(2));
  MultiNodeSimulator sim5(s.config, s.projector, s.hydrophone, ring_positions(5));
  const auto r2 = sim2.run(Projector::ideal(300.0), front_ends_for(cfg2), cfg2);
  const auto r5 = sim5.run(Projector::ideal(300.0), front_ends_for(cfg5), cfg5);
  EXPECT_GT(r5.condition_number, r2.condition_number);
}

TEST(MultiNode, SingleNodeIsCleanBaseline) {
  Rig s;
  const auto cfg = plan_for(1);
  MultiNodeSimulator sim(s.config, s.projector, s.hydrophone, ring_positions(1));
  const auto r = sim.run(Projector::ideal(300.0), front_ends_for(cfg), cfg);
  EXPECT_LT(r.ber_after[0], 0.01);
  // No interference to remove: before ~ after.
  EXPECT_NEAR(r.sinr_before_db[0], r.sinr_after_db[0], 3.0);
}

TEST(MultiNode, MismatchedInputsThrow) {
  Rig s;
  MultiNodeSimulator sim(s.config, s.projector, s.hydrophone, ring_positions(2));
  NetworkRunConfig cfg = plan_for(3);  // 3 carriers for 2 nodes
  EXPECT_THROW((void)sim.run(Projector::ideal(300.0), front_ends_for(cfg), cfg),
               std::invalid_argument);
}

TEST(MultiNode, NodeOutsideTankThrows) {
  Rig s;
  EXPECT_THROW(MultiNodeSimulator(s.config, s.projector, s.hydrophone,
                                  {{-1.0, 0.0, 0.5}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pab::core
