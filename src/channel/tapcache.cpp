#include "channel/tapcache.hpp"

#include <bit>
#include <cmath>
#include <mutex>
#include <utility>

#include "util/error.hpp"

namespace pab::channel {

namespace {

std::uint64_t to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// splitmix64 finalizer: cheap, well-mixed combiner for the key hash.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::size_t TapCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t b : k.bits) h = mix(h ^ b) + 0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(h);
}

TapCache::TapCache(Tank tank, int max_image_order, bool use_image_method,
                   obs::MetricRegistry* metrics, TapQuantization quant)
    : tank_(tank),
      max_image_order_(max_image_order),
      use_image_method_(use_image_method),
      quant_(quant) {
  require(quant_.cell_m >= 0.0, "TapCache: quantization cell must be >= 0");
  if (metrics != nullptr) {
    hits_ = &metrics->counter("channel.tapcache.hits");
    misses_ = &metrics->counter("channel.tapcache.misses");
  }
}

namespace {

double snap(double v, double cell_m) {
  return std::round(v / cell_m) * cell_m;
}

Vec3 snap(const Vec3& p, double cell_m) {
  return {snap(p.x, cell_m), snap(p.y, cell_m), snap(p.z, cell_m)};
}

bool lex_less(const Vec3& a, const Vec3& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.z < b.z;
}

}  // namespace

std::shared_ptr<const TapCache::Taps> TapCache::taps(const Vec3& a, const Vec3& b,
                                                     double freq_hz) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  // In quantized mode the *computation* geometry is the snapped one, so every
  // lookup that maps to a key gets the same bit-identical tap set regardless
  // of which caller populated the entry or on which thread.  Image-method
  // endpoints are canonically ordered (the tap set is reciprocal under swap);
  // free-field taps depend on distance alone, so the key collapses to the
  // quantized distance for maximal sharing across the pair space.
  Vec3 ka = a, kb = b;
  if (quant_.cell_m > 0.0) {
    if (use_image_method_) {
      ka = snap(a, quant_.cell_m);
      kb = snap(b, quant_.cell_m);
      if (lex_less(kb, ka)) std::swap(ka, kb);
    } else {
      ka = Vec3{};
      kb = Vec3{snap(distance(a, b), quant_.cell_m), 0.0, 0.0};
    }
  }
  const Key key{{to_bits(ka.x), to_bits(ka.y), to_bits(ka.z), to_bits(kb.x),
                 to_bits(kb.y), to_bits(kb.z), to_bits(freq_hz)}};
  {
    std::shared_lock lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (hits_ != nullptr) hits_->add();
      return it->second;
    }
  }
  if (misses_ != nullptr) misses_->add();
  // Compute outside the lock; a concurrent duplicate computation is benign
  // (both produce identical taps, the first insert wins).
  auto computed = std::make_shared<const Taps>(
      use_image_method_
          ? image_method_taps(tank_, ka, kb, max_image_order_, freq_hz)
          : free_field_tap(ka, kb, freq_hz, tank_.water));
  std::unique_lock lock(mutex_);
  const auto [it, inserted] = cache_.emplace(key, std::move(computed));
  if (inserted) evaluations_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

}  // namespace pab::channel
