file(REMOVE_RECURSE
  "CMakeFiles/design_tradeoff.dir/design_tradeoff.cpp.o"
  "CMakeFiles/design_tradeoff.dir/design_tradeoff.cpp.o.d"
  "design_tradeoff"
  "design_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
