#include "dsp/fft.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::span<cplx> data, bool inverse) {
  const std::size_t n = data.size();
  require(n != 0 && (n & (n - 1)) == 0, "fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

std::vector<cplx> fft(std::span<const cplx> input) {
  std::vector<cplx> data(input.begin(), input.end());
  data.resize(next_pow2(std::max<std::size_t>(input.size(), 1)), cplx{});
  fft_inplace(data);
  return data;
}

std::vector<cplx> fft(std::span<const double> input) {
  std::vector<cplx> data(input.size());
  std::transform(input.begin(), input.end(), data.begin(),
                 [](double v) { return cplx(v, 0.0); });
  data.resize(next_pow2(std::max<std::size_t>(input.size(), 1)), cplx{});
  fft_inplace(data);
  return data;
}

std::vector<cplx> ifft(std::span<const cplx> input) {
  std::vector<cplx> data(input.begin(), input.end());
  data.resize(next_pow2(std::max<std::size_t>(input.size(), 1)), cplx{});
  fft_inplace(data, /*inverse=*/true);
  return data;
}

namespace {

// Exact-length DFT of a real signal.  Power-of-two lengths go straight
// through the radix-2 kernel; other lengths use Bluestein's chirp-z identity
// nk = (n^2 + k^2 - (k - n)^2) / 2, which turns the DFT into one circular
// convolution of chirp-premultiplied samples against the conjugate chirp --
// computed with power-of-two FFTs of size >= 2 * len - 1.  This keeps the
// frequency axis (df = fs / len) and the amplitude normalization (2 / len)
// tied to the *same* length: zero-padding to a power of two would smear a
// bin-aligned sine across bins and shrink its peak below the unit read-out.
std::vector<cplx> dft_exact(std::span<const double> x) {
  const std::size_t len = x.size();
  if ((len & (len - 1)) == 0) {  // power of two (len > 0)
    std::vector<cplx> data(len);
    std::transform(x.begin(), x.end(), data.begin(),
                   [](double v) { return cplx(v, 0.0); });
    fft_inplace(data);
    return data;
  }

  // chirp[n] = exp(+i pi n^2 / len); angles reduced via n^2 mod 2*len so the
  // argument stays small and exact for any length.
  std::vector<cplx> chirp(len);
  for (std::size_t n = 0; n < len; ++n) {
    const double r = static_cast<double>((n * n) % (2 * len));
    const double ang = kPi * r / static_cast<double>(len);
    chirp[n] = cplx(std::cos(ang), std::sin(ang));
  }

  const std::size_t m = next_pow2(2 * len - 1);
  std::vector<cplx> a(m, cplx{});
  std::vector<cplx> b(m, cplx{});
  for (std::size_t n = 0; n < len; ++n) a[n] = x[n] * std::conj(chirp[n]);
  b[0] = chirp[0];
  for (std::size_t n = 1; n < len; ++n) b[n] = b[m - n] = chirp[n];
  fft_inplace(a);
  fft_inplace(b);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  fft_inplace(a, /*inverse=*/true);

  std::vector<cplx> out(len);
  for (std::size_t k = 0; k < len; ++k) out[k] = std::conj(chirp[k]) * a[k];
  return out;
}

}  // namespace

Spectrum magnitude_spectrum(const Signal& signal) {
  require(signal.sample_rate > 0.0, "magnitude_spectrum: sample rate unset");
  const std::size_t len = signal.size();

  Spectrum s;
  if (len == 0) {
    s.frequency.assign(1, 0.0);
    s.magnitude.assign(1, 0.0);
    return s;
  }

  const auto bins = dft_exact(signal.samples);
  const std::size_t half = len / 2 + 1;
  s.frequency.resize(half);
  s.magnitude.resize(half);
  // Exact-length DFT: bin spacing and amplitude scale both derive from the
  // signal length, so a bin-aligned unit sine reads ~1.0 at its true
  // frequency even when len is not a power of two.
  const double df = signal.sample_rate / static_cast<double>(len);
  const double scale = 2.0 / static_cast<double>(len);
  for (std::size_t i = 0; i < half; ++i) {
    s.frequency[i] = df * static_cast<double>(i);
    // DC and (for even lengths) Nyquist have no mirrored negative-frequency
    // half, so the one-sided fold-in factor of 2 does not apply to them.
    const double sc = (i == 0 || 2 * i == len)
                          ? 1.0 / static_cast<double>(len)
                          : scale;
    s.magnitude[i] = std::abs(bins[i]) * sc;
  }
  return s;
}

std::vector<double> spectral_peaks(const Signal& signal, double threshold_ratio,
                                   double min_separation_hz) {
  const Spectrum s = magnitude_spectrum(signal);
  if (s.magnitude.size() < 3) return {};
  const double global_max = *std::max_element(s.magnitude.begin(), s.magnitude.end());
  if (global_max <= 0.0) return {};
  const double threshold = threshold_ratio * global_max;

  struct Peak {
    double freq;
    double mag;
  };
  std::vector<Peak> peaks;
  for (std::size_t i = 1; i + 1 < s.magnitude.size(); ++i) {
    if (s.magnitude[i] >= threshold && s.magnitude[i] >= s.magnitude[i - 1] &&
        s.magnitude[i] >= s.magnitude[i + 1]) {
      peaks.push_back({s.frequency[i], s.magnitude[i]});
    }
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.mag > b.mag; });

  std::vector<double> out;
  for (const Peak& p : peaks) {
    bool close = false;
    for (double f : out)
      if (std::abs(f - p.freq) < min_separation_hz) { close = true; break; }
    if (!close) out.push_back(p.freq);
  }
  return out;
}

}  // namespace pab::dsp
