// MIMO-style collision decoding for concurrent backscatter transmissions.
//
// Backscatter is frequency-agnostic: a powered-up node modulates reflections
// of *every* impinging carrier (paper section 3.3.2).  With two recto-piezos
// on carriers f1 and f2, the hydrophone observes
//     y(f1) = h1(f1) x1 + h2(f1) x2
//     y(f2) = h1(f2) x1 + h2(f2) x2
// a 2x2 system whose conditioning comes from the frequency selectivity of the
// recto-piezo matching.  The receiver estimates H from per-node training
// segments and decodes by zero-forcing (channel inversion), "projecting on
// the orthogonal of the unwanted channel vector" (section 6.3).
#pragma once

#include <array>
#include <complex>
#include <span>
#include <vector>

namespace pab::phy {

using cplx = std::complex<double>;

struct Mat2c {
  // Row i = observation at carrier i; column j = transmitting node j.
  cplx h11{}, h12{}, h21{}, h22{};

  [[nodiscard]] cplx det() const { return h11 * h22 - h12 * h21; }
  [[nodiscard]] Mat2c inverse() const;
  // 2-norm condition number (via singular values).
  [[nodiscard]] double condition_number() const;
};

// Least-squares scalar channel estimate h = <y, x> / <x, x> over a training
// segment where node reference `x` (+/-1 chips at sample rate) is known and
// the other node is silent.
[[nodiscard]] cplx estimate_channel_gain(std::span<const cplx> y,
                                         std::span<const double> x);

// Zero-forcing separation: [x1;x2] = H^-1 [y1;y2] per sample.
struct ZfOutput {
  std::vector<cplx> x1;
  std::vector<cplx> x2;
};
[[nodiscard]] ZfOutput zero_force(std::span<const cplx> y1, std::span<const cplx> y2,
                                  const Mat2c& h);

}  // namespace pab::phy
