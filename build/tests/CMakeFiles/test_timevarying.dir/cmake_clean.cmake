file(REMOVE_RECURSE
  "CMakeFiles/test_timevarying.dir/test_timevarying.cpp.o"
  "CMakeFiles/test_timevarying.dir/test_timevarying.cpp.o.d"
  "test_timevarying"
  "test_timevarying.pdb"
  "test_timevarying[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timevarying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
