// Time-varying propagation: node mobility and surface motion.
//
// The paper's discussion (section 8) flags mobility and dynamic multipath as
// the challenges of moving from tanks to rivers/oceans.  This models the two
// dominant mechanisms:
//   - a moving endpoint (e.g. a tagged animal): the path delay changes with
//     time, producing Doppler shift and level change; and
//   - a heaving surface (waves): the surface-image path length oscillates,
//     producing time-varying multipath fading.
#pragma once

#include <span>

#include "channel/tank.hpp"
#include "dsp/signal.hpp"

namespace pab::channel {

// Linear-interpolated read of `x` at fractional sample position `pos`; zero
// outside [0, size).  Positions in the final interval [size-1, size)
// interpolate x[size-1] against an implicit zero-padding sample, so the tail
// of a delayed path decays instead of being truncated (a position where x[i]
// is valid must never read as silence).  Shared by the time-varying
// propagation drivers below and the src/check channel invariants.
[[nodiscard]] dsp::cplx sample_at(std::span<const dsp::cplx> x, double pos);

// Straight-line motion of the receive end relative to a fixed source in
// free field.  The output sample at time t is the input evaluated at
// t - tau(t) with carrier phase rotation -2 pi f_c tau(t); Doppler falls out
// naturally from the changing delay.
struct MovingPathConfig {
  Vec3 source{};
  Vec3 rx_start{};
  Vec3 rx_velocity{};  // [m/s]
  WaterProperties water{};
};

[[nodiscard]] dsp::BasebandSignal propagate_moving(const dsp::BasebandSignal& x,
                                                   const MovingPathConfig& cfg);

// --- Event-timestamp sampling ------------------------------------------------
// The discrete-event Timeline (sim/timeline.hpp) asks "what does the channel
// look like *now*?" at event timestamps rather than per baseband sample, so
// the instantaneous geometry/gain/Doppler accessors the propagation drivers
// use internally are public: a node lifecycle samples its harvest power from
// moving_path_gain_at at each tick, and a mid-round perturbation reads the
// same trajectory the sample-level drivers integrate.

// Receiver position at time t along the straight-line trajectory.
[[nodiscard]] Vec3 moving_position_at(const MovingPathConfig& cfg, double t);

// One-way amplitude path gain source->receiver at time t.
[[nodiscard]] double moving_path_gain_at(const MovingPathConfig& cfg,
                                         double carrier_hz, double t);

// Radial Doppler shift [Hz] at time t (positive when the range is closing).
[[nodiscard]] double doppler_shift_at(const MovingPathConfig& cfg,
                                      double carrier_hz, double t);

// Coherent |direct + surface-image| amplitude gain at time t for the wavy
// two-path geometry below (the instantaneous value fade_depth_db sweeps).
struct WavySurfaceConfig;
[[nodiscard]] double wavy_gain_at(const WavySurfaceConfig& cfg,
                                  double carrier_hz, double t);

// Radial Doppler shift [Hz] at t=0 for the configuration above (positive
// when the range is closing).  Equivalent to doppler_shift_at(cfg, f, 0).
[[nodiscard]] double doppler_shift_hz(const MovingPathConfig& cfg, double carrier_hz);

// Two-path (direct + surface image) channel where the surface heaves
// sinusoidally: z_surface(t) = z0 + A sin(2 pi f_w t).  Produces the periodic
// fading a backscatter link sees under waves.
struct WavySurfaceConfig {
  Vec3 source{};
  Vec3 receiver{};
  double surface_z = 1.0;       // mean surface height [m]
  double wave_amplitude = 0.05; // [m]
  double wave_freq_hz = 0.5;    // swell frequency
  double surface_reflection = -0.95;
  WaterProperties water{};
};

[[nodiscard]] dsp::BasebandSignal propagate_wavy(const dsp::BasebandSignal& x,
                                                 const WavySurfaceConfig& cfg);

// Envelope fade depth [dB] between the strongest and weakest coherent sum of
// direct + surface paths over one wave period.
[[nodiscard]] double fade_depth_db(const WavySurfaceConfig& cfg, double carrier_hz);

}  // namespace pab::channel
