// Figure 10: SINR of concurrent backscatter transmissions before and after
// MIMO projection, across 8 node placements.
//
// Paper: before projection the SINR is low (< 3 dB -- backscatter is
// frequency-agnostic, so the two streams collide on both carriers); after
// zero-forcing projection it exceeds 3 dB at every location, with
// location-dependent values.
#include <chrono>

#include "bench_util.hpp"
#include "core/collision.hpp"
#include "sim/batch.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

namespace {

using namespace pab;

struct Location {
  channel::Vec3 node1, node2;
};

const Location kLocations[] = {
    {{1.0, 2.0, 0.65}, {2.0, 2.0, 0.65}},
    {{1.1, 1.8, 0.65}, {1.9, 2.3, 0.65}},
    {{0.9, 2.2, 0.55}, {2.1, 1.8, 0.75}},
    {{1.2, 2.4, 0.65}, {1.8, 1.7, 0.65}},
    {{1.0, 1.6, 0.70}, {2.0, 2.4, 0.60}},
    {{0.8, 2.0, 0.65}, {2.2, 2.1, 0.65}},
    {{1.3, 2.2, 0.60}, {1.7, 1.9, 0.70}},
    {{1.1, 2.5, 0.65}, {2.1, 2.5, 0.65}},
};

void print_series() {
  bench::print_header(
      "Figure 10", "SINR before/after MIMO projection, 8 locations, 2 nodes");

  // One Scenario per placement, all derived from the paper's concurrent
  // preset (ideal 300 Pa projector, 15/18 kHz recto-piezos); the 8 frames fan
  // out over a BatchRunner.
  const sim::BatchRunner pool;
  const std::size_t n_locs = std::size(kLocations);
  const auto results = pool.map(n_locs, [&](std::size_t i) {
    sim::Scenario sc = sim::Scenario::pool_a_concurrent()
                           .with_seed(1000 + static_cast<std::uint64_t>(i) + 1)
                           .with_node(kLocations[i].node1);
    sc.field.set_position(1, kLocations[i].node2);
    return sim::Session(sc).run_trial<sim::TrialKind::kNetwork>(/*trial=*/0);
  });

  bench::print_row({"location", "before1", "before2", "after1", "after2",
                    "cond(H)", "BER1", "BER2"});
  std::vector<double> gains;
  int after_above_3 = 0, total_streams = 0;
  for (std::size_t i = 0; i < n_locs; ++i) {
    if (!results[i].ok()) {
      std::printf("location %zu failed: %s\n", i + 1,
                  results[i].error().message().c_str());
      continue;
    }
    const core::NetworkRunResult& r = results[i].value();
    for (int s = 0; s < 2; ++s) {
      gains.push_back(r.sinr_after_db[s] - r.sinr_before_db[s]);
      ++total_streams;
      if (r.sinr_after_db[s] > 3.0) ++after_above_3;
    }
    bench::print_row({bench::fmt(static_cast<double>(i + 1), 0),
                      bench::fmt(r.sinr_before_db[0], 1),
                      bench::fmt(r.sinr_before_db[1], 1),
                      bench::fmt(r.sinr_after_db[0], 1),
                      bench::fmt(r.sinr_after_db[1], 1),
                      bench::fmt(r.condition_number, 1),
                      bench::fmt(r.ber_after[0], 3),
                      bench::fmt(r.ber_after[1], 3)});
  }
  std::printf("\nmean SINR gain from projection: %.1f dB\n", mean(gains));
  std::printf("streams above 3 dB after projection: %d / %d\n", after_above_3,
              total_streams);
  std::printf("Paper shape: before < 3 dB (collisions), after > 3 dB at all\n"
              "locations; location-dependent values.\n");

  // Event-driven cross-check on the first placement: one discrete-event
  // round (cold-start, timed inventory, poll) through sim::Timeline.  The
  // session publishes sim.timeline.{events_processed,simulated_s,pending}
  // into the global registry (this bench's sidecar); the wall-time rate gauge
  // is the scheduler-throughput baseline for later perf work.
  sim::Scenario sc = sim::Scenario::pool_a_concurrent()
                         .with_seed(1001)
                         .with_node(kLocations[0].node1);
  sc.field.set_position(1, kLocations[0].node2);
  const sim::Session session(sc);
  const auto t0 = std::chrono::steady_clock::now();
  const auto round = session.run_trial<sim::TrialKind::kTimeline>(/*trial=*/0);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (round.ok()) {
    const auto& r = round.value();
    obs::MetricRegistry::global()
        .gauge("sim.timeline.events_per_sec")
        .set(wall_s > 0.0 ? static_cast<double>(r.events_processed) / wall_s
                          : 0.0);
    std::printf("\nEvent-driven round (location 1): %zu nodes identified, "
                "%zu events over %.1f simulated s\n",
                r.identified.size(), r.events_processed, r.simulated_s);
  } else {
    std::printf("\nEvent-driven round failed: %s\n",
                round.error().message().c_str());
  }
}

void bm_collision_run(benchmark::State& state) {
  core::SimConfig sc = sim::Scenario::pool_a().medium;
  core::Placement pl;
  pl.projector = {1.5, 1.5, 0.65};
  pl.hydrophone = {1.5, 2.5, 0.65};
  pl.node = {1.0, 2.0, 0.65};
  core::CollisionSimulator sim(sc, pl, {2.0, 2.0, 0.65});
  const auto proj = core::Projector::ideal(300.0);
  const auto n1 = circuit::make_recto_piezo(15000.0);
  const auto n2 = circuit::make_recto_piezo(18000.0);
  for (auto _ : state) {
    auto r = sim.run(proj, n1, n2, core::CollisionRunConfig{});
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(bm_collision_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "fig10_concurrent";
  spec.description = "SINR before/after MIMO projection, 8 locations, 2 nodes";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "fig10_concurrent";
  sweep.kind = pab::sim::TrialKind::kNetwork;
  sweep.preset = "pool_a_concurrent";
  sweep.trials_per_point = 16;
  spec.campaign = std::move(sweep);
  spec.required_counters = {"sim.session.trials"};
  return pab::bench::run_bench_main(argc, argv, spec);
}
