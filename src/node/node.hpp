// The battery-free PAB sensor node.
//
// Composes every hardware block of paper section 4: the recto-piezo front end
// (with an optional bank of matching networks selectable by the MCU,
// section 3.3.2), the energy-harvesting chain (rectifier -> supercapacitor ->
// LDO), the envelope/Schmitt downlink receiver, the MCU protocol logic, and
// the peripheral sensors (pH via ADC, pressure/temperature via I2C).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "circuit/rectopiezo.hpp"
#include "energy/harvester.hpp"
#include "energy/mcu.hpp"
#include "phy/modem.hpp"
#include "phy/packet.hpp"
#include "phy/pwm.hpp"
#include "sense/adc.hpp"
#include "sense/environment.hpp"
#include "sense/i2c.hpp"
#include "sense/ms5837.hpp"
#include "sense/ph.hpp"
#include "util/rng.hpp"

namespace pab::node {

struct NodeConfig {
  std::uint8_t id = 1;
  // Selectable recto-piezo bank: electrical match frequencies [Hz].  The MCU
  // can switch among them on a kSetResonance command.
  std::vector<double> resonance_bank = {15000.0};
  std::size_t active_resonance = 0;
  double mechanical_resonance_hz = 16500.0;
  circuit::RectifierParams rectifier{};
  double scatter_efficiency = 0.6;
  // Bitrates reachable through the MCU's integer clock dividers
  // (paper section 6.1b).
  std::vector<double> bitrate_table = {100,  200,  400,  600,  800,
                                       1000, 2000, 2800, 3000, 5000};
  std::size_t active_bitrate = 5;  // 1 kbps default
  phy::PwmParams downlink_pwm{};
  double node_depth_m = 0.5;
  // Robust uplink: Hamming(7,4) + interleaving on the packet body (1.75x
  // airtime); switchable over the air with kSetRobustMode.
  bool robust_uplink = false;
};

// Lifecycle of the node's digital section (paper section 4.2.2).
enum class NodeState {
  kColdStart,      // capacitor below power-up threshold
  kIdle,           // powered, interrupts armed, LPM3
  kDecoding,       // timing downlink edges
  kBackscattering, // driving the switch
};

class PabNode {
 public:
  PabNode(NodeConfig config, const sense::Environment* environment,
          std::uint64_t seed = 1);

  // --- Front end -----------------------------------------------------------
  [[nodiscard]] const circuit::RectoPiezo& front_end() const;
  [[nodiscard]] double resonance_hz() const { return front_end().match_frequency(); }
  [[nodiscard]] double bitrate() const {
    return config_.bitrate_table[config_.active_bitrate];
  }
  [[nodiscard]] const NodeConfig& config() const { return config_; }

  // --- Energy --------------------------------------------------------------
  // Advance the harvesting chain by `dt` under an incident carrier of
  // amplitude `p_pa` at `freq_hz`, while consuming power for `state`.
  void harvest_step(double dt, double freq_hz, double p_pa, NodeState state);
  [[nodiscard]] bool powered_up() const { return harvester_.powered_up(); }
  [[nodiscard]] double capacitor_voltage() const {
    return harvester_.capacitor_voltage();
  }
  [[nodiscard]] const energy::EnergyLedger& ledger() const {
    return harvester_.ledger();
  }
  [[nodiscard]] const energy::McuPowerModel& mcu() const { return mcu_; }

  // --- Downlink ------------------------------------------------------------
  // Node-side PWM receive path: sliced envelope -> edge timing -> query.
  // Returns the query only when powered up and the frame parses.
  [[nodiscard]] std::optional<phy::DownlinkQuery> receive_downlink(
      std::span<const std::uint8_t> sliced_envelope, double sample_rate);

  // --- Protocol ------------------------------------------------------------
  // Execute a query addressed to this node (or broadcast): run the command,
  // build the uplink response.  Returns nullopt if not addressed or not
  // powered.  Accounts decode/sense/backscatter energy in the ledger.
  [[nodiscard]] std::optional<phy::UplinkPacket> process_query(
      const phy::DownlinkQuery& query);

  // FM0 switch waveform for an uplink packet at the active bitrate.  In
  // robust mode the body is FEC-protected; the preamble stays uncoded for
  // detection.
  [[nodiscard]] std::vector<phy::SwitchState> make_uplink_waveform(
      const phy::UplinkPacket& packet, double sample_rate) const;
  [[nodiscard]] bool robust_uplink() const { return config_.robust_uplink; }

  // --- Sensors (exposed for tests/examples) ---------------------------------
  [[nodiscard]] pab::Expected<sense::Ms5837Reading> read_pressure_sensor();
  [[nodiscard]] double read_ph();

 private:
  void rebuild_front_end();

  NodeConfig config_;
  const sense::Environment* environment_;
  pab::Rng rng_;
  std::vector<circuit::RectoPiezo> bank_;
  energy::Harvester harvester_;
  energy::McuPowerModel mcu_;
  sense::Adc adc_;
  sense::PhProbe ph_probe_;
  sense::I2cBus i2c_;
  sense::Ms5837Driver ms5837_;
};

// --- Payload encodings used by the commands ---------------------------------

[[nodiscard]] pab::Bytes encode_ph_payload(double ph);
[[nodiscard]] double decode_ph_payload(const pab::Bytes& payload);
[[nodiscard]] pab::Bytes encode_temperature_payload(double temp_c);
[[nodiscard]] double decode_temperature_payload(const pab::Bytes& payload);
[[nodiscard]] pab::Bytes encode_pressure_payload(double pressure_mbar);
[[nodiscard]] double decode_pressure_payload(const pab::Bytes& payload);

}  // namespace pab::node
