#include "campaign/record.hpp"

#include <array>

#include "util/error.hpp"

namespace pab::campaign {

namespace {

constexpr std::array<std::string_view, 9> kUplinkColumns = {
    "ber",        "snr_db",      "channel_amp",
    "demod_bits", "incident_pa", "modulation_pa",
    "evm_rms",    "mer_db",      "cn0_dbhz"};

constexpr std::array<std::string_view, 5> kNetworkColumns = {
    "mean_sinr_before_db", "mean_sinr_after_db", "mean_ber_after",
    "condition_number", "aggregate_goodput_bps"};

constexpr std::array<std::string_view, 16> kTimelineColumns = {
    "identified",      "inventory_frames", "inventory_slots",
    "inventory_singletons", "inventory_collisions", "poll_attempts",
    "poll_successes",  "poll_crc_failures", "poll_retries",
    "payload_bits_delivered", "poll_elapsed_s", "simulated_s",
    "harvested_j",     "consumed_j",       "power_ups",
    "brown_outs"};

constexpr std::array<std::string_view, 21> kFieldColumns = {
    "population",      "cull_radius_m",    "total_pairs",
    "kept_pairs",      "culled_pairs",     "mean_pair_gain",
    "mean_reader_gain", "tap_evaluations", "tap_lookups",
    "zones",           "zone_colors",      "zone_rounds",
    "channels",        "identified",       "simulated_s",
    "node_hours",      "mean_slot_sinr_db", "interference_corrupted_slots",
    "evm_rms",         "mer_db",           "cn0_dbhz"};

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

}  // namespace

RecordBatch::RecordBatch(sim::TrialKind kind)
    : kind_(kind), columns_(column_names(kind).size()) {}

std::span<const std::string_view> RecordBatch::column_names(
    sim::TrialKind kind) {
  switch (kind) {
    case sim::TrialKind::kUplink: return kUplinkColumns;
    case sim::TrialKind::kNetwork: return kNetworkColumns;
    case sim::TrialKind::kTimeline: return kTimelineColumns;
    case sim::TrialKind::kField: return kFieldColumns;
  }
  return {};
}

void RecordBatch::append(std::uint64_t trial,
                         const pab::Expected<sim::TrialResult>& result) {
  trial_.push_back(trial);
  ok_.push_back(result.ok() ? 1 : 0);
  error_code_.push_back(static_cast<std::uint8_t>(result.code()));
  if (!result.ok()) {
    for (auto& col : columns_) col.push_back(0.0);
    return;
  }
  const sim::TrialResult& r = result.value();
  require(r.index() == static_cast<std::size_t>(kind_),
          "RecordBatch::append: trial result kind mismatch");
  switch (kind_) {
    case sim::TrialKind::kUplink: {
      const auto& u = std::get<sim::UplinkTrial>(r);
      columns_[0].push_back(u.ber);
      columns_[1].push_back(u.demod.snr_db);
      columns_[2].push_back(u.demod.channel_amp);
      columns_[3].push_back(static_cast<double>(u.demod.bits.size()));
      columns_[4].push_back(u.incident_pressure_pa);
      columns_[5].push_back(u.modulation_pressure_pa);
      columns_[6].push_back(u.demod.quality.evm_rms);
      columns_[7].push_back(u.demod.quality.mer_db);
      columns_[8].push_back(u.demod.quality.cn0_dbhz);
      break;
    }
    case sim::TrialKind::kNetwork: {
      const auto& n = std::get<core::NetworkRunResult>(r);
      columns_[0].push_back(mean_of(n.sinr_before_db));
      columns_[1].push_back(mean_of(n.sinr_after_db));
      columns_[2].push_back(mean_of(n.ber_after));
      columns_[3].push_back(n.condition_number);
      columns_[4].push_back(n.aggregate_goodput_bps);
      break;
    }
    case sim::TrialKind::kTimeline: {
      const auto& t = std::get<sim::TimelineRunResult>(r);
      columns_[0].push_back(static_cast<double>(t.identified.size()));
      columns_[1].push_back(static_cast<double>(t.inventory.frames));
      columns_[2].push_back(static_cast<double>(t.inventory.slots));
      columns_[3].push_back(static_cast<double>(t.inventory.singletons));
      columns_[4].push_back(static_cast<double>(t.inventory.collisions));
      columns_[5].push_back(static_cast<double>(t.poll.attempts));
      columns_[6].push_back(static_cast<double>(t.poll.successes));
      columns_[7].push_back(static_cast<double>(t.poll.crc_failures));
      columns_[8].push_back(static_cast<double>(t.poll.retries));
      columns_[9].push_back(t.poll.payload_bits_delivered);
      columns_[10].push_back(t.poll.elapsed_s);
      columns_[11].push_back(t.simulated_s);
      columns_[12].push_back(t.harvested_j);
      columns_[13].push_back(t.consumed_j);
      columns_[14].push_back(static_cast<double>(t.power_ups));
      columns_[15].push_back(static_cast<double>(t.brown_outs));
      break;
    }
    case sim::TrialKind::kField: {
      const auto& f = std::get<sim::FieldRunResult>(r);
      columns_[0].push_back(static_cast<double>(f.population));
      columns_[1].push_back(f.cull_radius_m);
      columns_[2].push_back(static_cast<double>(f.total_pairs));
      columns_[3].push_back(static_cast<double>(f.kept_pairs));
      columns_[4].push_back(static_cast<double>(f.culled_pairs));
      columns_[5].push_back(f.mean_pair_gain);
      columns_[6].push_back(f.mean_reader_gain);
      columns_[7].push_back(static_cast<double>(f.tap_evaluations));
      columns_[8].push_back(static_cast<double>(f.tap_lookups));
      columns_[9].push_back(static_cast<double>(f.zones));
      columns_[10].push_back(static_cast<double>(f.zone_colors));
      columns_[11].push_back(static_cast<double>(f.zone_rounds));
      columns_[12].push_back(static_cast<double>(f.channels));
      columns_[13].push_back(static_cast<double>(f.identified.size()));
      columns_[14].push_back(f.simulated_s);
      columns_[15].push_back(f.node_hours);
      columns_[16].push_back(f.mean_slot_sinr_db);
      columns_[17].push_back(
          static_cast<double>(f.interference_corrupted_slots));
      columns_[18].push_back(f.slot_quality.evm_rms);
      columns_[19].push_back(f.slot_quality.mer_db);
      columns_[20].push_back(f.slot_quality.cn0_dbhz);
      break;
    }
  }
}

void RecordBatch::append_batch(const RecordBatch& other) {
  require(other.kind_ == kind_, "RecordBatch::append_batch: kind mismatch");
  trial_.insert(trial_.end(), other.trial_.begin(), other.trial_.end());
  ok_.insert(ok_.end(), other.ok_.begin(), other.ok_.end());
  error_code_.insert(error_code_.end(), other.error_code_.begin(),
                     other.error_code_.end());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    columns_[c].insert(columns_[c].end(), other.columns_[c].begin(),
                       other.columns_[c].end());
}

RecordBatch RecordBatch::slice(std::size_t begin, std::size_t end) const {
  require(begin <= end && end <= rows(), "RecordBatch::slice: bad range");
  RecordBatch out(kind_);
  out.trial_.assign(trial_.begin() + static_cast<std::ptrdiff_t>(begin),
                    trial_.begin() + static_cast<std::ptrdiff_t>(end));
  out.ok_.assign(ok_.begin() + static_cast<std::ptrdiff_t>(begin),
                 ok_.begin() + static_cast<std::ptrdiff_t>(end));
  out.error_code_.assign(
      error_code_.begin() + static_cast<std::ptrdiff_t>(begin),
      error_code_.begin() + static_cast<std::ptrdiff_t>(end));
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out.columns_[c].assign(columns_[c].begin() + static_cast<std::ptrdiff_t>(begin),
                           columns_[c].begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

void RecordBatch::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
  w.u64(rows());
  for (const std::uint64_t t : trial_) w.u64(t);
  for (const std::uint8_t o : ok_) w.u8(o);
  for (const std::uint8_t e : error_code_) w.u8(e);
  for (const auto& col : columns_)
    for (const double v : col) w.f64(v);
}

pab::Expected<RecordBatch> RecordBatch::deserialize(ByteReader& r) {
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(sim::TrialKind::kField))
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "RecordBatch: unknown trial kind on the wire"};
  RecordBatch out(static_cast<sim::TrialKind>(kind));
  const std::uint64_t rows = r.u64();
  out.trial_.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) out.trial_.push_back(r.u64());
  out.ok_.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) out.ok_.push_back(r.u8());
  out.error_code_.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) out.error_code_.push_back(r.u8());
  for (auto& col : out.columns_) {
    col.reserve(rows);
    for (std::uint64_t i = 0; i < rows; ++i) col.push_back(r.f64());
  }
  return out;
}

std::string RecordBatch::bytes() const {
  ByteWriter w;
  serialize(w);
  return w.take();
}

}  // namespace pab::campaign
