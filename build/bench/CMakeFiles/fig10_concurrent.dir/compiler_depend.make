# Empty compiler generated dependencies file for fig10_concurrent.
# This may be replaced when dependencies are built.
