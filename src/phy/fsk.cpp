#include "phy/fsk.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/correlate.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/mixer.hpp"
#include "dsp/simd.hpp"
#include "obs/metrics.hpp"
#include "phy/packet.hpp"

namespace pab::phy {

FskParams FskParams::from(SchemeId id, double bitrate, double sample_rate) {
  FskParams p;
  p.bitrate = bitrate;
  p.sample_rate = sample_rate;
  p.bits_per_symbol = id == SchemeId::kFsk4 ? 2 : 1;
  return p;
}

namespace {

// Symbol value of symbol `s` (MSB first over bits_per_symbol bits; bits past
// the payload read as zero padding).
int symbol_value(const FskParams& p, std::span<const std::uint8_t> bits,
                 std::size_t s) {
  int v = 0;
  const auto bps = static_cast<std::size_t>(p.bits_per_symbol);
  for (std::size_t b = 0; b < bps; ++b) {
    const std::size_t idx = s * bps + b;
    v = (v << 1) | (idx < bits.size() ? (bits[idx] & 1) : 0);
  }
  return v;
}

std::size_t preamble_chip_count() { return uplink_preamble_bits().size() * 2; }

}  // namespace

std::size_t fsk_waveform_length(const FskParams& params, std::size_t n_bits) {
  require(params.bitrate > 0.0 && params.sample_rate > 0.0,
          "fsk_waveform: bad rates");
  const double spc = params.sample_rate / (2.0 * params.bitrate);
  const double pre = static_cast<double>(preamble_chip_count()) * spc;
  const double sps = params.sample_rate / params.symbol_rate();
  return static_cast<std::size_t>(std::ceil(
      pre + static_cast<double>(params.symbols_for(n_bits)) * sps));
}

void fsk_waveform_into(const FskParams& params,
                       std::span<const std::uint8_t> data_bits,
                       std::span<SwitchState> out, dsp::Arena& scratch) {
  require(out.size() == fsk_waveform_length(params, data_bits.size()),
          "fsk_waveform_into: output size mismatch");
  const auto frame = scratch.frame();
  const pab::Bits& preamble = uplink_preamble_bits();
  auto chips = scratch.alloc<std::int8_t>(preamble.size() * 2);
  fm0_encode_into(preamble, /*initial_level=*/-1, chips);

  const double fs = params.sample_rate;
  const double spc = fs / (2.0 * params.bitrate);
  const double pre_exact = static_cast<double>(chips.size()) * spc;
  const auto pre_samples =
      std::min(out.size(), static_cast<std::size_t>(std::ceil(pre_exact)));
  for (std::size_t i = 0; i < pre_samples; ++i) {
    const auto chip = std::min<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(i) / spc),
        chips.size() - 1);
    out[i] = chips[chip] > 0 ? SwitchState::kReflective
                             : SwitchState::kAbsorptive;
  }

  const std::size_t n_sym = params.symbols_for(data_bits.size());
  const double sps = fs / params.symbol_rate();
  for (std::size_t i = pre_samples; i < out.size(); ++i) {
    const double t = static_cast<double>(i) - pre_exact;
    const auto s = std::min<std::size_t>(
        static_cast<std::size_t>(t / sps), n_sym - 1);
    const double u = t - static_cast<double>(s) * sps;
    const double f = params.tone_hz(symbol_value(params, data_bits, s));
    // Square-wave subcarrier: the switch toggles every half tone period,
    // starting reflective at the symbol boundary.
    const double half = fs / (2.0 * f);
    const auto half_cycles = static_cast<std::uint64_t>(u / half);
    out[i] = (half_cycles % 2 == 0) ? SwitchState::kReflective
                                    : SwitchState::kAbsorptive;
  }
}

FskDemodulator::FskDemodulator(DemodConfig config, int bits_per_symbol)
    : config_(config) {
  require(config.bitrate > 0.0, "FskDemodulator: bitrate must be positive");
  require(config.sample_rate > 0.0,
          "FskDemodulator: sample rate must be positive");
  require(config.carrier_hz > 0.0, "FskDemodulator: carrier must be positive");
  require(bits_per_symbol == 1 || bits_per_symbol == 2,
          "FskDemodulator: 1 or 2 bits per symbol");
  params_.bitrate = config.bitrate;
  params_.sample_rate = config.sample_rate;
  params_.bits_per_symbol = bits_per_symbol;
  preamble_chips_ = fm0_encode(uplink_preamble_bits(), /*initial_level=*/-1);
  // The receiver low-pass must pass the top tone plus one symbol-rate of
  // sideband, whatever `lowpass_factor` asks for (the FM0 default of
  // 2.5*bitrate would clip the 3*bitrate tone).
  const double cutoff =
      std::min(std::max(config_.lowpass_factor * config_.bitrate,
                        params_.max_tone_hz() + params_.symbol_rate()),
               config_.sample_rate / 2.5);
  lowpass_ = dsp::butterworth_lowpass(config_.lowpass_order, cutoff,
                                      config_.sample_rate);
  if (config_.metrics != nullptr) {
    auto& m = *config_.metrics;
    n_attempts_ = &m.counter("phy.demod.attempts");
    n_ok_ = &m.counter("phy.demod.ok");
    n_no_preamble_ = &m.counter("phy.demod.no_preamble");
    n_decode_failures_ = &m.counter("phy.demod.decode_failures");
  }
}

Expected<bool> FskDemodulator::demodulate_envelope_into(
    std::span<const double> envelope, double envelope_rate, std::size_t n_bits,
    dsp::Arena& scratch, DemodResult& out) const {
  const auto arena_frame = scratch.frame();
  const double spc = envelope_rate / (2.0 * config_.bitrate);
  require(spc >= 2.0, "demodulate: fewer than 2 samples per chip");
  const std::size_t n_pre_chips = preamble_chips_.size();
  const std::size_t n_sym = params_.symbols_for(n_bits);
  const double sps = envelope_rate / params_.symbol_rate();
  const double pre_exact = static_cast<double>(n_pre_chips) * spc;
  const auto needed = static_cast<std::size_t>(
      std::ceil(pre_exact + static_cast<double>(n_sym) * sps));
  if (n_attempts_ != nullptr) n_attempts_->add();
  if (envelope.size() < needed) {
    if (n_no_preamble_ != nullptr) n_no_preamble_->add();
    return Error{ErrorCode::kNoPreamble, "capture shorter than one packet"};
  }

  // Packet detection: the shared FM0 preamble through the same windowed
  // Pearson correlation as BackscatterDemodulator.
  std::size_t best = 0;
  double corr_norm = 0.0;
  {
    auto tmpl = scratch.alloc<double>(static_cast<std::size_t>(
        std::ceil(static_cast<double>(n_pre_chips) * spc)));
    for (std::size_t i = 0; i < tmpl.size(); ++i) {
      const auto chip = std::min<std::size_t>(
          static_cast<std::size_t>(static_cast<double>(i) / spc),
          n_pre_chips - 1);
      tmpl[i] = static_cast<double>(preamble_chips_[chip]);
    }
    const std::size_t corr_len =
        dsp::correlation_length(envelope.size(), tmpl.size());
    if (corr_len == 0 || tmpl.size() < 2) {
      if (n_no_preamble_ != nullptr) n_no_preamble_->add();
      return Error{ErrorCode::kNoPreamble, "correlation empty"};
    }
    auto corr = scratch.alloc<double>(corr_len);
    dsp::pearson_correlation_into(envelope, tmpl, corr);
    std::size_t search_end = corr.size();
    if (needed < envelope.size())
      search_end = std::min(search_end, envelope.size() - needed + 1);
    double best_v = -1e300;
    for (std::size_t i = 0; i < search_end; ++i) {
      const double m = std::abs(corr[i]);
      if (m > best_v) { best_v = m; best = i; }
    }
    corr_norm = best_v;
  }
  if (corr_norm < config_.detect_threshold) {
    if (n_no_preamble_ != nullptr) n_no_preamble_->add();
    return Error{ErrorCode::kNoPreamble, "no preamble above threshold"};
  }

  // Two-level channel estimate from the FM0 preamble chips (mid level feeds
  // the tone detector's mean removal; amp only reports the link swing).
  double amp = 0.0, mid = 0.0;
  {
    auto pre_soft = scratch.alloc<double>(n_pre_chips);
    BackscatterDemodulator::integrate_chips_into(
        envelope, static_cast<double>(best), spc, pre_soft);
    double hi = 0.0, lo = 0.0;
    std::size_t nhi = 0, nlo = 0;
    for (std::size_t c = 0; c < n_pre_chips; ++c) {
      if (preamble_chips_[c] > 0) { hi += pre_soft[c]; ++nhi; }
      else { lo += pre_soft[c]; ++nlo; }
    }
    if (nhi == 0 || nlo == 0) {
      if (n_decode_failures_ != nullptr) n_decode_failures_->add();
      return Error{ErrorCode::kDecodeFailure, "degenerate preamble"};
    }
    hi /= static_cast<double>(nhi);
    lo /= static_cast<double>(nlo);
    amp = (hi - lo) / 2.0;
    mid = (hi + lo) / 2.0;
    if (amp == 0.0) {
      if (n_decode_failures_ != nullptr) n_decode_failures_->add();
      return Error{ErrorCode::kDecodeFailure, "zero modulation depth"};
    }
  }

  // Goertzel bank per symbol window: argmax tone decides the symbol;
  // off-tone energy is the error vector (tone magnitudes are insensitive to
  // an anti-phase/inverted envelope, so no sign handling is needed).
  const int n_tones = params_.tone_count();
  std::array<double, 4> tone_hz{};
  for (int k = 0; k < n_tones; ++k) tone_hz[k] = params_.tone_hz(k);
  const std::span<const double> tones(tone_hz.data(),
                                      static_cast<std::size_t>(n_tones));
  auto amps = scratch.alloc<double>(static_cast<std::size_t>(n_tones));
  auto window = scratch.alloc<double>(
      static_cast<std::size_t>(std::ceil(sps)) + 2);
  const double data_start = static_cast<double>(best) + pre_exact;
  const auto bps = static_cast<std::size_t>(params_.bits_per_symbol);
  out.bits.resize(n_bits);  // reuses capacity in steady state
  double sig_power = 0.0, err_power = 0.0;
  for (std::size_t s = 0; s < n_sym; ++s) {
    const auto w_lo = static_cast<std::size_t>(
        std::lround(data_start + static_cast<double>(s) * sps));
    auto w_hi = static_cast<std::size_t>(
        std::lround(data_start + static_cast<double>(s + 1) * sps));
    w_hi = std::min(w_hi, envelope.size());
    if (w_lo >= w_hi) {
      if (n_decode_failures_ != nullptr) n_decode_failures_->add();
      return Error{ErrorCode::kDecodeFailure, "empty symbol window"};
    }
    const std::size_t n = w_hi - w_lo;
    for (std::size_t i = 0; i < n; ++i) window[i] = envelope[w_lo + i] - mid;
    dsp::tone_amplitudes_into(window.first(n), tones, envelope_rate, amps);
    int win = 0;
    for (int k = 1; k < n_tones; ++k)
      if (amps[static_cast<std::size_t>(k)] >
          amps[static_cast<std::size_t>(win)])
        win = k;
    for (int k = 0; k < n_tones; ++k) {
      const double a = amps[static_cast<std::size_t>(k)];
      if (k == win) sig_power += a * a;
      else err_power += a * a;
    }
    for (std::size_t b = 0; b < bps; ++b) {
      const std::size_t idx = s * bps + b;
      if (idx < n_bits)
        out.bits[idx] =
            static_cast<std::uint8_t>((win >> (bps - 1 - b)) & 1);
    }
  }
  if (sig_power <= 0.0) {
    if (n_decode_failures_ != nullptr) n_decode_failures_->add();
    return Error{ErrorCode::kDecodeFailure, "no tone energy"};
  }

  out.start_sample = best;
  out.channel_amp = std::abs(amp);
  out.mid_level = mid;
  out.preamble_corr = corr_norm;
  out.snr_db =
      err_power > 0.0
          ? std::clamp(10.0 * std::log10(sig_power / err_power), -60.0, 60.0)
          : 60.0;
  // Detection bandwidth = the symbol rate (one Goertzel bin per symbol).
  out.quality = link_quality_from_error_ratio(err_power / sig_power,
                                              params_.symbol_rate());
  if (n_ok_ != nullptr) n_ok_->add();
  return true;
}

Expected<bool> FskDemodulator::demodulate_into(std::span<const double> passband,
                                               double sample_rate,
                                               std::size_t n_bits,
                                               dsp::Arena& scratch,
                                               DemodResult& out) const {
  require(sample_rate == config_.sample_rate,
          "demodulate: sample rate mismatch");
  const auto arena_frame = scratch.frame();
  const dsp::CplxView bb = dsp::downconvert_filtered(
      passband, sample_rate, config_.carrier_hz, lowpass_, /*decim=*/1,
      scratch);
  auto env = scratch.alloc<double>(bb.size());
  dsp::simd::magnitude(bb.samples, env);
  return demodulate_envelope_into(env, bb.sample_rate, n_bits, scratch, out);
}

}  // namespace pab::phy
