// Internal to dsp::simd: the raw-pointer kernel table each ISA fills in, and
// the generic block-structured implementations the vector TUs share.  Not
// part of the public dsp API -- include dsp/simd.hpp instead.
//
// The generic implementations here are deliberately written in a
// vectorization-friendly style (independent accumulators, block-anchored
// oscillators).  Each vector TU wraps them in target-attributed functions:
// GCC inlines default-option callees into callers with wider ISA options, so
// the same source vectorizes per ISA.  They are NOT bit-identical to the
// scalar reference loops (which live verbatim in simd.cpp) -- they are the
// tolerance-bounded (<= 1e-9 relative) vector path.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>

namespace pab::dsp::simd {

using cplx = std::complex<double>;

struct CovVarRaw {
  double cov;
  double var;
};

// One table per ISA; pointers are never null.  Dispatch picks a table once
// at startup (simd.cpp) and publishes it through an atomic pointer.
struct KernelTable {
  double (*sum)(const double* x, std::size_t n);
  double (*dot)(const double* a, const double* b, std::size_t n);
  cplx (*dot_conj)(const cplx* x, const cplx* t, std::size_t n);
  CovVarRaw (*centered_cov_var)(const double* x, const double* t, std::size_t n,
                                double x_mean);
  void (*axpy_d)(double g, const double* x, double* y, std::size_t n);
  void (*axpy_c)(cplx g, const cplx* x, cplx* y, std::size_t n);
  void (*magnitude)(const cplx* x, double* out, std::size_t n);
  void (*cmul)(const cplx* a, const cplx* b, cplx* out, std::size_t n);
  void (*mix_down)(const double* x, double w, cplx* out, std::size_t n);
  void (*mix_up)(const cplx* x, double w, double* out, std::size_t n);
  void (*tone)(double w, double amplitude, double phase, double* out,
               std::size_t n);
  void (*chip_sum_diff)(const double* soft, double* sum, double* diff,
                        std::size_t n);
};

// Vector tables; null when the ISA is not compiled in (wrong architecture).
const KernelTable* avx2_kernels();  // simd_avx2.cpp
const KernelTable* neon_kernels();  // simd_neon.cpp

namespace detail {

// Oscillators re-anchor the recurrence phasor with exact libm sin/cos every
// kAnchor samples, so rotation round-off never accumulates past a few tens
// of ulp (~1e-14 relative) while libm is called N/kAnchor times instead of N.
inline constexpr std::size_t kAnchor = 128;

// Fill c[i] = cos(w*(base+i) + phase), s[i] = sin(...) for i < n (n <=
// kAnchor) by rotating an exact anchor phasor.
inline void osc_block(double w, double phase, std::size_t base, std::size_t n,
                      double* c, double* s) {
  const double ph0 = w * static_cast<double>(base) + phase;
  double cr = std::cos(ph0), sr = std::sin(ph0);
  const double cw = std::cos(w), sw = std::sin(w);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = cr;
    s[i] = sr;
    const double cn = cr * cw - sr * sw;
    sr = sr * cw + cr * sw;
    cr = cn;
  }
}

inline void osc_mix_down(const double* x, double w, cplx* out, std::size_t n) {
  double c[kAnchor], s[kAnchor];
  for (std::size_t base = 0; base < n; base += kAnchor) {
    const std::size_t m = n - base < kAnchor ? n - base : kAnchor;
    osc_block(w, 0.0, base, m, c, s);
    for (std::size_t i = 0; i < m; ++i) {
      const double g = 2.0 * x[base + i];
      out[base + i] = cplx(g * c[i], -(g * s[i]));
    }
  }
}

inline void osc_mix_up(const cplx* x, double w, double* out, std::size_t n) {
  double c[kAnchor], s[kAnchor];
  for (std::size_t base = 0; base < n; base += kAnchor) {
    const std::size_t m = n - base < kAnchor ? n - base : kAnchor;
    osc_block(w, 0.0, base, m, c, s);
    for (std::size_t i = 0; i < m; ++i)
      out[base + i] = x[base + i].real() * c[i] - x[base + i].imag() * s[i];
  }
}

inline void osc_tone(double w, double amplitude, double phase, double* out,
                     std::size_t n) {
  double c[kAnchor], s[kAnchor];
  for (std::size_t base = 0; base < n; base += kAnchor) {
    const std::size_t m = n - base < kAnchor ? n - base : kAnchor;
    osc_block(w, phase, base, m, c, s);
    for (std::size_t i = 0; i < m; ++i) out[base + i] = amplitude * s[i];
  }
}

// Four-accumulator reductions: explicit independent partial sums (the
// reassociation the autovectorizer is not allowed to invent on its own).
inline double sum4(const double* x, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i];
    a1 += x[i + 1];
    a2 += x[i + 2];
    a3 += x[i + 3];
  }
  double s = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) s += x[i];
  return s;
}

inline double dot4(const double* a, const double* b, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += a[i] * b[i];
    a1 += a[i + 1] * b[i + 1];
    a2 += a[i + 2] * b[i + 2];
    a3 += a[i + 3] * b[i + 3];
  }
  double s = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

inline cplx dot_conj2(const cplx* x, const cplx* t, std::size_t n) {
  double re0 = 0.0, re1 = 0.0, im0 = 0.0, im1 = 0.0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    re0 += x[i].real() * t[i].real() + x[i].imag() * t[i].imag();
    im0 += x[i].imag() * t[i].real() - x[i].real() * t[i].imag();
    re1 += x[i + 1].real() * t[i + 1].real() + x[i + 1].imag() * t[i + 1].imag();
    im1 += x[i + 1].imag() * t[i + 1].real() - x[i + 1].real() * t[i + 1].imag();
  }
  double re = re0 + re1, im = im0 + im1;
  for (; i < n; ++i) {
    re += x[i].real() * t[i].real() + x[i].imag() * t[i].imag();
    im += x[i].imag() * t[i].real() - x[i].real() * t[i].imag();
  }
  return {re, im};
}

inline CovVarRaw cov_var4(const double* x, const double* t, std::size_t n,
                          double x_mean) {
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  double v0 = 0.0, v1 = 0.0, v2 = 0.0, v3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double x0 = x[i] - x_mean, x1 = x[i + 1] - x_mean;
    const double x2 = x[i + 2] - x_mean, x3 = x[i + 3] - x_mean;
    c0 += x0 * t[i];
    c1 += x1 * t[i + 1];
    c2 += x2 * t[i + 2];
    c3 += x3 * t[i + 3];
    v0 += x0 * x0;
    v1 += x1 * x1;
    v2 += x2 * x2;
    v3 += x3 * x3;
  }
  double cov = (c0 + c1) + (c2 + c3);
  double var = (v0 + v1) + (v2 + v3);
  for (; i < n; ++i) {
    const double xc = x[i] - x_mean;
    cov += xc * t[i];
    var += xc * xc;
  }
  return {cov, var};
}

inline void axpy_d(double g, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += g * x[i];
}

inline void axpy_c(cplx g, const cplx* x, cplx* y, std::size_t n) {
  const double gr = g.real(), gi = g.imag();
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x[i].real(), xi = x[i].imag();
    y[i] = cplx(y[i].real() + (gr * xr - gi * xi),
                y[i].imag() + (gr * xi + gi * xr));
  }
}

inline void magnitude_sqrt(const cplx* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double re = x[i].real(), im = x[i].imag();
    out[i] = std::sqrt(re * re + im * im);
  }
}

inline void cmul_ew(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = a[i].real(), ai = a[i].imag();
    const double br = b[i].real(), bi = b[i].imag();
    out[i] = cplx(ar * br - ai * bi, ar * bi + ai * br);
  }
}

inline void chip_sum_diff_ew(const double* soft, double* sum, double* diff,
                             std::size_t n) {
  for (std::size_t t = 0; t < n; ++t) {
    sum[t] = soft[2 * t] + soft[2 * t + 1];
    diff[t] = soft[2 * t] - soft[2 * t + 1];
  }
}

}  // namespace detail
}  // namespace pab::dsp::simd
