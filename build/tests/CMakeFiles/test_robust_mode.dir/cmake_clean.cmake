file(REMOVE_RECURSE
  "CMakeFiles/test_robust_mode.dir/test_robust_mode.cpp.o"
  "CMakeFiles/test_robust_mode.dir/test_robust_mode.cpp.o.d"
  "test_robust_mode"
  "test_robust_mode.pdb"
  "test_robust_mode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robust_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
