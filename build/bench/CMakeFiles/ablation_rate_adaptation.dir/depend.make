# Empty dependencies file for ablation_rate_adaptation.
# This may be replaced when dependencies are built.
