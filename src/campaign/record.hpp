// RecordBatch: the campaign's compact columnar per-trial result format.
//
// A full trial result (decoded bit vectors, event logs, channel matrices) is
// too heavy to stream per-trial at campaign scale; a RecordBatch keeps the
// scalar summary every figure actually plots, one column per quantity, plus
// the trial index and error disposition.  Columns are fixed per TrialKind
// (column_names), rows are appended in trial order, and serialization is the
// canonical campaign byte encoding -- so "same results" between executors,
// shardings, and resume passes is byte equality of the serialized batches.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "campaign/wire.hpp"
#include "sim/session.hpp"
#include "sim/trial.hpp"
#include "util/error.hpp"

namespace pab::campaign {

class RecordBatch {
 public:
  explicit RecordBatch(sim::TrialKind kind = sim::TrialKind::kUplink);

  // The fixed column schema of one trial kind.
  [[nodiscard]] static std::span<const std::string_view> column_names(
      sim::TrialKind kind);

  [[nodiscard]] sim::TrialKind kind() const { return kind_; }
  [[nodiscard]] std::size_t rows() const { return trial_.size(); }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }

  [[nodiscard]] const std::vector<std::uint64_t>& trial() const {
    return trial_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& ok() const { return ok_; }
  [[nodiscard]] const std::vector<std::uint8_t>& error_code() const {
    return error_code_;
  }
  [[nodiscard]] const std::vector<double>& column(std::size_t c) const {
    return columns_[c];
  }

  // Append one trial's outcome.  Failed trials keep their row (ok = 0,
  // error_code = the pab::ErrorCode) with zeroed columns, so the row count
  // always equals the trial count and merges stay positional.
  void append(std::uint64_t trial,
              const pab::Expected<sim::TrialResult>& result);

  // Append every row of `other` (same kind) after this batch's rows.
  void append_batch(const RecordBatch& other);

  // Rows [begin, end) as a new batch (the wire chunking primitive).
  [[nodiscard]] RecordBatch slice(std::size_t begin, std::size_t end) const;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static pab::Expected<RecordBatch> deserialize(ByteReader& r);
  // Canonical bytes (serialize into a fresh writer) -- the equality token.
  [[nodiscard]] std::string bytes() const;

 private:
  sim::TrialKind kind_;
  std::vector<std::uint64_t> trial_;
  std::vector<std::uint8_t> ok_;
  std::vector<std::uint8_t> error_code_;
  std::vector<std::vector<double>> columns_;  // column_names(kind_).size()
};

}  // namespace pab::campaign
