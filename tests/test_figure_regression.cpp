// Figure-shape regression suite.
//
// The benches print the full series; these tests pin the *shape* of every
// reproduced figure (peaks, thresholds, orderings, crossovers) so a model or
// receiver change that silently breaks the reproduction fails CI.  Bounds are
// deliberately loose -- they encode the paper's qualitative claims, not our
// current decimal places.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/tank.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/projector.hpp"
#include "energy/mcu.hpp"
#include "phy/fm0.hpp"
#include "phy/metrics.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pab {
namespace {

// --- Figure 3 ------------------------------------------------------------------

TEST(FigureRegression, Fig3RectoPiezoCurves) {
  const auto rp15 = circuit::make_recto_piezo(15000.0);
  const auto rp18 = circuit::make_recto_piezo(18000.0);
  const double p = 65.0;

  const auto scan = [&](const circuit::RectoPiezo& rp) {
    double peak = 0.0, peak_f = 0.0, lo = 0.0, hi = 0.0;
    for (double f = 11000.0; f <= 21000.0; f += 100.0) {
      const double v = rp.rectified_open_voltage(f, p);
      if (v > peak) { peak = v; peak_f = f; }
      if (v >= 2.5) {
        if (lo == 0.0) lo = f;
        hi = f;
      }
    }
    return std::tuple{peak, peak_f, hi - lo};
  };

  const auto [peak15, f15, bw15] = scan(rp15);
  const auto [peak18, f18, bw18] = scan(rp18);
  // ~4 V peaks at the match frequencies.
  EXPECT_NEAR(peak15, 4.1, 1.0);
  EXPECT_NEAR(peak18, 4.3, 1.0);
  EXPECT_NEAR(f15, 15000.0, 400.0);
  EXPECT_NEAR(f18, 18000.0, 500.0);
  // Usable bandwidths of order 1-3 kHz.
  EXPECT_GT(bw15, 500.0);
  EXPECT_LT(bw15, 3500.0);
  EXPECT_GT(bw18, 500.0);
  EXPECT_LT(bw18, 3500.0);
  // Complementary: each device weak on the other's channel.
  EXPECT_LT(rp15.rectified_open_voltage(18000.0, p), 2.5);
  EXPECT_LT(rp18.rectified_open_voltage(15000.0, p), 2.5);
}

// --- Figure 7 ------------------------------------------------------------------

TEST(FigureRegression, Fig7BerSnrShape) {
  Rng rng(77);
  const auto ber_at = [&](double snr_db) {
    const double sigma = 1.0 / std::sqrt(power_ratio_from_db(snr_db));
    std::size_t errors = 0, total = 0;
    while (total < 60000 && errors < 200) {
      const auto bits = rng.bits(1000);
      const auto chips = phy::fm0_encode(bits);
      std::vector<double> soft(chips.size());
      for (std::size_t i = 0; i < soft.size(); ++i)
        soft[i] = chips[i] + rng.gaussian(0.0, sigma);
      errors += hamming_distance(bits, phy::fm0_decode_ml(soft));
      total += bits.size();
    }
    return static_cast<double>(errors) / static_cast<double>(total);
  };
  // Decodable (paper: "minimum SNR around 2 dB").
  EXPECT_LT(ber_at(2.0), 0.1);
  // Effectively error-free above ~11 dB (paper: BER 1e-5 floor).
  EXPECT_LT(ber_at(11.0), 2e-4);
  // And monotone between.
  EXPECT_GT(ber_at(2.0), ber_at(6.0));
  EXPECT_GT(ber_at(6.0), ber_at(10.0));
}

// --- Figure 9 ------------------------------------------------------------------

TEST(FigureRegression, Fig9PoolBBeatsPoolA) {
  const auto fe = circuit::make_recto_piezo(15000.0);
  const energy::McuPowerModel mcu;
  const core::Projector proj(piezo::make_projector_transducer(), 200.0);
  const double p1m = proj.pressure_at_1m(15000.0);

  const auto max_range = [&](const channel::Tank& tank, channel::Vec3 start,
                             channel::Vec3 dir, double limit) {
    double best = 0.0;
    for (double d = 0.4; d <= limit; d += 0.2) {
      double p = 0.0;
      for (double j : {-0.08, 0.0, 0.08}) {
        const channel::Vec3 rx{start.x + dir.x * (d + j),
                               start.y + dir.y * (d + j), start.z};
        if (!tank.contains(rx)) continue;
        const auto taps = channel::image_method_taps(tank, start, rx, 2, 15000.0);
        p = std::max(p, p1m * channel::coherent_gain(taps, 15000.0));
      }
      if (fe.rectified_open_voltage(15000.0, p) >= 2.5 &&
          fe.harvested_dc_power(15000.0, p) >= mcu.idle_power_w())
        best = d;
    }
    return best;
  };

  const double range_a = max_range(channel::make_pool_a(), {0.2, 0.2, 0.65},
                                   {0.555, 0.74, 0.0}, 4.6);
  const double range_b = max_range(channel::make_pool_b(), {0.6, 0.2, 0.5},
                                   {0.0, 1.0, 0.0}, 9.6);
  EXPECT_GT(range_b, range_a);  // the corridor focuses the signal
  EXPECT_GT(range_a, 1.0);      // meters, not centimeters
}

// --- Figure 11 ------------------------------------------------------------------

TEST(FigureRegression, Fig11PowerNumbers) {
  const energy::McuPowerModel mcu;
  EXPECT_NEAR(mcu.idle_power_w(), 124e-6, 5e-6);
  for (double rate : {100.0, 1000.0, 3000.0}) {
    EXPECT_NEAR(mcu.backscatter_power_w(rate), 500e-6, 80e-6) << rate;
  }
}

// --- Section 2 energy claim -------------------------------------------------------

TEST(FigureRegression, BackscatterEnergyGap) {
  const energy::McuPowerModel mcu;
  const auto xdcr = piezo::make_node_transducer();
  const double backscatter_per_bit = mcu.backscatter_power_w(1000.0) / 1000.0;
  const double eta = xdcr.bvd().r_rad / xdcr.bvd().rm;
  const double active_per_bit = (0.1 / eta / 0.8) / 1000.0;
  const double orders = std::log10(active_per_bit / backscatter_per_bit);
  EXPECT_GE(orders, 2.0);  // paper: "two to three orders of magnitude"
  EXPECT_LE(orders, 3.5);
}

// --- Figure 8 cliff (model-level proxy) --------------------------------------------

TEST(FigureRegression, Fig8EfficiencyDeclinesWithBitrate) {
  const auto rp = circuit::make_recto_piezo(15000.0);
  const double e1k = rp.bandwidth_efficiency(15000.0, 1000.0);
  const double e3k = rp.bandwidth_efficiency(15000.0, 3000.0);
  const double e5k = rp.bandwidth_efficiency(15000.0, 5000.0);
  EXPECT_GT(e1k, e3k);
  EXPECT_GT(e3k, e5k);
  EXPECT_LT(e5k, 0.7);  // substantial sideband loss at 5 kbps
}

}  // namespace
}  // namespace pab
