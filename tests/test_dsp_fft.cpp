// FFT, spectrum, and peak detection tests.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/mixer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pab::dsp {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Fft, RejectsNonPow2) {
  std::vector<cplx> v(3);
  EXPECT_THROW(fft_inplace(v), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToFlat) {
  std::vector<cplx> v(8, cplx{});
  v[0] = 1.0;
  fft_inplace(v);
  for (const auto& x : v) EXPECT_NEAR(std::abs(x), 1.0, 1e-12);
}

TEST(Fft, InverseRoundTrip) {
  pab::Rng rng(3);
  std::vector<cplx> v(256);
  for (auto& x : v) x = {rng.gaussian(), rng.gaussian()};
  auto spec = fft(std::span<const cplx>(v));
  auto back = ifft(spec);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i].real(), v[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), v[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  pab::Rng rng(5);
  std::vector<cplx> v(512);
  for (auto& x : v) x = {rng.gaussian(), rng.gaussian()};
  double time_energy = 0.0;
  for (const auto& x : v) time_energy += std::norm(x);
  auto spec = fft(std::span<const cplx>(v));
  double freq_energy = 0.0;
  for (const auto& x : spec) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(spec.size()), time_energy,
              time_energy * 1e-10);
}

TEST(Fft, SinglebinTone) {
  // A tone at exactly bin 32 of a 1024-point FFT.
  const double fs = 1024.0;
  std::vector<double> x(1024);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(kTwoPi * 32.0 * static_cast<double>(i) / fs);
  auto spec = fft(std::span<const double>(x));
  EXPECT_NEAR(std::abs(spec[32]), 512.0, 1e-6);
  EXPECT_NEAR(std::abs(spec[33]), 0.0, 1e-6);
}

TEST(Spectrum, UnitSineReadsUnity) {
  const Signal s = make_tone(1500.0, 1.0, 0.1, 48000.0);
  const Spectrum spec = magnitude_spectrum(s);
  double peak = 0.0, peak_f = 0.0;
  for (std::size_t i = 0; i < spec.magnitude.size(); ++i)
    if (spec.magnitude[i] > peak) { peak = spec.magnitude[i]; peak_f = spec.frequency[i]; }
  EXPECT_NEAR(peak, 1.0, 0.05);
  EXPECT_NEAR(peak_f, 1500.0, 15.0);
}

// Regression: the one-sided 2/N scale double-counts DC and Nyquist, which
// carry no mirrored negative-frequency energy.  A constant signal and a
// Nyquist-rate square wave must both read ~1.0, not ~2.0.
TEST(Spectrum, DcAndNyquistBinsAreNotDoubleCounted) {
  const double fs = 48000.0;
  Signal dc;
  dc.sample_rate = fs;
  dc.samples.assign(1024, 1.0);
  const Spectrum dc_spec = magnitude_spectrum(dc);
  ASSERT_FALSE(dc_spec.magnitude.empty());
  EXPECT_NEAR(dc_spec.magnitude[0], 1.0, 1e-9);
  EXPECT_EQ(dc_spec.frequency[0], 0.0);

  // Alternating +1/-1 is a pure tone at exactly fs/2: all energy in the
  // last (Nyquist) bin of the one-sided spectrum.
  Signal nyq;
  nyq.sample_rate = fs;
  nyq.samples.resize(1024);
  for (std::size_t i = 0; i < nyq.samples.size(); ++i)
    nyq.samples[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const Spectrum nyq_spec = magnitude_spectrum(nyq);
  const std::size_t last = nyq_spec.magnitude.size() - 1;
  EXPECT_NEAR(nyq_spec.frequency[last], fs / 2.0, 1e-9);
  EXPECT_NEAR(nyq_spec.magnitude[last], 1.0, 1e-9);

  // Interior bins are unaffected by the edge-bin fix: a bin-aligned
  // mid-band unit sine still reads ~1.0.
  Signal mid;
  mid.sample_rate = fs;
  mid.samples.resize(1024);
  for (std::size_t i = 0; i < mid.samples.size(); ++i)
    mid.samples[i] =
        std::sin(kTwoPi * 96.0 * static_cast<double>(i) / 1024.0);
  const Spectrum mid_spec = magnitude_spectrum(mid);
  EXPECT_NEAR(mid_spec.magnitude[96], 1.0, 1e-9);
}

// Regression: the spectrum used to zero-pad to a power of two but compute
// the bin spacing from the padded length while scaling amplitudes by the
// unpadded length, so non-power-of-two inputs reported both a shifted peak
// frequency and a wrong magnitude.  The exact-length DFT keeps df = fs/N and
// scale = 2/N tied to the same N: a bin-aligned sine lands exactly on its
// frequency with magnitude ~1.0.
TEST(Spectrum, NonPowerOfTwoLengthKeepsExactBinsAndScale) {
  const double fs = 48000.0;
  constexpr std::size_t kLen = 4800;  // not a power of two
  Signal s;
  s.sample_rate = fs;
  s.samples.resize(kLen);
  // 1000 Hz = bin 100 of a 4800-point transform at 48 kHz: exactly
  // bin-aligned for the true length, not for the 8192 padded one.
  for (std::size_t i = 0; i < kLen; ++i)
    s.samples[i] = std::sin(kTwoPi * 1000.0 * static_cast<double>(i) / fs);
  const Spectrum spec = magnitude_spectrum(s);
  ASSERT_EQ(spec.frequency.size(), kLen / 2 + 1);
  double peak = 0.0, peak_f = -1.0;
  for (std::size_t i = 0; i < spec.magnitude.size(); ++i)
    if (spec.magnitude[i] > peak) { peak = spec.magnitude[i]; peak_f = spec.frequency[i]; }
  EXPECT_NEAR(peak_f, 1000.0, 1e-9);   // df = fs / 4800 puts bin 100 at 1 kHz
  EXPECT_NEAR(peak, 1.0, 1e-9);        // scale = 2 / 4800 over the same length
}

TEST(SpectralPeaks, FindsTwoCarriers) {
  // The receiver identifies concurrent downlink carriers by FFT peaks
  // (paper section 5.1b).
  Signal s = make_tone(15000.0, 1.0, 0.05, 96000.0);
  s.accumulate(make_tone(18000.0, 0.7, 0.05, 96000.0));
  const auto peaks = spectral_peaks(s, 0.25, 500.0);
  ASSERT_GE(peaks.size(), 2u);
  EXPECT_NEAR(peaks[0], 15000.0, 60.0);
  EXPECT_NEAR(peaks[1], 18000.0, 60.0);
}

TEST(SpectralPeaks, IgnoresWeakNoise) {
  pab::Rng rng(9);
  Signal s = make_tone(15000.0, 1.0, 0.05, 96000.0);
  for (auto& v : s.samples) v += rng.gaussian(0.0, 0.01);
  const auto peaks = spectral_peaks(s, 0.25, 500.0);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0], 15000.0, 60.0);
}

}  // namespace
}  // namespace pab::dsp
