// Ablation (paper footnote 4): CDMA vs FDMA for concurrent backscatter.
//
// The paper dismisses CDMA because it "requires the same overall bandwidth as
// standard FDMA".  This bench quantifies that and the two extra costs CDMA
// brings to backscatter: per-user rate divides by the spreading factor inside
// the fixed recto-piezo band, and the near-far problem (no transmit power
// control on a passive node).
#include <cmath>

#include "bench_util.hpp"
#include "phy/cdma.hpp"
#include "phy/fm0.hpp"
#include "phy/metrics.hpp"
#include "sim/batch.hpp"
#include "util/rng.hpp"

namespace {

using namespace pab;

constexpr double kUsableBandwidthHz = 2400.0;  // one recto-piezo channel

void print_series() {
  bench::print_header("Ablation: CDMA vs FDMA",
                      "Bandwidth, per-user rate, and near-far (footnote 4)");

  // --- Bandwidth accounting ---------------------------------------------------
  const double fdma_user_rate = kUsableBandwidthHz / 2.0 / 2.0;  // FM0: BW=2R
  bench::print_row({"scheme", "users", "occupied BW", "per-user rate"});
  bench::print_row({"FDMA (2 channels)", "2",
                    bench::fmt(2.0 * kUsableBandwidthHz / 1000.0, 1) + " kHz",
                    bench::fmt(fdma_user_rate, 0) + " bps"});
  for (std::size_t sf : {2u, 4u}) {
    // CDMA in ONE channel: chip rate fills the band; data rate divides by SF.
    const double chip_rate = kUsableBandwidthHz / 2.0;
    const double user_rate = chip_rate / static_cast<double>(sf) / 2.0;
    bench::print_row({"CDMA (SF=" + bench::fmt(sf, 0) + ")",
                      bench::fmt(sf, 0),
                      bench::fmt(kUsableBandwidthHz / 1000.0, 1) + " kHz",
                      bench::fmt(user_rate, 0) + " bps"});
  }
  std::printf("\nAggregate rate is bandwidth-bound either way: to serve 2 users\n"
              "at the FDMA per-user rate, CDMA needs 2x the chip rate = the\n"
              "same total spectrum (the paper's footnote-4 argument).\n\n");

  // --- Near-far: decode the weak user under a strong interferer ----------------
  // 20 Monte-Carlo trials per power ratio, fanned over a BatchRunner with
  // per-trial RNG substreams.
  const sim::BatchRunner batch;
  bench::print_row({"power ratio", "weak-user BER (CDMA, SF=4)"});
  std::uint64_t ratio_idx = 0;
  for (double ratio : {1.0, 3.0, 10.0, 30.0}) {
    const auto code1 = phy::walsh_code(4, 1);
    const auto code2 = phy::walsh_code(4, 2);
    const auto errors_per_trial = batch.map_seeded(
        20, 8000 + ratio_idx++, [&](std::size_t, Rng& rng) {
          const auto bits1 = rng.bits(100);
          const auto bits2 = rng.bits(100);
          const auto d1 = phy::fm0_encode(bits1);
          const auto d2 = phy::fm0_encode(bits2);
          const auto s1 = phy::cdma_spread(d1, code1);
          const auto s2 = phy::cdma_spread(d2, code2);
          // User 2 is `ratio`x stronger and arrives 1 chip late (asynchronous
          // backscatter: the reader cannot chip-align two passive reflectors).
          std::vector<double> rx(s1.size());
          for (std::size_t i = 0; i < rx.size(); ++i) {
            const double a = static_cast<double>(s1[i]);
            const double b = i >= 1 ? static_cast<double>(s2[i - 1]) : 0.0;
            rx[i] = a + ratio * b + rng.gaussian(0.0, 0.3);
          }
          const auto soft = phy::cdma_despread(rx, code1);
          const auto decoded = phy::fm0_decode_ml(soft);
          return hamming_distance(bits1, decoded);
        });
    std::size_t errors = 0, total = 0;
    for (std::size_t e : errors_per_trial) {
      errors += e;
      total += 100;
    }
    bench::print_row({bench::fmt(ratio, 0) + "x",
                      bench::fmt_sci(static_cast<double>(errors) /
                                     static_cast<double>(total))});
  }
  std::printf("\nAsynchronous arrival breaks Walsh orthogonality, so the weak\n"
              "user drowns as the power imbalance grows -- and passive nodes\n"
              "cannot power-control.  FDMA + collision decoding separates the\n"
              "users by frequency diversity instead (sections 3.3.1-3.3.2).\n");
}

void bm_despread(benchmark::State& state) {
  Rng rng(1);
  const auto code = phy::walsh_code(8, 3);
  std::vector<double> rx(8000);
  for (auto& v : rx) v = rng.gaussian();
  for (auto _ : state) {
    auto soft = phy::cdma_despread(rx, code);
    benchmark::DoNotOptimize(soft.data());
  }
}
BENCHMARK(bm_despread)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "ablation_cdma";
  spec.description = "Bandwidth, per-user rate, and near-far";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "ablation_cdma";
  sweep.kind = pab::sim::TrialKind::kNetwork;
  sweep.preset = "pool_a_concurrent";
  sweep.trials_per_point = 8;
  spec.campaign = std::move(sweep);
  spec.required_counters = {"sim.batch.trials"};
  return pab::bench::run_bench_main(argc, argv, spec);
}
