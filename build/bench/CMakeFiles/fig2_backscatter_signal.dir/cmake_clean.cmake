file(REMOVE_RECURSE
  "CMakeFiles/fig2_backscatter_signal.dir/fig2_backscatter_signal.cpp.o"
  "CMakeFiles/fig2_backscatter_signal.dir/fig2_backscatter_signal.cpp.o.d"
  "fig2_backscatter_signal"
  "fig2_backscatter_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_backscatter_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
