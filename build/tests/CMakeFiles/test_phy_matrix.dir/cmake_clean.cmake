file(REMOVE_RECURSE
  "CMakeFiles/test_phy_matrix.dir/test_phy_matrix.cpp.o"
  "CMakeFiles/test_phy_matrix.dir/test_phy_matrix.cpp.o.d"
  "test_phy_matrix"
  "test_phy_matrix.pdb"
  "test_phy_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
