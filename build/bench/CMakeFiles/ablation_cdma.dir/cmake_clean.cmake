file(REMOVE_RECURSE
  "CMakeFiles/ablation_cdma.dir/ablation_cdma.cpp.o"
  "CMakeFiles/ablation_cdma.dir/ablation_cdma.cpp.o.d"
  "ablation_cdma"
  "ablation_cdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
