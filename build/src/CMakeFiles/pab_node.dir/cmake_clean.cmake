file(REMOVE_RECURSE
  "CMakeFiles/pab_node.dir/node/node.cpp.o"
  "CMakeFiles/pab_node.dir/node/node.cpp.o.d"
  "libpab_node.a"
  "libpab_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pab_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
