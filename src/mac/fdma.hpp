// FDMA channel planning for recto-piezo networks.
//
// Different sensors are built (or programmed, via their matching bank) to
// resonate on different channels; the projector transmits all active carriers
// at once and the hydrophone separates the concurrent backscatter streams
// (paper sections 3.3.1-3.3.2).  The plan must respect the transducer's
// usable mechanical band and the per-channel bandwidth the recto-piezo
// matching provides.
#pragma once

#include <vector>

#include "circuit/rectopiezo.hpp"

namespace pab::mac {

struct ChannelPlan {
  std::vector<double> carriers_hz;  // the distinct concurrent channels
  std::size_t requested = 0;        // node count the plan was asked for
  std::size_t reuse_factor = 1;     // ceil(requested / channels): sequential
                                    // rounds (or reusing zones) per carrier

  [[nodiscard]] std::size_t channels() const { return carriers_hz.size(); }
  // More nodes than distinct channels: carriers must be reused across
  // non-interfering zones or sequential rounds (mac/zones.hpp does both).
  [[nodiscard]] bool oversubscribed() const { return reuse_factor > 1; }
  // Carrier assigned to node/zone slot `i` under round-robin reuse.
  [[nodiscard]] double carrier_for(std::size_t i) const {
    return carriers_hz[i % carriers_hz.size()];
  }
};

struct ChannelPlanConfig {
  // The paper's two concurrent channels sit at 15 and 18 kHz, inside the
  // cylinder's usable mechanical band.
  double band_low_hz = 15000.0;
  double band_high_hz = 18000.0;
  double min_spacing_hz = 2500.0;  // >= recto-piezo bandwidth + guard
};

// Greedy plan: as many channels as fit with the required spacing, centered in
// the band.  When `n_nodes` exceeds the channel count the band can hold, the
// plan is *oversubscribed* rather than an error: it carries every channel
// that fits plus the reuse factor callers need to schedule the surplus
// (round-robin via carrier_for, or spatial reuse across non-interfering
// zones).  Plans for n_nodes within capacity are unchanged: one carrier per
// node, reuse_factor == 1.
[[nodiscard]] ChannelPlan plan_channels(std::size_t n_nodes,
                                        const ChannelPlanConfig& config = {});

// Receiver rejection of off-carrier backscatter.  The hydrophone separates
// concurrent FDMA streams with per-carrier filters; a transmitter on another
// carrier leaks into the receive band attenuated by the filter skirt.  The
// mask is the usual piecewise-linear idealization: no rejection inside the
// passband around the receive carrier, a linear roll-off beyond it, and a
// finite stopband floor (real filters never reject infinitely).
struct RejectionMask {
  double passband_hz = 1000.0;      // |f_tx - f_rx| <= passband: 0 dB
  double slope_db_per_khz = 30.0;   // roll-off beyond the passband edge
  double floor_db = 40.0;           // ultimate stopband rejection
};

// Rejection in dB (>= 0) the receive filter at `rx_hz` applies to a
// transmitter at `tx_hz`.  0 dB co-channel, capped at `floor_db`.
[[nodiscard]] double rejection_db(const RejectionMask& mask, double tx_hz,
                                  double rx_hz);

// The same rejection as a linear power factor 10^(-db/10) in (0, 1]:
// multiply an interferer's received power by this before summing it into a
// SINR denominator.
[[nodiscard]] double rejection_power_factor(const RejectionMask& mask,
                                            double tx_hz, double rx_hz);

// Cross-talk matrix entry [i][j]: modulation depth of a node matched at
// carrier j when illuminated at carrier i, normalized by its on-channel
// depth.  Quantifies how frequency-agnostic backscatter couples channels
// (the reason collisions must be decoded rather than filtered).
[[nodiscard]] std::vector<std::vector<double>> crosstalk_matrix(
    const ChannelPlan& plan, double mechanical_resonance_hz = 16500.0);

// Ideal network throughput of `n` concurrent channels at `per_link_bps`,
// versus TDMA on one channel (`1/n` share each): the FDMA gain the paper
// demonstrates for n = 2.
[[nodiscard]] double fdma_throughput_bps(std::size_t n, double per_link_bps);
[[nodiscard]] double tdma_throughput_bps(std::size_t n, double per_link_bps);

}  // namespace pab::mac
