#include "campaign/manifest.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pab::campaign {

namespace fs = std::filesystem;

namespace {

pab::Expected<bool> write_file(const std::string& path,
                               const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return pab::Error{pab::ErrorCode::kBusError, "cannot open " + path};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return pab::Error{pab::ErrorCode::kBusError, "write failed: " + path};
  return true;
}

}  // namespace

pab::Expected<bool> CheckpointStore::open(std::uint64_t fingerprint,
                                          std::uint64_t shard_count,
                                          bool resume) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    return pab::Error{pab::ErrorCode::kBusError,
                      "cannot create checkpoint dir " + dir_};
  done_.clear();

  if (!resume || !fs::exists(manifest_path())) {
    // Fresh campaign: drop any previous progress so stale shard files from an
    // unrelated run can never be folded in.
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name == "manifest" || name.rfind("shard-", 0) == 0)
        fs::remove(entry.path(), ec);
    }
    std::ostringstream header;
    header << "pab-campaign v1\n";
    header << "fingerprint " << fingerprint << "\n";
    header << "shards " << shard_count << "\n";
    return write_file(manifest_path(), header.str());
  }

  std::ifstream in(manifest_path());
  if (!in)
    return pab::Error{pab::ErrorCode::kBusError,
                      "cannot read manifest in " + dir_};
  std::string line;
  if (!std::getline(in, line) || line != "pab-campaign v1")
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "manifest: missing 'pab-campaign v1' header"};
  std::uint64_t seen_fingerprint = 0;
  std::uint64_t seen_shards = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "fingerprint") {
      fields >> seen_fingerprint;
    } else if (key == "shards") {
      fields >> seen_shards;
    } else if (key == "done") {
      std::uint64_t shard = 0;
      fields >> shard;
      if (!fields.fail()) done_.insert(shard);
    } else {
      return pab::Error{pab::ErrorCode::kInvalidArgument,
                        "manifest: unknown directive: " + key};
    }
  }
  if (seen_fingerprint != fingerprint)
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "manifest: campaign fingerprint mismatch (the spec "
                      "changed since this checkpoint was written)"};
  if (seen_shards != shard_count)
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "manifest: shard count mismatch"};
  return true;
}

pab::Expected<bool> CheckpointStore::store(const ShardOutput& out) {
  ByteWriter w;
  out.serialize(w);
  const std::string path = shard_path(out.shard);
  const std::string tmp = path + ".tmp";
  auto ok = write_file(tmp, w.bytes());
  if (!ok.ok()) return ok;
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec)
    return pab::Error{pab::ErrorCode::kBusError, "cannot rename " + tmp};
  std::ofstream manifest(manifest_path(), std::ios::app);
  if (!manifest)
    return pab::Error{pab::ErrorCode::kBusError,
                      "cannot append to manifest in " + dir_};
  manifest << "done " << out.shard << "\n";
  manifest.flush();
  if (!manifest)
    return pab::Error{pab::ErrorCode::kBusError, "manifest append failed"};
  done_.insert(out.shard);
  return true;
}

pab::Expected<ShardOutput> CheckpointStore::load(std::uint64_t shard) const {
  std::ifstream in(shard_path(shard), std::ios::binary);
  if (!in)
    return pab::Error{pab::ErrorCode::kBusError,
                      "cannot read " + shard_path(shard)};
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  try {
    ByteReader r(bytes);
    auto out = ShardOutput::deserialize(r);
    if (!out.ok()) return out.error();
    if (out.value().shard != shard)
      return pab::Error{pab::ErrorCode::kInvalidArgument,
                        "shard file names the wrong shard"};
    return out;
  } catch (const std::exception& e) {
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      std::string("corrupt shard file: ") + e.what()};
  }
}

}  // namespace pab::campaign
