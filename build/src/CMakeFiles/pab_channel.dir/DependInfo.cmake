
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/absorption.cpp" "src/CMakeFiles/pab_channel.dir/channel/absorption.cpp.o" "gcc" "src/CMakeFiles/pab_channel.dir/channel/absorption.cpp.o.d"
  "/root/repo/src/channel/noise.cpp" "src/CMakeFiles/pab_channel.dir/channel/noise.cpp.o" "gcc" "src/CMakeFiles/pab_channel.dir/channel/noise.cpp.o.d"
  "/root/repo/src/channel/propagation.cpp" "src/CMakeFiles/pab_channel.dir/channel/propagation.cpp.o" "gcc" "src/CMakeFiles/pab_channel.dir/channel/propagation.cpp.o.d"
  "/root/repo/src/channel/tank.cpp" "src/CMakeFiles/pab_channel.dir/channel/tank.cpp.o" "gcc" "src/CMakeFiles/pab_channel.dir/channel/tank.cpp.o.d"
  "/root/repo/src/channel/timevarying.cpp" "src/CMakeFiles/pab_channel.dir/channel/timevarying.cpp.o" "gcc" "src/CMakeFiles/pab_channel.dir/channel/timevarying.cpp.o.d"
  "/root/repo/src/channel/water.cpp" "src/CMakeFiles/pab_channel.dir/channel/water.cpp.o" "gcc" "src/CMakeFiles/pab_channel.dir/channel/water.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pab_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pab_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
