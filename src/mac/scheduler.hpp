// MAC scheduling: TDMA polling baseline and FDMA concurrent access.
//
// The projector acts as an RFID-style reader.  In TDMA mode it polls one node
// at a time on a single carrier; in FDMA mode, recto-piezos on different
// channels answer concurrently and the hydrophone separates collisions with
// the MIMO decoder -- "enabling doubling the network throughput" (abstract).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "phy/packet.hpp"
#include "util/error.hpp"

namespace pab::mac {

// One reader->node->reader exchange executed by the surrounding simulation.
// Returns the decoded uplink packet or a link-layer error.
using TransactFn =
    std::function<pab::Expected<phy::UplinkPacket>(const phy::DownlinkQuery&)>;

// Snapshot view of a scheduler's transaction accounting.  The counters live
// in an obs::MetricRegistry (`mac.poll.*`); this struct is what stats()
// assembles from them for callers.
struct TransactionStats {
  std::size_t attempts = 0;
  std::size_t successes = 0;
  std::size_t crc_failures = 0;
  std::size_t no_response = 0;
  std::size_t retries = 0;
  double payload_bits_delivered = 0.0;
  double elapsed_s = 0.0;

  [[nodiscard]] double success_rate() const {
    return attempts > 0 ? static_cast<double>(successes) /
                              static_cast<double>(attempts)
                        : 0.0;
  }
  [[nodiscard]] double goodput_bps() const {
    return elapsed_s > 0.0 ? payload_bits_delivered / elapsed_s : 0.0;
  }
};

struct SchedulerConfig {
  int max_retries = 2;          // per query, on CRC failure / no response
  double downlink_time_s = 0.2; // airtime of one query (PWM is slow)
  double turnaround_s = 0.02;   // guard between downlink and uplink
};

class PollScheduler {
 public:
  // Transaction accounting goes to `metrics` under `mac.poll.*`.  By default
  // each scheduler owns a private registry (stats() then reports exactly this
  // scheduler's transactions, as the old hand-rolled struct did); pass an
  // external registry to fold the counters into a shared export, e.g. a bench
  // sidecar via obs::MetricRegistry::global().
  explicit PollScheduler(SchedulerConfig config = {},
                         obs::MetricRegistry* metrics = nullptr);

  // Execute one query with retries; updates stats with airtime accounting.
  // `uplink_bits` and `uplink_bitrate` size the response airtime.  Uplink
  // airtime is charged only for attempts where a reply actually arrived
  // (decoded or CRC-failed); a no-response attempt costs the downlink query
  // and turnaround alone.
  [[nodiscard]] pab::Expected<phy::UplinkPacket> transact(
      const phy::DownlinkQuery& query, const TransactFn& link,
      std::size_t uplink_bits, double uplink_bitrate);

  // Poll each (address, query) pair once, in order.
  void poll_round(std::span<const phy::DownlinkQuery> queries,
                  const TransactFn& link, std::size_t uplink_bits,
                  double uplink_bitrate);

  [[nodiscard]] TransactionStats stats() const;
  void reset_stats();

 private:
  SchedulerConfig config_;
  std::unique_ptr<obs::MetricRegistry> own_metrics_;  // when none injected
  obs::Counter* n_attempts_;
  obs::Counter* n_successes_;
  obs::Counter* n_crc_failures_;
  obs::Counter* n_no_response_;
  obs::Counter* n_retries_;
  obs::Gauge* payload_bits_delivered_;
  obs::Gauge* elapsed_s_;
};

}  // namespace pab::mac
