// End-to-end single-link waveform simulation:
// projector --CW--> (channel) --> node [recto-piezo backscatter] --> (channel)
// --> hydrophone --> software receiver.
//
// The simulation works per carrier in the complex-envelope domain (exact for
// these narrowband links), then reconstructs the real passband voltage the
// hydrophone would record, adds ambient noise, and hands it to the same
// receiver chain the paper's MATLAB decoder implements.
#pragma once

#include <optional>

#include "channel/propagation.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/projector.hpp"
#include "core/setup.hpp"
#include "dsp/signal.hpp"
#include "phy/modem.hpp"
#include "util/rng.hpp"

namespace pab::core {

struct UplinkRunConfig {
  double carrier_hz = 15000.0;
  double bitrate = 1000.0;
  double node_start_s = 0.05;  // node begins backscattering at this link time
  double tail_s = 0.02;        // extra CW after the packet
};

struct UplinkRunResult {
  dsp::Signal hydrophone_v;        // passband voltage capture [V]
  pab::Bits sent_bits;             // ground-truth bits after the preamble
  double incident_pressure_pa = 0; // CW amplitude at the node [Pa]
  double direct_pressure_pa = 0;   // direct-path CW amplitude at the hydrophone
  double modulation_pressure_pa = 0;  // backscatter swing at the hydrophone
};

class LinkSimulator {
 public:
  LinkSimulator(SimConfig config, Placement placement);

  // Simulate the node backscattering [uplink-preamble + data_bits] while the
  // projector transmits CW at `cfg.carrier_hz`.
  [[nodiscard]] UplinkRunResult run_uplink(const Projector& projector,
                                           const circuit::RectoPiezo& front_end,
                                           std::span<const std::uint8_t> data_bits,
                                           const UplinkRunConfig& cfg);

  // Run + decode with the standard receiver; returns the demod result (or
  // error) alongside the waveform-level ground truth.
  struct DecodedRun {
    UplinkRunResult run;
    pab::Expected<phy::DemodResult> demod{pab::ErrorCode::kDecodeFailure};
  };
  [[nodiscard]] DecodedRun run_and_decode(const Projector& projector,
                                          const circuit::RectoPiezo& front_end,
                                          std::span<const std::uint8_t> data_bits,
                                          const UplinkRunConfig& cfg);

  // CW amplitude [Pa] at the node position for a projector transmitting at
  // `freq_hz` (coherent multipath sum) -- the harvesting drive level.
  [[nodiscard]] double incident_pressure(const Projector& projector,
                                         double freq_hz) const;

  // Downlink: PWM query as received at the node -- returns the sliced
  // envelope stream the node's Schmitt trigger produces, for feeding
  // PabNode::receive_downlink.
  [[nodiscard]] std::vector<std::uint8_t> downlink_sliced_envelope(
      const Projector& projector, const phy::DownlinkQuery& query,
      const phy::PwmParams& pwm, double freq_hz) const;

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] pab::Rng& rng() { return rng_; }

  // Tap sets (cached per construction geometry, recomputed per carrier).
  [[nodiscard]] std::vector<channel::PathTap> taps(const channel::Vec3& a,
                                                   const channel::Vec3& b,
                                                   double freq_hz) const;

 private:
  SimConfig config_;
  Placement placement_;
  pab::Rng rng_;
};

}  // namespace pab::core
