file(REMOVE_RECURSE
  "libpab_util.a"
)
