// Line coding and framing tests: CRC, FM0, PWM, packets.
#include <gtest/gtest.h>

#include "phy/cdma.hpp"
#include "phy/crc.hpp"
#include "phy/fm0.hpp"
#include "phy/packet.hpp"
#include "phy/pwm.hpp"

#include <algorithm>
#include <vector>
#include "util/rng.hpp"

namespace pab::phy {
namespace {

TEST(Crc, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const std::string s = "123456789";
  const std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(crc16_ccitt(bytes), 0x29B1);
}

TEST(Crc, BitAndByteAgree) {
  pab::Rng rng(1);
  const auto bytes = rng.bytes(32);
  EXPECT_EQ(crc16_ccitt(bytes), crc16_bits(bits_from_bytes(bytes)));
}

TEST(Crc, DetectsSingleBitFlips) {
  pab::Rng rng(2);
  auto bits = rng.bits(64);
  const auto crc = crc16_bits(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] ^= 1;
    EXPECT_NE(crc16_bits(bits), crc) << "flip at " << i;
    bits[i] ^= 1;
  }
}

TEST(Fm0, EncodeBasics) {
  // Starting level -1: first chip of the first bit is +1 (boundary flip).
  const Bits bits = {1, 0};
  const Chips chips = fm0_encode(bits, -1);
  ASSERT_EQ(chips.size(), 4u);
  // bit 1: no mid flip -> (+1, +1); bit 0: mid flip -> (-1, +1).
  EXPECT_EQ(chips[0], 1);
  EXPECT_EQ(chips[1], 1);
  EXPECT_EQ(chips[2], -1);
  EXPECT_EQ(chips[3], 1);
}

TEST(Fm0, TransitionAtEveryBitBoundary) {
  pab::Rng rng(3);
  const auto bits = rng.bits(200);
  const auto chips = fm0_encode(bits);
  for (std::size_t b = 1; b < bits.size(); ++b) {
    // Last chip of bit b-1 differs from first chip of bit b.
    EXPECT_NE(chips[2 * b - 1], chips[2 * b]) << "boundary " << b;
  }
}

TEST(Fm0, HardDecodeRoundTrip) {
  pab::Rng rng(4);
  const auto bits = rng.bits(128);
  const auto chips = fm0_encode(bits);
  EXPECT_EQ(fm0_decode_hard(chips), bits);
}

TEST(Fm0, MlDecodeNoiseless) {
  pab::Rng rng(5);
  const auto bits = rng.bits(64);
  const auto chips = fm0_encode(bits);
  std::vector<double> soft(chips.begin(), chips.end());
  EXPECT_EQ(fm0_decode_ml(soft), bits);
}

TEST(Fm0, MlDecodeBeatsHardAtLowSnr) {
  // The Viterbi sequence decoder must not be worse than chip-wise slicing.
  pab::Rng rng(6);
  std::size_t ml_errors = 0, hard_errors = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto bits = rng.bits(100);
    const auto chips = fm0_encode(bits);
    std::vector<double> soft(chips.size());
    Chips noisy(chips.size());
    for (std::size_t i = 0; i < chips.size(); ++i) {
      soft[i] = chips[i] + rng.gaussian(0.0, 1.0);
      noisy[i] = soft[i] >= 0 ? 1 : -1;
    }
    const auto ml = fm0_decode_ml(soft);
    const auto hard = fm0_decode_hard(noisy);
    ml_errors += hamming_distance(bits, ml);
    hard_errors += hamming_distance(bits, hard);
  }
  EXPECT_LT(ml_errors, hard_errors);
}

TEST(Fm0, OddChipCountThrows) {
  std::vector<double> soft(3, 0.0);
  EXPECT_THROW((void)fm0_decode_ml(soft), std::invalid_argument);
}

TEST(Pwm, EncodeLengths) {
  PwmParams p{0.001};
  const double fs = 96000.0;
  const auto w0 = pwm_encode(Bits{0}, p, fs);
  const auto w1 = pwm_encode(Bits{1}, p, fs);
  // Lead-in (1) + sync (2 units) + symbol (2 or 3) + end delimiter (2).
  EXPECT_EQ(w0.size(), static_cast<std::size_t>(7 * 0.001 * fs));
  EXPECT_EQ(w1.size(), static_cast<std::size_t>(8 * 0.001 * fs));
}

TEST(Pwm, OneIsTwiceAsLongAsZero) {
  // Paper section 5.1a: "the '1' bit is twice as long as the '0' bit".
  PwmParams p;
  std::size_t high0 = 0, high1 = 0;
  for (auto v : pwm_encode(Bits{0}, p, 96000.0)) high0 += v;
  for (auto v : pwm_encode(Bits{1}, p, 96000.0)) high1 += v;
  // Subtract the sync and delimiter pulses (1 unit high each).
  const auto unit = static_cast<std::size_t>(p.unit_s * 96000.0);
  EXPECT_EQ(high1 - 2 * unit, 2 * (high0 - 2 * unit));
}

TEST(Pwm, DecodeRoundTrip) {
  pab::Rng rng(7);
  PwmParams p{2e-3};
  const auto bits = rng.bits(40);
  const auto wave = pwm_encode(bits, p, 96000.0);
  EXPECT_EQ(pwm_decode(wave, p, 96000.0), bits);
}

TEST(Pwm, DecodeToleratesTimingJitter) {
  PwmParams p{2e-3};
  const Bits bits = {1, 0, 1, 1, 0};
  auto wave = pwm_encode(bits, p, 96000.0);
  // Decode with a 10% slower assumed clock: still inside tolerance.
  PwmParams skewed{2e-3 * 1.1};
  EXPECT_EQ(pwm_decode(wave, skewed, 96000.0), bits);
}

TEST(Packet, DownlinkRoundTrip) {
  DownlinkQuery q;
  q.address = 0x42;
  q.command = Command::kReadPh;
  q.argument = 7;
  const auto bits = q.to_bits();
  EXPECT_EQ(bits.size(), 9u + 32u);
  const auto back = DownlinkQuery::from_bits(bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->address, 0x42);
  EXPECT_EQ(back->command, Command::kReadPh);
  EXPECT_EQ(back->argument, 7);
}

TEST(Packet, DownlinkFindsPreambleAfterNoise) {
  DownlinkQuery q;
  q.address = 0x01;
  Bits noisy = {1, 1, 0, 1, 0};  // garbage prefix
  const auto qb = q.to_bits();
  noisy.insert(noisy.end(), qb.begin(), qb.end());
  const auto back = DownlinkQuery::from_bits(noisy);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->address, 0x01);
}

TEST(Packet, DownlinkChecksumRejectsCorruption) {
  DownlinkQuery q;
  q.address = 0x10;
  auto bits = q.to_bits();
  bits[12] ^= 1;  // corrupt the address field
  EXPECT_FALSE(DownlinkQuery::from_bits(bits).has_value());
}

TEST(Packet, UplinkRoundTrip) {
  pab::Rng rng(8);
  UplinkPacket p;
  p.node_id = 9;
  p.payload = rng.bytes(16);
  const auto bits = p.to_bits();
  EXPECT_EQ(bits.size(), UplinkPacket::bits_on_air(16));
  const auto back = UplinkPacket::from_bits(bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node_id, 9);
  EXPECT_EQ(back->payload, p.payload);
}

TEST(Packet, UplinkCrcRejectsBitErrors) {
  UplinkPacket p;
  p.node_id = 1;
  p.payload = {0xAB, 0xCD};
  auto bits = p.to_bits();
  bits[bits.size() / 2] ^= 1;
  EXPECT_FALSE(UplinkPacket::from_bits(bits).has_value());
}

TEST(Packet, UplinkTruncatedReturnsNullopt) {
  UplinkPacket p;
  p.payload = {1, 2, 3, 4};
  auto bits = p.to_bits();
  bits.resize(bits.size() - 8);
  EXPECT_FALSE(UplinkPacket::from_bits(bits).has_value());
}

TEST(Packet, BitsOnAirAccounting) {
  // preamble(12) + header(16) + payload(8*N) + crc(16).
  EXPECT_EQ(UplinkPacket::bits_on_air(0), 44u);
  EXPECT_EQ(UplinkPacket::bits_on_air(4), 76u);
  EXPECT_EQ(UplinkPacket::bits_on_air(4, false), 64u);
}


TEST(Cdma, WalshCodesAreOrthogonal) {
  for (std::size_t len : {2u, 4u, 8u, 16u}) {
    for (std::size_t i = 0; i < len; ++i) {
      for (std::size_t j = 0; j < len; ++j) {
        const auto a = walsh_code(len, i);
        const auto b = walsh_code(len, j);
        double dot = 0.0;
        for (std::size_t k = 0; k < len; ++k)
          dot += static_cast<double>(a[k]) * static_cast<double>(b[k]);
        if (i == j) EXPECT_NEAR(dot, static_cast<double>(len), 1e-12);
        else EXPECT_NEAR(dot, 0.0, 1e-12) << len << " " << i << " " << j;
      }
    }
  }
}

TEST(Cdma, SpreadDespreadRoundTrip) {
  pab::Rng rng(9);
  const auto bits = rng.bits(64);
  const auto chips = fm0_encode(bits);
  const auto code = walsh_code(8, 5);
  const auto spread = cdma_spread(chips, code);
  EXPECT_EQ(spread.size(), chips.size() * 8);
  std::vector<double> rx(spread.begin(), spread.end());
  const auto soft = cdma_despread(rx, code);
  EXPECT_EQ(fm0_decode_ml(soft), bits);
}

TEST(Cdma, TwoSynchronousUsersSeparate) {
  pab::Rng rng(10);
  const auto bits1 = rng.bits(50);
  const auto bits2 = rng.bits(50);
  const auto c1 = walsh_code(4, 1);
  const auto c2 = walsh_code(4, 2);
  const auto s1 = cdma_spread(fm0_encode(bits1), c1);
  const auto s2 = cdma_spread(fm0_encode(bits2), c2);
  std::vector<double> rx(s1.size());
  for (std::size_t i = 0; i < rx.size(); ++i)
    rx[i] = static_cast<double>(s1[i]) + static_cast<double>(s2[i]);
  EXPECT_EQ(fm0_decode_ml(cdma_despread(rx, c1)), bits1);
  EXPECT_EQ(fm0_decode_ml(cdma_despread(rx, c2)), bits2);
}

TEST(Cdma, AsynchronousUsersInterfere) {
  // Cyclic shifts of Walsh rows can remain orthogonal (structure), but
  // *streaming* misalignment -- a chip offset across data-symbol boundaries,
  // where the interferer's data changes mid-window -- does not: the weak
  // user takes real bit errors once the interferer is a few dB stronger.
  pab::Rng rng(12);
  const auto c1 = walsh_code(4, 1);
  const auto c2 = walsh_code(4, 2);
  std::size_t sync_errors = 0, async_errors = 0, total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto bits1 = rng.bits(80);
    const auto bits2 = rng.bits(80);
    const auto s1 = cdma_spread(fm0_encode(bits1), c1);
    const auto s2 = cdma_spread(fm0_encode(bits2), c2);
    for (bool async : {false, true}) {
      std::vector<double> rx(s1.size());
      for (std::size_t i = 0; i < rx.size(); ++i) {
        const double interferer =
            async ? (i >= 1 ? static_cast<double>(s2[i - 1]) : 0.0)
                  : static_cast<double>(s2[i]);
        rx[i] = static_cast<double>(s1[i]) + 5.0 * interferer;
      }
      const auto decoded = fm0_decode_ml(cdma_despread(rx, c1));
      (async ? async_errors : sync_errors) += hamming_distance(bits1, decoded);
    }
    total += bits1.size();
  }
  EXPECT_EQ(sync_errors, 0u);  // synchronous Walsh users stay orthogonal
  EXPECT_GT(static_cast<double>(async_errors) / static_cast<double>(total),
            0.05);  // asynchronous arrival breaks it
}

TEST(Cdma, CrossCorrelationZeroAtAlignment) {
  const auto a = walsh_code(8, 3);
  const auto b = walsh_code(8, 5);
  EXPECT_NEAR(code_cross_correlation(a, b, 0), 0.0, 1e-12);
  EXPECT_NEAR(code_cross_correlation(a, a, 0), 1.0, 1e-12);
}

TEST(Cdma, BandwidthScalesWithChipRate) {
  EXPECT_NEAR(occupied_bandwidth_hz(1000.0), 2000.0, 1e-9);
  // Spreading by 4 at constant data rate quadruples the occupied band.
  EXPECT_NEAR(occupied_bandwidth_hz(4000.0) / occupied_bandwidth_hz(1000.0),
              4.0, 1e-12);
}

TEST(Cdma, InvalidArgumentsThrow) {
  EXPECT_THROW((void)walsh_code(6, 0), std::invalid_argument);
  EXPECT_THROW((void)walsh_code(8, 8), std::invalid_argument);
}

}  // namespace
}  // namespace pab::phy
