file(REMOVE_RECURSE
  "CMakeFiles/fig8_snr_bitrate.dir/fig8_snr_bitrate.cpp.o"
  "CMakeFiles/fig8_snr_bitrate.dir/fig8_snr_bitrate.cpp.o.d"
  "fig8_snr_bitrate"
  "fig8_snr_bitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_snr_bitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
