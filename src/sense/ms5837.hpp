// MS5837-30BA waterproof digital pressure/temperature sensor model.
//
// Implements the device side (I2C registers, calibration PROM, raw ADC
// conversions) and the MCU-side driver with the exact first-order
// compensation math from the TE Connectivity datasheet, so the full
// query -> I2C transaction -> raw counts -> compensated reading path is
// exercised (paper sections 5.1c, 6.5).
#pragma once

#include <array>
#include <cstdint>

#include "sense/environment.hpp"
#include "sense/i2c.hpp"
#include "util/rng.hpp"

namespace pab::sense {

inline constexpr std::uint8_t kMs5837Address = 0x76;

// Command bytes (subset of the datasheet's).
inline constexpr std::uint8_t kMs5837CmdReset = 0x1E;
inline constexpr std::uint8_t kMs5837CmdConvertD1 = 0x40;  // pressure, OSR 256
inline constexpr std::uint8_t kMs5837CmdConvertD2 = 0x50;  // temperature, OSR 256
inline constexpr std::uint8_t kMs5837CmdAdcRead = 0x00;
inline constexpr std::uint8_t kMs5837CmdPromBase = 0xA0;   // +2*i for word i

// Device-side model.  Generates raw D1/D2 counts consistent with its PROM
// calibration constants and the ambient environment.
class Ms5837Device : public I2cDevice {
 public:
  Ms5837Device(const Environment* env, double depth_m, pab::Rng rng);

  void write(std::span<const std::uint8_t> data) override;
  [[nodiscard]] std::vector<std::uint8_t> read(std::size_t n) override;

  [[nodiscard]] const std::array<std::uint16_t, 8>& prom() const { return prom_; }

 private:
  [[nodiscard]] std::uint32_t raw_d1() const;  // pressure counts
  [[nodiscard]] std::uint32_t raw_d2() const;  // temperature counts

  const Environment* env_;
  double depth_m_;
  pab::Rng rng_;
  std::array<std::uint16_t, 8> prom_{};
  std::uint8_t last_command_ = 0;
  std::uint32_t adc_result_ = 0;
};

// MCU-side driver: runs the datasheet compensation on raw counts read over
// the bus.
struct Ms5837Reading {
  double temperature_c = 0.0;
  double pressure_mbar = 0.0;
};

class Ms5837Driver {
 public:
  explicit Ms5837Driver(I2cBus* bus);

  // Full measurement cycle: PROM read (cached), D1/D2 conversions, ADC
  // reads, first-order compensation.
  [[nodiscard]] pab::Expected<Ms5837Reading> measure();

  // The datasheet first-order algorithm, exposed for unit testing.
  [[nodiscard]] static Ms5837Reading compensate(
      std::uint32_t d1, std::uint32_t d2, const std::array<std::uint16_t, 8>& prom);

 private:
  I2cBus* bus_;
  std::array<std::uint16_t, 8> prom_{};
  bool prom_loaded_ = false;
};

}  // namespace pab::sense
