// The pab_serve <-> pab_worker protocol (payload codecs + worker side).
//
// Conversation, all frames length-prefixed (campaign/wire.hpp):
//   serve  -> worker : kSpec      proto version, worker thread count,
//                                 spec fingerprint, serialized CampaignSpec
//   serve  -> worker : kRunShard  shard {index, point, begin, end}
//   worker -> serve  : kRecords   shard index + a RecordBatch chunk
//                                 (trial order, <= kRecordsChunkRows rows)
//   worker -> serve  : kShardDone shard index + the shard's metrics delta
//   serve  -> worker : kShutdown  (or EOF on the pipe) -- worker exits 0
//   worker -> serve  : kError     fatal failure; worker exits nonzero
// The worker is stateless between shards: each kRunShard runs through
// campaign::run_shard against a fresh session and registry, so any worker
// may run any shard and a re-run reproduces the same bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "campaign/spec.hpp"
#include "campaign/wire.hpp"
#include "util/error.hpp"

namespace pab::campaign {

inline constexpr std::uint32_t kProtocolVersion = 1;
// Rows per kRecords frame: small enough that results stream while a shard
// is in flight on another worker, large enough to amortize frame overhead.
inline constexpr std::size_t kRecordsChunkRows = 32;

struct SpecPayload {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t worker_threads = 1;
  std::uint64_t fingerprint = 0;
  std::string spec_text;
};

[[nodiscard]] std::string encode_spec(const SpecPayload& p);
[[nodiscard]] pab::Expected<SpecPayload> decode_spec(std::string_view payload);

[[nodiscard]] std::string encode_shard(const Shard& s);
[[nodiscard]] pab::Expected<Shard> decode_shard(std::string_view payload);

// The whole worker process: serve frames from in_fd, write frames to out_fd,
// return the process exit code.  examples/pab_worker.cpp is one line around
// this so tests can drive a worker over plain pipes too.
int worker_main(int in_fd, int out_fd);

}  // namespace pab::campaign
