// Modulation-scheme identifiers for the backscatter uplink.
//
// This header is deliberately tiny (enum + names, no other phy includes) so
// plain-data config structs in higher layers (sim::Waveform, campaign axes)
// can carry a scheme without pulling the whole modem chain into their
// includes.  The descriptor table and the modulate/demodulate entry points
// live in phy/scheme.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace pab::phy {

// Wire-stable identifiers: the campaign spec serializes these as numeric axis
// values and the record columns key on them, so the values must never be
// renumbered -- append only.
enum class SchemeId : std::uint8_t {
  kFm0 = 0,   // FM0 line code, ML Viterbi decode (the paper's uplink)
  kFsk2 = 1,  // binary frequency-domain backscatter, Goertzel bank detect
  kFsk4 = 2,  // 4-ary FSK, 2 bits/symbol
};

inline constexpr std::size_t kSchemeCount = 3;

[[nodiscard]] constexpr std::string_view to_string(SchemeId id) {
  switch (id) {
    case SchemeId::kFm0: return "fm0";
    case SchemeId::kFsk2: return "fsk2";
    case SchemeId::kFsk4: return "fsk4";
  }
  return "unknown";
}

[[nodiscard]] constexpr std::optional<SchemeId> scheme_from(
    std::string_view name) {
  if (name == "fm0") return SchemeId::kFm0;
  if (name == "fsk2") return SchemeId::kFsk2;
  if (name == "fsk4") return SchemeId::kFsk4;
  return std::nullopt;
}

}  // namespace pab::phy
