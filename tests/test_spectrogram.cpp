// STFT / spectrogram tests.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/mixer.hpp"
#include "dsp/spectrogram.hpp"
#include "util/rng.hpp"

namespace pab::dsp {
namespace {

TEST(Spectrogram, ToneConcentratesInItsBin) {
  const Signal s = make_tone(15000.0, 1.0, 0.2, 96000.0);
  const auto spec = compute_spectrogram(s);
  ASSERT_GT(spec.frames(), 10u);
  const auto track = dominant_frequency_track(spec);
  for (double f : track) EXPECT_NEAR(f, 15000.0, 96000.0 / 1024.0 + 1.0);
}

TEST(Spectrogram, TracksFrequencyStep) {
  // 12 kHz for the first half, 18 kHz for the second.
  Signal s = make_tone(12000.0, 1.0, 0.1, 96000.0);
  const Signal s2 = make_tone(18000.0, 1.0, 0.1, 96000.0);
  s.samples.insert(s.samples.end(), s2.samples.begin(), s2.samples.end());
  const auto spec = compute_spectrogram(s);
  const auto track = dominant_frequency_track(spec);
  ASSERT_GT(track.size(), 20u);
  EXPECT_NEAR(track.front(), 12000.0, 200.0);
  EXPECT_NEAR(track.back(), 18000.0, 200.0);
}

TEST(Spectrogram, BandPowerSeparatesChannels) {
  Signal s = make_tone(15000.0, 1.0, 0.2, 96000.0);
  s.accumulate(make_tone(18000.0, 0.5, 0.2, 96000.0));
  const auto spec = compute_spectrogram(s);
  const auto p15 = band_power_track(spec, 14500.0, 15500.0);
  const auto p18 = band_power_track(spec, 17500.0, 18500.0);
  const auto p10 = band_power_track(spec, 9500.0, 10500.0);
  ASSERT_FALSE(p15.empty());
  const std::size_t mid = p15.size() / 2;
  EXPECT_GT(p15[mid], p18[mid]);          // 15k is stronger than 18k
  EXPECT_GT(p18[mid], 100.0 * p10[mid]);  // 10k band is empty
}

TEST(Spectrogram, OnOffKeyingVisibleInBandPower) {
  // Carrier on for 0.1 s, off for 0.1 s.
  Signal s = make_tone(15000.0, 1.0, 0.1, 96000.0);
  s.samples.resize(2 * s.size(), 0.0);
  const auto spec = compute_spectrogram(s);
  const auto p = band_power_track(spec, 14500.0, 15500.0);
  ASSERT_GT(p.size(), 10u);
  EXPECT_GT(p[p.size() / 4], 100.0 * p[3 * p.size() / 4]);
}

TEST(Spectrogram, FrameTimingAndAxes) {
  const Signal s = make_tone(1000.0, 1.0, 0.5, 48000.0);
  SpectrogramConfig cfg;
  cfg.fft_size = 512;
  cfg.hop = 128;
  const auto spec = compute_spectrogram(s, cfg);
  EXPECT_EQ(spec.bins(), 257u);
  EXPECT_NEAR(spec.frequency_hz[1] - spec.frequency_hz[0], 48000.0 / 512.0, 1e-9);
  ASSERT_GT(spec.frames(), 1u);
  EXPECT_NEAR(spec.time_s[1] - spec.time_s[0], 128.0 / 48000.0, 1e-9);
}

TEST(Spectrogram, ShortSignalYieldsNoFrames) {
  Signal s;
  s.sample_rate = 48000.0;
  s.samples.resize(100, 0.0);  // shorter than the FFT window
  const auto spec = compute_spectrogram(s);
  EXPECT_EQ(spec.frames(), 0u);
}

TEST(Spectrogram, InvalidConfigThrows) {
  const Signal s = make_tone(1000.0, 1.0, 0.1, 48000.0);
  SpectrogramConfig bad;
  bad.fft_size = 1000;  // not a power of two
  EXPECT_THROW((void)compute_spectrogram(s, bad), std::invalid_argument);
  SpectrogramConfig bad2;
  bad2.hop = 0;
  EXPECT_THROW((void)compute_spectrogram(s, bad2), std::invalid_argument);
}

}  // namespace
}  // namespace pab::dsp
