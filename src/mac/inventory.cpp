#include "mac/inventory.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "sim/timeline.hpp"

namespace pab::mac {

std::size_t inventory_slot(std::uint8_t node_id, std::uint64_t frame_nonce,
                           std::size_t slot_count) {
  require(slot_count >= 1, "inventory_slot: need at least one slot");
  // SplitMix64-style mixing of (id, nonce): cheap, well distributed, and
  // implementable on the node's MCU.
  std::uint64_t x = frame_nonce + 0x9E3779B97F4A7C15ULL * (node_id + 1ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % slot_count);
}

int adapt_q(int q, std::size_t collisions, std::size_t empties,
            std::size_t singletons, int min_q, int max_q) {
  require(min_q <= max_q, "adapt_q: inverted bounds");
  // Classic heuristic: collisions mean the frame was too small, empties mean
  // it was too large; singletons are just right.
  if (collisions > singletons + empties) return std::min(q + 1, max_q);
  if (empties > collisions + singletons) return std::max(q - 1, min_q);
  return q;
}

std::vector<std::uint8_t> run_inventory(std::span<const std::uint8_t> population,
                                        const InventoryConfig& config,
                                        InventoryStats* stats) {
  require(config.min_q >= 0 && config.min_q <= config.max_q,
          "run_inventory: invalid q bounds");
  require(config.initial_q >= config.min_q && config.initial_q <= config.max_q,
          "run_inventory: initial q out of bounds");

  std::vector<std::uint8_t> pending(population.begin(), population.end());
  std::vector<std::uint8_t> identified;
  InventoryStats local;
  int q = config.initial_q;
  std::uint64_t nonce = config.seed;

  for (int frame = 0; frame < config.max_frames && !pending.empty(); ++frame) {
    ++local.frames;
    ++nonce;
    const std::size_t slot_count = std::size_t{1} << q;
    local.slots += slot_count;

    // Which nodes answer in which slot this frame.
    std::map<std::size_t, std::vector<std::uint8_t>> slots;
    for (std::uint8_t id : pending)
      slots[inventory_slot(id, nonce, slot_count)].push_back(id);

    std::size_t frame_singletons = 0, frame_collisions = 0;
    std::array<bool, 256> won{};  // ids identified this frame
    for (const auto& [slot, ids] : slots) {
      if (ids.size() == 1) {
        ++frame_singletons;
        identified.push_back(ids.front());
        won[ids.front()] = true;
      } else {
        ++frame_collisions;
      }
    }
    // Swap-and-compact the identified ids out of `pending` in one pass.  The
    // old erase(find(...)) per singleton was O(n^2) per frame; this is O(n).
    // Relative order of `pending` is not preserved, which is fine: slot
    // assignment hashes (id, nonce) and never looks at list order.
    for (std::size_t i = 0; i < pending.size();) {
      if (won[pending[i]]) {
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
    const std::size_t frame_empties =
        slot_count - frame_singletons - frame_collisions;
    local.singletons += frame_singletons;
    local.collisions += frame_collisions;
    local.empties += frame_empties;

    q = adapt_q(q, frame_collisions, frame_empties, frame_singletons,
                config.min_q, config.max_q);
  }

  if (stats != nullptr) *stats = local;
  return identified;
}

std::vector<std::uint8_t> run_inventory(std::span<const std::uint8_t> population,
                                        const InventoryConfig& config,
                                        sim::Timeline& timeline,
                                        const TimedInventoryOptions& options,
                                        InventoryStats* stats) {
  require(config.min_q >= 0 && config.min_q <= config.max_q,
          "run_inventory: invalid q bounds");
  require(config.initial_q >= config.min_q && config.initial_q <= config.max_q,
          "run_inventory: initial q out of bounds");
  require(options.frame_announce_s >= 0.0 && options.slot_s >= 0.0,
          "run_inventory: negative timing");

  std::vector<std::uint8_t> pending(population.begin(), population.end());
  std::vector<std::uint8_t> identified;
  InventoryStats local;
  int q = config.initial_q;
  std::uint64_t nonce = config.seed;

  for (int frame = 0; frame < config.max_frames && !pending.empty(); ++frame) {
    ++local.frames;
    ++nonce;
    const std::size_t slot_count = std::size_t{1} << q;
    local.slots += slot_count;

    timeline.elapse(options.frame_announce_s, "mac.inventory.frame");
    const double frame_start = timeline.now();

    // Slot assignment is fixed at the frame announcement (the node PRNG is
    // seeded by the query nonce); *whether* a node actually replies is only
    // known when its slot fires, because it may have browned out since.
    std::vector<std::vector<std::uint8_t>> by_slot(slot_count);
    for (std::uint8_t id : pending)
      by_slot[inventory_slot(id, nonce, slot_count)].push_back(id);

    std::vector<std::vector<std::uint8_t>> replies(slot_count);
    for (std::size_t k = 0; k < slot_count; ++k) {
      const double slot_end =
          frame_start + static_cast<double>(k + 1) * options.slot_s;
      timeline.schedule_at(
          slot_end, "mac.inventory.slot",
          [&by_slot, &replies, &options, k](sim::Timeline& tl) {
            for (std::uint8_t id : by_slot[k]) {
              if (!options.available || options.available(id, tl.now()))
                replies[k].push_back(id);
            }
          },
          options.slot_s);
    }
    // Run the frame; lifecycle ticks and other queued events interleave with
    // the slots at their own timestamps.
    timeline.run_until(frame_start +
                       static_cast<double>(slot_count) * options.slot_s);

    std::size_t frame_singletons = 0, frame_collisions = 0;
    std::array<bool, 256> won{};  // ids identified this frame
    for (std::size_t k = 0; k < slot_count; ++k) {
      if (replies[k].size() == 1) {
        ++frame_singletons;
        identified.push_back(replies[k].front());
        won[replies[k].front()] = true;
      } else if (replies[k].size() > 1) {
        ++frame_collisions;
      }
    }
    for (std::size_t i = 0; i < pending.size();) {
      if (won[pending[i]]) {
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
    const std::size_t frame_empties =
        slot_count - frame_singletons - frame_collisions;
    local.singletons += frame_singletons;
    local.collisions += frame_collisions;
    local.empties += frame_empties;

    q = adapt_q(q, frame_collisions, frame_empties, frame_singletons,
                config.min_q, config.max_q);
  }

  if (stats != nullptr) *stats = local;
  return identified;
}

}  // namespace pab::mac
