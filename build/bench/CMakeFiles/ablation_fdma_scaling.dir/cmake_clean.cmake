file(REMOVE_RECURSE
  "CMakeFiles/ablation_fdma_scaling.dir/ablation_fdma_scaling.cpp.o"
  "CMakeFiles/ablation_fdma_scaling.dir/ablation_fdma_scaling.cpp.o.d"
  "ablation_fdma_scaling"
  "ablation_fdma_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fdma_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
