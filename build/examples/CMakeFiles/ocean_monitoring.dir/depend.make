# Empty dependencies file for ocean_monitoring.
# This may be replaced when dependencies are built.
