file(REMOVE_RECURSE
  "CMakeFiles/pab_circuit.dir/circuit/impedance.cpp.o"
  "CMakeFiles/pab_circuit.dir/circuit/impedance.cpp.o.d"
  "CMakeFiles/pab_circuit.dir/circuit/matching.cpp.o"
  "CMakeFiles/pab_circuit.dir/circuit/matching.cpp.o.d"
  "CMakeFiles/pab_circuit.dir/circuit/rectifier.cpp.o"
  "CMakeFiles/pab_circuit.dir/circuit/rectifier.cpp.o.d"
  "CMakeFiles/pab_circuit.dir/circuit/rectopiezo.cpp.o"
  "CMakeFiles/pab_circuit.dir/circuit/rectopiezo.cpp.o.d"
  "CMakeFiles/pab_circuit.dir/circuit/storage.cpp.o"
  "CMakeFiles/pab_circuit.dir/circuit/storage.cpp.o.d"
  "libpab_circuit.a"
  "libpab_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pab_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
