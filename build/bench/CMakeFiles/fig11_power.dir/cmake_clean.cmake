file(REMOVE_RECURSE
  "CMakeFiles/fig11_power.dir/fig11_power.cpp.o"
  "CMakeFiles/fig11_power.dir/fig11_power.cpp.o.d"
  "fig11_power"
  "fig11_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
