#include "phy/packet.hpp"

namespace pab::phy {

Bits DownlinkQuery::to_bits() const {
  Bits bits;
  append_uint(bits, kDownlinkPreamble, kDownlinkPreambleBits);
  append_uint(bits, address, 8);
  append_uint(bits, static_cast<std::uint8_t>(command), 8);
  append_uint(bits, argument, 8);
  // 8-bit checksum (xor of the three fields) keeps the downlink short; the
  // full CRC-16 is reserved for the uplink where corruption matters more.
  const std::uint8_t checksum = static_cast<std::uint8_t>(
      address ^ static_cast<std::uint8_t>(command) ^ argument);
  append_uint(bits, checksum, 8);
  return bits;
}

std::optional<DownlinkQuery> DownlinkQuery::from_bits(const Bits& bits) {
  constexpr std::size_t kTotal = kDownlinkPreambleBits + 32;
  if (bits.size() < kTotal) return std::nullopt;
  // Scan for the preamble (the envelope decoder may emit leading noise bits).
  for (std::size_t off = 0; off + kTotal <= bits.size(); ++off) {
    if (read_uint(bits, off, kDownlinkPreambleBits) != kDownlinkPreamble) continue;
    DownlinkQuery q;
    std::size_t pos = off + kDownlinkPreambleBits;
    q.address = static_cast<std::uint8_t>(read_uint(bits, pos, 8));
    q.command = static_cast<Command>(read_uint(bits, pos + 8, 8));
    q.argument = static_cast<std::uint8_t>(read_uint(bits, pos + 16, 8));
    const auto checksum = static_cast<std::uint8_t>(read_uint(bits, pos + 24, 8));
    const std::uint8_t expect = static_cast<std::uint8_t>(
        q.address ^ static_cast<std::uint8_t>(q.command) ^ q.argument);
    if (checksum == expect) return q;
  }
  return std::nullopt;
}

Bits UplinkPacket::to_bits(bool include_preamble) const {
  require(payload.size() <= 255, "UplinkPacket: payload too long");
  Bits bits;
  if (include_preamble) {
    const Bits& p = uplink_preamble_bits();
    bits.insert(bits.end(), p.begin(), p.end());
  }
  Bits body;
  append_uint(body, node_id, 8);
  append_uint(body, static_cast<std::uint32_t>(payload.size()), 8);
  for (std::uint8_t b : payload) append_uint(body, b, 8);
  const std::uint16_t crc = crc16_bits(body);
  bits.insert(bits.end(), body.begin(), body.end());
  append_uint(bits, crc, 16);
  return bits;
}

std::optional<UplinkPacket> UplinkPacket::from_bits(const Bits& bits,
                                                    bool has_preamble) {
  const std::size_t skip = has_preamble ? uplink_preamble_bits().size() : 0;
  if (bits.size() < skip + 32) return std::nullopt;
  std::size_t pos = skip;
  UplinkPacket p;
  p.node_id = static_cast<std::uint8_t>(read_uint(bits, pos, 8));
  const auto len = read_uint(bits, pos + 8, 8);
  const std::size_t body_bits = 16 + 8 * len;
  if (bits.size() < skip + body_bits + 16) return std::nullopt;
  p.payload.resize(len);
  for (std::size_t i = 0; i < len; ++i)
    p.payload[i] = static_cast<std::uint8_t>(read_uint(bits, pos + 16 + 8 * i, 8));
  const auto crc_rx = static_cast<std::uint16_t>(read_uint(bits, pos + body_bits, 16));
  const std::uint16_t crc = crc16_bits(
      std::span<const std::uint8_t>(bits).subspan(pos, body_bits));
  if (crc != crc_rx) return std::nullopt;
  return p;
}

std::size_t UplinkPacket::bits_on_air(std::size_t payload_len, bool include_preamble) {
  return (include_preamble ? uplink_preamble_bits().size() : 0) + 16 +
         8 * payload_len + 16;
}

}  // namespace pab::phy
