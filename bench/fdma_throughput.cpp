// Section 3.3 / abstract claim: recto-piezo FDMA doubles network throughput.
//
// Two nodes polled over the waveform simulator: TDMA (one 15 kHz channel,
// alternating queries) vs FDMA (15 + 18 kHz recto-piezos answering
// concurrently, separated by the MIMO decoder).  Reports aggregate goodput
// and the throughput ratio.
#include "bench_util.hpp"
#include "core/collision.hpp"
#include "core/link.hpp"
#include "mac/fdma.hpp"
#include "mac/protocol.hpp"
#include "mac/scheduler.hpp"
#include "phy/metrics.hpp"

namespace {

using namespace pab;

constexpr double kBitrate = 250.0;
constexpr std::size_t kPayloadBits = 240;
constexpr int kRounds = 6;

// Airtime of one polled transaction (downlink query + turnaround + uplink).
double transaction_airtime(const mac::SchedulerConfig& cfg, std::size_t bits) {
  return cfg.downlink_time_s + cfg.turnaround_s +
         static_cast<double>(bits) / kBitrate;
}

void print_series() {
  bench::print_header("Network",
                      "TDMA vs FDMA (recto-piezo) aggregate throughput");
  const mac::SchedulerConfig sched_cfg{};

  // --- TDMA: alternate single-node uplinks on the 15 kHz channel -----------
  core::SimConfig sc = core::pool_a_config();
  core::Placement pl;
  pl.projector = {1.5, 1.5, 0.65};
  pl.hydrophone = {1.5, 2.5, 0.65};
  pl.node = {1.0, 2.0, 0.65};
  const channel::Vec3 node2_pos{2.0, 2.0, 0.65};
  const auto proj = core::Projector::ideal(300.0);
  const auto fe1 = circuit::make_recto_piezo(15000.0);
  const auto fe2 = circuit::make_recto_piezo(18000.0);

  double tdma_bits = 0.0, tdma_time = 0.0;
  {
    for (int round = 0; round < kRounds; ++round) {
      for (int who = 0; who < 2; ++who) {
        core::SimConfig sc_t = sc;
        sc_t.seed = 10 + round * 2 + who;
        core::Placement pl_t = pl;
        if (who == 1) pl_t.node = node2_pos;
        core::LinkSimulator sim(sc_t, pl_t);
        Rng rng(sc_t.seed);
        const auto bits = rng.bits(kPayloadBits);
        core::UplinkRunConfig ucfg;
        ucfg.bitrate = kBitrate;
        ucfg.carrier_hz = 15000.0;  // both nodes share one channel in TDMA
        // In TDMA both nodes are built for the single shared channel.
        const auto out = sim.run_and_decode(proj, fe1, bits, ucfg);
        tdma_time += transaction_airtime(sched_cfg, kPayloadBits + 12);
        if (out.demod.ok() &&
            phy::bit_error_rate(bits, out.demod.value().bits) < 0.02) {
          tdma_bits += static_cast<double>(kPayloadBits);
        }
      }
    }
  }

  // --- FDMA: both nodes answer one query concurrently ----------------------
  double fdma_bits = 0.0, fdma_time = 0.0;
  {
    for (int round = 0; round < kRounds; ++round) {
      core::SimConfig sc_t = sc;
      sc_t.seed = 100 + round;
      core::CollisionSimulator sim(sc_t, pl, node2_pos);
      core::CollisionRunConfig ccfg;
      ccfg.bitrate = kBitrate;
      ccfg.payload_bits = kPayloadBits;
      const auto r = sim.run(proj, fe1, fe2, ccfg);
      // One downlink poll serves both uplinks, which overlap in time.
      fdma_time += transaction_airtime(sched_cfg, kPayloadBits + 2 * 24 + 12);
      if (r.ber_after[0] < 0.02) fdma_bits += static_cast<double>(kPayloadBits);
      if (r.ber_after[1] < 0.02) fdma_bits += static_cast<double>(kPayloadBits);
    }
  }

  const double tdma_goodput = tdma_bits / tdma_time;
  const double fdma_goodput = fdma_bits / fdma_time;

  bench::print_row({"MAC", "delivered [b]", "airtime [s]", "goodput [bps]"});
  bench::print_row({"TDMA", bench::fmt(tdma_bits, 0), bench::fmt(tdma_time, 2),
                    bench::fmt(tdma_goodput, 1)});
  bench::print_row({"FDMA", bench::fmt(fdma_bits, 0), bench::fmt(fdma_time, 2),
                    bench::fmt(fdma_goodput, 1)});
  std::printf("\nFDMA / TDMA throughput ratio: %.2fx\n",
              fdma_goodput / std::max(tdma_goodput, 1e-9));
  std::printf("Paper shape: concurrent recto-piezo transmissions with collision\n"
              "decoding double the network throughput (abstract, section 6.3).\n");

  // Ideal-plan cross-check from the MAC layer.
  const auto plan = mac::plan_channels(2, mac::ChannelPlanConfig{});
  std::printf("Channel plan: %.1f / %.1f kHz; ideal gain %.1fx\n",
              plan.carriers_hz[0] / 1000.0, plan.carriers_hz[1] / 1000.0,
              mac::fdma_throughput_bps(2, kBitrate) /
                  mac::tdma_throughput_bps(2, kBitrate));
}

void bm_scheduler_round(benchmark::State& state) {
  mac::PollScheduler sched;
  const auto link = [](const phy::DownlinkQuery&) -> pab::Expected<phy::UplinkPacket> {
    phy::UplinkPacket p;
    p.payload = {1, 2, 3, 4};
    return p;
  };
  const std::vector<phy::DownlinkQuery> queries = {mac::make_ping(1),
                                                   mac::make_ping(2)};
  for (auto _ : state) {
    sched.poll_round(queries, link, 76, 1000.0);
    benchmark::DoNotOptimize(&sched.stats());
  }
}
BENCHMARK(bm_scheduler_round);

}  // namespace

int main(int argc, char** argv) {
  return pab::bench::run_bench_main(argc, argv, print_series);
}
