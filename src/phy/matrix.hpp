// Small dense complex matrix algebra for N-node collision decoding.
//
// The paper demonstrates 2 concurrent nodes and notes the FDMA gain "scales
// as the number of nodes with different resonance frequencies increases"
// (section 8).  Scaling past 2 needs general NxN channel inversion; this is a
// compact column-major complex matrix with LU decomposition (partial
// pivoting), solve, inverse, and a singular-value-based condition estimate.
#pragma once

#include <complex>
#include <vector>

#include "util/error.hpp"

namespace pab::phy {

class CMatrix {
 public:
  using cplx = std::complex<double>;

  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  [[nodiscard]] static CMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] cplx& at(std::size_t r, std::size_t c) {
    pab::require(r < rows_ && c < cols_, "CMatrix: index out of range");
    return data_[c * rows_ + r];
  }
  [[nodiscard]] const cplx& at(std::size_t r, std::size_t c) const {
    pab::require(r < rows_ && c < cols_, "CMatrix: index out of range");
    return data_[c * rows_ + r];
  }

  [[nodiscard]] CMatrix operator*(const CMatrix& rhs) const;
  [[nodiscard]] std::vector<cplx> operator*(const std::vector<cplx>& v) const;

  [[nodiscard]] CMatrix conjugate_transpose() const;

  // Solve A x = b via LU with partial pivoting.  Throws on singular A.
  [[nodiscard]] std::vector<cplx> solve(std::vector<cplx> b) const;

  // Inverse via LU (square only).
  [[nodiscard]] CMatrix inverse() const;

  // Frobenius norm.
  [[nodiscard]] double norm() const;

  // 2-norm condition number estimated by power iteration on A^H A (largest
  // singular value) and inverse iteration (smallest).  Adequate for the
  // small, well-separated channel matrices this library manipulates.
  [[nodiscard]] double condition_number(int iterations = 50) const;

 private:
  struct Lu;  // defined after the class (holds a CMatrix)
  [[nodiscard]] Lu factorize() const;

  std::size_t rows_ = 0, cols_ = 0;
  std::vector<cplx> data_;
};

struct CMatrix::Lu {
  CMatrix lu;
  std::vector<std::size_t> perm;
  bool singular = false;
};

// N-stream zero-forcing: x(t) = H^-1 y(t) applied per sample across streams.
// `y[i]` is the stream observed on carrier i; returns one estimated stream
// per transmitting node.
[[nodiscard]] std::vector<std::vector<std::complex<double>>> zero_force_n(
    const std::vector<std::vector<std::complex<double>>>& y, const CMatrix& h);

}  // namespace pab::phy
