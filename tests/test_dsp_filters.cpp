// FIR and Butterworth IIR filter design tests.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fir.hpp"
#include "dsp/iir.hpp"
#include "dsp/mixer.hpp"
#include "util/units.hpp"

namespace pab::dsp {
namespace {

double tone_gain_fir(const std::vector<double>& h, double freq, double fs) {
  const Signal in = make_tone(freq, 1.0, 0.2, fs);
  const auto out = fir_filter(h, in.samples);
  // Skip edges to avoid transient.
  double peak = 0.0;
  for (std::size_t i = out.size() / 4; i < 3 * out.size() / 4; ++i)
    peak = std::max(peak, std::abs(out[i]));
  return peak;
}

TEST(Fir, LowpassPassesAndStops) {
  const double fs = 48000.0;
  const auto h = design_lowpass_fir(2000.0, fs, 101);
  EXPECT_NEAR(tone_gain_fir(h, 500.0, fs), 1.0, 0.02);
  EXPECT_LT(tone_gain_fir(h, 8000.0, fs), 0.01);
}

TEST(Fir, UnityDcGain) {
  const auto h = design_lowpass_fir(1000.0, 48000.0, 64);  // even bumps to odd
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(h.size() % 2, 1u);
}

TEST(Fir, BandpassSelectsBand) {
  const double fs = 96000.0;
  const auto h = design_bandpass_fir(14000.0, 16000.0, fs, 257);
  EXPECT_NEAR(tone_gain_fir(h, 15000.0, fs), 1.0, 0.05);
  EXPECT_LT(tone_gain_fir(h, 10000.0, fs), 0.02);
  EXPECT_LT(tone_gain_fir(h, 20000.0, fs), 0.02);
}

TEST(Fir, InvalidDesignThrows) {
  EXPECT_THROW((void)design_lowpass_fir(30000.0, 48000.0, 11),
               std::invalid_argument);
  EXPECT_THROW((void)design_bandpass_fir(5000.0, 4000.0, 48000.0, 11),
               std::invalid_argument);
}

TEST(Iir, ButterworthLowpassResponse) {
  const double fs = 96000.0;
  const auto lp = butterworth_lowpass(5, 2000.0, fs);
  EXPECT_TRUE(lp.is_stable());
  // -3 dB at cutoff, maximally flat below, steep above.
  EXPECT_NEAR(std::abs(lp.response(2000.0, fs)), std::sqrt(0.5), 0.02);
  EXPECT_NEAR(std::abs(lp.response(100.0, fs)), 1.0, 0.01);
  EXPECT_LT(std::abs(lp.response(8000.0, fs)), 0.01);
}

TEST(Iir, ButterworthHighpassResponse) {
  const double fs = 96000.0;
  const auto hp = butterworth_highpass(4, 10000.0, fs);
  EXPECT_TRUE(hp.is_stable());
  EXPECT_NEAR(std::abs(hp.response(10000.0, fs)), std::sqrt(0.5), 0.02);
  EXPECT_LT(std::abs(hp.response(2000.0, fs)), 0.01);
  EXPECT_NEAR(std::abs(hp.response(30000.0, fs)), 1.0, 0.02);
}

TEST(Iir, BandpassIsolatesChannel) {
  // The paper's receiver isolates each backscatter channel with a
  // Butterworth band-pass (section 5.1b).
  const double fs = 96000.0;
  // HP+LP cascade: with band edges this close the skirts overlap, so assert
  // honest relative selectivity rather than brick-wall numbers.
  const auto bp = butterworth_bandpass(4, 13000.0, 17000.0, fs);
  EXPECT_TRUE(bp.is_stable());
  const double center = std::abs(bp.response(15000.0, fs));
  EXPECT_GT(center, 0.7);
  EXPECT_LT(std::abs(bp.response(20000.0, fs)), 0.6 * center);
  EXPECT_LT(std::abs(bp.response(10000.0, fs)), 0.5 * center);
  EXPECT_LT(std::abs(bp.response(28000.0, fs)), 0.1);
  EXPECT_LT(std::abs(bp.response(5000.0, fs)), 0.1);
}

TEST(Iir, OddOrdersHaveFirstOrderSection) {
  const auto lp3 = butterworth_lowpass(3, 1000.0, 48000.0);
  EXPECT_EQ(lp3.sections().size(), 2u);  // one biquad + one first-order
  const auto lp4 = butterworth_lowpass(4, 1000.0, 48000.0);
  EXPECT_EQ(lp4.sections().size(), 2u);  // two biquads
}

TEST(Iir, StreamingMatchesBatch) {
  const double fs = 48000.0;
  auto lp = butterworth_lowpass(5, 3000.0, fs);
  const Signal in = make_tone(1000.0, 1.0, 0.01, fs);
  const auto batch = lp.filter(std::span<const double>(in.samples));
  lp.reset();
  for (std::size_t i = 0; i < in.samples.size(); ++i)
    EXPECT_DOUBLE_EQ(lp.process(in.samples[i]), batch[i]);
}

TEST(Iir, ComplexFilteringMatchesRealOnRealInput) {
  const double fs = 48000.0;
  const auto lp = butterworth_lowpass(4, 3000.0, fs);
  const Signal in = make_tone(1000.0, 1.0, 0.01, fs);
  std::vector<cplx> cin(in.samples.size());
  for (std::size_t i = 0; i < cin.size(); ++i) cin[i] = {in.samples[i], 0.0};
  const auto real_out = lp.filter(std::span<const double>(in.samples));
  const auto cplx_out = lp.filter(std::span<const cplx>(cin));
  for (std::size_t i = 0; i < real_out.size(); ++i) {
    EXPECT_NEAR(cplx_out[i].real(), real_out[i], 1e-12);
    EXPECT_NEAR(cplx_out[i].imag(), 0.0, 1e-12);
  }
}

TEST(Iir, InvalidOrderThrows) {
  EXPECT_THROW((void)butterworth_lowpass(0, 1000.0, 48000.0),
               std::invalid_argument);
  EXPECT_THROW((void)butterworth_lowpass(13, 1000.0, 48000.0),
               std::invalid_argument);
  EXPECT_THROW((void)butterworth_lowpass(4, 30000.0, 48000.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pab::dsp
