file(REMOVE_RECURSE
  "CMakeFiles/marine_tag_fdma.dir/marine_tag_fdma.cpp.o"
  "CMakeFiles/marine_tag_fdma.dir/marine_tag_fdma.cpp.o.d"
  "marine_tag_fdma"
  "marine_tag_fdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marine_tag_fdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
