// BatchExecutor: the in-process campaign executor.
//
// Runs the compiled shard queue serially in shard-index order (parallelism
// lives inside each shard, via the BatchRunner width in
// RunOptions::worker_threads), checkpointing each finished shard when a
// checkpoint directory is configured.  This is both the reference
// implementation the multi-process executor is asserted against and the
// sensible default for campaigns that fit one machine.
#pragma once

#include "campaign/executor.hpp"

namespace pab::campaign {

class BatchExecutor : public Executor {
 public:
  [[nodiscard]] pab::Expected<CampaignResult> run(
      const CampaignSpec& spec, const RunOptions& options) override;
};

}  // namespace pab::campaign
