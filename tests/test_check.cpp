// The invariant-audit harness, tested from both sides:
//
//  * against the real implementations every invariant must stay green over a
//    seeded multi-trial sweep (the audit's steady state), and
//  * against "mutant" subjects reproducing each historical bug this PR fixed,
//    at least one invariant must report a violation with a reproducing seed --
//    proof the harness detects the bug class, not just that the code currently
//    passes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "check/audit.hpp"
#include "check/generators.hpp"
#include "check/invariants.hpp"
#include "mac/inventory.hpp"
#include "mac/rate_control.hpp"
#include "mac/scheduler.hpp"

namespace pab::check {
namespace {

// Run `checker` over seeds 0..max_seeds until a violation appears, returning
// the failing seed (or nullopt).  Mutants are caught probabilistically --
// their trigger input pattern has to come up -- so the smoke-tests assert a
// catch within a bounded seed budget.
template <typename Checker>
std::optional<std::uint64_t> first_violation(const Checker& checker,
                                             std::uint64_t max_seeds) {
  for (std::uint64_t s = 0; s < max_seeds; ++s)
    if (!checker(s).ok) return s;
  return std::nullopt;
}

// --- steady state: the real code passes every invariant ----------------------

TEST(Audit, AllInvariantsGreenOnRealImplementations) {
  AuditConfig cfg;
  cfg.base_seed = 97;
  cfg.trials = 25;
  const auto report = run_audit(cfg);
  EXPECT_EQ(report.outcomes.size(), default_invariants().size());
  for (const auto& o : report.outcomes) {
    EXPECT_TRUE(o.ok()) << o.name << " violated: seed " << o.first_failing_seed
                        << ": " << o.first_detail;
    EXPECT_EQ(o.trials, cfg.trials) << o.name;
  }
  EXPECT_TRUE(report.ok());
}

TEST(Audit, TrialSeedsAreReproducibleAndOrderIndependent) {
  // The reported seed alone must reproduce a violation: same (base, name,
  // trial) -> same seed, distinct names/trials -> distinct streams.
  EXPECT_EQ(trial_seed(1234, "mac.inventory", 7),
            trial_seed(1234, "mac.inventory", 7));
  EXPECT_NE(trial_seed(1234, "mac.inventory", 7),
            trial_seed(1234, "mac.inventory", 8));
  EXPECT_NE(trial_seed(1234, "mac.inventory", 7),
            trial_seed(1234, "energy.ledger", 7));
  EXPECT_NE(trial_seed(1234, "mac.inventory", 7),
            trial_seed(1235, "mac.inventory", 7));
}

TEST(Audit, FilterSelectsBySubstringAndExportsMetrics) {
  AuditConfig cfg;
  cfg.base_seed = 7;
  cfg.trials = 3;
  cfg.only = "energy.";
  obs::MetricRegistry registry;
  const auto report = run_audit(cfg, &registry);
  ASSERT_EQ(report.outcomes.size(), 2u);  // ledger + planner_recharge
  EXPECT_EQ(registry.counter("check.audit.energy.ledger.trials").value(), 3u);
  EXPECT_EQ(registry.counter("check.audit.energy.ledger.violations").value(),
            0u);
  EXPECT_EQ(registry.gauge("check.audit.invariants").value(), 2.0);
  EXPECT_EQ(registry.gauge("check.audit.violations_total").value(), 0.0);
}

TEST(Audit, ThrowingCheckerCountsAsViolation) {
  std::vector<Invariant> suite{
      {"always.throws", "exceptions are violations, not crashes",
       [](std::uint64_t) -> CheckResult { throw std::runtime_error("boom"); }}};
  AuditConfig cfg;
  cfg.trials = 2;
  obs::MetricRegistry registry;
  const auto report = run_audit(cfg, suite, &registry);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].violations, 2u);
  EXPECT_NE(report.outcomes[0].first_detail.find("boom"), std::string::npos);
  EXPECT_EQ(registry.gauge("check.audit.violations_total").value(), 2.0);
}

// --- mutation smoke-tests ----------------------------------------------------
// Each mutant reproduces one historical bug fixed in this PR.  The paired
// invariant must catch it within a bounded seed budget; the real subject must
// stay green over the same budget (no false positives from the same inputs).

// Satellite 1: channel::sample_at truncated the final sample -- positions in
// [size-1, size) returned zero instead of interpolating toward zero-padding.
TEST(Mutation, TailTruncatingSampleAtIsCaught) {
  const SampleFn mutant = [](std::span<const dsp::cplx> x, double pos) {
    if (pos < 0.0) return dsp::cplx{};
    const auto i = static_cast<std::size_t>(pos);
    if (i + 1 >= x.size()) return dsp::cplx{};  // the historical off-by-one
    const double frac = pos - static_cast<double>(i);
    return x[i] * (1.0 - frac) + x[i + 1] * frac;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_sample_interpolation(s, mutant); },
      16);
  ASSERT_TRUE(caught.has_value())
      << "tail-truncating sample_at survived the audit";
  EXPECT_FALSE(check_sample_interpolation(*caught, mutant).ok);
  EXPECT_TRUE(check_sample_interpolation(*caught).ok)
      << "real sample_at flagged on the mutant's reproducing seed";
}

// Satellite 2: RateController advanced the upshift streak on CRC-failed
// observations whenever downshift_on_crc_failure was false.
TEST(Mutation, CrcRewardingRateControllerIsCaught) {
  const RateTraceFn mutant = [](const mac::RateControlConfig& cfg,
                                std::span<const RateObservation> obs) {
    std::size_t index = std::min<std::size_t>(2, cfg.rate_table.size() - 1);
    int good = 0;
    int bad = 0;
    std::vector<RateStep> trace;
    for (const auto& o : obs) {
      const double headroom = o.snr_db - cfg.decode_floor_db;
      const std::size_t before = index;
      if ((!o.crc_ok && cfg.downshift_on_crc_failure) ||
          headroom < cfg.down_margin_db) {
        good = 0;
        if (++bad >= cfg.down_streak && index > 0) {
          --index;
          bad = 0;
        }
      } else {
        bad = 0;
        // The historical bug: headroom alone extends the streak, CRC ignored.
        if (headroom >= cfg.up_margin_db) {
          if (++good >= cfg.up_streak && index + 1 < cfg.rate_table.size()) {
            ++index;
            good = 0;
          }
        } else {
          good = 0;
        }
      }
      trace.push_back({index, index != before});
    }
    return trace;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_rate_control(s, mutant); }, 64);
  ASSERT_TRUE(caught.has_value())
      << "CRC-rewarding rate controller survived the audit";
  const auto detail = check_rate_control(*caught, mutant).detail;
  EXPECT_NE(detail.find("upshift"), std::string::npos) << detail;
  EXPECT_TRUE(check_rate_control(*caught).ok)
      << "real rate controller flagged on the mutant's reproducing seed";
}

// Satellite 3: EnergyPlanner::recharge_time_s returned the -1.0 sentinel for
// non-positive harvest instead of an error.
TEST(Mutation, SentinelRechargeTimeIsCaught) {
  const RechargeFn mutant = [](const energy::EnergyPlanner& planner,
                               double harvest_w,
                               const energy::TransactionCost& cost) {
    return pab::Expected<double>(
        harvest_w <= 0.0 ? -1.0
                         : planner.transaction_energy_j(cost) / harvest_w);
  };
  // Every trial probes harvest <= 0, so the very first seed catches it.
  const auto r = check_planner_recharge(0, mutant);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("harvest <= 0"), std::string::npos) << r.detail;
  EXPECT_TRUE(check_planner_recharge(0).ok);
}

// The scheduler airtime law this harness guards (fixed in an earlier PR):
// charging the uplink slot on silent attempts skews elapsed_s.
TEST(Mutation, UplinkChargedOnSilenceIsCaught) {
  const SchedulerRunFn mutant = [](const mac::SchedulerConfig& cfg,
                                   std::span<const LinkOutcome> script,
                                   std::size_t uplink_bits,
                                   double uplink_bitrate) {
    mac::TransactionStats stats;
    const double uplink_time =
        static_cast<double>(uplink_bits) / uplink_bitrate;
    std::size_t cursor = 0;
    while (cursor < script.size()) {
      for (int attempt = 0; attempt <= cfg.max_retries; ++attempt) {
        const LinkOutcome o =
            cursor < script.size() ? script[cursor++] : LinkOutcome::kSilent;
        ++stats.attempts;
        if (attempt > 0) ++stats.retries;
        // The bug: every attempt pays the uplink slot, reply or not.
        stats.elapsed_s +=
            cfg.downlink_time_s + cfg.turnaround_s + uplink_time;
        if (o == LinkOutcome::kDecoded) {
          ++stats.successes;
          stats.payload_bits_delivered += 16.0;
          break;
        }
        o == LinkOutcome::kCrcFailure ? ++stats.crc_failures
                                      : ++stats.no_response;
      }
    }
    return stats;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_scheduler_airtime(s, mutant); }, 16);
  ASSERT_TRUE(caught.has_value())
      << "uplink-charged-on-silence scheduler survived the audit";
  EXPECT_TRUE(check_scheduler_airtime(*caught).ok)
      << "real scheduler flagged on the mutant's reproducing seed";
}

// Satellite 4's failure mode: a botched pending-list compaction that loses a
// node.  Modelled by dropping one pending entry before the inventory runs.
TEST(Mutation, NodeDroppingInventoryIsCaught) {
  const InventoryFn mutant = [](std::span<const std::uint8_t> population,
                                const mac::InventoryConfig& cfg,
                                mac::InventoryStats* stats) {
    const auto truncated =
        population.size() > 1 ? population.first(population.size() - 1)
                              : population;
    return mac::run_inventory(truncated, cfg, stats);
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_inventory_conservation(s, mutant); },
      32);
  ASSERT_TRUE(caught.has_value()) << "node-dropping inventory survived";
  const auto detail = check_inventory_conservation(*caught, mutant).detail;
  EXPECT_NE(detail.find("lost nodes"), std::string::npos) << detail;
  EXPECT_TRUE(check_inventory_conservation(*caught).ok)
      << "real inventory flagged on the mutant's reproducing seed";
}

// The ledger conservation law: folding harvested energy into total_consumed
// double-counts it and skews every energy-per-bit figure.
TEST(Mutation, HarvestLeakingLedgerTotalIsCaught) {
  const LedgerTotalFn mutant =
      [](std::span<const std::pair<energy::Category, double>> entries) {
        double sum = 0.0;
        for (const auto& [c, joules] : entries) sum += joules;  // all of them
        return sum;
      };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_ledger_conservation(s, mutant); },
      16);
  ASSERT_TRUE(caught.has_value()) << "harvest-leaking ledger total survived";
  EXPECT_TRUE(check_ledger_conservation(*caught).ok)
      << "real ledger flagged on the mutant's reproducing seed";
}

// The classic unstable-scheduler bug: a priority queue keyed on time alone
// pops equal-time events in heap order, not creation order.  Modelled by
// reversing every run of equal-time scheduled entries in an otherwise-real
// timeline run.  The determinism the whole sim layer leans on (bit-identical
// event logs at any thread count) dies with this bug.
TEST(Mutation, UnstableTieBreakTimelineIsCaught) {
  const TimelineRunFn real = real_timeline_run();
  const TimelineRunFn mutant = [&real](std::span<const TimelineOp> ops) {
    TimelineProbe probe = real(ops);
    auto& log = probe.log;
    std::size_t i = 0;
    while (i < log.size()) {
      std::size_t j = i;
      while (j + 1 < log.size() && log[j + 1].time == log[i].time &&
             log[j + 1].kind == sim::TimelineEventKind::kScheduled &&
             log[i].kind == sim::TimelineEventKind::kScheduled)
        ++j;
      std::reverse(log.begin() + static_cast<std::ptrdiff_t>(i),
                   log.begin() + static_cast<std::ptrdiff_t>(j) + 1);
      i = j + 1;
    }
    return probe;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_timeline_monotonic(s, mutant); }, 16);
  ASSERT_TRUE(caught.has_value()) << "unstable tie-break timeline survived";
  EXPECT_TRUE(check_timeline_monotonic(*caught).ok)
      << "real timeline flagged on the mutant's reproducing seed";
}

// The bug satellite 2 fixed, in event-log form: retry backoff bumped a
// counter but never charged the clock, so live elapsed_s ran ahead of what
// the event log could account for.  Modelled by subtracting the backoff
// airtime from the real probe's stats.
TEST(Mutation, BackoffDroppingSchedulerIsCaught) {
  const TimedSchedulerRunFn real = real_timed_scheduler_run();
  const TimedSchedulerRunFn mutant =
      [&real](const mac::SchedulerConfig& cfg, std::span<const LinkOutcome> script,
              std::span<const std::pair<energy::Category, double>> charges,
              std::size_t uplink_bits, double uplink_bitrate) {
        TimedRunProbe probe =
            real(cfg, script, charges, uplink_bits, uplink_bitrate);
        probe.stats.elapsed_s -= static_cast<double>(probe.stats.retries) *
                                 cfg.retry_backoff_s;
        return probe;
      };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_timeline_reconstruction(s, mutant); },
      32);
  ASSERT_TRUE(caught.has_value()) << "backoff-dropping scheduler survived";
  const auto detail = check_timeline_reconstruction(*caught, mutant).detail;
  EXPECT_NE(detail.find("elapsed"), std::string::npos) << detail;
  EXPECT_TRUE(check_timeline_reconstruction(*caught).ok)
      << "real timed scheduler flagged on the mutant's reproducing seed";
}

// The classic spatial-hashing bug: scanning one neighbor cell too few makes
// the cull drop pairs that straddle a cell boundary -- modelled by culling at
// a slightly shrunken radius.  Links near the gain floor silently vanish
// from the interference census and the zone adjacency built on it.
TEST(Mutation, BoundaryDroppingSpatialCullIsCaught) {
  const CullFn mutant = [](const channel::SpatialIndex& index, double radius_m,
                           channel::CullStats* stats) {
    return channel::cull_pairs(index, radius_m * 0.9, stats);
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_spatial_cull(s, mutant); }, 16);
  ASSERT_TRUE(caught.has_value()) << "boundary-dropping spatial cull survived";
  const auto detail = check_spatial_cull(*caught, mutant).detail;
  EXPECT_NE(detail.find("brute-force"), std::string::npos) << detail;
  EXPECT_TRUE(check_spatial_cull(*caught).ok)
      << "real spatial cull flagged on the mutant's reproducing seed";
}

// The historical field-inventory bug this PR fixes: concurrently inventoried
// zones were treated as perfectly silent to each other.  A subject that
// quietly drops the interference model (runs the isolated-zone schedule no
// matter what the checker asks for) must be caught -- the never-capture
// phase still identifies nodes a corrupted inventory could not have.
TEST(Mutation, SilentConcurrentZonesAreCaught) {
  const ZonedRunFn real = real_zoned_inventory();
  const ZonedRunFn mutant = [&real](const ZonedScenario& s,
                                    const mac::ZoneInterferenceModel&) {
    return real(s, mac::ZoneInterferenceModel{});
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_zone_interference(s, mutant); }, 16);
  ASSERT_TRUE(caught.has_value()) << "interference-ignoring inventory survived";
  EXPECT_TRUE(check_zone_interference(*caught).ok)
      << "real zoned inventory flagged on the mutant's reproducing seed";
}

// Ledger-conservation bug: a slot demoted by the SINR test must be booked as
// a collision, or singletons + collisions + empties stops adding up to slots.
TEST(Mutation, CorruptedSlotsDroppedFromCollisionsAreCaught) {
  const ZonedRunFn real = real_zoned_inventory();
  const ZonedRunFn mutant = [&real](const ZonedScenario& s,
                                    const mac::ZoneInterferenceModel& model) {
    ZonedRunProbe probe = real(s, model);
    probe.result.inventory.collisions -= probe.result.corrupted_slots;
    return probe;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_zone_interference(s, mutant); }, 32);
  ASSERT_TRUE(caught.has_value()) << "collision-dropping corruption survived";
  const auto detail = check_zone_interference(*caught, mutant).detail;
  EXPECT_NE(detail.find("slots"), std::string::npos) << detail;
  EXPECT_TRUE(check_zone_interference(*caught).ok)
      << "real zoned inventory flagged on the mutant's reproducing seed";
}

// Verdict-accounting bug: zeroing the corruption tally while the collisions
// it caused remain breaks the one-verdict-per-singleton identity.
TEST(Mutation, UncountedSinrVerdictsAreCaught) {
  const ZonedRunFn real = real_zoned_inventory();
  const ZonedRunFn mutant = [&real](const ZonedScenario& s,
                                    const mac::ZoneInterferenceModel& model) {
    ZonedRunProbe probe = real(s, model);
    probe.result.corrupted_slots = 0;
    return probe;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_zone_interference(s, mutant); }, 32);
  ASSERT_TRUE(caught.has_value()) << "verdict-zeroing inventory survived";
  EXPECT_TRUE(check_zone_interference(*caught).ok)
      << "real zoned inventory flagged on the mutant's reproducing seed";
}

// The historical zoned-timeline booking bug: one label carried the *sum* of
// concurrent zone durations while the clock advanced by the round maximum.
// A subject reporting the conflated figure (busy_s == wall) must be caught
// by the event-log reconstruction.
TEST(Mutation, BusyWallConflationInZonedBookingIsCaught) {
  const ZonedRunFn real = real_zoned_inventory();
  const ZonedRunFn mutant = [&real](const ZonedScenario& s,
                                    const mac::ZoneInterferenceModel& model) {
    ZonedRunProbe probe = real(s, model);
    probe.result.busy_s = probe.result.simulated_s;
    return probe;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) {
        return check_timeline_reconstruction(s, real_timed_scheduler_run(),
                                             mutant);
      },
      32);
  ASSERT_TRUE(caught.has_value()) << "busy/wall conflation survived";
  const auto detail =
      check_timeline_reconstruction(*caught, real_timed_scheduler_run(), mutant)
          .detail;
  EXPECT_NE(detail.find("busy"), std::string::npos) << detail;
  EXPECT_TRUE(check_timeline_reconstruction(*caught).ok)
      << "real zoned inventory flagged on the mutant's reproducing seed";
}

// The inverse conflation: a clock that advances by the busy sum (serialized
// zones) instead of the round wall no longer lands on simulated_s.
TEST(Mutation, ClockAdvancedByBusySumIsCaught) {
  const ZonedRunFn real = real_zoned_inventory();
  const ZonedRunFn mutant = [&real](const ZonedScenario& s,
                                    const mac::ZoneInterferenceModel& model) {
    ZonedRunProbe probe = real(s, model);
    probe.now = probe.result.busy_s;
    return probe;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) {
        return check_timeline_reconstruction(s, real_timed_scheduler_run(),
                                             mutant);
      },
      32);
  ASSERT_TRUE(caught.has_value()) << "busy-sum clock survived";
  EXPECT_TRUE(check_timeline_reconstruction(*caught).ok)
      << "real zoned inventory flagged on the mutant's reproducing seed";
}

// The historical field-census bug: the brute-force reference accumulated
// every pair's gain while the culled path summed only within-radius pairs --
// modelled here by a cull whose pair list leaks the sub-radius tail.
TEST(Mutation, AllPairsGainAccumulationIsCaught) {
  const CullFn mutant = [](const channel::SpatialIndex& index, double radius_m,
                           channel::CullStats* stats) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;  // every pair
    const auto n = static_cast<std::uint32_t>(index.size());
    for (std::uint32_t i = 0; i < n; ++i)
      for (std::uint32_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
    channel::CullStats honest;
    (void)channel::cull_pairs(index, radius_m, &honest);
    if (stats != nullptr) *stats = honest;  // counters lie about the set
    return pairs;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_spatial_cull(s, mutant); }, 16);
  ASSERT_TRUE(caught.has_value()) << "all-pairs gain accumulation survived";
  EXPECT_TRUE(check_spatial_cull(*caught).ok)
      << "real spatial cull flagged on the mutant's reproducing seed";
}

// Deterministic-order bug: a cull that enumerates pairs in grid-cell order
// instead of ascending (i, j) still keeps the right set, but downstream
// consumers (shared tap walks, campaign records) stop being platform-stable.
TEST(Mutation, OrderScramblingSpatialCullIsCaught) {
  const CullFn mutant = [](const channel::SpatialIndex& index, double radius_m,
                           channel::CullStats* stats) {
    auto pairs = channel::cull_pairs(index, radius_m, stats);
    std::reverse(pairs.begin(), pairs.end());
    return pairs;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_spatial_cull(s, mutant); }, 16);
  ASSERT_TRUE(caught.has_value()) << "order-scrambling spatial cull survived";
  EXPECT_TRUE(check_spatial_cull(*caught).ok)
      << "real spatial cull flagged on the mutant's reproducing seed";
}

// phy.link_quality mutants: each wraps the real demodulator and corrupts the
// published LinkQuality the way a plausible implementation bug would.

// A decode path that never fills the quality field (stale default zeros).
TEST(Mutation, UnfilledLinkQualityIsCaught) {
  const LinkQualityFn real = real_link_quality();
  const LinkQualityFn mutant =
      [&](std::span<const double> env, double fs, std::size_t n_bits,
          const phy::DemodConfig& cfg) -> pab::Expected<phy::DemodResult> {
    auto r = real(env, fs, n_bits, cfg);
    if (r.ok()) r.value().quality = phy::LinkQuality{};
    return r;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_link_quality(s, mutant); }, 8);
  ASSERT_TRUE(caught.has_value()) << "zeroed link quality survived the audit";
  EXPECT_TRUE(check_link_quality(*caught).ok)
      << "real demodulator flagged on the mutant's reproducing seed";
}

// CN0 referred to the bit rate instead of the FM0 chip rate (2R): the classic
// wrong-bandwidth bookkeeping bug.
TEST(Mutation, WrongBandwidthCn0IsCaught) {
  const LinkQualityFn real = real_link_quality();
  const LinkQualityFn mutant =
      [&](std::span<const double> env, double fs, std::size_t n_bits,
          const phy::DemodConfig& cfg) -> pab::Expected<phy::DemodResult> {
    auto r = real(env, fs, n_bits, cfg);
    if (r.ok())
      r.value().quality.cn0_dbhz =
          r.value().quality.mer_db + 10.0 * std::log10(cfg.bitrate);
    return r;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_link_quality(s, mutant); }, 8);
  ASSERT_TRUE(caught.has_value()) << "wrong-bandwidth CN0 survived the audit";
  EXPECT_TRUE(check_link_quality(*caught).ok);
}

// An unclamped MER: a clean burst's near-zero error ratio blows past the
// +-60 dB clamp (or straight to infinity).
TEST(Mutation, UnclampedMerIsCaught) {
  const LinkQualityFn real = real_link_quality();
  const LinkQualityFn mutant =
      [&](std::span<const double> env, double fs, std::size_t n_bits,
          const phy::DemodConfig& cfg) -> pab::Expected<phy::DemodResult> {
    auto r = real(env, fs, n_bits, cfg);
    if (r.ok()) {
      auto& q = r.value().quality;
      const double ratio = q.evm_rms * q.evm_rms;
      q.mer_db = -10.0 * std::log10(ratio);  // no clamp, inf at ratio 0
      q.cn0_dbhz = q.mer_db + 10.0 * std::log10(2.0 * cfg.bitrate);
    }
    return r;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_link_quality(s, mutant); }, 8);
  ASSERT_TRUE(caught.has_value()) << "unclamped MER survived the audit";
  EXPECT_TRUE(check_link_quality(*caught).ok);
}

// EVM reported as the error *power* ratio instead of its square root.
TEST(Mutation, SquaredEvmIsCaught) {
  const LinkQualityFn real = real_link_quality();
  const LinkQualityFn mutant =
      [&](std::span<const double> env, double fs, std::size_t n_bits,
          const phy::DemodConfig& cfg) -> pab::Expected<phy::DemodResult> {
    auto r = real(env, fs, n_bits, cfg);
    if (r.ok())
      r.value().quality.evm_rms =
          r.value().quality.evm_rms * r.value().quality.evm_rms;
    return r;
  };
  const auto caught = first_violation(
      [&](std::uint64_t s) { return check_link_quality(s, mutant); }, 8);
  ASSERT_TRUE(caught.has_value()) << "squared EVM survived the audit";
  EXPECT_TRUE(check_link_quality(*caught).ok);
}

}  // namespace
}  // namespace pab::check
