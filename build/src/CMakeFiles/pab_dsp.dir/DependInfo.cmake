
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/correlate.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/correlate.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/correlate.cpp.o.d"
  "/root/repo/src/dsp/envelope.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/envelope.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/envelope.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/fir.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/fir.cpp.o.d"
  "/root/repo/src/dsp/goertzel.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/goertzel.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/goertzel.cpp.o.d"
  "/root/repo/src/dsp/iir.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/iir.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/iir.cpp.o.d"
  "/root/repo/src/dsp/mixer.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/mixer.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/mixer.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/resample.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/resample.cpp.o.d"
  "/root/repo/src/dsp/spectrogram.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/spectrogram.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/spectrogram.cpp.o.d"
  "/root/repo/src/dsp/wav.cpp" "src/CMakeFiles/pab_dsp.dir/dsp/wav.cpp.o" "gcc" "src/CMakeFiles/pab_dsp.dir/dsp/wav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
