#include "sim/session.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "channel/spatial.hpp"
#include "channel/timevarying.hpp"
#include "mac/zones.hpp"
#include "node/lifecycle.hpp"
#include "phy/metrics.hpp"
#include "phy/scheme.hpp"

namespace pab::sim {

std::uint64_t substream_seed(std::uint64_t base_seed, std::uint64_t stream) {
  // The std::seed_seq::generate algorithm ([rand.util.seedseq]) specialized
  // to four 32-bit input words and two output words.  seed_seq itself keeps a
  // heap-allocated copy of the inputs, which would put one malloc/free pair
  // in every trial; this open-coded version is allocation-free and verified
  // bit-equal against std::seed_seq in the test suite.
  const std::uint32_t v[4] = {static_cast<std::uint32_t>(base_seed),
                              static_cast<std::uint32_t>(base_seed >> 32),
                              static_cast<std::uint32_t>(stream),
                              static_cast<std::uint32_t>(stream >> 32)};
  constexpr std::size_t n = 2;                        // output words
  constexpr std::size_t s = 4;                        // input words
  constexpr std::size_t t = (n - 1) / 2;              // 0
  constexpr std::size_t p = (n - t) / 2;              // 1
  constexpr std::size_t q = p + t;                    // 1
  constexpr std::size_t m = (s + 1 > n) ? s + 1 : n;  // 5
  const auto tmix = [](std::uint32_t x) { return x ^ (x >> 27); };
  std::uint32_t b[n] = {0x8b8b8b8bu, 0x8b8b8b8bu};
  for (std::size_t k = 0; k < m; ++k) {
    const std::uint32_t r1 =
        1664525u * tmix(b[k % n] ^ b[(k + p) % n] ^ b[(k + n - 1) % n]);
    std::uint32_t r2 = r1;
    if (k == 0)
      r2 += static_cast<std::uint32_t>(s);
    else if (k <= s)
      r2 += static_cast<std::uint32_t>(k % n) + v[k - 1];
    else
      r2 += static_cast<std::uint32_t>(k % n);
    b[(k + p) % n] += r1;
    b[(k + q) % n] += r2;
    b[k % n] = r2;
  }
  for (std::size_t k = m; k < m + n; ++k) {
    const std::uint32_t r3 =
        1566083941u * tmix(b[k % n] + b[(k + p) % n] + b[(k + n - 1) % n]);
    const std::uint32_t r4 = r3 - static_cast<std::uint32_t>(k % n);
    b[(k + p) % n] ^= r3;
    b[(k + q) % n] ^= r4;
    b[k % n] = r4;
  }
  return (static_cast<std::uint64_t>(b[1]) << 32) | b[0];
}

Session::Session(Scenario scenario, obs::MetricRegistry* metrics)
    : scenario_(std::move(scenario)),
      metrics_(metrics),
      tap_cache_(std::make_shared<channel::TapCache>(
          scenario_.medium.tank, scenario_.medium.max_image_order,
          scenario_.medium.use_image_method, metrics)),
      projector_(scenario_.make_projector()),
      link_(scenario_.medium, scenario_.placement(), tap_cache_) {
  require(metrics_ != nullptr, "Session: metrics registry must not be null");
  link_.set_metrics(metrics_);
  n_trials_ = &metrics_->counter("sim.session.trials");
  n_decode_failures_ = &metrics_->counter("sim.session.decode_failures");
  n_mod_hits_ = &metrics_->counter("sim.session.modulation_cache_hits");
  n_mod_misses_ = &metrics_->counter("sim.session.modulation_cache_misses");
  t_trial_ = &metrics_->histogram("sim.session.trial_seconds");
  g_arena_capacity_ = &metrics_->gauge("sim.session.arena.capacity_bytes");
  g_arena_high_water_ = &metrics_->gauge("sim.session.arena.high_water_bytes");
  g_arena_blocks_ = &metrics_->gauge("sim.session.arena.heap_blocks");
  front_ends_.reserve(scenario_.node_count());
  for (std::size_t j = 0; j < scenario_.node_count(); ++j)
    front_ends_.push_back(scenario_.make_front_end(j));

  // The network simulator is only constructible when every node position lies
  // inside the tank; otherwise leave it unset and let run_network report it.
  std::vector<channel::Vec3> nodes;
  nodes.reserve(scenario_.node_count());
  bool placeable = true;
  for (std::size_t j = 0; j < scenario_.node_count(); ++j) {
    nodes.push_back(scenario_.node_position(j));
    placeable = placeable && scenario_.medium.tank.contains(nodes.back());
  }
  if (placeable) {
    network_.emplace(scenario_.medium, scenario_.reader.projector,
                     scenario_.reader.hydrophone, std::move(nodes),
                     tap_cache_);
  }
}

const core::ModulationStates& Session::modulation(std::size_t j,
                                                  double carrier_hz,
                                                  double bitrate) const {
  const ModKey key{j, carrier_hz, bitrate};
  {
    std::shared_lock lock(modulation_mutex_);
    const auto it = modulation_cache_.find(key);
    if (it != modulation_cache_.end()) {
      n_mod_hits_->add();
      return it->second;
    }
  }
  n_mod_misses_->add();
  // Evaluate outside the lock (circuit-model walk); losing a concurrent race
  // is benign, both compute identical values and the first insert wins.
  const core::ModulationStates states =
      core::modulation_states(front_ends_.at(j), carrier_hz, bitrate);
  std::unique_lock lock(modulation_mutex_);
  const auto [it, inserted] = modulation_cache_.emplace(key, states);
  if (inserted) modulation_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

pab::Expected<bool> Session::run_into(std::uint64_t trial,
                                      UplinkTrial& out) const {
  if (front_ends_.empty())
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "scenario has no front ends"};
  const obs::ScopedTimer timer(t_trial_);
  n_trials_->add();
  const Waveform& w = scenario_.waveform;
  pab::Rng rng = trial_rng(trial);
  out.sent.resize(w.payload_bits);  // reuses capacity in steady state
  rng.bits_into(out.sent);
  // Modulation-response cache key: the scheme's FM0-equivalent switching
  // rate (identity for kFm0, so default-scheme keys are unchanged).
  const core::ModulationStates& states = modulation(
      0, w.carrier_hz,
      phy::scheme_descriptor(w.scheme).effective_bitrate(w.bitrate));
  const auto ctx = trial_contexts_.lease();
  const auto ok = link_.run_and_decode_into(projector_, states, out.sent, w,
                                            rng, ctx->workspace, ctx->decoded);
  {
    // Arena footprint of this trial's workspace; last write wins, and in
    // steady state every pooled workspace reports the same numbers.
    const dsp::Arena& arena = ctx->workspace.arena();
    g_arena_capacity_->set(static_cast<double>(arena.capacity_bytes()));
    g_arena_high_water_->set(static_cast<double>(arena.high_water_bytes()));
    g_arena_blocks_->set(static_cast<double>(arena.block_allocations()));
  }
  if (!ok.ok()) {
    n_decode_failures_->add();
    return ok.error();
  }

  out.incident_pressure_pa = ctx->decoded.run.incident_pressure_pa;
  out.modulation_pressure_pa = ctx->decoded.run.modulation_pressure_pa;
  std::swap(out.demod, ctx->decoded.demod);
  out.ber = phy::bit_error_rate(out.sent, out.demod.bits);
  return true;
}

pab::Expected<Session::UplinkTrial> Session::uplink_trial(
    std::uint64_t trial) const {
  UplinkTrial out;
  const auto ok = run_into(trial, out);
  if (!ok.ok()) return ok.error();
  return out;
}

pab::Expected<core::NetworkRunResult> Session::network_trial(
    std::uint64_t trial) const {
  if (!network_.has_value())
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "scenario nodes not placeable inside the tank"};
  if (scenario_.fdma.carriers_hz.size() != node_count())
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "fdma plan must name one carrier per node"};
  if (front_ends_.size() != node_count())
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "scenario must specify one front end per node"};
  pab::Rng rng = trial_rng(trial);
  return network_->run(projector_, front_ends_, scenario_.fdma, rng);
}

pab::Expected<TrialResult> Session::run_trial(TrialKind kind,
                                              std::uint64_t trial,
                                              const TrialOptions& opts) const {
  switch (kind) {
    case TrialKind::kUplink: {
      auto r = uplink_trial(trial);
      if (!r.ok()) return r.error();
      return TrialResult{std::in_place_index<0>, std::move(r).value()};
    }
    case TrialKind::kNetwork: {
      auto r = network_trial(trial);
      if (!r.ok()) return r.error();
      return TrialResult{std::in_place_index<1>, std::move(r).value()};
    }
    case TrialKind::kTimeline: {
      auto r = timeline_trial(trial, opts.timeline);
      if (!r.ok()) return r.error();
      return TrialResult{std::in_place_index<2>, std::move(r).value()};
    }
    case TrialKind::kField: {
      auto r = field_trial(trial, opts.field);
      if (!r.ok()) return r.error();
      return TrialResult{std::in_place_index<3>, std::move(r).value()};
    }
  }
  return pab::Error{pab::ErrorCode::kInvalidArgument,
                    "run_trial: unknown trial kind"};
}

pab::Expected<Session::TimelineRunResult> Session::timeline_trial(
    std::uint64_t trial, const TimelineRoundConfig& config) const {
  if (node_count() > 200)
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "run_timeline: node ids are uint8 (<= 200 nodes)"};
  if (config.decode_prob < 0.0 || config.crc_prob < 0.0 ||
      config.decode_prob + config.crc_prob > 1.0)
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "run_timeline: decode/crc probabilities must form a "
                      "distribution"};

  // All of the trial's randomness, drawn in a fixed order: per-node energy
  // and drift parameters first, then the poll-phase link outcomes as the
  // event loop reaches them.  Nothing here reads wall clocks or shared
  // mutable state, so results are bit-identical at any thread count.
  pab::Rng rng = trial_rng(trial);
  Timeline tl;
  tl.set_logging(config.keep_log);

  const double carrier = scenario_.waveform.carrier_hz;
  const std::size_t n = node_count();

  // Per-node lifecycle: harvest power = per-node nominal, modulated by the
  // squared path-gain ratio along the node's drift trajectory (amplitude
  // gain -> power), sampled at each tick's event timestamp.
  std::vector<std::unique_ptr<node::NodeLifecycle>> lifecycles;
  lifecycles.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double nominal =
        config.base_harvest_w *
        (1.0 + config.harvest_jitter * rng.uniform(-1.0, 1.0));
    channel::MovingPathConfig path;
    path.source = scenario_.reader.projector;
    path.rx_start = scenario_.node_position(j);
    path.rx_velocity = {rng.uniform(-config.max_drift_mps, config.max_drift_mps),
                        rng.uniform(-config.max_drift_mps, config.max_drift_mps),
                        rng.uniform(-config.max_drift_mps, config.max_drift_mps)};
    const double g0 =
        std::max(channel::moving_path_gain_at(path, carrier, 0.0), 1e-12);
    node::LifecycleConfig lc;
    lc.tick_s = config.tick_s;
    lc.idle_load_w = config.idle_load_w;
    lc.v_ceiling = config.v_ceiling;
    lc.harvest_power_w = [nominal, path, carrier, g0](double t) {
      const double g = channel::moving_path_gain_at(path, carrier, t);
      return nominal * (g / g0) * (g / g0);
    };
    auto life = std::make_unique<node::NodeLifecycle>(
        static_cast<std::uint8_t>(j + 1),
        energy::Harvester(circuit::Supercapacitor(config.capacitance_f)),
        std::move(lc));
    life->attach(tl, config.horizon_s);
    lifecycles.push_back(std::move(life));
  }

  std::vector<std::uint8_t> population(n);
  for (std::size_t j = 0; j < n; ++j)
    population[j] = static_cast<std::uint8_t>(j + 1);

  TimelineRunResult out;

  // Discovery: timed slotted ALOHA through the event queue.  Lifecycle ticks
  // interleave with the reply slots, so a node that browns out mid-round
  // misses its slot and is retried in a later frame once recharged.
  mac::TimedInventoryOptions slots = config.slots;
  slots.available = [&lifecycles](std::uint8_t id, double) {
    return lifecycles[id - 1]->powered();
  };
  out.identified =
      mac::run_inventory(population, config.inventory, tl, slots,
                         &out.inventory);

  // Poll phase: one transact per identified node, on the same timeline.  The
  // link outcome is a protocol-level abstraction: a powered node decodes /
  // CRC-fails / stays silent by probability; a browned-out node is always
  // silent.  The availability check happens when the link fires, i.e. after
  // the downlink+turnaround airtime has elapsed -- the node must be powered
  // at reply time, not at poll time.
  mac::PollScheduler scheduler(config.scheduler, nullptr, &tl);
  for (const std::uint8_t id : out.identified) {
    phy::DownlinkQuery query;
    query.address = id;
    const auto link = [&](const phy::DownlinkQuery& q)
        -> pab::Expected<phy::UplinkPacket> {
      const double u = rng.uniform();
      if (!lifecycles[q.address - 1]->powered())
        return pab::Error{pab::ErrorCode::kTimeout, "node browned out"};
      if (u < config.decode_prob) {
        phy::UplinkPacket packet;
        packet.node_id = q.address;
        packet.payload = {q.address, static_cast<std::uint8_t>(trial & 0xff)};
        return packet;
      }
      if (u < config.decode_prob + config.crc_prob)
        return pab::Error{pab::ErrorCode::kCrcMismatch, "bad CRC"};
      return pab::Error{pab::ErrorCode::kNoPreamble, "no reply detected"};
    };
    (void)scheduler.transact(query, link, config.uplink_bits,
                             config.uplink_bitrate);
  }
  out.poll = scheduler.stats();

  for (const auto& life : lifecycles) {
    const auto& ledger = life->harvester().ledger();
    out.harvested_j += ledger.harvested();
    out.consumed_j += ledger.total_consumed();
    out.power_ups += life->power_ups();
    out.brown_outs += life->brown_outs();
  }
  out.simulated_s = tl.now();
  out.events_processed = tl.events_processed();
  if (config.keep_log) out.event_log = tl.log();

  // Shared-registry instrumentation: counters accumulate across trials;
  // gauges are a last-writer snapshot (benign race under parallel batches --
  // all relaxed atomics).
  metrics_->counter("sim.session.timeline.trials").add();
  metrics_->counter("sim.session.timeline.events")
      .add(tl.events_processed());
  tl.export_to(*metrics_, "sim.timeline");
  return out;
}

pab::Expected<FieldRunResult> Session::field_trial(
    std::uint64_t trial, const FieldRoundConfig& config) const {
  const std::size_t n = node_count();
  if (n == 0)
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "field trial: scenario has no nodes"};
  if (config.gain_floor <= 0.0)
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "field trial: gain floor must be positive"};
  if (config.quant_cell_m < 0.0)
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "field trial: quantization cell must be >= 0"};
  if (config.zone_extent_m <= 0.0)
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "field trial: zone extent must be positive"};
  if (config.interference &&
      (config.noise_power < 0.0 || config.rejection_passband_hz < 0.0 ||
       config.rejection_slope_db_per_khz < 0.0 ||
       config.rejection_floor_db < 0.0))
    return pab::Error{pab::ErrorCode::kInvalidArgument,
                      "field trial: interference parameters must be >= 0"};

  const obs::ScopedTimer timer(t_trial_);
  n_trials_->add();

  const double carrier = scenario_.waveform.carrier_hz;
  const auto& positions = scenario_.field.positions();
  const channel::Vec3& extent = scenario_.medium.tank.size;
  const double diagonal =
      std::sqrt(extent.x * extent.x + extent.y * extent.y + extent.z * extent.z);

  FieldRunResult out;
  out.population = n;

  // Per-trial tap cache: exact per-pair keys on the brute-force reference
  // path, quantized shared keys on the culled path -- so the sharing the
  // quantized geometry buys is measured within one trial, not smuggled in
  // from earlier trials.
  const channel::TapCache cache(
      scenario_.medium.tank, scenario_.medium.max_image_order,
      scenario_.medium.use_image_method, metrics_,
      channel::TapQuantization{config.brute_force ? 0.0 : config.quant_cell_m});

  // Reader -> node budget: always O(n).
  double reader_sum = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    reader_sum += channel::coherent_gain(
        *cache.taps(scenario_.reader.projector, positions[j], carrier), carrier);
  out.mean_reader_gain = reader_sum / static_cast<double>(n);

  // Node-node interference budget.  The gain floor is an amplitude-coupling
  // threshold: a pair whose one-way gain estimator falls below it cannot
  // interfere above the backscatter noise floor, and the estimator
  // (path_amplitude_gain) is monotone in distance, so thresholding is exactly
  // a radius cut -- which the spatial index answers without touching the
  // O(n^2) pair space.
  const double radius = std::min(
      channel::cull_radius_m(config.gain_floor, carrier, diagonal), diagonal);
  out.cull_radius_m = radius;
  double pair_sum = 0.0;
  if (config.brute_force) {
    // The reference path still *evaluates* every O(n^2) pair (that is the
    // cost being compared against), but mean_pair_gain accumulates only the
    // within-radius pairs -- the same set, in the same lexicographic order,
    // as the culled path.  Summing all pairs here diluted the parity metric
    // with sub-floor gains the production path deliberately excludes.
    out.total_pairs = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double gain = channel::coherent_gain(
            *cache.taps(positions[i], positions[j], carrier), carrier);
        if (channel::distance(positions[i], positions[j]) <= radius) {
          pair_sum += gain;
          ++kept;
        }
      }
    }
    out.kept_pairs = kept;
    out.culled_pairs = out.total_pairs - kept;
  } else {
    const double cell = std::max(std::min(radius, diagonal), 1.0);
    const channel::SpatialIndex index(positions, cell);
    channel::CullStats stats;
    const auto kept = channel::cull_pairs(index, radius, &stats);
    out.total_pairs = stats.total_pairs;
    out.kept_pairs = stats.kept_pairs;
    out.culled_pairs = stats.culled_pairs;
    for (const auto& [i, j] : kept)
      pair_sum += channel::coherent_gain(
          *cache.taps(positions[i], positions[j], carrier), carrier);
  }
  out.mean_pair_gain = out.kept_pairs > 0
                           ? pair_sum / static_cast<double>(out.kept_pairs)
                           : 0.0;
  metrics_->counter("channel.spatial.culled_pairs").add(out.culled_pairs);
  metrics_->counter("channel.spatial.kept_pairs").add(out.kept_pairs);

  // Zone partition: horizontal grid of zone_extent_m cells, ids in sorted
  // cell order (deterministic).  Interference adjacency: two zones interfere
  // when the gap between their bounding boxes is within the cull radius --
  // then and only then can a node of one couple into the other's inventory.
  std::map<std::array<std::int64_t, 2>, std::vector<std::uint32_t>> grid;
  for (std::size_t j = 0; j < n; ++j) {
    const std::array<std::int64_t, 2> key{
        static_cast<std::int64_t>(std::floor(positions[j].x / config.zone_extent_m)),
        static_cast<std::int64_t>(std::floor(positions[j].y / config.zone_extent_m))};
    grid[key].push_back(static_cast<std::uint32_t>(j));
  }
  mac::ZoneLayout layout;
  std::vector<std::array<std::int64_t, 2>> zone_coords;
  layout.members.reserve(grid.size());
  zone_coords.reserve(grid.size());
  for (auto& [coord, members] : grid) {
    zone_coords.push_back(coord);
    layout.members.push_back(std::move(members));
  }
  layout.adjacency.resize(layout.members.size());
  for (std::size_t a = 0; a < zone_coords.size(); ++a) {
    for (std::size_t b = a + 1; b < zone_coords.size(); ++b) {
      const auto gap = [&](std::int64_t da) {
        const double cells_apart =
            static_cast<double>(std::max<std::int64_t>(std::llabs(da) - 1, 0));
        return cells_apart * config.zone_extent_m;
      };
      const double gx = gap(zone_coords[a][0] - zone_coords[b][0]);
      const double gy = gap(zone_coords[a][1] - zone_coords[b][1]);
      if (std::sqrt(gx * gx + gy * gy) <= radius) {
        layout.adjacency[a].push_back(static_cast<std::uint32_t>(b));
        layout.adjacency[b].push_back(static_cast<std::uint32_t>(a));
      }
    }
  }

  const mac::ZoneSchedule schedule = mac::plan_zones(layout);
  out.zones = layout.members.size();
  out.zone_colors = schedule.colors;
  out.zone_rounds = schedule.rounds;
  out.channels = schedule.plan.channels();

  // The zoned inventory round on a trial-local master timeline.  All
  // randomness is the inventory's frame nonces, which derive from the
  // trial's substream seed (and, inside, each zone's id): bit-identical at
  // any thread count.
  Timeline tl;
  tl.set_logging(config.keep_log);
  mac::InventoryConfig inventory;
  inventory.seed = substream_seed(scenario_.medium.seed, trial);
  mac::ZonedInventoryOptions slots;
  slots.frame_announce_s = config.frame_announce_s;
  slots.slot_s = config.slot_s;
  // Cross-zone SINR coupling: mac stays below channel, so the geometry is
  // folded into plain per-node data here -- each node's reader-path
  // backscatter amplitude (projector -> node gain times node -> hydrophone
  // gain, both at the node's zone carrier, through the same per-trial tap
  // cache as the census above).  The model (and its extra tap evaluations)
  // is gated off by default, leaving the silent-zone schedule bit-identical.
  std::vector<double> node_amplitude;
  if (config.interference) {
    std::vector<std::uint32_t> zone_of(n, 0);
    for (std::size_t z = 0; z < layout.members.size(); ++z)
      for (const std::uint32_t g : layout.members[z])
        zone_of[g] = static_cast<std::uint32_t>(z);
    node_amplitude.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double f = schedule.zones[zone_of[j]].carrier_hz;
      const double down = channel::coherent_gain(
          *cache.taps(scenario_.reader.projector, positions[j], f), f);
      const double up = channel::coherent_gain(
          *cache.taps(positions[j], scenario_.reader.hydrophone, f), f);
      node_amplitude[j] = down * up;
    }
    slots.interference.enabled = true;
    slots.interference.noise_power = config.noise_power;
    slots.interference.capture_threshold_db = config.capture_threshold_db;
    slots.interference.mask.passband_hz = config.rejection_passband_hz;
    slots.interference.mask.slope_db_per_khz = config.rejection_slope_db_per_khz;
    slots.interference.mask.floor_db = config.rejection_floor_db;
    slots.interference.node_amplitude = node_amplitude;
  }
  const mac::ZonedInventoryResult round =
      mac::run_zoned_inventory(layout, schedule, inventory, tl, slots);
  out.identified = round.identified;
  out.inventory = round.inventory;
  out.interference_corrupted_slots = round.corrupted_slots;
  out.mean_slot_sinr_db = round.mean_slot_sinr_db;
  if (slots.interference.enabled) {
    // Model-level link quality: the mean slot SINR read through the same
    // EVM/MER/CN0 mapping the waveform receiver uses, in the scheme's
    // occupied bandwidth at the scenario bitrate.
    const phy::SchemeDescriptor& sd = phy::scheme_descriptor(scenario_.waveform.scheme);
    out.slot_quality = phy::link_quality_from_snr(
        out.mean_slot_sinr_db, sd.occupied_bandwidth_hz(scenario_.waveform.bitrate));
  }
  // Captured after the zoned round so the interference model's extra
  // reader-path evaluations show up in the trial's tap economics (the census
  // evaluates nothing after this point on the off path, so off-mode numbers
  // are unchanged).
  out.tap_evaluations = cache.evaluations();
  out.tap_lookups = cache.lookups();
  out.simulated_s = tl.now();
  out.node_hours =
      static_cast<double>(n) * out.simulated_s / 3600.0;
  out.events_processed = tl.events_processed();
  if (config.keep_log) out.event_log = tl.log();

  // Arena footprint: the field path's per-trial scratch is density-bound
  // (neighbor scans), never population-bound, so the workspace arena gauges
  // stay flat as the population sweeps -- published from the same pooled
  // context the uplink path uses.
  {
    const auto ctx = trial_contexts_.lease();
    const dsp::Arena& arena = ctx->workspace.arena();
    g_arena_capacity_->set(static_cast<double>(arena.capacity_bytes()));
    g_arena_high_water_->set(static_cast<double>(arena.high_water_bytes()));
    g_arena_blocks_->set(static_cast<double>(arena.block_allocations()));
  }
  metrics_->counter("sim.session.field.trials").add();
  metrics_->counter("sim.session.field.events").add(tl.events_processed());
  tl.export_to(*metrics_, "sim.timeline");
  return out;
}

}  // namespace pab::sim
