# Empty dependencies file for pab_core.
# This may be replaced when dependencies are built.
