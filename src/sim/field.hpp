// NodeField: the first-class node population of a Scenario.
//
// The paper's experiments hold one or two nodes in a tank; a deployment-scale
// simulation holds thousands spread over open water.  A NodeField owns every
// node's position together with its front-end spec as one indexed collection,
// so there is no node-0-special-case split (the old `placement.node` +
// `extra_nodes` + parallel `front_ends` vector) left to drift out of sync:
// position j and front end j cannot have different counts by construction,
// and all callers index through the same accessors.
//
// Field generators (grid / random / clustered layouts at constant areal
// density) are pure functions of a FieldSpec, so a generated field is pinned
// bit-for-bit by the spec value -- the same contract Scenario has with
// `medium.seed`.  Placement randomness comes from `FieldSpec::seed`, which is
// deliberately decoupled from the Monte-Carlo seed: sweeping trial seeds
// re-rolls the noise, not the deployment geometry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "channel/tank.hpp"

namespace pab::sim {

// A node front end by construction parameters (kept as data so Scenario stays
// a value type; sim::Session instantiates the circuit::RectoPiezo objects).
struct FrontEndSpec {
  double match_frequency_hz = 15000.0;  // electrical (FDMA) resonance
  double mech_resonance_hz = 16500.0;   // transducer mechanical resonance
  double assist_gain_db = 0.0;          // battery-assisted reflection gain

  friend bool operator==(const FrontEndSpec&, const FrontEndSpec&) = default;
};

// One node viewed through the unified accessor: everything callers may index
// per node, bundled so position/front-end indices cannot diverge.
struct NodeView {
  std::size_t index = 0;
  const channel::Vec3& position;
  const FrontEndSpec& front_end;
};

// How a generated field is laid out.  kExplicit marks hand-placed fields
// (the paper's tank presets); the other layouts are produced by
// NodeField::generate from a FieldSpec.
enum class FieldLayout : std::uint8_t {
  kExplicit = 0,
  kGrid = 1,     // square lattice at constant areal density
  kRandom = 2,   // uniform over the deployment region
  kClusters = 3, // Gaussian clusters around uniformly drawn centers
};

// Generator parameters for deployment-scale fields.  The horizontal region is
// a square sized from the population at constant density
// (`area_per_node_m2`), so sweeping the population keeps the node spacing --
// and with it every per-node quantity (neighbour count, culled-pair degree,
// arena scratch) -- flat.
struct FieldSpec {
  FieldLayout layout = FieldLayout::kExplicit;
  std::uint64_t population = 0;
  double area_per_node_m2 = 100.0;  // constant density: region area = population x this
  double depth_m = 25.0;            // water column depth (region z extent)
  std::uint64_t clusters = 8;       // kClusters: number of cluster centers
  double cluster_spread_m = 10.0;   // kClusters: per-axis Gaussian spread
  std::uint64_t seed = 1;           // placement randomness (not the trial seed)
  FrontEndSpec front_end{};         // spec stamped on every generated node

  // Side length of the square deployment region [m].
  [[nodiscard]] double extent_m() const;
};

class NodeField {
 public:
  // The default field is the paper's single tank node (the historical
  // `Placement::node` default with a default front end).
  NodeField();

  [[nodiscard]] static NodeField empty();
  [[nodiscard]] static NodeField single(const channel::Vec3& position,
                                        const FrontEndSpec& spec = {});
  // Paired construction; requires positions.size() == specs.size().
  [[nodiscard]] static NodeField from_nodes(std::vector<channel::Vec3> positions,
                                            std::vector<FrontEndSpec> specs);
  // Deterministic generation from a spec (see FieldSpec).  The region is
  // [0, extent] x [0, extent] x [0, depth]; nodes keep a margin from every
  // boundary so generated fields always sit strictly inside their tank.
  [[nodiscard]] static NodeField generate(const FieldSpec& spec);

  [[nodiscard]] std::size_t size() const { return positions_.size(); }

  // The unified per-node accessor: the only sanctioned way to read a node.
  [[nodiscard]] NodeView at(std::size_t j) const {
    return NodeView{j, positions_.at(j), front_ends_.at(j)};
  }
  [[nodiscard]] const channel::Vec3& position(std::size_t j) const {
    return positions_.at(j);
  }
  [[nodiscard]] const FrontEndSpec& front_end(std::size_t j) const {
    return front_ends_.at(j);
  }
  [[nodiscard]] const std::vector<channel::Vec3>& positions() const {
    return positions_;
  }
  [[nodiscard]] const std::vector<FrontEndSpec>& front_ends() const {
    return front_ends_;
  }

  // Mutators keep the pairing invariant by construction.
  void push_back(const channel::Vec3& position, const FrontEndSpec& spec = {});
  void set_position(std::size_t j, const channel::Vec3& position);
  void set_front_end(std::size_t j, const FrontEndSpec& spec);
  void clear();

  friend bool operator==(const NodeField&, const NodeField&) = default;

 private:
  std::vector<channel::Vec3> positions_;
  std::vector<FrontEndSpec> front_ends_;
};

}  // namespace pab::sim
