# Empty dependencies file for test_robust_mode.
# This may be replaced when dependencies are built.
