#include "piezo/transducer.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::piezo {

Transducer::Transducer(BvdParams bvd, double aperture_area_m2, double rho_c,
                       std::string name)
    : bvd_(bvd),
      aperture_area_m2_(aperture_area_m2),
      rho_c_(rho_c),
      name_(std::move(name)) {
  require(aperture_area_m2 > 0.0, "Transducer: aperture area must be positive");
  require(rho_c > 0.0, "Transducer: rho*c must be positive");
  require(bvd_.r_rad > 0.0 && bvd_.r_rad <= bvd_.rm,
          "Transducer: radiation resistance must be in (0, rm]");
  // Receive gain from power consistency at resonance: the maximum electrical
  // power a conjugate-matched load can draw, |V_m|^2 / (8 Rm), equals the
  // electroacoustic efficiency times the acoustic power captured by the
  // aperture, eta * (p_rms^2 / rho c) * A.  With p as amplitude,
  // p_rms^2 = p^2/2.
  const double eta = bvd_.r_rad / bvd_.rm;
  g_rx_ = std::sqrt(4.0 * bvd_.rm * eta * aperture_area_m2_ / rho_c_);
}

double Transducer::radiated_power_w(double v_amplitude, double freq_hz) const {
  require(v_amplitude >= 0.0, "radiated_power: negative drive");
  const cplx zm = bvd_.motional_impedance(freq_hz);
  const double i_m = v_amplitude / std::abs(zm);
  return 0.5 * i_m * i_m * bvd_.r_rad;
}

double Transducer::source_level_db(double v_amplitude, double freq_hz) const {
  const double p = radiated_power_w(v_amplitude, freq_hz);
  if (p <= 0.0) return -300.0;
  // SL = 170.8 + 10 log10(P_ac) for omnidirectional radiation in water.
  return 170.8 + 10.0 * std::log10(p);
}

double Transducer::pressure_amplitude_at_1m(double v_amplitude, double freq_hz) const {
  const double sl = source_level_db(v_amplitude, freq_hz);
  const double p_rms = pressure_pa_from_spl(sl);
  return p_rms * std::numbers::sqrt2;
}

double Transducer::tvr_db(double freq_hz) const {
  return source_level_db(1.0, freq_hz);
}

double Transducer::mechanical_response(double freq_hz) const {
  return bvd_.rm / std::abs(bvd_.motional_impedance(freq_hz));
}

double Transducer::in_branch_voltage(double p_amplitude, double freq_hz) const {
  require(p_amplitude >= 0.0, "in_branch_voltage: negative pressure");
  return g_rx_ * p_amplitude * mechanical_response(freq_hz);
}

double Transducer::thevenin_voltage(double p_amplitude, double freq_hz) const {
  const cplx zm = bvd_.motional_impedance(freq_hz);
  const cplx zc0(0.0, -1.0 / (kTwoPi * freq_hz * bvd_.c0));
  return in_branch_voltage(p_amplitude, freq_hz) * std::abs(zc0 / (zm + zc0));
}

double Transducer::ocv_sensitivity_db(double freq_hz) const {
  // Volts (amplitude) per pascal -> dB re 1V/uPa.
  const double v_per_pa = thevenin_voltage(1.0, freq_hz);
  const double v_per_upa = v_per_pa * 1e-6;
  return db_from_amplitude_ratio(v_per_upa);
}

namespace {

constexpr double kRhoC = 1.48e6;  // fresh water at ~20 C [Pa s/m]

// Effective aperture of the 2.5 cm radius x 4 cm cylinder (lateral surface).
constexpr double kCylinderApertureM2 = 2.0 * 3.14159265358979 * 0.025 * 0.04;

}  // namespace

Transducer make_node_transducer(double f_res_hz) {
  // Water-loaded parameters for the Steminc 17 kHz (in-air) cylinder:
  // loaded Q ~ 6 (bandwidth ~2.5 kHz at 15 kHz), C0 ~ 8 nF, k_eff ~ 0.30,
  // electroacoustic efficiency at resonance ~ 0.7 (air-backed, end-capped
  // design; see paper section 4.1).
  const BvdParams bvd = synthesize_bvd(f_res_hz, /*q=*/3.5, /*c0=*/8e-9,
                                       /*keff=*/0.30, /*eta_ea=*/0.70);
  return Transducer(bvd, kCylinderApertureM2, kRhoC, "node-cylinder");
}

Transducer make_projector_transducer() {
  // Same cylinder geometry driven as a projector; operated across
  // 12-18 kHz through per-configuration matching (section 5.1a), modeled as
  // a slightly broader resonance centered at 15.5 kHz.
  const BvdParams bvd = synthesize_bvd(15500.0, /*q=*/4.0, /*c0=*/8e-9,
                                       /*keff=*/0.30, /*eta_ea=*/0.70);
  return Transducer(bvd, kCylinderApertureM2, kRhoC, "projector-cylinder");
}

double Hydrophone::volts_per_pascal() const {
  // -180 dB re 1V/uPa  =>  10^(-180/20) V per uPa  =>  *1e6 per Pa.
  return std::pow(10.0, sensitivity_db_re_v_per_upa / 20.0) * 1e6;
}

}  // namespace pab::piezo
