# Empty dependencies file for ablation_cdma.
# This may be replaced when dependencies are built.
