// Sample-domain signal containers.
//
// The simulator works in the passband: real-valued pressure/voltage waveforms
// sampled at `sample_rate` (typically 96 kHz for 12-20 kHz acoustic carriers).
// Complex baseband appears after down-conversion in the receiver.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace pab::dsp {

using cplx = std::complex<double>;

// A real passband waveform with an associated sample rate.
struct Signal {
  std::vector<double> samples;
  double sample_rate = 0.0;  // [Hz]

  Signal() = default;
  Signal(std::vector<double> s, double fs) : samples(std::move(s)), sample_rate(fs) {}

  [[nodiscard]] std::size_t size() const { return samples.size(); }
  [[nodiscard]] bool empty() const { return samples.empty(); }
  [[nodiscard]] double duration() const {
    return sample_rate > 0.0 ? static_cast<double>(samples.size()) / sample_rate : 0.0;
  }
  [[nodiscard]] double& operator[](std::size_t i) { return samples[i]; }
  [[nodiscard]] double operator[](std::size_t i) const { return samples[i]; }

  // Element-wise addition of another signal at the same rate; the shorter
  // signal is treated as zero-padded.
  void accumulate(const Signal& other) {
    require(sample_rate == other.sample_rate, "Signal::accumulate: rate mismatch");
    if (other.samples.size() > samples.size()) samples.resize(other.samples.size(), 0.0);
    for (std::size_t i = 0; i < other.samples.size(); ++i)
      samples[i] += other.samples[i];
  }

  void scale(double k) {
    for (auto& s : samples) s *= k;
  }
};

// A complex baseband waveform (after down-conversion).
struct BasebandSignal {
  std::vector<cplx> samples;
  double sample_rate = 0.0;  // [Hz]
  double carrier_hz = 0.0;   // carrier this baseband was mixed down from

  [[nodiscard]] std::size_t size() const { return samples.size(); }
  [[nodiscard]] bool empty() const { return samples.empty(); }

  // Element-wise addition (zero-padded to the longer signal); rates and
  // carriers must match.
  void accumulate(const BasebandSignal& other) {
    require(sample_rate == other.sample_rate && carrier_hz == other.carrier_hz,
            "BasebandSignal::accumulate: rate or carrier mismatch");
    if (other.samples.size() > samples.size()) samples.resize(other.samples.size());
    for (std::size_t i = 0; i < other.samples.size(); ++i)
      samples[i] += other.samples[i];
  }
};

// Non-owning view of a real passband waveform, typically arena-backed.
// The span aliases storage owned elsewhere (a dsp::Arena frame or a
// std::vector); views are cheap to copy and never allocate.
struct SignalView {
  std::span<double> samples;
  double sample_rate = 0.0;  // [Hz]

  SignalView() = default;
  SignalView(std::span<double> s, double fs) : samples(s), sample_rate(fs) {}
  // A mutable Signal is viewable in place.
  explicit SignalView(Signal& s) : samples(s.samples), sample_rate(s.sample_rate) {}

  [[nodiscard]] std::size_t size() const { return samples.size(); }
  [[nodiscard]] bool empty() const { return samples.empty(); }
  [[nodiscard]] double duration() const {
    return sample_rate > 0.0 ? static_cast<double>(samples.size()) / sample_rate : 0.0;
  }
  [[nodiscard]] double& operator[](std::size_t i) const { return samples[i]; }

  // Materialize an owning copy (compatibility seam for value-based callers).
  [[nodiscard]] Signal to_signal() const {
    return Signal(std::vector<double>(samples.begin(), samples.end()), sample_rate);
  }
};

// Non-owning view of a complex baseband waveform (after down-conversion).
struct CplxView {
  std::span<cplx> samples;
  double sample_rate = 0.0;  // [Hz]
  double carrier_hz = 0.0;   // carrier this baseband was mixed down from

  CplxView() = default;
  CplxView(std::span<cplx> s, double fs, double fc)
      : samples(s), sample_rate(fs), carrier_hz(fc) {}
  explicit CplxView(BasebandSignal& s)
      : samples(s.samples), sample_rate(s.sample_rate), carrier_hz(s.carrier_hz) {}

  [[nodiscard]] std::size_t size() const { return samples.size(); }
  [[nodiscard]] bool empty() const { return samples.empty(); }
  [[nodiscard]] cplx& operator[](std::size_t i) const { return samples[i]; }

  // Truncate the view to its first `n` samples (used after in-place
  // decimation, which compacts the signal toward the front).
  [[nodiscard]] CplxView first(std::size_t n) const {
    return CplxView(samples.first(n), sample_rate, carrier_hz);
  }
};

// Mean power (mean square) of a span of samples.
[[nodiscard]] inline double signal_power(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x * x;
  return s / static_cast<double>(xs.size());
}

[[nodiscard]] inline double signal_power(std::span<const cplx> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const cplx& x : xs) s += std::norm(x);
  return s / static_cast<double>(xs.size());
}

}  // namespace pab::dsp
