// Radix-2 FFT and spectrum utilities.
//
// Used by the hydrophone receiver to identify active downlink carriers (the
// paper's decoder "identifies the different transmitted frequencies on the
// downlink using FFT and peak detection", section 5.1b).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/signal.hpp"

namespace pab::dsp {

// In-place iterative radix-2 Cooley-Tukey FFT.  Size must be a power of two.
void fft_inplace(std::span<cplx> data, bool inverse = false);

// Out-of-place convenience wrappers.  Input is zero-padded to the next power
// of two.
[[nodiscard]] std::vector<cplx> fft(std::span<const cplx> input);
[[nodiscard]] std::vector<cplx> fft(std::span<const double> input);
[[nodiscard]] std::vector<cplx> ifft(std::span<const cplx> input);

[[nodiscard]] std::size_t next_pow2(std::size_t n);

// One-sided magnitude spectrum of a real signal with its frequency axis.
struct Spectrum {
  std::vector<double> frequency;  // [Hz], bins 0..fs/2
  std::vector<double> magnitude;  // linear amplitude per bin
};

// Exact-length DFT (Bluestein for non-power-of-two lengths): bin spacing is
// fs / signal.size() and amplitudes are normalized so a bin-aligned
// unit-amplitude sine reads ~1.0 at its exact frequency.  DC and (for even
// lengths) the Nyquist bin carry no mirrored negative-frequency energy and
// are scaled by 1/N instead of 2/N, so a unit-DC signal also reads ~1.0.
[[nodiscard]] Spectrum magnitude_spectrum(const Signal& signal);

// Frequencies of local maxima of the one-sided spectrum that exceed
// `threshold_ratio` * global max, separated by at least `min_separation_hz`.
// Returns peaks sorted by descending magnitude.
[[nodiscard]] std::vector<double> spectral_peaks(const Signal& signal,
                                                 double threshold_ratio = 0.25,
                                                 double min_separation_hz = 500.0);

}  // namespace pab::dsp
