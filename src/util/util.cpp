// pab_util is header-only; this translation unit anchors the static library
// and holds compile-time checks on the header set.
#include "util/bitops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace pab {

static_assert(kPi > 3.14 && kPi < 3.15);
static_assert(khz(15.0) == 15000.0);
static_assert(to_string(ErrorCode::kOk) != nullptr);

}  // namespace pab
