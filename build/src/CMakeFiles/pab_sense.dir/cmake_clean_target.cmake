file(REMOVE_RECURSE
  "libpab_sense.a"
)
