#include "dsp/iir.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::dsp {
namespace {

// RBJ-cookbook second-order low-pass (bilinear transform with prewarping).
Biquad rbj_lowpass(double fc, double fs, double q) {
  const double w0 = kTwoPi * fc / fs;
  const double cw = std::cos(w0);
  const double alpha = std::sin(w0) / (2.0 * q);
  const double a0 = 1.0 + alpha;
  Biquad s;
  s.b0 = (1.0 - cw) / 2.0 / a0;
  s.b1 = (1.0 - cw) / a0;
  s.b2 = (1.0 - cw) / 2.0 / a0;
  s.a1 = -2.0 * cw / a0;
  s.a2 = (1.0 - alpha) / a0;
  return s;
}

Biquad rbj_highpass(double fc, double fs, double q) {
  const double w0 = kTwoPi * fc / fs;
  const double cw = std::cos(w0);
  const double alpha = std::sin(w0) / (2.0 * q);
  const double a0 = 1.0 + alpha;
  Biquad s;
  s.b0 = (1.0 + cw) / 2.0 / a0;
  s.b1 = -(1.0 + cw) / a0;
  s.b2 = (1.0 + cw) / 2.0 / a0;
  s.a1 = -2.0 * cw / a0;
  s.a2 = (1.0 - alpha) / a0;
  return s;
}

// First-order section via bilinear transform, expressed as a degenerate biquad.
Biquad first_order(double fc, double fs, bool highpass) {
  const double w = std::tan(kPi * fc / fs);  // prewarped
  const double a0 = w + 1.0;
  Biquad s;
  if (!highpass) {
    s.b0 = w / a0;
    s.b1 = w / a0;
  } else {
    s.b0 = 1.0 / a0;
    s.b1 = -1.0 / a0;
  }
  s.b2 = 0.0;
  s.a1 = (w - 1.0) / a0;
  s.a2 = 0.0;
  return s;
}

// Butterworth Q values for the conjugate pole pairs of an order-n prototype.
std::vector<double> butterworth_qs(int order) {
  std::vector<double> qs;
  for (int k = 0; k < order / 2; ++k) {
    const double theta = kPi * (2.0 * k + 1.0) / (2.0 * order);
    qs.push_back(1.0 / (2.0 * std::sin(theta)));
  }
  return qs;
}

void check_design(int order, double fc, double fs) {
  require(order >= 1 && order <= 12, "butterworth: order must be in [1,12]");
  require(fs > 0.0, "butterworth: sample rate must be positive");
  require(fc > 0.0 && fc < fs / 2.0, "butterworth: cutoff must be in (0, fs/2)");
}

}  // namespace

// One direct-form-II-transposed step of one section.  The single definition
// shared by the streaming process() and the buffer filter_into() guarantees
// identical arithmetic (same expressions, same order) on both paths.
namespace {

inline double biquad_step(const Biquad& c, double x, double& s1, double& s2) {
  const double y = c.b0 * x + s1;
  s1 = c.b1 * x - c.a1 * y + s2;
  s2 = c.b2 * x - c.a2 * y;
  return y;
}

}  // namespace

double BiquadCascade::process(double x) {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    State& st = state_[i];
    x = biquad_step(sections_[i], x, st.s1r, st.s2r);
  }
  return x;
}

std::complex<double> BiquadCascade::process(std::complex<double> x) {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Biquad& c = sections_[i];
    State& st = state_[i];
    const double yr = biquad_step(c, x.real(), st.s1r, st.s2r);
    const double yi = biquad_step(c, x.imag(), st.s1i, st.s2i);
    x = {yr, yi};
  }
  return x;
}

namespace {

// Designer-produced cascades top out at 12 sections (bandpass: order-12
// high-pass + order-12 low-pass = 6 + 6).  24 leaves headroom for
// hand-assembled cascades without touching the heap.
constexpr std::size_t kMaxStackSections = 24;

}  // namespace

void BiquadCascade::filter_into(std::span<const double> x,
                                std::span<double> y) const {
  require(y.size() == x.size(), "BiquadCascade::filter_into: size mismatch");
  State stack_state[kMaxStackSections] = {};
  std::vector<State> heap_state;  // only for oversized hand-built cascades
  State* st = stack_state;
  if (sections_.size() > kMaxStackSections) {
    heap_state.resize(sections_.size());
    st = heap_state.data();
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    double v = x[i];
    for (std::size_t s = 0; s < sections_.size(); ++s)
      v = biquad_step(sections_[s], v, st[s].s1r, st[s].s2r);
    y[i] = v;
  }
}

void BiquadCascade::filter_into(std::span<const std::complex<double>> x,
                                std::span<std::complex<double>> y) const {
  require(y.size() == x.size(), "BiquadCascade::filter_into: size mismatch");
  State stack_state[kMaxStackSections] = {};
  std::vector<State> heap_state;
  State* st = stack_state;
  if (sections_.size() > kMaxStackSections) {
    heap_state.resize(sections_.size());
    st = heap_state.data();
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::complex<double> in = x[i];
    double vr = in.real(), vi = in.imag();
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      const Biquad& c = sections_[s];
      vr = biquad_step(c, vr, st[s].s1r, st[s].s2r);
      vi = biquad_step(c, vi, st[s].s1i, st[s].s2i);
    }
    y[i] = {vr, vi};
  }
}

std::vector<double> BiquadCascade::filter(std::span<const double> x) const {
  std::vector<double> y(x.size());
  filter_into(x, y);
  return y;
}

std::vector<std::complex<double>> BiquadCascade::filter(
    std::span<const std::complex<double>> x) const {
  std::vector<std::complex<double>> y(x.size());
  filter_into(x, y);
  return y;
}

void BiquadCascade::reset() {
  state_.assign(sections_.size(), State{});
}

std::complex<double> BiquadCascade::response(double freq_hz, double fs) const {
  const std::complex<double> z =
      std::exp(std::complex<double>(0.0, kTwoPi * freq_hz / fs));
  const std::complex<double> zi = 1.0 / z;
  std::complex<double> h(1.0, 0.0);
  for (const Biquad& s : sections_) {
    const std::complex<double> num = s.b0 + s.b1 * zi + s.b2 * zi * zi;
    const std::complex<double> den = 1.0 + s.a1 * zi + s.a2 * zi * zi;
    h *= num / den;
  }
  return h;
}

bool BiquadCascade::is_stable() const {
  for (const Biquad& s : sections_) {
    // Stability triangle for 1 + a1 z^-1 + a2 z^-2.
    if (!(std::abs(s.a2) < 1.0 && std::abs(s.a1) < 1.0 + s.a2)) return false;
  }
  return true;
}

BiquadCascade butterworth_lowpass(int order, double cutoff_hz, double fs) {
  check_design(order, cutoff_hz, fs);
  std::vector<Biquad> sections;
  for (double q : butterworth_qs(order)) sections.push_back(rbj_lowpass(cutoff_hz, fs, q));
  if (order % 2 == 1) sections.push_back(first_order(cutoff_hz, fs, /*highpass=*/false));
  return BiquadCascade(std::move(sections));
}

BiquadCascade butterworth_highpass(int order, double cutoff_hz, double fs) {
  check_design(order, cutoff_hz, fs);
  std::vector<Biquad> sections;
  for (double q : butterworth_qs(order)) sections.push_back(rbj_highpass(cutoff_hz, fs, q));
  if (order % 2 == 1) sections.push_back(first_order(cutoff_hz, fs, /*highpass=*/true));
  return BiquadCascade(std::move(sections));
}

BiquadCascade butterworth_bandpass(int order, double low_hz, double high_hz, double fs) {
  require(low_hz > 0.0 && high_hz > low_hz && high_hz < fs / 2.0,
          "butterworth_bandpass: invalid band");
  // Cascade of an order-n high-pass at the low edge and an order-n low-pass at
  // the high edge; adequate for channel isolation and unconditionally stable.
  BiquadCascade hp = butterworth_highpass(order, low_hz, fs);
  BiquadCascade lp = butterworth_lowpass(order, high_hz, fs);
  std::vector<Biquad> sections = hp.sections();
  for (const Biquad& s : lp.sections()) sections.push_back(s);
  return BiquadCascade(std::move(sections));
}

}  // namespace pab::dsp
