#include "dsp/goertzel.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::dsp {

std::complex<double> goertzel(std::span<const double> x, double freq_hz,
                              double sample_rate) {
  require(sample_rate > 0.0, "goertzel: sample rate must be positive");
  const double w = kTwoPi * freq_hz / sample_rate;
  const double coeff = 2.0 * std::cos(w);
  double s_prev = 0.0, s_prev2 = 0.0;
  for (double v : x) {
    const double s = v + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  const std::complex<double> wz(std::cos(w), std::sin(w));
  return s_prev - s_prev2 * std::conj(wz);
}

double tone_amplitude(std::span<const double> x, double freq_hz, double sample_rate) {
  if (x.empty()) return 0.0;
  return 2.0 * std::abs(goertzel(x, freq_hz, sample_rate)) /
         static_cast<double>(x.size());
}

void tone_amplitudes_into(std::span<const double> x,
                          std::span<const double> freqs_hz, double sample_rate,
                          std::span<double> out) {
  require(out.size() == freqs_hz.size(), "tone_amplitudes_into: size mismatch");
  for (std::size_t i = 0; i < freqs_hz.size(); ++i)
    out[i] = tone_amplitude(x, freqs_hz[i], sample_rate);
}

}  // namespace pab::dsp
