#include "mac/rate_control.hpp"

#include "phy/scheme.hpp"

namespace pab::mac {

RateController::RateController(RateControlConfig config, std::size_t initial_index)
    : config_(std::move(config)), index_(initial_index) {
  require(!config_.rate_table.empty(), "RateController: empty rate table");
  // A table the controller cannot walk monotonically is a config bug, not a
  // runtime condition: ties or inversions make "upshift" lower the rate.
  for (std::size_t i = 1; i < config_.rate_table.size(); ++i) {
    require(config_.rate_table[i] > config_.rate_table[i - 1],
            "RateController: rate table must be strictly ascending");
  }
  require(config_.rate_table.front() > 0.0,
          "RateController: rates must be positive");
  const std::size_t size =
      config_.ladder.empty() ? config_.rate_table.size() : config_.ladder.size();
  require(initial_index < size, "RateController: initial index out of range");
  require(config_.up_margin_db > config_.down_margin_db,
          "RateController: up margin must exceed down margin");
  require(config_.up_streak >= 1 && config_.down_streak >= 1,
          "RateController: streaks must be >= 1");
  // Ladder rungs walk delivered throughput: strictly ascending
  // bitrate * bits_per_symbol, so a downshift always buys robustness.
  for (std::size_t i = 0; i < config_.ladder.size(); ++i) {
    require(config_.ladder[i].bitrate > 0.0,
            "RateController: ladder bitrates must be positive");
    if (i == 0) continue;
    const auto throughput = [&](const LadderRung& r) {
      return r.bitrate *
             static_cast<double>(phy::scheme_descriptor(r.scheme).bits_per_symbol);
    };
    require(throughput(config_.ladder[i]) > throughput(config_.ladder[i - 1]),
            "RateController: ladder must strictly ascend in throughput");
  }
  if (!config_.ladder.empty()) {
    require(config_.evm_backstop > config_.evm_upshift_max,
            "RateController: evm backstop must exceed the upshift gate");
  }
}

bool RateController::step(double headroom_db, bool crc_ok, bool evm_allows_up,
                          bool evm_forces_down, std::size_t table_size) {
  if ((!crc_ok && config_.downshift_on_crc_failure) || evm_forces_down ||
      headroom_db < config_.down_margin_db) {
    good_streak_ = 0;
    ++bad_streak_;
    if (bad_streak_ >= config_.down_streak && index_ > 0) {
      --index_;
      ++downshifts_;
      bad_streak_ = 0;
      return true;
    }
    return false;
  }

  bad_streak_ = 0;
  // A CRC-failed observation never counts toward an upshift streak, even when
  // `downshift_on_crc_failure` is false (the failure is forgiven, not
  // rewarded): upshifting on the back of undecodable packets walks a marginal
  // link straight off the rate table.
  if (crc_ok && evm_allows_up && headroom_db >= config_.up_margin_db) {
    ++good_streak_;
    if (good_streak_ >= config_.up_streak && index_ + 1 < table_size) {
      ++index_;
      ++upshifts_;
      good_streak_ = 0;
      return true;
    }
  } else {
    good_streak_ = 0;
  }
  return false;
}

bool RateController::observe(double snr_db, bool crc_ok) {
  return step(snr_db - config_.decode_floor_db, crc_ok, /*evm_allows_up=*/true,
              /*evm_forces_down=*/false, config_.rate_table.size());
}

bool RateController::observe_quality(const phy::LinkQuality& quality,
                                     bool crc_ok) {
  require(ladder_mode(), "RateController: observe_quality needs a ladder");
  // Headroom against the floor of the scheme we are currently decoding with:
  // a dense scheme's higher floor shrinks its own margin, so the controller
  // retreats from it sooner than a plain SNR rule would.
  const double floor_db =
      phy::scheme_descriptor(config_.ladder[index_].scheme).decode_floor_db;
  return step(quality.mer_db - floor_db, crc_ok,
              quality.evm_rms <= config_.evm_upshift_max,
              quality.evm_rms >= config_.evm_backstop, config_.ladder.size());
}

}  // namespace pab::mac
