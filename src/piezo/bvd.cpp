#include "piezo/bvd.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::piezo {

double BvdParams::series_resonance_hz() const {
  require(lm > 0.0 && cm > 0.0, "BvdParams: motional branch not set");
  return 1.0 / (kTwoPi * std::sqrt(lm * cm));
}

double BvdParams::parallel_resonance_hz() const {
  return series_resonance_hz() * std::sqrt(1.0 + cm / c0);
}

double BvdParams::quality_factor() const {
  require(rm > 0.0, "BvdParams: rm must be positive");
  return kTwoPi * series_resonance_hz() * lm / rm;
}

double BvdParams::coupling_keff() const {
  return std::sqrt(cm / (cm + c0));
}

cplx BvdParams::motional_impedance(double freq_hz) const {
  require(freq_hz > 0.0, "BvdParams: frequency must be positive");
  const double w = kTwoPi * freq_hz;
  return cplx(rm, w * lm - 1.0 / (w * cm));
}

cplx BvdParams::impedance(double freq_hz) const {
  const double w = kTwoPi * freq_hz;
  const cplx zm = motional_impedance(freq_hz);
  const cplx zc0(0.0, -1.0 / (w * c0));
  return zm * zc0 / (zm + zc0);
}

BvdParams synthesize_bvd(double f_res, double q, double c0, double keff,
                         double eta_ea) {
  require(f_res > 0.0, "synthesize_bvd: resonance must be positive");
  require(q > 0.0, "synthesize_bvd: Q must be positive");
  require(c0 > 0.0, "synthesize_bvd: C0 must be positive");
  require(keff > 0.0 && keff < 1.0, "synthesize_bvd: keff must be in (0,1)");
  require(eta_ea > 0.0 && eta_ea <= 1.0, "synthesize_bvd: eta_ea must be in (0,1]");

  BvdParams p;
  p.c0 = c0;
  // keff^2 = Cm / (Cm + C0)  =>  Cm = C0 keff^2 / (1 - keff^2)
  p.cm = c0 * keff * keff / (1.0 - keff * keff);
  const double w0 = kTwoPi * f_res;
  p.lm = 1.0 / (w0 * w0 * p.cm);
  p.rm = w0 * p.lm / q;
  p.r_rad = eta_ea * p.rm;
  return p;
}

BvdParams water_load(const BvdParams& in_air, double mass_loading,
                     double r_radiation) {
  require(mass_loading >= 0.0, "water_load: negative mass loading");
  require(r_radiation >= 0.0, "water_load: negative radiation resistance");
  BvdParams p = in_air;
  p.lm *= (1.0 + mass_loading);
  p.rm += r_radiation;
  p.r_rad = in_air.r_rad + r_radiation;
  return p;
}

}  // namespace pab::piezo
