// Decimation and fractional-delay utilities.
#pragma once

#include <span>
#include <vector>

#include "dsp/signal.hpp"

namespace pab::dsp {

// Keep every `factor`-th sample.  Caller is responsible for anti-alias
// filtering first.
[[nodiscard]] std::vector<double> decimate(std::span<const double> x, std::size_t factor);
[[nodiscard]] std::vector<cplx> decimate(std::span<const cplx> x, std::size_t factor);

// Delay `x` by a fractional number of samples using linear interpolation,
// producing an output of length |x| + ceil(delay).  Used by the multipath
// channel to place echoes at non-integer sample offsets.
[[nodiscard]] std::vector<double> fractional_delay(std::span<const double> x,
                                                   double delay_samples);

// Add `y`, delayed by `delay_samples` and scaled by `gain`, into `acc`
// (resizing `acc` as needed).  The workhorse of the image-method channel.
void add_delayed_scaled(std::vector<double>& acc, std::span<const double> y,
                        double delay_samples, double gain);

// Complex-envelope variant with a complex per-tap gain (amplitude and carrier
// phase rotation of a multipath echo).
void add_delayed_scaled(std::vector<cplx>& acc, std::span<const cplx> y,
                        double delay_samples, cplx gain);

// ---- into-output kernels (allocation-free; wrapped by the above) ----

// Output length of decimate(x, factor) for |x| == n: ceil(n / factor).
[[nodiscard]] std::size_t decimated_length(std::size_t n, std::size_t factor);

// out must have exactly decimated_length(x.size(), factor) elements; `out`
// may alias the front of `x` (forward-stride compaction).
void decimate_into(std::span<const double> x, std::size_t factor, std::span<double> out);
void decimate_into(std::span<const cplx> x, std::size_t factor, std::span<cplx> out);

// Output length of fractional_delay(x, d) for |x| == n.
[[nodiscard]] std::size_t delayed_length(std::size_t n, double delay_samples);

// out must have exactly delayed_length(x.size(), delay) elements and must
// not alias x; it is zero-filled before accumulation.
void fractional_delay_into(std::span<const double> x, double delay_samples,
                           std::span<double> out);

// Accumulate `gain * y` delayed by `delay_samples` into `acc`, which the
// caller has zero-initialized (or already holds prior taps) and sized to at
// least floor(delay) + |y| + 1 samples.  Unlike the vector overloads, the
// span never grows -- size it with the channel's apply_taps_length.
void add_delayed_scaled_into(std::span<double> acc, std::span<const double> y,
                             double delay_samples, double gain);
void add_delayed_scaled_into(std::span<cplx> acc, std::span<const cplx> y,
                             double delay_samples, cplx gain);

}  // namespace pab::dsp
