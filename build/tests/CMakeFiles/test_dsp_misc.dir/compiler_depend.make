# Empty compiler generated dependencies file for test_dsp_misc.
# This may be replaced when dependencies are built.
