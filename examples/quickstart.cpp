// Quickstart: the smallest end-to-end PAB experiment, on the Scenario/Session
// API.
//
// A Scenario is one immutable experiment description (tank, placement,
// projector, node front end, waveform); a Session instantiates it once and
// memoizes the shared physics (multipath tap sets, recto-piezo responses); a
// BatchRunner fans Monte-Carlo trials over a thread pool with bit-identical
// results at any thread count.  Run:  ./quickstart
#include <cstdio>

#include "sim/batch.hpp"

int main() {
  using namespace pab;

  // 1. Scenario: the paper's Pool A (3 x 4 m, 1.3 m deep) with the fabricated
  //    cylinder projector at 50 V and a recto-piezo node matched at 15 kHz,
  //    backscattering 64-bit payloads at 1 kbps on a 15 kHz carrier.
  sim::Scenario scenario = sim::Scenario::pool_a().with_seed(7);

  // 2. Session: hardware + caches, shared by every trial below.
  const sim::Session session(scenario);

  // 3. One Monte-Carlo uplink trial: random payload, backscatter uplink,
  //    decode at the hydrophone.  Decode failures surface as Expected errors.
  const auto trial = session.run_trial<sim::TrialKind::kUplink>(/*trial=*/0);

  std::printf("PAB quickstart\n--------------\n");
  if (!trial.ok()) {
    std::printf("decode failed: %s\n", trial.error().message().c_str());
    return 1;
  }
  std::printf("incident pressure at node: %6.1f Pa\n",
              trial.value().incident_pressure_pa);
  std::printf("backscatter modulation:    %6.3f Pa\n",
              trial.value().modulation_pressure_pa);
  std::printf("estimated SNR:             %6.1f dB\n",
              trial.value().demod.snr_db);
  std::printf("bit error rate:            %6.4f\n", trial.value().ber);

  // 4. A batch: 32 trials fanned over the machine's cores.  Trial i draws its
  //    randomness from RNG substream i of the scenario seed, so the aggregate
  //    below is bit-identical whether this runs on 1 thread or 16.
  sim::BatchRunner pool;
  const auto trials = pool.run<sim::TrialKind::kUplink>(session, 32);
  std::size_t decoded = 0;
  double ber_sum = 0.0;
  for (const auto& t : trials) {
    if (!t.ok()) continue;
    ++decoded;
    ber_sum += t.value().ber;
  }
  std::printf("batch (%zu trials, %u threads): %zu decoded, mean BER %.4f\n",
              trials.size(), pool.threads(), decoded,
              decoded ? ber_sum / static_cast<double>(decoded) : 1.0);
  std::printf("packet delivered battery-free.\n");
  return 0;
}
