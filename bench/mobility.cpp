// Extension study (paper section 8, "Operation Environment"): mobility and
// surface waves.
//
// "These settings are also likely to introduce new challenges, such as
// mobility and multipath, which would be interesting to explore."  This bench
// quantifies (a) the Doppler a moving node imposes and how well the
// receiver's CFO estimator tracks it, and (b) the fading depth a heaving
// surface imposes on a shallow link.
#include <cmath>

#include "bench_util.hpp"
#include "channel/timevarying.hpp"
#include "phy/cfo.hpp"
#include "util/units.hpp"

namespace {

using namespace pab;

constexpr double kCarrier = 15000.0;
constexpr double kFs = 48000.0;

dsp::BasebandSignal cw(double amp, double duration) {
  dsp::BasebandSignal s;
  s.sample_rate = kFs;
  s.carrier_hz = kCarrier;
  s.samples.assign(static_cast<std::size_t>(duration * kFs), dsp::cplx(amp, 0.0));
  return s;
}

void print_series() {
  bench::print_header("Mobility & waves",
                      "Doppler tracking and surface-wave fading (section 8)");

  // --- Doppler vs speed -------------------------------------------------------
  bench::print_row({"speed [m/s]", "Doppler [Hz]", "CFO est [Hz]", "err [Hz]"});
  for (double v : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    channel::MovingPathConfig cfg;
    cfg.source = {0, 0, 0};
    cfg.rx_start = {30.0, 0, 0};
    cfg.rx_velocity = {-v, 0, 0};  // closing
    const auto rx = channel::propagate_moving(cw(1.0, 0.5), cfg);
    const std::size_t skip = static_cast<std::size_t>(0.05 * kFs);
    const std::vector<dsp::cplx> seg(rx.samples.begin() + skip,
                                     rx.samples.end() - skip);
    const double est = phy::estimate_cfo_hz(seg, kFs);
    const double truth = channel::doppler_shift_hz(cfg, kCarrier);
    bench::print_row({bench::fmt(v, 2), bench::fmt(truth, 2), bench::fmt(est, 2),
                      bench::fmt(est - truth, 3)});
  }
  std::printf("\nA 1 m/s swimmer shifts the 15 kHz carrier ~10 Hz; the standard\n"
              "CFO estimator (paper footnote 12) tracks it to sub-Hz.\n\n");

  // --- Surface-wave fading ------------------------------------------------------
  bench::print_row({"wave amp [m]", "fade depth [dB]"});
  for (double a : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    channel::WavySurfaceConfig cfg;
    cfg.source = {0, 0, 0.5};
    cfg.receiver = {4.0, 0, 0.5};
    cfg.surface_z = 1.0;
    cfg.wave_amplitude = a;
    bench::print_row({bench::fmt(a, 2),
                      bench::fmt(channel::fade_depth_db(cfg, kCarrier), 1)});
  }
  std::printf("\nCentimeter swell already moves the surface image through full\n"
              "constructive/destructive cycles at a 10 cm wavelength -- the\n"
              "dynamic multipath open-water PAB must ride out.\n");
}

void bm_propagate_moving(benchmark::State& state) {
  channel::MovingPathConfig cfg;
  cfg.source = {0, 0, 0};
  cfg.rx_start = {30.0, 0, 0};
  cfg.rx_velocity = {-1.0, 0, 0};
  const auto tx = cw(1.0, 0.2);
  for (auto _ : state) {
    auto rx = channel::propagate_moving(tx, cfg);
    benchmark::DoNotOptimize(rx.samples.data());
  }
}
BENCHMARK(bm_propagate_moving)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "mobility";
  spec.description = "Doppler tracking and surface-wave fading";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "mobility";
  sweep.kind = pab::sim::TrialKind::kTimeline;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 8;
  sweep.timeline["max_drift_mps"] = 0.5;
  sweep.timeline["horizon_s"] = 20.0;
  spec.campaign = std::move(sweep);
  return pab::bench::run_bench_main(argc, argv, spec);
}
