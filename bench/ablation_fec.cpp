// Ablation: FEC + interleaving against surface-wave fading.
//
// Open-water shallow links fade periodically as swell moves the surface image
// (see bench/mobility): errors arrive in bursts.  This bench runs FM0 chips
// through a two-ray wavy-surface envelope with noise and compares packet
// delivery for uncoded vs Hamming(7,4)+interleaver payloads at equal *data*
// goodput accounting (the code spends 1.75x airtime).
#include <cmath>

#include "bench_util.hpp"
#include "channel/timevarying.hpp"
#include "phy/fec.hpp"
#include "phy/fm0.hpp"
#include "phy/metrics.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace pab;

constexpr double kCarrier = 15000.0;
constexpr double kChipRate = 500.0;  // 250 bps FM0

// Complex channel gain sequence over `n` chips from the wavy two-ray model.
std::vector<double> fade_series(std::size_t n, double wave_amp, Rng& rng) {
  channel::WavySurfaceConfig cfg;
  cfg.source = {0, 0, 1.5};
  cfg.receiver = {12.0, 0, 1.5};
  cfg.surface_z = 3.0;
  cfg.wave_amplitude = wave_amp;
  cfg.wave_freq_hz = 1.5 + rng.uniform(0.0, 1.0);  // short chop
  const double c = channel::sound_speed_mackenzie(cfg.water);
  const double d_direct = channel::distance(cfg.source, cfg.receiver);
  const double g_direct = channel::path_amplitude_gain(d_direct, kCarrier);
  std::vector<double> fade(n);
  const double phase0 = rng.uniform(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / kChipRate;
    const double zs = cfg.surface_z +
                      cfg.wave_amplitude *
                          std::sin(kTwoPi * (cfg.wave_freq_hz * t + phase0));
    const channel::Vec3 image{cfg.source.x, cfg.source.y, 2.0 * zs - cfg.source.z};
    const double d_img = channel::distance(image, cfg.receiver);
    const double g_img =
        cfg.surface_reflection * channel::path_amplitude_gain(d_img, kCarrier);
    const std::complex<double> sum =
        g_direct + g_img * std::exp(std::complex<double>(
                               0.0, -kTwoPi * kCarrier * (d_img - d_direct) / c));
    fade[i] = std::abs(sum) / g_direct;  // normalized to the direct path
  }
  return fade;
}

struct DeliveryResult {
  int delivered = 0;
  int attempts = 0;
  double airtime_chips = 0.0;
};

DeliveryResult run_policy(bool use_fec, double wave_amp, double noise_sd,
                          Rng& rng) {
  DeliveryResult out;
  constexpr std::size_t kDataBits = 96;
  for (int pkt = 0; pkt < 40; ++pkt) {
    ++out.attempts;
    const auto data = rng.bits(kDataBits);
    const Bits on_air = use_fec ? phy::fec_protect(data) : data;
    const auto chips = phy::fm0_encode(on_air);
    out.airtime_chips += static_cast<double>(chips.size());

    const auto fade = fade_series(chips.size(), wave_amp, rng);
    std::vector<double> soft(chips.size());
    for (std::size_t i = 0; i < chips.size(); ++i)
      soft[i] = fade[i] * static_cast<double>(chips[i]) +
                rng.gaussian(0.0, noise_sd);
    const Bits rx_bits = phy::fm0_decode_ml(soft);

    const Bits recovered =
        use_fec ? phy::fec_recover(rx_bits, kDataBits) : rx_bits;
    if (hamming_distance(data, recovered) == 0) ++out.delivered;
  }
  return out;
}

void print_series() {
  bench::print_header("Ablation: FEC vs wave fading",
                      "Packet delivery, uncoded vs Hamming(7,4)+interleaver");
  bench::print_row({"wave amp [m]", "uncoded", "FEC", "FEC airtime"});
  Rng rng(12);
  for (double amp : {0.0, 0.05, 0.10, 0.20}) {
    Rng r1 = rng.fork();
    Rng r2 = rng.fork();
    const auto raw = run_policy(false, amp, 0.35, r1);
    const auto fec = run_policy(true, amp, 0.35, r2);
    bench::print_row(
        {bench::fmt(amp, 2),
         bench::fmt(raw.delivered, 0) + "/" + bench::fmt(raw.attempts, 0),
         bench::fmt(fec.delivered, 0) + "/" + bench::fmt(fec.attempts, 0),
         bench::fmt(fec.airtime_chips / raw.airtime_chips, 2) + "x"});
  }
  std::printf("\nShape: under deep/frequent fading the interleaved block code\n"
              "buys back packet delivery for its 1.75x airtime.  Under mild\n"
              "fading the extra airtime exposure cancels the coding gain --\n"
              "FEC should be switched adaptively, like the bitrate.\n");
}

void bm_fec_pipeline(benchmark::State& state) {
  Rng rng(1);
  const auto data = rng.bits(96);
  for (auto _ : state) {
    auto coded = phy::fec_protect(data);
    auto back = phy::fec_recover(coded, 96);
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(bm_fec_pipeline)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  pab::bench::BenchSpec spec;
  spec.name = "ablation_fec";
  spec.description = "Packet delivery, uncoded vs Hamming(7,4)+interleaver";
  spec.print_series = print_series;
  pab::campaign::CampaignSpec sweep;
  sweep.name = "ablation_fec";
  sweep.kind = pab::sim::TrialKind::kUplink;
  sweep.preset = "pool_a";
  sweep.trials_per_point = 12;
  sweep.axes.push_back({"noise.psd_db_re_upa", {45.0, 55.0, 65.0}});
  spec.campaign = std::move(sweep);
  return pab::bench::run_bench_main(argc, argv, spec);
}
