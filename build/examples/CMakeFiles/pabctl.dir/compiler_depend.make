# Empty compiler generated dependencies file for pabctl.
# This may be replaced when dependencies are built.
