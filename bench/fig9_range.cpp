// Figure 9: Maximum power-up distance vs projector input voltage.
//
// Paper: the battery-free node powers up at longer range as the projector
// drive voltage rises; at equal drive, the elongated Pool B sustains longer
// ranges than Pool A because the corridor focuses the signal (section 6.2).
// Pool A tops out at its 5 m maximum and Pool B at 10 m.
//
// Power-up criterion: the rectified open-circuit voltage must reach the
// 2.5 V threshold AND the harvested DC power must sustain the node's idle
// draw (124 uW).
#include "bench_util.hpp"
#include "channel/tank.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/projector.hpp"
#include "energy/mcu.hpp"

namespace {

using namespace pab;

constexpr double kCarrier = 15000.0;

struct RangeScan {
  const channel::Tank* tank;
  channel::Vec3 start;       // projector position
  channel::Vec3 direction;   // unit vector along the scan
  double max_distance;
};

RangeScan pool_a_scan(const channel::Tank& tank) {
  // Diagonal of the 3 x 4 m tank: the longest available baseline (5 m).
  const channel::Vec3 p{0.2, 0.2, 0.65};
  return {&tank, p, {0.555, 0.74, 0.0}, 4.6};
}

RangeScan pool_b_scan(const channel::Tank& tank) {
  // Along the 10 m corridor.
  const channel::Vec3 p{0.6, 0.2, 0.5};
  return {&tank, p, {0.0, 1.0, 0.0}, 9.6};
}

// Max distance at which the node powers up, scanning outward; small position
// jitter averages over multipath fades (the experimenters would nudge a node
// sitting in a null).
double max_power_up_distance(const RangeScan& scan, double drive_v,
                             const circuit::RectoPiezo& fe,
                             double idle_power_w) {
  const core::Projector proj(piezo::make_projector_transducer(), drive_v);
  const double p1m = proj.pressure_at_1m(kCarrier);
  double max_d = 0.0;
  for (double d = 0.4; d <= scan.max_distance; d += 0.2) {
    double best_p = 0.0;
    for (double jitter : {-0.08, 0.0, 0.08}) {
      const channel::Vec3 rx{scan.start.x + scan.direction.x * (d + jitter),
                             scan.start.y + scan.direction.y * (d + jitter),
                             scan.start.z};
      if (!scan.tank->contains(rx)) continue;
      const auto taps = channel::image_method_taps(*scan.tank, scan.start, rx,
                                                   2, kCarrier);
      best_p = std::max(best_p, p1m * channel::coherent_gain(taps, kCarrier));
    }
    const bool threshold_ok =
        fe.rectified_open_voltage(kCarrier, best_p) >= 2.5;
    const bool power_ok =
        fe.harvested_dc_power(kCarrier, best_p) >= idle_power_w;
    if (threshold_ok && power_ok) max_d = d;
  }
  return max_d;
}

void print_series() {
  bench::print_header("Figure 9",
                      "Maximum power-up distance vs transmitter voltage");
  const auto fe = circuit::make_recto_piezo(15000.0);
  const energy::McuPowerModel mcu;
  const double idle = mcu.idle_power_w();

  const channel::Tank pool_a = channel::make_pool_a();
  const channel::Tank pool_b = channel::make_pool_b();
  const RangeScan scan_a = pool_a_scan(pool_a);
  const RangeScan scan_b = pool_b_scan(pool_b);

  bench::print_row({"V_tx [V]", "Pool A [m]", "Pool B [m]"});
  double a350 = 0.0, b350 = 0.0;
  for (double v = 25.0; v <= 350.0 + 0.1; v += 25.0) {
    const double da = max_power_up_distance(scan_a, v, fe, idle);
    const double db = max_power_up_distance(scan_b, v, fe, idle);
    if (v >= 349.0) { a350 = da; b350 = db; }
    bench::print_row({bench::fmt(v, 0), bench::fmt(da, 1), bench::fmt(db, 1)});
  }
  std::printf("\nAt full drive: Pool A %.1f m (tank max ~5 m), Pool B %.1f m "
              "(tank max ~10 m)\n", a350, b350);
  std::printf("Paper shape: range grows with voltage; Pool B > Pool A at equal\n"
              "drive (corridor focusing); power-up ranges up to 10 m.\n");
}

void bm_image_method(benchmark::State& state) {
  const channel::Tank tank = channel::make_pool_b();
  for (auto _ : state) {
    auto taps = channel::image_method_taps(tank, {0.6, 0.2, 0.5},
                                           {0.6, 8.0, 0.5}, 2, kCarrier);
    benchmark::DoNotOptimize(taps.data());
  }
}
BENCHMARK(bm_image_method)->Unit(benchmark::kMicrosecond);

void bm_harvest_evaluation(benchmark::State& state) {
  const auto fe = circuit::make_recto_piezo(15000.0);
  for (auto _ : state) {
    double acc = 0.0;
    for (double p = 10.0; p < 1000.0; p += 10.0)
      acc += fe.harvested_dc_power(kCarrier, p);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_harvest_evaluation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return pab::bench::run_bench_main(argc, argv, print_series);
}
