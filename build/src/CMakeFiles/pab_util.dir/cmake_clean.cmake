file(REMOVE_RECURSE
  "CMakeFiles/pab_util.dir/util/util.cpp.o"
  "CMakeFiles/pab_util.dir/util/util.cpp.o.d"
  "libpab_util.a"
  "libpab_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pab_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
