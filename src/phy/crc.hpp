// CRC-16 for uplink packet integrity.
//
// The paper's receiver "can also use the CRC to perform a checksum on the
// received packets and request retransmissions of corrupted packets"
// (section 5.1b).  We use CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), the
// same family RFID air protocols use.
#pragma once

#include <cstdint>
#include <span>

#include "util/bitops.hpp"

namespace pab::phy {

[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> bytes,
                                        std::uint16_t init = 0xFFFF);

// CRC over a bit vector (MSB-first packing; bit count need not be byte-aligned,
// remaining bits are processed individually).
[[nodiscard]] std::uint16_t crc16_bits(std::span<const std::uint8_t> bits,
                                       std::uint16_t init = 0xFFFF);

}  // namespace pab::phy
