file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_fft.dir/test_dsp_fft.cpp.o"
  "CMakeFiles/test_dsp_fft.dir/test_dsp_fft.cpp.o.d"
  "test_dsp_fft"
  "test_dsp_fft.pdb"
  "test_dsp_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
