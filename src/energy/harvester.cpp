#include "energy/harvester.hpp"

#include "util/error.hpp"

namespace pab::energy {

Harvester::Harvester(circuit::Supercapacitor cap, HarvesterParams params)
    : cap_(cap), params_(params) {
  require(params.power_up_threshold_v > params.brown_out_v,
          "Harvester: threshold must exceed brown-out");
}

void Harvester::step(double dt, double p_harvest, double p_load, double v_ceiling) {
  require(dt >= 0.0, "Harvester: negative dt");
  // Loads only draw after power-up.
  const double p_out = powered_up_ ? p_load : 0.0;
  cap_.step(dt, p_harvest, p_out, v_ceiling);
  ledger_.add(Category::kHarvested, p_harvest * dt);
  if (p_out > 0.0) ledger_.add(Category::kIdle, p_out * dt);

  if (!powered_up_ && cap_.voltage() >= params_.power_up_threshold_v)
    powered_up_ = true;
  else if (powered_up_ && cap_.voltage() < params_.brown_out_v)
    powered_up_ = false;
}

HarvestStep Harvester::step_at(double t, double dt, double p_harvest,
                               double p_load, double v_ceiling) {
  require(dt >= 0.0, "Harvester: negative dt");
  HarvestStep out;
  const double p_out = powered_up_ ? p_load : 0.0;
  cap_.step(dt, p_harvest, p_out, v_ceiling);
  out.harvested_j = p_harvest * dt;
  out.consumed_j = p_out * dt;
  ledger_.add(t, Category::kHarvested, out.harvested_j);
  if (p_out > 0.0) ledger_.add(t, Category::kIdle, out.consumed_j);

  if (!powered_up_ && cap_.voltage() >= params_.power_up_threshold_v) {
    powered_up_ = true;
    out.event = PowerEvent::kPowerUp;
  } else if (powered_up_ && cap_.voltage() < params_.brown_out_v) {
    powered_up_ = false;
    out.event = PowerEvent::kBrownOut;
  }
  return out;
}

double Harvester::time_to_power_up(double p_harvest, double v_ceiling,
                                   double capacitance_f, double threshold_v) {
  require(capacitance_f > 0.0, "time_to_power_up: capacitance must be positive");
  if (p_harvest <= 0.0 || v_ceiling < threshold_v) return -1.0;
  const double energy = 0.5 * capacitance_f * threshold_v * threshold_v;
  return energy / p_harvest;
}

}  // namespace pab::energy
