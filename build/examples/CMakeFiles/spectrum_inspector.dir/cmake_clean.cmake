file(REMOVE_RECURSE
  "CMakeFiles/spectrum_inspector.dir/spectrum_inspector.cpp.o"
  "CMakeFiles/spectrum_inspector.dir/spectrum_inspector.cpp.o.d"
  "spectrum_inspector"
  "spectrum_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
