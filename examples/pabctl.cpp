// pabctl: command-line driver for the PAB simulator.
//
//   pabctl link    [--pool A|B] [--bitrate N] [--drive V] [--carrier HZ]
//                  [--bits N] [--seed S] [--equalize]
//   pabctl harvest [--match HZ] [--pressure PA]
//   pabctl range   [--pool A|B] [--drive V]
//   pabctl sense   [--ph X] [--temp C] [--pressure MBAR] [--drive V]
//   pabctl decode  --file CAPTURE.wav [--carrier HZ] [--bitrate N]
//                  [--payload BYTES]
//   pabctl info
//
// Every subcommand runs the same library code the tests and benches use.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "channel/tank.hpp"
#include "core/link.hpp"
#include "core/projector.hpp"
#include "dsp/wav.hpp"
#include "energy/mcu.hpp"
#include "mac/protocol.hpp"
#include "node/node.hpp"
#include "phy/metrics.hpp"
#include "piezo/design.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace pab;

// --- tiny flag parser ---------------------------------------------------------

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& key) const { return kv.count(key) != 0; }
  double num(const std::string& key, double fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::atof(it->second.c_str());
  }
  std::string str(const std::string& key, const std::string& fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";  // boolean flag
    }
  }
  return a;
}

core::SimConfig pool_config(const Args& a) {
  return a.str("pool", "A") == "B" ? sim::Scenario::pool_b().medium : sim::Scenario::pool_a().medium;
}

// --- subcommands ----------------------------------------------------------------

int cmd_link(const Args& a) {
  core::SimConfig sc = pool_config(a);
  sc.seed = static_cast<std::uint64_t>(a.num("seed", 42));
  core::LinkSimulator sim(sc, core::Placement{});
  const core::Projector proj(piezo::make_projector_transducer(),
                             a.num("drive", 50.0));
  const auto fe = circuit::make_recto_piezo(a.num("carrier", 15000.0));
  Rng rng(sc.seed);
  const auto bits = rng.bits(static_cast<std::size_t>(a.num("bits", 96)));
  core::UplinkRunConfig cfg;
  cfg.carrier_hz = a.num("carrier", 15000.0);
  cfg.bitrate = a.num("bitrate", 1000.0);
  const auto run = sim.run_uplink(proj, fe, bits, cfg);

  phy::DemodConfig dc;
  dc.carrier_hz = cfg.carrier_hz;
  dc.bitrate = cfg.bitrate;
  dc.sample_rate = sc.sample_rate;
  dc.decision_directed_equalizer = a.has("equalize");
  const auto r = phy::BackscatterDemodulator(dc).demodulate(run.hydrophone_v,
                                                            bits.size());
  std::printf("incident at node : %8.2f Pa\n", run.incident_pressure_pa);
  std::printf("carrier at hydro : %8.2f Pa\n", run.direct_pressure_pa);
  std::printf("modulation       : %8.4f Pa\n", run.modulation_pressure_pa);
  if (!r.ok()) {
    std::printf("decode           : FAILED (%s)\n", r.error().message().c_str());
    return 1;
  }
  std::printf("preamble corr    : %8.3f\n", r.value().preamble_corr);
  std::printf("chip SNR         : %8.1f dB\n", r.value().snr_db);
  std::printf("BER              : %8.4f\n",
              phy::bit_error_rate(bits, r.value().bits));
  return 0;
}

int cmd_harvest(const Args& a) {
  const auto fe = circuit::make_recto_piezo(a.num("match", 15000.0));
  const double p = a.num("pressure", 80.0);
  std::printf("f [kHz]  Vrect [V]  harvest [uW]  |G_abs|\n");
  for (double f = 11000.0; f <= 21000.0 + 1.0; f += 500.0) {
    std::printf("%6.1f   %8.2f   %10.2f   %6.3f\n", f / 1000.0,
                fe.rectified_open_voltage(f, p),
                fe.harvested_dc_power(f, p) * 1e6,
                std::abs(fe.gamma_absorptive(f)));
  }
  return 0;
}

int cmd_range(const Args& a) {
  const core::SimConfig sc = pool_config(a);
  const core::Projector proj(piezo::make_projector_transducer(),
                             a.num("drive", 200.0));
  const auto fe = circuit::make_recto_piezo(15000.0);
  const energy::McuPowerModel mcu;
  const bool pool_b = a.str("pool", "A") == "B";
  const channel::Vec3 start = pool_b ? channel::Vec3{0.6, 0.2, 0.5}
                                     : channel::Vec3{0.2, 0.2, 0.65};
  const channel::Vec3 dir = pool_b ? channel::Vec3{0.0, 1.0, 0.0}
                                   : channel::Vec3{0.555, 0.74, 0.0};
  const double max_d = pool_b ? 9.6 : 4.6;
  std::printf("d [m]  incident [Pa]  harvest [uW]  powered\n");
  for (double d = 0.4; d <= max_d; d += 0.4) {
    const channel::Vec3 rx{start.x + dir.x * d, start.y + dir.y * d, start.z};
    if (!sc.tank.contains(rx)) break;
    const auto taps = channel::image_method_taps(sc.tank, start, rx, 2, 15000.0);
    const double p = proj.pressure_at_1m(15000.0) *
                     channel::coherent_gain(taps, 15000.0);
    const bool up = fe.rectified_open_voltage(15000.0, p) >= 2.5 &&
                    fe.harvested_dc_power(15000.0, p) >= mcu.idle_power_w();
    std::printf("%5.1f  %12.1f  %11.1f  %s\n", d, p,
                fe.harvested_dc_power(15000.0, p) * 1e6, up ? "yes" : "no");
  }
  return 0;
}

int cmd_sense(const Args& a) {
  sense::Environment env;
  env.ph = a.num("ph", 7.0);
  env.temperature_c = a.num("temp", 20.0);
  env.pressure_mbar = a.num("pressure", 1013.25);

  core::SimConfig sc = pool_config(a);
  core::LinkSimulator sim(sc, core::Placement{});
  const core::Projector proj(piezo::make_projector_transducer(),
                             a.num("drive", 300.0));
  node::NodeConfig ncfg;
  ncfg.node_depth_m = 0.0;
  node::PabNode node(ncfg, &env);
  for (int i = 0; i < 12000 && !node.powered_up(); ++i)
    node.harvest_step(0.01, 15000.0, sim.incident_pressure(proj, 15000.0),
                      node::NodeState::kColdStart);
  if (!node.powered_up()) {
    std::printf("node failed to power up; raise --drive\n");
    return 1;
  }
  const phy::Command commands[] = {phy::Command::kReadPh,
                                   phy::Command::kReadTemperature,
                                   phy::Command::kReadPressure};
  for (phy::Command c : commands) {
    phy::DownlinkQuery q;
    q.address = ncfg.id;
    q.command = c;
    const auto sliced =
        sim.downlink_sliced_envelope(proj, q, ncfg.downlink_pwm, 15000.0);
    const auto received = node.receive_downlink(sliced, sc.sample_rate);
    if (!received) continue;
    const auto resp = node.process_query(*received);
    if (!resp) continue;
    core::UplinkRunConfig ucfg;
    ucfg.bitrate = node.bitrate();
    const auto out =
        sim.run_and_decode(proj, node.front_end(), resp->to_bits(false), ucfg);
    if (!out.ok()) continue;
    const auto packet = phy::UplinkPacket::from_bits(out.value().demod.bits, false);
    if (!packet) continue;
    const auto reading = mac::parse_response(q, *packet);
    if (reading)
      std::printf("%-12s = %10.2f %s\n",
                  c == phy::Command::kReadPh          ? "pH"
                  : c == phy::Command::kReadTemperature ? "temperature"
                                                         : "pressure",
                  reading->value, reading->unit.c_str());
  }
  return 0;
}

int cmd_decode(const Args& a) {
  const std::string file = a.str("file", "");
  if (file.empty()) {
    std::printf("decode requires --file CAPTURE.wav\n");
    return 1;
  }
  auto capture = dsp::read_wav(file);
  if (!capture.ok()) {
    std::printf("cannot read %s: %s\n", file.c_str(),
                capture.error().message().c_str());
    return 1;
  }
  phy::DemodConfig dc;
  dc.carrier_hz = a.num("carrier", 15000.0);
  dc.bitrate = a.num("bitrate", 1000.0);
  dc.sample_rate = capture.value().sample_rate;
  const auto payload_len = static_cast<std::size_t>(a.num("payload", 4));
  const auto packet =
      phy::demodulate_packet(capture.value(), dc, payload_len);
  if (!packet.ok()) {
    std::printf("decode failed: %s\n", packet.error().message().c_str());
    return 1;
  }
  std::printf("node %u payload:", packet.value().node_id);
  for (auto b : packet.value().payload) std::printf(" %02X", b);
  std::printf("  (CRC ok)\n");
  return 0;
}

int cmd_info(const Args&) {
  const auto node = piezo::make_node_transducer();
  const auto g = piezo::design_cylinder_for(17000.0);
  const auto loaded = piezo::water_loaded_design(g);
  const energy::McuPowerModel mcu;
  std::printf("PAB model parameters\n");
  std::printf("  cylinder: radius %.1f mm, length %.1f mm, wall %.1f mm\n",
              g.mean_radius_m * 1e3, g.length_m * 1e3,
              g.wall_thickness_m * 1e3);
  std::printf("  in-air resonance  : %.1f kHz\n",
              piezo::in_air_resonance_hz(g) / 1e3);
  std::printf("  water-loaded      : %.1f kHz, Q %.1f\n",
              loaded.resonance_hz / 1e3, loaded.loaded_q);
  std::printf("  node BVD          : C0 %.1f nF, Rm %.0f ohm, keff %.2f\n",
              node.bvd().c0 * 1e9, node.bvd().rm, node.bvd().coupling_keff());
  std::printf("  power model       : idle %.0f uW, backscatter %.0f uW @1kbps\n",
              mcu.idle_power_w() * 1e6, mcu.backscatter_power_w(1000.0) * 1e6);
  std::printf("  power-up threshold: 2.5 V on a 1000 uF supercapacitor\n");
  return 0;
}

void usage() {
  std::printf(
      "pabctl <link|harvest|range|sense|decode|info> [--flags]\n"
      "  link    --pool A|B --bitrate N --drive V --carrier HZ --bits N\n"
      "          --seed S --equalize\n"
      "  harvest --match HZ --pressure PA\n"
      "  range   --pool A|B --drive V\n"
      "  sense   --ph X --temp C --pressure MBAR --drive V\n"
      "  decode  --file CAPTURE.wav --carrier HZ --bitrate N --payload BYTES\n"
      "  info\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  if (cmd == "link") return cmd_link(args);
  if (cmd == "harvest") return cmd_harvest(args);
  if (cmd == "range") return cmd_range(args);
  if (cmd == "sense") return cmd_sense(args);
  if (cmd == "decode") return cmd_decode(args);
  if (cmd == "info") return cmd_info(args);
  usage();
  return 1;
}
