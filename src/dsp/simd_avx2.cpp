// AVX2+FMA kernel table.  Compiled into every x86-64 build via per-function
// target attributes (no special compile flags); selected at runtime only when
// __builtin_cpu_supports says the host can run it.  All results are
// tolerance-bounded (<= 1e-9 relative) against the scalar reference table:
// reductions reassociate across lanes, oscillators rotate block-anchored
// phasors instead of calling libm per sample.
#include "dsp/simd_kernels.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#define PAB_AVX2 __attribute__((target("avx2,fma")))

namespace pab::dsp::simd {
namespace {

PAB_AVX2 inline double hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

PAB_AVX2 double avx2_sum(const double* x, std::size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 = _mm256_add_pd(a0, _mm256_loadu_pd(x + i));
    a1 = _mm256_add_pd(a1, _mm256_loadu_pd(x + i + 4));
  }
  for (; i + 4 <= n; i += 4) a0 = _mm256_add_pd(a0, _mm256_loadu_pd(x + i));
  double s = hsum(_mm256_add_pd(a0, a1));
  for (; i < n; ++i) s += x[i];
  return s;
}

PAB_AVX2 double avx2_dot(const double* a, const double* b, std::size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), a0);
    a1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4),
                         a1);
  }
  for (; i + 4 <= n; i += 4)
    a0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), a0);
  double s = hsum(_mm256_add_pd(a0, a1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

PAB_AVX2 cplx avx2_dot_conj(const cplx* x, const cplx* t, std::size_t n) {
  // Lanes hold interleaved (re, im) pairs; acc_re accumulates xr*tr + xi*ti
  // pairwise, acc_im accumulates xi*tr (even lanes) and -xr*ti (odd lanes).
  const __m256d sign = _mm256_set_pd(-1.0, 1.0, -1.0, 1.0);
  __m256d acc_re = _mm256_setzero_pd(), acc_im = _mm256_setzero_pd();
  const auto* xd = reinterpret_cast<const double*>(x);
  const auto* td = reinterpret_cast<const double*>(t);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d xv = _mm256_loadu_pd(xd + 2 * i);
    const __m256d tv = _mm256_loadu_pd(td + 2 * i);
    acc_re = _mm256_fmadd_pd(xv, tv, acc_re);
    const __m256d xs = _mm256_permute_pd(xv, 0b0101);  // (xi, xr) per pair
    acc_im = _mm256_fmadd_pd(_mm256_mul_pd(xs, sign), tv, acc_im);
  }
  double re = hsum(acc_re), im = hsum(acc_im);
  for (; i < n; ++i) {
    re += x[i].real() * t[i].real() + x[i].imag() * t[i].imag();
    im += x[i].imag() * t[i].real() - x[i].real() * t[i].imag();
  }
  return {re, im};
}

PAB_AVX2 CovVarRaw avx2_cov_var(const double* x, const double* t, std::size_t n,
                                double x_mean) {
  const __m256d mean = _mm256_set1_pd(x_mean);
  __m256d cov0 = _mm256_setzero_pd(), cov1 = _mm256_setzero_pd();
  __m256d var0 = _mm256_setzero_pd(), var1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d xc0 = _mm256_sub_pd(_mm256_loadu_pd(x + i), mean);
    const __m256d xc1 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 4), mean);
    cov0 = _mm256_fmadd_pd(xc0, _mm256_loadu_pd(t + i), cov0);
    cov1 = _mm256_fmadd_pd(xc1, _mm256_loadu_pd(t + i + 4), cov1);
    var0 = _mm256_fmadd_pd(xc0, xc0, var0);
    var1 = _mm256_fmadd_pd(xc1, xc1, var1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d xc = _mm256_sub_pd(_mm256_loadu_pd(x + i), mean);
    cov0 = _mm256_fmadd_pd(xc, _mm256_loadu_pd(t + i), cov0);
    var0 = _mm256_fmadd_pd(xc, xc, var0);
  }
  double cov = hsum(_mm256_add_pd(cov0, cov1));
  double var = hsum(_mm256_add_pd(var0, var1));
  for (; i < n; ++i) {
    const double xc = x[i] - x_mean;
    cov += xc * t[i];
    var += xc * xc;
  }
  return {cov, var};
}

PAB_AVX2 void avx2_axpy_d(double g, const double* x, double* y, std::size_t n) {
  const __m256d gv = _mm256_set1_pd(g);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(gv, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  for (; i < n; ++i) y[i] += g * x[i];
}

PAB_AVX2 void avx2_axpy_c(cplx g, const cplx* x, cplx* y, std::size_t n) {
  // (gr + j gi)(xr + j xi): per interleaved pair, gr*x +/- gi*swap(x).
  const __m256d gr = _mm256_set1_pd(g.real());
  const __m256d gi = _mm256_set1_pd(g.imag());
  const auto* xd = reinterpret_cast<const double*>(x);
  auto* yd = reinterpret_cast<double*>(y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d xv = _mm256_loadu_pd(xd + 2 * i);
    const __m256d xs = _mm256_permute_pd(xv, 0b0101);
    const __m256d prod =
        _mm256_addsub_pd(_mm256_mul_pd(gr, xv), _mm256_mul_pd(gi, xs));
    _mm256_storeu_pd(yd + 2 * i,
                     _mm256_add_pd(_mm256_loadu_pd(yd + 2 * i), prod));
  }
  for (; i < n; ++i) {
    const double xr = x[i].real(), xi = x[i].imag();
    y[i] = cplx(y[i].real() + (g.real() * xr - g.imag() * xi),
                y[i].imag() + (g.real() * xi + g.imag() * xr));
  }
}

PAB_AVX2 void avx2_magnitude(const cplx* x, double* out, std::size_t n) {
  const auto* xd = reinterpret_cast<const double*>(x);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(xd + 2 * i);      // r0 i0 r1 i1
    const __m256d b = _mm256_loadu_pd(xd + 2 * i + 4);  // r2 i2 r3 i3
    const __m256d t0 = _mm256_permute2f128_pd(a, b, 0x20);  // r0 i0 r2 i2
    const __m256d t1 = _mm256_permute2f128_pd(a, b, 0x31);  // r1 i1 r3 i3
    const __m256d re = _mm256_unpacklo_pd(t0, t1);          // r0 r1 r2 r3
    const __m256d im = _mm256_unpackhi_pd(t0, t1);          // i0 i1 i2 i3
    const __m256d mag = _mm256_sqrt_pd(
        _mm256_fmadd_pd(re, re, _mm256_mul_pd(im, im)));
    _mm256_storeu_pd(out + i, mag);
  }
  for (; i < n; ++i) {
    const double re = x[i].real(), im = x[i].imag();
    out[i] = __builtin_sqrt(re * re + im * im);
  }
}

PAB_AVX2 void avx2_cmul(const cplx* a, const cplx* b, cplx* out, std::size_t n) {
  const auto* ad = reinterpret_cast<const double*>(a);
  const auto* bd = reinterpret_cast<const double*>(b);
  auto* od = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d av = _mm256_loadu_pd(ad + 2 * i);
    const __m256d bv = _mm256_loadu_pd(bd + 2 * i);
    const __m256d b_re = _mm256_permute_pd(bv, 0b0000);  // (br, br) per pair
    const __m256d b_im = _mm256_permute_pd(bv, 0b1111);  // (bi, bi) per pair
    const __m256d a_sw = _mm256_permute_pd(av, 0b0101);  // (ai, ar) per pair
    _mm256_storeu_pd(od + 2 * i,
                     _mm256_addsub_pd(_mm256_mul_pd(av, b_re),
                                      _mm256_mul_pd(a_sw, b_im)));
  }
  for (; i < n; ++i) {
    const double ar = a[i].real(), ai = a[i].imag();
    const double br = b[i].real(), bi = b[i].imag();
    out[i] = cplx(ar * br - ai * bi, ar * bi + ai * br);
  }
}

// Oscillators and the chip deinterleave: the generic block implementations
// from simd_kernels.hpp, inlined here so they vectorize under avx2+fma.
PAB_AVX2 void avx2_mix_down(const double* x, double w, cplx* out,
                            std::size_t n) {
  detail::osc_mix_down(x, w, out, n);
}

PAB_AVX2 void avx2_mix_up(const cplx* x, double w, double* out, std::size_t n) {
  detail::osc_mix_up(x, w, out, n);
}

PAB_AVX2 void avx2_tone(double w, double amplitude, double phase, double* out,
                        std::size_t n) {
  detail::osc_tone(w, amplitude, phase, out, n);
}

PAB_AVX2 void avx2_chip_sum_diff(const double* soft, double* sum, double* diff,
                                 std::size_t n) {
  detail::chip_sum_diff_ew(soft, sum, diff, n);
}

constexpr KernelTable kAvx2Table = {
    avx2_sum,      avx2_dot,    avx2_dot_conj,  avx2_cov_var,
    avx2_axpy_d,   avx2_axpy_c, avx2_magnitude, avx2_cmul,
    avx2_mix_down, avx2_mix_up, avx2_tone,      avx2_chip_sum_diff,
};

}  // namespace

const KernelTable* avx2_kernels() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")
             ? &kAvx2Table
             : nullptr;
}

}  // namespace pab::dsp::simd

#else  // not x86-64

namespace pab::dsp::simd {
const KernelTable* avx2_kernels() { return nullptr; }
}  // namespace pab::dsp::simd

#endif
