#include "phy/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::phy {
namespace {

constexpr double kFloorDb = -60.0;
constexpr double kCeilDb = 60.0;

double safe_ratio_db(double signal, double noise) {
  if (signal <= 0.0) return kFloorDb;
  if (noise <= 0.0) return kCeilDb;
  const double db = 10.0 * std::log10(signal / noise);
  return std::clamp(db, kFloorDb, kCeilDb);
}

}  // namespace

double bit_error_rate(std::span<const std::uint8_t> sent,
                      std::span<const std::uint8_t> received) {
  require(sent.size() == received.size() && !sent.empty(),
          "bit_error_rate: size mismatch or empty");
  return static_cast<double>(hamming_distance(sent, received)) /
         static_cast<double>(sent.size());
}

double estimate_snr_db(std::span<const double> rx, std::span<const double> ref) {
  require(rx.size() == ref.size() && !rx.empty(), "estimate_snr: size mismatch");
  const auto n = static_cast<double>(rx.size());
  // Least squares with intercept: rx = h*ref + c + noise.  The intercept
  // absorbs the un-modulated carrier pedestal beneath a backscatter stream,
  // which is not noise and must not count against the SNR.
  double mx = 0.0, mr = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) { mx += rx[i]; mr += ref[i]; }
  mx /= n;
  mr /= n;
  double rr = 0.0, rx_ref = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    rr += (ref[i] - mr) * (ref[i] - mr);
    rx_ref += (rx[i] - mx) * (ref[i] - mr);
  }
  if (rr <= 0.0) return kFloorDb;
  const double h = rx_ref / rr;
  double noise = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    const double e = (rx[i] - mx) - h * (ref[i] - mr);
    noise += e * e;
  }
  noise /= n;
  return safe_ratio_db(h * h, noise);
}

double estimate_snr_db(std::span<const std::complex<double>> rx,
                       std::span<const double> ref) {
  require(rx.size() == ref.size() && !rx.empty(), "estimate_snr: size mismatch");
  const auto n = static_cast<double>(rx.size());
  std::complex<double> mx{};
  double mr = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) { mx += rx[i]; mr += ref[i]; }
  mx /= n;
  mr /= n;
  double rr = 0.0;
  std::complex<double> rx_ref{};
  for (std::size_t i = 0; i < rx.size(); ++i) {
    rr += (ref[i] - mr) * (ref[i] - mr);
    rx_ref += (rx[i] - mx) * (ref[i] - mr);
  }
  if (rr <= 0.0) return kFloorDb;
  const std::complex<double> h = rx_ref / rr;
  double noise = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i)
    noise += std::norm((rx[i] - mx) - h * (ref[i] - mr));
  noise /= n;
  return safe_ratio_db(std::norm(h), noise);
}

double measure_sinr_db(std::span<const std::complex<double>> rx,
                       std::span<const double> ref) {
  // Identical estimator; named separately because the residual here includes
  // structured interference, not just noise.
  return estimate_snr_db(rx, ref);
}

}  // namespace pab::phy
