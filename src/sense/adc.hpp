// ADC model for analog peripherals (the MSP430's 10-bit SAR ADC).
#pragma once

#include <cstdint>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pab::sense {

struct AdcParams {
  int bits = 10;          // MSP430G2553 ADC10
  double vref = 1.8;      // referenced to the LDO rail
  double noise_lsb = 0.5; // RMS input-referred noise in LSBs
};

class Adc {
 public:
  explicit Adc(AdcParams p = {});

  // Convert an input voltage to a raw code, clipping at the rails.
  [[nodiscard]] std::uint16_t sample(double volts, pab::Rng& rng) const;

  // Code -> voltage (the MCU-side conversion).
  [[nodiscard]] double to_volts(std::uint16_t code) const;

  [[nodiscard]] std::uint16_t max_code() const {
    return static_cast<std::uint16_t>((1u << params_.bits) - 1u);
  }
  [[nodiscard]] const AdcParams& params() const { return params_; }

 private:
  AdcParams params_;
};

}  // namespace pab::sense
