file(REMOVE_RECURSE
  "libpab_circuit.a"
)
