#include "phy/cfo.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::phy {

double estimate_cfo_hz(std::span<const std::complex<double>> segment,
                       double sample_rate) {
  require(segment.size() >= 2, "estimate_cfo: need at least two samples");
  require(sample_rate > 0.0, "estimate_cfo: sample rate must be positive");
  // Average of x[n+1] * conj(x[n]) accumulates the per-sample rotation;
  // its argument is 2 pi f / fs.
  std::complex<double> acc{};
  for (std::size_t i = 1; i < segment.size(); ++i)
    acc += segment[i] * std::conj(segment[i - 1]);
  if (std::abs(acc) < 1e-300) return 0.0;
  return std::arg(acc) * sample_rate / kTwoPi;
}

void correct_cfo_into(std::span<const std::complex<double>> x, double cfo_hz,
                      double sample_rate, std::span<std::complex<double>> out) {
  require(sample_rate > 0.0, "correct_cfo: sample rate must be positive");
  require(out.size() == x.size(), "correct_cfo_into: size mismatch");
  const double w = -kTwoPi * cfo_hz / sample_rate;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ph = w * static_cast<double>(i);
    out[i] = x[i] * std::complex<double>(std::cos(ph), std::sin(ph));
  }
}

std::vector<std::complex<double>> correct_cfo(
    std::span<const std::complex<double>> x, double cfo_hz, double sample_rate) {
  std::vector<std::complex<double>> y(x.size());
  correct_cfo_into(x, cfo_hz, sample_rate, y);
  return y;
}

}  // namespace pab::phy
