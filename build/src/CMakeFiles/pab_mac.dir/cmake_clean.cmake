file(REMOVE_RECURSE
  "CMakeFiles/pab_mac.dir/mac/fdma.cpp.o"
  "CMakeFiles/pab_mac.dir/mac/fdma.cpp.o.d"
  "CMakeFiles/pab_mac.dir/mac/inventory.cpp.o"
  "CMakeFiles/pab_mac.dir/mac/inventory.cpp.o.d"
  "CMakeFiles/pab_mac.dir/mac/protocol.cpp.o"
  "CMakeFiles/pab_mac.dir/mac/protocol.cpp.o.d"
  "CMakeFiles/pab_mac.dir/mac/rate_control.cpp.o"
  "CMakeFiles/pab_mac.dir/mac/rate_control.cpp.o.d"
  "CMakeFiles/pab_mac.dir/mac/scheduler.cpp.o"
  "CMakeFiles/pab_mac.dir/mac/scheduler.cpp.o.d"
  "libpab_mac.a"
  "libpab_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pab_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
