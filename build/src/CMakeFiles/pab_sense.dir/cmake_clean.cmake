file(REMOVE_RECURSE
  "CMakeFiles/pab_sense.dir/sense/adc.cpp.o"
  "CMakeFiles/pab_sense.dir/sense/adc.cpp.o.d"
  "CMakeFiles/pab_sense.dir/sense/i2c.cpp.o"
  "CMakeFiles/pab_sense.dir/sense/i2c.cpp.o.d"
  "CMakeFiles/pab_sense.dir/sense/ms5837.cpp.o"
  "CMakeFiles/pab_sense.dir/sense/ms5837.cpp.o.d"
  "CMakeFiles/pab_sense.dir/sense/ph.cpp.o"
  "CMakeFiles/pab_sense.dir/sense/ph.cpp.o.d"
  "libpab_sense.a"
  "libpab_sense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pab_sense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
