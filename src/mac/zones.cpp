#include "mac/zones.hpp"

#include <algorithm>

#include "sim/timeline.hpp"
#include "util/error.hpp"

namespace pab::mac {

namespace {

// splitmix64 finalizer: derives an independent per-zone inventory seed from
// the base seed and the zone id (never from execution order).
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ZoneSchedule plan_zones(const ZoneLayout& layout,
                        const ChannelPlanConfig& config) {
  const std::size_t n = layout.members.size();
  require(layout.adjacency.size() == n,
          "plan_zones: adjacency/members size mismatch");

  ZoneSchedule out;
  out.zones.resize(n);

  // Greedy coloring, zone-id order, lowest free color: deterministic and at
  // most max_degree + 1 colors.
  std::size_t colors = 0;
  std::vector<bool> in_use;
  for (std::size_t z = 0; z < n; ++z) {
    in_use.assign(colors + 1, false);
    for (const std::uint32_t a : layout.adjacency[z]) {
      require(a < n, "plan_zones: adjacency references unknown zone");
      require(a != z, "plan_zones: self-loop in zone adjacency");
      if (a < z) {
        const std::uint32_t c = out.zones[a].color;
        if (c < in_use.size()) in_use[c] = true;
      }
    }
    std::uint32_t color = 0;
    while (color < in_use.size() && in_use[color]) ++color;
    out.zones[z].color = color;
    colors = std::max(colors, static_cast<std::size_t>(color) + 1);
  }
  out.colors = colors;

  // One channel-plan "slot" per color: the over-subscription result maps
  // color -> (carrier, sequential round) when colors exceed the band.
  out.plan = plan_channels(std::max<std::size_t>(colors, 1), config);
  const std::size_t channels = out.plan.channels();
  for (std::size_t z = 0; z < n; ++z) {
    ZoneAssignment& a = out.zones[z];
    a.carrier_hz = out.plan.carrier_for(a.color);
    a.round = static_cast<std::uint32_t>(a.color / channels);
  }
  out.rounds = n == 0 ? 0 : (colors + channels - 1) / channels;
  return out;
}

ZonedInventoryResult run_zoned_inventory(const ZoneLayout& layout,
                                         const ZoneSchedule& schedule,
                                         const InventoryConfig& config,
                                         sim::Timeline& timeline,
                                         const ZonedInventoryOptions& options) {
  const std::size_t n = layout.members.size();
  require(schedule.zones.size() == n, "run_zoned_inventory: schedule mismatch");

  ZonedInventoryResult out;
  out.zones = n;
  out.rounds = schedule.rounds;

  for (std::size_t round = 0; round < schedule.rounds; ++round) {
    const double round_start = timeline.now();
    double round_wall = 0.0;
    for (std::size_t z = 0; z < n; ++z) {
      if (schedule.zones[z].round != round) continue;
      const std::vector<std::uint32_t>& members = layout.members[z];
      if (members.empty()) continue;
      require(members.size() <= 200,
              "run_zoned_inventory: a zone holds more than 200 nodes (shrink "
              "the zone extent)");

      // Zone-local uint8 ids 1..members.size() map back to global indices:
      // the hierarchical addressing that lifts the flat protocol's limit.
      std::vector<std::uint8_t> population(members.size());
      for (std::size_t k = 0; k < members.size(); ++k)
        population[k] = static_cast<std::uint8_t>(k + 1);

      InventoryConfig zone_config = config;
      zone_config.seed = mix(config.seed ^ mix(static_cast<std::uint64_t>(z)));

      TimedInventoryOptions timed;
      timed.frame_announce_s = options.frame_announce_s;
      timed.slot_s = options.slot_s;
      if (options.available) {
        timed.available = [&](std::uint8_t id, double t) {
          return options.available(members[id - 1], round_start + t);
        };
      }

      // Concurrent zones of one round each run on a zone-local sub-timeline
      // (logging off: the master log is the audit record); the master charges
      // each zone's duration and elapses the round's maximum below.
      sim::Timeline zone_tl;
      zone_tl.set_logging(false);
      InventoryStats stats;
      const std::vector<std::uint8_t> found =
          run_inventory(population, zone_config, zone_tl, timed, &stats);
      for (const std::uint8_t id : found)
        out.identified.push_back(members[id - 1]);
      out.inventory.frames += stats.frames;
      out.inventory.slots += stats.slots;
      out.inventory.singletons += stats.singletons;
      out.inventory.collisions += stats.collisions;
      out.inventory.empties += stats.empties;
      timeline.charge("mac.zone.inventory", zone_tl.now());
      round_wall = std::max(round_wall, zone_tl.now());
    }
    timeline.elapse(round_wall, "mac.zone.round");
    out.simulated_s += round_wall;
  }
  return out;
}

}  // namespace pab::mac
