// Bitrate adaptation for PAB links.
//
// The downlink protocol already carries a kSetBitrate command (paper
// section 5.1a) and the MCU exposes a table of clock-divider rates
// (section 6.1b).  This controller closes the loop: it walks the rate table
// using the receiver's SNR estimates and CRC outcomes, with hysteresis so a
// marginal link does not oscillate -- the standard backscatter reader-side
// rate adaptation the paper leaves to the reader implementation.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace pab::mac {

struct RateControlConfig {
  std::vector<double> rate_table = {100,  200,  400,  600,  800,
                                    1000, 2000, 2800, 3000, 5000};
  // SNR margins [dB] relative to the FM0 decode floor (~2 dB, Fig. 7):
  // upshift when measured SNR clears the floor by `up_margin`, downshift
  // when it falls within `down_margin`.
  double decode_floor_db = 2.0;
  double up_margin_db = 9.0;    // BER ~1e-5 at floor+9 (Fig. 7)
  double down_margin_db = 3.0;
  // Consecutive observations required before moving (hysteresis).
  int up_streak = 3;
  int down_streak = 1;
  // CRC failures force an immediate downshift.
  bool downshift_on_crc_failure = true;
};

class RateController {
 public:
  explicit RateController(RateControlConfig config = {},
                          std::size_t initial_index = 0);

  // Feed one uplink observation; returns true if the rate changed.  Only an
  // observation with `crc_ok` can extend the upshift streak; a CRC failure
  // resets it (and forces a downshift step when configured to).
  bool observe(double snr_db, bool crc_ok);

  [[nodiscard]] std::size_t rate_index() const { return index_; }
  [[nodiscard]] double rate_bps() const { return config_.rate_table[index_]; }
  [[nodiscard]] const RateControlConfig& config() const { return config_; }

  // Statistics for reporting.
  [[nodiscard]] std::size_t upshifts() const { return upshifts_; }
  [[nodiscard]] std::size_t downshifts() const { return downshifts_; }

 private:
  RateControlConfig config_;
  std::size_t index_;
  int good_streak_ = 0;
  int bad_streak_ = 0;
  std::size_t upshifts_ = 0;
  std::size_t downshifts_ = 0;
};

}  // namespace pab::mac
