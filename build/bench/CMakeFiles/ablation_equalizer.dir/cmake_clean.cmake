file(REMOVE_RECURSE
  "CMakeFiles/ablation_equalizer.dir/ablation_equalizer.cpp.o"
  "CMakeFiles/ablation_equalizer.dir/ablation_equalizer.cpp.o.d"
  "ablation_equalizer"
  "ablation_equalizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_equalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
