#include "check/audit.hpp"

#include <exception>

namespace pab::check {
namespace {

// SplitMix64 finalizer: decorrelates (base_seed, name, trial) triples so
// neighbouring trials do not feed neighbouring mt19937_64 states.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t base_seed, const std::string& name,
                         std::uint64_t trial) {
  return mix(mix(base_seed ^ fnv1a(name)) + trial);
}

AuditReport run_audit(const AuditConfig& config,
                      const std::vector<Invariant>& invariants,
                      obs::MetricRegistry* registry) {
  AuditReport report;
  for (const auto& inv : invariants) {
    if (!config.only.empty() &&
        inv.name.find(config.only) == std::string::npos)
      continue;
    InvariantOutcome outcome;
    outcome.name = inv.name;
    outcome.guards = inv.guards;
    for (std::uint64_t t = 0; t < config.trials; ++t) {
      const std::uint64_t seed = trial_seed(config.base_seed, inv.name, t);
      CheckResult r;
      try {
        r = inv.run(seed);
      } catch (const std::exception& e) {
        r = CheckResult::fail(std::string("checker threw: ") + e.what());
      }
      ++outcome.trials;
      if (!r.ok) {
        if (outcome.violations == 0) {
          outcome.first_failing_seed = seed;
          outcome.first_detail = r.detail;
        }
        ++outcome.violations;
        if (config.stop_on_first) break;
      }
    }
    if (registry != nullptr) {
      const std::string base = "check.audit." + outcome.name;
      registry->counter(base + ".trials").add(outcome.trials);
      registry->counter(base + ".violations").add(outcome.violations);
    }
    report.outcomes.push_back(std::move(outcome));
  }
  if (registry != nullptr) {
    registry->gauge("check.audit.invariants")
        .set(static_cast<double>(report.outcomes.size()));
    registry->gauge("check.audit.violations_total")
        .set(static_cast<double>(report.total_violations()));
  }
  return report;
}

AuditReport run_audit(const AuditConfig& config,
                      obs::MetricRegistry* registry) {
  return run_audit(config, default_invariants(), registry);
}

}  // namespace pab::check
