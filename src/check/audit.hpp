// Seeded audit driver: runs every invariant for N trials and reports any
// violation together with the exact per-trial seed that reproduces it
// (`pab_audit --invariant <name> --seed <seed> --trials 1`).  Results are
// exported through obs::MetricRegistry so CI can assert on the sidecar:
//   check.audit.<invariant>.trials      counter
//   check.audit.<invariant>.violations  counter
//   check.audit.invariants              gauge
//   check.audit.violations_total        gauge
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "obs/metrics.hpp"

namespace pab::check {

struct AuditConfig {
  std::uint64_t base_seed = 1234;
  std::size_t trials = 100;    // per invariant
  std::string only;            // run only invariants whose name contains this
  bool stop_on_first = false;  // stop an invariant's loop at its first failure
};

// The per-trial seed for `trial` of the invariant called `name` under
// `base_seed`.  Deterministic and order-independent: a violation reported for
// (name, seed) reproduces with trials=1 regardless of which other invariants
// or trials ran alongside it.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base_seed,
                                       const std::string& name,
                                       std::uint64_t trial);

struct InvariantOutcome {
  std::string name;
  std::string guards;
  std::size_t trials = 0;
  std::size_t violations = 0;
  std::uint64_t first_failing_seed = 0;  // valid when violations > 0
  std::string first_detail;              // detail string of the first failure

  [[nodiscard]] bool ok() const { return violations == 0; }
};

struct AuditReport {
  std::vector<InvariantOutcome> outcomes;

  [[nodiscard]] std::size_t total_violations() const {
    std::size_t n = 0;
    for (const auto& o : outcomes) n += o.violations;
    return n;
  }
  [[nodiscard]] bool ok() const { return total_violations() == 0; }
};

// Run `invariants` (default_invariants() for the overload) under `config`.
// A checker that throws is counted as a violation of that trial.  When
// `registry` is non-null the pass/fail counters above are exported into it.
[[nodiscard]] AuditReport run_audit(const AuditConfig& config,
                                    const std::vector<Invariant>& invariants,
                                    obs::MetricRegistry* registry = nullptr);
[[nodiscard]] AuditReport run_audit(const AuditConfig& config,
                                    obs::MetricRegistry* registry = nullptr);

}  // namespace pab::check
