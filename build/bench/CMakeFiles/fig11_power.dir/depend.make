# Empty dependencies file for fig11_power.
# This may be replaced when dependencies are built.
