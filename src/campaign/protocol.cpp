#include "campaign/protocol.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>

#include "campaign/shard_runner.hpp"

namespace pab::campaign {

std::string encode_spec(const SpecPayload& p) {
  ByteWriter w;
  w.u32(p.version);
  w.u32(p.worker_threads);
  w.u64(p.fingerprint);
  w.str(p.spec_text);
  return w.take();
}

pab::Expected<SpecPayload> decode_spec(std::string_view payload) {
  try {
    ByteReader r(payload);
    SpecPayload p;
    p.version = r.u32();
    p.worker_threads = r.u32();
    p.fingerprint = r.u64();
    p.spec_text = r.str();
    if (p.version != kProtocolVersion)
      return pab::Error{pab::ErrorCode::kInvalidArgument,
                        "campaign protocol version mismatch"};
    return p;
  } catch (const std::exception& e) {
    return pab::Error{pab::ErrorCode::kInvalidArgument, e.what()};
  }
}

std::string encode_shard(const Shard& s) {
  ByteWriter w;
  w.u64(s.index);
  w.u64(s.point);
  w.u64(s.begin);
  w.u64(s.end);
  return w.take();
}

pab::Expected<Shard> decode_shard(std::string_view payload) {
  try {
    ByteReader r(payload);
    Shard s;
    s.index = r.u64();
    s.point = r.u64();
    s.begin = r.u64();
    s.end = r.u64();
    return s;
  } catch (const std::exception& e) {
    return pab::Error{pab::ErrorCode::kInvalidArgument, e.what()};
  }
}

namespace {

// Emit an error frame (best effort) and the failing exit code.
int fail(int out_fd, const std::string& message) {
  (void)write_frame(out_fd, MsgType::kError, message);
  return 1;
}

}  // namespace

int worker_main(int in_fd, int out_fd) {
  std::optional<CampaignSpec> spec;
  unsigned threads = 1;
  for (;;) {
    auto frame = read_frame(in_fd);
    if (!frame.ok()) {
      // Serve closing the pipe is the normal end of a worker's life.
      if (frame.error().detail == "eof") return 0;
      return fail(out_fd, frame.error().message());
    }
    switch (frame.value().type) {
      case MsgType::kSpec: {
        auto payload = decode_spec(frame.value().payload);
        if (!payload.ok()) return fail(out_fd, payload.error().message());
        auto parsed = CampaignSpec::parse(payload.value().spec_text);
        if (!parsed.ok()) return fail(out_fd, parsed.error().message());
        if (parsed.value().fingerprint() != payload.value().fingerprint)
          return fail(out_fd, "spec fingerprint mismatch after transport");
        spec = std::move(parsed).value();
        threads = payload.value().worker_threads;
        break;
      }
      case MsgType::kRunShard: {
        if (!spec.has_value())
          return fail(out_fd, "kRunShard before kSpec");
        auto shard = decode_shard(frame.value().payload);
        if (!shard.ok()) return fail(out_fd, shard.error().message());
        pab::Expected<ShardOutput> output{
            pab::Error{pab::ErrorCode::kInvalidArgument, "unset"}};
        try {
          output = run_shard(*spec, shard.value(), threads);
        } catch (const std::exception& e) {
          return fail(out_fd, std::string("run_shard threw: ") + e.what());
        }
        if (!output.ok()) return fail(out_fd, output.error().message());
        // Stream the rows in trial-order chunks, then the metrics delta.
        const RecordBatch& records = output.value().records;
        for (std::size_t begin = 0; begin < records.rows();
             begin += kRecordsChunkRows) {
          const std::size_t end =
              std::min(begin + kRecordsChunkRows, records.rows());
          ByteWriter chunk;
          chunk.u64(shard.value().index);
          records.slice(begin, end).serialize(chunk);
          auto sent = write_frame(out_fd, MsgType::kRecords, chunk.bytes());
          if (!sent.ok()) return 1;  // serve is gone; nothing left to tell
        }
        ByteWriter done;
        done.u64(shard.value().index);
        write_metrics(done, output.value().metrics);
        auto sent = write_frame(out_fd, MsgType::kShardDone, done.bytes());
        if (!sent.ok()) return 1;
        break;
      }
      case MsgType::kShutdown:
        return 0;
      default:
        return fail(out_fd, "unexpected frame type from serve");
    }
  }
}

}  // namespace pab::campaign
