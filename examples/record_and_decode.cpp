// Offline workflow: record a hydrophone capture to WAV, reload it, decode it.
//
// Mirrors the paper's toolchain -- the hydrophone feeds a PC sound card,
// Audacity records the audio, and a decoder processes the file offline
// (section 5.1b).  Any 16-bit mono WAV of a PAB capture (simulated or from
// real hardware) can be decoded the same way.
#include <cstdio>

#include "core/link.hpp"
#include "core/projector.hpp"
#include "dsp/wav.hpp"
#include "phy/metrics.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace pab;
  const std::string path = argc > 1 ? argv[1] : "/tmp/pab_capture.wav";

  // 1. Simulate a capture (skip if the user supplied their own WAV to decode
  //    *and* it already exists).
  core::SimConfig config = sim::Scenario::pool_a().medium;
  core::LinkSimulator sim(config, core::Placement{});
  const core::Projector projector(piezo::make_projector_transducer(), 50.0);
  const auto node = circuit::make_recto_piezo(15000.0);

  phy::UplinkPacket packet;
  packet.node_id = 5;
  packet.payload = {'P', 'A', 'B', '!'};
  const Bits bits = packet.to_bits(false);

  core::UplinkRunConfig link;
  link.bitrate = 1000.0;
  const auto run = sim.run_uplink(projector, node, bits, link);

  // 2. Write the capture as a normal audio file (auto-scaled to 50% FS).
  double peak = 0.0;
  for (double v : run.hydrophone_v.samples) peak = std::max(peak, std::abs(v));
  const double full_scale = peak * 2.0;
  if (dsp::write_wav(path, run.hydrophone_v, full_scale) != ErrorCode::kOk) {
    std::printf("failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote capture: %s (%zu samples @ %.0f Hz, %.2f s)\n",
              path.c_str(), run.hydrophone_v.size(),
              run.hydrophone_v.sample_rate, run.hydrophone_v.duration());

  // 3. Reload and decode offline -- exactly what a field recording would get.
  const auto loaded = dsp::read_wav(path, full_scale);
  if (!loaded.ok()) {
    std::printf("failed to read back: %s\n", loaded.error().message().c_str());
    return 1;
  }

  phy::DemodConfig demod_cfg;
  demod_cfg.carrier_hz = 15000.0;
  demod_cfg.bitrate = 1000.0;
  demod_cfg.sample_rate = loaded.value().sample_rate;
  const auto decoded =
      phy::demodulate_packet(loaded.value(), demod_cfg, packet.payload.size());
  if (!decoded.ok()) {
    std::printf("decode failed: %s\n", decoded.error().message().c_str());
    return 1;
  }
  std::printf("decoded from file: node %u payload \"", decoded.value().node_id);
  for (auto b : decoded.value().payload) std::printf("%c", b);
  std::printf("\" (CRC ok)\n");
  std::printf("16-bit quantization through the file cost no bit errors.\n");
  return 0;
}
