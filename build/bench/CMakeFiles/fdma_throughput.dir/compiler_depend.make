# Empty compiler generated dependencies file for fdma_throughput.
# This may be replaced when dependencies are built.
