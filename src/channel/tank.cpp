#include "channel/tank.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::channel {

double distance(const Vec3& a, const Vec3& b) {
  const Vec3 d = a - b;
  return std::sqrt(d.x * d.x + d.y * d.y + d.z * d.z);
}

Tank make_pool_a() {
  Tank t;
  t.size = {3.0, 4.0, 1.3};
  return t;
}

Tank make_pool_b() {
  Tank t;
  t.size = {1.2, 10.0, 1.0};
  return t;
}

Tank make_swimming_pool() {
  Tank t;
  t.size = {10.0, 25.0, 2.0};
  t.wall_reflection = 0.6;    // tiled concrete
  t.bottom_reflection = 0.6;
  return t;
}

namespace {

// Mirror coordinate of `p` for image index m along an axis of length L.
// Even m: p + mL (same orientation); odd m: -p + (m+1)L.  This enumerates the
// standard 1-D lattice of image sources for two parallel reflecting planes.
double image_coord(double p, int m, double length) {
  if (m % 2 == 0) return p + static_cast<double>(m) * length;
  return -p + static_cast<double>(m + 1) * length;
}

// Number of bounces off the "low" (index even) and "high" planes for image m.
// For the 1-D lattice, image m corresponds to |m| bounces total, alternating
// between the two planes; which plane is hit first depends on sign.
int bounce_count(int m) { return std::abs(m); }

// Reflection-coefficient product along one axis given per-plane coefficients.
double axis_reflection(int m, double low_coeff, double high_coeff) {
  // Walking the image lattice: a positive m alternates high, low, high, ...
  // and a negative m alternates low, high, low, ...  For equal coefficients
  // this reduces to coeff^|m| exactly; for unequal ones this assignment is
  // the standard image-method bookkeeping.
  double r = 1.0;
  int n = std::abs(m);
  bool high_first = m > 0;
  for (int i = 0; i < n; ++i) {
    r *= (high_first == (i % 2 == 0)) ? high_coeff : low_coeff;
  }
  return r;
}

}  // namespace

std::vector<PathTap> image_method_taps(const Tank& tank, const Vec3& src,
                                       const Vec3& rx, int max_order,
                                       double freq_hz) {
  require(max_order >= 0, "image_method_taps: negative order");
  require(tank.contains(src) && tank.contains(rx),
          "image_method_taps: endpoints must lie inside the tank");

  const double c = sound_speed_mackenzie(tank.water);
  std::vector<PathTap> taps;
  for (int mx = -max_order; mx <= max_order; ++mx) {
    for (int my = -max_order; my <= max_order; ++my) {
      for (int mz = -max_order; mz <= max_order; ++mz) {
        const int order = bounce_count(mx) + bounce_count(my) + bounce_count(mz);
        if (order > max_order) continue;
        const Vec3 img{image_coord(src.x, mx, tank.size.x),
                       image_coord(src.y, my, tank.size.y),
                       image_coord(src.z, mz, tank.size.z)};
        const double d = distance(img, rx);
        if (d < 1e-6) continue;  // coincident points: skip degenerate tap
        double r = axis_reflection(mx, tank.wall_reflection, tank.wall_reflection) *
                   axis_reflection(my, tank.wall_reflection, tank.wall_reflection) *
                   axis_reflection(mz, tank.bottom_reflection, tank.surface_reflection);
        const double gain = r * path_amplitude_gain(d, freq_hz);
        taps.push_back({d / c, gain, order});
      }
    }
  }
  std::sort(taps.begin(), taps.end(),
            [](const PathTap& a, const PathTap& b) { return a.delay_s < b.delay_s; });
  return taps;
}

double coherent_gain(const std::vector<PathTap>& taps, double freq_hz) {
  std::complex<double> h{};
  for (const PathTap& t : taps)
    h += t.gain * std::exp(std::complex<double>(0.0, -kTwoPi * freq_hz * t.delay_s));
  return std::abs(h);
}

std::vector<PathTap> free_field_tap(const Vec3& src, const Vec3& rx, double freq_hz,
                                    const WaterProperties& water) {
  const double d = std::max(distance(src, rx), 1e-6);
  const double c = sound_speed_mackenzie(water);
  return {PathTap{d / c, path_amplitude_gain(d, freq_hz), 0}};
}

}  // namespace pab::channel
