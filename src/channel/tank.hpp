// Rectangular-tank geometry and image-method multipath.
//
// The paper's experiments ran in two enclosed tanks at the MIT Sea Grant:
//   Pool A: 3 m x 4 m cross-section, 1.3 m deep
//   Pool B: 1.2 m x 10 m cross-section, 1 m deep (a "corridor" which focuses
//           the projector's signal directionally - section 6.2)
// The image (mirror-source) method is the canonical model for such reverberant
// enclosures: each wall reflection is replaced by a mirrored virtual source.
#pragma once

#include <array>
#include <vector>

#include "channel/water.hpp"

namespace pab::channel {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  friend Vec3 operator-(const Vec3& a, const Vec3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3 operator+(const Vec3& a, const Vec3& b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend bool operator==(const Vec3&, const Vec3&) = default;
};

[[nodiscard]] double distance(const Vec3& a, const Vec3& b);

// An enclosed rectangular tank: x in [0, size.x], y in [0, size.y],
// z in [0, size.z] with z = size.z the free surface.
struct Tank {
  Vec3 size{3.0, 4.0, 1.3};
  // Pressure reflection coefficients.
  double wall_reflection = 0.45;     // concrete/fiberglass walls (lossy)
  double bottom_reflection = 0.45;
  double surface_reflection = -0.95; // pressure-release air interface
  WaterProperties water{};

  [[nodiscard]] bool contains(const Vec3& p) const {
    return p.x >= 0 && p.x <= size.x && p.y >= 0 && p.y <= size.y && p.z >= 0 &&
           p.z <= size.z;
  }
};

// Pool A: 3 m x 4 m rectangular cross-section, 1.3 m depth.
[[nodiscard]] Tank make_pool_a();
// Pool B: 1.2 m x 10 m rectangular cross-section, 1 m depth.
[[nodiscard]] Tank make_pool_b();
// Indoor swimming pool (the paper also "validated that the system operates
// correctly in an indoor swimming pool", section 5.1d): 25 x 10 m, 2 m deep,
// tiled walls (more reflective than the test tanks).
[[nodiscard]] Tank make_swimming_pool();

// One propagation path (echo) between two points in the tank.
struct PathTap {
  double delay_s = 0.0;  // absolute propagation delay
  double gain = 0.0;     // signed amplitude gain (includes reflections, spreading, absorption)
  int order = 0;         // number of boundary bounces
};

// Image-method impulse response between `src` and `rx`, including paths with
// up to `max_order` boundary reflections per axis.  `freq_hz` sets the
// absorption term.  Taps are sorted by delay.
[[nodiscard]] std::vector<PathTap> image_method_taps(const Tank& tank, const Vec3& src,
                                                     const Vec3& rx, int max_order,
                                                     double freq_hz);

// Coherent narrowband channel gain at `freq_hz`: sum of taps as phasors.
// This is the |h| that governs CW energy delivery to a harvesting node.
[[nodiscard]] double coherent_gain(const std::vector<PathTap>& taps, double freq_hz);

// Free-field single tap (no boundaries) - used for open-water extrapolation.
[[nodiscard]] std::vector<PathTap> free_field_tap(const Vec3& src, const Vec3& rx,
                                                  double freq_hz,
                                                  const WaterProperties& water);

}  // namespace pab::channel
