#include "core/link.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/envelope.hpp"
#include "dsp/simd.hpp"
#include "phy/scheme.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::core {

ModulationStates modulation_states(const circuit::RectoPiezo& front_end,
                                   double carrier_hz, double bitrate) {
  // Complex scatter gain per state.  The differential component is derated by
  // the recto-piezo's bandwidth efficiency at this bitrate (sidebands beyond
  // the electrical resonance modulate weakly).
  const dsp::cplx g_r0 = front_end.scatter_gain(carrier_hz, /*reflective=*/true);
  const dsp::cplx g_a0 = front_end.scatter_gain(carrier_hz, /*reflective=*/false);
  const double eta_bw = front_end.bandwidth_efficiency(carrier_hz, bitrate);
  const dsp::cplx g_mid = 0.5 * (g_r0 + g_a0);
  const dsp::cplx g_half = 0.5 * (g_r0 - g_a0) * eta_bw;
  return ModulationStates{g_mid + g_half, g_mid - g_half};
}

LinkSimulator::LinkSimulator(SimConfig config, Placement placement)
    : LinkSimulator(config, placement,
                    std::make_shared<channel::TapCache>(
                        config.tank, config.max_image_order,
                        config.use_image_method)) {}

LinkSimulator::LinkSimulator(SimConfig config, Placement placement,
                             std::shared_ptr<channel::TapCache> tap_cache)
    : config_(config),
      placement_(placement),
      rng_(config.seed),
      tap_cache_(std::move(tap_cache)) {
  require(config_.sample_rate > 0.0, "LinkSimulator: sample rate must be positive");
  require(tap_cache_ != nullptr, "LinkSimulator: tap cache must not be null");
}

void LinkSimulator::set_metrics(obs::MetricRegistry* metrics) {
  metrics_ = metrics;
  t_uplink_run_ = metrics != nullptr
                      ? &metrics->histogram("core.link.uplink_run_seconds")
                      : nullptr;
  t_decode_ = metrics != nullptr
                  ? &metrics->histogram("core.link.decode_seconds")
                  : nullptr;
}

const std::vector<channel::PathTap>& LinkSimulator::taps(const channel::Vec3& a,
                                                         const channel::Vec3& b,
                                                         double freq_hz) const {
  // The cache owns the tap vectors for its whole lifetime, so handing out a
  // reference is safe while this simulator (which shares ownership) exists.
  return *tap_cache_->taps(a, b, freq_hz);
}

double LinkSimulator::incident_pressure(const Projector& projector,
                                        double freq_hz) const {
  const auto& t = taps(placement_.projector, placement_.node, freq_hz);
  return projector.pressure_at_1m(freq_hz) * channel::coherent_gain(t, freq_hz);
}

void LinkSimulator::run_uplink_into(const Projector& projector,
                                    const ModulationStates& states,
                                    std::span<const std::uint8_t> data_bits,
                                    const UplinkRunConfig& cfg, pab::Rng& rng,
                                    phy::Workspace& ws,
                                    UplinkRunResult& out) const {
  const double fs = config_.sample_rate;
  const double f = cfg.carrier_hz;
  dsp::Arena& arena = ws.arena();
  const auto frame = arena.frame();

  // On-air switch stream for [uplink preamble + data] under the scenario's
  // modulation scheme (phy::Scheme seam; kFm0 reproduces the legacy
  // backscatter_waveform_into call bit for bit).
  auto sw = arena.alloc<phy::SwitchState>(
      phy::scheme_waveform_length(cfg.scheme, data_bits.size(), cfg.bitrate, fs));
  phy::scheme_waveform_into(cfg.scheme, data_bits, cfg.bitrate, fs, sw, arena);

  const double packet_s = static_cast<double>(sw.size()) / fs;
  const double total_s = cfg.node_start_s + packet_s + cfg.tail_s;

  // Projector CW envelope (amplitude = pressure at 1 m).
  auto tx_samples =
      arena.alloc<dsp::cplx>(Projector::cw_envelope_length(total_s, fs));
  projector.cw_envelope_into(f, fs, /*lead_silence_s=*/0.0, tx_samples);
  const dsp::CplxView tx(tx_samples, fs, f);

  // Propagate to the node and the hydrophone (memoized tap sets).
  const auto& taps_pn = taps(placement_.projector, placement_.node, f);
  const auto& taps_ph = taps(placement_.projector, placement_.hydrophone, f);
  const auto& taps_nh = taps(placement_.node, placement_.hydrophone, f);

  const dsp::CplxView at_node = channel::apply_taps_baseband(tx, taps_pn, arena);
  const dsp::CplxView direct = channel::apply_taps_baseband(tx, taps_ph, arena);

  const dsp::cplx g_refl = states.g_reflective;
  const dsp::cplx g_abs = states.g_absorptive;

  const auto start_i = static_cast<std::size_t>(cfg.node_start_s * fs);
  auto scattered_samples = arena.alloc<dsp::cplx>(at_node.size());
  for (std::size_t i = 0; i < at_node.size(); ++i) {
    dsp::cplx g = g_abs;  // idle switch open = absorptive/matched state
    if (i >= start_i && i - start_i < sw.size() &&
        sw[i - start_i] == phy::SwitchState::kReflective) {
      g = g_refl;
    }
    scattered_samples[i] = at_node[i] * g;
  }
  const dsp::CplxView backscatter = channel::apply_taps_baseband(
      dsp::CplxView(scattered_samples, fs, f), taps_nh, arena);

  // Hydrophone: passband voltage with ambient noise.
  const std::size_t n = std::max(direct.size(), backscatter.size());
  out.hydrophone_v.sample_rate = fs;
  out.hydrophone_v.samples.resize(n);  // reuses capacity in steady state
  const double sens = config_.hydrophone.volts_per_pascal();
  const double noise_sd = config_.noise.sample_stddev_pa(fs);
  // Recording-clock offset (paper footnote 12): in the recorder's time base
  // the carrier appears shifted by f * ppm * 1e-6.  For the short captures
  // here the accompanying timing drift (microseconds) is negligible against
  // chip durations, so the offset is applied as a pure carrier shift.
  const double skew = 1.0 + config_.receiver_clock_offset_ppm * 1e-6;
  const double w = kTwoPi * f * skew / fs;
  // Split into three passes so the upconversion runs through the dispatched
  // mixer: combine the baseband components, mix to passband, then add noise
  // and the sensitivity scale.  Per-element arithmetic, evaluation order, and
  // the RNG draw sequence all match the fused reference loop, so the scalar
  // table stays bit-identical.
  auto combined = arena.alloc<dsp::cplx>(n);
  for (std::size_t i = 0; i < n; ++i) {
    dsp::cplx env{};
    if (i < direct.size()) env += direct[i];
    if (i < backscatter.size()) env += backscatter[i];
    combined[i] = env;
  }
  auto carrier = arena.alloc<double>(n);
  dsp::simd::mix_up(combined, w, carrier);
  for (std::size_t i = 0; i < n; ++i) {
    const double pressure = carrier[i] + rng.gaussian(0.0, noise_sd);
    out.hydrophone_v.samples[i] = sens * pressure;
  }

  out.sent_bits.assign(data_bits.begin(), data_bits.end());
  out.incident_pressure_pa =
      projector.pressure_at_1m(f) * channel::coherent_gain(taps_pn, f);
  out.direct_pressure_pa =
      projector.pressure_at_1m(f) * channel::coherent_gain(taps_ph, f);
  out.modulation_pressure_pa = out.incident_pressure_pa *
                               std::abs(g_refl - g_abs) *
                               channel::coherent_gain(taps_nh, f);
}

UplinkRunResult LinkSimulator::run_uplink(const Projector& projector,
                                          const ModulationStates& states,
                                          std::span<const std::uint8_t> data_bits,
                                          const UplinkRunConfig& cfg,
                                          pab::Rng& rng) const {
  phy::Workspace ws;
  UplinkRunResult result;
  run_uplink_into(projector, states, data_bits, cfg, rng, ws, result);
  return result;
}

UplinkRunResult LinkSimulator::run_uplink(const Projector& projector,
                                          const circuit::RectoPiezo& front_end,
                                          std::span<const std::uint8_t> data_bits,
                                          const UplinkRunConfig& cfg) {
  return run_uplink(projector,
                    modulation_states(front_end, cfg.carrier_hz,
                                      phy::scheme_descriptor(cfg.scheme)
                                          .effective_bitrate(cfg.bitrate)),
                    data_bits, cfg, rng_);
}

pab::Expected<bool> LinkSimulator::run_and_decode_into(
    const Projector& projector, const ModulationStates& states,
    std::span<const std::uint8_t> data_bits, const UplinkRunConfig& cfg,
    pab::Rng& rng, phy::Workspace& ws, DecodedRun& out) const {
  {
    const obs::ScopedTimer timer(t_uplink_run_);
    run_uplink_into(projector, states, data_bits, cfg, rng, ws, out.run);
  }
  phy::SchemeConfig sc;
  sc.scheme = cfg.scheme;
  sc.demod.carrier_hz = cfg.carrier_hz;
  sc.demod.bitrate = cfg.bitrate;
  sc.demod.sample_rate = config_.sample_rate;
  sc.demod.metrics = metrics_;
  const obs::ScopedTimer timer(t_decode_);
  const phy::SchemeDemodulator& demod = ws.scheme_demodulator(sc);
  return demod.demodulate_into(out.run.hydrophone_v.samples,
                               out.run.hydrophone_v.sample_rate,
                               data_bits.size(), ws.arena(), out.demod);
}

pab::Expected<LinkSimulator::DecodedRun> LinkSimulator::run_and_decode(
    const Projector& projector, const ModulationStates& states,
    std::span<const std::uint8_t> data_bits, const UplinkRunConfig& cfg,
    pab::Rng& rng) const {
  phy::Workspace ws;
  DecodedRun out;
  const auto ok =
      run_and_decode_into(projector, states, data_bits, cfg, rng, ws, out);
  if (!ok.ok()) return ok.error();
  return out;
}

pab::Expected<LinkSimulator::DecodedRun> LinkSimulator::run_and_decode(
    const Projector& projector, const circuit::RectoPiezo& front_end,
    std::span<const std::uint8_t> data_bits, const UplinkRunConfig& cfg) {
  return run_and_decode(projector,
                        modulation_states(front_end, cfg.carrier_hz,
                                          phy::scheme_descriptor(cfg.scheme)
                                              .effective_bitrate(cfg.bitrate)),
                        data_bits, cfg, rng_);
}

std::vector<std::uint8_t> LinkSimulator::downlink_sliced_envelope(
    const Projector& projector, const phy::DownlinkQuery& query,
    const phy::PwmParams& pwm, double freq_hz) const {
  const double fs = config_.sample_rate;
  const dsp::BasebandSignal tx =
      projector.query_envelope(query, pwm, freq_hz, fs, /*post_cw_s=*/0.0);
  const auto& taps_pn = taps(placement_.projector, placement_.node, freq_hz);
  const dsp::BasebandSignal at_node = channel::apply_taps_baseband(tx, taps_pn);

  // The node's detector: rectified envelope of the piezo voltage through an
  // RC, then the Schmitt trigger.  Envelope magnitude is proportional to the
  // incident pressure; the RC shapes the edges.
  std::vector<double> mag(at_node.size());
  dsp::simd::magnitude(at_node.samples, mag);
  const auto env = dsp::envelope_rc(mag, fs, /*tau_s=*/0.25e-3);
  return dsp::schmitt_slice(env);
}

}  // namespace pab::core
