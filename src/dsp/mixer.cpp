#include "dsp/mixer.hpp"

#include <cmath>

#include "dsp/iir.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace pab::dsp {

Signal make_tone(double freq_hz, double amplitude, double duration_s,
                 double sample_rate, double phase) {
  require(sample_rate > 0.0, "make_tone: sample rate must be positive");
  require(duration_s >= 0.0, "make_tone: negative duration");
  const auto n = static_cast<std::size_t>(duration_s * sample_rate);
  Signal s;
  s.sample_rate = sample_rate;
  s.samples.resize(n);
  const double w = kTwoPi * freq_hz / sample_rate;
  for (std::size_t i = 0; i < n; ++i)
    s.samples[i] = amplitude * std::sin(w * static_cast<double>(i) + phase);
  return s;
}

BasebandSignal downconvert(const Signal& x, double carrier_hz) {
  require(x.sample_rate > 0.0, "downconvert: sample rate unset");
  BasebandSignal y;
  y.sample_rate = x.sample_rate;
  y.carrier_hz = carrier_hz;
  y.samples.resize(x.size());
  const double w = kTwoPi * carrier_hz / x.sample_rate;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ph = w * static_cast<double>(i);
    // Multiply by exp(-j w n); factor 2 recovers the baseband envelope
    // amplitude after low-pass filtering.
    y.samples[i] = 2.0 * x.samples[i] * cplx(std::cos(ph), -std::sin(ph));
  }
  return y;
}

BasebandSignal downconvert_filtered(const Signal& x, double carrier_hz,
                                    double lowpass_hz, int order,
                                    std::size_t decim) {
  require(decim >= 1, "downconvert_filtered: decim must be >= 1");
  BasebandSignal y = downconvert(x, carrier_hz);
  const BiquadCascade lp = butterworth_lowpass(order, lowpass_hz, y.sample_rate);
  auto filtered = lp.filter(std::span<const cplx>(y.samples));
  if (decim == 1) {
    y.samples = std::move(filtered);
    return y;
  }
  BasebandSignal out;
  out.carrier_hz = carrier_hz;
  out.sample_rate = y.sample_rate / static_cast<double>(decim);
  out.samples.reserve(filtered.size() / decim + 1);
  for (std::size_t i = 0; i < filtered.size(); i += decim)
    out.samples.push_back(filtered[i]);
  return out;
}

Signal upconvert(const BasebandSignal& x, double carrier_hz) {
  require(x.sample_rate > 0.0, "upconvert: sample rate unset");
  Signal y;
  y.sample_rate = x.sample_rate;
  y.samples.resize(x.size());
  const double w = kTwoPi * carrier_hz / x.sample_rate;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ph = w * static_cast<double>(i);
    y.samples[i] = x.samples[i].real() * std::cos(ph) - x.samples[i].imag() * std::sin(ph);
  }
  return y;
}

}  // namespace pab::dsp
