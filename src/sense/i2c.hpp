// Minimal I2C bus model.
//
// The MS5837-class pressure/temperature sensor "directly communicates with
// the MCU through I2C" (paper section 5.1c).  This models the transaction
// layer: a master issuing command writes and reads to addressed devices.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace pab::sense {

class I2cDevice {
 public:
  virtual ~I2cDevice() = default;
  // Handle a command byte written by the master.
  virtual void write(std::span<const std::uint8_t> data) = 0;
  // Provide up to `n` bytes for a master read.
  [[nodiscard]] virtual std::vector<std::uint8_t> read(std::size_t n) = 0;
};

class I2cBus {
 public:
  void attach(std::uint8_t address, std::shared_ptr<I2cDevice> device);

  // Master operations; return an error code on NACK (no such device).
  [[nodiscard]] pab::ErrorCode write(std::uint8_t address,
                                     std::span<const std::uint8_t> data);
  [[nodiscard]] pab::Expected<std::vector<std::uint8_t>> read(std::uint8_t address,
                                                              std::size_t n);

  [[nodiscard]] bool has_device(std::uint8_t address) const {
    return devices_.count(address) != 0;
  }

 private:
  std::map<std::uint8_t, std::shared_ptr<I2cDevice>> devices_;
};

}  // namespace pab::sense
