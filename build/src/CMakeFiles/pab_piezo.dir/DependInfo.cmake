
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/piezo/bvd.cpp" "src/CMakeFiles/pab_piezo.dir/piezo/bvd.cpp.o" "gcc" "src/CMakeFiles/pab_piezo.dir/piezo/bvd.cpp.o.d"
  "/root/repo/src/piezo/design.cpp" "src/CMakeFiles/pab_piezo.dir/piezo/design.cpp.o" "gcc" "src/CMakeFiles/pab_piezo.dir/piezo/design.cpp.o.d"
  "/root/repo/src/piezo/transducer.cpp" "src/CMakeFiles/pab_piezo.dir/piezo/transducer.cpp.o" "gcc" "src/CMakeFiles/pab_piezo.dir/piezo/transducer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
