// Tests for the extension features: rate adaptation, the linear equalizer,
// WAV round-trip, and battery-assisted backscatter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "circuit/rectopiezo.hpp"
#include "core/link.hpp"
#include "dsp/mixer.hpp"
#include "dsp/wav.hpp"
#include "mac/rate_control.hpp"
#include "phy/equalizer.hpp"
#include "phy/fm0.hpp"
#include "phy/metrics.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace pab {
namespace {

// --- Rate adaptation ---------------------------------------------------------

TEST(RateControl, UpshiftsOnSustainedHighSnr) {
  mac::RateController rc;
  EXPECT_NEAR(rc.rate_bps(), 100.0, 1e-9);
  for (int i = 0; i < 3; ++i) (void)rc.observe(20.0, true);
  EXPECT_NEAR(rc.rate_bps(), 200.0, 1e-9);
  EXPECT_EQ(rc.upshifts(), 1u);
}

TEST(RateControl, RequiresStreakToUpshift) {
  mac::RateController rc;
  (void)rc.observe(20.0, true);
  (void)rc.observe(20.0, true);
  EXPECT_NEAR(rc.rate_bps(), 100.0, 1e-9);  // streak of 2 < 3
  (void)rc.observe(4.0, true);              // breaks the streak (low headroom)
  (void)rc.observe(20.0, true);
  (void)rc.observe(20.0, true);
  EXPECT_NEAR(rc.rate_bps(), 100.0, 1e-9);
}

TEST(RateControl, DownshiftsImmediatelyOnCrcFailure) {
  mac::RateController rc(mac::RateControlConfig{}, /*initial_index=*/5);
  EXPECT_NEAR(rc.rate_bps(), 1000.0, 1e-9);
  EXPECT_TRUE(rc.observe(20.0, false));
  EXPECT_NEAR(rc.rate_bps(), 800.0, 1e-9);
  EXPECT_EQ(rc.downshifts(), 1u);
}

TEST(RateControl, DownshiftsOnLowSnr) {
  mac::RateController rc(mac::RateControlConfig{}, 5);
  EXPECT_TRUE(rc.observe(3.0, true));  // headroom 1 dB < down margin 3 dB
  EXPECT_NEAR(rc.rate_bps(), 800.0, 1e-9);
}

TEST(RateControl, ClampsAtTableEnds) {
  mac::RateController rc;
  for (int i = 0; i < 5; ++i) (void)rc.observe(0.0, false);
  EXPECT_EQ(rc.rate_index(), 0u);  // cannot go below the slowest rate
  mac::RateController hi(mac::RateControlConfig{}, 9);
  for (int i = 0; i < 20; ++i) (void)rc.observe(40.0, true);
  EXPECT_LT(rc.rate_index(), rc.config().rate_table.size());
}

TEST(RateControl, ConvergesToSustainableRate) {
  // Link model: SNR falls 3 dB per table step (like Fig. 8); the controller
  // must settle where headroom sits between the margins.
  mac::RateController rc;
  const auto snr_at = [](std::size_t idx) { return 26.0 - 3.0 * static_cast<double>(idx); };
  for (int i = 0; i < 60; ++i)
    (void)rc.observe(snr_at(rc.rate_index()), true);
  const double headroom = snr_at(rc.rate_index()) - rc.config().decode_floor_db;
  EXPECT_GE(headroom, rc.config().down_margin_db);
  EXPECT_LT(headroom, rc.config().up_margin_db + 3.0);
  EXPECT_GT(rc.rate_index(), 2u);  // actually climbed
}

TEST(RateControl, InvalidConfigThrows) {
  mac::RateControlConfig bad;
  bad.rate_table.clear();
  EXPECT_THROW(mac::RateController rc(bad), std::invalid_argument);
  EXPECT_THROW(mac::RateController rc2(mac::RateControlConfig{}, 99),
               std::invalid_argument);
}

// --- Linear equalizer ----------------------------------------------------------

// Synthetic two-tap ISI channel on FM0 chips.
struct IsiLink {
  std::vector<std::complex<double>> rx;
  std::vector<double> ref;
  Bits bits;
};

IsiLink make_isi_link(std::size_t n_bits, double isi, double noise, Rng& rng) {
  IsiLink link;
  link.bits = rng.bits(n_bits);
  const auto chips = phy::fm0_encode(link.bits);
  link.ref.assign(chips.begin(), chips.end());
  link.rx.resize(chips.size());
  for (std::size_t t = 0; t < chips.size(); ++t) {
    std::complex<double> v = static_cast<double>(chips[t]);
    if (t >= 1) v += isi * static_cast<double>(chips[t - 1]);
    if (t >= 2) v += 0.4 * isi * static_cast<double>(chips[t - 2]);
    v += std::complex<double>(rng.gaussian(0.0, noise), rng.gaussian(0.0, noise));
    link.rx[t] = v;
  }
  return link;
}

TEST(Equalizer, RemovesIsi) {
  Rng rng(5);
  const auto train = make_isi_link(200, 0.6, 0.05, rng);
  phy::LinearEqualizer eq;
  eq.train(train.rx, train.ref);
  ASSERT_TRUE(eq.trained());

  const auto data = make_isi_link(400, 0.6, 0.05, rng);
  const auto raw_soft = [&] {
    std::vector<double> s(data.rx.size());
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = data.rx[i].real();
    return s;
  }();
  const auto eq_out = eq.apply(data.rx);
  std::vector<double> eq_soft(eq_out.size());
  for (std::size_t i = 0; i < eq_soft.size(); ++i) eq_soft[i] = eq_out[i].real();

  const auto raw_bits = phy::fm0_decode_ml(raw_soft);
  const auto eq_bits = phy::fm0_decode_ml(eq_soft);
  const auto raw_err = hamming_distance(data.bits, raw_bits);
  const auto eq_err = hamming_distance(data.bits, eq_bits);
  EXPECT_LE(eq_err, raw_err);
  EXPECT_LE(eq_err, data.bits.size() / 50);  // < 2% after equalization
}

TEST(Equalizer, IdentityChannelPassesThrough) {
  Rng rng(6);
  const auto link = make_isi_link(300, 0.0, 0.01, rng);
  phy::LinearEqualizer eq;
  eq.train(link.rx, link.ref);
  const auto out = eq.apply(link.rx);
  // Output correlates strongly with the reference.
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    num += out[i].real() * link.ref[i];
    den += link.ref[i] * link.ref[i];
  }
  EXPECT_NEAR(num / den, 1.0, 0.05);
}

TEST(Equalizer, DecisionDirectedPassLiftsChipSnr) {
  // The demodulator's second (decision-directed) pass equalizes the tank's
  // reverberation tail: chip SNR rises ~2-3 dB at high bitrates with BER
  // staying essentially zero.
  core::SimConfig sc = sim::Scenario::pool_a().medium;
  sc.noise.psd_db_re_upa = 76.0;
  core::Placement pl;
  pl.projector = {1.2, 1.5, 0.65};
  pl.hydrophone = {1.8, 1.5, 0.65};
  pl.node = {1.5, 2.1, 0.65};
  core::LinkSimulator sim(sc, pl);
  const core::Projector proj(piezo::make_projector_transducer(), 50.0);
  const auto fe = circuit::make_recto_piezo(15000.0);
  Rng rng(3);
  const auto bits = rng.bits(192);
  core::UplinkRunConfig cfg;
  cfg.bitrate = 2800.0;
  const auto run = sim.run_uplink(proj, fe, bits, cfg);

  phy::DemodConfig base;
  base.sample_rate = sc.sample_rate;
  base.bitrate = 2800.0;
  phy::DemodConfig dd = base;
  dd.decision_directed_equalizer = true;

  const auto r0 = phy::BackscatterDemodulator(base).demodulate(
      run.hydrophone_v, bits.size());
  const auto r1 = phy::BackscatterDemodulator(dd).demodulate(
      run.hydrophone_v, bits.size());
  ASSERT_TRUE(r0.ok() && r1.ok());
  EXPECT_GT(r1.value().snr_db, r0.value().snr_db + 1.0);
  EXPECT_LE(phy::bit_error_rate(bits, r1.value().bits), 0.02);
}

TEST(Equalizer, UntrainedApplyThrows) {
  phy::LinearEqualizer eq;
  std::vector<std::complex<double>> x(10);
  EXPECT_THROW((void)eq.apply(x), std::invalid_argument);
}

TEST(Equalizer, TooLittleTrainingThrows) {
  phy::LinearEqualizer eq;
  std::vector<std::complex<double>> x(5);
  std::vector<double> r(5);
  EXPECT_THROW(eq.train(x, r), std::invalid_argument);
}

// --- WAV round-trip -------------------------------------------------------------

TEST(Wav, RoundTripPreservesWaveform) {
  const dsp::Signal s = dsp::make_tone(1500.0, 0.5, 0.05, 48000.0);
  const std::string path = "/tmp/pab_test_roundtrip.wav";
  ASSERT_EQ(dsp::write_wav(path, s), ErrorCode::kOk);
  const auto back = dsp::read_wav(path);
  ASSERT_TRUE(back.ok()) << back.error().message();
  ASSERT_EQ(back.value().size(), s.size());
  EXPECT_NEAR(back.value().sample_rate, 48000.0, 1e-9);
  double max_err = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i)
    max_err = std::max(max_err, std::abs(back.value()[i] - s[i]));
  EXPECT_LT(max_err, 1.0 / 32000.0);  // quantization only
  std::remove(path.c_str());
}

TEST(Wav, ClipsBeyondFullScale) {
  dsp::Signal s;
  s.sample_rate = 8000.0;
  s.samples = {2.0, -2.0, 0.5};
  const std::string path = "/tmp/pab_test_clip.wav";
  ASSERT_EQ(dsp::write_wav(path, s, /*full_scale=*/1.0), ErrorCode::kOk);
  const auto back = dsp::read_wav(path);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back.value()[0], 1.0, 1e-3);
  EXPECT_NEAR(back.value()[1], -1.0, 1e-3);
  EXPECT_NEAR(back.value()[2], 0.5, 1e-3);
  std::remove(path.c_str());
}

TEST(Wav, MissingFileReportsError) {
  EXPECT_FALSE(dsp::read_wav("/tmp/definitely_missing_pab.wav").ok());
}

// --- Battery-assisted backscatter ---------------------------------------------

TEST(BatteryAssist, GainBoostsModulationDepth) {
  circuit::RectoPiezoConfig passive;
  passive.match_frequency_hz = 15000.0;
  circuit::RectoPiezoConfig assisted = passive;
  assisted.assist_gain_db = 10.0;
  const circuit::RectoPiezo p(piezo::make_node_transducer(), passive);
  const circuit::RectoPiezo a(piezo::make_node_transducer(), assisted);
  EXPECT_NEAR(a.modulation_depth(15000.0) / p.modulation_depth(15000.0),
              std::pow(10.0, 10.0 / 20.0), 1e-9);
  EXPECT_FALSE(p.battery_assisted());
  EXPECT_TRUE(a.battery_assisted());
}

TEST(BatteryAssist, PassiveBurnsNoAssistPower) {
  const auto p = circuit::make_recto_piezo(15000.0);
  EXPECT_EQ(p.assist_power_w(100.0), 0.0);
}

TEST(BatteryAssist, PowerGrowsWithGainAndField) {
  circuit::RectoPiezoConfig cfg;
  cfg.match_frequency_hz = 15000.0;
  cfg.assist_gain_db = 10.0;
  const circuit::RectoPiezo a(piezo::make_node_transducer(), cfg);
  EXPECT_GT(a.assist_power_w(100.0), 0.0);
  EXPECT_GT(a.assist_power_w(200.0), a.assist_power_w(100.0));
  circuit::RectoPiezoConfig more = cfg;
  more.assist_gain_db = 20.0;
  const circuit::RectoPiezo b(piezo::make_node_transducer(), more);
  EXPECT_GT(b.assist_power_w(100.0), a.assist_power_w(100.0));
}

TEST(BatteryAssist, StillFarCheaperThanActiveTx) {
  // Even a 20 dB reflection amplifier burns milliwatts -- orders below the
  // watts an active acoustic transmitter needs.
  circuit::RectoPiezoConfig cfg;
  cfg.match_frequency_hz = 15000.0;
  cfg.assist_gain_db = 20.0;
  const circuit::RectoPiezo a(piezo::make_node_transducer(), cfg);
  EXPECT_LT(a.assist_power_w(400.0), 50e-3);
}

}  // namespace
}  // namespace pab
