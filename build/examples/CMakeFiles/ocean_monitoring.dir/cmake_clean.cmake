file(REMOVE_RECURSE
  "CMakeFiles/ocean_monitoring.dir/ocean_monitoring.cpp.o"
  "CMakeFiles/ocean_monitoring.dir/ocean_monitoring.cpp.o.d"
  "ocean_monitoring"
  "ocean_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
