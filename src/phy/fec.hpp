// Forward error correction: Hamming(7,4) with block interleaving.
//
// Open-water PAB links fade on wave timescales (see channel/timevarying):
// errors arrive in bursts when the surface image swings destructive.  A
// short block code plus an interleaver that spreads each codeword across the
// packet converts those bursts into correctable scattered errors -- a
// protocol-level extension the paper's modest throughputs leave room for.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitops.hpp"

namespace pab::phy {

// --- Hamming(7,4): corrects any single bit error per 7-bit codeword ---------

// Encode 4 data bits -> 7 coded bits.  Input length must be a multiple of 4.
[[nodiscard]] Bits hamming74_encode(std::span<const std::uint8_t> data);

// Decode 7-bit codewords -> 4 data bits each, correcting single-bit errors.
// Input length must be a multiple of 7.
[[nodiscard]] Bits hamming74_decode(std::span<const std::uint8_t> coded);

// Number of coded bits for `data_bits` of payload.
[[nodiscard]] constexpr std::size_t hamming74_coded_size(std::size_t data_bits) {
  return data_bits / 4 * 7;
}

// --- Block interleaver --------------------------------------------------------

// Write row-wise into a `rows` x ceil(n/rows) matrix, read column-wise.
// A burst of up to `rows` consecutive channel errors lands in distinct
// codewords after de-interleaving.
[[nodiscard]] Bits interleave(std::span<const std::uint8_t> bits, std::size_t rows);
[[nodiscard]] Bits deinterleave(std::span<const std::uint8_t> bits, std::size_t rows);

// --- Robust-mode pipeline ------------------------------------------------------

struct FecParams {
  std::size_t interleaver_rows = 7;
};

// data bits -> Hamming(7,4) -> interleave.  Pads data to a multiple of 4 with
// zeros; the caller carries the original length.
[[nodiscard]] Bits fec_protect(std::span<const std::uint8_t> data,
                               const FecParams& params = {});

// Inverse pipeline; returns `data_bits` decoded bits.
[[nodiscard]] Bits fec_recover(std::span<const std::uint8_t> coded,
                               std::size_t data_bits,
                               const FecParams& params = {});

// On-air size of a protected payload.
[[nodiscard]] std::size_t fec_coded_size(std::size_t data_bits);

}  // namespace pab::phy
