// Backscatter uplink modulator and hydrophone-side software demodulator.
//
// Modulator: maps packet bits to the FM0 switch waveform the node's MCU
// drives onto the backscatter transistors.
//
// Demodulator: the offline receiver chain of paper section 5.1b --
// down-convert at the carrier, Butterworth low-pass, envelope, preamble
// correlation for packet detection, channel (two-level) estimation, soft chip
// integration, and maximum-likelihood FM0 decoding.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/arena.hpp"
#include "dsp/iir.hpp"
#include "dsp/signal.hpp"
#include "phy/fm0.hpp"
#include "phy/packet.hpp"
#include "util/error.hpp"

namespace pab::obs {
class MetricRegistry;
class Counter;
class Histogram;
}  // namespace pab::obs

namespace pab::phy {

// --- Modulator ---------------------------------------------------------------

// Per-sample backscatter switch states.
enum class SwitchState : std::int8_t { kAbsorptive = 0, kReflective = 1 };

// FM0-encode `bits` and expand to one switch state per sample at
// `sample_rate`.  Chip boundaries land on fractional sample positions when
// sample_rate/(2*bitrate) is not an integer, exactly as with the MCU's
// integer clock dividers.
[[nodiscard]] std::vector<SwitchState> backscatter_waveform(
    std::span<const std::uint8_t> bits, double bitrate, double sample_rate,
    std::int8_t initial_level = -1);

// Samples the waveform for `n_bits` bits occupies: ceil(2 * n_bits * spc).
[[nodiscard]] std::size_t backscatter_waveform_length(std::size_t n_bits,
                                                      double bitrate,
                                                      double sample_rate);

// Into-output variant: out.size() must equal backscatter_waveform_length;
// the FM0 chips are carved from `scratch`.  The vector overload wraps this.
void backscatter_waveform_into(std::span<const std::uint8_t> bits,
                               double bitrate, double sample_rate,
                               std::int8_t initial_level,
                               std::span<SwitchState> out, dsp::Arena& scratch);

// --- Demodulator --------------------------------------------------------------

struct DemodConfig {
  double carrier_hz = 15000.0;
  double bitrate = 1000.0;
  double sample_rate = 96000.0;  // of the hydrophone capture
  int lowpass_order = 5;
  double lowpass_factor = 2.5;   // cutoff = factor * bitrate
  double detect_threshold = 0.5; // min normalized preamble correlation
  // Decision-directed equalization: after the first ML decode, re-encode the
  // decision, train a chip-spaced MMSE equalizer on the whole packet, and
  // decode again.  Helps in reverberant tanks at high bitrates where
  // inter-chip interference dominates.
  bool decision_directed_equalizer = false;
  // Optional sink for per-stage decode timings and outcome counters
  // (`phy.demod.*`).  Null disables instrumentation; the registry must
  // outlive every demodulator built from this config.
  obs::MetricRegistry* metrics = nullptr;

  // Member-wise equality: lets a phy::Workspace cache one demodulator per
  // operating point instead of rebuilding it every trial.
  [[nodiscard]] bool operator==(const DemodConfig&) const = default;
};

// Per-packet soft link-quality metrics, computed alongside the SNR estimate
// by every scheme demodulator (see phy/scheme.hpp).  The trio mirrors the
// classic receiver metric suite: EVM (rms error vector, normalized to the
// nominal symbol magnitude), MER (signal power over error-vector power, dB),
// and C/N0 (MER referred to the scheme's detection bandwidth, dB-Hz).  All
// three are always finite; MER is clamped to [-60, 60] dB like the SNR
// estimate, and a zero-error decode reads EVM 0 / MER 60.
struct LinkQuality {
  double evm_rms = 0.0;
  double mer_db = 0.0;
  double cn0_dbhz = 0.0;

  [[nodiscard]] bool operator==(const LinkQuality&) const = default;
};

// MER clamp bound shared by every estimator (matches the SNR clamp).
inline constexpr double kMerClampDb = 60.0;

// Derive the metric trio from an error-to-signal power ratio and a detection
// bandwidth: EVM = sqrt(err/sig), MER = -10 log10(err/sig) clamped, C/N0 =
// MER + 10 log10(bandwidth).  `error_over_signal` <= 0 means an error-free
// decode (EVM 0, MER at the clamp).
[[nodiscard]] LinkQuality link_quality_from_error_ratio(double error_over_signal,
                                                        double bandwidth_hz);

// Model-level variant: metrics implied by a known SNR/SINR in `bandwidth_hz`
// (MER = clamped SNR).  Used where the signal path is abstracted away, e.g.
// the field trial's slot-SINR ledger.
[[nodiscard]] LinkQuality link_quality_from_snr(double snr_db,
                                                double bandwidth_hz);

struct DemodResult {
  Bits bits;                  // decoded bits following the preamble
  std::size_t start_sample = 0;  // envelope index of the packet start
  double channel_amp = 0.0;   // estimated half-swing between the two states
  double mid_level = 0.0;     // estimated level midpoint
  double snr_db = 0.0;        // per the paper's estimator, over the payload
  double preamble_corr = 0.0; // peak normalized correlation
  LinkQuality quality;        // EVM/MER/CN0 alongside the SNR estimate
};

class BackscatterDemodulator {
 public:
  explicit BackscatterDemodulator(DemodConfig config);

  // Demodulate `n_bits` data bits that follow the uplink preamble in the
  // passband hydrophone capture.
  [[nodiscard]] Expected<DemodResult> demodulate(const dsp::Signal& passband,
                                                 std::size_t n_bits) const;

  // Same, from an already down-converted complex envelope.
  [[nodiscard]] Expected<DemodResult> demodulate_envelope(
      std::span<const double> envelope, double envelope_rate,
      std::size_t n_bits) const;

  // Zero-allocation variants: all intermediate waveforms (baseband, envelope,
  // correlation, soft chips, Viterbi scratch) are carved from `scratch` and
  // released before returning; decoded bits land in `out.bits`, which only
  // allocates when its capacity grows (steady-state reuse is free).  The
  // Expected<bool> success path carries no heap state; error details may
  // allocate, but a failed decode leaves the trial loop anyway.  The
  // Expected<DemodResult> overloads above are thin wrappers -- results are
  // bit-identical by construction.  The decision-directed equalizer second
  // pass (off by default) still allocates in its matrix solve.
  [[nodiscard]] Expected<bool> demodulate_into(std::span<const double> passband,
                                               double sample_rate,
                                               std::size_t n_bits,
                                               dsp::Arena& scratch,
                                               DemodResult& out) const;
  [[nodiscard]] Expected<bool> demodulate_envelope_into(
      std::span<const double> envelope, double envelope_rate,
      std::size_t n_bits, dsp::Arena& scratch, DemodResult& out) const;

  [[nodiscard]] const DemodConfig& config() const { return config_; }

  // Soft chip integration: mean of `env` over each chip period.
  [[nodiscard]] static std::vector<double> integrate_chips(
      std::span<const double> env, double start, double samples_per_chip,
      std::size_t n_chips);

  // Into-output variant: out.size() is the chip count.
  static void integrate_chips_into(std::span<const double> env, double start,
                                   double samples_per_chip,
                                   std::span<double> out);

 private:
  DemodConfig config_;
  Chips preamble_chips_;
  std::int8_t post_preamble_level_;
  // Receiver low-pass, designed once at construction (designing per call
  // would allocate in the hot path).
  dsp::BiquadCascade lowpass_;
  // Resolved once at construction from config_.metrics (null = metrics off).
  obs::Histogram* t_correlate_ = nullptr;
  obs::Histogram* t_chanest_ = nullptr;
  obs::Histogram* t_equalize_ = nullptr;
  obs::Histogram* t_downconvert_ = nullptr;
  obs::Counter* n_attempts_ = nullptr;
  obs::Counter* n_ok_ = nullptr;
  obs::Counter* n_no_preamble_ = nullptr;
  obs::Counter* n_decode_failures_ = nullptr;
};

// Convenience: demodulate and reassemble a full uplink packet with
// `payload_len` payload bytes; validates the CRC.  With `robust` the body is
// Hamming(7,4)+interleaver protected (node robust mode).
[[nodiscard]] Expected<UplinkPacket> demodulate_packet(
    const dsp::Signal& passband, const DemodConfig& config,
    std::size_t payload_len, bool robust = false);

}  // namespace pab::phy
