// System-level property sweeps (parameterized): invariants that must hold
// across the whole operating envelope, not just at the paper's set points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "channel/tank.hpp"
#include "circuit/rectopiezo.hpp"
#include "core/link.hpp"
#include "core/projector.hpp"
#include "phy/fec.hpp"
#include "phy/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/session.hpp"
#include "util/rng.hpp"

namespace pab {
namespace {

// --- Recto-piezo invariants across the tunable band ---------------------------

class RectoPiezoSweep : public ::testing::TestWithParam<double> {};

TEST_P(RectoPiezoSweep, AbsorptiveNullAtMatchAndVoltagePeakNearby) {
  const double f_match = GetParam();
  const auto rp = circuit::make_recto_piezo(f_match);
  EXPECT_NEAR(std::abs(rp.gamma_absorptive(f_match)), 0.0, 1e-6);

  double peak_v = 0.0, peak_f = 0.0;
  for (double f = 11000.0; f <= 21000.0; f += 50.0) {
    const double v = rp.rectified_open_voltage(f, 80.0);
    if (v > peak_v) { peak_v = v; peak_f = f; }
  }
  // The harvesting peak tracks the electrical match within a few hundred Hz
  // (pulled slightly toward the mechanical resonance).
  EXPECT_NEAR(peak_f, f_match, 450.0);
  EXPECT_GT(peak_v, 2.5);  // powers up at this field strength
}

TEST_P(RectoPiezoSweep, HarvestNeverExceedsCapturedPower) {
  const double f_match = GetParam();
  const auto rp = circuit::make_recto_piezo(f_match);
  constexpr double kRhoC = 1.48e6;
  for (double p : {20.0, 80.0, 300.0}) {
    const double captured =
        p * p / (2.0 * kRhoC) * rp.transducer().aperture_area();
    for (double f = 12000.0; f <= 20000.0; f += 1000.0) {
      EXPECT_LE(rp.harvested_dc_power(f, p), captured * (1.0 + 1e-9))
          << "f=" << f << " p=" << p;
    }
  }
}

TEST_P(RectoPiezoSweep, BandwidthEfficiencyMonotoneInBitrate) {
  const double f_match = GetParam();
  const auto rp = circuit::make_recto_piezo(f_match);
  double prev = 1.1;
  for (double rate : {200.0, 1000.0, 3000.0, 6000.0}) {
    const double eta = rp.bandwidth_efficiency(f_match, rate);
    EXPECT_GT(eta, 0.0);
    EXPECT_LE(eta, 1.0);
    EXPECT_LE(eta, prev + 1e-9) << rate;
    prev = eta;
  }
}

INSTANTIATE_TEST_SUITE_P(MatchFrequencies, RectoPiezoSweep,
                         ::testing::Values(14000.0, 15000.0, 16000.0, 17000.0,
                                           18000.0));

// --- Full waveform link across the usable bitrate table -----------------------

class LinkBitrateSweep : public ::testing::TestWithParam<double> {};

TEST_P(LinkBitrateSweep, CloseRangeLinkDecodesErrorFree) {
  const double bitrate = GetParam();
  sim::Scenario sc =
      sim::Scenario::pool_a().with_seed(static_cast<std::uint64_t>(bitrate));
  sc.reader.projector = {1.2, 1.5, 0.65};
  sc.reader.hydrophone = {1.8, 1.5, 0.65};
  sc.field.set_position(0, {1.5, 2.1, 0.65});
  sc.waveform.bitrate = bitrate;
  const sim::Session session(sc);
  const auto out = session.run_trial<sim::TrialKind::kUplink>(/*trial=*/0);
  ASSERT_TRUE(out.ok()) << "rate=" << bitrate << ": " << out.error().message();
  EXPECT_EQ(out.value().ber, 0.0) << "rate=" << bitrate;
}

// The paper's usable range in quiet conditions: 100 bps - 2.8 kbps.
INSTANTIATE_TEST_SUITE_P(Rates, LinkBitrateSweep,
                         ::testing::Values(100.0, 200.0, 400.0, 600.0, 800.0,
                                           1000.0, 2000.0, 2800.0));

// --- Channel invariants across geometry ----------------------------------------

class TankSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(TankSweep, EnergyDecaysWithDistanceOnAverage) {
  const auto [x, y, z] = GetParam();
  const channel::Tank tank = channel::make_pool_a();
  const channel::Vec3 src{x, y, z};
  // Compare the summed tap energy at a nearby vs a distant receiver (tap
  // energy, not coherent sum: robust to individual fading nulls).
  const auto energy_at = [&](const channel::Vec3& rx) {
    double e = 0.0;
    for (const auto& t : channel::image_method_taps(tank, src, rx, 2, 15000.0))
      e += t.gain * t.gain;
    return e;
  };
  const channel::Vec3 near{std::min(x + 0.4, 2.9), y, z};
  const channel::Vec3 far{std::min(x + 1.6, 2.9), std::min(y + 1.6, 3.9), z};
  EXPECT_GT(energy_at(near), energy_at(far));
}

TEST_P(TankSweep, CoherentGainBoundedByTapSum) {
  const auto [x, y, z] = GetParam();
  const channel::Tank tank = channel::make_pool_a();
  const channel::Vec3 src{x, y, z};
  const channel::Vec3 rx{2.2, 3.0, 0.7};
  const auto taps = channel::image_method_taps(tank, src, rx, 2, 15000.0);
  double abs_sum = 0.0;
  for (const auto& t : taps) abs_sum += std::abs(t.gain);
  for (double f : {12000.0, 15000.0, 18000.0}) {
    EXPECT_LE(channel::coherent_gain(taps, f), abs_sum * (1.0 + 1e-9)) << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sources, TankSweep,
    ::testing::Values(std::make_tuple(0.4, 0.5, 0.4),
                      std::make_tuple(1.0, 1.0, 0.65),
                      std::make_tuple(0.6, 2.0, 0.9),
                      std::make_tuple(1.4, 0.8, 0.5)));

// --- Packet pipeline across payload sizes ---------------------------------------

class PacketPipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(PacketPipelineSweep, WaveformRoundTripWithCrc) {
  const auto payload_len = static_cast<std::size_t>(GetParam());
  core::SimConfig sc = sim::Scenario::pool_a().medium;
  core::LinkSimulator sim(sc, core::Placement{});
  const core::Projector proj(piezo::make_projector_transducer(), 50.0);
  const auto fe = circuit::make_recto_piezo(15000.0);

  Rng rng(100 + GetParam());
  phy::UplinkPacket packet;
  packet.node_id = 9;
  packet.payload = rng.bytes(payload_len);
  const auto bits = packet.to_bits(false);

  const auto out = sim.run_and_decode(proj, fe, bits, core::UplinkRunConfig{});
  ASSERT_TRUE(out.ok()) << "len=" << payload_len;
  const auto decoded = phy::UplinkPacket::from_bits(out.value().demod.bits, false);
  ASSERT_TRUE(decoded.has_value()) << "len=" << payload_len;
  EXPECT_EQ(decoded->payload, packet.payload);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, PacketPipelineSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

// --- FEC burst tolerance across burst lengths -----------------------------------

class FecBurstSweep : public ::testing::TestWithParam<int> {};

TEST_P(FecBurstSweep, BurstsUpToInterleaverDepthAreCorrected) {
  const int burst = GetParam();
  Rng rng(50 + burst);
  const auto data = rng.bits(112);
  auto coded = phy::fec_protect(data);
  // Inject the burst at several positions.
  for (std::size_t start = 0; start + burst <= coded.size();
       start += coded.size() / 5) {
    auto corrupted = coded;
    for (int i = 0; i < burst; ++i) corrupted[start + static_cast<std::size_t>(i)] ^= 1;
    EXPECT_EQ(phy::fec_recover(corrupted, 112), data)
        << "burst=" << burst << " at " << start;
  }
}

// Interleaver depth 7: bursts up to 7 land one-per-codeword.
INSTANTIATE_TEST_SUITE_P(Bursts, FecBurstSweep, ::testing::Values(1, 3, 5, 7));

}  // namespace
}  // namespace pab
