// Butterworth-Van Dyke (BVD) equivalent circuit of a piezoelectric resonator.
//
// Near a mechanical resonance, a piezoelectric transducer is electrically
// equivalent to a static (clamped) capacitance C0 in parallel with a
// "motional" series R-L-C branch:
//
//        o----+-----[ Rm -- Lm -- Cm ]-----+----o
//             |                            |
//             +------------| C0 |----------+
//
// Rm lumps mechanical loss plus radiation resistance, Lm the moving mass and
// Cm the mechanical compliance.  This is the standard lumped model for the
// ceramic cylinders the paper fabricates (Butler & Sherman 2016, the paper's
// reference [12]).
#pragma once

#include <complex>

namespace pab::piezo {

using cplx = std::complex<double>;

struct BvdParams {
  double c0 = 8e-9;     // clamped capacitance [F]
  double rm = 500.0;    // motional resistance [ohm] (loss + radiation)
  double lm = 0.0;      // motional inductance [H]
  double cm = 0.0;      // motional capacitance [F]
  double r_rad = 0.0;   // radiation part of rm [ohm]; r_rad <= rm

  // Series (mechanical) resonance frequency [Hz]: 1 / (2 pi sqrt(Lm Cm)).
  [[nodiscard]] double series_resonance_hz() const;
  // Parallel (anti-)resonance frequency [Hz].
  [[nodiscard]] double parallel_resonance_hz() const;
  // Mechanical quality factor at series resonance.
  [[nodiscard]] double quality_factor() const;
  // Effective electromechanical coupling: k_eff^2 = Cm / (Cm + C0).
  [[nodiscard]] double coupling_keff() const;
  // -3 dB bandwidth of the motional branch [Hz].
  [[nodiscard]] double bandwidth_hz() const { return series_resonance_hz() / quality_factor(); }

  // Impedance of the motional branch alone.
  [[nodiscard]] cplx motional_impedance(double freq_hz) const;
  // Terminal electrical impedance (C0 parallel with the motional branch).
  [[nodiscard]] cplx impedance(double freq_hz) const;
};

// Synthesize BVD parameters from designer-facing quantities:
//   f_res   - desired series resonance [Hz]
//   q       - mechanical Q at that resonance (water-loaded Q for in-water use)
//   c0      - clamped capacitance [F]
//   keff    - effective coupling coefficient (0..1)
//   eta_ea  - electroacoustic efficiency at resonance = r_rad / rm (0..1)
[[nodiscard]] BvdParams synthesize_bvd(double f_res, double q, double c0,
                                       double keff, double eta_ea);

// Apply water loading to an in-air design: added radiation mass lowers the
// resonance by `mass_loading` (fractional Lm increase) and radiation
// resistance lowers Q / raises efficiency.
[[nodiscard]] BvdParams water_load(const BvdParams& in_air, double mass_loading,
                                   double r_radiation);

}  // namespace pab::piezo
